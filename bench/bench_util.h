// Shared plumbing for the figure/table reproduction benches.
//
// Every bench prints:
//   * a header naming the paper artifact it regenerates,
//   * the workload parameters in effect (scale, N, S, seeds),
//   * the figure's data series as CSV (machine-readable, plot-ready),
//   * a human-readable markdown table of the same rows.
//
// Environment knobs (all benches):
//   ENSEMFDET_SCALE    dataset scale vs Table I (default 0.02)
//   ENSEMFDET_N        ensemble size N where the paper uses 80
//   ENSEMFDET_THREADS  thread pool size (default: hardware)
//   ENSEMFDET_SEED     root seed (default 7)
#ifndef ENSEMFDET_BENCH_BENCH_UTIL_H_
#define ENSEMFDET_BENCH_BENCH_UTIL_H_

#include <string>

#include "core/ensemfdet.h"

namespace ensemfdet {
namespace bench {

/// Dataset scale relative to Table I (ENSEMFDET_SCALE, default 0.02).
double Scale();

/// Ensemble size where the paper uses N=80 (ENSEMFDET_N).
int EnsembleN();

/// Root seed (ENSEMFDET_SEED, default 7).
uint64_t Seed();

/// Prints the bench banner: experiment id, paper caption, parameters.
void PrintHeader(const std::string& experiment, const std::string& caption);

/// Prints one table as a named CSV block followed by markdown.
void PrintTable(const std::string& name, const TableWriter& table);

/// Generates the preset at the bench scale and prints its one-line summary.
Dataset LoadPreset(JdPreset preset);

/// Appends every operating point of `points` to `table` as rows
/// (curve, x_field, precision, recall, f1) where x_field is chosen by
/// `x_is_control` (control value vs num_detected).
void AppendCurve(TableWriter* table, const std::string& curve,
                 const std::vector<OperatingPoint>& points,
                 bool x_is_control);

}  // namespace bench
}  // namespace ensemfdet

#endif  // ENSEMFDET_BENCH_BENCH_UTIL_H_
