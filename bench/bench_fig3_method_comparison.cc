// Fig 3 — "Performance comparison of different methods": Precision-Recall
// operating points of SPOKEN, FBOX, FRAUDAR, and ENSEMFDET on all three
// datasets.
//
// Paper setup: SPOKEN/FBOX with 25 SVD components, FRAUDAR as discrete
// block-prefix points, ENSEMFDET at S=0.1 with the voting threshold swept.
// Shape to reproduce: the heuristics (FRAUDAR, ENSEMFDET) dominate; the
// SVD methods are unstable across datasets (FBOX near-invalid on dataset
// 1); ENSEMFDET's curve is dense/smooth while FRAUDAR gives few points.
#include <cstdio>

#include "bench_util.h"

using namespace ensemfdet;

int main() {
  bench::PrintHeader("Fig 3",
                     "Precision-Recall comparison of SPOKEN / FBOX / "
                     "FRAUDAR / EnsemFDet");

  TableWriter series(
      {"curve", "x", "num_detected", "precision", "recall", "f1"});

  for (JdPreset preset : AllJdPresets()) {
    Dataset data = bench::LoadPreset(preset);
    const std::string tag = data.name + "/";
    const LabelSet& labels = data.blacklist;
    auto sweep_sizes = GeometricSizes(
        20, std::max<int64_t>(21, data.graph.num_users() / 3), 18);

    // SPOKEN: spectral projection scores, 25 components.
    {
      SpokenConfig cfg;
      cfg.num_components = 25;
      auto result = RunSpoken(data.graph, cfg).ValueOrDie();
      bench::AppendCurve(&series, tag + "SPOKEN",
                         ScoreSweep(result.user_scores, labels, sweep_sizes),
                         /*x_is_control=*/false);
    }

    // FBOX: reconstruction-residual scores, 25 components.
    {
      FboxConfig cfg;
      cfg.num_components = 25;
      auto result = RunFbox(data.graph, cfg).ValueOrDie();
      bench::AppendCurve(&series, tag + "FBox",
                         ScoreSweep(result.user_scores, labels, sweep_sizes),
                         /*x_is_control=*/false);
    }

    // HITS (extension, not in the paper's Fig 3): the §II "HITS-like"
    // propagation family, for context.
    {
      auto result = RunHits(data.graph).ValueOrDie();
      bench::AppendCurve(&series, tag + "HITS_ext",
                         ScoreSweep(result.user_hub_scores, labels,
                                    sweep_sizes),
                         /*x_is_control=*/false);
    }

    // FRAUDAR: discrete block-prefix points.
    {
      FraudarConfig cfg;
      cfg.num_blocks = 15;
      auto result = RunFraudar(data.graph, cfg).ValueOrDie();
      bench::AppendCurve(&series, tag + "FRAUDAR",
                         BlockSweep(result.UserBlocks(), labels),
                         /*x_is_control=*/false);
    }

    // ENSEMFDET: S = 0.1, N ensemble, T swept.
    {
      EnsemFDetConfig cfg;
      cfg.method = SampleMethod::kRandomEdge;
      cfg.ratio = 0.1;
      cfg.num_samples = bench::EnsembleN();
      cfg.seed = bench::Seed();
      auto report =
          EnsemFDet(cfg).Run(data.graph, &DefaultThreadPool()).ValueOrDie();
      bench::AppendCurve(&series, tag + "EnsemFDet",
                         VoteSweep(report.votes, labels, cfg.num_samples),
                         /*x_is_control=*/false);
    }
  }

  bench::PrintTable("fig3_pr_points", series);
  std::printf(
      "\nShape check vs paper: the heuristics (FRAUDAR, EnsemFDet) are\n"
      "strong and stable on every dataset while the SVD methods are\n"
      "erratic across datasets; FBox is weak / near-invalid (its\n"
      "attacks-below-top-k premise fails when fraud blocks carry spectral\n"
      "energy); EnsemFDet traces a dense curve while FRAUDAR yields a\n"
      "handful of block-granular points. HITS_ext is an extra curve beyond\n"
      "the paper's Fig 3 for the §II propagation family.\n");
  return 0;
}
