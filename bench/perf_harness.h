// Perf-baseline harness: the single producer of the repo's BENCH_*.json
// files (schema documented in bench/README.md).
//
// Three front doors share this code so the numbers can never drift apart:
//   * bench/bench_peeling.cc      — standalone peeling bench binary
//   * bench/bench_ensemble.cc     — standalone ensemble bench binary
//   * tools/ensemfdet_cli.cc      — the `bench-report` subcommand CI runs
//
// Every measurement reports min/mean wall-clock over `repeats` runs
// (min is the headline: least scheduler noise). The peeling bench also
// *verifies* CSR-vs-adjacency parity on the bench graph and fails with
// Internal if results diverge — a malformed or lying BENCH_peeling.json
// can't be produced.
#ifndef ENSEMFDET_BENCH_PERF_HARNESS_H_
#define ENSEMFDET_BENCH_PERF_HARNESS_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace ensemfdet {
namespace bench {

/// Workload shared by both benches: a Table-I dataset1 preset graph.
struct PerfGraphSpec {
  double scale = 0.02;
  uint64_t seed = 7;
};

struct PeelingBenchOptions {
  PerfGraphSpec graph;
  /// Timed repetitions per measurement (min/mean reported).
  int repeats = 5;
  /// FDET block budget for the iterated-peeling measurements.
  int max_blocks = 12;
};

struct EnsembleBenchOptions {
  PerfGraphSpec graph;
  int repeats = 3;
  /// Ensemble size N and sampling ratio S.
  int num_samples = 16;
  double ratio = 0.1;
  /// Thread pool width for the parallel measurement (0 = hardware).
  int threads = 0;
};

/// Headline numbers of the ensemble bench, duplicated out of the JSON so
/// the CLI can print them without re-parsing the document.
struct EnsembleBenchSummary {
  /// members_per_second(zero-mat) ÷ members_per_second(materializing
  /// reference) on the same preset/pool — the PR acceptance headline.
  double zero_materialization_speedup = 0.0;
  double members_per_second = 0.0;
  /// seconds_min(1 thread) ÷ seconds_min(wide pool), where the wide pool
  /// is clamped to the runner's hardware threads (parallel_wide_threads).
  double parallel_speedup = 0.0;
  /// Resolved width of the wide scaling arm (== hardware threads).
  int parallel_wide_threads = 0;
  /// Arena buffer growths summed over a full post-warm-up run (0 when the
  /// per-worker arenas are reused perfectly), and the same per member.
  int64_t arena_grow_events = 0;
  double arena_grow_per_member = 0.0;
};

struct StreamBenchOptions {
  uint64_t seed = 7;
  /// Workload shape: a fragmented transaction day — sparse uniform
  /// background over large universes (many small components) plus several
  /// dense fraud bursts, streamed through a sliding window.
  int64_t num_users = 6000;
  int64_t num_merchants = 4000;
  int64_t num_edges = 5000;
  int num_fraud_groups = 6;
  int64_t horizon = 86400;
  int64_t burst_duration = 2400;
  int64_t window = 21600;
  int64_t detection_interval = 600;
  int64_t batch_events = 128;
  /// Ensemble size/ratio per detection.
  int num_samples = 8;
  double ratio = 0.25;
  int repeats = 3;
};

/// Headline numbers of the stream bench, duplicated out of the JSON.
struct StreamBenchSummary {
  double events_per_second_incremental = 0.0;
  double events_per_second_full_rebuild = 0.0;
  /// incremental ÷ full-rebuild events/sec — the PR acceptance headline.
  double incremental_speedup = 0.0;
  int64_t detections = 0;
  /// components_reused ÷ (reused + recomputed) across the whole replay.
  double component_reuse_fraction = 0.0;
  /// edges_recomputed ÷ edges_total across the whole replay (the share of
  /// ensemble work the dirty scoping could not skip).
  double edge_recompute_fraction = 0.0;
};

struct StorageBenchOptions {
  PerfGraphSpec graph;
  int repeats = 5;
  /// Directory for the transient bench files (TSV + .efg); empty = the
  /// system temp directory.
  std::string scratch_dir;
};

/// Headline numbers of the storage bench, duplicated out of the JSON.
struct StorageBenchSummary {
  /// tsv_parse ÷ mmap_open_verified seconds — the PR acceptance headline
  /// (snapshot loading must beat TSV parsing even when it re-hashes the
  /// whole payload).
  double mmap_verified_speedup_vs_tsv = 0.0;
  /// tsv_parse ÷ binary_read (the streaming, owning-copy reader).
  double binary_read_speedup_vs_tsv = 0.0;
  double tsv_bytes = 0.0;
  double efg_bytes = 0.0;
};

struct WalBenchOptions {
  uint64_t seed = 7;
  /// Workload shape: a synthetic batch stream (one WAL record per batch,
  /// exactly what a durable service session appends per IngestBatch ack).
  int64_t num_batches = 96;
  int64_t batch_events = 128;
  int64_t num_users = 6000;
  int64_t num_merchants = 4000;
  /// Group-commit interval for the `batch` fsync policy measurement.
  int64_t group_commit_records = 16;
  /// Segment rotation threshold — small so rotation cost is in the number.
  uint64_t segment_bytes = 256 * 1024;
  int repeats = 3;
  /// Directory for the transient WAL segments; empty = system temp.
  std::string scratch_dir;
};

/// Headline numbers of the WAL bench, duplicated out of the JSON.
struct WalBenchSummary {
  /// Acked events/sec per fsync policy: every event in the number was
  /// framed, CRC'd, appended, and carried whatever durability the policy
  /// promises before the (simulated) ack.
  double acked_events_per_second_none = 0.0;
  double acked_events_per_second_batch = 0.0;
  double acked_events_per_second_always = 0.0;
  /// The untimed replay gate passed (the document refuses to exist
  /// otherwise, so a written file always carries true).
  bool replay_identical = false;
};

/// Runs the peeling bench (adjacency vs CSR, single peel + full FDET) and
/// returns the BENCH_peeling.json document. Fails with Internal if the
/// CSR path's results are not identical to the adjacency path's.
Result<std::string> RunPeelingBench(const PeelingBenchOptions& options);

/// Runs the storage bench and returns the BENCH_storage.json document
/// (schema_version 1): the same dataset1-preset graph loaded three ways —
/// TSV parse, streaming binary read, and mmap zero-copy open (without and
/// with fingerprint verification) — plus file sizes and speedups. Before
/// anything is timed it writes the snapshot and verifies that BOTH
/// readers reproduce the writer's content fingerprint, refusing to emit
/// (Internal) on any mismatch.
Result<std::string> RunStorageBench(const StorageBenchOptions& options,
                                    StorageBenchSummary* summary = nullptr);

/// Runs the incremental-ingest stream bench and returns the
/// BENCH_stream.json document (schema_version 1): the same
/// store+boundary replay timed twice — dirty-scoped incremental detection
/// (warm StreamingDetector) vs a full rebuild (cold detector per
/// boundary) — plus reuse statistics. Before anything is timed it
/// verifies, at *every* detection boundary, that the incremental report
/// is bit-identical (votes, weighted votes, member structural stats) to
/// the full rerun, and fails with Internal — refusing to emit — on any
/// divergence. When `summary` is non-null it receives the headline
/// numbers.
Result<std::string> RunStreamBench(const StreamBenchOptions& options,
                                   StreamBenchSummary* summary = nullptr);

/// Runs the durable-ingest WAL bench and returns the BENCH_wal.json
/// document (schema_version 1): the same synthetic batch stream appended
/// through WalWriter three times, once per fsync policy (none / batch /
/// always), reported as acked events/sec — the price of each durability
/// level at the IngestBatch ack boundary. Before anything is timed it
/// writes the full log once, replays it with ReplayWal, and verifies
/// every record decodes bit-identical to the batch that produced it (seq
/// chain, timestamps, every transaction); any divergence fails with
/// Internal, refusing to emit. When `summary` is non-null it receives
/// the headline numbers.
Result<std::string> RunWalBench(const WalBenchOptions& options,
                                WalBenchSummary* summary = nullptr);

struct ObsBenchOptions {
  PerfGraphSpec graph;
  /// More repeats than the other benches: the gated quantity is a small
  /// difference between two timings, so the min needs extra samples to
  /// shake scheduler noise out. Rounded up to even inside RunObsBench so
  /// the alternating within-pair order stays balanced.
  int repeats = 12;
  int num_samples = 16;
  double ratio = 0.1;
};

/// Headline numbers of the observability-overhead bench.
struct ObsBenchSummary {
  /// (metrics-on − metrics-off) ÷ metrics-off seconds_min on the same
  /// ensemble run — the CI-gated overhead (budget: 0.02).
  double overhead_fraction = 0.0;
  double seconds_metrics_on = 0.0;
  double seconds_metrics_off = 0.0;
  /// Hot-path record costs measured in a tight loop (enabled path).
  double counter_ns_per_increment = 0.0;
  double histogram_ns_per_record = 0.0;
  /// Full TraceSpan open/close — context capture, span-id allocation,
  /// histogram record, and the flight-recorder ring write.
  double span_ns_per_record = 0.0;
};

/// Runs the observability-overhead bench and returns the BENCH_obs.json
/// document (schema_version 1): the same zero-materialization ensemble
/// run timed with metrics recording enabled vs runtime-disabled (one
/// process, SetMetricsRuntimeEnabled), plus tight-loop per-record costs
/// for Counter::Increment and Histogram::Record. Before anything is
/// timed it verifies the enabled and disabled runs produce bit-identical
/// reports — instrumentation must never perturb results — and fails with
/// Internal, refusing to emit, on any divergence. The enabled-vs-disabled
/// overhead is CI-gated at 2% by tools/check_bench.py.
Result<std::string> RunObsBench(const ObsBenchOptions& options,
                                ObsBenchSummary* summary = nullptr);

/// Runs the ensemble bench and returns the BENCH_ensemble.json document
/// (schema_version 3): zero-materialization hot path on the configured
/// pool, member-throughput scaling rows at 1/2/4/all-hardware threads
/// (the wide arm clamped to the runner's true core count and its
/// resolved width recorded), the materializing reference path, per-ISA
/// SIMD kernel rows, and a dispatch block (CPU / detected / active ISA
/// level). Fails with Internal — refusing to emit — if the hot path
/// diverges from the reference, OR if votes are not identical across
/// every runnable SIMD dispatch level, OR across every timed pool width.
/// When `summary` is non-null it receives the headline numbers.
Result<std::string> RunEnsembleBench(const EnsembleBenchOptions& options,
                                     EnsembleBenchSummary* summary = nullptr);

/// Writes `text` to `path` (overwriting); IOError on failure.
Status WriteTextFile(const std::string& path, const std::string& text);

}  // namespace bench
}  // namespace ensemfdet

#endif  // ENSEMFDET_BENCH_PERF_HARNESS_H_
