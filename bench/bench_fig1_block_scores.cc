// Fig 1 — "Scores for each detected block": the per-block density score
// series φ(G(S_i)) for several sampled graphs, showing the monotone decay
// and the common low plateau past the truncating point that justifies
// Definition 3.
//
// Paper setup: multiple RES-sampled graphs of a JD dataset, FDET run past
// the elbow (we force 16 blocks, paper's x-axis reaches 16), one curve per
// sampled graph. Shape to reproduce: all curves decrease, drop sharply
// after "few to ~10" blocks, then flatten at a similar low score.
#include <cstdio>

#include "bench_util.h"

using namespace ensemfdet;

int main() {
  bench::PrintHeader("Fig 1", "Scores for each detected block");
  Dataset data = bench::LoadPreset(JdPreset::kDataset1);

  constexpr int kSampledGraphs = 6;
  constexpr int kBlocksShown = 16;  // paper's Fig 1 x-axis range
  const double ratio = 0.1;

  auto sampler =
      MakeSampler(SampleMethod::kRandomEdge, ratio).ValueOrDie();

  TableWriter series({"sampled_graph", "block_index", "phi"});
  TableWriter elbows({"sampled_graph", "auto_truncation_khat",
                      "blocks_explored"});

  Rng root(bench::Seed());
  for (int s = 0; s < kSampledGraphs; ++s) {
    Rng member_rng = root.Split(static_cast<uint64_t>(s));
    SubgraphView view = sampler->Sample(data.graph, &member_rng);

    FdetConfig cfg;
    cfg.policy = TruncationPolicy::kFixedK;  // explore past the elbow
    cfg.fixed_k = kBlocksShown;
    cfg.max_blocks = kBlocksShown;
    FdetResult result = RunFdet(view.graph, cfg).ValueOrDie();

    for (size_t i = 0; i < result.all_scores.size(); ++i) {
      series.AddRow({std::to_string(s + 1), std::to_string(i + 1),
                     FormatDouble(result.all_scores[i])});
    }
    elbows.AddRow({std::to_string(s + 1),
                   std::to_string(AutoTruncationIndex(result.all_scores)),
                   std::to_string(result.all_scores.size())});
  }

  bench::PrintTable("fig1_series", series);
  bench::PrintTable("fig1_truncation_points", elbows);
  std::printf(
      "\nShape check vs paper: every curve decreases monotonically (up to\n"
      "small recomputation wobble) and settles at a similar low plateau;\n"
      "the truncating points land in the 'few to ~10' range.\n");
  return 0;
}
