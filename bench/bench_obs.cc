// bench_obs: the observability-overhead baseline. Times the identical
// zero-materialization ensemble run with metrics recording enabled vs
// runtime-disabled inside one process (SetMetricsRuntimeEnabled), proves
// the two runs' reports are bit-identical (instrumentation must not
// perturb detection), measures tight-loop Counter/Histogram record costs,
// and writes BENCH_obs.json (schema: bench/README.md). CI gates the
// enabled-vs-disabled overhead at 2%.
//
// Environment knobs: ENSEMFDET_SCALE (default 0.02), ENSEMFDET_SEED
// (default 7), ENSEMFDET_REPEATS (default 7), ENSEMFDET_BENCH_OUT
// (default ./BENCH_obs.json, "-" = stdout only).
#include <cstdio>
#include <string>

#include "common/env.h"
#include "perf_harness.h"

int main() {
  using namespace ensemfdet;
  bench::ObsBenchOptions options;
  options.graph.scale = GetEnvDouble("ENSEMFDET_SCALE", options.graph.scale);
  options.graph.seed = static_cast<uint64_t>(
      GetEnvInt64("ENSEMFDET_SEED", static_cast<int64_t>(options.graph.seed)));
  options.repeats = GetEnvInt("ENSEMFDET_REPEATS", options.repeats);

  bench::ObsBenchSummary summary;
  auto json = bench::RunObsBench(options, &summary);
  if (!json.ok()) {
    std::fprintf(stderr, "bench_obs: %s\n", json.status().ToString().c_str());
    return 1;
  }
  std::fputs(json->c_str(), stdout);
  std::fprintf(stderr,
               "[bench_obs] overhead %.3g%% (on %.4gs vs off %.4gs; "
               "counter %.3g ns/inc, histogram %.3g ns/rec)\n",
               100.0 * summary.overhead_fraction, summary.seconds_metrics_on,
               summary.seconds_metrics_off, summary.counter_ns_per_increment,
               summary.histogram_ns_per_record);

  const std::string out_path =
      GetEnvString("ENSEMFDET_BENCH_OUT", "BENCH_obs.json");
  if (out_path != "-") {
    Status st = bench::WriteTextFile(out_path, *json);
    if (!st.ok()) {
      std::fprintf(stderr, "bench_obs: %s\n", st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "[bench_obs] wrote %s\n", out_path.c_str());
  }
  return 0;
}
