// Fig 7 (a-d) — "Performance Analysis under different N when S = 0.1":
// the impact of the ensemble size.
//
// Paper setup: dataset 3, S=0.1, N ∈ {10, 20, 40, 80}; since the same T
// means different things under different N, curves are compared at equal
// numbers of detected PINs. Shape to reproduce: performance improves with
// N (bagging), with clearly diminishing returns — N=40 vs N=80 nearly
// indistinguishable — and stable behaviour across the whole sweep.
#include <cstdio>

#include "bench_util.h"

using namespace ensemfdet;

int main() {
  bench::PrintHeader("Fig 7", "Impact of N on dataset 3 (S = 0.1)");
  Dataset data = bench::LoadPreset(JdPreset::kDataset3);

  TableWriter series(
      {"curve", "x", "num_detected", "precision", "recall", "f1"});
  TableWriter area({"N", "pr_curve_area", "operating_points"});

  for (int n : {10, 20, 40, 80}) {
    EnsemFDetConfig cfg;
    cfg.ratio = 0.1;
    cfg.num_samples = n;
    cfg.seed = bench::Seed();
    auto report =
        EnsemFDet(cfg).Run(data.graph, &DefaultThreadPool()).ValueOrDie();
    auto points = VoteSweep(report.votes, data.blacklist, n);
    bench::AppendCurve(&series, "N=" + std::to_string(n), points,
                       /*x_is_control=*/false);
    area.AddRow({std::to_string(n), FormatDouble(PrCurveArea(points)),
                 std::to_string(points.size())});
  }

  bench::PrintTable("fig7_curves", series);
  bench::PrintTable("fig7_pr_area", area);
  std::printf(
      "\nShape check vs paper: larger N helps (bagging variance\n"
      "reduction) but the N=40 → N=80 gain is negligible — the paper's\n"
      "argument that modest parallel resources already saturate accuracy;\n"
      "all four curves stay close (stability under R = 1..8).\n");
  return 0;
}
