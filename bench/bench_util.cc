#include "bench_util.h"

#include <cstdio>
#include <iostream>

namespace ensemfdet {
namespace bench {

double Scale() { return GetEnvDouble("ENSEMFDET_SCALE", 0.02); }

int EnsembleN() { return GetEnvInt("ENSEMFDET_N", 80); }

uint64_t Seed() {
  return static_cast<uint64_t>(GetEnvInt64("ENSEMFDET_SEED", 7));
}

void PrintHeader(const std::string& experiment, const std::string& caption) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", experiment.c_str(), caption.c_str());
  std::printf("scale=%.3f  N=%d  seed=%llu  threads=%d\n",
              Scale(), EnsembleN(),
              static_cast<unsigned long long>(Seed()),
              DefaultThreadPool().num_threads());
  std::printf("================================================================\n");
}

void PrintTable(const std::string& name, const TableWriter& table) {
  std::printf("\n--- %s (csv) ---\n", name.c_str());
  table.WriteCsv(&std::cout);
  std::printf("--- %s (table) ---\n", name.c_str());
  table.WriteMarkdown(&std::cout);
  std::cout.flush();
}

Dataset LoadPreset(JdPreset preset) {
  Dataset data = GenerateJdPreset(preset, Scale(), Seed()).ValueOrDie();
  std::printf("[data] %s: %s PINs (%s blacklisted) x %s merchants, %s edges\n",
              data.name.c_str(), FormatCount(data.graph.num_users()).c_str(),
              FormatCount(data.blacklist.num_fraud()).c_str(),
              FormatCount(data.graph.num_merchants()).c_str(),
              FormatCount(data.graph.num_edges()).c_str());
  return data;
}

void AppendCurve(TableWriter* table, const std::string& curve,
                 const std::vector<OperatingPoint>& points,
                 bool x_is_control) {
  for (const OperatingPoint& p : points) {
    const double x = x_is_control ? p.control
                                  : static_cast<double>(p.num_detected);
    table->AddRow({curve, FormatDouble(x, 0), FormatCount(p.num_detected),
                   FormatDouble(p.precision), FormatDouble(p.recall),
                   FormatDouble(p.f1)});
  }
}

}  // namespace bench
}  // namespace ensemfdet
