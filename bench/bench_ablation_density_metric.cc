// Ablation — column-weight family of the density score (DESIGN.md): the
// paper's Definition 2 adopts FRAUDAR's logarithmic popularity discount
// specifically for camouflage resistance. This bench runs the full
// ENSEMFDET pipeline under all three weightings on dataset 1 (whose
// planted fraud camouflages at popular merchants, and whose benign
// micro-communities sit on popular merchants by construction) and reports
// the PR quality of each — quantifying how much of the paper's accuracy
// comes from the metric choice rather than the ensemble machinery.
#include <cstdio>

#include "bench_util.h"

using namespace ensemfdet;

int main() {
  bench::PrintHeader("Ablation: density metric",
                     "column weight 1/log(c+d) vs 1/(c+d) vs constant");
  Dataset data = bench::LoadPreset(JdPreset::kDataset1);

  TableWriter series(
      {"curve", "x", "num_detected", "precision", "recall", "f1"});
  TableWriter areas({"weight kind", "pr_curve_area", "avg khat"});

  for (ColumnWeightKind kind :
       {ColumnWeightKind::kLogarithmic, ColumnWeightKind::kInverse,
        ColumnWeightKind::kConstant}) {
    EnsemFDetConfig cfg;
    cfg.ratio = 0.1;
    cfg.num_samples = bench::EnsembleN();
    cfg.seed = bench::Seed();
    cfg.fdet.density.weight_kind = kind;
    if (kind == ColumnWeightKind::kInverse) {
      cfg.fdet.density.log_offset = 1.0;
    }
    auto report =
        EnsemFDet(cfg).Run(data.graph, &DefaultThreadPool()).ValueOrDie();
    auto points =
        VoteSweep(report.votes, data.blacklist, cfg.num_samples);
    bench::AppendCurve(&series, ColumnWeightKindName(kind), points,
                       /*x_is_control=*/false);
    double khat = 0.0;
    for (const auto& m : report.members) khat += m.num_blocks;
    khat /= static_cast<double>(report.members.size());
    areas.AddRow({ColumnWeightKindName(kind),
                  FormatDouble(PrCurveArea(points)),
                  FormatDouble(khat, 1)});
  }

  bench::PrintTable("density_metric_curves", series);
  bench::PrintTable("density_metric_pr_area", areas);
  std::printf(
      "\nReading: the logarithmic discount should lead — popularity-blind\n"
      "constant weighting chases flash-sale crowds and camouflage edges,\n"
      "while the aggressive 1/(c+d) discount throws away too much of the\n"
      "fraud blocks' own (necessarily popular) colluding merchants.\n");
  return 0;
}
