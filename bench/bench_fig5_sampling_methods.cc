// Fig 5 — "Performance comparison among different sampling methods in
// ENSEMFDET": Precision-Recall curves of the four bagging variants on
// dataset 3.
//
// Paper setup: dataset 3, S=0.1, repetition rate R=8 (→ N=80), methods:
// Random_Edge_Bagging (RES), Node_PIN_Bagging (ONS user side),
// Node_Merchant_Bagging (ONS merchant side), Two_sides_Bagging (TNS).
// Shape to reproduce: Node_PIN_Bagging clearly worst (sampling the sparse
// side flattens dense topology, §IV-A3); the other three similar and
// stable, Node_Merchant_Bagging strong because Davg(merchant) ≫ Davg(PIN).
#include <cstdio>

#include "bench_util.h"

using namespace ensemfdet;

int main() {
  bench::PrintHeader("Fig 5",
                     "Sampling-method comparison on dataset 3 (S=0.1, R=8)");
  Dataset data = bench::LoadPreset(JdPreset::kDataset3);

  struct Variant {
    const char* curve;
    SampleMethod method;
  };
  const Variant variants[] = {
      {"Random_Edge_Bagging", SampleMethod::kRandomEdge},
      {"Node_PIN_Bagging", SampleMethod::kOneSideUser},
      {"Node_Merchant_Bagging", SampleMethod::kOneSideMerchant},
      {"Two_sides_Bagging", SampleMethod::kTwoSide},
  };

  TableWriter series(
      {"curve", "x", "num_detected", "precision", "recall", "f1"});
  TableWriter sizes({"curve", "avg_sample_edges", "avg_sample_users",
                     "avg_sample_merchants", "avg_khat"});

  for (const Variant& v : variants) {
    EnsemFDetConfig cfg;
    cfg.method = v.method;
    cfg.ratio = 0.1;
    cfg.num_samples = bench::EnsembleN();  // R = S·N = 8 at N = 80
    cfg.seed = bench::Seed();
    auto report =
        EnsemFDet(cfg).Run(data.graph, &DefaultThreadPool()).ValueOrDie();
    bench::AppendCurve(&series, v.curve,
                       VoteSweep(report.votes, data.blacklist,
                                 cfg.num_samples),
                       /*x_is_control=*/false);

    double edges = 0, users = 0, merchants = 0, khat = 0;
    for (const auto& m : report.members) {
      edges += static_cast<double>(m.sample_edges);
      users += static_cast<double>(m.sample_users);
      merchants += static_cast<double>(m.sample_merchants);
      khat += m.num_blocks;
    }
    const double n = static_cast<double>(report.members.size());
    sizes.AddRow({v.curve, FormatCount(static_cast<int64_t>(edges / n)),
                  FormatCount(static_cast<int64_t>(users / n)),
                  FormatCount(static_cast<int64_t>(merchants / n)),
                  FormatDouble(khat / n, 1)});
  }

  bench::PrintTable("fig5_pr_curves", series);
  bench::PrintTable("fig5_sample_sizes", sizes);
  std::printf(
      "\nShape check vs paper: all four bagging variants produce usable,\n"
      "stable curves, and the choice of sampled side visibly changes both\n"
      "accuracy and sample-size economics (the paper's §IV-A3 point).\n"
      "Known deviation (see EXPERIMENTS.md): the paper's specific ordering\n"
      "— Node_PIN_Bagging strictly worst — arises in its proprietary\n"
      "degree regime (Davg(PIN)≈1 with ~7,000-user groups, so a PIN-side\n"
      "sample thins each group 10x while merchant columns survive whole).\n"
      "At bench scale our groups are ~100 users with informative rows, so\n"
      "PIN-side sampling retains topology too; rerun with ENSEMFDET_SCALE\n"
      "closer to 1 to enter the paper's regime.\n");
  return 0;
}
