// Fig 4 (a-f) — "Performance and properties Analysis between ENSEMFDET and
// FRAUDAR": F1 and Precision as functions of the number of detected PINs,
// per dataset.
//
// Paper setup: S=0.1, N=80; FRAUDAR's points come from growing prefixes of
// its detected blocks (diamond markers / polyline), ENSEMFDET's from the
// near-continuous threshold sweep. Shape to reproduce: comparable peak F1,
// but ENSEMFDET's curve is smooth and spans every detection budget while
// FRAUDAR jumps in large discrete steps (the 20,000-node span the paper
// calls out as unusable in production).
#include <algorithm>
#include <cstdio>

#include "bench_util.h"

using namespace ensemfdet;

int main() {
  bench::PrintHeader("Fig 4",
                     "F1 / Precision vs #detected PIN: EnsemFDet vs FRAUDAR");

  TableWriter series(
      {"curve", "x", "num_detected", "precision", "recall", "f1"});
  TableWriter granularity({"dataset", "method", "operating_points",
                           "max_step_in_#detected"});

  for (JdPreset preset : AllJdPresets()) {
    Dataset data = bench::LoadPreset(preset);
    const LabelSet& labels = data.blacklist;
    const std::string tag = data.name + "/";

    // FRAUDAR prefix points.
    FraudarConfig fraudar_cfg;
    fraudar_cfg.num_blocks = 15;
    auto fraudar = RunFraudar(data.graph, fraudar_cfg).ValueOrDie();
    auto fraudar_points = BlockSweep(fraudar.UserBlocks(), labels);
    bench::AppendCurve(&series, tag + "Fraudar", fraudar_points,
                       /*x_is_control=*/false);

    // ENSEMFDET threshold sweep.
    EnsemFDetConfig cfg;
    cfg.ratio = 0.1;
    cfg.num_samples = bench::EnsembleN();
    cfg.seed = bench::Seed();
    auto report =
        EnsemFDet(cfg).Run(data.graph, &DefaultThreadPool()).ValueOrDie();
    auto ens_points = VoteSweep(report.votes, labels, cfg.num_samples);
    bench::AppendCurve(&series, tag + "EnsemFDet", ens_points,
                       /*x_is_control=*/false);

    // The paper's practicability argument, quantified: curve granularity.
    auto max_step = [](const std::vector<OperatingPoint>& pts) {
      int64_t step = 0;
      for (size_t i = 1; i < pts.size(); ++i) {
        step = std::max(step, pts[i].num_detected - pts[i - 1].num_detected);
      }
      return step;
    };
    granularity.AddRow({data.name, "Fraudar",
                        std::to_string(fraudar_points.size()),
                        FormatCount(max_step(fraudar_points))});
    granularity.AddRow({data.name, "EnsemFDet",
                        std::to_string(ens_points.size()),
                        FormatCount(max_step(ens_points))});
  }

  bench::PrintTable("fig4_curves", series);
  bench::PrintTable("fig4_granularity", granularity);
  std::printf(
      "\nShape check vs paper: peak F1 of the two methods is comparable on\n"
      "each dataset, but FRAUDAR offers only a handful of operating points\n"
      "with large jumps in #detected (the paper's 'huge span' problem),\n"
      "while EnsemFDet covers the whole budget axis smoothly via T.\n");
  return 0;
}
