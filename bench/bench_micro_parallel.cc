// Ablation: ensemble wall-time vs thread count (DESIGN.md design choice
// #3) — the parallelism that gives ENSEMFDET its Table III advantage. Also
// measures the raw thread-pool dispatch overhead.
#include <benchmark/benchmark.h>

#include "common/thread_pool.h"
#include "datagen/presets.h"
#include "detect/partitioned_fdet.h"
#include "ensemble/ensemfdet.h"

namespace ensemfdet {
namespace {

const Dataset& SharedDataset() {
  static const Dataset* data =
      new Dataset(GenerateJdPreset(JdPreset::kDataset1, 0.01, 7)
                      .ValueOrDie());
  return *data;
}

void BM_EnsembleThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const Dataset& data = SharedDataset();
  EnsemFDetConfig cfg;
  cfg.num_samples = 24;
  cfg.ratio = 0.1;
  cfg.seed = 7;
  ThreadPool pool(threads);
  for (auto _ : state) {
    auto report = EnsemFDet(cfg).Run(data.graph, &pool).ValueOrDie();
    benchmark::DoNotOptimize(report.votes.max_user_votes());
  }
  state.SetLabel(std::to_string(threads) + " threads");
}
BENCHMARK(BM_EnsembleThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_EnsembleSequentialBaseline(benchmark::State& state) {
  const Dataset& data = SharedDataset();
  EnsemFDetConfig cfg;
  cfg.num_samples = 24;
  cfg.ratio = 0.1;
  cfg.seed = 7;
  for (auto _ : state) {
    auto report = EnsemFDet(cfg).Run(data.graph, nullptr).ValueOrDie();
    benchmark::DoNotOptimize(report.votes.max_user_votes());
  }
}
BENCHMARK(BM_EnsembleSequentialBaseline)->Unit(benchmark::kMillisecond);

void BM_PartitionedFdet(benchmark::State& state) {
  const Dataset& data = SharedDataset();
  PartitionedFdetConfig cfg;
  cfg.fdet.policy = TruncationPolicy::kFixedK;
  cfg.fdet.fixed_k = 10;
  cfg.min_component_edges = 3;
  const int threads = static_cast<int>(state.range(0));
  ThreadPool pool(threads);
  for (auto _ : state) {
    auto r = RunPartitionedFdet(data.graph, cfg,
                                threads > 1 ? &pool : nullptr)
                 .ValueOrDie();
    benchmark::DoNotOptimize(r.blocks.size());
  }
  state.SetLabel(std::to_string(threads) + " threads");
}
BENCHMARK(BM_PartitionedFdet)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_GlobalFdetBaseline(benchmark::State& state) {
  const Dataset& data = SharedDataset();
  FdetConfig cfg;
  cfg.policy = TruncationPolicy::kFixedK;
  cfg.fixed_k = 10;
  for (auto _ : state) {
    auto r = RunFdet(data.graph, cfg).ValueOrDie();
    benchmark::DoNotOptimize(r.blocks.size());
  }
}
BENCHMARK(BM_GlobalFdetBaseline)->Unit(benchmark::kMillisecond);

void BM_ThreadPoolDispatchOverhead(benchmark::State& state) {
  ThreadPool pool(4);
  for (auto _ : state) {
    pool.ParallelFor(0, 256, [](int64_t i) { benchmark::DoNotOptimize(i); });
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_ThreadPoolDispatchOverhead)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace ensemfdet

BENCHMARK_MAIN();
