// Fig 9 (a-d) — "Performance Analysis under different T when fixing S=0.1
// and N=80": the impact of the voting threshold, on all three datasets.
//
// Shape to reproduce: Precision rises and Recall falls monotonically (and
// smoothly) in T; #detected shrinks as T grows. The smooth, monotone
// curves are what make T a deployable tuning knob — pick the point
// matching the business's error-budget, per §V-D3.
#include <cstdio>

#include "bench_util.h"

using namespace ensemfdet;

int main() {
  bench::PrintHeader("Fig 9",
                     "Impact of T on all datasets (S = 0.1, N = 80)");

  const int n = bench::EnsembleN();
  const int t_max = std::min(40, n);

  TableWriter series(
      {"curve", "x", "num_detected", "precision", "recall", "f1"});
  TableWriter monotonicity({"dataset", "precision_inversions",
                            "recall_inversions", "points"});

  for (JdPreset preset : AllJdPresets()) {
    Dataset data = bench::LoadPreset(preset);
    EnsemFDetConfig cfg;
    cfg.ratio = 0.1;
    cfg.num_samples = n;
    cfg.seed = bench::Seed();
    auto report =
        EnsemFDet(cfg).Run(data.graph, &DefaultThreadPool()).ValueOrDie();

    // Evaluate every T in [1, t_max] explicitly (x = T, paper's x-axis).
    std::vector<OperatingPoint> points;
    for (int32_t t = 1; t <= t_max; ++t) {
      auto detected = report.votes.AcceptedUsers(t);
      Confusion c = CountConfusion(detected, data.blacklist);
      OperatingPoint p;
      p.control = t;
      p.num_detected = c.num_detected();
      p.precision = Precision(c);
      p.recall = Recall(c);
      p.f1 = F1Score(c);
      points.push_back(p);
    }
    bench::AppendCurve(&series, data.name, points, /*x_is_control=*/true);

    // Quantify the smooth/monotone claim: count inversions along T.
    int precision_inversions = 0, recall_inversions = 0;
    for (size_t i = 1; i < points.size(); ++i) {
      precision_inversions += points[i].precision < points[i - 1].precision -
                                                        1e-9;
      recall_inversions += points[i].recall > points[i - 1].recall + 1e-9;
    }
    monotonicity.AddRow({data.name, std::to_string(precision_inversions),
                         std::to_string(recall_inversions),
                         std::to_string(points.size())});
  }

  bench::PrintTable("fig9_curves", series);
  bench::PrintTable("fig9_monotonicity", monotonicity);
  std::printf(
      "\nShape check vs paper: Recall decreases monotonically in T\n"
      "(strictly: fewer votes ⇒ subset detections); Precision trends\n"
      "upward with only occasional small inversions; #detected shrinks\n"
      "smoothly, giving the deployable precision/recall dial of §V-D3.\n");
  return 0;
}
