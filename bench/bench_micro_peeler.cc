// Ablation: the indexed-min-heap peeler vs a naive rescan peeler.
//
// DESIGN.md design choice #1 — the paper's O(kˆ·|E|·log(|U|+|V|)) bound
// rests on the "minimal heap" giving O(log n) updates; this bench measures
// the peeler against an O(n) rescan-per-removal baseline to quantify that
// choice, plus the peeler's scaling in |E|.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "detect/density.h"
#include "detect/greedy_peeler.h"
#include "graph/graph_builder.h"

namespace ensemfdet {
namespace {

BipartiteGraph RandomGraph(int64_t users, int64_t merchants,
                           int64_t edges, uint64_t seed) {
  GraphBuilder b(users, merchants);
  Rng rng(seed);
  b.Reserve(edges);
  for (int64_t i = 0; i < edges; ++i) {
    b.AddEdge(static_cast<UserId>(rng.NextBounded(
                  static_cast<uint64_t>(users))),
              static_cast<MerchantId>(rng.NextBounded(
                  static_cast<uint64_t>(merchants))));
  }
  return b.Build().ValueOrDie();
}

// Reference peeler: same greedy, but finds the min-priority node by a full
// scan each round — O(n²) node work instead of O((n + E) log n).
double NaiveRescanPeel(const BipartiteGraph& g, const DensityConfig& cfg) {
  const int64_t num_users = g.num_users();
  const int64_t total = g.num_nodes();
  std::vector<double> col_weight(static_cast<size_t>(g.num_merchants()));
  for (int64_t v = 0; v < g.num_merchants(); ++v) {
    col_weight[static_cast<size_t>(v)] = MerchantColumnWeight(
        static_cast<double>(g.merchant_degree(static_cast<MerchantId>(v))),
        cfg);
  }
  std::vector<double> priority(static_cast<size_t>(total), 0.0);
  double mass = 0.0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    const double w = g.edge_weight(e) * col_weight[edge.merchant];
    priority[edge.user] += w;
    priority[static_cast<size_t>(num_users) + edge.merchant] += w;
    mass += w;
  }
  std::vector<bool> removed(static_cast<size_t>(total), false);
  double best = 0.0;
  int64_t alive = total;
  for (int64_t round = 0; round < total; ++round) {
    best = std::max(best, alive > 0 ? mass / static_cast<double>(alive) : 0.0);
    // Full scan for the minimum.
    int64_t victim = -1;
    double victim_priority = 0.0;
    for (int64_t i = 0; i < total; ++i) {
      if (removed[static_cast<size_t>(i)]) continue;
      if (victim < 0 || priority[static_cast<size_t>(i)] < victim_priority) {
        victim = i;
        victim_priority = priority[static_cast<size_t>(i)];
      }
    }
    removed[static_cast<size_t>(victim)] = true;
    --alive;
    if (victim < num_users) {
      for (EdgeId e : g.user_edges(static_cast<UserId>(victim))) {
        const MerchantId v = g.edge(e).merchant;
        if (removed[static_cast<size_t>(num_users + v)]) continue;
        const double w = g.edge_weight(e) * col_weight[v];
        mass -= w;
        priority[static_cast<size_t>(num_users) + v] -= w;
      }
    } else {
      const MerchantId v = static_cast<MerchantId>(victim - num_users);
      for (EdgeId e : g.merchant_edges(v)) {
        const UserId u = g.edge(e).user;
        if (removed[u]) continue;
        const double w = g.edge_weight(e) * col_weight[v];
        mass -= w;
        priority[u] -= w;
      }
    }
  }
  return best;
}

void BM_HeapPeeler(benchmark::State& state) {
  const int64_t edges = state.range(0);
  auto g = RandomGraph(edges / 4, edges / 8, edges, 42);
  for (auto _ : state) {
    PeelResult r = PeelDensestBlock(g, {});
    benchmark::DoNotOptimize(r.score);
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_HeapPeeler)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16)
    ->Arg(1 << 18)->Unit(benchmark::kMillisecond);

void BM_NaiveRescanPeeler(benchmark::State& state) {
  const int64_t edges = state.range(0);
  auto g = RandomGraph(edges / 4, edges / 8, edges, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(NaiveRescanPeel(g, {}));
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
// Naive is quadratic: keep sizes modest so the bench finishes.
BENCHMARK(BM_NaiveRescanPeeler)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16)
    ->Unit(benchmark::kMillisecond);

// Sanity coupling: heap and naive peelers agree on the best score — run
// once under the bench binary so the ablation is provably apples-to-apples.
void BM_PeelerAgreement(benchmark::State& state) {
  auto g = RandomGraph(2000, 800, 1 << 13, 7);
  PeelResult heap_result = PeelDensestBlock(g, {});
  double naive_best = NaiveRescanPeel(g, {});
  if (std::abs(heap_result.score - naive_best) > 1e-9) {
    state.SkipWithError("heap and naive peelers disagree");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(heap_result.score);
  }
}
BENCHMARK(BM_PeelerAgreement)->Iterations(1);

}  // namespace
}  // namespace ensemfdet

BENCHMARK_MAIN();
