// bench_stream: the incremental-ingest perf baseline. Replays a
// fragmented campaign-day transaction stream through a sliding-window
// DynamicGraphStore twice — dirty-scoped incremental detection (warm
// StreamingDetector reusing clean components) vs a full rebuild (cold
// detector at every boundary) — verifies the two paths produce
// bit-identical reports at every detection boundary, and writes
// BENCH_stream.json (schema: bench/README.md). Refuses to emit on any
// vote-parity failure.
//
// Environment knobs: ENSEMFDET_SEED (default 7), ENSEMFDET_REPEATS
// (default 3), ENSEMFDET_STREAM_EVENTS (approximate edge budget, default
// 5000), ENSEMFDET_BENCH_OUT (default ./BENCH_stream.json, "-" = stdout
// only).
#include <cstdio>
#include <string>

#include "common/env.h"
#include "perf_harness.h"

int main() {
  using namespace ensemfdet;
  bench::StreamBenchOptions options;
  options.seed = static_cast<uint64_t>(
      GetEnvInt64("ENSEMFDET_SEED", static_cast<int64_t>(options.seed)));
  options.repeats = GetEnvInt("ENSEMFDET_REPEATS", options.repeats);
  options.num_edges =
      GetEnvInt64("ENSEMFDET_STREAM_EVENTS", options.num_edges);

  bench::StreamBenchSummary summary;
  auto json = bench::RunStreamBench(options, &summary);
  if (!json.ok()) {
    std::fprintf(stderr, "bench_stream: %s\n",
                 json.status().ToString().c_str());
    return 1;
  }
  std::fputs(json->c_str(), stdout);
  std::fprintf(stderr,
               "[bench_stream] incremental %.0f events/s vs full-rebuild "
               "%.0f events/s (%.2fx, %lld detections, %.0f%% component "
               "reuse, parity verified)\n",
               summary.events_per_second_incremental,
               summary.events_per_second_full_rebuild,
               summary.incremental_speedup,
               static_cast<long long>(summary.detections),
               100.0 * summary.component_reuse_fraction);

  const std::string out_path =
      GetEnvString("ENSEMFDET_BENCH_OUT", "BENCH_stream.json");
  if (out_path != "-") {
    Status st = bench::WriteTextFile(out_path, *json);
    if (!st.ok()) {
      std::fprintf(stderr, "bench_stream: %s\n", st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "[bench_stream] wrote %s\n", out_path.c_str());
  }
  return 0;
}
