// Table I — "Statistics of datasets": regenerates the three synthetic
// JD-shaped datasets and prints their statistics next to the paper's
// originals, so the scaled substitution is auditable.
#include <cstdio>

#include "bench_util.h"

using namespace ensemfdet;

namespace {

struct PaperRow {
  const char* name;
  int64_t pins;
  int64_t fraud_pins;
  int64_t merchants;
  int64_t edges;
};

constexpr PaperRow kPaper[] = {
    {"dataset1", 454925, 24247, 226585, 1023846},
    {"dataset2", 2194325, 16035, 120867, 2790517},
    {"dataset3", 4332696, 101702, 556634, 7997696},
};

}  // namespace

int main() {
  bench::PrintHeader("Table I", "Statistics of datasets");

  TableWriter table({"Dataset", "Node:PIN", "Fraud PIN", "Node:Merchant",
                     "Edge", "paper PIN", "paper Fraud", "paper Merchant",
                     "paper Edge"});
  TableWriter shape({"Dataset", "fraud rate", "paper fraud rate",
                     "avg PIN degree", "avg merchant degree"});

  auto presets = AllJdPresets();
  for (size_t i = 0; i < presets.size(); ++i) {
    Dataset data = bench::LoadPreset(presets[i]);
    const PaperRow& paper = kPaper[i];
    const int64_t fraud =
        static_cast<int64_t>(data.planted_fraud_users.size());
    table.AddRow({data.name, FormatCount(data.graph.num_users()),
                  FormatCount(fraud),
                  FormatCount(data.graph.num_merchants()),
                  FormatCount(data.graph.num_edges()),
                  FormatCount(paper.pins), FormatCount(paper.fraud_pins),
                  FormatCount(paper.merchants), FormatCount(paper.edges)});

    DegreeStats pin_stats = ComputeDegreeStats(data.graph, Side::kUser);
    DegreeStats merchant_stats =
        ComputeDegreeStats(data.graph, Side::kMerchant);
    shape.AddRow(
        {data.name,
         FormatDouble(static_cast<double>(fraud) /
                      static_cast<double>(data.graph.num_users())),
         FormatDouble(static_cast<double>(paper.fraud_pins) /
                      static_cast<double>(paper.pins)),
         FormatDouble(pin_stats.avg_degree, 2),
         FormatDouble(merchant_stats.avg_degree, 2)});
  }

  bench::PrintTable("table1_statistics", table);
  bench::PrintTable("table1_shape_check", shape);
  std::printf(
      "\nShape check vs paper: generated counts are the paper's Table I\n"
      "multiplied by ENSEMFDET_SCALE; fraud rates match the originals\n"
      "(5.3%%, 0.7%%, 2.3%%), and dataset 2/3 keep their many-PINs-per-\n"
      "merchant imbalance.\n");
  return 0;
}
