// bench_peeling: the peeling perf baseline. Measures the adjacency-list
// peeler vs the in-place CSR peeler (single peel + full iterated FDET) on
// a dataset1-preset graph, verifies the two paths produce identical
// results, and writes BENCH_peeling.json (schema: bench/README.md).
//
// Environment knobs: ENSEMFDET_SCALE (default 0.02), ENSEMFDET_SEED
// (default 7), ENSEMFDET_REPEATS (default 5), ENSEMFDET_BENCH_OUT
// (default ./BENCH_peeling.json, "-" = stdout only).
#include <cstdio>
#include <string>

#include "common/env.h"
#include "perf_harness.h"

int main() {
  using namespace ensemfdet;
  bench::PeelingBenchOptions options;
  options.graph.scale = GetEnvDouble("ENSEMFDET_SCALE", options.graph.scale);
  options.graph.seed = static_cast<uint64_t>(
      GetEnvInt64("ENSEMFDET_SEED", static_cast<int64_t>(options.graph.seed)));
  options.repeats = GetEnvInt("ENSEMFDET_REPEATS", options.repeats);

  auto json = bench::RunPeelingBench(options);
  if (!json.ok()) {
    std::fprintf(stderr, "bench_peeling: %s\n",
                 json.status().ToString().c_str());
    return 1;
  }
  std::fputs(json->c_str(), stdout);

  const std::string out_path =
      GetEnvString("ENSEMFDET_BENCH_OUT", "BENCH_peeling.json");
  if (out_path != "-") {
    Status st = bench::WriteTextFile(out_path, *json);
    if (!st.ok()) {
      std::fprintf(stderr, "bench_peeling: %s\n", st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "[bench_peeling] wrote %s\n", out_path.c_str());
  }
  return 0;
}
