// Microbench: sampler throughput per method and ratio (DESIGN.md design
// choice #4), on a dataset-3-shaped graph. Also exercises the Lemma 1
// expected-degree helpers at realistic histogram sizes.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "datagen/presets.h"
#include "graph/graph_stats.h"
#include "sampling/sampler.h"
#include "sampling/sampling_theory.h"

namespace ensemfdet {
namespace {

const Dataset& SharedDataset() {
  static const Dataset* data =
      new Dataset(GenerateJdPreset(JdPreset::kDataset3, 0.005, 7)
                      .ValueOrDie());
  return *data;
}

void BM_Sampler(benchmark::State& state) {
  const auto method = static_cast<SampleMethod>(state.range(0));
  const double ratio = static_cast<double>(state.range(1)) / 100.0;
  const BipartiteGraph& g = SharedDataset().graph;
  auto sampler = MakeSampler(method, ratio).ValueOrDie();
  uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    SubgraphView view = sampler->Sample(g, &rng);
    benchmark::DoNotOptimize(view.graph.num_edges());
  }
  state.SetLabel(SampleMethodName(method));
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_Sampler)
    ->Args({static_cast<int>(SampleMethod::kRandomEdge), 1})
    ->Args({static_cast<int>(SampleMethod::kRandomEdge), 10})
    ->Args({static_cast<int>(SampleMethod::kOneSideUser), 10})
    ->Args({static_cast<int>(SampleMethod::kOneSideMerchant), 10})
    ->Args({static_cast<int>(SampleMethod::kTwoSide), 10})
    ->Unit(benchmark::kMillisecond);

void BM_ExpectedDegreeTheory(benchmark::State& state) {
  const BipartiteGraph& g = SharedDataset().graph;
  auto hist = DegreeHistogram(g, Side::kUser);
  for (auto _ : state) {
    auto ns = ExpectedSampledDegreeCountsNS(hist, 0.1);
    auto es = ExpectedSampledDegreeCountsES(hist, 0.1);
    benchmark::DoNotOptimize(ns.data());
    benchmark::DoNotOptimize(es.data());
  }
}
BENCHMARK(BM_ExpectedDegreeTheory);

void BM_WithoutReplacementDraw(benchmark::State& state) {
  const uint64_t population = static_cast<uint64_t>(state.range(0));
  const uint64_t k = population / 10;
  Rng rng(3);
  for (auto _ : state) {
    auto sample = rng.SampleWithoutReplacement(population, k);
    benchmark::DoNotOptimize(sample.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(k));
}
BENCHMARK(BM_WithoutReplacementDraw)->Arg(1 << 14)->Arg(1 << 18)
    ->Arg(1 << 22);

}  // namespace
}  // namespace ensemfdet

BENCHMARK_MAIN();
