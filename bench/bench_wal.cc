// bench_wal: the durable-ingest perf baseline. Appends the same synthetic
// batch stream through the CRC-framed WAL writer once per fsync policy
// (none / batch / always), verifies the log replays bit-identical to the
// batches that produced it, and writes BENCH_wal.json (schema:
// bench/README.md) — acked events/sec is the price of each durability
// level at the IngestBatch ack boundary.
//
// Environment knobs: ENSEMFDET_SEED (default 7), ENSEMFDET_REPEATS
// (default 3), ENSEMFDET_WAL_BATCHES (default 96), ENSEMFDET_BENCH_OUT
// (default ./BENCH_wal.json, "-" = stdout only).
#include <cstdio>
#include <string>

#include "common/env.h"
#include "perf_harness.h"

int main() {
  using namespace ensemfdet;
  bench::WalBenchOptions options;
  options.seed = static_cast<uint64_t>(
      GetEnvInt64("ENSEMFDET_SEED", static_cast<int64_t>(options.seed)));
  options.repeats = GetEnvInt("ENSEMFDET_REPEATS", options.repeats);
  options.num_batches =
      GetEnvInt64("ENSEMFDET_WAL_BATCHES", options.num_batches);

  auto json = bench::RunWalBench(options);
  if (!json.ok()) {
    std::fprintf(stderr, "bench_wal: %s\n", json.status().ToString().c_str());
    return 1;
  }
  std::fputs(json->c_str(), stdout);

  const std::string out_path =
      GetEnvString("ENSEMFDET_BENCH_OUT", "BENCH_wal.json");
  if (out_path != "-") {
    Status st = bench::WriteTextFile(out_path, *json);
    if (!st.ok()) {
      std::fprintf(stderr, "bench_wal: %s\n", st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "[bench_wal] wrote %s\n", out_path.c_str());
  }
  return 0;
}
