// bench_ensemble: the end-to-end ensemble perf baseline. Times an
// N-member ENSEMFDET run on a dataset1-preset graph — zero-
// materialization hot path on the configured pool, member-throughput
// scaling rows at 1/2/4/all-hardware threads (the wide arm clamped to
// the runner's true core count), the materializing reference path, and
// per-ISA SIMD kernel rows with a runtime-dispatch block — verifies
// vote identity between the hot path and the reference AND across every
// runnable SIMD dispatch level AND across every timed pool width
// (refusing to emit on any divergence), and writes BENCH_ensemble.json
// (schema_version 3: bench/README.md).
//
// Environment knobs: ENSEMFDET_SCALE (default 0.02), ENSEMFDET_SEED
// (default 7), ENSEMFDET_REPEATS (default 3), ENSEMFDET_N (default 16),
// ENSEMFDET_S (default 0.1), ENSEMFDET_THREADS (default hardware),
// ENSEMFDET_BENCH_OUT (default ./BENCH_ensemble.json, "-" = stdout only).
#include <cstdio>
#include <string>

#include "common/env.h"
#include "perf_harness.h"

int main() {
  using namespace ensemfdet;
  bench::EnsembleBenchOptions options;
  options.graph.scale = GetEnvDouble("ENSEMFDET_SCALE", options.graph.scale);
  options.graph.seed = static_cast<uint64_t>(
      GetEnvInt64("ENSEMFDET_SEED", static_cast<int64_t>(options.graph.seed)));
  options.repeats = GetEnvInt("ENSEMFDET_REPEATS", options.repeats);
  options.num_samples = GetEnvInt("ENSEMFDET_N", options.num_samples);
  options.ratio = GetEnvDouble("ENSEMFDET_S", options.ratio);
  options.threads = GetEnvInt("ENSEMFDET_THREADS", options.threads);

  auto json = bench::RunEnsembleBench(options);
  if (!json.ok()) {
    std::fprintf(stderr, "bench_ensemble: %s\n",
                 json.status().ToString().c_str());
    return 1;
  }
  std::fputs(json->c_str(), stdout);

  const std::string out_path =
      GetEnvString("ENSEMFDET_BENCH_OUT", "BENCH_ensemble.json");
  if (out_path != "-") {
    Status st = bench::WriteTextFile(out_path, *json);
    if (!st.ok()) {
      std::fprintf(stderr, "bench_ensemble: %s\n", st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "[bench_ensemble] wrote %s\n", out_path.c_str());
  }
  return 0;
}
