// Ablation — aggregation methods: plain majority voting (Definition 4)
// vs score-weighted voting (the flexible-aggregation extension the paper's
// Definition 4 remark invites), on all three datasets.
//
// Both aggregations consume the same ensemble run, so the comparison
// isolates the aggregation function itself. Expected outcome: broadly
// similar curves, with score weighting buying extra precision at small
// detection budgets because nodes from high-φ blocks outrank nodes that
// scraped into many marginal blocks.
#include <cstdio>

#include "bench_util.h"

using namespace ensemfdet;

int main() {
  bench::PrintHeader("Ablation: aggregation",
                     "Majority voting (Definition 4) vs score-weighted "
                     "voting");

  TableWriter series(
      {"curve", "x", "num_detected", "precision", "recall", "f1"});
  TableWriter areas({"dataset", "mva_pr_area", "weighted_pr_area"});

  for (JdPreset preset : AllJdPresets()) {
    Dataset data = bench::LoadPreset(preset);
    EnsemFDetConfig cfg;
    cfg.ratio = 0.1;
    cfg.num_samples = bench::EnsembleN();
    cfg.seed = bench::Seed();
    auto report =
        EnsemFDet(cfg).Run(data.graph, &DefaultThreadPool()).ValueOrDie();

    auto mva_points =
        VoteSweep(report.votes, data.blacklist, cfg.num_samples);
    bench::AppendCurve(&series, data.name + "/MVA", mva_points,
                       /*x_is_control=*/false);

    // Weighted votes form a continuous score — sweep detection-set sizes
    // matching the MVA curve's span for a fair comparison.
    int64_t max_detected = 1;
    for (const auto& p : mva_points) {
      max_detected = std::max(max_detected, p.num_detected);
    }
    auto sizes = GeometricSizes(10, std::max<int64_t>(11, max_detected), 25);
    auto weighted_points =
        ScoreSweep(report.weighted_user_votes, data.blacklist, sizes);
    bench::AppendCurve(&series, data.name + "/ScoreWeighted",
                       weighted_points, /*x_is_control=*/false);

    areas.AddRow({data.name, FormatDouble(PrCurveArea(mva_points)),
                  FormatDouble(PrCurveArea(weighted_points))});
  }

  bench::PrintTable("aggregation_curves", series);
  bench::PrintTable("aggregation_pr_area", areas);
  std::printf(
      "\nReading: the two aggregations share one ensemble run; differences\n"
      "are purely in how per-member flags combine. Score weighting adds a\n"
      "density prior on top of agreement counting.\n");
  return 0;
}
