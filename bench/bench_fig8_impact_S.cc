// Fig 8 (a-d) — "Performance Analysis under different S when fixing
// S × N = 1": the impact of the sample ratio at constant repetition rate.
//
// Paper setup: dataset 3, S ∈ {0.01, 0.05, 0.1} with N = 1/S (100, 20,
// 10), so every edge is covered once in expectation. Shape to reproduce:
// larger S is somewhat better, but even S=0.01 stays close — the
// stability that lets deployments shrink per-sample graphs to whatever
// the per-core memory budget allows.
#include <cstdio>

#include "bench_util.h"

using namespace ensemfdet;

int main() {
  bench::PrintHeader("Fig 8",
                     "Impact of S on dataset 3 (fixing S x N = 1)");
  Dataset data = bench::LoadPreset(JdPreset::kDataset3);

  TableWriter series(
      {"curve", "x", "num_detected", "precision", "recall", "f1"});
  TableWriter area({"S", "N", "pr_curve_area", "avg_sample_edges"});

  for (double s : {0.01, 0.05, 0.1}) {
    const int n = static_cast<int>(1.0 / s + 0.5);
    EnsemFDetConfig cfg;
    cfg.ratio = s;
    cfg.num_samples = n;
    cfg.seed = bench::Seed();
    auto report =
        EnsemFDet(cfg).Run(data.graph, &DefaultThreadPool()).ValueOrDie();
    auto points = VoteSweep(report.votes, data.blacklist, n);
    bench::AppendCurve(&series, "S=" + FormatDouble(s, 2), points,
                       /*x_is_control=*/false);

    double avg_edges = 0.0;
    for (const auto& m : report.members) {
      avg_edges += static_cast<double>(m.sample_edges);
    }
    avg_edges /= static_cast<double>(report.members.size());
    area.AddRow({FormatDouble(s, 2), std::to_string(n),
                 FormatDouble(PrCurveArea(points)),
                 FormatCount(static_cast<int64_t>(avg_edges))});
  }

  bench::PrintTable("fig8_curves", series);
  bench::PrintTable("fig8_pr_area", area);
  std::printf(
      "\nShape check vs paper: performance improves monotonically with S\n"
      "at equal repetition rate, as in Fig 8. The paper additionally finds\n"
      "S=0.01 close to S=0.1; that holds when samples are still large in\n"
      "absolute terms (full-scale: S=0.01 is an 80k-edge sample). At bench\n"
      "scale S=0.01 samples are ~1.5k edges, so the gap widens — rerun\n"
      "with ENSEMFDET_SCALE closer to 1 to reproduce the near-parity.\n");
  return 0;
}
