// Fig 6 — "Performance comparison between ENSEMFDET and ENSEMFDET-FIX-K":
// Precision-Recall curves of automatic Δ²φ truncation vs a fixed K = 30,
// the §V-C3 ablation validating Definition 3.
//
// Shape to reproduce: the auto-truncated run dominates in precision at
// matched recall (FIX-K's extra blocks are noise whose precision tends to
// random selection), detects far fewer blocks per member (paper: all
// records < 15 vs 30), and is correspondingly cheaper.
#include <cstdio>

#include "bench_util.h"

using namespace ensemfdet;

int main() {
  bench::PrintHeader("Fig 6",
                     "Auto truncation (khat) vs ENSEMFDET-FIX-K (K=30) on "
                     "dataset 3");
  Dataset data = bench::LoadPreset(JdPreset::kDataset3);

  TableWriter series(
      {"curve", "x", "num_detected", "precision", "recall", "f1"});
  TableWriter summary({"variant", "avg_blocks_per_member", "max_blocks",
                       "wall_time"});

  for (bool fixed_k : {false, true}) {
    EnsemFDetConfig cfg;
    cfg.ratio = 0.1;
    cfg.num_samples = bench::EnsembleN();
    cfg.seed = bench::Seed();
    if (fixed_k) {
      cfg.fdet.policy = TruncationPolicy::kFixedK;
      cfg.fdet.fixed_k = 30;
      cfg.fdet.max_blocks = 30;
    } else {
      cfg.fdet.policy = TruncationPolicy::kAutoElbow;
      cfg.fdet.max_blocks = 30;
    }

    WallTimer timer;
    auto report =
        EnsemFDet(cfg).Run(data.graph, &DefaultThreadPool()).ValueOrDie();
    const double seconds = timer.ElapsedSeconds();

    const char* curve = fixed_k ? "K=30" : "Auto_truncating_K";
    bench::AppendCurve(&series, curve,
                       VoteSweep(report.votes, data.blacklist,
                                 cfg.num_samples),
                       /*x_is_control=*/false);

    double avg_blocks = 0.0;
    int max_blocks = 0;
    for (const auto& m : report.members) {
      avg_blocks += m.num_blocks;
      max_blocks = std::max(max_blocks, m.num_blocks);
    }
    avg_blocks /= static_cast<double>(report.members.size());
    summary.AddRow({curve, FormatDouble(avg_blocks, 1),
                    std::to_string(max_blocks), FormatDuration(seconds)});
  }

  bench::PrintTable("fig6_pr_curves", series);
  bench::PrintTable("fig6_summary", summary);
  std::printf(
      "\nShape check vs paper: the auto-truncated curve sits above FIX-K\n"
      "in precision; FIX-K only adds low-value recall whose precision\n"
      "approaches random selection. Every auto khat stays below 15 (paper:\n"
      "'all of the records are smaller than 15'), so the auto variant does\n"
      "less than half of FIX-K's per-member work.\n");
  return 0;
}
