// Microbench: the truncated-SVD substrate powering SPOKEN/FBOX — cost vs
// rank k and vs power-iteration count, plus raw SpMV throughput, on a
// dataset-1-shaped adjacency matrix.
#include <benchmark/benchmark.h>

#include <vector>

#include "datagen/presets.h"
#include "linalg/sparse_matrix.h"
#include "linalg/svd.h"

namespace ensemfdet {
namespace {

const CsrMatrix& SharedAdjacency() {
  static const CsrMatrix* matrix = [] {
    Dataset data =
        GenerateJdPreset(JdPreset::kDataset1, 0.01, 7).ValueOrDie();
    return new CsrMatrix(AdjacencyMatrix(data.graph));
  }();
  return *matrix;
}

void BM_SpMV(benchmark::State& state) {
  const CsrMatrix& a = SharedAdjacency();
  std::vector<double> x(static_cast<size_t>(a.cols()), 1.0);
  std::vector<double> y(static_cast<size_t>(a.rows()), 0.0);
  for (auto _ : state) {
    a.Multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SpMV);

void BM_SpMTV(benchmark::State& state) {
  const CsrMatrix& a = SharedAdjacency();
  std::vector<double> x(static_cast<size_t>(a.rows()), 1.0);
  std::vector<double> y(static_cast<size_t>(a.cols()), 0.0);
  for (auto _ : state) {
    a.MultiplyTranspose(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SpMTV);

void BM_TruncatedSvdRank(benchmark::State& state) {
  const CsrMatrix& a = SharedAdjacency();
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto svd = ComputeTruncatedSvd(a, k).ValueOrDie();
    benchmark::DoNotOptimize(svd.sigma.data());
  }
  state.SetLabel("k=" + std::to_string(k));
}
BENCHMARK(BM_TruncatedSvdRank)->Arg(5)->Arg(10)->Arg(25)
    ->Unit(benchmark::kMillisecond);

void BM_TruncatedSvdPowerIters(benchmark::State& state) {
  const CsrMatrix& a = SharedAdjacency();
  SvdOptions options;
  options.power_iterations = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto svd = ComputeTruncatedSvd(a, 10, options).ValueOrDie();
    benchmark::DoNotOptimize(svd.sigma.data());
  }
  state.SetLabel(std::to_string(state.range(0)) + " power iters");
}
BENCHMARK(BM_TruncatedSvdPowerIters)->Arg(2)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ensemfdet

BENCHMARK_MAIN();
