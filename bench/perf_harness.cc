#include "perf_harness.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <limits>
#include <thread>
#include <vector>

#include <filesystem>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "datagen/presets.h"
#include "datagen/transaction_stream.h"
#include "detect/csr_peeler.h"
#include "detect/fdet.h"
#include "detect/greedy_peeler.h"
#include "detect/simd/isa.h"
#include "detect/simd/kernels.h"
#include "ensemble/ensemfdet.h"
#include "graph/csr_graph.h"
#include "graph/fingerprint.h"
#include "graph/graph_io.h"
#include "ingest/dynamic_graph_store.h"
#include "ingest/streaming_detector.h"
#include "ingest/wal_codec.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/snapshot_reader.h"
#include "storage/snapshot_writer.h"
#include "storage/wal_reader.h"
#include "storage/wal_writer.h"

namespace ensemfdet {
namespace bench {

namespace {

// printf-append onto a std::string (JSON is assembled by hand; the schema
// is small and pinned by bench/README.md + the CI validator).
void AppendF(std::string* out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char buf[512];
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out->append(buf, static_cast<size_t>(std::min<int>(
                       n, static_cast<int>(sizeof(buf)) - 1)));
}

struct Timing {
  std::string name;
  double seconds_min = std::numeric_limits<double>::infinity();
  double seconds_mean = 0.0;
  int repeats = 0;
};

Timing Measure(const std::string& name, int repeats,
               const std::function<void()>& fn) {
  Timing t;
  t.name = name;
  t.repeats = repeats;
  double total = 0.0;
  for (int i = 0; i < repeats; ++i) {
    WallTimer timer;
    fn();
    const double s = timer.ElapsedSeconds();
    t.seconds_min = std::min(t.seconds_min, s);
    total += s;
  }
  t.seconds_mean = repeats > 0 ? total / repeats : 0.0;
  return t;
}

void AppendGraphJson(std::string* out, const PerfGraphSpec& spec,
                     const BipartiteGraph& graph) {
  AppendF(out,
          "  \"graph\": {\"preset\": \"dataset1\", \"scale\": %.6g, "
          "\"seed\": %llu, \"users\": %lld, \"merchants\": %lld, "
          "\"edges\": %lld},\n",
          spec.scale, static_cast<unsigned long long>(spec.seed),
          static_cast<long long>(graph.num_users()),
          static_cast<long long>(graph.num_merchants()),
          static_cast<long long>(graph.num_edges()));
}

void AppendTimingsJson(std::string* out, const std::vector<Timing>& timings) {
  out->append("  \"timings\": [\n");
  for (size_t i = 0; i < timings.size(); ++i) {
    AppendF(out,
            "    {\"name\": \"%s\", \"seconds_min\": %.9g, "
            "\"seconds_mean\": %.9g, \"repeats\": %d}%s\n",
            timings[i].name.c_str(), timings[i].seconds_min,
            timings[i].seconds_mean, timings[i].repeats,
            i + 1 < timings.size() ? "," : "");
  }
  out->append("  ],\n");
}

// One per-ISA kernel timing row of BENCH_ensemble.json's "kernels" array.
struct KernelRow {
  const char* kernel;
  const char* isa;
  double ns_per_element;
};

// Times every dispatchable kernel at every ISA level this build+CPU can
// run, on a synthetic slot-aligned residual view (the PeelScratch view_*
// shape, ~30% dead slots). Deterministic arithmetic fill — no RNG — so
// two runs on one machine time identical data.
std::vector<KernelRow> MeasureKernelRows(int repeats) {
  constexpr int64_t kN = 1 << 16;
  constexpr int kInnerIters = 16;
  constexpr int32_t kPackedBase = 1000;
  constexpr int32_t kNumMerchants = 64;
  std::vector<double> weight(kN);
  std::vector<int32_t> packed(kN);
  std::vector<uint8_t> alive(kN);
  std::vector<double> out(kN);
  std::vector<double> col_weight(kNumMerchants);
  for (int64_t i = 0; i < kN; ++i) {
    weight[static_cast<size_t>(i)] = 0.5 + static_cast<double>(i % 97) * 0.01;
    packed[static_cast<size_t>(i)] =
        kPackedBase + static_cast<int32_t>(i % kNumMerchants);
    alive[static_cast<size_t>(i)] = (i % 10) < 7 ? 1 : 0;
  }
  for (int32_t j = 0; j < kNumMerchants; ++j) {
    col_weight[static_cast<size_t>(j)] =
        0.25 + static_cast<double>(j) * 0.015;
  }

  // Fold every kernel's result into a sink the compiler can't prove dead.
  double sink = 0.0;
  std::vector<KernelRow> rows;
  for (simd::IsaLevel level :
       {simd::IsaLevel::kScalar, simd::IsaLevel::kAvx2,
        simd::IsaLevel::kAvx512}) {
    if (level > simd::DetectedIsaLevel()) continue;
    const simd::KernelTable& kern = simd::KernelsFor(level);
    if (kern.level != level) continue;  // build ceiling below this level
    const char* isa = simd::IsaLevelName(level);
    const double denom = static_cast<double>(kInnerIters) * kN;

    Timing t = Measure(std::string("kernel_gather_") + isa, repeats, [&] {
      for (int it = 0; it < kInnerIters; ++it) {
        kern.gather_slot_mass(weight.data(), packed.data(), kPackedBase,
                              col_weight.data(), 0.75, kN, out.data());
      }
    });
    sink += out[kN - 1];
    rows.push_back({"gather_slot_mass", isa, t.seconds_min / denom * 1e9});

    t = Measure(std::string("kernel_next_alive_") + isa, repeats, [&] {
      for (int it = 0; it < kInnerIters; ++it) {
        int64_t walked = 0;
        for (int64_t i = kern.next_alive(alive.data(), kN, 0); i < kN;
             i = kern.next_alive(alive.data(), kN, i + 1)) {
          walked += i;
        }
        sink += static_cast<double>(walked);
      }
    });
    rows.push_back({"next_alive", isa, t.seconds_min / denom * 1e9});

    t = Measure(std::string("kernel_count_alive_") + isa, repeats, [&] {
      for (int it = 0; it < kInnerIters; ++it) {
        sink += static_cast<double>(kern.count_alive(alive.data(), kN));
      }
    });
    rows.push_back({"count_alive", isa, t.seconds_min / denom * 1e9});

    t = Measure(std::string("kernel_masked_sum_") + isa, repeats, [&] {
      for (int it = 0; it < kInnerIters; ++it) {
        sink += kern.masked_sum(weight.data(), alive.data(), kN);
      }
    });
    rows.push_back({"masked_sum", isa, t.seconds_min / denom * 1e9});
  }
  // Publish the sink so none of the measured loops can be elided.
  static volatile double g_kernel_bench_sink;
  g_kernel_bench_sink = sink;
  (void)g_kernel_bench_sink;
  return rows;
}

bool SamePeel(const PeelResult& a, const PeelResult& b) {
  return a.users == b.users && a.merchants == b.merchants &&
         a.score == b.score;
}

bool SameFdet(const FdetResult& a, const FdetResult& b) {
  if (a.all_scores != b.all_scores ||
      a.truncation_index != b.truncation_index ||
      a.blocks.size() != b.blocks.size()) {
    return false;
  }
  for (size_t i = 0; i < a.blocks.size(); ++i) {
    if (a.blocks[i].users != b.blocks[i].users ||
        a.blocks[i].merchants != b.blocks[i].merchants ||
        a.blocks[i].score != b.blocks[i].score ||
        a.blocks[i].edges != b.blocks[i].edges) {
      return false;
    }
  }
  return true;
}

// Bit-exact ensemble report equality (votes, weighted votes, member
// structural stats) — shared by the obs bench's instrumentation-must-not-
// perturb-results gate.
bool SameEnsembleReports(const EnsemFDetReport& a, const EnsemFDetReport& b) {
  if (a.num_samples != b.num_samples ||
      a.votes.all_user_votes().size() != b.votes.all_user_votes().size() ||
      a.votes.all_merchant_votes().size() !=
          b.votes.all_merchant_votes().size() ||
      !std::equal(a.votes.all_user_votes().begin(),
                  a.votes.all_user_votes().end(),
                  b.votes.all_user_votes().begin()) ||
      !std::equal(a.votes.all_merchant_votes().begin(),
                  a.votes.all_merchant_votes().end(),
                  b.votes.all_merchant_votes().begin()) ||
      a.weighted_user_votes != b.weighted_user_votes ||
      a.weighted_merchant_votes != b.weighted_merchant_votes ||
      a.members.size() != b.members.size()) {
    return false;
  }
  for (size_t i = 0; i < a.members.size(); ++i) {
    if (a.members[i].sample_users != b.members[i].sample_users ||
        a.members[i].sample_merchants != b.members[i].sample_merchants ||
        a.members[i].sample_edges != b.members[i].sample_edges ||
        a.members[i].num_blocks != b.members[i].num_blocks) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<std::string> RunPeelingBench(const PeelingBenchOptions& options) {
  if (options.repeats < 1) {
    return Status::InvalidArgument("repeats must be >= 1");
  }
  ENSEMFDET_ASSIGN_OR_RETURN(
      Dataset dataset, GenerateJdPreset(JdPreset::kDataset1,
                                        options.graph.scale,
                                        options.graph.seed));
  const BipartiteGraph& graph = dataset.graph;

  FdetConfig fdet_config;
  fdet_config.max_blocks = options.max_blocks;
  const DensityConfig density;

  // Untimed reference runs establish parity before anything is measured.
  CsrGraph csr = CsrGraph::FromBipartite(graph);
  const PeelResult adjacency_peel = PeelDensestBlock(graph, density);
  const PeelResult csr_peel = PeelDensestBlockCsr(csr, density);
  ENSEMFDET_ASSIGN_OR_RETURN(const FdetResult adjacency_fdet,
                             RunFdetReference(graph, fdet_config));
  ENSEMFDET_ASSIGN_OR_RETURN(const FdetResult csr_fdet,
                             RunFdetCsr(csr, fdet_config));
  const bool peel_identical = SamePeel(adjacency_peel, csr_peel);
  const bool fdet_identical = SameFdet(adjacency_fdet, csr_fdet);
  if (!peel_identical || !fdet_identical) {
    return Status::Internal(
        "CSR peeler diverged from the adjacency-list peeler on the bench "
        "graph — refusing to emit BENCH_peeling.json");
  }

  std::vector<Timing> timings;
  timings.push_back(Measure("csr_convert", options.repeats, [&] {
    CsrGraph converted = CsrGraph::FromBipartite(graph);
    (void)converted;
  }));
  timings.push_back(Measure("adjacency_single_peel", options.repeats, [&] {
    PeelResult r = PeelDensestBlock(graph, density);
    (void)r;
  }));
  timings.push_back(Measure("csr_single_peel", options.repeats, [&] {
    PeelResult r = PeelDensestBlockCsr(csr, density);
    (void)r;
  }));
  timings.push_back(Measure("adjacency_fdet", options.repeats, [&] {
    FdetResult r = RunFdetReference(graph, fdet_config).ValueOrDie();
    (void)r;
  }));
  timings.push_back(Measure("csr_fdet", options.repeats, [&] {
    FdetResult r = RunFdetCsr(csr, fdet_config).ValueOrDie();
    (void)r;
  }));

  const double peel_speedup = timings[1].seconds_min / timings[2].seconds_min;
  const double fdet_speedup = timings[3].seconds_min / timings[4].seconds_min;

  std::string out;
  out.append("{\n");
  out.append("  \"schema_version\": 1,\n");
  out.append("  \"bench\": \"peeling\",\n");
  AppendGraphJson(&out, options.graph, graph);
  AppendF(&out, "  \"config\": {\"repeats\": %d, \"max_blocks\": %d},\n",
          options.repeats, options.max_blocks);
  AppendTimingsJson(&out, timings);
  AppendF(&out,
          "  \"speedup\": {\"csr_single_peel_vs_adjacency\": %.4g, "
          "\"csr_fdet_vs_adjacency\": %.4g},\n",
          peel_speedup, fdet_speedup);
  AppendF(&out,
          "  \"parity\": {\"single_peel_identical\": %s, "
          "\"fdet_identical\": %s}\n",
          peel_identical ? "true" : "false",
          fdet_identical ? "true" : "false");
  out.append("}\n");
  return out;
}

Result<std::string> RunStorageBench(const StorageBenchOptions& options,
                                    StorageBenchSummary* summary) {
  if (options.repeats < 1) {
    return Status::InvalidArgument("repeats must be >= 1");
  }
  ENSEMFDET_ASSIGN_OR_RETURN(
      Dataset dataset, GenerateJdPreset(JdPreset::kDataset1,
                                        options.graph.scale,
                                        options.graph.seed));
  const BipartiteGraph& graph = dataset.graph;
  const CsrGraph csr = CsrGraph::FromBipartite(graph);
  const uint64_t source_fingerprint = FingerprintGraph(csr);

  // Scratch files. Both loads are timed against the page cache warm (the
  // files were just written), which is the registry warm-start scenario
  // the snapshot format exists for; the TSV parse gets the same warmth.
  std::error_code ec;
  std::filesystem::path dir =
      options.scratch_dir.empty()
          ? std::filesystem::temp_directory_path(ec)
          : std::filesystem::path(options.scratch_dir);
  if (ec) return Status::IOError("no temp directory: " + ec.message());
  const std::string tsv_path =
      (dir / "ensemfdet_bench_storage.tsv").string();
  const std::string efg_path =
      (dir / "ensemfdet_bench_storage.efg").string();
  ENSEMFDET_RETURN_NOT_OK(SaveEdgeListTsv(graph, tsv_path));
  ENSEMFDET_RETURN_NOT_OK(storage::WriteCsrGraphSnapshot(csr, efg_path));
  const double tsv_bytes =
      static_cast<double>(std::filesystem::file_size(tsv_path, ec));
  const double efg_bytes =
      static_cast<double>(std::filesystem::file_size(efg_path, ec));

  // Untimed correctness gate: every reader must reproduce the writer's
  // fingerprint — a BENCH_storage.json is also a round-trip witness.
  ENSEMFDET_ASSIGN_OR_RETURN(CsrGraph streamed,
                             storage::LoadCsrGraphSnapshot(efg_path));
  ENSEMFDET_ASSIGN_OR_RETURN(storage::MappedCsrGraph mapped,
                             storage::MappedCsrGraph::Open(efg_path));
  ENSEMFDET_RETURN_NOT_OK(mapped.VerifyFingerprint());
  const bool fingerprints_match =
      FingerprintGraph(streamed) == source_fingerprint &&
      mapped.fingerprint() == source_fingerprint &&
      FingerprintGraph(mapped.graph()) == source_fingerprint;
  if (!fingerprints_match) {
    return Status::Internal(
        "snapshot readers did not reproduce the writer's content "
        "fingerprint — refusing to emit BENCH_storage.json");
  }

  std::vector<Timing> timings;
  timings.push_back(Measure("tsv_parse", options.repeats, [&] {
    BipartiteGraph g = LoadEdgeListTsv(tsv_path).ValueOrDie();
    (void)g;
  }));
  timings.push_back(Measure("binary_read", options.repeats, [&] {
    CsrGraph g = storage::LoadCsrGraphSnapshot(efg_path).ValueOrDie();
    (void)g;
  }));
  timings.push_back(Measure("mmap_open", options.repeats, [&] {
    storage::MappedCsrGraph g =
        storage::MappedCsrGraph::Open(efg_path).ValueOrDie();
    (void)g;
  }));
  timings.push_back(Measure("mmap_open_verified", options.repeats, [&] {
    storage::MappedCsrGraph g =
        storage::MappedCsrGraph::Open(efg_path).ValueOrDie();
    ENSEMFDET_CHECK(g.VerifyFingerprint().ok());
  }));

  std::filesystem::remove(tsv_path, ec);
  std::filesystem::remove(efg_path, ec);

  const double binary_speedup =
      timings[0].seconds_min / timings[1].seconds_min;
  const double mmap_open_speedup =
      timings[0].seconds_min / timings[2].seconds_min;
  const double mmap_verified_speedup =
      timings[0].seconds_min / timings[3].seconds_min;

  if (summary != nullptr) {
    summary->mmap_verified_speedup_vs_tsv = mmap_verified_speedup;
    summary->binary_read_speedup_vs_tsv = binary_speedup;
    summary->tsv_bytes = tsv_bytes;
    summary->efg_bytes = efg_bytes;
  }

  std::string out;
  out.append("{\n");
  out.append("  \"schema_version\": 1,\n");
  out.append("  \"bench\": \"storage\",\n");
  AppendGraphJson(&out, options.graph, graph);
  AppendF(&out, "  \"config\": {\"repeats\": %d},\n", options.repeats);
  AppendTimingsJson(&out, timings);
  AppendF(&out,
          "  \"file\": {\"tsv_bytes\": %.0f, \"efg_bytes\": %.0f},\n",
          tsv_bytes, efg_bytes);
  AppendF(&out,
          "  \"speedup\": {\"mmap_verified_vs_tsv_parse\": %.4g, "
          "\"mmap_open_vs_tsv_parse\": %.4g, "
          "\"binary_read_vs_tsv_parse\": %.4g},\n",
          mmap_verified_speedup, mmap_open_speedup, binary_speedup);
  AppendF(&out,
          "  \"parity\": {\"fingerprints_match\": %s}\n",
          fingerprints_match ? "true" : "false");
  out.append("}\n");
  return out;
}

Result<std::string> RunEnsembleBench(const EnsembleBenchOptions& options,
                                     EnsembleBenchSummary* summary) {
  if (options.repeats < 1) {
    return Status::InvalidArgument("repeats must be >= 1");
  }
  ENSEMFDET_ASSIGN_OR_RETURN(
      Dataset dataset, GenerateJdPreset(JdPreset::kDataset1,
                                        options.graph.scale,
                                        options.graph.seed));
  const BipartiteGraph& graph = dataset.graph;
  // The hot path runs over the shared CSR form, built once — matching how
  // the service serves jobs (GraphSnapshot materializes the CSR at
  // Publish); only the reference path pays per-member materialization.
  const CsrGraph csr = CsrGraph::FromBipartite(graph);

  EnsemFDetConfig config;
  config.num_samples = options.num_samples;
  config.ratio = options.ratio;
  config.seed = options.graph.seed;

  ThreadPool* pool = &DefaultThreadPool();
  std::optional<ThreadPool> owned;
  if (options.threads > 0) {
    owned.emplace(options.threads);
    pool = &*owned;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  const int hardware_threads = hw == 0 ? 1 : static_cast<int>(hw);
  // The wide scaling arm is the runner's true core count, resolved and
  // recorded in the JSON — schema 2 compared against a fixed 4-wide pool
  // even on smaller machines, so its "parallel speedup" on a 1-CPU
  // runner measured oversubscription, not scaling.
  const int wide_threads = hardware_threads;
  // Member-throughput rows at 1 / 2 / 4 / all-hardware threads (deduped,
  // ascending) — the wide row is what check_bench.py's scaling gate reads
  // when hardware_threads >= 4.
  std::vector<int> scaling_widths = {1, 2, 4, wide_threads};
  std::sort(scaling_widths.begin(), scaling_widths.end());
  scaling_widths.erase(
      std::unique(scaling_widths.begin(), scaling_widths.end()),
      scaling_widths.end());
  EnsemFDet detector(config);

  // Untimed parity gate: the zero-materialization hot path must reproduce
  // the materializing reference bit for bit before anything is measured —
  // a BENCH_ensemble.json is also a correctness witness.
  ENSEMFDET_ASSIGN_OR_RETURN(EnsemFDetReport hot, detector.Run(csr, pool));
  ENSEMFDET_ASSIGN_OR_RETURN(EnsemFDetReport reference,
                             detector.RunReference(graph, pool));
  bool votes_identical =
      hot.votes.all_user_votes().size() ==
          reference.votes.all_user_votes().size() &&
      hot.votes.all_merchant_votes().size() ==
          reference.votes.all_merchant_votes().size() &&
      std::equal(hot.votes.all_user_votes().begin(),
                 hot.votes.all_user_votes().end(),
                 reference.votes.all_user_votes().begin()) &&
      std::equal(hot.votes.all_merchant_votes().begin(),
                 hot.votes.all_merchant_votes().end(),
                 reference.votes.all_merchant_votes().begin());
  bool weighted_identical =
      hot.weighted_user_votes == reference.weighted_user_votes &&
      hot.weighted_merchant_votes == reference.weighted_merchant_votes;
  bool members_identical = hot.members.size() == reference.members.size();
  for (size_t i = 0; members_identical && i < hot.members.size(); ++i) {
    members_identical =
        hot.members[i].sample_users == reference.members[i].sample_users &&
        hot.members[i].sample_merchants ==
            reference.members[i].sample_merchants &&
        hot.members[i].sample_edges == reference.members[i].sample_edges &&
        hot.members[i].num_blocks == reference.members[i].num_blocks;
  }
  if (!votes_identical || !weighted_identical || !members_identical) {
    return Status::Internal(
        "zero-materialization ensemble diverged from the materializing "
        "reference on the bench graph — refusing to emit "
        "BENCH_ensemble.json");
  }

  // Vote-identity gates (untimed): the SAME detection must come out of
  // every dispatch level the build+CPU can run, and every pool width the
  // scaling rows will time. Any divergence refuses the document — a
  // BENCH_ensemble.json is also a correctness witness for the ISA matrix.
  std::vector<std::unique_ptr<ThreadPool>> scaling_pools;
  for (int width : scaling_widths) {
    scaling_pools.push_back(width > 1 ? std::make_unique<ThreadPool>(width)
                                      : nullptr);
  }
  bool isa_vote_identity = true;
  for (simd::IsaLevel level :
       {simd::IsaLevel::kScalar, simd::IsaLevel::kAvx2,
        simd::IsaLevel::kAvx512}) {
    if (level > simd::DetectedIsaLevel()) continue;
    simd::ScopedIsaLevel forced(level);
    if (!forced.ok()) continue;
    ENSEMFDET_ASSIGN_OR_RETURN(EnsemFDetReport leveled,
                               detector.Run(csr, pool));
    isa_vote_identity = isa_vote_identity && SameEnsembleReports(leveled, hot);
  }
  if (!isa_vote_identity) {
    return Status::Internal(
        "ensemble votes diverged between SIMD dispatch levels — refusing "
        "to emit BENCH_ensemble.json");
  }
  bool width_vote_identity = true;
  for (size_t w = 0; w < scaling_widths.size(); ++w) {
    ENSEMFDET_ASSIGN_OR_RETURN(
        EnsemFDetReport at_width,
        detector.Run(csr, scaling_pools[w].get()));
    width_vote_identity =
        width_vote_identity && SameEnsembleReports(at_width, hot);
  }
  if (!width_vote_identity) {
    return Status::Internal(
        "ensemble votes diverged between pool widths — refusing to emit "
        "BENCH_ensemble.json");
  }
  // The identity runs double as the untimed warm-up: every scaling pool's
  // thread-local arenas have now been touched once, so the timed rows
  // measure steady-state reuse, not first-touch growth.

  std::vector<Timing> timings;
  timings.push_back(Measure("ensemble_run", options.repeats, [&] {
    EnsemFDetReport r = detector.Run(csr, pool).ValueOrDie();
    (void)r;
  }));
  // One timed arm per scaling width (width 1 = the serial loop, exactly
  // like a null pool in production).
  std::vector<Timing> scaling_timings;
  for (size_t w = 0; w < scaling_widths.size(); ++w) {
    ThreadPool* width_pool = scaling_pools[w].get();
    scaling_timings.push_back(Measure(
        "ensemble_run_threads_" + std::to_string(scaling_widths[w]),
        options.repeats, [&] {
          EnsemFDetReport r = detector.Run(csr, width_pool).ValueOrDie();
          (void)r;
        }));
  }
  timings.insert(timings.end(), scaling_timings.begin(),
                 scaling_timings.end());
  timings.push_back(Measure("ensemble_run_reference", options.repeats, [&] {
    EnsemFDetReport r = detector.RunReference(graph, pool).ValueOrDie();
    (void)r;
  }));

  // Arena-reuse stats from one more (untimed) fully warm run.
  ENSEMFDET_ASSIGN_OR_RETURN(EnsemFDetReport stats_run,
                             detector.Run(csr, pool));
  int64_t arena_grow_events = 0;
  for (const auto& m : stats_run.members) {
    arena_grow_events += m.arena_grow_events;
  }
  const double arena_grow_per_member =
      options.num_samples > 0
          ? static_cast<double>(arena_grow_events) / options.num_samples
          : 0.0;

  const Timing& reference_timing = timings.back();
  const double members_per_second =
      options.num_samples / timings[0].seconds_min;
  const double members_per_second_reference =
      options.num_samples / reference_timing.seconds_min;
  const double zero_mat_speedup =
      reference_timing.seconds_min / timings[0].seconds_min;
  // 1-thread vs the resolved wide arm — looked up by width, NOT the
  // widest timed row: on a machine with fewer than 4 cores the 2- and
  // 4-wide rows measure oversubscription, and the honest wide arm is the
  // hardware-thread row (possibly width 1).
  size_t wide_idx = 0;
  for (size_t w = 0; w < scaling_widths.size(); ++w) {
    if (scaling_widths[w] == wide_threads) wide_idx = w;
  }
  const double parallel_speedup = scaling_timings.front().seconds_min /
                                  scaling_timings[wide_idx].seconds_min;

  // Per-ISA kernel micro rows: each dispatchable kernel timed at every
  // level this build+CPU can run, on a synthetic slot-aligned view.
  const std::vector<KernelRow> kernel_rows =
      MeasureKernelRows(std::max(options.repeats, 3));

  if (summary != nullptr) {
    summary->zero_materialization_speedup = zero_mat_speedup;
    summary->members_per_second = members_per_second;
    summary->parallel_speedup = parallel_speedup;
    summary->parallel_wide_threads = wide_threads;
    summary->arena_grow_events = arena_grow_events;
    summary->arena_grow_per_member = arena_grow_per_member;
  }

  std::string out;
  out.append("{\n");
  out.append("  \"schema_version\": 3,\n");
  out.append("  \"bench\": \"ensemble\",\n");
  AppendGraphJson(&out, options.graph, graph);
  AppendF(&out,
          "  \"config\": {\"repeats\": %d, \"num_samples\": %d, "
          "\"ratio\": %.4g, \"threads\": %d, \"hardware_threads\": %d},\n",
          options.repeats, options.num_samples, options.ratio,
          pool->num_threads(), hardware_threads);
  AppendF(&out,
          "  \"dispatch\": {\"cpu\": \"%s\", \"detected\": \"%s\", "
          "\"active\": \"%s\", \"forced_by_env\": %s},\n",
          simd::IsaLevelName(simd::CpuIsaLevel()),
          simd::IsaLevelName(simd::DetectedIsaLevel()),
          simd::IsaLevelName(simd::ActiveIsaLevel()),
          simd::IsaForcedByEnv() ? "true" : "false");
  AppendTimingsJson(&out, timings);
  out.append("  \"kernels\": [\n");
  for (size_t i = 0; i < kernel_rows.size(); ++i) {
    AppendF(&out,
            "    {\"kernel\": \"%s\", \"isa\": \"%s\", "
            "\"ns_per_element\": %.6g}%s\n",
            kernel_rows[i].kernel, kernel_rows[i].isa,
            kernel_rows[i].ns_per_element,
            i + 1 < kernel_rows.size() ? "," : "");
  }
  out.append("  ],\n");
  out.append("  \"scaling\": [\n");
  for (size_t w = 0; w < scaling_widths.size(); ++w) {
    AppendF(&out,
            "    {\"threads\": %d, \"members_per_second\": %.6g, "
            "\"seconds_min\": %.9g}%s\n",
            scaling_widths[w],
            options.num_samples / scaling_timings[w].seconds_min,
            scaling_timings[w].seconds_min,
            w + 1 < scaling_widths.size() ? "," : "");
  }
  out.append("  ],\n");
  AppendF(&out,
          "  \"throughput\": {\"members_per_second\": %.6g, "
          "\"members_per_second_reference\": %.6g},\n",
          members_per_second, members_per_second_reference);
  AppendF(&out,
          "  \"speedup\": {\"zero_materialization_vs_reference\": %.4g, "
          "\"parallel_1thread_vs_wide\": %.4g, "
          "\"parallel_wide_threads\": %d},\n",
          zero_mat_speedup, parallel_speedup, wide_threads);
  AppendF(&out,
          "  \"arena\": {\"grow_events\": %lld, "
          "\"grow_events_per_member\": %.4g},\n",
          static_cast<long long>(arena_grow_events), arena_grow_per_member);
  AppendF(&out,
          "  \"parity\": {\"votes_identical\": %s, "
          "\"weighted_votes_identical\": %s, "
          "\"member_stats_identical\": %s, "
          "\"vote_identity_across_isa_levels\": %s, "
          "\"vote_identity_across_pool_widths\": %s}\n",
          votes_identical ? "true" : "false",
          weighted_identical ? "true" : "false",
          members_identical ? "true" : "false",
          isa_vote_identity ? "true" : "false",
          width_vote_identity ? "true" : "false");
  out.append("}\n");
  return out;
}

Result<std::string> RunObsBench(const ObsBenchOptions& options,
                                ObsBenchSummary* summary) {
  if (options.repeats < 1) {
    return Status::InvalidArgument("repeats must be >= 1");
  }
  ENSEMFDET_ASSIGN_OR_RETURN(
      Dataset dataset, GenerateJdPreset(JdPreset::kDataset1,
                                        options.graph.scale,
                                        options.graph.seed));
  const CsrGraph csr = CsrGraph::FromBipartite(dataset.graph);

  EnsemFDetConfig config;
  config.num_samples = options.num_samples;
  config.ratio = options.ratio;
  config.seed = options.graph.seed;
  EnsemFDet detector(config);

  // Everything below toggles the process-wide runtime switch; restore the
  // caller's state on every exit.
  const bool was_enabled = obs::MetricsRuntimeEnabled();
  struct RestoreEnabled {
    bool enabled;
    ~RestoreEnabled() { obs::SetMetricsRuntimeEnabled(enabled); }
  } restore{was_enabled};

  // The on-arm must pay for the FULL always-on pipeline — trace-context
  // propagation, span-id allocation, and the flight recorder's per-span
  // ring write — so the 2% budget covers what production actually runs,
  // not a stripped-down build. Installing is best-effort: a read-only
  // temp dir degrades the measurement to spans-without-rings rather than
  // failing the bench (the JSON records which variant ran).
  std::error_code bench_flight_ec;
  const std::string flight_path =
      (std::filesystem::temp_directory_path(bench_flight_ec) /
       "ensemfdet_bench_obs_flight.bin")
          .string();
  obs::FlightRecorderOptions flight_options;
  flight_options.path = flight_path;
  const bool flight_installed =
      !bench_flight_ec && obs::InstallFlightRecorder(flight_options).ok();

  // Untimed parity gate: recording on vs off must not perturb the report
  // in any bit — instrumentation that changes results is worse than no
  // instrumentation, so a divergence refuses to emit.
  obs::SetMetricsRuntimeEnabled(true);
  ENSEMFDET_ASSIGN_OR_RETURN(EnsemFDetReport report_on,
                             detector.Run(csr, nullptr));
  obs::SetMetricsRuntimeEnabled(false);
  ENSEMFDET_ASSIGN_OR_RETURN(EnsemFDetReport report_off,
                             detector.Run(csr, nullptr));
  const bool reports_identical = SameEnsembleReports(report_on, report_off);
  if (!reports_identical) {
    return Status::Internal(
        "ensemble report changed between metrics-enabled and "
        "metrics-disabled runs — instrumentation perturbed detection; "
        "refusing to emit BENCH_obs.json");
  }

  // The gated pair: the identical single-threaded ensemble run with the
  // full instrumentation recording vs runtime-disabled (the single branch
  // each record path starts with). Single-threaded keeps the measured
  // difference free of pool-scheduling noise, and the repeats are
  // INTERLEAVED on/off so a noisy stretch of wall-clock (CI runners
  // share cores) inflates both arms alike instead of biasing whichever
  // arm happened to run through it — the gated quantity is a small
  // difference, so per-arm min must come from the same noise population.
  // Within each pair the order ALTERNATES: whichever run goes second in
  // a pair is systematically a little faster (caches, branch predictors
  // and the frequency governor are warmer), and a fixed order would fold
  // that position bias straight into the on-vs-off difference. Alternating
  // puts both arms in each position equally often so the bias cancels out
  // of the per-arm minima — which also requires an EVEN repeat count, so
  // an odd request is rounded up rather than leaving one arm with an
  // extra turn in the fast slot.
  const int repeats = options.repeats + (options.repeats % 2);
  Timing on_timing, off_timing;
  on_timing.name = "ensemble_run_metrics_on";
  off_timing.name = "ensemble_run_metrics_off";
  on_timing.repeats = off_timing.repeats = repeats;
  double on_total = 0.0, off_total = 0.0;
  const auto timed_run = [&](bool metrics_on) {
    obs::SetMetricsRuntimeEnabled(metrics_on);
    WallTimer timer;
    (void)detector.Run(csr, nullptr).ValueOrDie();
    return timer.ElapsedSeconds();
  };
  for (int i = 0; i < repeats; ++i) {
    double on_s, off_s;
    if (i % 2 == 0) {
      on_s = timed_run(true);
      off_s = timed_run(false);
    } else {
      off_s = timed_run(false);
      on_s = timed_run(true);
    }
    on_timing.seconds_min = std::min(on_timing.seconds_min, on_s);
    off_timing.seconds_min = std::min(off_timing.seconds_min, off_s);
    on_total += on_s;
    off_total += off_s;
  }
  obs::SetMetricsRuntimeEnabled(true);
  on_timing.seconds_mean = on_total / repeats;
  off_timing.seconds_mean = off_total / repeats;
  std::vector<Timing> timings;
  timings.push_back(on_timing);
  timings.push_back(off_timing);

  // Tight-loop per-record costs on the enabled path, against a private
  // registry so the global scrape stays a pure engine view.
  obs::SetMetricsRuntimeEnabled(true);
  obs::MetricsRegistry scratch;
  obs::Counter* counter =
      scratch.GetCounter("ensemfdet_benchobs_scratch_total");
  obs::Histogram* histogram =
      scratch.GetHistogram("ensemfdet_benchobs_scratch_seconds");
  constexpr int64_t kOps = 2'000'000;
  timings.push_back(Measure("counter_increment_2m", 3, [&] {
    for (int64_t i = 0; i < kOps; ++i) counter->Increment();
  }));
  timings.push_back(Measure("histogram_record_2m", 3, [&] {
    for (int64_t i = 0; i < kOps; ++i) histogram->Record(i & 0xFFFFF);
  }));
  // Full span cost: context capture + span-id allocation + histogram
  // record + flight-recorder ring write (recorder installed above), the
  // exact sequence every instrumented stage runs per invocation.
  timings.push_back(Measure("span_record_2m", 3, [&] {
    for (int64_t i = 0; i < kOps; ++i) {
      obs::TraceSpan span(histogram, "benchobs_span");
    }
  }));

  const double seconds_on = timings[0].seconds_min;
  const double seconds_off = timings[1].seconds_min;
  const double overhead_fraction =
      seconds_off > 0 ? (seconds_on - seconds_off) / seconds_off : 0.0;
  const double budget = 0.02;
  const bool within_budget = overhead_fraction <= budget;
  const double counter_ns =
      timings[2].seconds_min / static_cast<double>(kOps) * 1e9;
  const double histogram_ns =
      timings[3].seconds_min / static_cast<double>(kOps) * 1e9;
  const double span_ns =
      timings[4].seconds_min / static_cast<double>(kOps) * 1e9;

  if (summary != nullptr) {
    summary->overhead_fraction = overhead_fraction;
    summary->seconds_metrics_on = seconds_on;
    summary->seconds_metrics_off = seconds_off;
    summary->counter_ns_per_increment = counter_ns;
    summary->histogram_ns_per_record = histogram_ns;
    summary->span_ns_per_record = span_ns;
  }

  std::string out;
  out.append("{\n");
  out.append("  \"schema_version\": 1,\n");
  out.append("  \"bench\": \"obs\",\n");
  AppendGraphJson(&out, options.graph, dataset.graph);
  AppendF(&out,
          "  \"config\": {\"repeats\": %d, \"num_samples\": %d, "
          "\"ratio\": %.4g, \"metrics_compiled_in\": %s, "
          "\"flight_recorder_installed\": %s},\n",
          repeats, options.num_samples, options.ratio,
          obs::kMetricsCompiledIn ? "true" : "false",
          flight_installed ? "true" : "false");
  AppendTimingsJson(&out, timings);
  AppendF(&out,
          "  \"overhead\": {\"fraction\": %.6g, \"budget_fraction\": %.4g, "
          "\"within_budget\": %s, \"counter_ns_per_increment\": %.4g, "
          "\"histogram_ns_per_record\": %.4g, "
          "\"span_ns_per_record\": %.4g},\n",
          overhead_fraction, budget, within_budget ? "true" : "false",
          counter_ns, histogram_ns, span_ns);
  AppendF(&out, "  \"parity\": {\"reports_identical\": %s}\n",
          reports_identical ? "true" : "false");
  out.append("}\n");
  return out;
}

namespace {

// The stream-bench workload: a fragmented transaction day. Uniform (not
// Zipf) background keeps the window graph split into many small
// components — the regime dirty scoping exists for; the honest caveat
// that a single giant component degenerates to a full rerun is documented
// in DESIGN.md §"Incremental ingest" and bench/README.md.
struct StreamWorkload {
  DynamicGraphStoreConfig store_config;
  StreamingDetectorConfig detector_config;
  std::vector<IngestBatch> batches;
  int64_t detection_interval = 0;
  int64_t num_events = 0;
};

Result<StreamWorkload> BuildStreamWorkload(const StreamBenchOptions& o) {
  DataGenConfig config;
  config.num_users = o.num_users;
  config.num_merchants = o.num_merchants;
  config.num_edges = o.num_edges;
  config.user_zipf_exponent = 0.0;
  config.merchant_zipf_exponent = 0.0;
  for (int g = 0; g < o.num_fraud_groups; ++g) {
    FraudGroupSpec group;
    group.num_users = 18;
    group.num_merchants = 8;
    group.edges_per_user = 5.0;
    group.camouflage_per_user = 0.0;
    config.fraud_groups.push_back(group);
  }
  config.seed = o.seed;
  ENSEMFDET_ASSIGN_OR_RETURN(Dataset dataset, GenerateDataset(config));

  StreamTimelineConfig timeline;
  timeline.horizon = o.horizon;
  timeline.burst_duration = o.burst_duration;
  timeline.seed = o.seed + 1;
  ENSEMFDET_ASSIGN_OR_RETURN(std::vector<Transaction> events,
                             BuildTransactionStream(dataset, timeline));

  StreamWorkload workload;
  workload.num_events = static_cast<int64_t>(events.size());
  ENSEMFDET_ASSIGN_OR_RETURN(workload.batches,
                             SliceIntoBatches(events, o.batch_events));
  workload.store_config.num_users = o.num_users;
  workload.store_config.num_merchants = o.num_merchants;
  workload.store_config.window = o.window;
  workload.detector_config.ensemble.num_samples = o.num_samples;
  workload.detector_config.ensemble.ratio = o.ratio;
  workload.detector_config.ensemble.seed = o.seed;
  // The window holds thousands of components; never let LRU churn mask
  // reuse in the measurement.
  workload.detector_config.component_cache_capacity = 1u << 16;
  workload.detection_interval = o.detection_interval;
  return workload;
}

struct ReplayOutcome {
  int64_t detections = 0;
  int64_t components_reused = 0;
  int64_t components_recomputed = 0;
  int64_t edges_total = 0;
  int64_t edges_recomputed = 0;
};

// Replays the whole event log through a store, detecting at every
// `detection_interval` of stream time. `incremental` keeps one warm
// detector across boundaries (dirty-scoped); otherwise every boundary
// runs a cold detector — the full-rebuild comparator: the identical
// detection computation with nothing to reuse. `reports` (optional)
// collects every boundary's report for the parity gate.
Result<ReplayOutcome> ReplayStream(const StreamWorkload& workload,
                                   bool incremental,
                                   std::vector<StreamingReport>* reports) {
  ENSEMFDET_ASSIGN_OR_RETURN(
      DynamicGraphStore store,
      DynamicGraphStore::Create(workload.store_config));
  ENSEMFDET_ASSIGN_OR_RETURN(
      StreamingDetector warm,
      StreamingDetector::Create(workload.detector_config));

  ReplayOutcome outcome;
  int64_t last_detection = std::numeric_limits<int64_t>::min();
  for (const IngestBatch& batch : workload.batches) {
    ENSEMFDET_ASSIGN_OR_RETURN(IngestStats stats, store.Apply(batch));
    (void)stats;
    const int64_t now = store.newest_timestamp();
    if (last_detection == std::numeric_limits<int64_t>::min()) {
      last_detection = now;
      continue;
    }
    if (now - last_detection < workload.detection_interval) continue;
    last_detection = now;
    const GraphVersion version = store.Publish();
    if (!incremental) warm.ResetCache();
    ENSEMFDET_ASSIGN_OR_RETURN(StreamingReport report,
                               warm.Detect(version, nullptr));
    ++outcome.detections;
    outcome.components_reused += report.stats.components_reused;
    outcome.components_recomputed += report.stats.components_recomputed;
    outcome.edges_total += report.stats.edges_total;
    outcome.edges_recomputed += report.stats.edges_recomputed;
    if (reports != nullptr) reports->push_back(std::move(report));
  }
  return outcome;
}

// Structural equality of two streaming reports (votes, weighted votes,
// member stats minus wall-clock/arena counters).
void CompareStreamReports(const StreamingReport& a, const StreamingReport& b,
                          bool* votes, bool* weighted, bool* members) {
  const EnsemFDetReport& ra = a.report;
  const EnsemFDetReport& rb = b.report;
  if (ra.votes.all_user_votes().size() != rb.votes.all_user_votes().size() ||
      !std::equal(ra.votes.all_user_votes().begin(),
                  ra.votes.all_user_votes().end(),
                  rb.votes.all_user_votes().begin()) ||
      !std::equal(ra.votes.all_merchant_votes().begin(),
                  ra.votes.all_merchant_votes().end(),
                  rb.votes.all_merchant_votes().begin())) {
    *votes = false;
  }
  if (ra.weighted_user_votes != rb.weighted_user_votes ||
      ra.weighted_merchant_votes != rb.weighted_merchant_votes) {
    *weighted = false;
  }
  if (ra.members.size() != rb.members.size()) {
    *members = false;
    return;
  }
  for (size_t i = 0; i < ra.members.size(); ++i) {
    if (ra.members[i].sample_users != rb.members[i].sample_users ||
        ra.members[i].sample_merchants != rb.members[i].sample_merchants ||
        ra.members[i].sample_edges != rb.members[i].sample_edges ||
        ra.members[i].num_blocks != rb.members[i].num_blocks) {
      *members = false;
      return;
    }
  }
}

}  // namespace

Result<std::string> RunStreamBench(const StreamBenchOptions& options,
                                   StreamBenchSummary* summary) {
  if (options.repeats < 1) {
    return Status::InvalidArgument("repeats must be >= 1");
  }
  ENSEMFDET_ASSIGN_OR_RETURN(StreamWorkload workload,
                             BuildStreamWorkload(options));

  // Untimed parity gate: at *every* detection boundary the dirty-scoped
  // incremental report must equal the full rerun bit for bit — a
  // BENCH_stream.json is also a correctness witness.
  std::vector<StreamingReport> incremental_reports;
  std::vector<StreamingReport> full_reports;
  ENSEMFDET_ASSIGN_OR_RETURN(
      ReplayOutcome incremental_outcome,
      ReplayStream(workload, /*incremental=*/true, &incremental_reports));
  ENSEMFDET_ASSIGN_OR_RETURN(
      ReplayOutcome full_outcome,
      ReplayStream(workload, /*incremental=*/false, &full_reports));
  bool votes_identical = incremental_reports.size() == full_reports.size();
  bool weighted_identical = votes_identical;
  bool members_identical = votes_identical;
  for (size_t i = 0; votes_identical && i < incremental_reports.size();
       ++i) {
    CompareStreamReports(incremental_reports[i], full_reports[i],
                         &votes_identical, &weighted_identical,
                         &members_identical);
    if (incremental_reports[i].fingerprint != full_reports[i].fingerprint) {
      votes_identical = false;
    }
  }
  if (!votes_identical || !weighted_identical || !members_identical) {
    return Status::Internal(
        "dirty-scoped incremental detection diverged from the full-window "
        "rerun on the bench stream — refusing to emit BENCH_stream.json");
  }
  if (incremental_outcome.components_reused == 0) {
    return Status::Internal(
        "stream bench workload produced zero component reuse — the "
        "incremental measurement would be meaningless");
  }
  incremental_reports.clear();
  full_reports.clear();

  std::vector<Timing> timings;
  timings.push_back(Measure("incremental_replay", options.repeats, [&] {
    ReplayOutcome r =
        ReplayStream(workload, /*incremental=*/true, nullptr).ValueOrDie();
    (void)r;
  }));
  timings.push_back(Measure("full_rebuild_replay", options.repeats, [&] {
    ReplayOutcome r =
        ReplayStream(workload, /*incremental=*/false, nullptr).ValueOrDie();
    (void)r;
  }));

  const double events_per_second_incremental =
      static_cast<double>(workload.num_events) / timings[0].seconds_min;
  const double events_per_second_full =
      static_cast<double>(workload.num_events) / timings[1].seconds_min;
  const double speedup = timings[1].seconds_min / timings[0].seconds_min;
  const int64_t resolved = incremental_outcome.components_reused +
                           incremental_outcome.components_recomputed;
  const double reuse_fraction =
      resolved > 0 ? static_cast<double>(
                         incremental_outcome.components_reused) /
                         static_cast<double>(resolved)
                   : 0.0;
  const double edge_recompute_fraction =
      incremental_outcome.edges_total > 0
          ? static_cast<double>(incremental_outcome.edges_recomputed) /
                static_cast<double>(incremental_outcome.edges_total)
          : 0.0;

  if (summary != nullptr) {
    summary->events_per_second_incremental = events_per_second_incremental;
    summary->events_per_second_full_rebuild = events_per_second_full;
    summary->incremental_speedup = speedup;
    summary->detections = incremental_outcome.detections;
    summary->component_reuse_fraction = reuse_fraction;
    summary->edge_recompute_fraction = edge_recompute_fraction;
  }

  std::string out;
  out.append("{\n");
  out.append("  \"schema_version\": 1,\n");
  out.append("  \"bench\": \"stream\",\n");
  AppendF(&out,
          "  \"graph\": {\"preset\": \"fragmented_stream\", \"scale\": 1, "
          "\"seed\": %llu, \"users\": %lld, \"merchants\": %lld, "
          "\"edges\": %lld},\n",
          static_cast<unsigned long long>(options.seed),
          static_cast<long long>(options.num_users),
          static_cast<long long>(options.num_merchants),
          static_cast<long long>(options.num_edges));
  AppendF(&out,
          "  \"config\": {\"repeats\": %d, \"num_samples\": %d, "
          "\"ratio\": %.4g, \"horizon\": %lld, \"burst_duration\": %lld, "
          "\"window\": %lld, \"detection_interval\": %lld, "
          "\"batch_events\": %lld, \"fraud_groups\": %d},\n",
          options.repeats, options.num_samples, options.ratio,
          static_cast<long long>(options.horizon),
          static_cast<long long>(options.burst_duration),
          static_cast<long long>(options.window),
          static_cast<long long>(options.detection_interval),
          static_cast<long long>(options.batch_events),
          options.num_fraud_groups);
  AppendTimingsJson(&out, timings);
  AppendF(&out,
          "  \"throughput\": {\"events_per_second_incremental\": %.6g, "
          "\"events_per_second_full_rebuild\": %.6g},\n",
          events_per_second_incremental, events_per_second_full);
  AppendF(&out, "  \"speedup\": {\"incremental_vs_full_rebuild\": %.4g},\n",
          speedup);
  AppendF(&out,
          "  \"stream\": {\"events\": %lld, \"detections\": %lld, "
          "\"components_reused\": %lld, \"components_recomputed\": %lld, "
          "\"component_reuse_fraction\": %.4g, "
          "\"edge_recompute_fraction\": %.4g},\n",
          static_cast<long long>(workload.num_events),
          static_cast<long long>(incremental_outcome.detections),
          static_cast<long long>(incremental_outcome.components_reused),
          static_cast<long long>(incremental_outcome.components_recomputed),
          reuse_fraction, edge_recompute_fraction);
  AppendF(&out,
          "  \"parity\": {\"votes_identical\": %s, "
          "\"weighted_votes_identical\": %s, "
          "\"member_stats_identical\": %s, \"boundaries_compared\": %lld}\n",
          votes_identical ? "true" : "false",
          weighted_identical ? "true" : "false",
          members_identical ? "true" : "false",
          static_cast<long long>(full_outcome.detections));
  out.append("}\n");
  return out;
}

Result<std::string> RunWalBench(const WalBenchOptions& options,
                                WalBenchSummary* summary) {
  if (options.repeats < 1) {
    return Status::InvalidArgument("repeats must be >= 1");
  }
  if (options.num_batches < 1 || options.batch_events < 1) {
    return Status::InvalidArgument(
        "num_batches and batch_events must be >= 1");
  }
  if (options.group_commit_records < 1) {
    return Status::InvalidArgument("group_commit_records must be >= 1");
  }

  // Deterministic batch stream: non-decreasing timestamps over the
  // configured universes. Encoded once up front so every policy pays the
  // same codec cost and the timings isolate framing + fsync.
  uint64_t rng = options.seed * 0x9E3779B97F4A7C15ull + 1;
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  std::vector<IngestBatch> batches(
      static_cast<size_t>(options.num_batches));
  std::vector<std::vector<std::byte>> payloads;
  payloads.reserve(batches.size());
  std::vector<int64_t> record_timestamps;
  record_timestamps.reserve(batches.size());
  int64_t clock = 0;
  uint64_t payload_bytes = 0;
  for (IngestBatch& batch : batches) {
    batch.transactions.reserve(static_cast<size_t>(options.batch_events));
    for (int64_t i = 0; i < options.batch_events; ++i) {
      clock += static_cast<int64_t>(next() % 3);
      Transaction tx;
      tx.timestamp = clock;
      tx.user = static_cast<int64_t>(
          next() % static_cast<uint64_t>(options.num_users));
      tx.merchant = static_cast<int64_t>(
          next() % static_cast<uint64_t>(options.num_merchants));
      batch.transactions.push_back(tx);
    }
    payloads.push_back(ingest::EncodeIngestBatch(batch));
    record_timestamps.push_back(ingest::WalRecordTimestamp(batch));
    payload_bytes += payloads.back().size();
  }

  namespace fs = std::filesystem;
  std::error_code ec;
  const std::string scratch = options.scratch_dir.empty()
                                  ? fs::temp_directory_path(ec).string()
                                  : options.scratch_dir;
  if (scratch.empty()) {
    return Status::IOError("cannot resolve a scratch directory");
  }
  const std::string wal_dir =
      scratch + "/ensemfdet_bench_wal_" + std::to_string(options.seed);

  int64_t segments_created = 0;
  auto write_log = [&](storage::WalFsyncPolicy policy) -> Status {
    std::error_code rm_ec;
    fs::remove_all(wal_dir, rm_ec);
    storage::WalWriterOptions wal_options;
    wal_options.fsync = policy;
    wal_options.group_commit_records = options.group_commit_records;
    wal_options.segment_bytes = options.segment_bytes;
    ENSEMFDET_ASSIGN_OR_RETURN(
        storage::WalWriter writer,
        storage::WalWriter::Open(wal_dir, wal_options));
    for (size_t i = 0; i < payloads.size(); ++i) {
      ENSEMFDET_ASSIGN_OR_RETURN(
          uint64_t seq,
          writer.Append(payloads[i].data(), payloads[i].size(),
                        record_timestamps[i]));
      (void)seq;
    }
    segments_created = static_cast<int64_t>(writer.segment_count());
    return writer.Close();
  };

  // Untimed replay gate: the log written under group commit must replay
  // every record bit-identical to the batch that produced it — a
  // BENCH_wal.json is also a correctness witness for the framing.
  ENSEMFDET_RETURN_NOT_OK(write_log(storage::WalFsyncPolicy::kBatch));
  uint64_t replayed = 0;
  bool identical = true;
  auto verify = [&](const storage::WalRecordView& record) -> Status {
    const size_t index = static_cast<size_t>(replayed);
    ++replayed;
    if (index >= batches.size() || record.seq != index + 1 ||
        record.timestamp != record_timestamps[index]) {
      identical = false;
      return Status::OK();
    }
    ENSEMFDET_ASSIGN_OR_RETURN(IngestBatch decoded,
                               ingest::DecodeIngestBatch(record.payload));
    const std::vector<Transaction>& want = batches[index].transactions;
    if (decoded.transactions.size() != want.size()) {
      identical = false;
      return Status::OK();
    }
    for (size_t i = 0; i < want.size(); ++i) {
      if (decoded.transactions[i].timestamp != want[i].timestamp ||
          decoded.transactions[i].user != want[i].user ||
          decoded.transactions[i].merchant != want[i].merchant) {
        identical = false;
        return Status::OK();
      }
    }
    return Status::OK();
  };
  ENSEMFDET_ASSIGN_OR_RETURN(storage::WalReplayStats replay_stats,
                             storage::ReplayWal(wal_dir, 0, verify));
  identical = identical && !replay_stats.tail_truncated &&
              replayed == batches.size() &&
              replay_stats.last_seq == batches.size();
  if (!identical) {
    std::error_code rm_ec;
    fs::remove_all(wal_dir, rm_ec);
    return Status::Internal(
        "WAL replay did not reproduce the appended batch stream — "
        "refusing to emit BENCH_wal.json");
  }

  Status bench_error = Status::OK();
  auto timed = [&](storage::WalFsyncPolicy policy) {
    Status st = write_log(policy);
    if (!st.ok() && bench_error.ok()) bench_error = st;
  };
  std::vector<Timing> timings;
  timings.push_back(Measure("append_fsync_none", options.repeats, [&] {
    timed(storage::WalFsyncPolicy::kNone);
  }));
  timings.push_back(Measure("append_fsync_batch", options.repeats, [&] {
    timed(storage::WalFsyncPolicy::kBatch);
  }));
  timings.push_back(Measure("append_fsync_always", options.repeats, [&] {
    timed(storage::WalFsyncPolicy::kAlways);
  }));
  fs::remove_all(wal_dir, ec);
  ENSEMFDET_RETURN_NOT_OK(bench_error);

  const int64_t events = options.num_batches * options.batch_events;
  const double eps_none =
      static_cast<double>(events) / timings[0].seconds_min;
  const double eps_batch =
      static_cast<double>(events) / timings[1].seconds_min;
  const double eps_always =
      static_cast<double>(events) / timings[2].seconds_min;

  if (summary != nullptr) {
    summary->acked_events_per_second_none = eps_none;
    summary->acked_events_per_second_batch = eps_batch;
    summary->acked_events_per_second_always = eps_always;
    summary->replay_identical = identical;
  }

  std::string out;
  out.append("{\n");
  out.append("  \"schema_version\": 1,\n");
  out.append("  \"bench\": \"wal\",\n");
  AppendF(&out,
          "  \"graph\": {\"preset\": \"synthetic_batches\", \"scale\": 1, "
          "\"seed\": %llu, \"users\": %lld, \"merchants\": %lld, "
          "\"edges\": %lld},\n",
          static_cast<unsigned long long>(options.seed),
          static_cast<long long>(options.num_users),
          static_cast<long long>(options.num_merchants),
          static_cast<long long>(events));
  AppendF(&out,
          "  \"config\": {\"repeats\": %d, \"num_batches\": %lld, "
          "\"batch_events\": %lld, \"group_commit_records\": %lld, "
          "\"segment_bytes\": %llu},\n",
          options.repeats, static_cast<long long>(options.num_batches),
          static_cast<long long>(options.batch_events),
          static_cast<long long>(options.group_commit_records),
          static_cast<unsigned long long>(options.segment_bytes));
  AppendTimingsJson(&out, timings);
  AppendF(&out,
          "  \"throughput\": {\"acked_events_per_second_none\": %.6g, "
          "\"acked_events_per_second_batch\": %.6g, "
          "\"acked_events_per_second_always\": %.6g},\n",
          eps_none, eps_batch, eps_always);
  AppendF(&out,
          "  \"wal\": {\"records\": %lld, \"payload_bytes\": %llu, "
          "\"segments_created\": %lld},\n",
          static_cast<long long>(options.num_batches),
          static_cast<unsigned long long>(payload_bytes),
          static_cast<long long>(segments_created));
  AppendF(&out,
          "  \"parity\": {\"replay_identical\": %s, "
          "\"records_compared\": %llu}\n",
          identical ? "true" : "false",
          static_cast<unsigned long long>(replayed));
  out.append("}\n");
  return out;
}

Status WriteTextFile(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << text;
  out.flush();  // surface deferred write errors (disk full) before checking
  if (!out.good()) return Status::IOError("short write to " + path);
  return Status::OK();
}

}  // namespace bench
}  // namespace ensemfdet
