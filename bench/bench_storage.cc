// bench_storage: the snapshot-loading perf baseline. Loads the same
// dataset1-preset graph three ways — TSV parse, streaming binary read of a
// .efg snapshot, and mmap zero-copy open (without and with fingerprint
// verification) — verifies every reader reproduces the writer's content
// fingerprint, and writes BENCH_storage.json (schema: bench/README.md).
//
// Environment knobs: ENSEMFDET_SCALE (default 0.02), ENSEMFDET_SEED
// (default 7), ENSEMFDET_REPEATS (default 5), ENSEMFDET_BENCH_OUT
// (default ./BENCH_storage.json, "-" = stdout only).
#include <cstdio>
#include <string>

#include "common/env.h"
#include "perf_harness.h"

int main() {
  using namespace ensemfdet;
  bench::StorageBenchOptions options;
  options.graph.scale = GetEnvDouble("ENSEMFDET_SCALE", options.graph.scale);
  options.graph.seed = static_cast<uint64_t>(
      GetEnvInt64("ENSEMFDET_SEED", static_cast<int64_t>(options.graph.seed)));
  options.repeats = GetEnvInt("ENSEMFDET_REPEATS", options.repeats);

  auto json = bench::RunStorageBench(options);
  if (!json.ok()) {
    std::fprintf(stderr, "bench_storage: %s\n",
                 json.status().ToString().c_str());
    return 1;
  }
  std::fputs(json->c_str(), stdout);

  const std::string out_path =
      GetEnvString("ENSEMFDET_BENCH_OUT", "BENCH_storage.json");
  if (out_path != "-") {
    Status st = bench::WriteTextFile(out_path, *json);
    if (!st.ok()) {
      std::fprintf(stderr, "bench_storage: %s\n", st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "[bench_storage] wrote %s\n", out_path.c_str());
  }
  return 0;
}
