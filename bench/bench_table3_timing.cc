// Table III — "The comparison of time consumption between EnsemFDet and
// Fraudar": wall-clock of the full detection pipelines per dataset.
//
// Paper setup: ENSEMFDET with S=0.1, N=80 running its members in parallel
// on a multicore testbed; FRAUDAR with K fixed at 30 on the full graph,
// sequential (the heuristic process cannot be parallelized — the paper's
// core scalability point). Shape to reproduce: ENSEMFDET ≫ faster (paper:
// ~10x at S=0.1, up to 100x at S=0.01), with the advantage coming from
// (a) per-member work ∝ S·|E| with k̂ ≪ K thanks to truncation and
// (b) members running concurrently.
//
// Substitution note (see DESIGN.md): the paper's testbed has enough cores
// to run all members concurrently; this machine may not (possibly 1 core).
// We therefore measure true per-member times and report, alongside the
// local wall-clock, the simulated parallel wall-clock at P cores — a
// simple LPT bound: max(Σ member_i / P, max member_i) — for the paper's
// effective parallelism. The per-member times are real measurements; only
// the scheduling is simulated.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"

using namespace ensemfdet;

namespace {

// Longest-processing-time makespan lower bound for P identical cores.
double SimulatedWall(const std::vector<double>& member_seconds, int cores) {
  double total = 0.0, longest = 0.0;
  for (double s : member_seconds) {
    total += s;
    longest = std::max(longest, s);
  }
  return std::max(total / static_cast<double>(cores), longest);
}

}  // namespace

int main() {
  bench::PrintHeader("Table III",
                     "Time consumption: EnsemFDet (S=0.1, N=80) vs Fraudar "
                     "(K=30)");

  TableWriter table({"Dataset", "EnsemFDet(local)", "EnsemFDet(P=8)",
                     "EnsemFDet(P=80)", "Fraudar", "speedup(P=80)",
                     "avg khat"});

  for (JdPreset preset : AllJdPresets()) {
    Dataset data = bench::LoadPreset(preset);

    EnsemFDetConfig cfg;
    cfg.ratio = 0.1;
    cfg.num_samples = bench::EnsembleN();
    cfg.seed = bench::Seed();
    WallTimer ensemble_timer;
    auto report =
        EnsemFDet(cfg).Run(data.graph, &DefaultThreadPool()).ValueOrDie();
    const double local_seconds = ensemble_timer.ElapsedSeconds();

    std::vector<double> member_seconds;
    double avg_khat = 0.0;
    for (const auto& m : report.members) {
      member_seconds.push_back(m.seconds);
      avg_khat += m.num_blocks;
    }
    avg_khat /= static_cast<double>(report.members.size());
    const double wall_p8 = SimulatedWall(member_seconds, 8);
    const double wall_p80 = SimulatedWall(member_seconds, 80);

    FraudarConfig fraudar_cfg;
    fraudar_cfg.num_blocks = 30;
    WallTimer fraudar_timer;
    auto fraudar = RunFraudar(data.graph, fraudar_cfg).ValueOrDie();
    const double fraudar_seconds = fraudar_timer.ElapsedSeconds();
    (void)fraudar;

    table.AddRow({data.name, FormatDuration(local_seconds),
                  FormatDuration(wall_p8), FormatDuration(wall_p80),
                  FormatDuration(fraudar_seconds),
                  FormatDouble(fraudar_seconds / wall_p80, 1) + "x",
                  FormatDouble(avg_khat, 1)});
  }

  bench::PrintTable("table3_timing", table);
  std::printf(
      "\nShape check vs paper: at the paper's effective parallelism\n"
      "(P=80, one core per member) EnsemFDet beats Fraudar by an order of\n"
      "magnitude (paper: 74s vs 806s etc.), because each member peels only\n"
      "S·|E| edges and truncation stops at khat << 30. The local column is\n"
      "this machine's real wall-clock (threads=%d); P=8/P=80 columns are\n"
      "the same measured member times under simulated scheduling — the\n"
      "paper's 100x claim at S=0.01 is reachable by rerunning with a\n"
      "smaller S.\n",
      DefaultThreadPool().num_threads());
  return 0;
}
