// Streaming detection: catch a fraud burst while the campaign is running.
//
//   $ ./build/examples/streaming_detection
//
// Simulates a promotion day as a transaction stream: steady legitimate
// traffic, then a coordinated account-farm burst in the middle, then quiet.
// A WindowedDetector re-runs ENSEMFDET every detection interval over a
// sliding window and prints, per detection, how many of the flagged users
// are actual ring members — showing the ring lighting up while its burst
// is inside the window and fading out afterwards (the paper's §I point:
// campaigns are short-lived, so detection must be too).
//
// Since the incremental-ingest rewire the detector feeds a delta-versioned
// DynamicGraphStore and re-detects only the connected components each
// window slide touched; the "reused" column shows how much of every
// detection was replayed from the clean-component cache instead of
// recomputed.
#include <cstdio>
#include <iostream>

#include "core/ensemfdet.h"

using namespace ensemfdet;

int main() {
  constexpr int64_t kUsers = 3000;
  constexpr int64_t kMerchants = 800;
  constexpr UserId kRingUsers = 40;      // ids [0, 40)
  constexpr MerchantId kRingMerchants = 6;  // ids [0, 6)

  WindowedDetectorConfig config;
  config.num_users = kUsers;
  config.num_merchants = kMerchants;
  config.window = 3600;              // one "hour" of stream time
  config.detection_interval = 900;   // detect every 15 "minutes"
  config.ensemble.num_samples = 24;
  config.ensemble.ratio = 0.25;
  config.ensemble.seed = 17;
  config.ensemble.fdet.max_blocks = 12;

  WindowedDetector detector(config, &DefaultThreadPool());

  Rng rng(2026);
  TableWriter timeline({"stream time", "window events", "detected@T",
                        "ring members", "ring recall", "reused"});

  auto report_detection = [&](int64_t now, const EnsemFDetReport& report) {
    const int32_t threshold = config.ensemble.num_samples / 4;
    auto flagged = report.AcceptedUsers(threshold);
    int64_t ring_hits = 0;
    for (UserId u : flagged) ring_hits += (u < kRingUsers);
    // Dirty-scoping diagnostics of this very detection: how many
    // connected components were replayed from cache vs recomputed.
    std::string reused = "-";
    if (detector.last_stats().has_value()) {
      const StreamingDetectionStats& stats = *detector.last_stats();
      reused = FormatCount(stats.components_reused) + "/" +
               FormatCount(stats.components_eligible);
    }
    timeline.AddRow({std::to_string(now),
                     FormatCount(detector.window_size()),
                     FormatCount(static_cast<int64_t>(flagged.size())),
                     FormatCount(ring_hits),
                     FormatDouble(static_cast<double>(ring_hits) /
                                  static_cast<double>(kRingUsers), 2),
                     reused});
  };

  // Phase 1+2+3: background all day; ring burst only in [4000, 5200].
  int64_t now = 0;
  const int64_t kEnd = 12000;
  int64_t next_ring_event = 4000;
  int ring_user_cursor = 0;
  while (now < kEnd) {
    now += 1 + static_cast<int64_t>(rng.NextBounded(3));
    Transaction tx;
    tx.timestamp = now;
    if (now >= 4000 && now <= 5200 && now >= next_ring_event) {
      // Burst: ring accounts sweep their colluding merchants.
      tx.user = static_cast<UserId>(ring_user_cursor % kRingUsers);
      tx.merchant =
          static_cast<MerchantId>(rng.NextBounded(kRingMerchants));
      ++ring_user_cursor;
      next_ring_event = now + 2;
    } else {
      tx.user = static_cast<UserId>(
          kRingUsers + rng.NextBounded(kUsers - kRingUsers));
      tx.merchant = static_cast<MerchantId>(
          kRingMerchants + rng.NextBounded(kMerchants - kRingMerchants));
    }
    auto result = detector.Ingest(tx);
    if (!result.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    if (result->has_value()) report_detection(now, **result);
  }

  std::printf("streaming fraud detection over a simulated promotion day\n");
  std::printf("(ring burst active during stream time [4000, 5200])\n\n");
  timeline.WriteMarkdown(&std::cout);
  std::printf(
      "\nExpected shape: ring recall ~0 before the burst, jumps toward 1\n"
      "while the burst is inside the sliding window, and decays back once\n"
      "the window slides past it — early detection without reprocessing\n"
      "the full day's graph.\n");
  return 0;
}
