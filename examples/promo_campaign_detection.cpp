// Promotion-campaign fraud detection end to end — the paper's motivating
// scenario (§I): an e-commerce platform runs a discount campaign,
// fraudsters register account farms to cash out, and the risk team needs a
// ranked, size-controllable list of suspicious PINs.
//
//   $ ./build/examples/promo_campaign_detection            # default scale
//   $ ENSEMFDET_SCALE=0.05 ./build/examples/promo_campaign_detection
//
// Pipeline: synthesize a JD-like transaction graph (Table I dataset-1
// shape) → run ENSEMFDET in parallel → evaluate against the blacklist →
// print the Precision/Recall/F1 operating table over the voting threshold
// T, exactly the knob a risk-control deployment would tune.
#include <cstdio>
#include <iostream>

#include "core/ensemfdet.h"

using namespace ensemfdet;

int main() {
  const double scale = GetEnvDouble("ENSEMFDET_SCALE", 0.02);

  // 1. Data: a campaign week of transactions with planted fraud groups.
  std::printf("generating dataset-1-shaped campaign data (scale %.3f)...\n",
              scale);
  auto data_result = GenerateJdPreset(JdPreset::kDataset1, scale, 20260610);
  if (!data_result.ok()) {
    std::fprintf(stderr, "datagen failed: %s\n",
                 data_result.status().ToString().c_str());
    return 1;
  }
  const Dataset& data = *data_result;
  std::printf(
      "  %s: %s PINs (%s blacklisted), %s merchants, %s edges\n\n",
      data.name.c_str(), FormatCount(data.graph.num_users()).c_str(),
      FormatCount(data.blacklist.num_fraud()).c_str(),
      FormatCount(data.graph.num_merchants()).c_str(),
      FormatCount(data.graph.num_edges()).c_str());

  // 2. Detection: the paper's flagship configuration S=0.1, N=80.
  EnsemFDetConfig config;
  config.method = SampleMethod::kRandomEdge;
  config.num_samples = 80;
  config.ratio = 0.1;
  config.seed = 31;
  config.fdet.max_blocks = 30;

  WallTimer timer;
  auto report_result =
      EnsemFDet(config).Run(data.graph, &DefaultThreadPool());
  if (!report_result.ok()) {
    std::fprintf(stderr, "detection failed: %s\n",
                 report_result.status().ToString().c_str());
    return 1;
  }
  const EnsemFDetReport& report = *report_result;
  std::printf("ENSEMFDET: N=%d members, S=%.2f, wall time %s\n",
              config.num_samples, config.ratio,
              FormatDuration(timer.ElapsedSeconds()).c_str());

  double avg_blocks = 0.0;
  for (const auto& m : report.members) avg_blocks += m.num_blocks;
  avg_blocks /= static_cast<double>(report.members.size());
  std::printf("  average auto-truncated k-hat per member: %.1f blocks\n\n",
              avg_blocks);

  // 3. Evaluation: the T-operating table a risk team would pick from.
  auto points = VoteSweep(report.votes, data.blacklist, config.num_samples);
  TableWriter table({"T", "#detected PIN", "Precision", "Recall", "F1"});
  for (const auto& p : points) {
    // Print a digestible subset of thresholds.
    const int32_t t = static_cast<int32_t>(p.control);
    if (t % 8 != 0 && t != 1 && t != 4) continue;
    table.AddRow({std::to_string(t), FormatCount(p.num_detected),
                  FormatDouble(p.precision), FormatDouble(p.recall),
                  FormatDouble(p.f1)});
  }
  table.WriteMarkdown(&std::cout);

  std::printf("\nPR-curve area over the full T sweep: %.4f\n",
              PrCurveArea(points));
  std::printf(
      "\nReading the table: raise T to favour precision (fewer, surer\n"
      "flags); lower it to favour recall. The curve is smooth — unlike\n"
      "block-granular detectors, any detection budget is reachable.\n");
  return 0;
}
