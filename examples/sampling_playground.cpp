// Sampling playground: make the paper's §IV-A sampling analysis tangible.
//
//   $ ./build/examples/sampling_playground
//
// On a dataset-3-shaped graph (merchant side much heavier than the user
// side) this example:
//   1. prints Lemma 1's expected-inclusion theory vs the empirical rates
//      measured from actual RES / ONS samples,
//   2. shows each method's sampled-graph size at the same ratio S (TNS's
//      ≈S² edge count, ONS-merchant's blow-up from popular merchants),
//   3. demonstrates Theorem 1: with 1/p reweighting, an edge sample's
//      density score estimates the parent's.
#include <cstdio>
#include <iostream>

#include "core/ensemfdet.h"

using namespace ensemfdet;

int main() {
  const double scale = GetEnvDouble("ENSEMFDET_SCALE", 0.01);
  auto data = GenerateJdPreset(JdPreset::kDataset3, scale, 99).ValueOrDie();
  const BipartiteGraph& g = data.graph;

  DegreeStats user_stats = ComputeDegreeStats(g, Side::kUser);
  DegreeStats merchant_stats = ComputeDegreeStats(g, Side::kMerchant);
  std::printf("dataset-3-shaped graph: %s users (avg deg %.2f), %s "
              "merchants (avg deg %.2f), %s edges\n\n",
              FormatCount(g.num_users()).c_str(), user_stats.avg_degree,
              FormatCount(g.num_merchants()).c_str(),
              merchant_stats.avg_degree,
              FormatCount(g.num_edges()).c_str());

  // --- 1. Lemma 1: inclusion rates by degree ------------------------------
  const double ratio = 0.1;
  const double pe = ratio;  // per-edge inclusion ≈ sample ratio
  const double pv = ratio;
  std::printf("Lemma 1 crossover degree log(1-pv)/log(1-pe) = %.2f\n",
              LemmaOneCrossoverDegree(pv, pe));

  auto res = MakeSampler(SampleMethod::kRandomEdge, ratio).ValueOrDie();
  auto ons = MakeSampler(SampleMethod::kOneSideUser, ratio).ValueOrDie();
  constexpr int kTrials = 30;
  std::vector<double> res_hits(static_cast<size_t>(g.num_users()), 0.0);
  std::vector<double> ons_hits(static_cast<size_t>(g.num_users()), 0.0);
  for (int t = 0; t < kTrials; ++t) {
    Rng r1(100 + static_cast<uint64_t>(t)), r2(900 + static_cast<uint64_t>(t));
    for (UserId u : res->Sample(g, &r1).user_map) res_hits[u] += 1.0;
    for (UserId u : ons->Sample(g, &r2).user_map) ons_hits[u] += 1.0;
  }

  TableWriter lemma({"user degree q", "theory E_ES rate", "measured RES",
                     "theory E_NS rate", "measured ONS"});
  for (int64_t q : {1, 2, 4, 8, 16}) {
    double res_rate = 0, ons_rate = 0;
    int64_t count = 0;
    for (int64_t u = 0; u < g.num_users(); ++u) {
      if (g.user_degree(static_cast<UserId>(u)) != q) continue;
      res_rate += res_hits[static_cast<size_t>(u)];
      ons_rate += ons_hits[static_cast<size_t>(u)];
      ++count;
    }
    if (count == 0) continue;
    res_rate /= static_cast<double>(count * kTrials);
    ons_rate /= static_cast<double>(count * kTrials);
    lemma.AddRow({std::to_string(q),
                  FormatDouble(EdgeSampleInclusionProbability(pe, q)),
                  FormatDouble(res_rate),
                  FormatDouble(NodeSampleInclusionProbability(pv)),
                  FormatDouble(ons_rate)});
  }
  lemma.WriteMarkdown(&std::cout);
  std::printf("-> edge sampling includes heavy users at sharply higher "
              "rates; node sampling is flat in degree.\n\n");

  // --- 2. Sampled-graph sizes at the same S --------------------------------
  TableWriter sizes({"method", "users", "merchants", "edges",
                     "edge fraction"});
  for (SampleMethod m :
       {SampleMethod::kRandomEdge, SampleMethod::kOneSideUser,
        SampleMethod::kOneSideMerchant, SampleMethod::kTwoSide}) {
    auto sampler = MakeSampler(m, ratio).ValueOrDie();
    Rng rng(4242);
    SubgraphView view = sampler->Sample(g, &rng);
    sizes.AddRow({SampleMethodName(m),
                  FormatCount(view.graph.num_users()),
                  FormatCount(view.graph.num_merchants()),
                  FormatCount(view.graph.num_edges()),
                  FormatDouble(static_cast<double>(view.graph.num_edges()) /
                               static_cast<double>(g.num_edges()), 3)});
  }
  sizes.WriteMarkdown(&std::cout);
  std::printf("-> TNS keeps ~S^2 of the edges; ONS-merchant can exceed S "
              "because popular merchants drag many edges in.\n\n");

  // --- 3. Theorem 1 in practice: reweighted sample density -----------------
  const double parent_phi = DensityScore(g, {});
  auto plain =
      MakeSampler(SampleMethod::kRandomEdge, 0.3, /*reweight=*/false)
          .ValueOrDie();
  auto reweighted =
      MakeSampler(SampleMethod::kRandomEdge, 0.3, /*reweight=*/true)
          .ValueOrDie();
  double total_plain = 0.0, total_reweighted = 0.0;
  constexpr int kDensityTrials = 10;
  for (int t = 0; t < kDensityTrials; ++t) {
    Rng r1(7000 + static_cast<uint64_t>(t));
    Rng r2(7000 + static_cast<uint64_t>(t));
    total_plain += DensityScore(plain->Sample(g, &r1).graph, {});
    total_reweighted += DensityScore(reweighted->Sample(g, &r2).graph, {});
  }
  std::printf("Theorem 1 in practice (S = 0.3, %d samples):\n"
              "  phi(G)                      = %.4f\n"
              "  mean phi(sample)            = %.4f\n"
              "  mean phi(reweighted sample) = %.4f\n",
              kDensityTrials, parent_phi, total_plain / kDensityTrials,
              total_reweighted / kDensityTrials);
  std::printf(
      "-> 1/p reweighting restores the suspiciousness mass lost to edge\n"
      "   thinning, while the sample keeps only nodes that drew an edge, so\n"
      "   per-node density concentrates upward. This is the paper's point\n"
      "   that dense components 'become distinct on sampled graphs': the\n"
      "   fraud signal sharpens relative to the (pruned) sparse bulk.\n");
  return 0;
}
