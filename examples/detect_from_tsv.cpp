// Command-line detector: run ENSEMFDET on a transaction edge list.
//
//   $ ./build/examples/detect_from_tsv graph.tsv [N] [S] [T]
//   $ ./build/examples/detect_from_tsv            # self-demo on synthetic data
//
// Input format (graph/graph_io.h): one `user<TAB>merchant` pair per line,
// '#' comments allowed, optional `# bipartite <users> <merchants>` header.
// Output: one detected suspicious user id per line on stdout (pipe it into
// your case-review tooling); diagnostics go to stderr.
//
// This is the shape of the deployment the paper describes (§VI: "deployed
// in the risk control department of JD.com"): nightly graph dump in, PIN
// review queue out, with T controlling the queue size.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/ensemfdet.h"

using namespace ensemfdet;

namespace {

// Writes a demo graph so the example is runnable with no arguments.
std::string WriteDemoGraph() {
  Dataset data = GenerateJdPreset(JdPreset::kDataset1, 0.005, 11)
                     .ValueOrDie();
  const std::string path = "/tmp/ensemfdet_demo_graph.tsv";
  ENSEMFDET_CHECK_OK(SaveEdgeListTsv(data.graph, path));
  std::fprintf(stderr,
               "[demo] no input given; wrote synthetic campaign graph to %s "
               "(%lld PINs, %lld edges)\n",
               path.c_str(), static_cast<long long>(data.graph.num_users()),
               static_cast<long long>(data.graph.num_edges()));
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : WriteDemoGraph();
  EnsemFDetConfig config;
  config.num_samples = argc > 2 ? std::atoi(argv[2]) : 40;
  config.ratio = argc > 3 ? std::atof(argv[3]) : 0.1;
  const int32_t threshold =
      argc > 4 ? std::atoi(argv[4])
               : std::max(1, config.num_samples / 10);

  auto graph_result = LoadEdgeListTsv(path);
  if (!graph_result.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 graph_result.status().ToString().c_str());
    return 1;
  }
  const BipartiteGraph& graph = *graph_result;
  std::fprintf(stderr, "[load] %s: %lld users x %lld merchants, %lld edges\n",
               path.c_str(), static_cast<long long>(graph.num_users()),
               static_cast<long long>(graph.num_merchants()),
               static_cast<long long>(graph.num_edges()));

  WallTimer timer;
  auto report_result =
      EnsemFDet(config).Run(graph, &DefaultThreadPool());
  if (!report_result.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 report_result.status().ToString().c_str());
    return 1;
  }
  const EnsemFDetReport& report = *report_result;
  auto suspicious = report.AcceptedUsers(threshold);
  std::fprintf(stderr,
               "[detect] N=%d S=%.3f T=%d -> %zu suspicious users in %s\n",
               config.num_samples, config.ratio, threshold,
               suspicious.size(),
               FormatDuration(timer.ElapsedSeconds()).c_str());

  for (UserId u : suspicious) std::printf("%u\n", u);
  return 0;
}
