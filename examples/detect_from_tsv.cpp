// Command-line detector: run ENSEMFDET on a transaction edge list through
// the detection service layer.
//
//   $ ./build/detect_from_tsv graph.tsv [N] [S] [T]
//   $ ./build/detect_from_tsv            # self-demo on synthetic data
//
// Input format (graph/graph_io.h): one `user<TAB>merchant` pair per line,
// '#' comments allowed, optional `# bipartite <users> <merchants>` header.
// Output: one detected suspicious user id per line on stdout (pipe it into
// your case-review tooling); diagnostics go to stderr.
//
// This is the shape of the deployment the paper describes (§VI: "deployed
// in the risk control department of JD.com"): nightly graph dump in, PIN
// review queue out, with T controlling the queue size. The detection runs
// as a DetectionService job — the same path a long-lived server would use,
// where repeat queries over the unchanged nightly graph hit the
// ResultCache. For the full-featured tool (subcommands, baselines,
// evaluation, cache stats), see tools/ensemfdet_cli.cc.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "core/ensemfdet.h"

using namespace ensemfdet;

namespace {

// Writes a demo graph so the example is runnable with no arguments.
std::string WriteDemoGraph() {
  Dataset data = GenerateJdPreset(JdPreset::kDataset1, 0.005, 11)
                     .ValueOrDie();
  const std::string path = "/tmp/ensemfdet_demo_graph.tsv";
  ENSEMFDET_CHECK_OK(SaveEdgeListTsv(data.graph, path));
  std::fprintf(stderr,
               "[demo] no input given; wrote synthetic campaign graph to %s "
               "(%lld PINs, %lld edges)\n",
               path.c_str(), static_cast<long long>(data.graph.num_users()),
               static_cast<long long>(data.graph.num_edges()));
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : WriteDemoGraph();
  JobRequest request;
  request.graph_name = "nightly";
  request.ensemble.num_samples = argc > 2 ? std::atoi(argv[2]) : 40;
  request.ensemble.ratio = argc > 3 ? std::atof(argv[3]) : 0.1;
  const int32_t threshold =
      argc > 4 ? std::atoi(argv[4])
               : std::max(1, request.ensemble.num_samples / 10);

  auto graph_result = LoadEdgeListTsv(path);
  if (!graph_result.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 graph_result.status().ToString().c_str());
    return 1;
  }

  GraphRegistry registry;
  DetectionService service(&registry, &DefaultThreadPool());
  auto snapshot =
      registry.Publish("nightly", std::move(graph_result).value());
  if (!snapshot.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "[load] %s: %lld users x %lld merchants, %lld edges\n",
               path.c_str(),
               static_cast<long long>(snapshot->graph->num_users()),
               static_cast<long long>(snapshot->graph->num_merchants()),
               static_cast<long long>(snapshot->graph->num_edges()));

  const int num_samples = request.ensemble.num_samples;
  const double ratio = request.ensemble.ratio;
  auto job = service.Detect(std::move(request));
  if (!job.ok()) {
    std::fprintf(stderr, "error: %s\n", job.status().ToString().c_str());
    return 1;
  }
  const JobResult& result = **job;
  auto suspicious = result.report->AcceptedUsers(threshold);
  std::fprintf(stderr,
               "[detect] N=%d S=%.3f T=%d -> %zu suspicious users in %s\n",
               num_samples, ratio, threshold, suspicious.size(),
               FormatDuration(result.seconds).c_str());

  for (UserId u : suspicious) std::printf("%u\n", u);
  return 0;
}
