// Camouflage study: why the log-weighted density score (Definition 2 /
// FRAUDAR's metric) matters.
//
//   $ ./build/examples/camouflage_study
//
// Fraudsters pad their accounts with purchases at popular legitimate
// merchants so their connectivity "looks normal". This example plants the
// same fraud ring at increasing camouflage levels and measures how well
// ENSEMFDET's vote ranking still separates the ring from honest users —
// the per-edge 1/log(c + d_merchant) discount means camouflage edges to
// popular merchants contribute almost nothing to a block's density, so
// detection should degrade only mildly.
#include <cstdio>
#include <iostream>

#include "core/ensemfdet.h"

using namespace ensemfdet;

namespace {

// Builds a graph with one 25-user × 6-merchant fraud ring, a camouflage
// level (extra popular-merchant edges per fraud user), and background
// traffic. Returns (graph, blacklist of planted users).
struct Scenario {
  BipartiteGraph graph;
  LabelSet planted;
};

Scenario BuildScenario(double camouflage_per_user, uint64_t seed) {
  DataGenConfig config;
  config.name = "camouflage";
  config.num_users = 3000;
  config.num_merchants = 800;
  config.num_edges = 9000;
  // Milder background skew than the JD presets so the study isolates the
  // camouflage effect rather than hub noise.
  config.user_zipf_exponent = 0.4;
  config.merchant_zipf_exponent = 0.9;
  FraudGroupSpec ring;
  ring.num_users = 60;
  ring.num_merchants = 8;
  ring.edges_per_user = 6.0;
  ring.camouflage_per_user = camouflage_per_user;
  config.fraud_groups.push_back(ring);
  config.blacklist_miss_rate = 0.0;  // exact planted truth for this study
  config.blacklist_noise_rate = 0.0;
  config.seed = seed;

  auto data = GenerateDataset(config).ValueOrDie();
  Scenario s{std::move(data.graph),
             LabelSet(config.num_users, data.planted_fraud_users)};
  return s;
}

}  // namespace

int main() {
  EnsemFDetConfig detector_config;
  detector_config.num_samples = 40;
  detector_config.ratio = 0.25;
  detector_config.seed = 606;
  detector_config.fdet.max_blocks = 15;

  TableWriter table({"camouflage edges/user", "best F1 over T",
                     "precision@ring-size", "recall@T=1"});

  for (double camouflage : {0.0, 2.0, 5.0, 10.0}) {
    Scenario s = BuildScenario(camouflage, 3555);
    auto report = EnsemFDet(detector_config)
                      .Run(s.graph, &DefaultThreadPool())
                      .ValueOrDie();
    auto points =
        VoteSweep(report.votes, s.planted, detector_config.num_samples);

    double best_f1 = 0.0, recall_loose = 0.0;
    for (const auto& p : points) {
      best_f1 = std::max(best_f1, p.f1);
      if (static_cast<int32_t>(p.control) == 1) recall_loose = p.recall;
    }
    // Precision when detecting exactly about one ring worth of users.
    double precision_at_ring = 0.0;
    int64_t best_gap = INT64_MAX;
    for (const auto& p : points) {
      int64_t gap = std::abs(p.num_detected - 60);
      if (gap < best_gap) {
        best_gap = gap;
        precision_at_ring = p.precision;
      }
    }
    table.AddRow({FormatDouble(camouflage, 1), FormatDouble(best_f1),
                  FormatDouble(precision_at_ring),
                  FormatDouble(recall_loose)});
  }

  std::printf("camouflage resistance of the log-weighted density score\n");
  std::printf("(60-user fraud ring; camouflage = extra edges to popular "
              "legitimate merchants)\n\n");
  table.WriteMarkdown(&std::cout);
  std::printf(
      "\nExpected shape: F1 stays high (it can even rise) as camouflage\n"
      "grows. Camouflage edges point at high-degree merchants whose column\n"
      "weight 1/log(c+d) is tiny, so they barely perturb block density —\n"
      "while the extra degree makes ring users MORE likely to enter each\n"
      "edge sample (Lemma 1), feeding the vote count. Camouflage is not\n"
      "just neutralized, it can backfire.\n");
  return 0;
}
