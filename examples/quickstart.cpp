// Quickstart: build a tiny "who buy-from where" graph by hand, publish it
// to the service layer, run ENSEMFDET through a DetectionService job, and
// print the suspicious users at a few voting thresholds.
//
//   $ ./build/quickstart
//
// The graph has one obvious fraud ring (users 0-7 bulk-buying at merchants
// 0-2) inside light legitimate traffic; the ring should collect near-N
// votes while ordinary shoppers collect almost none. Going through
// GraphRegistry + DetectionService (instead of calling EnsemFDet::Run
// directly) exercises the serving path: the second Detect() below is
// answered from the ResultCache without recomputation.
#include <cstdio>

#include "core/ensemfdet.h"

using namespace ensemfdet;

int main() {
  // 1. Build the bipartite graph: 40 users × 20 merchants.
  GraphBuilder builder(40, 20);

  // The fraud ring: 8 controlled accounts bulk-purchasing at 3 colluding
  // merchants during a promotion (synchronized + rare behaviour).
  for (UserId u = 0; u < 8; ++u) {
    for (MerchantId v = 0; v < 3; ++v) builder.AddEdge(u, v);
  }

  // Legitimate traffic: everyone occasionally buys somewhere.
  Rng traffic(2024);
  for (int i = 0; i < 70; ++i) {
    builder.AddEdge(static_cast<UserId>(traffic.NextBounded(40)),
                    static_cast<MerchantId>(3 + traffic.NextBounded(17)));
  }

  auto graph_result = builder.Build();
  if (!graph_result.ok()) {
    std::fprintf(stderr, "graph build failed: %s\n",
                 graph_result.status().ToString().c_str());
    return 1;
  }

  // 2. Publish the graph and stand up the service: a registry of named
  //    snapshots plus an async job scheduler over the shared pool.
  GraphRegistry registry;
  DetectionService service(&registry, &DefaultThreadPool());
  auto snapshot =
      registry.Publish("quickstart", std::move(graph_result).value());
  if (!snapshot.ok()) {
    std::fprintf(stderr, "publish failed: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  std::printf("graph: %lld users, %lld merchants, %lld edges "
              "(fingerprint %016llx)\n\n",
              static_cast<long long>(snapshot->graph->num_users()),
              static_cast<long long>(snapshot->graph->num_merchants()),
              static_cast<long long>(snapshot->graph->num_edges()),
              static_cast<unsigned long long>(snapshot->fingerprint));

  // 3. Configure ENSEMFDET: N sampled graphs at ratio S, FDET with
  //    automatic truncation, majority voting at the end.
  JobRequest request;
  request.graph_name = "quickstart";
  request.ensemble.method = SampleMethod::kRandomEdge;
  request.ensemble.num_samples = 20;  // N
  request.ensemble.ratio = 0.3;       // S
  request.ensemble.seed = 7;
  request.ensemble.fdet.max_blocks = 10;

  auto job = service.Detect(request);
  if (!job.ok()) {
    std::fprintf(stderr, "detection failed: %s\n",
                 job.status().ToString().c_str());
    return 1;
  }
  const EnsemFDetReport& report = *(*job)->report;
  std::printf("ran %d ensemble members in %s (repetition rate R = %.1f)\n",
              report.num_samples, FormatDuration((*job)->seconds).c_str(),
              request.ensemble.RepetitionRate());

  // A repeated request over the unchanged snapshot is memoized: same
  // report object, no recomputation.
  auto again = service.Detect(request);
  if (!again.ok()) {
    std::fprintf(stderr, "repeat detection failed: %s\n",
                 again.status().ToString().c_str());
    return 1;
  }
  std::printf("repeat request: %s\n\n",
              (*again)->cache_hit ? "served from ResultCache"
                                  : "recomputed (unexpected)");

  // 4. Apply MVA at a few thresholds T and show how the detected set
  //    tightens as T rises.
  for (int32_t threshold : {4, 10, 16}) {
    auto suspicious = report.AcceptedUsers(threshold);
    std::printf("T = %2d -> %2zu suspicious users:", threshold,
                suspicious.size());
    for (UserId u : suspicious) std::printf(" %u", u);
    std::printf("\n");
  }

  std::printf("\nvotes per fraud-ring user (ids 0-7):");
  for (UserId u = 0; u < 8; ++u) {
    std::printf(" %d", report.votes.user_votes(u));
  }
  std::printf("\n");
  return 0;
}
