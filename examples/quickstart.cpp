// Quickstart: build a tiny "who buy-from where" graph by hand, run
// ENSEMFDET, and print the suspicious users at a few voting thresholds.
//
//   $ ./build/examples/quickstart
//
// The graph has one obvious fraud ring (users 0-7 bulk-buying at merchants
// 0-2) inside light legitimate traffic; the ring should collect near-N
// votes while ordinary shoppers collect almost none.
#include <cstdio>

#include "core/ensemfdet.h"

using namespace ensemfdet;

int main() {
  // 1. Build the bipartite graph: 40 users × 20 merchants.
  GraphBuilder builder(40, 20);

  // The fraud ring: 8 controlled accounts bulk-purchasing at 3 colluding
  // merchants during a promotion (synchronized + rare behaviour).
  for (UserId u = 0; u < 8; ++u) {
    for (MerchantId v = 0; v < 3; ++v) builder.AddEdge(u, v);
  }

  // Legitimate traffic: everyone occasionally buys somewhere.
  Rng traffic(2024);
  for (int i = 0; i < 70; ++i) {
    builder.AddEdge(static_cast<UserId>(traffic.NextBounded(40)),
                    static_cast<MerchantId>(3 + traffic.NextBounded(17)));
  }

  auto graph_result = builder.Build();
  if (!graph_result.ok()) {
    std::fprintf(stderr, "graph build failed: %s\n",
                 graph_result.status().ToString().c_str());
    return 1;
  }
  const BipartiteGraph& graph = *graph_result;
  std::printf("graph: %lld users, %lld merchants, %lld edges\n\n",
              static_cast<long long>(graph.num_users()),
              static_cast<long long>(graph.num_merchants()),
              static_cast<long long>(graph.num_edges()));

  // 2. Configure ENSEMFDET: N sampled graphs at ratio S, FDET with
  //    automatic truncation, majority voting at the end.
  EnsemFDetConfig config;
  config.method = SampleMethod::kRandomEdge;
  config.num_samples = 20;  // N
  config.ratio = 0.3;       // S
  config.seed = 7;
  config.fdet.max_blocks = 10;

  EnsemFDet detector(config);
  auto report_result = detector.Run(graph, &DefaultThreadPool());
  if (!report_result.ok()) {
    std::fprintf(stderr, "detection failed: %s\n",
                 report_result.status().ToString().c_str());
    return 1;
  }
  const EnsemFDetReport& report = *report_result;
  std::printf("ran %d ensemble members in %s (repetition rate R = %.1f)\n\n",
              report.num_samples, FormatDuration(report.total_seconds).c_str(),
              config.RepetitionRate());

  // 3. Apply MVA at a few thresholds T and show how the detected set
  //    tightens as T rises.
  for (int32_t threshold : {4, 10, 16}) {
    auto suspicious = report.AcceptedUsers(threshold);
    std::printf("T = %2d -> %2zu suspicious users:", threshold,
                suspicious.size());
    for (UserId u : suspicious) std::printf(" %u", u);
    std::printf("\n");
  }

  std::printf("\nvotes per fraud-ring user (ids 0-7):");
  for (UserId u = 0; u < 8; ++u) {
    std::printf(" %d", report.votes.user_votes(u));
  }
  std::printf("\n");
  return 0;
}
