// ensemfdet_cli: the unified command-line front door to the detection
// service layer. One binary:
//
//   generate     synthesize a Table-I-preset transaction graph as TSV
//                (plus an optional blacklist file for `evaluate`)
//   detect       run a detector over a graph (TSV or .efg binary
//                snapshot, mmap-served) through DetectionService;
//                --repeat shows the ResultCache absorbing repeat queries
//   evaluate     detect + score against a blacklist (P/R/F1, PR-AUC)
//   save-graph   convert a graph to a .efg binary snapshot (zero-parse
//                loads via detect/evaluate --graph=*.efg)
//   stream-replay  replay a synthetic stream through a service session;
//                --checkpoint / --resume persist and resume the window
//   bench-smoke  end-to-end self-check of the service layer (used by CI)
//   bench-report emit the BENCH_*.json perf baselines
//   trace-report offline latency attribution over a --trace-out timeline:
//                per-stage self-time rollups and the critical path per
//                job, exemplar join against a --metrics-out JSON scrape,
//                and flight-recorder dump summaries
//
// Everything goes through GraphRegistry + DetectionService — this tool is
// both the operational CLI and a living integration test of the service
// subsystem. Suspicious user ids go to stdout (pipe into review tooling);
// diagnostics go to stderr.
//
// Exit codes (asserted by CI): 0 success; 2 usage errors — bad flags,
// unknown values, InvalidArgument/NotFound Statuses; 1 runtime failures —
// unreadable/malformed/corrupt input files and every other non-OK Status.
// Every failing path prints the full Status ("IOError: ...") to stderr.
//
//   $ ensemfdet_cli generate --preset=dataset1 --scale=0.01
//         --out=/tmp/g.tsv --labels=/tmp/labels.tsv
//   $ ensemfdet_cli save-graph --graph=/tmp/g.tsv --out=/tmp/g.efg
//   $ ensemfdet_cli detect --graph=/tmp/g.efg --n=40 --t=8 --repeat=2
//   $ ensemfdet_cli evaluate --graph=/tmp/g.tsv --labels=/tmp/labels.tsv
//   $ ensemfdet_cli bench-smoke
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <memory>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/ensemfdet.h"
#include "detect/simd/isa.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/snapshot_reader.h"
#include "perf_harness.h"

using namespace ensemfdet;

namespace {

// ---------------------------------------------------------------------------
// Minimal --key=value flag parsing.
// ---------------------------------------------------------------------------
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 0; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "error: unexpected argument '%s'\n", arg.c_str());
        std::exit(2);
      }
      arg = arg.substr(2);
      auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg] = "true";  // boolean flag
      } else {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    }
  }

  std::string GetString(const std::string& key, const std::string& fallback) {
    seen_.insert({key, true});
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  int GetInt(const std::string& key, int fallback) {
    std::string v = GetString(key, "");
    return v.empty() ? fallback : std::atoi(v.c_str());
  }
  double GetDouble(const std::string& key, double fallback) {
    std::string v = GetString(key, "");
    return v.empty() ? fallback : std::atof(v.c_str());
  }
  uint64_t GetUint64(const std::string& key, uint64_t fallback) {
    std::string v = GetString(key, "");
    return v.empty() ? fallback : std::strtoull(v.c_str(), nullptr, 10);
  }
  bool GetBool(const std::string& key, bool fallback) {
    std::string v = GetString(key, "");
    if (v.empty()) return fallback;
    return v == "true" || v == "1" || v == "yes";
  }

  /// True iff the user passed the flag (does not mark it consumed).
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  /// Dies on flags that no Get* consulted — catches typos like --ratio
  /// where the command reads --s.
  void DieOnUnknown() const {
    bool bad = false;
    for (const auto& [key, value] : values_) {
      if (!seen_.count(key)) {
        std::fprintf(stderr, "error: unknown flag --%s\n", key.c_str());
        bad = true;
      }
    }
    if (bad) std::exit(2);
  }

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> seen_;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: ensemfdet_cli <command> [--flag=value ...]\n"
      "\n"
      "commands:\n"
      "  generate     --out=FILE [--labels=FILE] [--preset=dataset1|2|3]\n"
      "               [--scale=0.01] [--seed=7]\n"
      "  detect       --graph=FILE[.tsv|.efg]\n"
      "               [--detector=ensemfdet|fraudar|hits|spoken|fbox]\n"
      "               [--n=80] [--s=0.1] [--method=random_edge] [--t=N/10]\n"
      "               [--seed=42] [--threads=0] [--repeat=1] [--no-cache]\n"
      "               [--top=25]\n"
      "  evaluate     --graph=FILE --labels=FILE [detect flags] [--curve]\n"
      "  save-graph   --graph=FILE[.tsv|.efg] --out=FILE.efg\n"
      "  stream-replay [--preset=dataset1] [--scale=0.01] [--seed=7]\n"
      "               [--horizon=86400] [--burst=1800] [--window=14400]\n"
      "               [--interval=1200] [--batch=256] [--n=80] [--s=0.1]\n"
      "               [--method=random_edge] [--t=N/10] [--threads=0]\n"
      "               [--max-out-of-order=0] [--min-component-edges=1]\n"
      "               [--register=stream] [--checkpoint=FILE.efg]\n"
      "               [--stop-after-batches=0] [--resume=FILE.efg]\n"
      "               [--skip-batches=0] [--wal=DIR]\n"
      "               [--fsync=none|batch|always] [--recover]\n"
      "  bench-smoke  [--scale=0.004] [--seed=7] [--threads=0]\n"
      "  bench-report [--scale=0.02] [--seed=7] [--repeats=5] [--n=16]\n"
      "               [--s=0.1] [--threads=0] [--out-dir=.]\n"
      "  metrics-dump [--scale=0.004] [--seed=7] [--threads=0]\n"
      "               [--out-a=FILE] [--out-b=FILE] [--workdir=DIR]\n"
      "  trace-report [--trace=FILE] [--metrics=FILE.json] [--flight=FILE]\n"
      "               [--top=12]\n"
      "  isa-report   [--require=scalar|avx2|avx512]  (exit 0 iff runnable)\n"
      "\n"
      "observability: every command takes\n"
      "  --metrics-out=FILE   scrape the global metrics registry on exit\n"
      "                       (*.json -> JSON, anything else -> Prometheus\n"
      "                       text); metrics-dump runs a mini end-to-end\n"
      "                       workload and emits two scrapes (--out-a after\n"
      "                       the batch phase, --out-b after streaming) for\n"
      "                       counter-monotonicity checks\n"
      "  --trace-out=FILE     with ENSEMFDET_TRACE=1, flush the Chrome\n"
      "                       trace_event timeline (chrome://tracing);\n"
      "                       complete events carry trace_id / span_id /\n"
      "                       parent_span_id args, so the file is also a\n"
      "                       causal span forest (one tree per detection)\n"
      "                       [default ensemfdet_trace.json]\n"
      "  --flight-recorder=FILE\n"
      "                       map an always-on crash black box at FILE:\n"
      "                       the last ~2k spans per thread survive any\n"
      "                       process death (even SIGKILL); inspect with\n"
      "                       trace-report --flight=FILE (warns and runs\n"
      "                       without it when metrics are compiled out;\n"
      "                       not on bench-*, whose obs bench installs\n"
      "                       its own recorder)\n"
      "\n"
      "trace-report reads those artifacts back: per-stage self-time\n"
      "  rollups and the critical path per traced job (--trace), histogram\n"
      "  tail exemplars joined to their span trees (--metrics), and\n"
      "  black-box dump summaries with crash markers (--flight)\n"
      "\n"
      "durable ingest (stream-replay):\n"
      "  --wal=DIR            append every batch to a CRC-framed WAL in\n"
      "                       DIR, made durable per --fsync (none, batch,\n"
      "                       always; default batch) before it is acked\n"
      "  --recover            rebuild a killed run: resume from\n"
      "                       DIR/checkpoint.efg when present (or\n"
      "                       --resume=FILE), replay the WAL suffix, and\n"
      "                       finish the replay — stdout is bit-identical\n"
      "                       to the uninterrupted run\n"
      "\n"
      "exit codes: 0 ok; 2 usage (bad flags / InvalidArgument / NotFound);\n"
      "            1 runtime failure (IO, corrupt input, detection error)\n");
  return 2;
}

// The unified Status -> exit-code surface: every fallible path funnels
// its non-OK Status through here, so unreadable or malformed input always
// prints the full status ("IOError: cannot open ...") and exits non-zero
// (2 for caller mistakes, 1 for runtime failures). CI asserts this.
int FailWith(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return status.code() == StatusCode::kInvalidArgument ||
                 status.code() == StatusCode::kNotFound
             ? 2
             : 1;
}

// Binary snapshots are selected by extension: *.efg loads through the
// mmap reader, anything else parses as TSV.
bool IsSnapshotPath(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".efg") == 0;
}

// Blacklist file format: one fraud user id per line, '#' comments.
Status SaveLabels(const LabelSet& labels, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << "# fraud user ids, one per line (" << labels.num_fraud() << " of "
      << labels.num_users() << " users)\n";
  for (UserId u : labels.FraudUsers()) out << u << "\n";
  if (!out.good()) return Status::IOError("short write to " + path);
  return Status::OK();
}

Result<LabelSet> LoadLabels(const std::string& path, int64_t num_users) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::vector<UserId> fraud;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    char* end = nullptr;
    // strtoull happily wraps negatives ("-5" → 2^64-5), so reject any
    // sign explicitly and range-check in the unsigned domain.
    unsigned long long id = std::strtoull(line.c_str(), &end, 10);
    if (end == line.c_str() || line[0] == '-' || line[0] == '+') {
      return Status::IOError("unparsable label line: " + line);
    }
    if (id >= static_cast<unsigned long long>(num_users)) {
      return Status::InvalidArgument("label id " + std::to_string(id) +
                                     " out of range for " +
                                     std::to_string(num_users) + " users");
    }
    fraud.push_back(static_cast<UserId>(id));
  }
  return LabelSet(num_users, fraud);
}

Result<JdPreset> ParsePreset(const std::string& name) {
  for (JdPreset p : AllJdPresets()) {
    if (name == JdPresetName(p)) return p;
  }
  return Status::NotFound("unknown preset '" + name +
                          "' (want dataset1|dataset2|dataset3)");
}

ThreadPool* PoolFromFlag(int threads) {
  static std::optional<ThreadPool> owned;
  if (threads > 0) {
    owned.emplace(threads);
    return &*owned;
  }
  return &DefaultThreadPool();
}

// The full ResultCache counter set (hit/miss/insertion/eviction — the
// previously collected-but-invisible stats), shared by detect / evaluate /
// stream-replay.
void PrintCacheStats(DetectionService& service) {
  ResultCacheStats stats = service.cache_stats();
  std::fprintf(stderr,
               "[cache] %lld lookups: %lld hits, %lld misses; "
               "%lld insertions, %lld evictions, %lld entries retained\n",
               (long long)stats.lookups(), (long long)stats.hits,
               (long long)stats.misses, (long long)stats.insertions,
               (long long)stats.evictions, (long long)service.cache().size());
}

// Scrapes the global metrics registry to a file; the format follows the
// extension (*.json -> JSON, anything else -> Prometheus text exposition).
Status WriteMetricsSnapshot(const std::string& path) {
  const obs::RegistrySnapshot snap = obs::MetricsRegistry::Global().Scrape();
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  const std::string body =
      json ? obs::ToJson(snap) : obs::ToPrometheusText(snap);
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << body;
  if (!out.good()) return Status::IOError("short write to " + path);
  std::fprintf(stderr, "[metrics] %zu series -> %s (%s)\n",
               snap.metrics.size(), path.c_str(),
               json ? "json" : "prometheus");
  return Status::OK();
}

// End-of-command observability epilogue, shared by detect / evaluate /
// stream-replay / metrics-dump: honor --metrics-out, and flush the trace
// timeline when ENSEMFDET_TRACE=1 collected any events.
int FinishObservability(const std::string& metrics_out,
                        const std::string& trace_out) {
  if (!metrics_out.empty()) {
    Status st = WriteMetricsSnapshot(metrics_out);
    if (!st.ok()) return FailWith(st);
  }
  if (obs::TraceEnabled() && obs::TraceEventCount() > 0) {
    if (!obs::FlushTraceTo(trace_out)) {
      return FailWith(Status::IOError("cannot write trace to " + trace_out));
    }
    std::fprintf(stderr, "[trace] timeline -> %s (chrome://tracing)\n",
                 trace_out.c_str());
  }
  return 0;
}

// --flight-recorder=FILE: map the always-on crash black box for this
// process. Consumed by every workload command; warns and continues when
// metrics are compiled out so the flag is safe in metrics-off CI legs.
int MaybeInstallFlightRecorder(Flags& flags) {
  const std::string path = flags.GetString("flight-recorder", "");
  if (path.empty()) return 0;
  obs::FlightRecorderOptions options;
  options.path = path;
  Status st = obs::InstallFlightRecorder(options);
  if (!st.ok()) {
    if (!obs::kMetricsCompiledIn) {
      std::fprintf(stderr,
                   "[warn] --flight-recorder=%s ignored: metrics compiled "
                   "out (ENSEMFDET_METRICS=OFF)\n",
                   path.c_str());
      return 0;
    }
    return FailWith(st);
  }
  std::fprintf(stderr, "[flight] black box -> %s\n", path.c_str());
  return 0;
}

// Shared by detect/evaluate: assemble the ensemble config from flags.
EnsemFDetConfig EnsembleFromFlags(Flags& flags) {
  EnsemFDetConfig config;
  config.num_samples = flags.GetInt("n", 80);
  config.ratio = flags.GetDouble("s", 0.1);
  config.seed = flags.GetUint64("seed", 42);
  std::string method = flags.GetString("method", "random_edge");
  auto parsed = ParseSampleMethod(method);
  if (!parsed.ok()) std::exit(FailWith(parsed.status()));
  config.method = *parsed;
  return config;
}

// ---------------------------------------------------------------------------
// generate
// ---------------------------------------------------------------------------
int CmdGenerate(Flags& flags) {
  const std::string out = flags.GetString("out", "");
  const std::string labels_path = flags.GetString("labels", "");
  const std::string preset_name = flags.GetString("preset", "dataset1");
  const double scale = flags.GetDouble("scale", 0.01);
  const uint64_t seed = flags.GetUint64("seed", 7);
  const std::string metrics_out = flags.GetString("metrics-out", "");
  const std::string trace_out =
      flags.GetString("trace-out", "ensemfdet_trace.json");
  const int fr = MaybeInstallFlightRecorder(flags);
  if (fr != 0) return fr;
  flags.DieOnUnknown();
  if (out.empty()) {
    std::fprintf(stderr, "error: generate requires --out=FILE\n");
    return 2;
  }

  auto preset = ParsePreset(preset_name);
  if (!preset.ok()) return FailWith(preset.status());
  auto dataset = GenerateJdPreset(*preset, scale, seed);
  if (!dataset.ok()) return FailWith(dataset.status());
  Status st = SaveEdgeListTsv(dataset->graph, out);
  if (!st.ok()) return FailWith(st);
  std::fprintf(stderr,
               "[generate] %s scale=%.4g seed=%llu -> %s "
               "(%lld users, %lld merchants, %lld edges, %lld blacklisted)\n",
               preset_name.c_str(), scale, (unsigned long long)seed,
               out.c_str(), (long long)dataset->graph.num_users(),
               (long long)dataset->graph.num_merchants(),
               (long long)dataset->graph.num_edges(),
               (long long)dataset->blacklist.num_fraud());
  if (!labels_path.empty()) {
    st = SaveLabels(dataset->blacklist, labels_path);
    if (!st.ok()) return FailWith(st);
    std::fprintf(stderr, "[generate] blacklist -> %s\n", labels_path.c_str());
  }
  return FinishObservability(metrics_out, trace_out);
}

// ---------------------------------------------------------------------------
// detect
// ---------------------------------------------------------------------------
struct DetectRun {
  std::shared_ptr<const JobResult> result;
  EnsemFDetConfig config;
  DetectorKind detector = DetectorKind::kEnsemFDet;
};

// Loads --graph and publishes it under the name "cli"; fills `snapshot`.
int LoadAndPublishGraph(Flags& flags, GraphRegistry& registry,
                        GraphSnapshot* snapshot) {
  const std::string path = flags.GetString("graph", "");
  if (path.empty()) {
    std::fprintf(stderr, "error: requires --graph=FILE\n");
    return 2;
  }
  Result<GraphSnapshot> published = [&]() -> Result<GraphSnapshot> {
    if (IsSnapshotPath(path)) {
      // Binary snapshot: mmap'd, fingerprint-verified, served zero-copy.
      return registry.LoadSnapshot("cli", path);
    }
    ENSEMFDET_ASSIGN_OR_RETURN(BipartiteGraph graph, LoadEdgeListTsv(path));
    return registry.Publish("cli", std::move(graph));
  }();
  if (!published.ok()) return FailWith(published.status());
  std::fprintf(stderr,
               "[load] %s (%s): %lld users x %lld merchants, %lld edges "
               "(fingerprint %016llx)\n",
               path.c_str(), IsSnapshotPath(path) ? "mmap snapshot" : "tsv",
               (long long)published->graph->num_users(),
               (long long)published->graph->num_merchants(),
               (long long)published->graph->num_edges(),
               (unsigned long long)published->fingerprint);
  *snapshot = std::move(published).value();
  return 0;
}

// Runs --repeat jobs over the published "cli" graph through the service.
// On success, fills `run` with the last job's result.
int RunDetectJobs(Flags& flags, DetectionService& service, DetectRun* run) {
  auto detector = ParseDetectorKind(flags.GetString("detector", "ensemfdet"));
  if (!detector.ok()) return FailWith(detector.status());
  run->detector = *detector;
  run->config = EnsembleFromFlags(flags);
  if (run->detector != DetectorKind::kEnsemFDet) {
    // Baselines run with their library-default configs, print a --top
    // ranking instead of applying T, and never touch the cache; don't let
    // any of those flags pass silently without effect.
    for (const char* tuning : {"n", "s", "method", "seed", "t", "no-cache"}) {
      if (flags.Has(tuning)) {
        std::fprintf(stderr,
                     "[warn] --%s has no effect with --detector=%s "
                     "(baselines use library defaults)\n",
                     tuning, DetectorKindName(run->detector));
      }
    }
  }
  const int repeat = flags.GetInt("repeat", 1);
  if (repeat < 1) {
    std::fprintf(stderr, "error: --repeat must be >= 1\n");
    return 2;
  }
  const bool use_cache = !flags.GetBool("no-cache", false);

  for (int i = 0; i < repeat; ++i) {
    JobRequest request;
    request.graph_name = "cli";
    request.detector = run->detector;
    request.ensemble = run->config;
    request.use_cache = use_cache;
    WallTimer timer;
    auto result = service.Detect(std::move(request));
    if (!result.ok()) return FailWith(result.status());
    std::fprintf(stderr, "[detect] run %d/%d: %s in %s%s\n", i + 1, repeat,
                 DetectorKindName(run->detector),
                 FormatDuration(timer.ElapsedSeconds()).c_str(),
                 (*result)->cache_hit ? " (result cache hit)" : "");
    run->result = std::move(result).value();
  }
  PrintCacheStats(service);
  return 0;
}

int CmdDetect(Flags& flags) {
  GraphRegistry registry;
  ThreadPool* pool = PoolFromFlag(flags.GetInt("threads", 0));
  DetectionService service(&registry, pool);

  DetectRun run;
  // Read flags consumed below before DieOnUnknown fires inside helpers.
  const int t_flag = flags.GetInt("t", -1);
  const int top = flags.GetInt("top", 25);
  const std::string metrics_out = flags.GetString("metrics-out", "");
  const std::string trace_out =
      flags.GetString("trace-out", "ensemfdet_trace.json");
  int rc = MaybeInstallFlightRecorder(flags);
  if (rc != 0) return rc;
  GraphSnapshot snapshot;
  rc = LoadAndPublishGraph(flags, registry, &snapshot);
  if (rc == 0) rc = RunDetectJobs(flags, service, &run);
  // Only typo-check flags on the success path: after a failure, flags the
  // aborted stage never consumed would be misreported as unknown.
  if (rc != 0) return rc;
  flags.DieOnUnknown();

  if (run.detector == DetectorKind::kEnsemFDet) {
    const int threshold =
        t_flag > 0 ? t_flag : std::max(1, run.config.num_samples / 10);
    auto suspicious = run.result->report->AcceptedUsers(threshold);
    std::fprintf(stderr, "[detect] N=%d S=%.3f T=%d -> %zu suspicious users\n",
                 run.config.num_samples, run.config.ratio, threshold,
                 suspicious.size());
    for (UserId u : suspicious) std::printf("%u\n", u);
  } else {
    // Baselines produce a ranking; print the --top highest-scoring users.
    const std::vector<double>& scores = run.result->user_scores;
    std::vector<UserId> order(scores.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = (UserId)i;
    std::sort(order.begin(), order.end(), [&](UserId a, UserId b) {
      if (scores[a] != scores[b]) return scores[a] > scores[b];
      return a < b;
    });
    const size_t k = std::min<size_t>(top, order.size());
    std::fprintf(stderr, "[detect] top %zu users by %s score\n", k,
                 DetectorKindName(run.detector));
    for (size_t i = 0; i < k; ++i) {
      std::printf("%u\t%.6g\n", order[i], scores[order[i]]);
    }
  }
  return FinishObservability(metrics_out, trace_out);
}

// ---------------------------------------------------------------------------
// save-graph: convert any loadable graph (TSV or an existing .efg) into a
// .efg binary snapshot via the registry's snapshot path, so later
// detect/evaluate runs skip TSV parsing entirely (mmap zero-copy load).
// ---------------------------------------------------------------------------
int CmdSaveGraph(Flags& flags) {
  // Validate --out before the (potentially large) input graph is loaded.
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "error: save-graph requires --out=FILE.efg\n");
    return 2;
  }
  const std::string metrics_out = flags.GetString("metrics-out", "");
  const std::string trace_out =
      flags.GetString("trace-out", "ensemfdet_trace.json");
  const int fr = MaybeInstallFlightRecorder(flags);
  if (fr != 0) return fr;
  GraphRegistry registry;
  GraphSnapshot snapshot;
  int rc = LoadAndPublishGraph(flags, registry, &snapshot);
  if (rc != 0) return rc;
  flags.DieOnUnknown();
  Status st = registry.SaveSnapshot("cli", out);
  if (!st.ok()) return FailWith(st);
  // Prove the round-trip before reporting success: reopen via the mmap
  // reader and re-verify the content fingerprint zero-copy (no adjacency
  // materialization) — save-graph is a self-checking operation.
  auto reloaded = storage::MappedCsrGraph::Open(out);
  if (!reloaded.ok()) return FailWith(reloaded.status());
  st = reloaded->VerifyFingerprint();
  if (!st.ok()) return FailWith(st);
  if (reloaded->fingerprint() != snapshot.fingerprint) {
    std::fprintf(stderr,
                 "error: Internal: reloaded fingerprint %016llx does not "
                 "match source %016llx\n",
                 (unsigned long long)reloaded->fingerprint(),
                 (unsigned long long)snapshot.fingerprint);
    return 1;
  }
  std::fprintf(stderr,
               "[save-graph] %s: %lld edges, fingerprint %016llx "
               "(mmap round-trip verified)\n",
               out.c_str(), (long long)snapshot.graph->num_edges(),
               (unsigned long long)snapshot.fingerprint);
  return FinishObservability(metrics_out, trace_out);
}

// ---------------------------------------------------------------------------
// evaluate
// ---------------------------------------------------------------------------
int CmdEvaluate(Flags& flags) {
  GraphRegistry registry;
  ThreadPool* pool = PoolFromFlag(flags.GetInt("threads", 0));
  DetectionService service(&registry, pool);

  const std::string labels_path = flags.GetString("labels", "");
  const int t_flag = flags.GetInt("t", -1);
  const bool print_curve = flags.GetBool("curve", false);
  const std::string metrics_out = flags.GetString("metrics-out", "");
  const std::string trace_out =
      flags.GetString("trace-out", "ensemfdet_trace.json");
  if (labels_path.empty()) {
    std::fprintf(stderr, "error: evaluate requires --labels=FILE\n");
    return 2;
  }
  int fr = MaybeInstallFlightRecorder(flags);
  if (fr != 0) return fr;

  // Load the graph and validate the labels *before* detection: a bad
  // --labels path must not cost a full ensemble run.
  GraphSnapshot snapshot;
  int rc = LoadAndPublishGraph(flags, registry, &snapshot);
  if (rc != 0) return rc;
  auto labels = LoadLabels(labels_path, snapshot.graph->num_users());
  if (!labels.ok()) return FailWith(labels.status());

  // Evaluation needs a vote table, so only the ensemble detector makes
  // sense — reject others before paying for a detection run.
  if (flags.GetString("detector", "ensemfdet") != "ensemfdet") {
    std::fprintf(stderr, "error: evaluate supports --detector=ensemfdet\n");
    return 2;
  }

  DetectRun run;
  rc = RunDetectJobs(flags, service, &run);
  if (rc != 0) return rc;
  flags.DieOnUnknown();

  const int threshold =
      t_flag > 0 ? t_flag : std::max(1, run.config.num_samples / 10);
  auto detected = run.result->report->AcceptedUsers(threshold);
  Confusion c = CountConfusion(detected, *labels);
  auto curve = VoteSweep(run.result->report->votes, *labels,
                         run.config.num_samples);
  std::printf("detector=ensemfdet N=%d S=%.3f T=%d\n", run.config.num_samples,
              run.config.ratio, threshold);
  std::printf("detected=%lld precision=%.4f recall=%.4f f1=%.4f "
              "pr_auc=%.4f\n",
              (long long)c.num_detected(), Precision(c), Recall(c),
              F1Score(c), PrCurveArea(curve));
  if (print_curve) {
    std::printf("T,num_detected,precision,recall,f1\n");
    for (const OperatingPoint& p : curve) {
      std::printf("%g,%lld,%.4f,%.4f,%.4f\n", p.control,
                  (long long)p.num_detected, p.precision, p.recall, p.f1);
    }
  }
  return FinishObservability(metrics_out, trace_out);
}

// ---------------------------------------------------------------------------
// isa-report: print the SIMD dispatch decision (CPU level, build ceiling,
// FORCE_ISA, active level). CI's forced-ISA jobs use --require as their
// CPUID guard: exit 0 only when the CPU *and* build can actually run the
// requested level, so a forced-AVX2 suite skips cleanly on an incapable
// runner instead of passing vacuously against a clamped scalar dispatch.
// ---------------------------------------------------------------------------
int CmdIsaReport(Flags& flags) {
  const std::string require = flags.GetString("require", "");
  flags.DieOnUnknown();
  std::printf("cpu=%s\n", simd::IsaLevelName(simd::CpuIsaLevel()));
  std::printf("detected=%s\n", simd::IsaLevelName(simd::DetectedIsaLevel()));
  std::printf("forced_by_env=%s\n", simd::IsaForcedByEnv() ? "true" : "false");
  std::printf("active=%s\n", simd::IsaLevelName(simd::ActiveIsaLevel()));
  if (!require.empty()) {
    simd::IsaLevel level;
    if (!simd::ParseIsaLevel(require, &level)) {
      std::fprintf(stderr, "error: --require=%s is not scalar|avx2|avx512\n",
                   require.c_str());
      return 2;
    }
    if (simd::DetectedIsaLevel() < level) {
      std::fprintf(stderr, "[isa-report] %s not available here\n",
                   require.c_str());
      return 1;
    }
    std::fprintf(stderr, "[isa-report] %s available\n", require.c_str());
  }
  return 0;
}

// ---------------------------------------------------------------------------
// bench-smoke: end-to-end self-check of the service layer.
// ---------------------------------------------------------------------------
#define SMOKE_CHECK(cond, what)                                   \
  do {                                                            \
    if (cond) {                                                   \
      std::fprintf(stderr, "[smoke] ok: %s\n", what);             \
    } else {                                                      \
      std::fprintf(stderr, "[smoke] FAILED: %s\n", what);         \
      return 1;                                                   \
    }                                                             \
  } while (0)

int CmdBenchSmoke(Flags& flags) {
  const double scale = flags.GetDouble("scale", 0.004);
  const uint64_t seed = flags.GetUint64("seed", 7);
  ThreadPool* pool = PoolFromFlag(flags.GetInt("threads", 0));
  flags.DieOnUnknown();

  WallTimer total;
  auto dataset = GenerateJdPreset(JdPreset::kDataset1, scale, seed);
  SMOKE_CHECK(dataset.ok(), "generate dataset1 preset");

  GraphRegistry registry;
  DetectionService service(&registry, pool);
  auto snapshot = registry.Publish("smoke", dataset->graph);
  SMOKE_CHECK(snapshot.ok(), "publish graph snapshot");

  JobRequest request;
  request.graph_name = "smoke";
  request.ensemble.num_samples = 16;
  request.ensemble.ratio = 0.15;
  request.ensemble.seed = seed;

  auto first = service.Detect(request);
  SMOKE_CHECK(first.ok() && !(*first)->cache_hit, "cold ensemble detection");
  auto second = service.Detect(request);
  SMOKE_CHECK(second.ok() && (*second)->cache_hit,
              "repeat request served from ResultCache");
  SMOKE_CHECK((*second)->report.get() == (*first)->report.get(),
              "cache returns the identical report object");

  // Vote tables must be deterministic in the seed regardless of threads.
  ThreadPool narrow(1);
  GraphRegistry registry1;
  DetectionService service1(&registry1, &narrow);
  registry1.Publish("smoke", dataset->graph).ValueOrDie();
  auto sequential = service1.Detect(request);
  SMOKE_CHECK(sequential.ok(), "single-thread detection");
  const auto& votes_a = (*first)->report->votes;
  const auto& votes_b = (*sequential)->report->votes;
  bool identical = votes_a.num_users() == votes_b.num_users();
  for (UserId u = 0; identical && u < votes_a.num_users(); ++u) {
    identical = votes_a.user_votes(u) == votes_b.user_votes(u);
  }
  SMOKE_CHECK(identical, "vote table identical at any thread count");

  auto hits = service.Detect([&] {
    JobRequest r;
    r.graph_name = "smoke";
    r.detector = DetectorKind::kHits;
    return r;
  }());
  SMOKE_CHECK(hits.ok() && !(*hits)->user_scores.empty(),
              "baseline (hits) job through the service");

  // Windowed replay over a synthetic minute-long transaction burst.
  JobRequest windowed;
  WindowedReplaySpec spec;
  spec.config.num_users = dataset->graph.num_users();
  spec.config.num_merchants = dataset->graph.num_merchants();
  spec.config.window = 600;
  spec.config.detection_interval = 300;
  spec.config.ensemble = request.ensemble;
  int64_t ts = 0;
  for (const Edge& e : dataset->graph.edges()) {
    spec.transactions.push_back({ts, e.user, e.merchant});
    if (spec.transactions.size() >= 2000) break;
    ts += 1;
  }
  windowed.windowed = std::move(spec);
  auto replay = service.Detect(std::move(windowed));
  SMOKE_CHECK(replay.ok() && (*replay)->report != nullptr,
              "windowed streaming replay job");

  ResultCacheStats stats = service.cache_stats();
  SMOKE_CHECK(stats.hits >= 1 && stats.misses >= 1, "cache stats counted");

  std::fprintf(stderr, "[smoke] all checks passed in %s (pool=%d threads)\n",
               FormatDuration(total.ElapsedSeconds()).c_str(),
               pool->num_threads());
  return 0;
}

// ---------------------------------------------------------------------------
// stream-replay: replay a synthetic campaign-day transaction stream
// through a DetectionService streaming session — the incremental-ingest
// subsystem end to end: batches feed a DynamicGraphStore, every interval
// runs dirty-scoped re-detection (clean components replayed from cache),
// every fired detection's GraphVersion is registered in the GraphRegistry,
// and the final forced detection's suspicious users go to stdout.
// ---------------------------------------------------------------------------
int CmdStreamReplay(Flags& flags) {
  const std::string preset_name = flags.GetString("preset", "dataset1");
  const double scale = flags.GetDouble("scale", 0.01);
  const uint64_t seed = flags.GetUint64("seed", 7);
  const int64_t horizon = flags.GetInt("horizon", 86400);
  const int64_t burst = flags.GetInt("burst", 1800);
  const int64_t window = flags.GetInt("window", 14400);
  const int64_t interval = flags.GetInt("interval", 1200);
  const int batch_events = flags.GetInt("batch", 256);
  const int t_flag = flags.GetInt("t", -1);
  const std::string register_name = flags.GetString("register", "stream");
  // Checkpoint/resume: --checkpoint saves the session's window state
  // (after --stop-after-batches batches, or at stream end); --resume
  // opens the session from a saved checkpoint and --skip-batches skips
  // the batches the checkpointed run already ingested. Because detection
  // randomness is content-derived, a resumed replay's reports are
  // bit-identical to the uninterrupted run (CI asserts this).
  const std::string checkpoint_path = flags.GetString("checkpoint", "");
  const int64_t stop_after = flags.GetInt("stop-after-batches", 0);
  std::string resume_path = flags.GetString("resume", "");
  const int64_t skip_batches = flags.GetInt("skip-batches", 0);
  // Durable ingest: --wal=DIR appends every batch to a CRC-framed WAL and
  // fsyncs per --fsync before the batch is acked; --recover rebuilds a
  // killed run (newest checkpoint if --resume/--checkpoint points at one,
  // else DIR/checkpoint.efg if present, then the WAL suffix) and resumes
  // the replay at the first batch the log does not already hold. stdout
  // stays bit-identical to an uninterrupted run (CI kills a run with
  // SIGKILL mid-stream and asserts exactly that).
  const std::string wal_dir = flags.GetString("wal", "");
  const std::string fsync_name = flags.GetString("fsync", "batch");
  const bool recover = flags.GetBool("recover", false);
  const std::string metrics_out = flags.GetString("metrics-out", "");
  const std::string trace_out =
      flags.GetString("trace-out", "ensemfdet_trace.json");
  ThreadPool* pool = PoolFromFlag(flags.GetInt("threads", 0));
  if (stop_after > 0 && checkpoint_path.empty()) {
    std::fprintf(stderr,
                 "error: --stop-after-batches requires --checkpoint\n");
    return 2;
  }
  if (skip_batches < 0 || stop_after < 0) {
    std::fprintf(stderr, "error: batch counts must be >= 0\n");
    return 2;
  }
  if (wal_dir.empty() && recover) {
    std::fprintf(stderr, "error: --recover requires --wal=DIR\n");
    return 2;
  }

  StreamSessionConfig session;
  if (!wal_dir.empty()) {
    auto policy = storage::ParseWalFsyncPolicy(fsync_name);
    if (!policy.ok()) return FailWith(policy.status());
    session.wal.dir = wal_dir;
    session.wal.fsync = *policy;
    session.wal.recover = recover;
    if (recover && resume_path.empty()) {
      // A recovering run picks up the session's own newest checkpoint by
      // convention: SaveStreamCheckpoint truncated the WAL against it, so
      // replaying without it would start past the log's beginning.
      const std::string conventional = wal_dir + "/checkpoint.efg";
      std::error_code ec;
      if (std::filesystem::exists(conventional, ec)) {
        resume_path = conventional;
      }
    }
  }
  session.resume_checkpoint = resume_path;
  session.detector.window = window;
  session.detector.detection_interval = interval;
  session.detector.max_out_of_order = flags.GetInt("max-out-of-order", 0);
  session.detector.min_component_edges =
      flags.GetInt("min-component-edges", 1);
  session.detector.ensemble = EnsembleFromFlags(flags);
  session.publish_name = register_name;
  const int fr = MaybeInstallFlightRecorder(flags);
  if (fr != 0) return fr;
  flags.DieOnUnknown();

  auto preset = ParsePreset(preset_name);
  if (!preset.ok()) return FailWith(preset.status());
  auto dataset = GenerateJdPreset(*preset, scale, seed);
  if (!dataset.ok()) return FailWith(dataset.status());
  StreamTimelineConfig timeline;
  timeline.horizon = horizon;
  timeline.burst_duration = burst;
  timeline.seed = seed + 1;
  auto events = BuildTransactionStream(*dataset, timeline);
  if (!events.ok()) return FailWith(events.status());
  auto batches = SliceIntoBatches(*events, batch_events);
  if (!batches.ok()) return FailWith(batches.status());
  session.detector.num_users = dataset->graph.num_users();
  session.detector.num_merchants = dataset->graph.num_merchants();
  // This tool enqueues the whole replay up front while one drainer does
  // the detections; size the session queue to the replay so backpressure
  // (meant for live producers that can retry) never aborts it.
  session.max_queued_batches =
      std::max<int64_t>(64, static_cast<int64_t>(batches->size()));
  std::fprintf(stderr,
               "[stream-replay] %s scale=%.4g: %zu events in %zu batches, "
               "window=%lld interval=%lld\n",
               preset_name.c_str(), scale, events->size(), batches->size(),
               (long long)window, (long long)interval);

  GraphRegistry registry;
  DetectionService service(&registry, pool);
  auto stream = service.OpenStream(session);
  if (!stream.ok()) return FailWith(stream.status());

  int64_t effective_skip = skip_batches;
  if (recover) {
    auto opened = service.PollReport(*stream);
    if (!opened.ok()) return FailWith(opened.status());
    // WAL seq == 1-based batch number: batches 1..wal_last_seq are
    // durable and already applied (via checkpoint or replay); the
    // deterministic generator just regenerates and skips them.
    effective_skip = std::max<int64_t>(
        effective_skip, static_cast<int64_t>(opened->wal_last_seq));
    std::fprintf(stderr,
                 "[stream-replay] recovered: %llu WAL records replayed, "
                 "resuming at batch %lld\n",
                 (unsigned long long)opened->wal_records_recovered,
                 (long long)effective_skip);
  }

  // Narration reads from the global metrics registry: every streaming
  // Detect mirrors its StreamingDetectionStats into the
  // ensemfdet_stream_* counters en bloc before the report is published,
  // so the counter delta between two observed reports IS that report's
  // stats and the narration lines are bit-identical to ones printed from
  // the report snapshot. The snapshot remains the fallback when metrics
  // are compiled out / runtime-disabled, or when a poll observes more
  // than one new report (the aggregate delta then spans several).
  obs::MetricsRegistry& mreg = obs::MetricsRegistry::Global();
  struct StreamCounters {
    obs::Counter* eligible;
    obs::Counter* reused;
    obs::Counter* recomputed;
    obs::Counter* edges;
    obs::Counter* edges_recomputed;
  } mc{mreg.GetCounter("ensemfdet_stream_components_eligible_total"),
       mreg.GetCounter("ensemfdet_stream_components_reused_total"),
       mreg.GetCounter("ensemfdet_stream_components_recomputed_total"),
       mreg.GetCounter("ensemfdet_stream_edges_total"),
       mreg.GetCounter("ensemfdet_stream_edges_recomputed_total")};
  int64_t last_eligible = mc.eligible->Value();
  int64_t last_reused = mc.reused->Value();
  int64_t last_recomputed = mc.recomputed->Value();
  int64_t last_edges = mc.edges->Value();
  int64_t last_edges_recomputed = mc.edges_recomputed->Value();

  WallTimer timer;
  uint64_t reported = 0;
  int64_t batch_index = 0;
  for (const IngestBatch& batch : *batches) {
    const int64_t index = batch_index++;
    if (index < effective_skip) continue;  // already durable/applied
    if (stop_after > 0 && index >= stop_after) break;
    Status st = service.IngestBatch(*stream, batch);
    if (!st.ok()) return FailWith(st);
    // Narrate each fired detection as the stream advances (poll is
    // non-blocking; with a pool the report may trail the ingest).
    auto state = service.PollReport(*stream);
    if (state.ok() && state->reports_generated > reported) {
      const bool single_step = state->reports_generated == reported + 1;
      reported = state->reports_generated;
      const int64_t now_eligible = mc.eligible->Value();
      const int64_t now_reused = mc.reused->Value();
      const int64_t now_recomputed = mc.recomputed->Value();
      const int64_t now_edges = mc.edges->Value();
      const int64_t now_edges_recomputed = mc.edges_recomputed->Value();
      const bool from_registry = obs::kMetricsCompiledIn &&
                                 obs::MetricsRuntimeEnabled() && single_step;
      const StreamingDetectionStats& s = state->report_stats;
      const int64_t eligible =
          from_registry ? now_eligible - last_eligible : s.components_eligible;
      const int64_t reused =
          from_registry ? now_reused - last_reused : s.components_reused;
      const int64_t recomputed = from_registry
                                     ? now_recomputed - last_recomputed
                                     : s.components_recomputed;
      const int64_t edges =
          from_registry ? now_edges - last_edges : s.edges_total;
      const int64_t edges_dirty = from_registry
                                      ? now_edges_recomputed -
                                            last_edges_recomputed
                                      : s.edges_recomputed;
      last_eligible = now_eligible;
      last_reused = now_reused;
      last_recomputed = now_recomputed;
      last_edges = now_edges;
      last_edges_recomputed = now_edges_recomputed;
      std::fprintf(stderr,
                   "[stream-replay] report #%llu epoch=%llu: %lld "
                   "components (%lld reused, %lld recomputed, %.0f%% of "
                   "edges clean)\n",
                   (unsigned long long)reported,
                   (unsigned long long)state->report_epoch,
                   (long long)eligible, (long long)reused,
                   (long long)recomputed,
                   edges > 0
                       ? 100.0 * (1.0 - (double)edges_dirty / (double)edges)
                       : 0.0);
    }
  }
  if (!checkpoint_path.empty()) {
    Status st = service.SaveStreamCheckpoint(*stream, checkpoint_path);
    if (!st.ok()) return FailWith(st);
    std::fprintf(stderr, "[stream-replay] checkpoint -> %s\n",
                 checkpoint_path.c_str());
    if (stop_after > 0) {
      // Early stop: persist the window and exit without the final forced
      // detection — a later --resume run completes the replay.
      Status closed = service.CloseStream(*stream);
      if (!closed.ok()) return FailWith(closed);
      std::fprintf(stderr,
                   "[stream-replay] stopped after %lld batches; resume "
                   "with --resume=%s --skip-batches=%lld\n",
                   (long long)stop_after, checkpoint_path.c_str(),
                   (long long)stop_after);
      return FinishObservability(metrics_out, trace_out);
    }
  }
  auto final_state = service.FinishStream(*stream);
  if (!final_state.ok()) return FailWith(final_state.status());
  if (!final_state->error.ok()) return FailWith(final_state->error);
  const double seconds = timer.ElapsedSeconds();

  std::fprintf(stderr,
               "[stream-replay] %lld events, %llu detections in %s "
               "(%.0f events/s incl. detection)\n",
               (long long)final_state->events_ingested,
               (unsigned long long)final_state->reports_generated,
               FormatDuration(seconds).c_str(),
               seconds > 0 ? final_state->events_ingested / seconds : 0.0);
  if (!register_name.empty()) {
    auto snapshot = registry.Get(register_name);
    if (snapshot.ok()) {
      std::fprintf(stderr,
                   "[stream-replay] registry '%s' v%llu fingerprint "
                   "%016llx (%lld edges live)\n",
                   register_name.c_str(),
                   (unsigned long long)snapshot->version,
                   (unsigned long long)snapshot->fingerprint,
                   (long long)snapshot->graph->num_edges());
    }
  }
  PrintCacheStats(service);

  const EnsemFDetConfig& ensemble = session.detector.ensemble;
  const int threshold =
      t_flag > 0 ? t_flag : std::max(1, ensemble.num_samples / 10);
  auto suspicious = final_state->report->AcceptedUsers(threshold);
  std::fprintf(stderr,
               "[stream-replay] final window: N=%d S=%.3f T=%d -> %zu "
               "suspicious users\n",
               ensemble.num_samples, ensemble.ratio, threshold,
               suspicious.size());
  for (UserId u : suspicious) std::printf("%u\n", u);
  return FinishObservability(metrics_out, trace_out);
}

// ---------------------------------------------------------------------------
// metrics-dump: run a miniature end-to-end workload that touches every
// instrumented layer (pool, detect, cache, service, storage, ingest,
// stream), scraping the global registry twice — --out-a after the batch
// phase and --out-b after the streaming phase. CI feeds both scrapes to
// tools/check_metrics.py, which asserts naming, required-series coverage,
// and counter monotonicity between A and B.
// ---------------------------------------------------------------------------
int CmdMetricsDump(Flags& flags) {
  const double scale = flags.GetDouble("scale", 0.004);
  const uint64_t seed = flags.GetUint64("seed", 7);
  const std::string out_a = flags.GetString("out-a", "");
  const std::string out_b = flags.GetString("out-b", "");
  const std::string metrics_out = flags.GetString("metrics-out", "");
  const std::string trace_out =
      flags.GetString("trace-out", "ensemfdet_trace.json");
  std::string workdir = flags.GetString("workdir", "");
  ThreadPool* pool = PoolFromFlag(flags.GetInt("threads", 0));
  const int fr = MaybeInstallFlightRecorder(flags);
  if (fr != 0) return fr;
  flags.DieOnUnknown();
  if (workdir.empty()) {
    std::error_code ec;
    workdir = std::filesystem::temp_directory_path(ec).string();
    if (ec) workdir = ".";
  }

  auto dataset = GenerateJdPreset(JdPreset::kDataset1, scale, seed);
  if (!dataset.ok()) return FailWith(dataset.status());

  GraphRegistry registry;
  DetectionService service(&registry, pool);
  auto published = registry.Publish("obs", dataset->graph);
  if (!published.ok()) return FailWith(published.status());

  // Storage layer: snapshot write, mmap open, fingerprint verify.
  const std::string efg = workdir + "/ensemfdet_metrics_dump.efg";
  Status st = registry.SaveSnapshot("obs", efg);
  if (!st.ok()) return FailWith(st);
  auto mapped = storage::MappedCsrGraph::Open(efg);
  if (!mapped.ok()) return FailWith(mapped.status());
  st = mapped->VerifyFingerprint();
  if (!st.ok()) return FailWith(st);

  // Service + detect + cache layers: a cold job then an identical one
  // served from the ResultCache.
  JobRequest request;
  request.graph_name = "obs";
  request.ensemble.num_samples = 8;
  request.ensemble.ratio = 0.15;
  request.ensemble.seed = seed;
  for (int i = 0; i < 2; ++i) {
    auto result = service.Detect(request);
    if (!result.ok()) return FailWith(result.status());
  }
  if (!out_a.empty()) {
    st = WriteMetricsSnapshot(out_a);
    if (!st.ok()) return FailWith(st);
  }

  // Ingest + stream + wal layers: a short synthetic WAL-backed stream
  // through a session, interrupted halfway and recovered, so scrape B
  // carries the full ensemfdet_wal_* series (appends, fsyncs, segment
  // creation, replayed records).
  const std::string wal_dir = workdir + "/ensemfdet_metrics_dump_wal";
  std::error_code wal_ec;
  std::filesystem::remove_all(wal_dir, wal_ec);
  StreamSessionConfig session;
  session.detector.window = 600;
  session.detector.detection_interval = 300;
  session.detector.ensemble = request.ensemble;
  session.detector.num_users = dataset->graph.num_users();
  session.detector.num_merchants = dataset->graph.num_merchants();
  session.wal.dir = wal_dir;
  session.wal.fsync = storage::WalFsyncPolicy::kBatch;
  StreamTimelineConfig timeline;
  timeline.horizon = 3600;
  timeline.burst_duration = 600;
  timeline.seed = seed + 1;
  auto events = BuildTransactionStream(*dataset, timeline);
  if (!events.ok()) return FailWith(events.status());
  auto batches = SliceIntoBatches(*events, 256);
  if (!batches.ok()) return FailWith(batches.status());
  session.max_queued_batches =
      std::max<int64_t>(64, static_cast<int64_t>(batches->size()));
  auto stream = service.OpenStream(session);
  if (!stream.ok()) return FailWith(stream.status());
  const size_t half = batches->size() / 2;
  for (size_t i = 0; i < half; ++i) {
    st = service.IngestBatch(*stream, (*batches)[i]);
    if (!st.ok()) return FailWith(st);
  }
  // "Crash": drop the session without a final detection, then recover a
  // fresh one from the WAL and stream the rest.
  st = service.CloseStream(*stream);
  if (!st.ok()) return FailWith(st);
  session.wal.recover = true;
  stream = service.OpenStream(session);
  if (!stream.ok()) return FailWith(stream.status());
  for (size_t i = half; i < batches->size(); ++i) {
    st = service.IngestBatch(*stream, (*batches)[i]);
    if (!st.ok()) return FailWith(st);
  }
  auto final_state = service.FinishStream(*stream);
  if (!final_state.ok()) return FailWith(final_state.status());
  if (!final_state->error.ok()) return FailWith(final_state->error);
  std::remove(efg.c_str());
  std::filesystem::remove_all(wal_dir, wal_ec);

  if (!out_b.empty()) {
    st = WriteMetricsSnapshot(out_b);
    if (!st.ok()) return FailWith(st);
  }
  if (out_a.empty() && out_b.empty() && metrics_out.empty()) {
    // No destination requested: dump the final scrape to stdout.
    std::fputs(
        obs::ToPrometheusText(obs::MetricsRegistry::Global().Scrape())
            .c_str(),
        stdout);
  }
  std::fprintf(stderr,
               "[metrics-dump] workload done: %lld events streamed, "
               "%llu stream detections, metrics %s\n",
               (long long)final_state->events_ingested,
               (unsigned long long)final_state->reports_generated,
               obs::kMetricsCompiledIn ? "compiled in" : "compiled OUT");
  return FinishObservability(metrics_out, trace_out);
}

// ---------------------------------------------------------------------------
// trace-report: offline per-job latency attribution. Reads back the
// artifacts the other commands emit — the --trace-out timeline (whose 'X'
// events carry trace/span/parent ids), a --metrics-out JSON scrape (whose
// histogram tail exemplars name a trace), and a --flight-recorder black
// box — and answers "where did this job's latency go": per-stage
// self-time rollups (span duration minus time covered by its children)
// and the critical path root -> deepest-finishing leaf.
// ---------------------------------------------------------------------------

// Extracts "key" from one line of this binary's own exporters (both the
// trace writer and the JSON metrics exporter emit one object per line, so
// a line-scoped scan is exact for them; this is not a general JSON
// parser). Handles both `"k":v` (trace) and `"k": v` (metrics) spacing.
bool JsonRawField(const std::string& line, const std::string& key,
                  std::string* out) {
  const std::string needle = "\"" + key + "\":";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  pos += needle.size();
  while (pos < line.size() && line[pos] == ' ') ++pos;
  if (pos >= line.size()) return false;
  if (line[pos] == '"') {
    const size_t end = line.find('"', pos + 1);
    if (end == std::string::npos) return false;
    *out = line.substr(pos + 1, end - pos - 1);
  } else {
    size_t end = pos;
    while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
    *out = line.substr(pos, end - pos);
  }
  return true;
}

struct ReportSpan {
  std::string name;
  double ts = 0;   // microseconds, trace epoch
  double dur = 0;
  std::string trace;  // 32-hex trace id
  uint64_t span = 0;
  uint64_t parent = 0;
};

int CmdTraceReport(Flags& flags) {
  const std::string trace_path = flags.GetString("trace", "");
  const std::string metrics_path = flags.GetString("metrics", "");
  const std::string flight_path = flags.GetString("flight", "");
  const int top = flags.GetInt("top", 12);
  flags.DieOnUnknown();
  if (trace_path.empty() && metrics_path.empty() && flight_path.empty()) {
    std::fprintf(stderr,
                 "error: trace-report wants --trace=FILE and/or "
                 "--metrics=FILE.json and/or --flight=FILE\n");
    return 2;
  }

  std::vector<ReportSpan> spans;
  std::map<std::string, std::vector<size_t>> by_trace;  // trace id -> spans
  if (!trace_path.empty()) {
    std::ifstream in(trace_path);
    if (!in) return FailWith(Status::IOError("cannot open " + trace_path));
    std::string line;
    size_t flows = 0;
    while (std::getline(in, line)) {
      if (line.find("\"ph\":\"X\"") == std::string::npos) {
        if (line.find("\"ph\":\"s\"") != std::string::npos ||
            line.find("\"ph\":\"f\"") != std::string::npos) {
          ++flows;
        }
        continue;
      }
      ReportSpan s;
      std::string ts, dur, span_hex, parent_hex;
      if (!JsonRawField(line, "name", &s.name) ||
          !JsonRawField(line, "ts", &ts) ||
          !JsonRawField(line, "dur", &dur) ||
          !JsonRawField(line, "trace_id", &s.trace) ||
          !JsonRawField(line, "span_id", &span_hex) ||
          !JsonRawField(line, "parent_span_id", &parent_hex)) {
        std::fprintf(stderr, "error: %s: X event without causal args: %s\n",
                     trace_path.c_str(), line.c_str());
        return 1;
      }
      s.ts = std::atof(ts.c_str());
      s.dur = std::atof(dur.c_str());
      s.span = std::strtoull(span_hex.c_str(), nullptr, 16);
      s.parent = std::strtoull(parent_hex.c_str(), nullptr, 16);
      by_trace[s.trace].push_back(spans.size());
      spans.push_back(std::move(s));
    }
    std::fprintf(stderr,
                 "[trace-report] %s: %zu spans in %zu trace(s), %zu flow "
                 "endpoints\n",
                 trace_path.c_str(), spans.size(), by_trace.size(),
                 flows);

    for (const auto& [trace_id, members] : by_trace) {
      const ReportSpan* root = nullptr;
      std::map<uint64_t, std::vector<const ReportSpan*>> children;
      for (size_t i : members) {
        const ReportSpan& s = spans[i];
        if (s.parent == 0 && root == nullptr) root = &s;
        if (s.parent != 0) children[s.parent].push_back(&s);
      }
      if (root == nullptr) continue;  // torn file; check_trace.py flags it

      // Self time per stage: own duration minus the union of direct
      // children's intervals (children overlap when they ran in parallel
      // on the pool, so merge before subtracting).
      struct Rollup {
        double self_us = 0;
        int64_t count = 0;
      };
      std::map<std::string, Rollup> rollups;
      for (size_t i : members) {
        const ReportSpan& s = spans[i];
        std::vector<std::pair<double, double>> intervals;
        auto it = children.find(s.span);
        if (it != children.end()) {
          for (const ReportSpan* c : it->second) {
            const double lo = std::max(c->ts, s.ts);
            const double hi = std::min(c->ts + c->dur, s.ts + s.dur);
            if (hi > lo) intervals.emplace_back(lo, hi);
          }
        }
        std::sort(intervals.begin(), intervals.end());
        double covered = 0, end = -1;
        for (const auto& [lo, hi] : intervals) {
          if (lo > end) {
            covered += hi - lo;
            end = hi;
          } else if (hi > end) {
            covered += hi - end;
            end = hi;
          }
        }
        Rollup& r = rollups[s.name];
        r.self_us += std::max(0.0, s.dur - covered);
        r.count += 1;
      }

      std::printf("trace %s  root=%s  total=%.3fms  spans=%zu\n",
                  trace_id.c_str(), root->name.c_str(), root->dur / 1e3,
                  members.size());
      std::vector<std::pair<std::string, Rollup>> ranked(rollups.begin(),
                                                         rollups.end());
      std::sort(ranked.begin(), ranked.end(), [](const auto& a,
                                                 const auto& b) {
        return a.second.self_us > b.second.self_us;
      });
      std::printf("  %-28s %6s %12s %6s\n", "stage", "count", "self_ms",
                  "%root");
      for (size_t i = 0; i < ranked.size() && i < (size_t)top; ++i) {
        const auto& [name, r] = ranked[i];
        std::printf("  %-28s %6lld %12.3f %5.1f%%\n", name.c_str(),
                    (long long)r.count, r.self_us / 1e3,
                    root->dur > 0 ? 100.0 * r.self_us / root->dur : 0.0);
      }
      // Critical path: descend into the child that finishes last — the
      // chain that bounded this job's wall clock.
      std::printf("  critical path:");
      const ReportSpan* node = root;
      for (;;) {
        std::printf(" %s(%.3fms)", node->name.c_str(), node->dur / 1e3);
        auto it = children.find(node->span);
        if (it == children.end()) break;
        const ReportSpan* last = nullptr;
        for (const ReportSpan* c : it->second) {
          if (last == nullptr || c->ts + c->dur > last->ts + last->dur) {
            last = c;
          }
        }
        node = last;
        std::printf(" ->");
      }
      std::printf("\n");
    }
  }

  if (!metrics_path.empty()) {
    // Join histogram tail exemplars to their span trees: a p999 outlier
    // in the scrape names the exact trace to open in the timeline.
    std::ifstream in(metrics_path);
    if (!in) return FailWith(Status::IOError("cannot open " + metrics_path));
    std::string line;
    size_t exemplars = 0;
    while (std::getline(in, line)) {
      const size_t pos = line.find("\"exemplar\":");
      if (pos == std::string::npos) continue;
      std::string name, trace_id, span_id;
      JsonRawField(line, "name", &name);
      const std::string tail = line.substr(pos);
      std::string value;
      JsonRawField(tail, "value", &value);
      JsonRawField(tail, "trace_id", &trace_id);
      JsonRawField(tail, "span_id", &span_id);
      ++exemplars;
      const bool in_trace = by_trace.count(trace_id) > 0;
      std::printf("exemplar %-40s max=%ss trace=%s span=%s%s\n",
                  name.c_str(), value.c_str(), trace_id.c_str(),
                  span_id.c_str(),
                  trace_path.empty()
                      ? ""
                      : (in_trace ? "  [in trace]" : "  [not in trace]"));
    }
    std::fprintf(stderr, "[trace-report] %s: %zu histogram exemplar(s)\n",
                 metrics_path.c_str(), exemplars);
  }

  if (!flight_path.empty()) {
    auto dump = obs::ReadFlightDump(flight_path);
    if (!dump.ok()) return FailWith(dump.status());
    size_t records = 0;
    std::map<std::string, std::pair<int64_t, int64_t>> per_name;
    for (const obs::FlightDumpThread& t : dump->threads) {
      records += t.records.size();
      for (const obs::FlightRecord& r : t.records) {
        auto& acc = per_name[dump->Name(r.name_id)];
        acc.first += 1;
        acc.second += r.duration_ns;
      }
    }
    std::printf("flight %s: %zu thread(s), %zu retained record(s), "
                "dropped=%llu\n",
                flight_path.c_str(), dump->threads.size(), records,
                (unsigned long long)dump->dropped_records);
    if (dump->crash_signal != 0 || !dump->crash_reason.empty() ||
        dump->has_footer) {
      std::printf("  crash: signal=%d reason=%s%s\n",
                  dump->crash_signal != 0 ? dump->crash_signal
                                          : dump->footer_signal,
                  !dump->crash_reason.empty() ? dump->crash_reason.c_str()
                                              : dump->footer_reason.c_str(),
                  dump->has_footer ? " (footer present)" : "");
    } else {
      std::printf("  crash: none marked (clean exit or SIGKILL)\n");
    }
    std::printf("  %-28s %6s %12s\n", "span", "count", "total_ms");
    std::vector<std::pair<std::string, std::pair<int64_t, int64_t>>> ranked(
        per_name.begin(), per_name.end());
    std::sort(ranked.begin(), ranked.end(), [](const auto& a,
                                               const auto& b) {
      return a.second.second > b.second.second;
    });
    for (size_t i = 0; i < ranked.size() && i < (size_t)top; ++i) {
      std::printf("  %-28s %6lld %12.3f\n", ranked[i].first.c_str(),
                  (long long)ranked[i].second.first,
                  ranked[i].second.second / 1e6);
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// bench-report: emit the BENCH_peeling.json / BENCH_ensemble.json perf
// baselines (bench/README.md documents the schema; CI validates and
// uploads them). The measurements live in bench/perf_harness.cc so the
// standalone bench binaries report identical numbers.
// ---------------------------------------------------------------------------
int CmdBenchReport(Flags& flags) {
  bench::PerfGraphSpec graph_spec;
  graph_spec.scale = flags.GetDouble("scale", 0.02);
  graph_spec.seed = flags.GetUint64("seed", 7);
  const int repeats = flags.GetInt("repeats", 5);
  const std::string out_dir = flags.GetString("out-dir", ".");

  bench::PeelingBenchOptions peeling;
  peeling.graph = graph_spec;
  peeling.repeats = repeats;

  bench::EnsembleBenchOptions ensemble;
  ensemble.graph = graph_spec;
  ensemble.repeats = std::max(1, repeats / 2);
  ensemble.num_samples = flags.GetInt("n", 16);
  ensemble.ratio = flags.GetDouble("s", 0.1);
  ensemble.threads = flags.GetInt("threads", 0);
  const std::string metrics_out = flags.GetString("metrics-out", "");
  const std::string trace_out =
      flags.GetString("trace-out", "ensemfdet_trace.json");
  flags.DieOnUnknown();

  // Create the destination up front: an unwritable --out-dir must fail
  // before the (slow) measurements run, not after.
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "error: cannot create --out-dir=%s: %s\n",
                 out_dir.c_str(), ec.message().c_str());
    return 1;
  }

  bench::StreamBenchOptions stream;
  stream.seed = graph_spec.seed;
  stream.repeats = std::max(1, repeats / 2);

  bench::StorageBenchOptions storage_options;
  storage_options.graph = graph_spec;
  storage_options.repeats = repeats;

  bench::ObsBenchOptions obs_options;
  obs_options.graph = graph_spec;
  obs_options.repeats = std::max(repeats, 12);
  obs_options.num_samples = ensemble.num_samples;
  obs_options.ratio = ensemble.ratio;

  bench::WalBenchOptions wal_options;
  wal_options.seed = graph_spec.seed;
  wal_options.repeats = std::max(1, repeats / 2);

  bench::EnsembleBenchSummary ensemble_summary;
  bench::StreamBenchSummary stream_summary;
  bench::StorageBenchSummary storage_summary;
  bench::ObsBenchSummary obs_summary;
  bench::WalBenchSummary wal_summary;
  struct Report {
    const char* file;
    Result<std::string> json;
  } reports[] = {
      {"BENCH_peeling.json", bench::RunPeelingBench(peeling)},
      {"BENCH_ensemble.json",
       bench::RunEnsembleBench(ensemble, &ensemble_summary)},
      {"BENCH_stream.json", bench::RunStreamBench(stream, &stream_summary)},
      {"BENCH_storage.json",
       bench::RunStorageBench(storage_options, &storage_summary)},
      {"BENCH_obs.json", bench::RunObsBench(obs_options, &obs_summary)},
      {"BENCH_wal.json", bench::RunWalBench(wal_options, &wal_summary)},
  };
  for (Report& report : reports) {
    if (!report.json.ok()) {
      std::fprintf(stderr, "error: %s failed\n", report.file);
      return FailWith(report.json.status());
    }
    const std::string path = out_dir + "/" + report.file;
    Status st = bench::WriteTextFile(path, *report.json);
    if (!st.ok()) return FailWith(st);
    std::fprintf(stderr, "[bench-report] wrote %s\n", path.c_str());
  }
  std::fprintf(stderr,
               "[bench-report] ensemble zero-materialization vs "
               "materializing: %.2fx (%.0f members/s, vote parity verified)\n",
               ensemble_summary.zero_materialization_speedup,
               ensemble_summary.members_per_second);
  std::fprintf(stderr,
               "[bench-report] ensemble arena reuse: %lld allocations "
               "across a warm run (%.3g per member; 0 == perfect reuse)\n",
               static_cast<long long>(ensemble_summary.arena_grow_events),
               ensemble_summary.arena_grow_per_member);
  std::fprintf(stderr,
               "[bench-report] stream incremental vs full-rebuild: %.2fx "
               "(%.0f vs %.0f events/s, %.0f%% component reuse, vote "
               "parity verified at %lld boundaries)\n",
               stream_summary.incremental_speedup,
               stream_summary.events_per_second_incremental,
               stream_summary.events_per_second_full_rebuild,
               100.0 * stream_summary.component_reuse_fraction,
               static_cast<long long>(stream_summary.detections));
  std::fprintf(stderr,
               "[bench-report] storage mmap load vs TSV parse: %.1fx "
               "verified (%.1fx streaming read; %.0f KiB efg vs %.0f KiB "
               "tsv, fingerprints verified)\n",
               storage_summary.mmap_verified_speedup_vs_tsv,
               storage_summary.binary_read_speedup_vs_tsv,
               storage_summary.efg_bytes / 1024.0,
               storage_summary.tsv_bytes / 1024.0);
  std::fprintf(stderr,
               "[bench-report] observability overhead: %.3g%% metrics-on vs "
               "metrics-off (budget 2%%; counter %.3g ns/inc, histogram "
               "%.3g ns/rec, span+flight %.3g ns/span, report parity "
               "verified)\n",
               100.0 * obs_summary.overhead_fraction,
               obs_summary.counter_ns_per_increment,
               obs_summary.histogram_ns_per_record,
               obs_summary.span_ns_per_record);
  std::fprintf(stderr,
               "[bench-report] wal acked events/s: %.0f none, %.0f batch, "
               "%.0f always (replay parity verified)\n",
               wal_summary.acked_events_per_second_none,
               wal_summary.acked_events_per_second_batch,
               wal_summary.acked_events_per_second_always);
  return FinishObservability(metrics_out, trace_out);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  Flags flags(argc - 2, argv + 2);
  if (command == "generate") return CmdGenerate(flags);
  if (command == "detect") return CmdDetect(flags);
  if (command == "evaluate") return CmdEvaluate(flags);
  if (command == "save-graph") return CmdSaveGraph(flags);
  if (command == "stream-replay") return CmdStreamReplay(flags);
  if (command == "bench-smoke") return CmdBenchSmoke(flags);
  if (command == "bench-report") return CmdBenchReport(flags);
  if (command == "metrics-dump") return CmdMetricsDump(flags);
  if (command == "trace-report") return CmdTraceReport(flags);
  if (command == "isa-report") return CmdIsaReport(flags);
  if (command == "help" || command == "--help") return Usage();
  std::fprintf(stderr, "error: unknown command '%s'\n", command.c_str());
  return Usage();
}
