#!/usr/bin/env python3
"""Validate BENCH_*.json perf-baseline documents and gate regressions.

Extracted from the inline CI step so the validator is testable (a ctest
smoke test runs it against the committed baselines on every build) and
reusable locally:

    tools/check_bench.py --bench-dir bench-out --baseline-dir .
    tools/check_bench.py --bench-dir . --baseline-dir .   # self-check

Checks, per document (schema: bench/README.md):
  * well-formed JSON with the common envelope (schema_version, bench,
    graph, config, timings; every timing positive),
  * the expected schema_version per bench,
  * every parity flag true — the benches refuse to emit on divergence, so
    a false here means the file was forged or the producer changed,
  * regression gates against the committed baselines (skippable with
    --skip-regression):
      - ensemble: members_per_second normalized by the same run's
        materializing-reference throughput must stay within
        --ensemble-tolerance of the baseline's normalized ratio (the
        in-file reference cancels out runner speed); both documents must
        name a real SIMD dispatch level (a missing or 'unknown'
        dispatch.detected/active means the producer lost runtime
        dispatch); and on runners with >= 4 hardware threads the
        scaling row at the full hardware-thread width must deliver
        >= --scaling-floor x the 1-thread row's members_per_second
        (self-normalized: both rows are timed in the same process, so
        the gate is runner-independent and skips itself on narrow
        machines where the wide arm IS the 1-thread arm),
      - stream: incremental speedup >= --stream-floor (hard) and within
        --stream-tolerance of the baseline (self-normalized by
        construction: both replays are timed in the same process),
      - storage: mmap verified load must beat TSV parse (>= 1.0x; the
        headline the snapshot format exists for) — self-normalized, no
        baseline comparison needed,
      - obs: the metrics-on vs metrics-off overhead must stay within the
        in-file budget (2%) — self-normalized (both arms timed
        interleaved in one process), no baseline comparison needed,
      - wal: the untimed replay gate must have compared every record and
        all three fsync-policy throughputs must be positive — fsync
        timing is machine-noisy, so no cross-run regression gate.

Exit codes: 0 all checks passed; 1 a validation or regression check
failed; 2 usage errors (missing file, unreadable JSON document).
"""

import argparse
import json
import sys

EXPECTED_SCHEMA = {
    "BENCH_peeling.json": 1,
    "BENCH_ensemble.json": 3,
    "BENCH_stream.json": 1,
    "BENCH_storage.json": 1,
    "BENCH_obs.json": 1,
    "BENCH_wal.json": 1,
}
COMMON_KEYS = ("schema_version", "bench", "graph", "config", "timings")


class CheckFailure(Exception):
    pass


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        print(f"check_bench: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    except json.JSONDecodeError as e:
        raise CheckFailure(f"{path}: malformed JSON: {e}")


def check(cond, message):
    if not cond:
        raise CheckFailure(message)


def validate_envelope(name, doc, schema):
    for key in COMMON_KEYS:
        check(key in doc, f"{name}: missing key '{key}'")
    check(doc["schema_version"] == schema,
          f"{name}: schema_version {doc['schema_version']}, want {schema}")
    check(doc["timings"], f"{name}: empty timings")
    for t in doc["timings"]:
        check(t.get("seconds_min", 0) > 0,
              f"{name}: non-positive timing '{t.get('name')}'")
    parity = doc.get("parity", {})
    check(parity, f"{name}: missing parity block")
    for key, value in parity.items():
        if isinstance(value, bool):
            check(value, f"{name}: parity check '{key}' is false")


def check_ensemble_dispatch(name, doc):
    # A schema-3 document must name the ISA level it actually ran at:
    # a missing or 'unknown' level means the producer lost runtime
    # dispatch (or the file predates it), and every per-ISA comparison
    # downstream would silently be scalar-vs-scalar.
    dispatch = doc.get("dispatch", {})
    for key in ("detected", "active"):
        level = dispatch.get(key)
        check(level not in (None, "", "unknown"),
              f"{name}: dispatch.{key} missing or 'unknown' — the producer "
              f"does not know what ISA level it ran at")


def check_ensemble_scaling(fresh, floor):
    # Self-normalized multi-core gate: on a runner with >= 4 hardware
    # threads the full-width scaling row must deliver >= floor x the
    # 1-thread row's members_per_second. Both rows come from the same
    # process on the same graph, so runner speed cancels out; on narrow
    # machines (hardware_threads < 4) the wide arm measures nothing but
    # oversubscription, so the gate skips itself.
    hw = fresh["config"]["hardware_threads"]
    if hw < 4:
        return f"scaling gate skipped ({hw} hw threads)"
    rows = {row["threads"]: row["members_per_second"]
            for row in fresh["scaling"]}
    check(1 in rows, "ensemble: scaling has no 1-thread row")
    check(hw in rows,
          f"ensemble: scaling has no row at hardware width {hw}")
    ratio = rows[hw] / rows[1]
    check(ratio >= floor,
          f"ensemble stopped scaling: {ratio:.2f}x members/s at {hw} "
          f"threads vs 1 thread (floor {floor}x) — the work-stealing "
          f"scheduler is not spreading members/components")
    return f"{ratio:.2f}x scaling at {hw} threads"


def check_ensemble(fresh, baseline, tolerance, scaling_floor):
    check(baseline["graph"]["scale"] == fresh["graph"]["scale"],
          "ensemble: baseline/CI scale mismatch - comparison meaningless")
    check_ensemble_dispatch("fresh BENCH_ensemble.json", fresh)
    check_ensemble_dispatch("baseline BENCH_ensemble.json", baseline)
    scaling_note = check_ensemble_scaling(fresh, scaling_floor)
    # Normalize by the materializing-reference throughput measured in the
    # same run: the reference is the in-file speed ruler, so the
    # comparison cancels out how fast this machine happens to be and only
    # a real hot-path regression (lost arena reuse, an accidental
    # re-materialization) can trip it.
    fresh_ratio = (fresh["throughput"]["members_per_second"] /
                   fresh["throughput"]["members_per_second_reference"])
    committed_ratio = (
        baseline["throughput"]["members_per_second"] /
        baseline["throughput"]["members_per_second_reference"])
    check(fresh_ratio >= tolerance * committed_ratio,
          f"ensemble hot path regressed: {fresh_ratio:.2f}x its reference "
          f"vs committed {committed_ratio:.2f}x "
          f"(>{100 * (1 - tolerance):.0f}% drop)")
    return (f"ensemble {fresh['throughput']['members_per_second']:.0f} "
            f"members/s = {fresh_ratio:.2f}x ref "
            f"(baseline {committed_ratio:.2f}x) "
            f"[{fresh['dispatch']['active']}] {scaling_note}")


def check_stream(fresh, baseline, floor, tolerance):
    check(fresh["parity"]["boundaries_compared"] > 0,
          "stream: no boundaries were parity-compared")
    speedup = fresh["speedup"]["incremental_vs_full_rebuild"]
    committed = baseline["speedup"]["incremental_vs_full_rebuild"]
    check(speedup >= floor,
          f"incremental ingest lost its edge: {speedup:.2f}x vs full "
          f"rebuild (hard floor {floor}x)")
    check(speedup >= tolerance * committed,
          f"incremental ingest regressed: {speedup:.2f}x vs committed "
          f"{committed:.2f}x (>{100 * (1 - tolerance):.0f}% drop)")
    reuse = fresh["stream"]["component_reuse_fraction"]
    return f"stream {speedup:.2f}x incremental ({reuse:.0%} reuse)"


def check_storage(fresh):
    # Self-normalized: TSV parse and mmap load are timed in the same
    # process over the same graph, so the ratio is runner-independent.
    speedup = fresh["speedup"]["mmap_verified_vs_tsv_parse"]
    check(speedup >= 1.0,
          f"storage: mmap verified load ({speedup:.2f}x) no longer beats "
          f"TSV parse — the snapshot format lost its reason to exist")
    check(fresh["file"]["efg_bytes"] > 0, "storage: empty snapshot file")
    return f"storage {speedup:.1f}x mmap-verified vs tsv"


def check_obs(fresh):
    # Self-normalized: the on and off arms are interleaved in one process
    # on the same graph, so the fraction is runner-independent. The budget
    # travels in the file (the producer wrote it), so a budget change is a
    # reviewed diff, not a CI-flag edit.
    overhead = fresh["overhead"]
    budget = overhead["budget_fraction"]
    check(budget <= 0.02,
          f"obs: budget_fraction {budget} exceeds the agreed 2% — the "
          f"producer loosened the gate")
    check(overhead["within_budget"],
          "obs: producer reported within_budget=false")
    check(overhead["fraction"] <= budget,
          f"obs: metrics overhead {overhead['fraction']:.2%} blew the "
          f"{budget:.0%} budget — instrumentation is no longer ~free")
    check(fresh["config"]["metrics_compiled_in"],
          "obs: bench was built with ENSEMFDET_METRICS=OFF — the overhead "
          "number is vacuous")
    return (f"obs {overhead['fraction']:+.2%} overhead "
            f"(counter {overhead['counter_ns_per_increment']:.0f} ns, "
            f"histogram {overhead['histogram_ns_per_record']:.0f} ns)")


def check_wal(fresh):
    # The producer refuses to emit unless replay reproduced the appended
    # stream, so the gates here are structural: every record was actually
    # compared, and all three policies produced a real measurement. No
    # baseline comparison — fsync latency varies wildly across runners.
    check(fresh["parity"]["records_compared"] > 0,
          "wal: no records were replay-compared")
    check(fresh["parity"]["records_compared"] ==
          fresh["wal"]["records"],
          "wal: replay compared fewer records than were appended")
    throughput = fresh["throughput"]
    for key in ("acked_events_per_second_none",
                "acked_events_per_second_batch",
                "acked_events_per_second_always"):
        check(throughput.get(key, 0) > 0, f"wal: non-positive {key}")
    check(fresh["wal"]["segments_created"] >= 1,
          "wal: no segments were created")
    return (f"wal {throughput['acked_events_per_second_batch']:.0f} "
            f"acked events/s batch "
            f"({throughput['acked_events_per_second_always']:.0f} always)")


def main():
    parser = argparse.ArgumentParser(
        description="Validate BENCH_*.json documents and gate regressions")
    parser.add_argument("--bench-dir", default="bench-out",
                        help="directory holding the freshly produced "
                             "BENCH_*.json files")
    parser.add_argument("--baseline-dir", default=".",
                        help="directory holding the committed baselines")
    parser.add_argument("--skip-regression", action="store_true",
                        help="validate schemas/parity only")
    parser.add_argument("--ensemble-tolerance", type=float, default=0.8,
                        help="min fresh/committed normalized-throughput "
                             "ratio (default 0.8 = 20%% drop allowed)")
    parser.add_argument("--scaling-floor", type=float, default=1.6,
                        help="min members_per_second(hardware threads) / "
                             "members_per_second(1 thread) when the runner "
                             "has >= 4 hardware threads")
    parser.add_argument("--stream-floor", type=float, default=1.5,
                        help="hard minimum incremental speedup")
    parser.add_argument("--stream-tolerance", type=float, default=0.75,
                        help="min fresh/committed stream-speedup ratio")
    parser.add_argument("files", nargs="*",
                        default=sorted(EXPECTED_SCHEMA),
                        help="file names to check (default: all six)")
    args = parser.parse_args()

    summaries = []
    try:
        for name in args.files:
            if name not in EXPECTED_SCHEMA:
                print(f"check_bench: unknown bench file '{name}' "
                      f"(know: {', '.join(sorted(EXPECTED_SCHEMA))})",
                      file=sys.stderr)
                return 2
            fresh = load(f"{args.bench_dir}/{name}")
            validate_envelope(name, fresh, EXPECTED_SCHEMA[name])
            if args.skip_regression:
                continue
            if name == "BENCH_ensemble.json":
                baseline = load(f"{args.baseline_dir}/{name}")
                summaries.append(check_ensemble(fresh, baseline,
                                                args.ensemble_tolerance,
                                                args.scaling_floor))
            elif name == "BENCH_stream.json":
                baseline = load(f"{args.baseline_dir}/{name}")
                summaries.append(check_stream(fresh, baseline,
                                              args.stream_floor,
                                              args.stream_tolerance))
            elif name == "BENCH_storage.json":
                summaries.append(check_storage(fresh))
            elif name == "BENCH_obs.json":
                summaries.append(check_obs(fresh))
            elif name == "BENCH_wal.json":
                summaries.append(check_wal(fresh))
    except CheckFailure as failure:
        print(f"check_bench: FAIL: {failure}", file=sys.stderr)
        return 1
    print("check_bench: OK", "; ".join(summaries))
    return 0


if __name__ == "__main__":
    sys.exit(main())
