#!/usr/bin/env python3
"""Validate causal traces and flight-recorder dumps from ensemfdet.

Usage:
    tools/check_trace.py TRACE.json [--expect-root NAME=COUNT]...
                         [--max-skew-us US] [--report]
    tools/check_trace.py --flight DUMP.bin [--min-records N]
                         [--expect-crash-signal SIG] [--report]

JSON mode consumes a Chrome trace_event file written by the engine's
--trace-out and checks the *causal* layer on top of the timeline:

  * every complete ('X') event carries trace_id / span_id /
    parent_span_id args (32- and 16-hex-digit strings),
  * span ids are unique across the file (ids are process-global),
  * no orphans: every nonzero parent_span_id resolves to a span in the
    SAME trace_id — a broken cross-thread hop shows up here as a member
    span whose parent vanished,
  * every trace is a tree with exactly one root (parent_span_id == 0),
  * children start no earlier than their parent minus a small clock-skew
    slack (steady_clock is shared, so real violations mean id reuse),
  * flow events come in s/f pairs with matching ids,
  * --expect-root NAME=COUNT pins the number of root spans with that
    name (CI: detect --repeat=N must yield exactly N service_job roots).

--report additionally prints per-trace latency attribution: per-stage
self-time rollups (span duration minus same-trace children) and the
critical path from root to the deepest-finishing leaf.

Flight mode parses the binary black box (format: DESIGN.md "Causal
tracing & flight recorder"; layout constants mirrored from
src/obs/flight_recorder.cc) and checks header geometry, per-thread ring
consistency (retained records' seq form a contiguous tail of next_seq),
and optionally that a crash marker/footer is present with the expected
signal.

Exit codes: 0 all checks passed; 1 a check failed; 2 usage/IO errors.
"""

import argparse
import json
import struct
import sys

# ---------------------------------------------------------------------------
# shared

class CheckFailure(Exception):
    pass


def check(cond, message):
    if not cond:
        raise CheckFailure(message)


# ---------------------------------------------------------------------------
# JSON (Chrome trace_event) mode

HEX16 = frozenset("0123456789abcdef")


def parse_hex_id(path, event, key, digits):
    args = event.get("args", {})
    check(key in args, f"{path}: '{event.get('name')}' X event lacks "
                       f"args.{key}")
    value = args[key]
    check(isinstance(value, str) and len(value) == digits
          and set(value) <= HEX16,
          f"{path}: args.{key}={value!r} is not a {digits}-digit hex id")
    return int(value, 16)


class Span:
    __slots__ = ("name", "tid", "ts", "dur", "trace", "span", "parent")

    def __init__(self, name, tid, ts, dur, trace, span, parent):
        self.name = name
        self.tid = tid
        self.ts = ts          # microseconds
        self.dur = dur
        self.trace = trace    # int trace id (128-bit)
        self.span = span
        self.parent = parent


def load_trace(path):
    try:
        with open(path) as f:
            events = json.load(f)
    except OSError as e:
        print(f"check_trace: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    except json.JSONDecodeError as e:
        raise CheckFailure(f"{path}: malformed trace JSON: {e}")
    check(isinstance(events, list), f"{path}: top level is not an array")
    return events


def validate_json(path, events, expect_roots, max_skew_us, report):
    spans = []
    flows = {}  # id -> [s_count, f_count]
    for event in events:
        check(isinstance(event, dict) and "ph" in event and "name" in event,
              f"{path}: event without ph/name: {event!r}")
        ph = event["ph"]
        if ph == "X":
            trace = parse_hex_id(path, event, "trace_id", 32)
            span = parse_hex_id(path, event, "span_id", 16)
            parent = parse_hex_id(path, event, "parent_span_id", 16)
            check(span != 0,
                  f"{path}: '{event['name']}' has span_id 0 (never issued)")
            check(trace != 0,
                  f"{path}: '{event['name']}' has trace_id 0")
            spans.append(Span(event["name"], event.get("tid"),
                              float(event["ts"]), float(event["dur"]),
                              trace, span, parent))
        elif ph in ("s", "f"):
            flow_id = event.get("id")
            check(isinstance(flow_id, str) and flow_id,
                  f"{path}: flow event without id: {event!r}")
            pair = flows.setdefault(flow_id, [0, 0])
            pair[0 if ph == "s" else 1] += 1
        else:
            raise CheckFailure(f"{path}: unexpected phase {ph!r}")

    check(spans, f"{path}: no complete events")

    by_span = {}
    for s in spans:
        check(s.span not in by_span,
              f"{path}: span id {s.span:016x} used twice "
              f"('{by_span.get(s.span) and by_span[s.span].name}' and "
              f"'{s.name}')")
        by_span[s.span] = s

    # Causal tree checks, per trace id.
    traces = {}
    for s in spans:
        traces.setdefault(s.trace, []).append(s)
    roots = []
    for trace, members in traces.items():
        trace_roots = [s for s in members if s.parent == 0]
        check(len(trace_roots) == 1,
              f"{path}: trace {trace:032x} has {len(trace_roots)} roots "
              f"({[s.name for s in trace_roots]}); want exactly 1")
        roots.append(trace_roots[0])
        for s in members:
            if s.parent == 0:
                continue
            parent = by_span.get(s.parent)
            check(parent is not None,
                  f"{path}: '{s.name}' (span {s.span:016x}) is an orphan: "
                  f"parent {s.parent:016x} appears nowhere")
            check(parent.trace == s.trace,
                  f"{path}: '{s.name}' parents across traces "
                  f"({s.trace:032x} -> {parent.trace:032x})")
            check(s.ts >= parent.ts - max_skew_us,
                  f"{path}: '{s.name}' starts {parent.ts - s.ts:.1f}us "
                  f"before its parent '{parent.name}' (skew budget "
                  f"{max_skew_us}us) — likely span-id reuse")

    for flow_id, (starts, finishes) in sorted(flows.items()):
        check(starts == 1 and finishes == 1,
              f"{path}: flow {flow_id} has {starts} 's' and {finishes} 'f' "
              f"events; want exactly one of each")

    root_counts = {}
    for r in roots:
        root_counts[r.name] = root_counts.get(r.name, 0) + 1
    for name, want in expect_roots.items():
        got = root_counts.get(name, 0)
        check(got == want,
              f"{path}: {got} root spans named '{name}', expected {want} "
              f"(roots seen: {root_counts})")

    print(f"check_trace: OK {path}: {len(spans)} spans, "
          f"{len(traces)} trace(s), {len(flows)} flow pair(s), "
          f"roots: {root_counts}")
    if report:
        print_report(traces, by_span)


def print_report(traces, by_span):
    """Per-trace latency attribution: self-time rollups + critical path."""
    for trace, members in sorted(traces.items()):
        root = next(s for s in members if s.parent == 0)
        children = {}
        for s in members:
            if s.parent:
                children.setdefault(s.parent, []).append(s)
        # Self time = own duration minus time covered by direct children
        # (children of one parent may overlap each other when they ran in
        # parallel on the pool, so merge their intervals first).
        self_by_name = {}
        for s in members:
            covered = 0.0
            intervals = sorted((c.ts, c.ts + c.dur)
                               for c in children.get(s.span, ()))
            end = None
            for lo, hi in intervals:
                lo = max(lo, s.ts)
                hi = min(hi, s.ts + s.dur)
                if hi <= lo:
                    continue
                if end is None or lo > end:
                    covered += hi - lo
                    end = hi
                elif hi > end:
                    covered += hi - end
                    end = hi
            self_time = max(0.0, s.dur - covered)
            acc = self_by_name.setdefault(s.name, [0.0, 0])
            acc[0] += self_time
            acc[1] += 1
        print(f"\ntrace {trace:032x}  root={root.name}  "
              f"total={root.dur / 1e3:.3f}ms")
        print(f"  {'stage':<28} {'count':>5} {'self_ms':>10} {'%root':>6}")
        for name, (self_us, count) in sorted(self_by_name.items(),
                                             key=lambda kv: -kv[1][0]):
            pct = 100.0 * self_us / root.dur if root.dur else 0.0
            print(f"  {name:<28} {count:>5} {self_us / 1e3:>10.3f} "
                  f"{pct:>5.1f}%")
        # Critical path: from the root, repeatedly descend into the child
        # that finishes last — the chain that bounded this trace's latency.
        path = [root]
        while True:
            kids = children.get(path[-1].span)
            if not kids:
                break
            path.append(max(kids, key=lambda c: c.ts + c.dur))
        print("  critical path: " +
              " -> ".join(f"{s.name}({s.dur / 1e3:.3f}ms)" for s in path))


# ---------------------------------------------------------------------------
# flight-recorder (binary black box) mode
#
# Layout mirrored from src/obs/flight_recorder.cc; all little-endian.

FILE_MAGIC = b"EFDTFREC"
FOOTER_MAGIC = b"EFDTCRSH"
HEADER_BYTES = 4096
NAME_BYTES = 64
SLOT_HEADER_BYTES = 64
RECORD_BYTES = 64
REASON_CLAIMED = 0xFFFFFFFF

HEADER_FMT = "<8s6IQiI192s"   # magic..crash_reason
SLOT_FMT = "<QII"             # next_seq, tid, active
RECORD_FMT = "<4Q2qIIQ"       # FlightRecord
FOOTER_FMT = "<8siI180s"      # CrashFooter


def load_flight(path):
    try:
        with open(path, "rb") as f:
            blob = f.read()
    except OSError as e:
        print(f"check_trace: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    return blob


def validate_flight(path, blob, min_records, expect_signal, report):
    check(len(blob) >= HEADER_BYTES, f"{path}: shorter than the header")
    (magic, version, record_bytes, ring_records, max_threads, max_names,
     name_bytes, dropped, crash_signal, reason_len, reason_raw) = \
        struct.unpack_from(HEADER_FMT, blob, 0)
    check(magic == FILE_MAGIC, f"{path}: bad magic {magic!r}")
    check(version == 1, f"{path}: unsupported version {version}")
    check(record_bytes == RECORD_BYTES and name_bytes == NAME_BYTES,
          f"{path}: geometry mismatch (record={record_bytes}, "
          f"name={name_bytes})")
    check(0 < ring_records <= 1 << 20, f"{path}: ring_records {ring_records}")
    check(0 < max_threads <= 4096, f"{path}: max_threads {max_threads}")
    check(0 < max_names <= 65536, f"{path}: max_names {max_names}")

    mapped = (HEADER_BYTES + max_names * NAME_BYTES +
              max_threads * (SLOT_HEADER_BYTES + ring_records * RECORD_BYTES))
    check(len(blob) >= mapped,
          f"{path}: file truncated: {len(blob)} < mapped size {mapped}")

    crash_reason = ""
    if reason_len not in (0, REASON_CLAIMED):
        check(reason_len <= len(reason_raw),
              f"{path}: crash_reason_len {reason_len} exceeds field")
        crash_reason = reason_raw[:reason_len].decode("utf-8", "replace")

    names = {}
    for i in range(max_names):
        off = HEADER_BYTES + i * NAME_BYTES
        raw = blob[off:off + NAME_BYTES].split(b"\0", 1)[0]
        if raw:
            names[i] = raw.decode("utf-8", "replace")

    slots_base = HEADER_BYTES + max_names * NAME_BYTES
    stride = SLOT_HEADER_BYTES + ring_records * RECORD_BYTES
    total_records = 0
    active_threads = 0
    for slot in range(max_threads):
        base = slots_base + slot * stride
        next_seq, tid, active = struct.unpack_from(SLOT_FMT, blob, base)
        if not active:
            continue
        active_threads += 1
        retained = 0
        lo = next_seq - min(next_seq, ring_records)
        for seq in range(lo, next_seq):
            off = base + SLOT_HEADER_BYTES + (seq % ring_records) * RECORD_BYTES
            rec = struct.unpack_from(RECORD_FMT, blob, off)
            (trace_hi, trace_lo, span_id, parent, start_ns, dur_ns,
             name_id, _flags, rec_seq) = rec
            if rec_seq != seq:
                continue  # torn by crash mid-write; tolerated by design
            retained += 1
            check(span_id != 0,
                  f"{path}: slot {slot} seq {seq}: span_id 0")
            # name_id beyond the table is legal (the engine writes global
            # intern ids; only the first max_names get mirrored bytes),
            # so no range check — Name() just resolves to unknown.
            check(dur_ns >= 0,
                  f"{path}: slot {slot} seq {seq}: negative duration")
        total_records += retained
        # A crash can tear at most the records in flight, one per thread.
        window = next_seq - lo
        check(retained >= max(0, window - 1),
              f"{path}: slot {slot} (tid {tid}): only {retained} of "
              f"{window} retained records parse — ring corrupt")

    check(total_records >= min_records,
          f"{path}: {total_records} retained records < required "
          f"{min_records}")

    has_footer = False
    footer_signal = 0
    footer_reason = ""
    if len(blob) >= mapped + struct.calcsize(FOOTER_FMT):
        fmagic, fsignal, freason_len, freason_raw = struct.unpack_from(
            FOOTER_FMT, blob, mapped)
        if fmagic == FOOTER_MAGIC:
            has_footer = True
            footer_signal = fsignal
            if freason_len <= len(freason_raw):
                footer_reason = freason_raw[:freason_len].decode(
                    "utf-8", "replace")

    if expect_signal is not None:
        check(crash_signal == expect_signal or footer_signal == expect_signal,
              f"{path}: expected crash signal {expect_signal}, header says "
              f"{crash_signal}, footer says "
              f"{footer_signal if has_footer else '(none)'}")

    print(f"check_trace: OK {path} (flight): {active_threads} thread(s), "
          f"{total_records} retained records, {len(names)} names, "
          f"dropped={dropped}, crash_signal={crash_signal}, "
          f"reason={crash_reason!r}, "
          f"footer={'%d %r' % (footer_signal, footer_reason) if has_footer else 'absent'}")
    if report:
        counts = {}
        for slot in range(max_threads):
            base = slots_base + slot * stride
            next_seq, _tid, active = struct.unpack_from(SLOT_FMT, blob, base)
            if not active:
                continue
            lo = next_seq - min(next_seq, ring_records)
            for seq in range(lo, next_seq):
                off = (base + SLOT_HEADER_BYTES +
                       (seq % ring_records) * RECORD_BYTES)
                rec = struct.unpack_from(RECORD_FMT, blob, off)
                if rec[8] != seq:
                    continue
                name = names.get(rec[6], f"#{rec[6]}")
                acc = counts.setdefault(name, [0, 0])
                acc[0] += 1
                acc[1] += rec[5]
        print(f"  {'span':<28} {'count':>6} {'total_ms':>10}")
        for name, (n, ns) in sorted(counts.items(), key=lambda kv: -kv[1][1]):
            print(f"  {name:<28} {n:>6} {ns / 1e6:>10.3f}")


# ---------------------------------------------------------------------------

def main():
    parser = argparse.ArgumentParser(
        description="Validate ensemfdet trace JSON or flight-recorder dumps")
    parser.add_argument("path", help="trace JSON, or dump file with --flight")
    parser.add_argument("--flight", action="store_true",
                        help="parse a binary flight-recorder dump")
    parser.add_argument("--expect-root", action="append", default=[],
                        metavar="NAME=COUNT",
                        help="require exactly COUNT root spans named NAME")
    parser.add_argument("--max-skew-us", type=float, default=100.0,
                        help="child-before-parent slack in microseconds")
    parser.add_argument("--min-records", type=int, default=1,
                        help="flight mode: minimum retained records")
    parser.add_argument("--expect-crash-signal", type=int, default=None,
                        help="flight mode: require this crash signal marker")
    parser.add_argument("--report", action="store_true",
                        help="print latency attribution / span rollups")
    args = parser.parse_args()

    expect_roots = {}
    for spec in args.expect_root:
        name, eq, count = spec.partition("=")
        if not eq or not count.isdigit():
            parser.error(f"--expect-root wants NAME=COUNT, got {spec!r}")
        expect_roots[name] = int(count)

    try:
        if args.flight:
            validate_flight(args.path, load_flight(args.path),
                            args.min_records, args.expect_crash_signal,
                            args.report)
        else:
            validate_json(args.path, load_trace(args.path), expect_roots,
                          args.max_skew_us, args.report)
    except CheckFailure as failure:
        print(f"check_trace: FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
