#!/usr/bin/env python3
"""Validate metrics scrapes produced by `ensemfdet_cli` (--metrics-out,
metrics-dump).

Usage:
    tools/check_metrics.py SCRAPE              # single-scrape validation
    tools/check_metrics.py SCRAPE_A SCRAPE_B   # + coverage & monotonicity

Scrapes may be either export format; the parser is picked by extension
(.json = the JSON exporter, anything else = Prometheus text).

Single-scrape checks:
  * parseable, non-empty, unique metric names,
  * naming convention (DESIGN.md "Observability"): every series is
    ensemfdet_<layer>_..., counters end in _total, histograms in
    _seconds, gauges in neither suffix, and <layer> is one of the known
    engine layers,
  * every series carries non-empty help text: `# HELP` preceding
    `# TYPE` in the Prometheus exposition, a "help" key in JSON — a
    scrape is only self-describing if a human reading it cold can tell
    what each series measures,
  * Prometheus HELP text is exposition-escaped (no raw newline can
    survive serialization, so we check the escape sequences re-decode),
  * histogram internal consistency: cumulative buckets non-decreasing
    with the final (+Inf) bucket equal to the observation count.

Two-scrape checks (A scraped before B in the same process — the
metrics-dump subcommand emits exactly this pair around its streaming
phase):
  * every series of A is still present in B with the same type,
  * counters and histogram counts/sums are monotone non-decreasing A->B
    (a decrease means a counter was reset or two registries were mixed),
  * B covers the required per-layer series — the scrapes prove every
    engine layer (pool, detect, cache, ingest, service, storage, stream,
    wal) actually recorded, not just that the binary links the obs library.

Exit codes: 0 all checks passed; 1 a check failed; 2 usage errors.
"""

import json
import re
import sys

NAME_RE = re.compile(r"^ensemfdet_[a-z0-9]+(_[a-z0-9]+)+$")
KNOWN_LAYERS = {
    "cache", "detect", "ingest", "pool", "service", "storage", "stream",
    "wal",
    # bench_obs times its tight loops against scratch instruments; they
    # never reach the global registry but keep the convention anyway.
    "benchobs",
}

# The cross-layer coverage contract: series that must exist (with these
# types) in a scrape taken after metrics-dump's full workload. Histogram
# bucket layouts and the remaining ~20 series are validated generically;
# this list pins one load-bearing series per instrument per layer so a
# layer silently losing its instrumentation fails CI.
REQUIRED = {
    "ensemfdet_cache_hits_total": "counter",
    "ensemfdet_cache_misses_total": "counter",
    "ensemfdet_cache_insertions_total": "counter",
    "ensemfdet_detect_runs_total": "counter",
    "ensemfdet_detect_members_total": "counter",
    "ensemfdet_detect_run_seconds": "histogram",
    "ensemfdet_detect_member_sample_seconds": "histogram",
    "ensemfdet_detect_member_peel_seconds": "histogram",
    "ensemfdet_detect_aggregate_seconds": "histogram",
    "ensemfdet_ingest_events_ingested_total": "counter",
    "ensemfdet_ingest_publishes_total": "counter",
    "ensemfdet_ingest_publish_seconds": "histogram",
    "ensemfdet_pool_tasks_total": "counter",
    "ensemfdet_pool_workers": "gauge",
    "ensemfdet_pool_queue_depth": "gauge",
    "ensemfdet_pool_task_run_seconds": "histogram",
    "ensemfdet_pool_task_wait_seconds": "histogram",
    "ensemfdet_service_jobs_submitted_total": "counter",
    "ensemfdet_service_jobs_done_total": "counter",
    "ensemfdet_service_stream_batches_total": "counter",
    "ensemfdet_service_stream_reports_total": "counter",
    "ensemfdet_service_open_streams": "gauge",
    "ensemfdet_service_job_run_seconds": "histogram",
    "ensemfdet_storage_writes_total": "counter",
    "ensemfdet_storage_loads_total": "counter",
    "ensemfdet_storage_verifies_total": "counter",
    "ensemfdet_storage_bytes_written_total": "counter",
    "ensemfdet_storage_load_seconds": "histogram",
    "ensemfdet_stream_reports_total": "counter",
    "ensemfdet_stream_components_total": "counter",
    "ensemfdet_stream_components_reused_total": "counter",
    "ensemfdet_stream_edges_total": "counter",
    "ensemfdet_stream_detect_seconds": "histogram",
    "ensemfdet_wal_appends_total": "counter",
    "ensemfdet_wal_fsyncs_total": "counter",
    "ensemfdet_wal_segments_created_total": "counter",
    "ensemfdet_wal_records_replayed_total": "counter",
    "ensemfdet_wal_append_seconds": "histogram",
    "ensemfdet_wal_replay_seconds": "histogram",
}


class CheckFailure(Exception):
    pass


def check(cond, message):
    if not cond:
        raise CheckFailure(message)


def parse_json(path, text):
    doc = json.loads(text)
    check("metrics" in doc, f"{path}: no 'metrics' array")
    out = {}
    for m in doc["metrics"]:
        entry = {"type": m["type"], "help": m.get("help")}
        if m["type"] == "histogram":
            entry["count"] = m["count"]
            entry["sum"] = m["sum"]
            entry["buckets"] = [b["count"] for b in m["buckets"]]
        else:
            entry["value"] = m["value"]
        out[m["name"]] = entry
    return out


def unescape_help(path, name, raw):
    """Decodes Prometheus exposition escaping (\\ and \\n); a lone
    backslash before anything else means the exporter's escaping is
    broken, so fail rather than guess."""
    decoded = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch == "\\":
            check(i + 1 < len(raw) and raw[i + 1] in ("\\", "n"),
                  f"{path}: HELP for '{name}' has invalid escape at "
                  f"column {i}: {raw!r}")
            decoded.append("\\" if raw[i + 1] == "\\" else "\n")
            i += 2
        else:
            decoded.append(ch)
            i += 1
    return "".join(decoded)


def parse_prometheus(path, text):
    out = {}
    pending_help = {}  # name -> help text seen before its TYPE line
    for line in text.splitlines():
        line = line.rstrip("\n")
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            rest = line[len("# HELP "):]
            name, _, help_text = rest.partition(" ")
            check(name not in pending_help and name not in out,
                  f"{path}: duplicate HELP for {name}")
            pending_help[name] = unescape_help(path, name, help_text)
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split()
            check(name in pending_help,
                  f"{path}: TYPE for '{name}' without a preceding HELP")
            out[name] = {"type": kind, "help": pending_help.pop(name)}
            if kind == "histogram":
                out[name]["buckets"] = []
            continue
        check(not line.startswith("#"), f"{path}: unexpected comment {line}")
        line = line.strip()
        series, value = line.rsplit(" ", 1)
        value = float(value)
        if series.endswith("}") and "_bucket{" in series:
            base = series.split("_bucket{", 1)[0]
            out[base]["buckets"].append(value)
        elif series.endswith("_sum") and series[:-4] in out:
            out[series[:-4]]["sum"] = value
        elif series.endswith("_count") and series[:-6] in out:
            out[series[:-6]]["count"] = value
        else:
            check(series in out, f"{path}: sample for undeclared {series}")
            out[series]["value"] = value
    check(not pending_help,
          f"{path}: HELP without TYPE for {sorted(pending_help)}")
    return out


def load(path):
    try:
        with open(path) as f:
            text = f.read()
    except OSError as e:
        print(f"check_metrics: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    try:
        if path.endswith(".json"):
            return parse_json(path, text)
        return parse_prometheus(path, text)
    except (json.JSONDecodeError, KeyError, ValueError) as e:
        raise CheckFailure(f"{path}: malformed scrape: {e!r}")


def validate_scrape(path, metrics):
    check(metrics, f"{path}: empty scrape")
    for name, m in metrics.items():
        check(NAME_RE.match(name),
              f"{path}: '{name}' violates ensemfdet_<layer>_<name>")
        layer = name.split("_")[1]
        check(layer in KNOWN_LAYERS,
              f"{path}: '{name}' names unknown layer '{layer}'")
        check(isinstance(m.get("help"), str) and m["help"].strip(),
              f"{path}: '{name}' has no help text")
        kind = m["type"]
        if kind == "counter":
            check(name.endswith("_total"),
                  f"{path}: counter '{name}' must end in _total")
            check(m["value"] >= 0, f"{path}: counter '{name}' negative")
        elif kind == "histogram":
            check(name.endswith("_seconds"),
                  f"{path}: histogram '{name}' must end in _seconds")
            buckets = m["buckets"]
            check(buckets == sorted(buckets),
                  f"{path}: '{name}' cumulative buckets decrease")
            # The JSON exporter trims an all-zero bucket list entirely.
            if buckets or m["count"]:
                check(buckets and buckets[-1] == m["count"],
                      f"{path}: '{name}' +Inf bucket "
                      f"{buckets[-1] if buckets else None} "
                      f"!= count {m['count']}")
        elif kind == "gauge":
            check(not name.endswith(("_total", "_seconds")),
                  f"{path}: gauge '{name}' wears a counter/histogram suffix")
        else:
            raise CheckFailure(f"{path}: '{name}' has unknown type '{kind}'")


def validate_pair(path_a, a, path_b, b):
    for name, ma in a.items():
        check(name in b, f"{name} present in {path_a} but gone in {path_b}")
        mb = b[name]
        check(ma["type"] == mb["type"],
              f"{name} changed type {ma['type']} -> {mb['type']}")
        if ma["type"] == "counter":
            check(mb["value"] >= ma["value"],
                  f"counter {name} went backwards: "
                  f"{ma['value']} -> {mb['value']}")
        elif ma["type"] == "histogram":
            check(mb["count"] >= ma["count"],
                  f"histogram {name} count went backwards: "
                  f"{ma['count']} -> {mb['count']}")
            check(mb["sum"] >= ma["sum"] - 1e-12,
                  f"histogram {name} sum went backwards: "
                  f"{ma['sum']} -> {mb['sum']}")
    for name, kind in sorted(REQUIRED.items()):
        check(name in b, f"{path_b}: required series '{name}' missing")
        check(b[name]["type"] == kind,
              f"{path_b}: '{name}' is a {b[name]['type']}, want {kind}")
    moved = sum(1 for n in a
                if a[n]["type"] == "counter" and b[n]["value"] > a[n]["value"])
    check(moved > 0,
          f"no counter moved between {path_a} and {path_b} — the workload "
          f"between the scrapes recorded nothing")


def main():
    paths = sys.argv[1:]
    if len(paths) not in (1, 2):
        print(__doc__, file=sys.stderr)
        return 2
    try:
        scrapes = [(p, load(p)) for p in paths]
        for path, metrics in scrapes:
            validate_scrape(path, metrics)
        if len(scrapes) == 2:
            (pa, a), (pb, b) = scrapes
            validate_pair(pa, a, pb, b)
            print(f"check_metrics: OK {pa} ({len(a)} series) -> "
                  f"{pb} ({len(b)} series), "
                  f"{len(REQUIRED)} required series covered")
        else:
            print(f"check_metrics: OK {paths[0]} "
                  f"({len(scrapes[0][1])} series)")
    except CheckFailure as failure:
        print(f"check_metrics: FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
