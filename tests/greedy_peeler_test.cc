#include "detect/greedy_peeler.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/graph_builder.h"

namespace ensemfdet {
namespace {

// A dense 8×4 fraud block embedded in 60×30 sparse background.
BipartiteGraph PlantedBlockGraph(uint64_t seed = 17) {
  GraphBuilder b(60, 30);
  for (UserId u = 0; u < 8; ++u) {
    for (MerchantId v = 0; v < 4; ++v) b.AddEdge(u, v);
  }
  Rng rng(seed);
  for (int i = 0; i < 60; ++i) {
    UserId u = static_cast<UserId>(8 + rng.NextBounded(52));
    MerchantId v = static_cast<MerchantId>(4 + rng.NextBounded(26));
    b.AddEdge(u, v);
  }
  return b.Build().ValueOrDie();
}

TEST(GreedyPeelerTest, EmptyGraphEmptyResult) {
  GraphBuilder b(0, 0);
  auto g = b.Build().ValueOrDie();
  PeelResult r = PeelDensestBlock(g, {});
  EXPECT_TRUE(r.users.empty());
  EXPECT_TRUE(r.merchants.empty());
  EXPECT_DOUBLE_EQ(r.score, 0.0);
}

TEST(GreedyPeelerTest, EdgelessGraphEmptyResult) {
  GraphBuilder b(5, 5);
  auto g = b.Build().ValueOrDie();
  PeelResult r = PeelDensestBlock(g, {});
  EXPECT_TRUE(r.users.empty());
  EXPECT_DOUBLE_EQ(r.score, 0.0);
}

TEST(GreedyPeelerTest, SingleEdgeGraph) {
  GraphBuilder b(1, 1);
  b.AddEdge(0, 0);
  auto g = b.Build().ValueOrDie();
  PeelResult r = PeelDensestBlock(g, {});
  EXPECT_EQ(r.users, std::vector<UserId>{0});
  EXPECT_EQ(r.merchants, std::vector<MerchantId>{0});
  EXPECT_NEAR(r.score, (1.0 / std::log(6.0)) / 2.0, 1e-12);
}

TEST(GreedyPeelerTest, CompleteBlockKeptWhole) {
  GraphBuilder b(6, 3);
  for (UserId u = 0; u < 6; ++u) {
    for (MerchantId v = 0; v < 3; ++v) b.AddEdge(u, v);
  }
  auto g = b.Build().ValueOrDie();
  PeelResult r = PeelDensestBlock(g, {});
  EXPECT_EQ(r.users.size(), 6u);
  EXPECT_EQ(r.merchants.size(), 3u);
  EXPECT_NEAR(r.score, DensityScore(g, {}), 1e-12);
}

TEST(GreedyPeelerTest, IsolatedNodesPeeledAway) {
  GraphBuilder b(8, 5);  // users 4..7 and merchants 2..4 isolated
  for (UserId u = 0; u < 4; ++u) {
    for (MerchantId v = 0; v < 2; ++v) b.AddEdge(u, v);
  }
  auto g = b.Build().ValueOrDie();
  PeelResult r = PeelDensestBlock(g, {});
  EXPECT_EQ(r.users, (std::vector<UserId>{0, 1, 2, 3}));
  EXPECT_EQ(r.merchants, (std::vector<MerchantId>{0, 1}));
}

TEST(GreedyPeelerTest, FindsPlantedBlock) {
  auto g = PlantedBlockGraph();
  PeelResult r = PeelDensestBlock(g, {});
  std::set<UserId> users(r.users.begin(), r.users.end());
  std::set<MerchantId> merchants(r.merchants.begin(), r.merchants.end());
  for (UserId u = 0; u < 8; ++u) {
    EXPECT_TRUE(users.count(u)) << "missing planted user " << u;
  }
  for (MerchantId v = 0; v < 4; ++v) {
    EXPECT_TRUE(merchants.count(v)) << "missing planted merchant " << v;
  }
}

TEST(GreedyPeelerTest, BlockScoreAtLeastWholeGraphScore) {
  auto g = PlantedBlockGraph();
  PeelResult r = PeelDensestBlock(g, {});
  EXPECT_GE(r.score, DensityScore(g, {}) - 1e-12);
}

TEST(GreedyPeelerTest, TraceStartsAtWholeGraphScore) {
  auto g = PlantedBlockGraph();
  PeelResult r = PeelDensestBlock(g, {}, /*keep_trace=*/true);
  ASSERT_FALSE(r.trace.empty());
  EXPECT_NEAR(r.trace[0], DensityScore(g, {}), 1e-12);
  EXPECT_EQ(static_cast<int64_t>(r.trace.size()), g.num_nodes());
}

TEST(GreedyPeelerTest, ScoreIsMaxOfTrace) {
  auto g = PlantedBlockGraph();
  PeelResult r = PeelDensestBlock(g, {}, /*keep_trace=*/true);
  double max_trace = 0.0;
  for (double phi : r.trace) max_trace = std::max(max_trace, phi);
  EXPECT_NEAR(r.score, max_trace, 1e-12);
}

TEST(GreedyPeelerTest, TraceNonNegative) {
  auto g = PlantedBlockGraph(23);
  PeelResult r = PeelDensestBlock(g, {}, /*keep_trace=*/true);
  for (double phi : r.trace) EXPECT_GE(phi, 0.0);
}

TEST(GreedyPeelerTest, RemovalOrderIsPermutationOfAllNodes) {
  auto g = PlantedBlockGraph();
  PeelResult r = PeelDensestBlock(g, {}, /*keep_trace=*/true);
  ASSERT_EQ(static_cast<int64_t>(r.removal_order.size()), g.num_nodes());
  std::set<int64_t> unique(r.removal_order.begin(), r.removal_order.end());
  EXPECT_EQ(static_cast<int64_t>(unique.size()), g.num_nodes());
  EXPECT_EQ(*unique.begin(), 0);
  EXPECT_EQ(*unique.rbegin(), g.num_nodes() - 1);
}

TEST(GreedyPeelerTest, Deterministic) {
  auto g = PlantedBlockGraph();
  PeelResult a = PeelDensestBlock(g, {});
  PeelResult b = PeelDensestBlock(g, {});
  EXPECT_EQ(a.users, b.users);
  EXPECT_EQ(a.merchants, b.merchants);
  EXPECT_DOUBLE_EQ(a.score, b.score);
}

TEST(GreedyPeelerTest, OutputSortedAscending) {
  auto g = PlantedBlockGraph();
  PeelResult r = PeelDensestBlock(g, {});
  EXPECT_TRUE(std::is_sorted(r.users.begin(), r.users.end()));
  EXPECT_TRUE(std::is_sorted(r.merchants.begin(), r.merchants.end()));
}

TEST(GreedyPeelerTest, WeightedEdgesRaiseBlockPriority) {
  // Two 3×2 blocks; the second carries weight-10 edges and must win.
  GraphBuilder b(6, 4);
  for (UserId u = 0; u < 3; ++u) {
    for (MerchantId v = 0; v < 2; ++v) b.AddEdge(u, v, 1.0);
  }
  for (UserId u = 3; u < 6; ++u) {
    for (MerchantId v = 2; v < 4; ++v) b.AddEdge(u, v, 10.0);
  }
  auto g = b.Build(DuplicatePolicy::kSumWeights).ValueOrDie();
  PeelResult r = PeelDensestBlock(g, {});
  for (UserId u : r.users) EXPECT_GE(u, 3u);
  for (MerchantId v : r.merchants) EXPECT_GE(v, 2u);
}

TEST(GreedyPeelerTest, CamouflageDoesNotHideBlock) {
  // Fraud block 6×3 where each fraud user also hits the popular merchant
  // 29 (degree ≈ 40): the popular merchant's column weight is tiny, so the
  // block should still be found and merchant 29 should NOT be in it once
  // peeling trims low-value attachments. (Weaker claim: block users found.)
  GraphBuilder b(60, 30);
  for (UserId u = 0; u < 6; ++u) {
    for (MerchantId v = 0; v < 3; ++v) b.AddEdge(u, v);
    b.AddEdge(u, 29);  // camouflage
  }
  for (UserId u = 6; u < 46; ++u) b.AddEdge(u, 29);  // popular merchant
  auto g = b.Build().ValueOrDie();
  PeelResult r = PeelDensestBlock(g, {});
  std::set<UserId> users(r.users.begin(), r.users.end());
  for (UserId u = 0; u < 6; ++u) EXPECT_TRUE(users.count(u));
}

TEST(GreedyPeelerTest, GreedyOptimalOnTwoBlocksOfDifferentDensity) {
  // 5×5 complete (denser per node) vs 3×3 complete: peeler must return the
  // 5×5 one.
  GraphBuilder b(8, 8);
  for (UserId u = 0; u < 5; ++u) {
    for (MerchantId v = 0; v < 5; ++v) b.AddEdge(u, v);
  }
  for (UserId u = 5; u < 8; ++u) {
    for (MerchantId v = 5; v < 8; ++v) b.AddEdge(u, v);
  }
  auto g = b.Build().ValueOrDie();
  PeelResult r = PeelDensestBlock(g, {});
  EXPECT_EQ(r.users.size(), 5u);
  for (UserId u : r.users) EXPECT_LT(u, 5u);
}

}  // namespace
}  // namespace ensemfdet
