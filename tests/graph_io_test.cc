#include "graph/graph_io.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace ensemfdet {
namespace {

class GraphIoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(GraphIoTest, RoundTripUnweighted) {
  GraphBuilder b(3, 4);
  b.AddEdge(0, 1);
  b.AddEdge(2, 3);
  b.AddEdge(1, 0);
  auto original = b.Build().ValueOrDie();

  const std::string path = TempPath("roundtrip.tsv");
  ASSERT_TRUE(SaveEdgeListTsv(original, path).ok());
  auto loaded = LoadEdgeListTsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_users(), 3);
  EXPECT_EQ(loaded->num_merchants(), 4);
  EXPECT_EQ(loaded->num_edges(), 3);
  EXPECT_TRUE(loaded->HasEdge(0, 1));
  EXPECT_TRUE(loaded->HasEdge(2, 3));
  EXPECT_TRUE(loaded->HasEdge(1, 0));
}

TEST_F(GraphIoTest, RoundTripWeighted) {
  GraphBuilder b(2, 2);
  b.AddEdge(0, 0, 2.5);
  b.AddEdge(1, 1, 0.125);
  auto original = b.Build(DuplicatePolicy::kSumWeights).ValueOrDie();
  ASSERT_TRUE(original.has_weights());

  const std::string path = TempPath("weighted.tsv");
  ASSERT_TRUE(SaveEdgeListTsv(original, path).ok());
  auto loaded = LoadEdgeListTsv(path).ValueOrDie();
  ASSERT_TRUE(loaded.has_weights());
  // Edge order is deterministic (sorted by user, merchant).
  EXPECT_DOUBLE_EQ(loaded.edge_weight(0), 2.5);
  EXPECT_DOUBLE_EQ(loaded.edge_weight(1), 0.125);
}

TEST_F(GraphIoTest, HeaderPreservesIsolatedNodes) {
  GraphBuilder b(10, 20);
  b.AddEdge(0, 0);
  auto original = b.Build().ValueOrDie();
  const std::string path = TempPath("isolated.tsv");
  ASSERT_TRUE(SaveEdgeListTsv(original, path).ok());
  auto loaded = LoadEdgeListTsv(path).ValueOrDie();
  EXPECT_EQ(loaded.num_users(), 10);
  EXPECT_EQ(loaded.num_merchants(), 20);
}

TEST_F(GraphIoTest, LoadWithoutHeaderInfersCounts) {
  const std::string path = TempPath("noheader.tsv");
  WriteFile(path, "0\t5\n3\t2\n");
  auto g = LoadEdgeListTsv(path).ValueOrDie();
  EXPECT_EQ(g.num_users(), 4);
  EXPECT_EQ(g.num_merchants(), 6);
  EXPECT_EQ(g.num_edges(), 2);
}

TEST_F(GraphIoTest, CommentsAndBlankLinesSkipped) {
  const std::string path = TempPath("comments.tsv");
  WriteFile(path, "# a comment\n\n0\t0\n# another\n1\t1\n\n");
  auto g = LoadEdgeListTsv(path).ValueOrDie();
  EXPECT_EQ(g.num_edges(), 2);
}

TEST_F(GraphIoTest, SpaceSeparatorAccepted) {
  const std::string path = TempPath("spaces.tsv");
  WriteFile(path, "0 1\n1 0\n");
  auto g = LoadEdgeListTsv(path).ValueOrDie();
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.HasEdge(0, 1));
}

TEST_F(GraphIoTest, DuplicateEdgesSumWeights) {
  const std::string path = TempPath("dups.tsv");
  WriteFile(path, "0\t0\t1.0\n0\t0\t2.0\n");
  auto g = LoadEdgeListTsv(path).ValueOrDie();
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_DOUBLE_EQ(g.edge_weight(0), 3.0);
}

TEST_F(GraphIoTest, MalformedLineFails) {
  const std::string path = TempPath("bad.tsv");
  WriteFile(path, "0\tnot_a_number\n");
  auto g = LoadEdgeListTsv(path);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIOError);
  EXPECT_NE(g.status().message().find(":1:"), std::string::npos);
}

TEST_F(GraphIoTest, MissingFieldFails) {
  const std::string path = TempPath("short.tsv");
  WriteFile(path, "42\n");
  EXPECT_FALSE(LoadEdgeListTsv(path).ok());
}

TEST_F(GraphIoTest, BadWeightFails) {
  const std::string path = TempPath("badw.tsv");
  WriteFile(path, "0\t0\theavy\n");
  EXPECT_FALSE(LoadEdgeListTsv(path).ok());
}

TEST_F(GraphIoTest, EdgeExceedingDeclaredHeaderFails) {
  const std::string path = TempPath("exceed.tsv");
  WriteFile(path, "# bipartite 2 2\n5\t0\n");
  auto g = LoadEdgeListTsv(path);
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("exceed"), std::string::npos);
}

TEST_F(GraphIoTest, MissingFileFails) {
  auto g = LoadEdgeListTsv(TempPath("does_not_exist.tsv"));
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIOError);
}

TEST_F(GraphIoTest, SaveToUnwritablePathFails) {
  GraphBuilder b(1, 1);
  b.AddEdge(0, 0);
  auto g = b.Build().ValueOrDie();
  EXPECT_FALSE(SaveEdgeListTsv(g, "/nonexistent_dir_xyz/out.tsv").ok());
}

TEST_F(GraphIoTest, EmptyFileGivesEmptyGraph) {
  const std::string path = TempPath("empty.tsv");
  WriteFile(path, "");
  auto g = LoadEdgeListTsv(path).ValueOrDie();
  EXPECT_EQ(g.num_users(), 0);
  EXPECT_EQ(g.num_merchants(), 0);
  EXPECT_EQ(g.num_edges(), 0);
}

}  // namespace
}  // namespace ensemfdet
