#include "detect/indexed_heap.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ensemfdet {
namespace {

TEST(IndexedMinHeapTest, StartsEmpty) {
  IndexedMinHeap h(10);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0);
  EXPECT_FALSE(h.Contains(0));
}

TEST(IndexedMinHeapTest, PushPopSingle) {
  IndexedMinHeap h(5);
  h.Push(3, 1.5);
  EXPECT_TRUE(h.Contains(3));
  EXPECT_EQ(h.size(), 1);
  EXPECT_EQ(h.PeekMin(), 3);
  EXPECT_EQ(h.PopMin(), 3);
  EXPECT_TRUE(h.empty());
  EXPECT_FALSE(h.Contains(3));
}

TEST(IndexedMinHeapTest, PopsInKeyOrder) {
  IndexedMinHeap h(5);
  h.Push(0, 3.0);
  h.Push(1, 1.0);
  h.Push(2, 2.0);
  h.Push(3, 5.0);
  h.Push(4, 4.0);
  std::vector<int64_t> order;
  while (!h.empty()) order.push_back(h.PopMin());
  EXPECT_EQ(order, (std::vector<int64_t>{1, 2, 0, 4, 3}));
}

TEST(IndexedMinHeapTest, TiesBreakBySmallerId) {
  IndexedMinHeap h(4);
  h.Push(2, 1.0);
  h.Push(0, 1.0);
  h.Push(3, 1.0);
  h.Push(1, 1.0);
  std::vector<int64_t> order;
  while (!h.empty()) order.push_back(h.PopMin());
  EXPECT_EQ(order, (std::vector<int64_t>{0, 1, 2, 3}));
}

TEST(IndexedMinHeapTest, KeyOfReflectsUpdates) {
  IndexedMinHeap h(3);
  h.Push(0, 2.0);
  EXPECT_DOUBLE_EQ(h.KeyOf(0), 2.0);
  h.UpdateKey(0, 7.0);
  EXPECT_DOUBLE_EQ(h.KeyOf(0), 7.0);
  h.AddToKey(0, -3.0);
  EXPECT_DOUBLE_EQ(h.KeyOf(0), 4.0);
}

TEST(IndexedMinHeapTest, DecreaseKeyReordersHeap) {
  IndexedMinHeap h(3);
  h.Push(0, 1.0);
  h.Push(1, 2.0);
  h.Push(2, 3.0);
  h.UpdateKey(2, 0.5);
  EXPECT_EQ(h.PopMin(), 2);
  EXPECT_EQ(h.PopMin(), 0);
}

TEST(IndexedMinHeapTest, IncreaseKeyReordersHeap) {
  IndexedMinHeap h(3);
  h.Push(0, 1.0);
  h.Push(1, 2.0);
  h.Push(2, 3.0);
  h.UpdateKey(0, 10.0);
  EXPECT_EQ(h.PopMin(), 1);
  EXPECT_EQ(h.PopMin(), 2);
  EXPECT_EQ(h.PopMin(), 0);
}

TEST(IndexedMinHeapTest, RemoveMiddleElement) {
  IndexedMinHeap h(5);
  for (int64_t i = 0; i < 5; ++i) h.Push(i, static_cast<double>(i));
  h.Remove(2);
  EXPECT_FALSE(h.Contains(2));
  EXPECT_EQ(h.size(), 4);
  std::vector<int64_t> order;
  while (!h.empty()) order.push_back(h.PopMin());
  EXPECT_EQ(order, (std::vector<int64_t>{0, 1, 3, 4}));
}

TEST(IndexedMinHeapTest, RemoveLastDoesNotCorrupt) {
  IndexedMinHeap h(3);
  h.Push(0, 1.0);
  h.Push(1, 2.0);
  h.Push(2, 3.0);
  h.Remove(2);  // last heap slot
  EXPECT_EQ(h.PopMin(), 0);
  EXPECT_EQ(h.PopMin(), 1);
  EXPECT_TRUE(h.empty());
}

TEST(IndexedMinHeapTest, ReinsertAfterRemove) {
  IndexedMinHeap h(2);
  h.Push(0, 1.0);
  h.Remove(0);
  h.Push(0, 5.0);
  EXPECT_DOUBLE_EQ(h.KeyOf(0), 5.0);
  EXPECT_EQ(h.PopMin(), 0);
}

TEST(IndexedMinHeapTest, RandomizedAgainstSort) {
  Rng rng(21);
  constexpr int kN = 500;
  IndexedMinHeap h(kN);
  std::vector<double> keys(kN);
  for (int64_t i = 0; i < kN; ++i) {
    keys[static_cast<size_t>(i)] = rng.NextDouble();
    h.Push(i, keys[static_cast<size_t>(i)]);
  }
  // Random updates.
  for (int t = 0; t < 2000; ++t) {
    int64_t id = static_cast<int64_t>(rng.NextBounded(kN));
    double k = rng.NextDouble() * 10.0 - 5.0;
    keys[static_cast<size_t>(id)] = k;
    h.UpdateKey(id, k);
  }
  // Extraction order must match a sort by (key, id).
  std::vector<int64_t> expected(kN);
  for (int64_t i = 0; i < kN; ++i) expected[static_cast<size_t>(i)] = i;
  std::sort(expected.begin(), expected.end(), [&keys](int64_t a, int64_t b) {
    if (keys[static_cast<size_t>(a)] != keys[static_cast<size_t>(b)]) {
      return keys[static_cast<size_t>(a)] < keys[static_cast<size_t>(b)];
    }
    return a < b;
  });
  std::vector<int64_t> actual;
  while (!h.empty()) actual.push_back(h.PopMin());
  EXPECT_EQ(actual, expected);
}

TEST(IndexedMinHeapTest, RandomizedWithInterleavedRemovals) {
  Rng rng(22);
  constexpr int kN = 200;
  IndexedMinHeap h(kN);
  std::vector<bool> in(kN, false);
  for (int64_t i = 0; i < kN; ++i) {
    h.Push(i, rng.NextDouble());
    in[static_cast<size_t>(i)] = true;
  }
  int64_t size = kN;
  for (int t = 0; t < 1000; ++t) {
    int64_t id = static_cast<int64_t>(rng.NextBounded(kN));
    if (in[static_cast<size_t>(id)]) {
      if (rng.NextBernoulli(0.5)) {
        h.Remove(id);
        in[static_cast<size_t>(id)] = false;
        --size;
      } else {
        h.UpdateKey(id, rng.NextDouble());
      }
    } else {
      h.Push(id, rng.NextDouble());
      in[static_cast<size_t>(id)] = true;
      ++size;
    }
    ASSERT_EQ(h.size(), size);
  }
  // Remaining extraction is sorted by key.
  double prev = -1.0;
  while (!h.empty()) {
    int64_t id = h.PeekMin();
    double k = h.KeyOf(id);
    EXPECT_GE(k, prev);
    prev = k;
    h.PopMin();
  }
}

TEST(IndexedMinHeapDeathTest, PopEmptyAborts) {
  IndexedMinHeap h(1);
  EXPECT_DEATH((void)h.PopMin(), "Check failed");
}

}  // namespace
}  // namespace ensemfdet
