// Tests for the observability layer: sharded counters under concurrency,
// log2-bucket histogram math pinned against a scalar reference, registry
// scrape semantics (including scrape-while-recording), TraceSpan, and the
// Prometheus/JSON export surfaces.
//
// Every value expectation is written against `obs::kMetricsCompiledIn` so
// the ENSEMFDET_METRICS=OFF build runs the same suite and proves the API
// surface stays callable (and inert) when the layer is compiled out.
#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ensemfdet {
namespace obs {
namespace {

/// Re-enables recording after a test that toggles the runtime switch.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { SetMetricsRuntimeEnabled(true); }
  void TearDown() override { SetMetricsRuntimeEnabled(true); }
};

int64_t Expected(int64_t value_when_compiled_in) {
  return kMetricsCompiledIn ? value_when_compiled_in : 0;
}

// ---------------------------------------------------------------------------
// Counter

TEST_F(ObsTest, CounterSingleThreadExact) {
  Counter c;
  for (int i = 0; i < 1000; ++i) c.Increment();
  c.Increment(42);
  EXPECT_EQ(c.Value(), Expected(1042));
}

TEST_F(ObsTest, CounterConcurrentSumExactAcrossPoolWidths) {
  // The shard assignment is thread-sticky round-robin; whatever the
  // interleaving, the post-join sum must be exact for every width —
  // below, at, and above the shard count.
  for (int width : {1, 2, 4, 8, 2 * static_cast<int>(
                                     internal::kCounterShards)}) {
    Counter c;
    constexpr int64_t kPerThread = 20000;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(width));
    for (int t = 0; t < width; ++t) {
      threads.emplace_back([&c] {
        for (int64_t i = 0; i < kPerThread; ++i) c.Increment();
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(c.Value(), Expected(width * kPerThread))
        << "width=" << width;
  }
}

TEST_F(ObsTest, CounterIgnoredWhileRuntimeDisabled) {
  Counter c;
  c.Increment(5);
  SetMetricsRuntimeEnabled(false);
  c.Increment(100);
  SetMetricsRuntimeEnabled(true);
  c.Increment(7);
  EXPECT_EQ(c.Value(), Expected(12));
}

// ---------------------------------------------------------------------------
// Gauge

TEST_F(ObsTest, GaugeSetAndAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  g.Add(5);
  EXPECT_EQ(g.Value(), Expected(12));
}

// ---------------------------------------------------------------------------
// Histogram bucket math

TEST(HistogramMath, BucketIndexBoundaries) {
  EXPECT_EQ(Histogram::BucketIndex(-5), 0u);
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  EXPECT_EQ(Histogram::BucketIndex(std::numeric_limits<int64_t>::max()),
            63u);
}

TEST(HistogramMath, BucketBoundsRoundTrip) {
  // Every bucket's bounds must contain exactly the values that index
  // into it.
  for (size_t i = 0; i < Histogram::kNumBuckets - 1; ++i) {
    const int64_t lo = Histogram::BucketLowerBound(i);
    const int64_t hi = Histogram::BucketUpperBound(i);
    EXPECT_LE(lo, hi) << "bucket " << i;
    EXPECT_EQ(Histogram::BucketIndex(lo), i) << "bucket " << i;
    EXPECT_EQ(Histogram::BucketIndex(hi), i) << "bucket " << i;
    if (i + 1 < Histogram::kNumBuckets - 1) {
      EXPECT_EQ(Histogram::BucketIndex(hi + 1), i + 1) << "bucket " << i;
    }
  }
}

/// Scalar reference for the documented quantile algorithm: rank
/// ceil(q*count), cumulative walk, linear interpolation inside the hit
/// bucket. Kept deliberately independent of the implementation.
double ReferenceQuantile(const std::array<int64_t, Histogram::kNumBuckets>&
                             buckets,
                         int64_t count, double q) {
  if (count <= 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const int64_t target =
      std::max<int64_t>(1, static_cast<int64_t>(std::ceil(q * count)));
  int64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    if (cumulative + buckets[i] >= target) {
      const double fraction =
          static_cast<double>(target - cumulative) /
          static_cast<double>(buckets[i]);
      const double lo =
          static_cast<double>(Histogram::BucketLowerBound(i));
      const double hi =
          static_cast<double>(Histogram::BucketUpperBound(i));
      return lo + fraction * (hi - lo);
    }
    cumulative += buckets[i];
  }
  return static_cast<double>(
      Histogram::BucketUpperBound(Histogram::kNumBuckets - 1));
}

HistogramSnapshot Snap(const Histogram& h) {
  HistogramSnapshot s;
  s.unit = h.unit();
  s.count = h.Count();
  s.raw_sum = h.RawSum();
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    s.buckets[i] = h.BucketCount(i);
  }
  return s;
}

TEST_F(ObsTest, HistogramQuantilesMatchScalarReference) {
  if (!kMetricsCompiledIn) GTEST_SKIP() << "metrics compiled out";
  Histogram h(Histogram::Unit::kUnits);
  // A deliberately lumpy distribution spanning many buckets.
  for (int64_t v = 1; v <= 2000; ++v) h.Record(v);
  for (int i = 0; i < 500; ++i) h.Record(1 << 20);
  h.Record(0);
  const HistogramSnapshot s = Snap(h);
  EXPECT_EQ(s.count, 2501);
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(s.QuantileRaw(q),
                     ReferenceQuantile(s.buckets, s.count, q))
        << "q=" << q;
  }
}

TEST_F(ObsTest, HistogramQuantilesPinnedSingleBucket) {
  if (!kMetricsCompiledIn) GTEST_SKIP() << "metrics compiled out";
  // 1000 observations of 100 all land in bucket 7 = [64, 127]. The
  // interpolation is then exactly rank/1000 of the way through the
  // bucket, which pins concrete values.
  Histogram h(Histogram::Unit::kUnits);
  for (int i = 0; i < 1000; ++i) h.Record(100);
  const HistogramSnapshot s = Snap(h);
  EXPECT_EQ(s.count, 1000);
  EXPECT_EQ(s.raw_sum, 100000);
  EXPECT_EQ(s.buckets[7], 1000);
  EXPECT_DOUBLE_EQ(s.QuantileRaw(0.5), 64.0 + 0.5 * 63.0);    // 95.5
  EXPECT_DOUBLE_EQ(s.QuantileRaw(0.99), 64.0 + 0.99 * 63.0);  // 126.37
  EXPECT_DOUBLE_EQ(s.QuantileRaw(0.999), 64.0 + 0.999 * 63.0);
  EXPECT_DOUBLE_EQ(s.QuantileRaw(1.0), 127.0);
}

TEST_F(ObsTest, HistogramQuantileWithinTwoXOfTrueValue) {
  if (!kMetricsCompiledIn) GTEST_SKIP() << "metrics compiled out";
  // log2 buckets promise < 2x relative error: the estimate must land in
  // the same bucket as the true order statistic.
  Histogram h(Histogram::Unit::kUnits);
  std::vector<int64_t> values;
  int64_t seed = 12345;
  for (int i = 0; i < 4096; ++i) {
    seed = seed * 6364136223846793005LL + 1442695040888963407LL;
    values.push_back((seed >> 33) & 0xFFFFF);  // [0, 2^20)
    h.Record(values.back());
  }
  std::sort(values.begin(), values.end());
  const HistogramSnapshot s = Snap(h);
  for (double q : {0.5, 0.9, 0.99}) {
    const int64_t rank = std::max<int64_t>(
        1, static_cast<int64_t>(std::ceil(q * values.size())));
    const int64_t truth = values[static_cast<size_t>(rank - 1)];
    const double est = s.QuantileRaw(q);
    EXPECT_EQ(Histogram::BucketIndex(static_cast<int64_t>(est)),
              Histogram::BucketIndex(truth))
        << "q=" << q << " est=" << est << " truth=" << truth;
  }
}

TEST_F(ObsTest, HistogramMergeOfSnapshotsEqualsSingleHistogram) {
  if (!kMetricsCompiledIn) GTEST_SKIP() << "metrics compiled out";
  // Bucket-wise addition of two snapshots must be indistinguishable
  // from recording everything into one histogram — the property the
  // scrape-side aggregation relies on.
  Histogram a(Histogram::Unit::kUnits);
  Histogram b(Histogram::Unit::kUnits);
  Histogram whole(Histogram::Unit::kUnits);
  for (int64_t v = 1; v <= 300; ++v) {
    ((v % 2 == 0) ? a : b).Record(v * 17);
    whole.Record(v * 17);
  }
  HistogramSnapshot merged = Snap(a);
  const HistogramSnapshot sb = Snap(b);
  merged.count += sb.count;
  merged.raw_sum += sb.raw_sum;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    merged.buckets[i] += sb.buckets[i];
  }
  const HistogramSnapshot expected = Snap(whole);
  EXPECT_EQ(merged.count, expected.count);
  EXPECT_EQ(merged.raw_sum, expected.raw_sum);
  EXPECT_EQ(merged.buckets, expected.buckets);
  for (double q : {0.5, 0.99, 0.999}) {
    EXPECT_DOUBLE_EQ(merged.QuantileRaw(q), expected.QuantileRaw(q));
  }
}

TEST_F(ObsTest, HistogramSecondsUnitScalesOnExport) {
  if (!kMetricsCompiledIn) GTEST_SKIP() << "metrics compiled out";
  Histogram h(Histogram::Unit::kSeconds);
  h.Record(2'000'000'000);  // 2 s in ns
  const HistogramSnapshot s = Snap(h);
  EXPECT_DOUBLE_EQ(s.ScaledSum(), 2.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), s.QuantileRaw(1.0) * 1e-9);
}

TEST_F(ObsTest, HistogramEmptyQuantileIsZero) {
  Histogram h;
  const HistogramSnapshot s = Snap(h);
  EXPECT_EQ(s.count, 0);
  EXPECT_DOUBLE_EQ(s.QuantileRaw(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.99), 0.0);
}

// ---------------------------------------------------------------------------
// Registry

TEST_F(ObsTest, RegistryReturnsStablePointers) {
  MetricsRegistry reg;
  Counter* c1 = reg.GetCounter("ensemfdet_test_alpha_total");
  Counter* c2 = reg.GetCounter("ensemfdet_test_alpha_total");
  EXPECT_EQ(c1, c2);
  Histogram* h1 =
      reg.GetHistogram("ensemfdet_test_lat_seconds");
  Histogram* h2 =
      reg.GetHistogram("ensemfdet_test_lat_seconds");
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1->unit(), Histogram::Unit::kSeconds);
}

TEST_F(ObsTest, RegistryScrapeSortedAndFindable) {
  MetricsRegistry reg;
  reg.GetCounter("ensemfdet_test_b_total")->Increment(2);
  reg.GetCounter("ensemfdet_test_a_total")->Increment(1);
  reg.GetGauge("ensemfdet_test_depth")->Set(9);
  reg.GetHistogram("ensemfdet_test_h_seconds")->Record(10);
  const RegistrySnapshot snap = reg.Scrape();
  ASSERT_EQ(snap.metrics.size(), 4u);
  EXPECT_TRUE(std::is_sorted(
      snap.metrics.begin(), snap.metrics.end(),
      [](const MetricSnapshot& x, const MetricSnapshot& y) {
        return x.name < y.name;
      }));
  const MetricSnapshot* a = snap.Find("ensemfdet_test_a_total");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->kind, InstrumentKind::kCounter);
  EXPECT_EQ(a->value, Expected(1));
  const MetricSnapshot* g = snap.Find("ensemfdet_test_depth");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->value, Expected(9));
  const MetricSnapshot* h = snap.Find("ensemfdet_test_h_seconds");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->histogram.count, Expected(1));
  EXPECT_EQ(snap.Find("ensemfdet_test_absent"), nullptr);
}

TEST_F(ObsTest, RegistryScrapeWhileRecordingIsConsistent) {
  // Scrapes taken under concurrent writers must be monotone (counters
  // never move backwards snapshot-to-snapshot) and exact after join.
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("ensemfdet_test_race_total");
  Histogram* h = reg.GetHistogram("ensemfdet_test_race_seconds");
  constexpr int kThreads = 4;
  constexpr int64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c, h] {
      for (int64_t i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Record(i & 0xFFF);
      }
    });
  }
  int64_t last = 0;
  for (int i = 0; i < 200; ++i) {
    const RegistrySnapshot snap = reg.Scrape();
    const MetricSnapshot* m = snap.Find("ensemfdet_test_race_total");
    ASSERT_NE(m, nullptr);
    EXPECT_GE(m->value, last);
    last = m->value;
    const MetricSnapshot* hs = snap.Find("ensemfdet_test_race_seconds");
    ASSERT_NE(hs, nullptr);
    int64_t bucket_total = 0;
    for (int64_t b : hs->histogram.buckets) bucket_total += b;
    EXPECT_EQ(bucket_total, hs->histogram.count);
  }
  for (auto& th : threads) th.join();
  const RegistrySnapshot final_snap = reg.Scrape();
  EXPECT_EQ(final_snap.Find("ensemfdet_test_race_total")->value,
            Expected(kThreads * kPerThread));
  EXPECT_EQ(final_snap.Find("ensemfdet_test_race_seconds")->histogram.count,
            Expected(kThreads * kPerThread));
}

// ---------------------------------------------------------------------------
// TraceSpan

TEST_F(ObsTest, TraceSpanRecordsIntoHistogram) {
  Histogram h;
  {
    TraceSpan span(&h, "test_span");
    volatile double sink = 0.0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  EXPECT_EQ(h.Count(), Expected(1));
}

TEST_F(ObsTest, TraceSpanSkipsHistogramWhenRuntimeDisabled) {
  Histogram h;
  SetMetricsRuntimeEnabled(false);
  { TraceSpan span(&h, "test_span"); }
  SetMetricsRuntimeEnabled(true);
  EXPECT_EQ(h.Count(), 0);
}

TEST_F(ObsTest, TraceEventsBufferedAndFlushed) {
  if (!kMetricsCompiledIn) GTEST_SKIP() << "metrics compiled out";
  SetTraceEnabled(true);
  const size_t before = TraceEventCount();
  {
    Histogram h;
    TraceSpan span(&h, "flush_test_span");
  }
  EXPECT_EQ(TraceEventCount(), before + 1);
  const std::string path = ::testing::TempDir() + "/obs_trace_test.json";
  ASSERT_TRUE(FlushTraceTo(path));
  SetTraceEnabled(false);
  EXPECT_EQ(TraceEventCount(), 0u);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string body = buf.str();
  EXPECT_NE(body.find("flush_test_span"), std::string::npos);
  EXPECT_NE(body.find("\"ph\":\"X\""), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Export

TEST_F(ObsTest, PrometheusTextExport) {
  MetricsRegistry reg;
  reg.GetCounter("ensemfdet_test_ops_total")->Increment(3);
  reg.GetGauge("ensemfdet_test_depth")->Set(2);
  reg.GetHistogram("ensemfdet_test_lat_seconds")
      ->Record(1'000'000);  // 1 ms
  const std::string text = ToPrometheusText(reg.Scrape());
  EXPECT_NE(text.find("# TYPE ensemfdet_test_ops_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ensemfdet_test_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ensemfdet_test_lat_seconds histogram"),
            std::string::npos);
  if (kMetricsCompiledIn) {
    EXPECT_NE(text.find("ensemfdet_test_ops_total 3"), std::string::npos);
    EXPECT_NE(text.find("ensemfdet_test_depth 2"), std::string::npos);
  }
  EXPECT_NE(text.find("ensemfdet_test_lat_seconds_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("ensemfdet_test_lat_seconds_count"),
            std::string::npos);
}

TEST_F(ObsTest, JsonExport) {
  MetricsRegistry reg;
  reg.GetCounter("ensemfdet_test_ops_total")->Increment(5);
  reg.GetHistogram("ensemfdet_test_lat_seconds")->Record(500);
  const std::string json = ToJson(reg.Scrape());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back() == '\n' ? json[json.size() - 2] : json.back(),
            '}');
  EXPECT_NE(json.find("\"ensemfdet_test_ops_total\""), std::string::npos);
  EXPECT_NE(json.find("\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST_F(ObsTest, PrometheusHelpPrecedesEveryType) {
  MetricsRegistry reg;
  reg.GetCounter("ensemfdet_test_ops_total",
                 "Registered help text wins over derivation.");
  reg.GetGauge("ensemfdet_test_depth");
  reg.GetHistogram("ensemfdet_test_lat_seconds");
  const std::string text = ToPrometheusText(reg.Scrape());
  // Registered help is emitted verbatim.
  EXPECT_NE(text.find("# HELP ensemfdet_test_ops_total Registered help "
                      "text wins over derivation."),
            std::string::npos);
  // Every series gets a HELP line, and it precedes its TYPE line —
  // including series that never registered one (derived help).
  for (const char* name :
       {"ensemfdet_test_ops_total", "ensemfdet_test_depth",
        "ensemfdet_test_lat_seconds"}) {
    const size_t help = text.find(std::string("# HELP ") + name + " ");
    const size_t type = text.find(std::string("# TYPE ") + name + " ");
    ASSERT_NE(help, std::string::npos) << name;
    ASSERT_NE(type, std::string::npos) << name;
    EXPECT_LT(help, type) << name;
    // Derived or registered, the help text itself is never empty.
    const size_t eol = text.find('\n', help);
    EXPECT_GT(eol - help, std::string("# HELP ").size() +
                              std::string(name).size() + 1)
        << name;
  }
}

TEST(ExpositionEscape, BackslashAndNewlineRoundTrip) {
  EXPECT_EQ(EscapeExpositionText("plain text"), "plain text");
  EXPECT_EQ(EscapeExpositionText("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeExpositionText("line one\nline two"),
            "line one\\nline two");
  EXPECT_EQ(EscapeExpositionText("\\\n"), "\\\\\\n");
}

TEST_F(ObsTest, PrometheusHelpWithNewlineStaysOneLine) {
  MetricsRegistry reg;
  reg.GetCounter("ensemfdet_test_multiline_total",
                 "first line\nsecond line");
  const std::string text = ToPrometheusText(reg.Scrape());
  // The raw newline must not split the HELP comment (that would turn the
  // rest into an invalid exposition line); the escaped form appears.
  EXPECT_NE(text.find("first line\\nsecond line"), std::string::npos);
  EXPECT_EQ(text.find("first line\nsecond"), std::string::npos);
}

TEST_F(ObsTest, JsonExportCarriesHelpForEveryMetric) {
  MetricsRegistry reg;
  reg.GetCounter("ensemfdet_test_ops_total", "Counted \"ops\".");
  reg.GetHistogram("ensemfdet_test_lat_seconds");
  const std::string json = ToJson(reg.Scrape());
  // Registered help round-trips JSON-escaped; derived help is present.
  EXPECT_NE(json.find("\"help\": \"Counted \\\"ops\\\".\""),
            std::string::npos);
  size_t metrics = 0, helps = 0, pos = 0;
  while ((pos = json.find("{\"name\":", pos)) != std::string::npos) {
    ++metrics;
    pos += 1;
  }
  pos = 0;
  while ((pos = json.find("\"help\":", pos)) != std::string::npos) {
    ++helps;
    pos += 1;
  }
  EXPECT_EQ(metrics, 2u);
  EXPECT_EQ(helps, metrics);
}

TEST_F(ObsTest, HistogramTailExemplarLinksToLiveTrace) {
  if (!kMetricsCompiledIn) GTEST_SKIP() << "metrics compiled out";
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("ensemfdet_test_exemplar_seconds");
  // No context installed -> no exemplar captured.
  SetCurrentTraceContext(TraceContext{});
  h->Record(10'000'000);
  RegistrySnapshot snap = reg.Scrape();
  ASSERT_EQ(snap.metrics.size(), 1u);
  EXPECT_FALSE(snap.metrics[0].histogram.has_exemplar());

  // Under a live span context, the new maximum becomes the exemplar and
  // its trace id renders identically to the timeline's args form.
  const TraceContext ctx = NewRootContext();
  {
    ScopedTraceContext scope(ctx);
    h->Record(20'000'000);
    h->Record(5'000'000);  // smaller: must not displace the max exemplar
  }
  snap = reg.Scrape();
  const HistogramSnapshot& hist = snap.metrics[0].histogram;
  ASSERT_TRUE(hist.has_exemplar());
  EXPECT_EQ(hist.exemplar_value, 20'000'000);
  EXPECT_EQ(hist.exemplar.span_id, ctx.span_id);
  char want[33];
  std::snprintf(want, sizeof(want), "%016llx%016llx",
                static_cast<unsigned long long>(ctx.trace_hi),
                static_cast<unsigned long long>(ctx.trace_lo));
  EXPECT_EQ(hist.ExemplarTraceId(), want);

  const std::string json = ToJson(snap);
  EXPECT_NE(json.find("\"exemplar\": {\"value\":"), std::string::npos);
  EXPECT_NE(json.find(want), std::string::npos);
}

TEST_F(ObsTest, CompileFlagIsCoherent) {
  // The OFF build must report itself as such so callers (and this very
  // suite) can gate expectations.
#if defined(ENSEMFDET_METRICS_DISABLED)
  EXPECT_FALSE(kMetricsCompiledIn);
#else
  EXPECT_TRUE(kMetricsCompiledIn);
#endif
}

}  // namespace
}  // namespace obs
}  // namespace ensemfdet
