// Tests for the incremental ingest store: window/multiplicity semantics,
// delta-log + compaction invariants, version immutability, and the
// representation-independent fingerprint contract.
#include "ingest/dynamic_graph_store.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/fingerprint.h"
#include "graph/graph_builder.h"

namespace ensemfdet {
namespace {

DynamicGraphStoreConfig SmallConfig() {
  DynamicGraphStoreConfig config;
  config.num_users = 64;
  config.num_merchants = 32;
  config.window = 100;
  config.min_compaction_delta = 1 << 30;  // effectively never compact
  return config;
}

IngestBatch Batch(std::initializer_list<Transaction> txs) {
  IngestBatch batch;
  batch.transactions.assign(txs.begin(), txs.end());
  return batch;
}

TEST(DynamicGraphStoreTest, CreateValidatesConfig) {
  DynamicGraphStoreConfig config = SmallConfig();
  config.num_users = 0;
  EXPECT_FALSE(DynamicGraphStore::Create(config).ok());
  config = SmallConfig();
  config.compaction_factor = 0.0;
  EXPECT_FALSE(DynamicGraphStore::Create(config).ok());
  config = SmallConfig();
  config.min_compaction_delta = 0;
  EXPECT_FALSE(DynamicGraphStore::Create(config).ok());
  EXPECT_TRUE(DynamicGraphStore::Create(SmallConfig()).ok());
}

TEST(DynamicGraphStoreTest, RejectsOutOfRangeAndOutOfOrder) {
  auto store = DynamicGraphStore::Create(SmallConfig()).ValueOrDie();
  EXPECT_FALSE(store.Apply(Batch({{0, 100, 0}})).ok());
  EXPECT_FALSE(store.Apply(Batch({{0, 0, 100}})).ok());
  ASSERT_TRUE(store.Apply(Batch({{10, 1, 1}})).ok());
  auto regressed = store.Apply(Batch({{5, 2, 2}}));
  ASSERT_FALSE(regressed.ok());
  EXPECT_EQ(regressed.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DynamicGraphStoreTest, DuplicateTransactionsCollapseOntoOneEdge) {
  auto store = DynamicGraphStore::Create(SmallConfig()).ValueOrDie();
  auto stats =
      store.Apply(Batch({{0, 3, 4}, {1, 3, 4}, {2, 3, 4}})).ValueOrDie();
  EXPECT_EQ(stats.events_ingested, 3);
  EXPECT_EQ(stats.edges_added, 1);
  EXPECT_EQ(store.live_edges(), 1);
  EXPECT_EQ(store.window_events(), 3);

  // Evicting two of the three occurrences keeps the edge alive…
  stats = store.Apply(Batch({{102, 9, 9}})).ValueOrDie();  // cutoff = 2
  EXPECT_EQ(stats.events_evicted, 2);
  EXPECT_EQ(stats.edges_removed, 0);
  EXPECT_EQ(store.live_edges(), 2);
  // …and only the last occurrence's expiry kills it (here the slide also
  // expires (9,9), so two edges die).
  stats = store.Apply(Batch({{203, 9, 8}})).ValueOrDie();
  EXPECT_EQ(stats.edges_removed, 2);
  EXPECT_EQ(store.live_edges(), 1);  // (9,8)
}

TEST(DynamicGraphStoreTest, PublishedVersionIsImmutable) {
  auto store = DynamicGraphStore::Create(SmallConfig()).ValueOrDie();
  ASSERT_TRUE(store.Apply(Batch({{0, 1, 1}, {0, 2, 2}})).ok());
  GraphVersion v1 = store.Publish();
  EXPECT_EQ(v1.epoch(), 1u);
  EXPECT_EQ(v1.num_edges(), 2);
  const uint64_t fp1 = v1.ContentFingerprint();

  // Mutate the store heavily: new edges, eviction of the originals.
  ASSERT_TRUE(store.Apply(Batch({{150, 5, 5}, {151, 6, 6}})).ok());
  GraphVersion v2 = store.Publish();
  EXPECT_EQ(v2.epoch(), 2u);

  EXPECT_EQ(v1.num_edges(), 2);
  EXPECT_EQ(v1.ContentFingerprint(), fp1);
  std::vector<Edge> v1_edges;
  v1.ForEachEdge([&](UserId u, MerchantId m) { v1_edges.push_back({u, m}); });
  EXPECT_EQ(v1_edges, (std::vector<Edge>{{1, 1}, {2, 2}}));
  EXPECT_NE(v2.ContentFingerprint(), fp1);
}

TEST(DynamicGraphStoreTest, FingerprintMatchesMaterializedForms) {
  auto store = DynamicGraphStore::Create(SmallConfig()).ValueOrDie();
  ASSERT_TRUE(
      store.Apply(Batch({{0, 1, 2}, {1, 4, 3}, {2, 1, 3}, {3, 0, 0}})).ok());
  GraphVersion version = store.Publish();
  BipartiteGraph graph = version.Materialize();
  EXPECT_EQ(version.ContentFingerprint(), FingerprintGraph(graph));
  EXPECT_EQ(version.ContentFingerprint(),
            FingerprintGraph(*version.MaterializeCsr()));
  // Same content assembled directly through GraphBuilder fingerprints
  // identically (representation independence).
  GraphBuilder builder(64, 32);
  builder.AddEdge(1, 2);
  builder.AddEdge(4, 3);
  builder.AddEdge(1, 3);
  builder.AddEdge(0, 0);
  EXPECT_EQ(version.ContentFingerprint(),
            FingerprintGraph(builder.Build().ValueOrDie()));
}

TEST(DynamicGraphStoreTest, CompactionPreservesContentAndEmptiesDelta) {
  DynamicGraphStoreConfig config = SmallConfig();
  config.min_compaction_delta = 4;  // trip early
  config.compaction_factor = 0.01;
  auto store = DynamicGraphStore::Create(config).ValueOrDie();

  ASSERT_TRUE(store.Apply(Batch({{0, 1, 1}, {0, 2, 2}})).ok());
  GraphVersion v1 = store.Publish();  // delta=2 < 4 → not compacted
  EXPECT_FALSE(v1.compacted());
  EXPECT_EQ(v1.delta_adds().size(), 2u);

  ASSERT_TRUE(store.Apply(Batch({{1, 3, 3}, {1, 4, 4}, {1, 5, 5}})).ok());
  const uint64_t fp_before = [&] {
    GraphBuilder b(64, 32);
    for (UserId u : {1, 2, 3, 4, 5}) {
      b.AddEdge(u, static_cast<MerchantId>(u));
    }
    return FingerprintGraph(b.Build().ValueOrDie());
  }();
  GraphVersion v2 = store.Publish();  // delta=5 ≥ 4 → compacted
  EXPECT_TRUE(v2.compacted());
  EXPECT_TRUE(v2.delta_adds().empty());
  EXPECT_TRUE(v2.delta_dead().empty());
  EXPECT_EQ(v2.num_edges(), 5);
  EXPECT_EQ(v2.ContentFingerprint(), fp_before);
  EXPECT_EQ(store.stats().compactions, 1);
  // Compacted version's CSR is the base itself (no rebuild).
  EXPECT_EQ(v2.MaterializeCsr().get(), &v2.base());

  // Dead base edges + re-adds after compaction keep the contract.
  ASSERT_TRUE(store.Apply(Batch({{200, 9, 9}})).ok());  // evicts everything
  GraphVersion v3 = store.Publish();
  EXPECT_EQ(v3.num_edges(), 1);
  EXPECT_EQ(v3.ContentFingerprint(), FingerprintGraph(v3.Materialize()));
}

TEST(DynamicGraphStoreTest, TouchedFrontierTracksStructuralChangesOnly) {
  auto store = DynamicGraphStore::Create(SmallConfig()).ValueOrDie();
  ASSERT_TRUE(store.Apply(Batch({{0, 1, 1}, {1, 1, 1}, {2, 7, 3}})).ok());
  GraphVersion v1 = store.Publish();
  EXPECT_EQ(std::vector<UserId>(v1.touched_users().begin(),
                                v1.touched_users().end()),
            (std::vector<UserId>{1, 7}));
  EXPECT_EQ(std::vector<MerchantId>(v1.touched_merchants().begin(),
                                    v1.touched_merchants().end()),
            (std::vector<MerchantId>{1, 3}));

  // A duplicate of a live edge is not a structural change.
  ASSERT_TRUE(store.Apply(Batch({{3, 1, 1}})).ok());
  GraphVersion v2 = store.Publish();
  EXPECT_TRUE(v2.touched_users().empty());
  EXPECT_TRUE(v2.touched_merchants().empty());

  // Eviction is: (7,3)'s only occurrence at t=2 expires at cutoff 3.
  ASSERT_TRUE(store.Apply(Batch({{103, 2, 2}})).ok());
  GraphVersion v3 = store.Publish();
  EXPECT_TRUE(std::binary_search(v3.touched_users().begin(),
                                 v3.touched_users().end(), 7u));
}

// Randomized cross-check against a naive deque-rebuild reference: after
// every batch the published version must equal the graph rebuilt from the
// raw window, edge for edge and fingerprint for fingerprint — across
// compactions, duplicate collapses, resurrections, and evictions.
TEST(DynamicGraphStoreTest, RandomizedParityWithNaiveWindowRebuild) {
  DynamicGraphStoreConfig config;
  config.num_users = 40;
  config.num_merchants = 20;
  config.window = 50;
  config.min_compaction_delta = 16;  // exercise compaction often
  config.compaction_factor = 0.2;
  auto store = DynamicGraphStore::Create(config).ValueOrDie();

  Rng rng(1234);
  std::vector<Transaction> window_ref;  // the naive window
  int64_t t = 0;
  int64_t publishes_with_delta = 0;
  for (int round = 0; round < 60; ++round) {
    IngestBatch batch;
    const int batch_size = 1 + static_cast<int>(rng.NextBounded(12));
    for (int i = 0; i < batch_size; ++i) {
      t += static_cast<int64_t>(rng.NextBounded(4));
      batch.transactions.push_back(
          {t, static_cast<UserId>(rng.NextBounded(40)),
           static_cast<MerchantId>(rng.NextBounded(20))});
    }
    ASSERT_TRUE(store.Apply(batch).ok());
    // Naive reference: append then drop expired.
    window_ref.insert(window_ref.end(), batch.transactions.begin(),
                      batch.transactions.end());
    window_ref.erase(
        std::remove_if(window_ref.begin(), window_ref.end(),
                       [&](const Transaction& tx) {
                         return tx.timestamp < t - config.window;
                       }),
        window_ref.end());

    GraphVersion version = store.Publish();
    if (!version.delta_adds().empty() || !version.delta_dead().empty()) {
      ++publishes_with_delta;
    }
    GraphBuilder builder(config.num_users, config.num_merchants);
    for (const Transaction& tx : window_ref) {
      builder.AddEdge(tx.user, tx.merchant);
    }
    BipartiteGraph expected =
        builder.Build(DuplicatePolicy::kKeepFirst).ValueOrDie();
    ASSERT_EQ(version.num_edges(), expected.num_edges()) << "round " << round;
    ASSERT_EQ(version.ContentFingerprint(), FingerprintGraph(expected))
        << "round " << round;

    // Adjacency iteration agrees with the materialized graph on both
    // sides (exercises dead-skipping and the adds merge).
    std::vector<Edge> via_iter;
    version.ForEachEdge(
        [&](UserId u, MerchantId v) { via_iter.push_back({u, v}); });
    ASSERT_EQ(via_iter.size(), static_cast<size_t>(expected.num_edges()));
    for (EdgeId e = 0; e < expected.num_edges(); ++e) {
      ASSERT_TRUE(via_iter[static_cast<size_t>(e)] == expected.edge(e));
    }
    std::multiset<UserId> merchant_row_ref, merchant_row_got;
    const MerchantId probe =
        static_cast<MerchantId>(rng.NextBounded(20));
    for (EdgeId e = 0; e < expected.num_edges(); ++e) {
      if (expected.edge(e).merchant == probe) {
        merchant_row_ref.insert(expected.edge(e).user);
      }
    }
    version.ForEachMerchantNeighbor(
        probe, [&](UserId u) { merchant_row_got.insert(u); });
    ASSERT_EQ(merchant_row_got, merchant_row_ref);
  }
  EXPECT_GT(publishes_with_delta, 0) << "test never exercised the delta path";
  EXPECT_GT(store.stats().compactions, 0)
      << "test never exercised compaction";
}

TEST(DynamicGraphStoreTest, SnapshotCostIsDeltaScoped) {
  // Not a timing test: assert the *structural* O(|delta|) property — a
  // publish after a small change carries a small delta against a large
  // base, instead of rebuilding the window.
  DynamicGraphStoreConfig config;
  config.num_users = 600;
  config.num_merchants = 400;
  config.window = 1 << 20;
  config.min_compaction_delta = 8;  // first publish compacts the bulk load
  auto store = DynamicGraphStore::Create(config).ValueOrDie();

  IngestBatch big;
  for (int i = 0; i < 5000; ++i) {
    big.transactions.push_back({i, static_cast<UserId>(i % 600),
                                static_cast<MerchantId>((i * 7) % 400)});
  }
  ASSERT_TRUE(store.Apply(big).ok());
  GraphVersion v1 = store.Publish();
  ASSERT_TRUE(v1.compacted());
  ASSERT_GT(v1.num_edges(), 1000);

  ASSERT_TRUE(store.Apply(Batch({{6000, 5, 5}})).ok());
  GraphVersion v2 = store.Publish();
  EXPECT_FALSE(v2.compacted());
  EXPECT_LE(static_cast<int64_t>(v2.delta_adds().size() +
                                 v2.delta_dead().size()),
            2);
  EXPECT_EQ(&v2.base(), &v1.base())
      << "publish below the threshold must share the frozen base, not "
         "rebuild it";
}

}  // namespace
}  // namespace ensemfdet
