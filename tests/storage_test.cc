// The .efg snapshot format's contracts (DESIGN.md §"Snapshot format"):
// exact round-trips through both readers, zero-copy view lifetime rules,
// bit-exact detection off a mapped snapshot, and — the part the sanitizer
// CI jobs exist to prove — that corrupt, truncated, skewed, or tampered
// files fail with a clean Status, never UB.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "datagen/presets.h"
#include "ensemble/ensemfdet.h"
#include "graph/fingerprint.h"
#include "graph/graph_builder.h"
#include "storage/snapshot_format.h"
#include "storage/snapshot_reader.h"
#include "storage/snapshot_writer.h"

namespace ensemfdet {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("ensemfdet_storage_test_" + name))
      .string();
}

BipartiteGraph RandomGraph(int64_t users, int64_t merchants, int64_t edges,
                           uint64_t seed, bool weighted) {
  GraphBuilder b(users, merchants);
  Rng rng(seed);
  for (int64_t i = 0; i < edges; ++i) {
    const UserId u =
        static_cast<UserId>(rng.NextBounded(static_cast<uint64_t>(users)));
    const MerchantId v = static_cast<MerchantId>(
        rng.NextBounded(static_cast<uint64_t>(merchants)));
    b.AddEdge(u, v, weighted ? 1.0 + rng.NextDouble() : 1.0);
  }
  return b.Build(DuplicatePolicy::kKeepFirst).ValueOrDie();
}

void ExpectCsrEqual(const CsrGraph& a, const CsrGraph& b) {
  ASSERT_EQ(a.num_users(), b.num_users());
  ASSERT_EQ(a.num_merchants(), b.num_merchants());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.has_weights(), b.has_weights());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge_user(e), b.edge_user(e));
    EXPECT_EQ(a.edge_merchant(e), b.edge_merchant(e));
    EXPECT_EQ(a.edge_weight(e), b.edge_weight(e));
  }
  for (MerchantId v = 0; v < a.num_merchants(); ++v) {
    ASSERT_EQ(a.merchant_degree(v), b.merchant_degree(v));
    auto ia = a.merchant_edge_ids(v);
    auto ib = b.merchant_edge_ids(v);
    for (size_t k = 0; k < ia.size(); ++k) EXPECT_EQ(ia[k], ib[k]);
  }
  EXPECT_EQ(FingerprintGraph(a), FingerprintGraph(b));
}

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// File offset of a section's payload (follows the on-disk table).
uint64_t SectionOffset(const std::vector<char>& bytes,
                       storage::SectionId id) {
  storage::SnapshotHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  for (uint32_t i = 0; i < header.section_count; ++i) {
    storage::SectionEntry entry;
    std::memcpy(&entry,
                bytes.data() + sizeof(header) + i * sizeof(entry),
                sizeof(entry));
    if (entry.id == static_cast<uint32_t>(id)) return entry.offset;
  }
  ADD_FAILURE() << "section not found";
  return 0;
}

TEST(SnapshotRoundTrip, BothReadersReproduceTheGraph) {
  for (bool weighted : {false, true}) {
    const BipartiteGraph graph = RandomGraph(60, 40, 300, 7, weighted);
    const CsrGraph csr = CsrGraph::FromBipartite(graph);
    const std::string path = TempPath("roundtrip.efg");
    ASSERT_TRUE(storage::WriteCsrGraphSnapshot(csr, path).ok());

    auto streamed = storage::LoadCsrGraphSnapshot(path);
    ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
    EXPECT_FALSE(streamed->is_view());
    ExpectCsrEqual(csr, *streamed);

    auto mapped = storage::MappedCsrGraph::Open(path);
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    EXPECT_TRUE(mapped->graph().is_view());
    EXPECT_TRUE(mapped->VerifyFingerprint().ok());
    EXPECT_EQ(mapped->fingerprint(), FingerprintGraph(csr));
    ExpectCsrEqual(csr, mapped->graph());

    // The adjacency round-trip off the mapping must be exact too.
    const BipartiteGraph back = mapped->graph().ToBipartite();
    EXPECT_EQ(FingerprintGraph(back), FingerprintGraph(graph));
    std::filesystem::remove(path);
  }
}

TEST(SnapshotRoundTrip, HeaderProbeReportsShape) {
  const CsrGraph csr =
      CsrGraph::FromBipartite(RandomGraph(9, 5, 20, 3, false));
  const std::string path = TempPath("probe.efg");
  ASSERT_TRUE(storage::WriteCsrGraphSnapshot(csr, path).ok());
  auto info = storage::ReadSnapshotInfo(path);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->kind, storage::PayloadKind::kCsrGraph);
  EXPECT_EQ(info->num_users, 9);
  EXPECT_EQ(info->num_merchants, 5);
  EXPECT_EQ(info->num_edges, csr.num_edges());
  EXPECT_EQ(info->content_fingerprint, FingerprintGraph(csr));
  std::filesystem::remove(path);
}

TEST(SnapshotRoundTrip, ZeroEdgeAndZeroNodeGraphs) {
  // Isolated nodes, no edges.
  {
    const BipartiteGraph graph =
        GraphBuilder(17, 13).Build().ValueOrDie();
    const CsrGraph csr = CsrGraph::FromBipartite(graph);
    const std::string path = TempPath("zero_edges.efg");
    ASSERT_TRUE(storage::WriteCsrGraphSnapshot(csr, path).ok());
    auto mapped = storage::MappedCsrGraph::Open(path);
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    EXPECT_EQ(mapped->graph().num_users(), 17);
    EXPECT_EQ(mapped->graph().num_edges(), 0);
    EXPECT_TRUE(mapped->VerifyFingerprint().ok());
    auto streamed = storage::LoadCsrGraphSnapshot(path);
    ASSERT_TRUE(streamed.ok());
    EXPECT_EQ(FingerprintGraph(*streamed), FingerprintGraph(csr));
    std::filesystem::remove(path);
  }
  // A fully empty graph (0 x 0).
  {
    const CsrGraph csr;
    const std::string path = TempPath("zero_nodes.efg");
    ASSERT_TRUE(storage::WriteCsrGraphSnapshot(csr, path).ok());
    auto streamed = storage::LoadCsrGraphSnapshot(path);
    ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
    EXPECT_TRUE(streamed->empty());
    EXPECT_EQ(streamed->num_nodes(), 0);
    auto mapped = storage::MappedCsrGraph::Open(path);
    ASSERT_TRUE(mapped.ok());
    EXPECT_TRUE(mapped->VerifyFingerprint().ok());
    std::filesystem::remove(path);
  }
}

TEST(SnapshotRoundTrip, ViewOutlivesTheMappedReader) {
  const CsrGraph csr =
      CsrGraph::FromBipartite(RandomGraph(30, 20, 120, 11, true));
  const std::string path = TempPath("lifetime.efg");
  ASSERT_TRUE(storage::WriteCsrGraphSnapshot(csr, path).ok());
  std::shared_ptr<const CsrGraph> held;
  {
    auto mapped = storage::MappedCsrGraph::Open(path);
    ASSERT_TRUE(mapped.ok());
    held = mapped->shared();
  }  // MappedCsrGraph destroyed; the view's backing keeps the mapping
  EXPECT_TRUE(held->is_view());
  ExpectCsrEqual(csr, *held);
  // Copies of a view are O(1) and share the same backing.
  const CsrGraph copy = *held;
  held.reset();
  ExpectCsrEqual(csr, copy);
  std::filesystem::remove(path);
}

// --------------------------------------------------------------------------
// Corruption: every failure mode is a Status, never UB (the ASan+UBSan CI
// job runs these tests).
// --------------------------------------------------------------------------

class SnapshotCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = RandomGraph(40, 25, 180, 5, true);
    csr_ = CsrGraph::FromBipartite(graph_);
    path_ = TempPath("corrupt.efg");
    ASSERT_TRUE(storage::WriteCsrGraphSnapshot(csr_, path_).ok());
    bytes_ = ReadAll(path_);
    ASSERT_GT(bytes_.size(), sizeof(storage::SnapshotHeader));
  }
  void TearDown() override { std::filesystem::remove(path_); }

  /// Both readers must reject the current file contents.
  void ExpectBothReadersReject(StatusCode expected_code) {
    auto streamed = storage::LoadCsrGraphSnapshot(path_);
    ASSERT_FALSE(streamed.ok());
    EXPECT_EQ(streamed.status().code(), expected_code)
        << streamed.status().ToString();
    auto mapped = storage::MappedCsrGraph::Open(path_);
    if (mapped.ok()) {
      // Structure parsed; the fingerprint gate must still catch it.
      EXPECT_FALSE(mapped->VerifyFingerprint().ok());
    } else {
      EXPECT_EQ(mapped.status().code(), expected_code)
          << mapped.status().ToString();
    }
  }

  BipartiteGraph graph_;
  CsrGraph csr_;
  std::string path_;
  std::vector<char> bytes_;
};

TEST_F(SnapshotCorruption, MissingFile) {
  auto result = storage::LoadCsrGraphSnapshot(TempPath("does_not_exist"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST_F(SnapshotCorruption, WrongMagic) {
  bytes_[0] ^= 0x5a;
  WriteAll(path_, bytes_);
  ExpectBothReadersReject(StatusCode::kIOError);
}

TEST_F(SnapshotCorruption, NotASnapshotAtAll) {
  WriteAll(path_, {'1', '\t', '2', '\n'});
  ExpectBothReadersReject(StatusCode::kIOError);
}

TEST_F(SnapshotCorruption, SchemaVersionSkew) {
  storage::SnapshotHeader header;
  std::memcpy(&header, bytes_.data(), sizeof(header));
  header.schema_version = storage::kSchemaVersion + 1;
  std::memcpy(bytes_.data(), &header, sizeof(header));
  WriteAll(path_, bytes_);
  ExpectBothReadersReject(StatusCode::kFailedPrecondition);
}

TEST_F(SnapshotCorruption, TruncationAtEveryLayer) {
  // Inside the header, inside the section table, inside a payload, and
  // one byte short of complete.
  for (size_t keep :
       {sizeof(storage::SnapshotHeader) / 2,
        sizeof(storage::SnapshotHeader) + 8, bytes_.size() / 2,
        bytes_.size() - 1}) {
    std::vector<char> truncated(bytes_.begin(),
                                bytes_.begin() + static_cast<long>(keep));
    WriteAll(path_, truncated);
    ExpectBothReadersReject(StatusCode::kIOError);
  }
}

TEST_F(SnapshotCorruption, ImplausibleNodeCountsRejected) {
  // A crafted header with num_users near INT64_MAX must be rejected up
  // front — count arithmetic (`num_users + 1`) and offset indexing would
  // otherwise overflow / read out of bounds.
  for (int64_t count :
       {std::numeric_limits<int64_t>::max(),
        std::numeric_limits<int64_t>::max() - 1,
        static_cast<int64_t>(bytes_.size())}) {
    std::vector<char> patched = bytes_;
    storage::SnapshotHeader header;
    std::memcpy(&header, patched.data(), sizeof(header));
    header.num_users = count;
    std::memcpy(patched.data(), &header, sizeof(header));
    WriteAll(path_, patched);
    ExpectBothReadersReject(StatusCode::kIOError);
  }
}

TEST_F(SnapshotCorruption, SectionPastEndOfFile) {
  // Point the first section beyond the file (keep header.file_size
  // honest so only the section bound trips).
  storage::SectionEntry entry;
  char* table = bytes_.data() + sizeof(storage::SnapshotHeader);
  std::memcpy(&entry, table, sizeof(entry));
  entry.offset = (bytes_.size() + 63) & ~uint64_t{63};
  std::memcpy(table, &entry, sizeof(entry));
  WriteAll(path_, bytes_);
  ExpectBothReadersReject(StatusCode::kIOError);
}

TEST_F(SnapshotCorruption, OutOfRangeNeighborId) {
  // A merchant id >= num_merchants in the user rows: structural
  // validation must reject it before any consumer can index with it.
  const uint64_t off =
      SectionOffset(bytes_, storage::SectionId::kUserNeighbors);
  const uint32_t bogus = 1u << 30;
  std::memcpy(bytes_.data() + off, &bogus, sizeof(bogus));
  WriteAll(path_, bytes_);
  auto streamed = storage::LoadCsrGraphSnapshot(path_);
  ASSERT_FALSE(streamed.ok());
  auto mapped = storage::MappedCsrGraph::Open(path_);
  ASSERT_FALSE(mapped.ok());
}

TEST_F(SnapshotCorruption, InconsistentMerchantEdgeIds) {
  // Swap two merchant edge-id slots: rows stay sorted, but the
  // cross-reference to the user side breaks.
  const uint64_t off =
      SectionOffset(bytes_, storage::SectionId::kMerchantEdgeIds);
  int64_t a, b;
  std::memcpy(&a, bytes_.data() + off, sizeof(a));
  std::memcpy(&b, bytes_.data() + off + sizeof(a), sizeof(b));
  std::memcpy(bytes_.data() + off, &b, sizeof(b));
  std::memcpy(bytes_.data() + off + sizeof(a), &a, sizeof(a));
  WriteAll(path_, bytes_);
  auto mapped = storage::MappedCsrGraph::Open(path_);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kIOError);
}

TEST_F(SnapshotCorruption, FingerprintMismatchOnBitRot) {
  // Flip a weight: structurally still a valid graph (finite weight), so
  // only the fingerprint gate can catch it — and it must.
  const uint64_t off = SectionOffset(bytes_, storage::SectionId::kWeights);
  double w;
  std::memcpy(&w, bytes_.data() + off, sizeof(w));
  w += 0.5;
  std::memcpy(bytes_.data() + off, &w, sizeof(w));
  WriteAll(path_, bytes_);
  auto streamed = storage::LoadCsrGraphSnapshot(path_);
  ASSERT_FALSE(streamed.ok());
  EXPECT_EQ(streamed.status().code(), StatusCode::kIOError);
  EXPECT_NE(streamed.status().message().find("fingerprint"),
            std::string::npos);
  auto mapped = storage::MappedCsrGraph::Open(path_);
  ASSERT_TRUE(mapped.ok());  // structure is fine...
  EXPECT_FALSE(mapped->VerifyFingerprint().ok());  // ...content is not
}

TEST_F(SnapshotCorruption, NonFiniteWeightRejected) {
  const uint64_t off = SectionOffset(bytes_, storage::SectionId::kWeights);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::memcpy(bytes_.data() + off, &nan, sizeof(nan));
  WriteAll(path_, bytes_);
  ExpectBothReadersReject(StatusCode::kIOError);
}

// --------------------------------------------------------------------------
// Detection parity: a write -> mmap -> detect pipeline must be bit-exact
// against detection over the TSV-era in-memory graph, for every sampling
// method (the ISSUE-5 acceptance invariant).
// --------------------------------------------------------------------------

TEST(SnapshotDetectionParity, MmapLoadedDetectionIsBitExact) {
  auto dataset = GenerateJdPreset(JdPreset::kDataset1, 0.004, 7);
  ASSERT_TRUE(dataset.ok());
  const CsrGraph csr = CsrGraph::FromBipartite(dataset->graph);
  const std::string path = TempPath("parity.efg");
  ASSERT_TRUE(storage::WriteCsrGraphSnapshot(csr, path).ok());
  auto mapped = storage::MappedCsrGraph::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_TRUE(mapped->VerifyFingerprint().ok());

  for (SampleMethod method :
       {SampleMethod::kRandomEdge, SampleMethod::kOneSideUser,
        SampleMethod::kOneSideMerchant, SampleMethod::kTwoSide}) {
    EnsemFDetConfig config;
    config.method = method;
    config.num_samples = 8;
    config.ratio = 0.2;
    config.seed = 42;
    EnsemFDet detector(config);
    auto memory = detector.Run(csr, nullptr);
    ASSERT_TRUE(memory.ok());
    auto snapshot = detector.Run(mapped->graph(), nullptr);
    ASSERT_TRUE(snapshot.ok());

    ASSERT_EQ(memory->votes.all_user_votes().size(),
              snapshot->votes.all_user_votes().size());
    EXPECT_TRUE(std::equal(memory->votes.all_user_votes().begin(),
                           memory->votes.all_user_votes().end(),
                           snapshot->votes.all_user_votes().begin()))
        << "method " << static_cast<int>(method);
    EXPECT_TRUE(std::equal(memory->votes.all_merchant_votes().begin(),
                           memory->votes.all_merchant_votes().end(),
                           snapshot->votes.all_merchant_votes().begin()));
    EXPECT_EQ(memory->weighted_user_votes, snapshot->weighted_user_votes);
    EXPECT_EQ(memory->weighted_merchant_votes,
              snapshot->weighted_merchant_votes);
    ASSERT_EQ(memory->members.size(), snapshot->members.size());
    for (size_t i = 0; i < memory->members.size(); ++i) {
      EXPECT_EQ(memory->members[i].sample_edges,
                snapshot->members[i].sample_edges);
      EXPECT_EQ(memory->members[i].num_blocks,
                snapshot->members[i].num_blocks);
    }
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace ensemfdet
