#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace ensemfdet {
namespace {

TEST(SplitMix64Test, DeterministicAndMixing) {
  uint64_t s1 = 1, s2 = 1;
  EXPECT_EQ(SplitMix64(&s1), SplitMix64(&s2));
  uint64_t s3 = 2;
  EXPECT_NE(SplitMix64(&s1), SplitMix64(&s3));
}

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextUint64() == b.NextUint64());
  EXPECT_LE(same, 1);
}

TEST(RngTest, ZeroSeedWorks) {
  Rng r(0);
  // Must not be the degenerate all-zero xoshiro state.
  uint64_t x = r.NextUint64();
  uint64_t y = r.NextUint64();
  EXPECT_FALSE(x == 0 && y == 0);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng r(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.NextBounded(bound), bound);
  }
}

TEST(RngTest, NextBoundedOneAlwaysZero) {
  Rng r(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(r.NextBounded(1), 0u);
}

TEST(RngTest, NextBoundedRoughlyUniform) {
  Rng r(99);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[r.NextBounded(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.10);
  }
}

TEST(RngTest, NextDoubleInHalfOpenUnitInterval) {
  Rng r(5);
  for (int i = 0; i < 10000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng r(6);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += r.NextDouble();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(RngTest, BernoulliExtremes) {
  Rng r(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.NextBernoulli(0.0));
    EXPECT_TRUE(r.NextBernoulli(1.0));
    EXPECT_FALSE(r.NextBernoulli(-0.5));
    EXPECT_TRUE(r.NextBernoulli(1.5));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng r(9);
  constexpr int kDraws = 100000;
  int hits = 0;
  for (int i = 0; i < kDraws; ++i) hits += r.NextBernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng r(10);
  constexpr int kDraws = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    double g = r.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.02);
}

TEST(RngTest, SplitChildrenIndependentOfDrawOrder) {
  Rng parent(42);
  Rng c0a = parent.Split(0);
  parent.NextUint64();  // consuming parent output must not affect children
  Rng c0b = Rng(42).Split(0);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(c0a.NextUint64(), c0b.NextUint64());
}

TEST(RngTest, SplitDistinctIndicesDistinctStreams) {
  Rng parent(42);
  Rng a = parent.Split(0);
  Rng b = parent.Split(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextUint64() == b.NextUint64());
  EXPECT_LE(same, 1);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng r(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> original = v;
  r.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng r(12);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  r.Shuffle(&v);
  bool any_moved = false;
  for (int i = 0; i < 100; ++i) any_moved |= (v[i] != i);
  EXPECT_TRUE(any_moved);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng r(13);
  std::vector<int> empty;
  r.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{5};
  r.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{5});
}

TEST(SampleWithoutReplacementTest, ExactCountAndDistinct) {
  Rng r(14);
  auto sample = r.SampleWithoutReplacement(1000, 100);
  EXPECT_EQ(sample.size(), 100u);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 100u);
  for (uint64_t x : sample) EXPECT_LT(x, 1000u);
}

TEST(SampleWithoutReplacementTest, FullPopulationIsPermutation) {
  Rng r(15);
  auto sample = r.SampleWithoutReplacement(50, 50);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 50u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 49u);
}

TEST(SampleWithoutReplacementTest, ZeroSample) {
  Rng r(16);
  EXPECT_TRUE(r.SampleWithoutReplacement(10, 0).empty());
}

TEST(SampleWithoutReplacementTest, UniformInclusion) {
  // Each item of [0, 20) should appear in a 10-of-20 sample about half the
  // time.
  constexpr int kTrials = 20000;
  std::vector<int> counts(20, 0);
  Rng r(17);
  for (int t = 0; t < kTrials; ++t) {
    for (uint64_t x : r.SampleWithoutReplacement(20, 10)) ++counts[x];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kTrials, 0.5, 0.03);
  }
}

TEST(SampleWithoutReplacementDeathTest, RejectsOversizedSample) {
  Rng r(18);
  EXPECT_DEATH((void)r.SampleWithoutReplacement(5, 6), "sample size");
}

}  // namespace
}  // namespace ensemfdet
