// Property/fuzz coverage of the WAL reader and writer recovery paths:
// hundreds of deterministic random mutations of a valid log — bit flips
// (headers and payloads alike), truncations, garbage extension, zeroed
// ranges, duplicated and deleted segments — must ALWAYS yield a clean
// Status from both ReplayWal and WalWriter::Open, never UB. CI runs this
// file under ASan+UBSan (the sanitizer matrix), which is the real gate:
// any out-of-bounds read on crafted lengths or offsets fails the build.
//
// When a mutated log still replays OK, the delivered records must also
// be structurally sound: a strictly +1-increasing seq chain past
// after_seq, every payload within the format cap.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/crc32c.h"
#include "common/rng.h"
#include "storage/wal_format.h"
#include "storage/wal_reader.h"
#include "storage/wal_writer.h"

namespace ensemfdet {
namespace {

namespace fs = std::filesystem;
using storage::ReplayWal;
using storage::WalRecordView;
using storage::WalWriter;
using storage::WalWriterOptions;

std::string TempDir(const std::string& name) {
  const std::string dir =
      (fs::temp_directory_path() / ("ensemfdet_wal_fuzz_" + name)).string();
  std::error_code ec;
  fs::remove_all(dir, ec);
  return dir;
}

/// Builds a small multi-segment log with varied payload sizes.
void BuildLog(const std::string& dir) {
  WalWriterOptions options;
  options.fsync = storage::WalFsyncPolicy::kNone;
  options.segment_bytes = 512;
  auto writer = WalWriter::Open(dir, options);
  ASSERT_TRUE(writer.ok());
  Rng rng(99);
  for (uint64_t i = 1; i <= 40; ++i) {
    std::vector<std::byte> payload(rng.NextBounded(50));
    for (std::byte& b : payload) {
      b = static_cast<std::byte>(rng.NextBounded(256));
    }
    ASSERT_TRUE(writer
                    ->Append(payload.data(), payload.size(),
                             static_cast<int64_t>(i))
                    .ok());
  }
  ASSERT_TRUE(writer->Close().ok());
}

std::vector<std::string> ListFiles(const std::string& dir) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// One random structural mutation of the log directory.
void Mutate(const std::string& dir, Rng& rng) {
  std::vector<std::string> files = ListFiles(dir);
  if (files.empty()) return;
  const std::string& target =
      files[static_cast<size_t>(rng.NextBounded(files.size()))];
  std::error_code ec;
  const uint64_t size = fs::file_size(target, ec);
  if (ec) return;
  switch (rng.NextBounded(6)) {
    case 0: {  // flip a random byte (headers are small, so bias early)
      if (size == 0) return;
      const uint64_t offset = rng.NextBounded(2) == 0
                                  ? rng.NextBounded(std::min<uint64_t>(
                                        size, 96))
                                  : rng.NextBounded(size);
      std::fstream f(target,
                     std::ios::binary | std::ios::in | std::ios::out);
      f.seekg(static_cast<std::streamoff>(offset));
      char byte = 0;
      f.read(&byte, 1);
      byte = static_cast<char>(byte ^
                               (1 << rng.NextBounded(8)));
      f.seekp(static_cast<std::streamoff>(offset));
      f.write(&byte, 1);
      break;
    }
    case 1:  // truncate to a random size
      fs::resize_file(target, rng.NextBounded(size + 1), ec);
      break;
    case 2: {  // extend with random garbage
      std::ofstream f(target, std::ios::binary | std::ios::app);
      const uint64_t n = 1 + rng.NextBounded(64);
      for (uint64_t i = 0; i < n; ++i) {
        const char b = static_cast<char>(rng.NextBounded(256));
        f.write(&b, 1);
      }
      break;
    }
    case 3: {  // zero a random range
      if (size == 0) return;
      const uint64_t start = rng.NextBounded(size);
      const uint64_t len =
          1 + rng.NextBounded(std::min<uint64_t>(size - start, 64));
      std::fstream f(target,
                     std::ios::binary | std::ios::in | std::ios::out);
      f.seekp(static_cast<std::streamoff>(start));
      const std::string zeros(static_cast<size_t>(len), '\0');
      f.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));
      break;
    }
    case 4: {  // duplicate the file under another valid segment name
      const std::string copy =
          dir + "/" +
          storage::WalSegmentFileName(1 + rng.NextBounded(80));
      fs::copy_file(target, copy, fs::copy_options::overwrite_existing,
                    ec);
      break;
    }
    case 5:  // delete the file
      fs::remove(target, ec);
      break;
  }
}

TEST(WalFuzz, RandomMutationsAlwaysYieldCleanStatuses) {
  const std::string pristine = TempDir("pristine");
  BuildLog(pristine);
  const std::string dir = TempDir("mutated");
  Rng rng(4242);

  for (int iteration = 0; iteration < 250; ++iteration) {
    std::error_code ec;
    fs::remove_all(dir, ec);
    fs::create_directories(dir, ec);
    fs::copy(pristine, dir, fs::copy_options::recursive, ec);
    ASSERT_FALSE(ec);
    const uint64_t mutations = 1 + rng.NextBounded(3);
    for (uint64_t m = 0; m < mutations; ++m) Mutate(dir, rng);

    // Replay: OK or a clean error. Delivered records must chain +1 from
    // the first one delivered (the head may legitimately be gone — a
    // checkpoint-truncated shape ReplayWal rejects only after the scan).
    const uint64_t after = rng.NextBounded(5);
    uint64_t expected = 0;
    auto stats = ReplayWal(dir, after, [&](const WalRecordView& record)
                                           -> Status {
      if (expected != 0) {
        EXPECT_EQ(record.seq, expected) << "iteration " << iteration;
      }
      EXPECT_GT(record.seq, after) << "iteration " << iteration;
      EXPECT_LE(record.payload.size(), storage::kWalMaxPayloadBytes);
      // Touch every payload byte: ASan proves the span is in bounds.
      uint64_t checksum = 0;
      for (std::byte b : record.payload) {
        checksum += static_cast<uint64_t>(b);
      }
      (void)checksum;
      expected = record.seq + 1;
      return Status::OK();
    });
    if (!stats.ok()) {
      EXPECT_FALSE(stats.status().ToString().empty());
    }

    // The writer's recovery path must be equally clean; when it opens,
    // appending must produce a log the reader accepts end to end.
    auto writer = WalWriter::Open(dir, {});
    if (writer.ok()) {
      const char probe[3] = {1, 2, 3};
      auto seq = writer->Append(probe, sizeof(probe), 7);
      EXPECT_TRUE(seq.ok()) << "iteration " << iteration << ": "
                            << seq.status().ToString();
      EXPECT_TRUE(writer->Close().ok()) << "iteration " << iteration;
      if (seq.ok()) {
        // Resume from the log's own head: mutations may have removed
        // leading segments (a legal checkpoint-truncated shape), so
        // after_seq = first surviving first_seq - 1.
        auto post = storage::ScanWalDir(dir);
        ASSERT_TRUE(post.ok()) << "iteration " << iteration;
        ASSERT_FALSE(post->segments.empty()) << "iteration " << iteration;
        const uint64_t head = post->segments.front().first_seq - 1;
        auto reread = ReplayWal(
            dir, head, [](const WalRecordView&) { return Status::OK(); });
        EXPECT_TRUE(reread.ok())
            << "iteration " << iteration
            << ": a repaired log must replay cleanly: "
            << reread.status().ToString();
        if (reread.ok()) {
          EXPECT_EQ(reread->last_seq, *seq) << "iteration " << iteration;
          EXPECT_FALSE(reread->tail_truncated)
              << "iteration " << iteration;
        }
      }
    } else {
      EXPECT_FALSE(writer.status().ToString().empty());
    }
  }
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::remove_all(pristine, ec);
}

// Crafted frames the generic mutator would rarely hit: a CRC-valid
// record header whose payload_length lies above the format cap must be
// IOError (corrupt history), not an allocation attempt.
TEST(WalFuzz, CraftedOversizedLengthIsRejectedCleanly) {
  const std::string dir = TempDir("crafted");
  {
    WalWriterOptions options;
    options.fsync = storage::WalFsyncPolicy::kNone;
    auto writer = WalWriter::Open(dir, options);
    ASSERT_TRUE(writer.ok());
    const char payload[8] = {};
    ASSERT_TRUE(writer->Append(payload, sizeof(payload), 1).ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  auto state = storage::ScanWalDir(dir);
  ASSERT_TRUE(state.ok());
  const std::string segment = state->segments.back().path;

  // Forge a CRC-valid header claiming an absurd payload length.
  storage::WalRecordHeader header;
  header.payload_length = 0x7FFFFFFF;  // far above kWalMaxPayloadBytes
  header.payload_crc = 0;
  header.seq = 2;
  header.timestamp = 2;
  header.header_crc = Crc32cMask(
      Crc32c(&header, sizeof(header) - sizeof(uint32_t)));
  {
    std::ofstream f(segment, std::ios::binary | std::ios::app);
    f.write(reinterpret_cast<const char*>(&header), sizeof(header));
  }
  auto stats =
      ReplayWal(dir, 0, [](const WalRecordView&) { return Status::OK(); });
  EXPECT_EQ(stats.status().code(), StatusCode::kIOError);
  EXPECT_EQ(WalWriter::Open(dir, {}).status().code(),
            StatusCode::kIOError);
  std::error_code ec;
  fs::remove_all(dir, ec);
}

}  // namespace
}  // namespace ensemfdet
