// Tests for component-partitioned FDET.
#include "detect/partitioned_fdet.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/graph_builder.h"

namespace ensemfdet {
namespace {

// Two disconnected islands: a dense 8×3 block and a dense 5×3 block, plus
// a scattering of 2-edge debris components.
BipartiteGraph IslandsGraph() {
  GraphBuilder b(60, 30);
  for (UserId u = 0; u < 8; ++u) {
    for (MerchantId v = 0; v < 3; ++v) b.AddEdge(u, v);
  }
  for (UserId u = 8; u < 13; ++u) {
    for (MerchantId v = 3; v < 6; ++v) b.AddEdge(u, v);
  }
  // Debris: disjoint 2-edge paths.
  for (int i = 0; i < 10; ++i) {
    const UserId u = static_cast<UserId>(13 + 2 * i);
    const MerchantId v = static_cast<MerchantId>(6 + 2 * i);
    b.AddEdge(u, v);
    b.AddEdge(u + 1, v);
  }
  return b.Build().ValueOrDie();
}

TEST(PartitionedFdetTest, RejectsBadConfig) {
  auto g = IslandsGraph();
  PartitionedFdetConfig cfg;
  cfg.min_component_edges = 0;
  EXPECT_FALSE(RunPartitionedFdet(g, cfg).ok());
  cfg.min_component_edges = 1;
  cfg.fdet.max_blocks = 0;
  EXPECT_FALSE(RunPartitionedFdet(g, cfg).ok());
}

TEST(PartitionedFdetTest, FindsBlocksInBothIslands) {
  auto g = IslandsGraph();
  PartitionedFdetConfig cfg;
  cfg.fdet.policy = TruncationPolicy::kFixedK;
  cfg.fdet.fixed_k = 4;
  auto r = RunPartitionedFdet(g, cfg).ValueOrDie();
  ASSERT_GE(r.blocks.size(), 2u);
  // First two blocks are the islands, descending φ, in parent ids.
  std::set<UserId> first(r.blocks[0].users.begin(), r.blocks[0].users.end());
  std::set<UserId> second(r.blocks[1].users.begin(),
                          r.blocks[1].users.end());
  const bool big_first = first.count(0) > 0;
  const std::set<UserId>& big = big_first ? first : second;
  const std::set<UserId>& small = big_first ? second : first;
  for (UserId u = 0; u < 8; ++u) EXPECT_TRUE(big.count(u));
  for (UserId u = 8; u < 13; ++u) EXPECT_TRUE(small.count(u));
}

TEST(PartitionedFdetTest, ScoresDescendAcrossMergedBlocks) {
  auto g = IslandsGraph();
  PartitionedFdetConfig cfg;
  cfg.fdet.policy = TruncationPolicy::kFixedK;
  cfg.fdet.fixed_k = 10;
  auto r = RunPartitionedFdet(g, cfg).ValueOrDie();
  for (size_t i = 1; i < r.all_scores.size(); ++i) {
    EXPECT_LE(r.all_scores[i], r.all_scores[i - 1] + 1e-12);
  }
}

TEST(PartitionedFdetTest, MinComponentEdgesPrunesDebris) {
  auto g = IslandsGraph();
  PartitionedFdetConfig cfg;
  cfg.fdet.policy = TruncationPolicy::kFixedK;
  cfg.fdet.fixed_k = 40;
  cfg.min_component_edges = 5;  // debris paths have 2 edges
  auto r = RunPartitionedFdet(g, cfg).ValueOrDie();
  for (const DetectedBlock& blk : r.blocks) {
    for (UserId u : blk.users) {
      EXPECT_LT(u, 13u) << "debris user detected despite pruning";
    }
  }
}

TEST(PartitionedFdetTest, BlockEdgesValidInParentIdSpace) {
  auto g = IslandsGraph();
  PartitionedFdetConfig cfg;
  cfg.fdet.policy = TruncationPolicy::kFixedK;
  cfg.fdet.fixed_k = 6;
  auto r = RunPartitionedFdet(g, cfg).ValueOrDie();
  std::set<EdgeId> claimed;
  for (const DetectedBlock& blk : r.blocks) {
    EXPECT_FALSE(blk.edges.empty());
    std::set<UserId> users(blk.users.begin(), blk.users.end());
    std::set<MerchantId> merchants(blk.merchants.begin(),
                                   blk.merchants.end());
    for (EdgeId e : blk.edges) {
      ASSERT_GE(e, 0);
      ASSERT_LT(e, g.num_edges());
      EXPECT_TRUE(claimed.insert(e).second);
      EXPECT_TRUE(users.count(g.edge(e).user));
      EXPECT_TRUE(merchants.count(g.edge(e).merchant));
    }
  }
}

TEST(PartitionedFdetTest, ParallelMatchesSequential) {
  auto g = IslandsGraph();
  PartitionedFdetConfig cfg;
  cfg.fdet.policy = TruncationPolicy::kFixedK;
  cfg.fdet.fixed_k = 8;
  ThreadPool pool(4);
  auto seq = RunPartitionedFdet(g, cfg, nullptr).ValueOrDie();
  auto par = RunPartitionedFdet(g, cfg, &pool).ValueOrDie();
  ASSERT_EQ(seq.blocks.size(), par.blocks.size());
  for (size_t i = 0; i < seq.blocks.size(); ++i) {
    EXPECT_EQ(seq.blocks[i].users, par.blocks[i].users);
    EXPECT_DOUBLE_EQ(seq.blocks[i].score, par.blocks[i].score);
  }
}

TEST(PartitionedFdetTest, SeparatesIslandsThatGlobalGreedyMerges) {
  // The global greedy interleaves its peeling across components, so its
  // best prefix can be the UNION of two equal-ish-density islands; the
  // partitioned variant searches each island alone and must return them
  // as separate, individually denser blocks — a genuine quality advantage
  // of partitioning, not just a speedup.
  auto g = IslandsGraph();
  FdetConfig base_cfg;
  base_cfg.policy = TruncationPolicy::kFixedK;
  base_cfg.fixed_k = 2;
  auto global = RunFdet(g, base_cfg).ValueOrDie();

  PartitionedFdetConfig part_cfg;
  part_cfg.fdet = base_cfg;
  auto partitioned = RunPartitionedFdet(g, part_cfg).ValueOrDie();

  ASSERT_EQ(partitioned.blocks.size(), 2u);
  // Partitioned blocks are pure: each is exactly one island.
  EXPECT_EQ(partitioned.blocks[0].users,
            (std::vector<UserId>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(partitioned.blocks[1].users,
            (std::vector<UserId>{8, 9, 10, 11, 12}));

  // Each partitioned block is at least as dense as any global block that
  // contains it (the union can only dilute φ).
  ASSERT_FALSE(global.blocks.empty());
  EXPECT_GE(partitioned.blocks[0].score, global.blocks[0].score - 1e-12);

  // Both searches flag the same island users overall.
  std::set<UserId> global_users, part_users;
  for (const auto& blk : global.blocks) {
    for (UserId u : blk.users) {
      if (u < 13) global_users.insert(u);
    }
  }
  for (const auto& blk : partitioned.blocks) {
    part_users.insert(blk.users.begin(), blk.users.end());
  }
  EXPECT_EQ(part_users.size(), 13u);
  EXPECT_TRUE(std::includes(part_users.begin(), part_users.end(),
                            global_users.begin(), global_users.end()));
}

TEST(PartitionedFdetTest, EmptyGraph) {
  GraphBuilder b(4, 4);
  auto g = b.Build().ValueOrDie();
  auto r = RunPartitionedFdet(g, {}).ValueOrDie();
  EXPECT_TRUE(r.blocks.empty());
  EXPECT_EQ(r.truncation_index, 0);
}

TEST(PartitionedFdetTest, AutoTruncationAppliesGlobally) {
  auto g = IslandsGraph();
  PartitionedFdetConfig cfg;  // auto elbow
  cfg.fdet.max_blocks = 10;
  auto r = RunPartitionedFdet(g, cfg).ValueOrDie();
  EXPECT_EQ(r.truncation_index, static_cast<int>(r.blocks.size()));
  EXPECT_LE(r.blocks.size(), r.all_scores.size());
  // The two dense islands must survive truncation.
  std::set<UserId> detected;
  for (const auto& blk : r.blocks) {
    detected.insert(blk.users.begin(), blk.users.end());
  }
  for (UserId u = 0; u < 13; ++u) EXPECT_TRUE(detected.count(u));
}

}  // namespace
}  // namespace ensemfdet
