// Validates Equation 3 and Lemma 1 of the paper, both in closed form and
// empirically against the actual samplers.
#include "sampling/sampling_theory.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/graph_builder.h"
#include "graph/graph_stats.h"
#include "sampling/sampler.h"

namespace ensemfdet {
namespace {

TEST(InclusionProbabilityTest, NodeSamplingConstantInDegree) {
  EXPECT_DOUBLE_EQ(NodeSampleInclusionProbability(0.3), 0.3);
  EXPECT_DOUBLE_EQ(NodeSampleInclusionProbability(0.0), 0.0);
  EXPECT_DOUBLE_EQ(NodeSampleInclusionProbability(1.0), 1.0);
}

TEST(InclusionProbabilityTest, EdgeSamplingGrowsWithDegree) {
  const double pe = 0.1;
  double prev = EdgeSampleInclusionProbability(pe, 0);
  EXPECT_DOUBLE_EQ(prev, 0.0);
  for (int64_t q = 1; q <= 50; ++q) {
    double cur = EdgeSampleInclusionProbability(pe, q);
    EXPECT_GT(cur, prev);
    EXPECT_LE(cur, 1.0);
    prev = cur;
  }
}

TEST(InclusionProbabilityTest, EdgeSamplingClosedForm) {
  EXPECT_NEAR(EdgeSampleInclusionProbability(0.5, 1), 0.5, 1e-12);
  EXPECT_NEAR(EdgeSampleInclusionProbability(0.5, 2), 0.75, 1e-12);
  EXPECT_NEAR(EdgeSampleInclusionProbability(0.2, 3),
              1.0 - 0.8 * 0.8 * 0.8, 1e-12);
}

TEST(ExpectedCountsTest, NsScalesHistogramUniformly) {
  std::vector<int64_t> hist{0, 10, 5, 2};
  auto e = ExpectedSampledDegreeCountsNS(hist, 0.4);
  ASSERT_EQ(e.size(), 4u);
  EXPECT_DOUBLE_EQ(e[1], 4.0);
  EXPECT_DOUBLE_EQ(e[2], 2.0);
  EXPECT_DOUBLE_EQ(e[3], 0.8);
}

TEST(ExpectedCountsTest, EsWeightsHighDegreesMore) {
  std::vector<int64_t> hist{0, 100, 100, 100};
  auto e = ExpectedSampledDegreeCountsES(hist, 0.3);
  // Same node count per degree, so expected counts must increase in q.
  EXPECT_LT(e[1], e[2]);
  EXPECT_LT(e[2], e[3]);
}

TEST(LemmaOneTest, CrossoverFormula) {
  const double pv = 0.1, pe = 0.1;
  // Equal probabilities → crossover at q = 1.
  EXPECT_NEAR(LemmaOneCrossoverDegree(pv, pe), 1.0, 1e-12);
}

TEST(LemmaOneTest, EsBeatsNsAboveCrossoverExactly) {
  const double pv = 0.3, pe = 0.05;
  const double crossover = LemmaOneCrossoverDegree(pv, pe);
  std::vector<int64_t> hist(60, 1000);
  auto ens = ExpectedSampledDegreeCountsNS(hist, pv);
  auto ees = ExpectedSampledDegreeCountsES(hist, pe);
  for (int64_t q = 1; q < 60; ++q) {
    if (static_cast<double>(q) > crossover + 1e-9) {
      EXPECT_GT(ees[static_cast<size_t>(q)], ens[static_cast<size_t>(q)])
          << "q=" << q << " crossover=" << crossover;
    } else if (static_cast<double>(q) < crossover - 1e-9) {
      EXPECT_LT(ees[static_cast<size_t>(q)], ens[static_cast<size_t>(q)])
          << "q=" << q;
    }
  }
}

// Empirical check of Lemma 1 on a graph with both low- and high-degree
// users: RES includes high-degree users more often than ONS at matched
// ratios, and less often for degree-1 users when the crossover exceeds 1.
TEST(LemmaOneTest, EmpiricalRatesMatchTheory) {
  // 30 "heavy" users of degree 20, 300 "light" users of degree 1.
  const int kHeavy = 30, kLight = 300;
  GraphBuilder b(kHeavy + kLight, 40);
  Rng build_rng(3);
  for (UserId u = 0; u < kHeavy; ++u) {
    auto picks = build_rng.SampleWithoutReplacement(40, 20);
    for (uint64_t v : picks) b.AddEdge(u, static_cast<MerchantId>(v));
  }
  for (UserId u = kHeavy; u < kHeavy + kLight; ++u) {
    b.AddEdge(u, static_cast<MerchantId>(build_rng.NextBounded(40)));
  }
  auto g = b.Build().ValueOrDie();

  const double ratio = 0.1;
  auto res = MakeSampler(SampleMethod::kRandomEdge, ratio).ValueOrDie();
  auto ons = MakeSampler(SampleMethod::kOneSideUser, ratio).ValueOrDie();

  constexpr int kTrials = 150;
  double res_heavy = 0, ons_heavy = 0, res_light = 0, ons_light = 0;
  for (int t = 0; t < kTrials; ++t) {
    Rng r1(1000 + static_cast<uint64_t>(t));
    Rng r2(5000 + static_cast<uint64_t>(t));
    SubgraphView vres = res->Sample(g, &r1);
    SubgraphView vons = ons->Sample(g, &r2);
    for (UserId pu : vres.user_map) {
      (pu < kHeavy ? res_heavy : res_light) += 1.0;
    }
    for (UserId pu : vons.user_map) {
      (pu < kHeavy ? ons_heavy : ons_light) += 1.0;
    }
  }
  // Heavy (q=20): P_ES = 1-(1-pe)^20 with pe≈0.1 → ≈0.88 ≫ P_NS = 0.1.
  EXPECT_GT(res_heavy / (kTrials * kHeavy), 0.75);
  EXPECT_NEAR(ons_heavy / (kTrials * kHeavy), 0.1, 0.05);
  // Light (q=1): P_ES ≈ pe ≈ P_NS — rates comparable.
  EXPECT_NEAR(res_light / (kTrials * kLight), 0.1, 0.05);
  EXPECT_NEAR(ons_light / (kTrials * kLight), 0.1, 0.05);
}

TEST(LemmaOneDeathTest, RejectsDegenerateProbabilities) {
  EXPECT_DEATH((void)LemmaOneCrossoverDegree(0.0, 0.1), "Check failed");
  EXPECT_DEATH((void)LemmaOneCrossoverDegree(0.1, 1.0), "Check failed");
}

}  // namespace
}  // namespace ensemfdet
