#include "common/status.h"

#include <string>

#include <gtest/gtest.h>

namespace ensemfdet {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactoryMatchesDefault) {
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::OutOfRange("b"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::NotFound("c"), StatusCode::kNotFound, "NotFound"},
      {Status::AlreadyExists("d"), StatusCode::kAlreadyExists,
       "AlreadyExists"},
      {Status::IOError("e"), StatusCode::kIOError, "IOError"},
      {Status::FailedPrecondition("f"), StatusCode::kFailedPrecondition,
       "FailedPrecondition"},
      {Status::NotImplemented("g"), StatusCode::kNotImplemented,
       "NotImplemented"},
      {Status::Internal("h"), StatusCode::kInternal, "Internal"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(c.status.ToString(),
              std::string(c.name) + ": " + c.status.message());
  }
}

TEST(StatusTest, MessagePreserved) {
  Status s = Status::IOError("file vanished");
  EXPECT_EQ(s.message(), "file vanished");
  EXPECT_EQ(s.ToString(), "IOError: file vanished");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "IOError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, MovesValueOut) {
  Result<std::string> r(std::string("payload"));
  std::string taken = std::move(r).value();
  EXPECT_EQ(taken, "payload");
}

TEST(ResultTest, ValueOrDieReturnsValue) {
  Result<std::string> r(std::string("ok"));
  EXPECT_EQ(r.ValueOrDie(), "ok");
}

TEST(ResultTest, ConstructingFromOkStatusBecomesInternalError) {
  Result<int> r{Status::OK()};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, ArrowOperatorReachesMembers) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, MutableAccess) {
  Result<std::vector<int>> r(std::vector<int>{1, 2});
  r->push_back(3);
  EXPECT_EQ(r.value().size(), 3u);
}

Status FailingOperation() { return Status::IOError("disk"); }
Status PassingOperation() { return Status::OK(); }

Status UseReturnNotOk(bool fail) {
  ENSEMFDET_RETURN_NOT_OK(fail ? FailingOperation() : PassingOperation());
  return Status::AlreadyExists("reached end");
}

TEST(MacrosTest, ReturnNotOkPropagates) {
  EXPECT_EQ(UseReturnNotOk(true).code(), StatusCode::kIOError);
  EXPECT_EQ(UseReturnNotOk(false).code(), StatusCode::kAlreadyExists);
}

Result<int> ProduceInt(bool fail) {
  if (fail) return Status::OutOfRange("bad");
  return 7;
}

Status UseAssignOrReturn(bool fail, int* out) {
  ENSEMFDET_ASSIGN_OR_RETURN(int v, ProduceInt(fail));
  *out = v;
  return Status::OK();
}

TEST(MacrosTest, AssignOrReturnBindsValue) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(false, &out).ok());
  EXPECT_EQ(out, 7);
}

TEST(MacrosTest, AssignOrReturnPropagatesError) {
  int out = 0;
  Status s = UseAssignOrReturn(true, &out);
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(out, 0);
}

TEST(ResultDeathTest, ValueOrDieAbortsOnError) {
  Result<int> r(Status::Internal("boom"));
  EXPECT_DEATH({ (void)r.ValueOrDie(); }, "boom");
}

}  // namespace
}  // namespace ensemfdet
