// Tests for the sliding-window streaming detector.
#include "stream/windowed_detector.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ensemfdet {
namespace {

WindowedDetectorConfig SmallStreamConfig() {
  WindowedDetectorConfig cfg;
  cfg.num_users = 100;
  cfg.num_merchants = 40;
  cfg.window = 100;
  cfg.detection_interval = 50;
  cfg.ensemble.num_samples = 6;
  cfg.ensemble.ratio = 0.4;
  cfg.ensemble.seed = 5;
  cfg.ensemble.fdet.max_blocks = 6;
  return cfg;
}

TEST(WindowedDetectorTest, RejectsOutOfRangeIds) {
  WindowedDetector detector(SmallStreamConfig());
  auto bad_user = detector.Ingest({0, 1000, 0});
  EXPECT_FALSE(bad_user.ok());
  auto bad_merchant = detector.Ingest({0, 0, 1000});
  EXPECT_FALSE(bad_merchant.ok());
}

TEST(WindowedDetectorTest, RejectsOutOfOrderTimestamps) {
  WindowedDetector detector(SmallStreamConfig());
  ASSERT_TRUE(detector.Ingest({10, 0, 0}).ok());
  auto result = detector.Ingest({5, 1, 1});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(WindowedDetectorTest, RejectsBadConfig) {
  auto cfg = SmallStreamConfig();
  cfg.window = 0;
  WindowedDetector detector(cfg);
  EXPECT_FALSE(detector.Ingest({0, 0, 0}).ok());
}

TEST(WindowedDetectorTest, EvictsExpiredEvents) {
  WindowedDetector detector(SmallStreamConfig());  // window = 100
  ASSERT_TRUE(detector.Ingest({0, 0, 0}).ok());
  ASSERT_TRUE(detector.Ingest({40, 1, 1}).ok());
  EXPECT_EQ(detector.window_size(), 2);
  ASSERT_TRUE(detector.Ingest({141, 2, 2}).ok());  // evicts t=0 and t=40
  EXPECT_EQ(detector.window_size(), 1);
  EXPECT_EQ(detector.newest_timestamp(), 141);
}

TEST(WindowedDetectorTest, EqualTimestampsAccepted) {
  WindowedDetector detector(SmallStreamConfig());
  ASSERT_TRUE(detector.Ingest({7, 0, 0}).ok());
  EXPECT_TRUE(detector.Ingest({7, 1, 1}).ok());
  EXPECT_EQ(detector.window_size(), 2);
}

TEST(WindowedDetectorTest, DetectionFiresOnInterval) {
  WindowedDetector detector(SmallStreamConfig());  // interval = 50
  auto r1 = detector.Ingest({0, 0, 0});
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(r1->has_value());  // clock starts, no detection yet
  auto r2 = detector.Ingest({30, 1, 1});
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2->has_value());  // 30 < 50
  auto r3 = detector.Ingest({55, 2, 2});
  ASSERT_TRUE(r3.ok());
  ASSERT_TRUE(r3->has_value());  // 55 >= 50 → detection
  EXPECT_EQ((*r3)->num_samples, 6);
  // Interval resets: next detection only after another 50.
  auto r4 = detector.Ingest({80, 3, 3});
  ASSERT_TRUE(r4.ok());
  EXPECT_FALSE(r4->has_value());
  auto r5 = detector.Ingest({106, 4, 4});
  ASSERT_TRUE(r5.ok());
  EXPECT_TRUE(r5->has_value());
}

TEST(WindowedDetectorTest, DetectNowCoversCurrentWindowOnly) {
  WindowedDetector detector(SmallStreamConfig());
  // A dense ring inside the window.
  int64_t t = 0;
  for (UserId u = 0; u < 8; ++u) {
    for (MerchantId v = 0; v < 3; ++v) {
      ASSERT_TRUE(detector.Ingest({t++, u, v}).ok());
    }
  }
  auto report = detector.DetectNow();
  ASSERT_TRUE(report.ok());
  // Ring users collect votes.
  int64_t ring_votes = 0;
  for (UserId u = 0; u < 8; ++u) ring_votes += report->votes.user_votes(u);
  EXPECT_GT(ring_votes, 0);
}

TEST(WindowedDetectorTest, OldFraudForgottenAfterWindowSlides) {
  auto cfg = SmallStreamConfig();
  cfg.window = 50;
  cfg.detection_interval = 1000000;  // only manual DetectNow
  WindowedDetector detector(cfg);
  // Dense ring at t=0..23.
  int64_t t = 0;
  for (UserId u = 0; u < 8; ++u) {
    for (MerchantId v = 0; v < 3; ++v) {
      ASSERT_TRUE(detector.Ingest({t++, u, v}).ok());
    }
  }
  // Quiet background far in the future pushes the ring out of the window.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(detector
                    .Ingest({500 + i, static_cast<UserId>(50 + i),
                             static_cast<MerchantId>(20 + (i % 5))})
                    .ok());
  }
  auto report = detector.DetectNow().ValueOrDie();
  for (UserId u = 0; u < 8; ++u) {
    EXPECT_EQ(report.votes.user_votes(u), 0)
        << "expired ring user still voted";
  }
}

TEST(WindowedDetectorTest, StreamingFindsInjectedBurst) {
  // Background trickle, then a burst ring; the post-burst detection must
  // rank ring users above background.
  auto cfg = SmallStreamConfig();
  cfg.window = 200;
  cfg.detection_interval = 100;
  cfg.ensemble.num_samples = 10;
  WindowedDetector detector(cfg);

  Rng rng(8);
  int64_t t = 0;
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(detector
                    .Ingest({t, static_cast<UserId>(20 + rng.NextBounded(80)),
                             static_cast<MerchantId>(10 + rng.NextBounded(30))})
                    .ok());
    t += 1;
  }
  // Burst: users 0-9 × merchants 0-2 in a tight interval.
  for (UserId u = 0; u < 10; ++u) {
    for (MerchantId v = 0; v < 3; ++v) {
      ASSERT_TRUE(detector.Ingest({t, u, v}).ok());
      t += 1;
    }
  }
  auto report = detector.DetectNow().ValueOrDie();
  double ring = 0.0, background = 0.0;
  for (UserId u = 0; u < 10; ++u) ring += report.votes.user_votes(u);
  for (UserId u = 20; u < 100; ++u) {
    background += report.votes.user_votes(u);
  }
  ring /= 10.0;
  background /= 80.0;
  EXPECT_GT(ring, background) << "burst ring should out-vote background";
}

// --- Reorder slack (max_out_of_order) --------------------------------------

TEST(WindowedDetectorTest, RejectsRegressionBeyondSlack) {
  auto cfg = SmallStreamConfig();
  cfg.max_out_of_order = 10;
  WindowedDetector detector(cfg);
  ASSERT_TRUE(detector.Ingest({100, 0, 0}).ok());
  EXPECT_TRUE(detector.Ingest({90, 1, 1}).ok());  // exactly at the slack
  auto too_old = detector.Ingest({89, 2, 2});
  ASSERT_FALSE(too_old.ok());
  EXPECT_EQ(too_old.status().code(), StatusCode::kFailedPrecondition);
}

TEST(WindowedDetectorTest, NegativeSlackRejected) {
  auto cfg = SmallStreamConfig();
  cfg.max_out_of_order = -1;
  WindowedDetector detector(cfg);
  EXPECT_FALSE(detector.Ingest({0, 0, 0}).ok());
}

TEST(WindowedDetectorTest, SlackBuffersUntilWatermarkPasses) {
  auto cfg = SmallStreamConfig();
  cfg.max_out_of_order = 20;
  WindowedDetector detector(cfg);
  ASSERT_TRUE(detector.Ingest({10, 0, 0}).ok());
  // Watermark is 10 - 20 < 0: nothing released yet.
  EXPECT_EQ(detector.window_size(), 0);
  EXPECT_EQ(detector.reorder_buffered(), 1);
  // Advance far enough that t=10 (and the late t=15) must release.
  ASSERT_TRUE(detector.Ingest({40, 1, 1}).ok());
  ASSERT_TRUE(detector.Ingest({35, 2, 2}).ok());  // late but inside slack
  ASSERT_TRUE(detector.Ingest({60, 3, 3}).ok());  // watermark → 40
  EXPECT_EQ(detector.window_size(), 3);           // 10, 35, 40 released
  EXPECT_EQ(detector.reorder_buffered(), 1);      // 60 still held
  // DetectNow flushes the buffer into the window first.
  ASSERT_TRUE(detector.DetectNow().ok());
  EXPECT_EQ(detector.window_size(), 4);
  EXPECT_EQ(detector.reorder_buffered(), 0);
}

TEST(WindowedDetectorTest, SlackedShuffleMatchesInOrderFeed) {
  // The same event *set* must yield the same final report whether it
  // arrives sorted (slack 0) or locally shuffled within the slack —
  // detection randomness is content-derived, so this is bit-exact.
  auto cfg = SmallStreamConfig();
  cfg.window = 500;
  std::vector<Transaction> sorted;
  Rng rng(99);
  int64_t t = 0;
  for (int i = 0; i < 120; ++i) {
    t += static_cast<int64_t>(rng.NextBounded(3));
    sorted.push_back({t, static_cast<UserId>(rng.NextBounded(40)),
                      static_cast<MerchantId>(rng.NextBounded(20))});
  }
  std::vector<Transaction> shuffled = sorted;
  // Swap adjacent pairs: each event regresses by at most a few ticks.
  for (size_t i = 0; i + 1 < shuffled.size(); i += 2) {
    std::swap(shuffled[i], shuffled[i + 1]);
  }

  WindowedDetector in_order(cfg);
  for (const Transaction& tx : sorted) {
    ASSERT_TRUE(in_order.Ingest(tx).ok());
  }
  auto cfg_slack = cfg;
  cfg_slack.max_out_of_order = 10;
  WindowedDetector slacked(cfg_slack);
  for (const Transaction& tx : shuffled) {
    ASSERT_TRUE(slacked.Ingest(tx).ok());
  }

  auto a = in_order.DetectNow().ValueOrDie();
  auto b = slacked.DetectNow().ValueOrDie();
  ASSERT_EQ(a.votes.num_users(), b.votes.num_users());
  for (UserId u = 0; u < a.votes.num_users(); ++u) {
    ASSERT_EQ(a.votes.user_votes(u), b.votes.user_votes(u)) << "user " << u;
  }
  ASSERT_EQ(a.weighted_user_votes, b.weighted_user_votes);
}

TEST(WindowedDetectorTest, ReleaseBurstYieldsOneDetectionOverFullWindow) {
  // A watermark jump that releases events spanning several detection
  // intervals must produce exactly one report (over the fully released
  // window), not fire-and-discard intermediates.
  auto cfg = SmallStreamConfig();   // interval = 50
  cfg.max_out_of_order = 1000;      // buffer everything
  WindowedDetector detector(cfg);
  for (int64_t t = 0; t < 300; t += 10) {
    auto r = detector.Ingest(
        {t, static_cast<UserId>(t % 50), static_cast<MerchantId>(t % 20)});
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r->has_value());  // all buffered, nothing released
  }
  // Watermark jumps to 1500: every buffered event releases at once,
  // crossing ~5 interval boundaries (the t=2500 event itself stays
  // buffered; the window then covers [190, 290] after eviction).
  auto burst = detector.Ingest({2500, 1, 1});
  ASSERT_TRUE(burst.ok());
  ASSERT_TRUE(burst->has_value());
  EXPECT_EQ(detector.window_size(), 11);
  EXPECT_EQ(detector.reorder_buffered(), 1);
  // The single report covers the whole released window.
  ASSERT_TRUE(detector.last_version().has_value());
  EXPECT_EQ(detector.last_version()->num_edges(),
            detector.last_stats()->edges_total);
}

// --- Incremental-detection diagnostics -------------------------------------

TEST(WindowedDetectorTest, ExposesDirtyScopingDiagnostics) {
  auto cfg = SmallStreamConfig();
  cfg.window = 200;
  cfg.detection_interval = 100;
  WindowedDetector detector(cfg);
  EXPECT_FALSE(detector.last_stats().has_value());

  int64_t t = 0;
  int detections = 0;
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    Transaction tx{t, static_cast<UserId>(rng.NextBounded(100)),
                   static_cast<MerchantId>(rng.NextBounded(40))};
    auto fired = detector.Ingest(tx);
    ASSERT_TRUE(fired.ok());
    if (fired->has_value()) ++detections;
    t += 2;
  }
  ASSERT_GT(detections, 2);
  ASSERT_TRUE(detector.last_stats().has_value());
  ASSERT_TRUE(detector.last_version().has_value());
  const StreamingDetectionStats& stats = *detector.last_stats();
  EXPECT_GT(stats.components_total, 0);
  EXPECT_EQ(stats.components_reused + stats.components_recomputed,
            stats.components_eligible);
  // Across the run, clean components must actually have been replayed.
  EXPECT_GT(detector.component_cache_stats().hits, 0);
  // And the store must have seen evictions + structural removals.
  EXPECT_GT(detector.store_stats().events_evicted, 0);
}

}  // namespace
}  // namespace ensemfdet
