// The incremental-ingest acceptance property: dirty-scoped streaming
// re-detection is *bit-exact* against a full-window rerun — votes,
// weighted votes, and per-member structural stats — across seeds, all
// four sampling methods, cache evictions, and thread-pool widths
// (wall-clock `seconds` and `arena_grow_events` are the only fields
// allowed to differ; they measure the run, not the result).
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "datagen/generator.h"
#include "datagen/transaction_stream.h"
#include "ingest/dynamic_graph_store.h"
#include "ingest/streaming_detector.h"
#include "obs/metrics.h"

namespace ensemfdet {
namespace {

// Bit-exact report comparison (see file comment for the two exclusions).
void ExpectReportsIdentical(const EnsemFDetReport& a,
                            const EnsemFDetReport& b, const char* what) {
  ASSERT_EQ(a.num_samples, b.num_samples) << what;
  ASSERT_EQ(a.votes.num_users(), b.votes.num_users()) << what;
  ASSERT_EQ(a.votes.num_merchants(), b.votes.num_merchants()) << what;
  for (UserId u = 0; u < a.votes.num_users(); ++u) {
    ASSERT_EQ(a.votes.user_votes(u), b.votes.user_votes(u))
        << what << " user " << u;
  }
  for (MerchantId v = 0; v < a.votes.num_merchants(); ++v) {
    ASSERT_EQ(a.votes.merchant_votes(v), b.votes.merchant_votes(v))
        << what << " merchant " << v;
  }
  // Weighted votes must be identical *bits*, not approximately equal —
  // both paths accumulate in the same order by construction.
  ASSERT_EQ(a.weighted_user_votes, b.weighted_user_votes) << what;
  ASSERT_EQ(a.weighted_merchant_votes, b.weighted_merchant_votes) << what;
  ASSERT_EQ(a.members.size(), b.members.size()) << what;
  for (size_t i = 0; i < a.members.size(); ++i) {
    ASSERT_EQ(a.members[i].sample_users, b.members[i].sample_users)
        << what << " member " << i;
    ASSERT_EQ(a.members[i].sample_merchants, b.members[i].sample_merchants)
        << what << " member " << i;
    ASSERT_EQ(a.members[i].sample_edges, b.members[i].sample_edges)
        << what << " member " << i;
    ASSERT_EQ(a.members[i].num_blocks, b.members[i].num_blocks)
        << what << " member " << i;
  }
}

// A fragmented campaign-day stream: sparse background (many small
// components) plus dense fraud bursts, so window slides leave plenty of
// clean components for the incremental path to reuse.
std::vector<Transaction> ParityStream(uint64_t seed) {
  DataGenConfig config;
  config.num_users = 500;
  config.num_merchants = 300;
  config.num_edges = 900;
  FraudGroupSpec group;
  group.num_users = 16;
  group.num_merchants = 6;
  group.edges_per_user = 4.0;
  group.camouflage_per_user = 0.0;
  config.fraud_groups.push_back(group);
  config.fraud_groups.push_back(group);
  config.seed = seed;
  Dataset dataset = GenerateDataset(config).ValueOrDie();

  StreamTimelineConfig timeline;
  timeline.horizon = 20000;
  timeline.burst_duration = 1500;
  timeline.seed = seed + 17;
  return BuildTransactionStream(dataset, timeline).ValueOrDie();
}

StreamingDetectorConfig DetectorConfig(SampleMethod method, uint64_t seed) {
  StreamingDetectorConfig config;
  config.ensemble.method = method;
  config.ensemble.num_samples = 5;
  config.ensemble.ratio = 0.35;
  config.ensemble.seed = seed;
  config.ensemble.fdet.max_blocks = 8;
  return config;
}

// Drives one (seed, method) combination: a warm incremental detector vs a
// from-scratch rerun at every interval.
void RunParityCase(SampleMethod method, uint64_t seed, double reweight_ratio,
                   ThreadPool* pool) {
  const std::vector<Transaction> events = ParityStream(seed);

  DynamicGraphStoreConfig store_config;
  store_config.num_users = 500;
  store_config.num_merchants = 300;
  store_config.window = 6000;
  store_config.min_compaction_delta = 64;  // exercise compaction mid-run
  auto store = DynamicGraphStore::Create(store_config).ValueOrDie();

  StreamingDetectorConfig detector_config = DetectorConfig(method, seed);
  detector_config.ensemble.reweight_edges = reweight_ratio > 0;
  auto warm = StreamingDetector::Create(detector_config).ValueOrDie();

  int64_t reused_total = 0;
  int64_t intervals = 0;
  size_t next = 0;
  const size_t interval_events = events.size() / 7;
  while (next < events.size()) {
    IngestBatch batch;
    const size_t end = std::min(events.size(), next + interval_events);
    batch.transactions.assign(events.begin() + next, events.begin() + end);
    next = end;
    ASSERT_TRUE(store.Apply(batch).ok());

    GraphVersion version = store.Publish();
    StreamingReport incremental = warm.Detect(version, pool).ValueOrDie();
    // The comparator: an identically configured detector with an empty
    // cache — every component recomputed from scratch.
    auto fresh = StreamingDetector::Create(detector_config).ValueOrDie();
    StreamingReport full = fresh.Detect(version, pool).ValueOrDie();

    ExpectReportsIdentical(incremental.report, full.report,
                           SampleMethodName(method));
    ASSERT_EQ(incremental.fingerprint, full.fingerprint);
    ASSERT_EQ(incremental.stats.components_eligible,
              full.stats.components_eligible);
    ASSERT_EQ(full.stats.components_reused, 0);
    reused_total += incremental.stats.components_reused;
    ++intervals;
  }
  ASSERT_GE(intervals, 5);
  // The incremental path must have actually reused work, or this test
  // proves nothing about dirty scoping.
  EXPECT_GT(reused_total, 0) << SampleMethodName(method);
}

TEST(IngestParityTest, RandomEdgeAcrossSeeds) {
  for (uint64_t seed : {11u, 12u, 13u}) {
    RunParityCase(SampleMethod::kRandomEdge, seed, 0.0, nullptr);
  }
}

TEST(IngestParityTest, OneSideUserAcrossSeeds) {
  for (uint64_t seed : {11u, 12u, 13u}) {
    RunParityCase(SampleMethod::kOneSideUser, seed, 0.0, nullptr);
  }
}

TEST(IngestParityTest, OneSideMerchantAcrossSeeds) {
  for (uint64_t seed : {11u, 12u, 13u}) {
    RunParityCase(SampleMethod::kOneSideMerchant, seed, 0.0, nullptr);
  }
}

TEST(IngestParityTest, TwoSideAcrossSeeds) {
  for (uint64_t seed : {11u, 12u, 13u}) {
    RunParityCase(SampleMethod::kTwoSide, seed, 0.0, nullptr);
  }
}

TEST(IngestParityTest, ReweightedResOnPool) {
  ThreadPool pool(4);
  RunParityCase(SampleMethod::kRandomEdge, 21u, 1.0, &pool);
}

TEST(IngestParityTest, PoolWidthDoesNotChangeResults) {
  const std::vector<Transaction> events = ParityStream(31);
  DynamicGraphStoreConfig store_config;
  store_config.num_users = 500;
  store_config.num_merchants = 300;
  store_config.window = 6000;
  auto store = DynamicGraphStore::Create(store_config).ValueOrDie();
  IngestBatch batch;
  batch.transactions = events;
  ASSERT_TRUE(store.Apply(batch).ok());
  GraphVersion version = store.Publish();

  StreamingDetectorConfig config =
      DetectorConfig(SampleMethod::kRandomEdge, 31);
  auto sequential = StreamingDetector::Create(config).ValueOrDie();
  StreamingReport a = sequential.Detect(version, nullptr).ValueOrDie();
  ThreadPool pool(4);
  auto parallel = StreamingDetector::Create(config).ValueOrDie();
  StreamingReport b = parallel.Detect(version, &pool).ValueOrDie();
  ExpectReportsIdentical(a.report, b.report, "pool width");
}

TEST(IngestParityTest, CacheEvictionNeverChangesResults) {
  // Capacity 1: almost every component is evicted between detections;
  // results must not move.
  const std::vector<Transaction> events = ParityStream(41);
  DynamicGraphStoreConfig store_config;
  store_config.num_users = 500;
  store_config.num_merchants = 300;
  store_config.window = 6000;
  auto store = DynamicGraphStore::Create(store_config).ValueOrDie();

  StreamingDetectorConfig config =
      DetectorConfig(SampleMethod::kTwoSide, 41);
  StreamingDetectorConfig tiny = config;
  tiny.component_cache_capacity = 1;
  auto warm = StreamingDetector::Create(tiny).ValueOrDie();

  size_t next = 0;
  const size_t step = events.size() / 4;
  while (next < events.size()) {
    IngestBatch batch;
    const size_t end = std::min(events.size(), next + step);
    batch.transactions.assign(events.begin() + next, events.begin() + end);
    next = end;
    ASSERT_TRUE(store.Apply(batch).ok());
    GraphVersion version = store.Publish();
    StreamingReport incremental = warm.Detect(version, nullptr).ValueOrDie();
    auto fresh = StreamingDetector::Create(config).ValueOrDie();
    StreamingReport full = fresh.Detect(version, nullptr).ValueOrDie();
    ExpectReportsIdentical(incremental.report, full.report, "evicting");
  }
  EXPECT_GT(warm.cache_stats().evictions, 0);
}

TEST(IngestParityTest, EmptyAndDegenerateVersions) {
  DynamicGraphStoreConfig store_config;
  store_config.num_users = 10;
  store_config.num_merchants = 10;
  store_config.window = 100;
  auto store = DynamicGraphStore::Create(store_config).ValueOrDie();
  StreamingDetectorConfig config =
      DetectorConfig(SampleMethod::kRandomEdge, 7);
  auto detector = StreamingDetector::Create(config).ValueOrDie();

  // Empty window.
  GraphVersion empty = store.Publish();
  StreamingReport r0 = detector.Detect(empty, nullptr).ValueOrDie();
  EXPECT_EQ(r0.report.num_samples, config.ensemble.num_samples);
  EXPECT_EQ(r0.stats.components_total, 0);
  EXPECT_EQ(r0.report.votes.max_user_votes(), 0);

  // Single edge.
  IngestBatch one;
  one.transactions.push_back({0, 3, 4});
  ASSERT_TRUE(store.Apply(one).ok());
  GraphVersion single = store.Publish();
  StreamingReport r1 = detector.Detect(single, nullptr).ValueOrDie();
  EXPECT_EQ(r1.stats.components_total, 1);
  EXPECT_GT(r1.report.votes.user_votes(3), 0);
}

TEST(IngestParityTest, MinComponentEdgesPrunesDebris) {
  DynamicGraphStoreConfig store_config;
  store_config.num_users = 50;
  store_config.num_merchants = 50;
  store_config.window = 1000;
  auto store = DynamicGraphStore::Create(store_config).ValueOrDie();
  IngestBatch batch;
  // One dense 4x3 block + three singleton edges.
  int64_t t = 0;
  for (UserId u = 0; u < 4; ++u) {
    for (MerchantId v = 0; v < 3; ++v) {
      batch.transactions.push_back({t++, u, v});
    }
  }
  for (int i = 0; i < 3; ++i) {
    batch.transactions.push_back({t++, static_cast<UserId>(20 + i),
                                  static_cast<MerchantId>(20 + i)});
  }
  ASSERT_TRUE(store.Apply(batch).ok());
  GraphVersion version = store.Publish();

  StreamingDetectorConfig config =
      DetectorConfig(SampleMethod::kRandomEdge, 9);
  config.min_component_edges = 2;
  auto detector = StreamingDetector::Create(config).ValueOrDie();
  StreamingReport report = detector.Detect(version, nullptr).ValueOrDie();
  EXPECT_EQ(report.stats.components_total, 4);
  EXPECT_EQ(report.stats.components_eligible, 1);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(report.report.votes.user_votes(20 + i), 0)
        << "pruned debris component must not vote";
  }
}

// The narration contract the CLI relies on: Detect mirrors its
// StreamingDetectionStats into the global ensemfdet_stream_* counters en
// bloc, so the counter delta taken across one Detect call equals that
// report's stats exactly — stream-replay prints its per-report lines from
// registry deltas and they stay bit-identical to the report snapshot.
TEST(IngestParityTest, RegistryDeltaMirrorsReportStats) {
  if (!obs::kMetricsCompiledIn) GTEST_SKIP() << "metrics compiled out";
  const std::vector<Transaction> events = ParityStream(41);
  DynamicGraphStoreConfig store_config;
  store_config.num_users = 500;
  store_config.num_merchants = 300;
  store_config.window = 6000;
  auto store = DynamicGraphStore::Create(store_config).ValueOrDie();
  auto detector =
      StreamingDetector::Create(DetectorConfig(SampleMethod::kRandomEdge, 41))
          .ValueOrDie();

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const char* names[] = {
      "ensemfdet_stream_reports_total",
      "ensemfdet_stream_components_total",
      "ensemfdet_stream_components_eligible_total",
      "ensemfdet_stream_components_reused_total",
      "ensemfdet_stream_components_recomputed_total",
      "ensemfdet_stream_components_touched_total",
      "ensemfdet_stream_edges_total",
      "ensemfdet_stream_edges_recomputed_total",
  };
  size_t next = 0;
  const size_t interval_events = events.size() / 4;
  while (next < events.size()) {
    IngestBatch batch;
    const size_t end = std::min(events.size(), next + interval_events);
    batch.transactions.assign(events.begin() + next, events.begin() + end);
    next = end;
    ASSERT_TRUE(store.Apply(batch).ok());
    GraphVersion version = store.Publish();

    std::vector<int64_t> before;
    for (const char* name : names) {
      before.push_back(reg.GetCounter(name)->Value());
    }
    StreamingReport out = detector.Detect(version, nullptr).ValueOrDie();
    const StreamingDetectionStats& s = out.stats;
    const int64_t expected[] = {1,
                                s.components_total,
                                s.components_eligible,
                                s.components_reused,
                                s.components_recomputed,
                                s.components_touched,
                                s.edges_total,
                                s.edges_recomputed};
    for (size_t i = 0; i < before.size(); ++i) {
      EXPECT_EQ(reg.GetCounter(names[i])->Value() - before[i], expected[i])
          << names[i];
    }
  }
}

}  // namespace
}  // namespace ensemfdet
