#include "graph/subgraph.h"

#include <vector>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace ensemfdet {
namespace {

// 4 users × 4 merchants with a 2×2 dense corner plus some stragglers.
BipartiteGraph TestGraph() {
  GraphBuilder b(4, 4);
  b.AddEdge(0, 0);
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);
  b.AddEdge(1, 1);
  b.AddEdge(2, 2);
  b.AddEdge(3, 3);
  b.AddEdge(2, 3);
  return b.Build().ValueOrDie();
}

TEST(SubgraphFromEdgesTest, ExactEdgeSet) {
  auto g = TestGraph();
  std::vector<EdgeId> pick = {0, 3};  // (0,0) and (1,1)
  SubgraphView view = SubgraphFromEdges(g, pick);
  EXPECT_EQ(view.graph.num_edges(), 2);
  EXPECT_EQ(view.graph.num_users(), 2);
  EXPECT_EQ(view.graph.num_merchants(), 2);
  // Mapping is ascending parent id.
  EXPECT_EQ(view.user_map, (std::vector<UserId>{0, 1}));
  EXPECT_EQ(view.merchant_map, (std::vector<MerchantId>{0, 1}));
  // Edge (0,0) and (1,1) in local ids; no (0,1)/(1,0) — not node-induced.
  EXPECT_TRUE(view.graph.HasEdge(0, 0));
  EXPECT_TRUE(view.graph.HasEdge(1, 1));
  EXPECT_FALSE(view.graph.HasEdge(0, 1));
  EXPECT_FALSE(view.graph.HasEdge(1, 0));
}

TEST(SubgraphFromEdgesTest, DuplicateEdgeIdsCollapse) {
  auto g = TestGraph();
  std::vector<EdgeId> pick = {2, 2, 2};
  SubgraphView view = SubgraphFromEdges(g, pick);
  EXPECT_EQ(view.graph.num_edges(), 1);
}

TEST(SubgraphFromEdgesTest, WeightScaleApplied) {
  auto g = TestGraph();
  std::vector<EdgeId> pick = {0};
  SubgraphView view = SubgraphFromEdges(g, pick, 10.0);
  ASSERT_EQ(view.graph.num_edges(), 1);
  EXPECT_DOUBLE_EQ(view.graph.edge_weight(0), 10.0);
}

TEST(SubgraphFromEdgesTest, UnitScaleKeepsUnweighted) {
  auto g = TestGraph();
  std::vector<EdgeId> pick = {0, 1};
  SubgraphView view = SubgraphFromEdges(g, pick, 1.0);
  EXPECT_FALSE(view.graph.has_weights());
}

TEST(SubgraphFromEdgesTest, EmptySelection) {
  auto g = TestGraph();
  SubgraphView view = SubgraphFromEdges(g, {});
  EXPECT_EQ(view.graph.num_edges(), 0);
  EXPECT_EQ(view.graph.num_users(), 0);
  EXPECT_EQ(view.graph.num_merchants(), 0);
}

TEST(SubgraphFromEdgesTest, IdMapsRoundTrip) {
  auto g = TestGraph();
  std::vector<EdgeId> pick = {4, 5, 6};  // edges among users {2,3}, merch {2,3}
  SubgraphView view = SubgraphFromEdges(g, pick);
  for (EdgeId e = 0; e < view.graph.num_edges(); ++e) {
    const Edge& local = view.graph.edge(e);
    UserId pu = view.ToParentUser(local.user);
    MerchantId pv = view.ToParentMerchant(local.merchant);
    EXPECT_TRUE(g.HasEdge(pu, pv))
        << "local edge maps to nonexistent parent edge";
  }
}

TEST(InducedSubgraphTest, KeepsAllCrossEdges) {
  auto g = TestGraph();
  std::vector<UserId> users = {0, 1};
  std::vector<MerchantId> merchants = {0, 1};
  SubgraphView view = InducedSubgraph(g, users, merchants);
  EXPECT_EQ(view.graph.num_users(), 2);
  EXPECT_EQ(view.graph.num_merchants(), 2);
  EXPECT_EQ(view.graph.num_edges(), 4);  // the 2×2 dense corner
}

TEST(InducedSubgraphTest, ExcludesEdgesLeavingSelection) {
  auto g = TestGraph();
  std::vector<UserId> users = {2};
  std::vector<MerchantId> merchants = {2};
  SubgraphView view = InducedSubgraph(g, users, merchants);
  EXPECT_EQ(view.graph.num_edges(), 1);  // (2,2); (2,3) leaves the selection
}

TEST(InducedSubgraphTest, DuplicatedInputIdsDeduplicated) {
  auto g = TestGraph();
  std::vector<UserId> users = {0, 0, 1, 1};
  std::vector<MerchantId> merchants = {1, 1, 0};
  SubgraphView view = InducedSubgraph(g, users, merchants);
  EXPECT_EQ(view.graph.num_users(), 2);
  EXPECT_EQ(view.graph.num_merchants(), 2);
}

TEST(InducedSubgraphTest, SelectionWithNoEdges) {
  auto g = TestGraph();
  std::vector<UserId> users = {3};
  std::vector<MerchantId> merchants = {0};
  SubgraphView view = InducedSubgraph(g, users, merchants);
  EXPECT_EQ(view.graph.num_edges(), 0);
  // Selected nodes are still present (isolated).
  EXPECT_EQ(view.graph.num_users(), 1);
  EXPECT_EQ(view.graph.num_merchants(), 1);
}

TEST(OneSideInducedTest, UserSideKeepsWholeRows) {
  auto g = TestGraph();
  std::vector<uint32_t> users = {0};
  SubgraphView view = OneSideInducedSubgraph(g, Side::kUser, users);
  EXPECT_EQ(view.graph.num_users(), 1);
  EXPECT_EQ(view.graph.num_merchants(), 2);  // merchants 0, 1
  EXPECT_EQ(view.graph.num_edges(), 2);
}

TEST(OneSideInducedTest, MerchantSideKeepsWholeColumns) {
  auto g = TestGraph();
  std::vector<uint32_t> merchants = {3};
  SubgraphView view = OneSideInducedSubgraph(g, Side::kMerchant, merchants);
  EXPECT_EQ(view.graph.num_merchants(), 1);
  EXPECT_EQ(view.graph.num_users(), 2);  // users 2 and 3
  EXPECT_EQ(view.graph.num_edges(), 2);
}

TEST(OneSideInducedTest, MultipleSeedsUnionRows) {
  auto g = TestGraph();
  std::vector<uint32_t> users = {0, 2};
  SubgraphView view = OneSideInducedSubgraph(g, Side::kUser, users);
  EXPECT_EQ(view.graph.num_edges(), 4);  // edges of user 0 (2) + user 2 (2)
  EXPECT_EQ(view.user_map, (std::vector<UserId>{0, 2}));
}

TEST(OneSideInducedTest, IsolatedSeedContributesNothing) {
  GraphBuilder b(2, 1);
  b.AddEdge(0, 0);
  auto g = b.Build().ValueOrDie();
  std::vector<uint32_t> users = {1};  // isolated user
  SubgraphView view = OneSideInducedSubgraph(g, Side::kUser, users);
  EXPECT_EQ(view.graph.num_edges(), 0);
  EXPECT_EQ(view.graph.num_users(), 0);
}

}  // namespace
}  // namespace ensemfdet
