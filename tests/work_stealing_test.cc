// ParallelForWorkStealing: the scheduler contract (every index exactly
// once, caller participation, exception propagation, skew rebalancing)
// plus the determinism guarantee the ensemble relies on — identical
// votes at pool widths 1/2/4/8 on a skewed component-size distribution,
// where stealing actually fires.
#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ensemble/ensemfdet.h"
#include "graph/graph_builder.h"

namespace ensemfdet {
namespace {

TEST(WorkStealingTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (int64_t n : {0, 1, 2, 3, 7, 64, 1000}) {
    std::vector<std::atomic<int>> hits(static_cast<size_t>(n));
    for (auto& h : hits) h.store(0);
    pool.ParallelForWorkStealing(0, n, [&](int64_t i) {
      hits[static_cast<size_t>(i)].fetch_add(1);
    });
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1)
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(WorkStealingTest, NonZeroBeginCoversTheRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  for (auto& h : hits) h.store(0);
  pool.ParallelForWorkStealing(40, 100, [&](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)].load(), i >= 40 ? 1 : 0) << i;
  }
}

TEST(WorkStealingTest, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelForWorkStealing(5, 5, [&](int64_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(WorkStealingTest, SkewedItemCostsStillCoverEverything) {
  // One pathological item ~50x the rest: a static split strands the
  // tail behind it; stealing must drain the other items concurrently
  // and still complete every index exactly once.
  ThreadPool pool(4);
  const int64_t n = 64;
  std::vector<std::atomic<int>> hits(static_cast<size_t>(n));
  for (auto& h : hits) h.store(0);
  pool.ParallelForWorkStealing(0, n, [&](int64_t i) {
    std::this_thread::sleep_for(std::chrono::microseconds(i == 0 ? 5000 : 100));
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1) << i;
  }
}

TEST(WorkStealingTest, ExceptionFromAnItemPropagatesToCaller) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.ParallelForWorkStealing(0, 32,
                                   [&](int64_t i) {
                                     if (i == 13) {
                                       throw std::runtime_error("boom");
                                     }
                                     completed.fetch_add(1);
                                   }),
      std::runtime_error);
  // Remaining items still ran (same contract as ParallelFor).
  EXPECT_EQ(completed.load(), 31);
}

TEST(WorkStealingTest, NestedCallFromAWorkerDoesNotDeadlock) {
  // A worker-thread caller participates in its own items, so stealing
  // from inside a pool task must complete even with every worker busy.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelForWorkStealing(0, 4, [&](int64_t) {
    pool.ParallelForWorkStealing(0, 8, [&](int64_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32);
}

// A graph whose components differ in size by ~two orders of magnitude:
// one giant dense-ish component plus many tiny ones. Member / component
// work under this shape is exactly what stealing exists for.
BipartiteGraph SkewedGraph() {
  GraphBuilder b(400, 160);
  // Giant component: users [0,80) x merchants [0,30), sparse random.
  std::mt19937_64 rng(77);
  for (int i = 0; i < 900; ++i) {
    b.AddEdge(static_cast<UserId>(rng() % 80),
              static_cast<MerchantId>(rng() % 30),
              0.5 + static_cast<double>(rng() % 1000) / 1000.0);
  }
  // Dense planted block inside the giant component.
  for (UserId u = 0; u < 10; ++u) {
    for (MerchantId v = 0; v < 6; ++v) b.AddEdge(u, v);
  }
  // 60 tiny components of 2-4 edges each, disjoint id ranges.
  for (int c = 0; c < 60; ++c) {
    const UserId u0 = static_cast<UserId>(100 + c * 5);
    const MerchantId v0 = static_cast<MerchantId>(40 + c * 2);
    b.AddEdge(u0, v0);
    b.AddEdge(u0 + 1, v0);
    if (c % 2 == 0) b.AddEdge(u0 + 2, v0 + 1);
    if (c % 3 == 0) b.AddEdge(u0 + 1, v0 + 1);
  }
  return b.Build().ValueOrDie();
}

TEST(WorkStealingTest, VoteIdentityAcrossPoolWidthsOnSkewedComponents) {
  const BipartiteGraph graph = SkewedGraph();
  EnsemFDetConfig cfg;
  cfg.num_samples = 8;
  cfg.ratio = 0.35;
  cfg.seed = 23;
  EnsemFDet detector(cfg);

  const EnsemFDetReport baseline = detector.Run(graph).ValueOrDie();
  for (int width : {1, 2, 4, 8}) {
    ThreadPool pool(width);
    const EnsemFDetReport got = detector.Run(graph, &pool).ValueOrDie();
    SCOPED_TRACE("width=" + std::to_string(width));
    ASSERT_EQ(got.votes.num_users(), baseline.votes.num_users());
    for (int64_t u = 0; u < got.votes.num_users(); ++u) {
      ASSERT_EQ(got.votes.user_votes(static_cast<UserId>(u)),
                baseline.votes.user_votes(static_cast<UserId>(u)))
          << "user " << u;
    }
    for (int64_t v = 0; v < got.votes.num_merchants(); ++v) {
      ASSERT_EQ(got.votes.merchant_votes(static_cast<MerchantId>(v)),
                baseline.votes.merchant_votes(static_cast<MerchantId>(v)))
          << "merchant " << v;
    }
    // Weighted votes == on doubles: scheduling must not touch arithmetic.
    ASSERT_EQ(got.weighted_user_votes, baseline.weighted_user_votes);
    ASSERT_EQ(got.weighted_merchant_votes, baseline.weighted_merchant_votes);
  }
}

}  // namespace
}  // namespace ensemfdet
