#include "ensemble/vote_table.h"

#include <vector>

#include <gtest/gtest.h>

namespace ensemfdet {
namespace {

TEST(VoteTableTest, StartsAtZero) {
  VoteTable t(5, 3);
  EXPECT_EQ(t.num_users(), 5);
  EXPECT_EQ(t.num_merchants(), 3);
  for (UserId u = 0; u < 5; ++u) EXPECT_EQ(t.user_votes(u), 0);
  for (MerchantId v = 0; v < 3; ++v) EXPECT_EQ(t.merchant_votes(v), 0);
  EXPECT_EQ(t.max_user_votes(), 0);
}

TEST(VoteTableTest, AccumulatesVotes) {
  VoteTable t(4, 2);
  std::vector<UserId> u1{0, 2};
  std::vector<MerchantId> m1{1};
  t.AddVotes(u1, m1);
  std::vector<UserId> u2{2, 3};
  std::vector<MerchantId> m2{0, 1};
  t.AddVotes(u2, m2);
  EXPECT_EQ(t.user_votes(0), 1);
  EXPECT_EQ(t.user_votes(1), 0);
  EXPECT_EQ(t.user_votes(2), 2);
  EXPECT_EQ(t.user_votes(3), 1);
  EXPECT_EQ(t.merchant_votes(0), 1);
  EXPECT_EQ(t.merchant_votes(1), 2);
  EXPECT_EQ(t.max_user_votes(), 2);
}

TEST(VoteTableTest, AcceptedUsersThreshold) {
  VoteTable t(4, 1);
  std::vector<MerchantId> none;
  for (int round = 0; round < 3; ++round) {
    std::vector<UserId> voters{0};
    if (round < 2) voters.push_back(1);
    if (round < 1) voters.push_back(2);
    t.AddVotes(voters, none);
  }
  // votes: u0=3, u1=2, u2=1, u3=0
  EXPECT_EQ(t.AcceptedUsers(1), (std::vector<UserId>{0, 1, 2}));
  EXPECT_EQ(t.AcceptedUsers(2), (std::vector<UserId>{0, 1}));
  EXPECT_EQ(t.AcceptedUsers(3), (std::vector<UserId>{0}));
  EXPECT_TRUE(t.AcceptedUsers(4).empty());
}

TEST(VoteTableTest, AcceptedMonotoneInThreshold) {
  // MVA property: raising T can only shrink the accepted set.
  VoteTable t(10, 1);
  std::vector<MerchantId> none;
  for (int round = 0; round < 5; ++round) {
    std::vector<UserId> voters;
    for (UserId u = 0; u < 10; ++u) {
      if ((u + round) % 3 == 0) voters.push_back(u);
    }
    t.AddVotes(voters, none);
  }
  size_t prev = t.AcceptedUsers(1).size();
  for (int32_t threshold = 2; threshold <= 6; ++threshold) {
    size_t cur = t.AcceptedUsers(threshold).size();
    EXPECT_LE(cur, prev);
    prev = cur;
  }
}

TEST(VoteTableTest, CountMatchesAcceptedSize) {
  VoteTable t(6, 1);
  std::vector<MerchantId> none;
  std::vector<UserId> a{0, 1, 2};
  std::vector<UserId> b{2, 3};
  t.AddVotes(a, none);
  t.AddVotes(b, none);
  for (int32_t threshold = 0; threshold <= 3; ++threshold) {
    EXPECT_EQ(t.CountAcceptedUsers(threshold),
              static_cast<int64_t>(t.AcceptedUsers(threshold).size()));
  }
}

TEST(VoteTableTest, AcceptedMerchants) {
  VoteTable t(1, 4);
  std::vector<UserId> none;
  std::vector<MerchantId> m{0, 3};
  t.AddVotes(none, m);
  t.AddVotes(none, m);
  std::vector<MerchantId> m2{3};
  t.AddVotes(none, m2);
  EXPECT_EQ(t.AcceptedMerchants(2), (std::vector<MerchantId>{0, 3}));
  EXPECT_EQ(t.AcceptedMerchants(3), (std::vector<MerchantId>{3}));
}

TEST(VoteTableTest, ThresholdZeroAcceptsEveryone) {
  VoteTable t(3, 2);
  EXPECT_EQ(t.AcceptedUsers(0).size(), 3u);
  EXPECT_EQ(t.AcceptedMerchants(0).size(), 2u);
}

TEST(VoteTableTest, DefaultConstructedEmpty) {
  VoteTable t;
  EXPECT_EQ(t.num_users(), 0);
  EXPECT_EQ(t.num_merchants(), 0);
  EXPECT_TRUE(t.AcceptedUsers(1).empty());
}

}  // namespace
}  // namespace ensemfdet
