// Tests for the crash flight recorder (src/obs/flight_recorder.h): the
// mmap-backed black box every TraceSpan writes into. Covers install +
// read-back, ring wraparound retention, explicit dumps (CHECK/WAL path),
// reinstallability, reader robustness against garbage, and — via fork —
// the fatal-signal path end to end: a child that dies of SIGSEGV must
// leave a parseable dump with the signal stamped in it.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_context.h"

#if defined(__unix__) || defined(__APPLE__)
#define ENSEMFDET_TEST_POSIX 1
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace ensemfdet {
namespace obs {
namespace {

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kMetricsCompiledIn) GTEST_SKIP() << "metrics compiled out";
#if !defined(ENSEMFDET_TEST_POSIX)
    GTEST_SKIP() << "flight recorder is POSIX-only";
#endif
    SetMetricsRuntimeEnabled(true);
  }

  // Fresh file per test: reinstalling swaps the black box wholesale, so
  // each test reads only its own records.
  std::string NewPath(const char* tag) {
    return ::testing::TempDir() + "/flight_" + tag + "_" +
           std::to_string(::getpid()) + ".bin";
  }
};

// Opens a span with an installed root context so the record carries a
// valid trace id.
void EmitSpan(Histogram* h, const char* name) {
  ScopedTraceContext root(NewRootContext());
  TraceSpan span(h, name);
}

TEST_F(FlightRecorderTest, InstallRecordAndReadBack) {
  const std::string path = NewPath("basic");
  FlightRecorderOptions options;
  options.path = path;
  options.ring_records = 64;
  options.max_threads = 8;
  options.max_names = 32;
  ASSERT_TRUE(InstallFlightRecorder(options).ok());
  EXPECT_TRUE(FlightRecorderInstalled());

  Histogram h;
  for (int i = 0; i < 5; ++i) EmitSpan(&h, "flight_basic_span");

  auto dump = ReadFlightDump(path);
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  EXPECT_EQ(dump->ring_records, 64u);
  EXPECT_EQ(dump->crash_signal, 0);
  EXPECT_FALSE(dump->has_footer);
  size_t total = 0;
  bool found_name = false;
  for (const auto& thread : dump->threads) {
    total += thread.records.size();
    for (const auto& r : thread.records) {
      EXPECT_NE(r.span_id, 0u);
      EXPECT_GE(r.duration_ns, 0);
      EXPECT_TRUE(r.trace_hi != 0 || r.trace_lo != 0);
      if (dump->Name(r.name_id) == "flight_basic_span") found_name = true;
    }
  }
  EXPECT_EQ(total, 5u);
  EXPECT_TRUE(found_name);
  std::remove(path.c_str());
}

TEST_F(FlightRecorderTest, RingWrapsAndRetainsNewestRecords) {
  const std::string path = NewPath("wrap");
  FlightRecorderOptions options;
  options.path = path;
  options.ring_records = 8;
  options.max_threads = 4;
  options.max_names = 16;
  ASSERT_TRUE(InstallFlightRecorder(options).ok());

  Histogram h;
  for (int i = 0; i < 100; ++i) EmitSpan(&h, "flight_wrap_span");

  auto dump = ReadFlightDump(path);
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  // All 100 spans ran on this thread: one slot, total count preserved,
  // exactly the last ring_records retained, in order, newest last.
  ASSERT_EQ(dump->threads.size(), 1u);
  const FlightDumpThread& thread = dump->threads[0];
  EXPECT_EQ(thread.total_records, 100u);
  ASSERT_EQ(thread.records.size(), 8u);
  for (size_t i = 0; i < thread.records.size(); ++i) {
    EXPECT_EQ(thread.records[i].seq, 92 + i);
  }
  std::remove(path.c_str());
}

TEST_F(FlightRecorderTest, ExplicitDumpStampsReasonAndFooter) {
  const std::string path = NewPath("dump");
  FlightRecorderOptions options;
  options.path = path;
  options.ring_records = 16;
  options.max_threads = 4;
  options.max_names = 16;
  ASSERT_TRUE(InstallFlightRecorder(options).ok());

  Histogram h;
  EmitSpan(&h, "flight_dump_span");
  DumpFlightRecorder("wal recovery: synthetic IOError for test");
  // First writer wins: a second dump must not clobber the first reason.
  DumpFlightRecorder("second reason that must not appear");

  auto dump = ReadFlightDump(path);
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  EXPECT_EQ(dump->crash_signal, 0);
  EXPECT_EQ(dump->crash_reason, "wal recovery: synthetic IOError for test");
  EXPECT_TRUE(dump->has_footer);
  EXPECT_EQ(dump->footer_signal, 0);
  EXPECT_EQ(dump->footer_reason,
            "wal recovery: synthetic IOError for test");
  std::remove(path.c_str());
}

TEST_F(FlightRecorderTest, ReinstallSwitchesToFreshBlackBox) {
  const std::string path_a = NewPath("reinstall_a");
  const std::string path_b = NewPath("reinstall_b");
  FlightRecorderOptions options;
  options.ring_records = 16;
  options.max_threads = 4;
  options.max_names = 16;

  options.path = path_a;
  ASSERT_TRUE(InstallFlightRecorder(options).ok());
  Histogram h;
  EmitSpan(&h, "flight_before_reinstall");

  options.path = path_b;
  ASSERT_TRUE(InstallFlightRecorder(options).ok());
  EmitSpan(&h, "flight_after_reinstall");

  auto dump_b = ReadFlightDump(path_b);
  ASSERT_TRUE(dump_b.ok()) << dump_b.status().ToString();
  std::set<std::string> names_b;
  for (const auto& t : dump_b->threads) {
    for (const auto& r : t.records) names_b.insert(dump_b->Name(r.name_id));
  }
  EXPECT_TRUE(names_b.count("flight_after_reinstall"));
  EXPECT_FALSE(names_b.count("flight_before_reinstall"));
  // The orphaned first box stays parseable.
  EXPECT_TRUE(ReadFlightDump(path_a).ok());
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST_F(FlightRecorderTest, ReaderRejectsGarbage) {
  const std::string path = NewPath("garbage");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a flight recorder dump at all";
  }
  EXPECT_FALSE(ReadFlightDump(path).ok());
  EXPECT_FALSE(ReadFlightDump(path + ".does_not_exist").ok());
  std::remove(path.c_str());
}

#if defined(ENSEMFDET_TEST_POSIX)
TEST_F(FlightRecorderTest, SignalDumpSmokeAcrossFork) {
  // End-to-end fatal-signal drill: a forked child installs its own black
  // box, records spans, and dies of SIGSEGV. The parent requires (a) the
  // child really died of SIGSEGV — the handler re-raises with default
  // disposition — and (b) the dump parses with the signal stamped and
  // the pre-crash spans retained. Fork happens before this binary spawns
  // any helper threads, so the child is single-threaded and safe.
  const std::string path = NewPath("signal");
  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: no gtest plumbing from here on; _exit on any failure so a
    // broken path never reports as a (crashed, hence "passing") run.
    FlightRecorderOptions options;
    options.path = path;
    options.ring_records = 32;
    options.max_threads = 4;
    options.max_names = 16;
    if (!InstallFlightRecorder(options).ok()) _exit(10);
    Histogram h;
    for (int i = 0; i < 7; ++i) EmitSpan(&h, "flight_presignal_span");
    ::raise(SIGSEGV);
    _exit(11);  // unreachable when the handler re-raises correctly
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status))
      << "child exited with code "
      << (WIFEXITED(status) ? WEXITSTATUS(status) : -1);
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  auto dump = ReadFlightDump(path);
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  EXPECT_EQ(dump->crash_signal, SIGSEGV);
  EXPECT_TRUE(dump->has_footer);
  EXPECT_EQ(dump->footer_signal, SIGSEGV);
  size_t total = 0;
  bool found_name = false;
  for (const auto& thread : dump->threads) {
    total += thread.records.size();
    for (const auto& r : thread.records) {
      if (dump->Name(r.name_id) == "flight_presignal_span") {
        found_name = true;
      }
    }
  }
  EXPECT_EQ(total, 7u);
  EXPECT_TRUE(found_name);
  std::remove(path.c_str());
}
#endif  // ENSEMFDET_TEST_POSIX

}  // namespace
}  // namespace obs
}  // namespace ensemfdet
