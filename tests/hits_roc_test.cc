// Tests for the HITS extension baseline and the ROC-curve evaluation.
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/hits.h"
#include "common/rng.h"
#include "eval/curves.h"
#include "graph/graph_builder.h"

namespace ensemfdet {
namespace {

BipartiteGraph LockstepGraph() {
  // Lockstep block users 0-7 × merchants 0-2 inside light noise.
  GraphBuilder b(60, 20);
  for (UserId u = 0; u < 8; ++u) {
    for (MerchantId v = 0; v < 3; ++v) b.AddEdge(u, v);
  }
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    b.AddEdge(static_cast<UserId>(8 + rng.NextBounded(52)),
              static_cast<MerchantId>(3 + rng.NextBounded(17)));
  }
  return b.Build().ValueOrDie();
}

TEST(HitsTest, RejectsBadInput) {
  GraphBuilder b(2, 2);
  auto empty = b.Build().ValueOrDie();
  EXPECT_FALSE(RunHits(empty).ok());

  auto g = LockstepGraph();
  HitsConfig cfg;
  cfg.iterations = 0;
  EXPECT_FALSE(RunHits(g, cfg).ok());
}

TEST(HitsTest, OutputShapeAndNormalization) {
  auto g = LockstepGraph();
  auto r = RunHits(g).ValueOrDie();
  EXPECT_EQ(static_cast<int64_t>(r.user_hub_scores.size()), g.num_users());
  EXPECT_EQ(static_cast<int64_t>(r.merchant_authority_scores.size()),
            g.num_merchants());
  double hub_norm = 0.0, auth_norm = 0.0;
  for (double s : r.user_hub_scores) hub_norm += s * s;
  for (double s : r.merchant_authority_scores) auth_norm += s * s;
  EXPECT_NEAR(std::sqrt(hub_norm), 1.0, 1e-9);
  EXPECT_NEAR(std::sqrt(auth_norm), 1.0, 1e-9);
  EXPECT_GE(r.iterations_run, 1);
}

TEST(HitsTest, LockstepBlockDominatesHubRanking) {
  auto g = LockstepGraph();
  auto r = RunHits(g).ValueOrDie();
  double block_min = 1e300, noise_max = 0.0;
  for (UserId u = 0; u < 8; ++u) {
    block_min = std::min(block_min, r.user_hub_scores[u]);
  }
  for (int64_t u = 8; u < g.num_users(); ++u) {
    noise_max =
        std::max(noise_max, r.user_hub_scores[static_cast<size_t>(u)]);
  }
  EXPECT_GT(block_min, noise_max);
}

TEST(HitsTest, ConvergesEarlyWithTightTolerance) {
  auto g = LockstepGraph();
  HitsConfig cfg;
  cfg.iterations = 500;
  cfg.tolerance = 1e-12;
  auto r = RunHits(g, cfg).ValueOrDie();
  EXPECT_LT(r.iterations_run, 500);
}

TEST(HitsTest, DeterministicAcrossRuns) {
  auto g = LockstepGraph();
  auto a = RunHits(g).ValueOrDie();
  auto b = RunHits(g).ValueOrDie();
  for (size_t u = 0; u < a.user_hub_scores.size(); ++u) {
    EXPECT_DOUBLE_EQ(a.user_hub_scores[u], b.user_hub_scores[u]);
  }
}

TEST(HitsTest, IsolatedUsersScoreZero) {
  GraphBuilder b(3, 1);
  b.AddEdge(0, 0);
  b.AddEdge(1, 0);
  auto g = b.Build().ValueOrDie();
  auto r = RunHits(g).ValueOrDie();
  EXPECT_DOUBLE_EQ(r.user_hub_scores[2], 0.0);
  EXPECT_GT(r.user_hub_scores[0], 0.0);
}

// --- ROC ------------------------------------------------------------------

TEST(RocTest, PerfectRankingAucOne) {
  // Fraud users 0,1 with the top scores → AUC 1.
  std::vector<double> scores{0.9, 0.8, 0.3, 0.2, 0.1};
  LabelSet labels(5, std::vector<UserId>{0, 1});
  auto roc = RocCurve(scores, labels);
  EXPECT_NEAR(RocAuc(roc), 1.0, 1e-12);
}

TEST(RocTest, InvertedRankingAucZero) {
  std::vector<double> scores{0.1, 0.2, 0.8, 0.9};
  LabelSet labels(4, std::vector<UserId>{0, 1});
  auto roc = RocCurve(scores, labels);
  EXPECT_NEAR(RocAuc(roc), 0.0, 1e-12);
}

TEST(RocTest, UniformScoresAucHalf) {
  // All scores tied → single step from (0,0) to (1,1) → AUC 0.5.
  std::vector<double> scores(10, 0.5);
  LabelSet labels(10, std::vector<UserId>{0, 3, 7});
  auto roc = RocCurve(scores, labels);
  EXPECT_NEAR(RocAuc(roc), 0.5, 1e-12);
  // Exactly 2 points: the origin and the all-in point.
  EXPECT_EQ(roc.size(), 2u);
}

TEST(RocTest, CurveEndsAtOneOne) {
  std::vector<double> scores{0.5, 0.4, 0.3, 0.9};
  LabelSet labels(4, std::vector<UserId>{2});
  auto roc = RocCurve(scores, labels);
  ASSERT_GE(roc.size(), 2u);
  EXPECT_DOUBLE_EQ(roc.front().true_positive_rate, 0.0);
  EXPECT_DOUBLE_EQ(roc.front().false_positive_rate, 0.0);
  EXPECT_DOUBLE_EQ(roc.back().true_positive_rate, 1.0);
  EXPECT_DOUBLE_EQ(roc.back().false_positive_rate, 1.0);
}

TEST(RocTest, RatesMonotone) {
  Rng rng(5);
  std::vector<double> scores(50);
  for (double& s : scores) s = rng.NextDouble();
  std::vector<UserId> fraud;
  for (UserId u = 0; u < 50; u += 7) fraud.push_back(u);
  LabelSet labels(50, fraud);
  auto roc = RocCurve(scores, labels);
  for (size_t i = 1; i < roc.size(); ++i) {
    EXPECT_GE(roc[i].true_positive_rate, roc[i - 1].true_positive_rate);
    EXPECT_GE(roc[i].false_positive_rate, roc[i - 1].false_positive_rate);
  }
}

TEST(RocTest, KnownAucHandComputed) {
  // Ranking: fraud, benign, fraud, benign → points after each distinct
  // score: (0, .5) (.5, .5) (.5, 1) (1, 1); AUC = 0.5*0.5 + 0.5*1 = 0.75.
  std::vector<double> scores{0.9, 0.7, 0.5, 0.3};
  LabelSet labels(4, std::vector<UserId>{0, 2});
  auto roc = RocCurve(scores, labels);
  EXPECT_NEAR(RocAuc(roc), 0.75, 1e-12);
}

TEST(RocTest, AucDegenerateCases) {
  EXPECT_DOUBLE_EQ(RocAuc({}), 0.0);
  std::vector<RocPoint> one(1);
  EXPECT_DOUBLE_EQ(RocAuc(one), 0.0);
}

TEST(RocTest, HitsRankingBeatsChanceOnLockstepGraph) {
  auto g = LockstepGraph();
  auto hits = RunHits(g).ValueOrDie();
  std::vector<UserId> fraud;
  for (UserId u = 0; u < 8; ++u) fraud.push_back(u);
  LabelSet labels(g.num_users(), fraud);
  auto roc = RocCurve(hits.user_hub_scores, labels);
  EXPECT_GT(RocAuc(roc), 0.9);
}

}  // namespace
}  // namespace ensemfdet
