// Bit-exact parity of the CSR hot path against the seed adjacency-list
// implementations (ISSUE 2 acceptance criterion): on random graphs —
// weighted and unweighted, dense and sparse, with isolated nodes — the
// CSR peeler, CSR k-core, and in-place CSR FDET must reproduce the seed's
// scores, suspicious sets, traces, and removal orders exactly (== on
// doubles, not near).
#include <algorithm>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "detect/csr_peeler.h"
#include "detect/fdet.h"
#include "detect/greedy_peeler.h"
#include "detect/partitioned_fdet.h"
#include "graph/csr_graph.h"
#include "graph/graph_builder.h"
#include "graph/kcore.h"

namespace ensemfdet {
namespace {

// Random bipartite graph with a planted dense block (so FDET finds real
// structure, not just noise), background noise, and a tail of isolated
// nodes (the compaction edge case).
BipartiteGraph RandomPeelGraph(int64_t users, int64_t merchants,
                               int64_t noise_edges, uint64_t seed,
                               bool weighted) {
  GraphBuilder b(users, merchants);
  Rng rng(seed);
  const int64_t block_users = std::max<int64_t>(3, users / 8);
  const int64_t block_merchants = std::max<int64_t>(2, merchants / 8);
  for (UserId u = 0; u < block_users; ++u) {
    for (MerchantId v = 0; v < block_merchants; ++v) {
      b.AddEdge(u, v, weighted ? 1.0 + rng.NextDouble() : 1.0);
    }
  }
  // Noise over the front 3/4 of each side; the back quarter stays isolated.
  for (int64_t i = 0; i < noise_edges; ++i) {
    const UserId u = static_cast<UserId>(
        rng.NextBounded(static_cast<uint64_t>(std::max<int64_t>(
            1, users * 3 / 4))));
    const MerchantId v = static_cast<MerchantId>(
        rng.NextBounded(static_cast<uint64_t>(std::max<int64_t>(
            1, merchants * 3 / 4))));
    b.AddEdge(u, v, weighted ? 0.5 + rng.NextDouble() : 1.0);
  }
  return b.Build(DuplicatePolicy::kKeepFirst).ValueOrDie();
}

void ExpectPeelResultsIdentical(const PeelResult& seed,
                                const PeelResult& csr) {
  EXPECT_EQ(seed.users, csr.users);
  EXPECT_EQ(seed.merchants, csr.merchants);
  EXPECT_EQ(seed.score, csr.score);  // bit-exact, not near
  EXPECT_EQ(seed.trace, csr.trace);
  EXPECT_EQ(seed.removal_order, csr.removal_order);
}

void ExpectFdetResultsIdentical(const FdetResult& seed,
                                const FdetResult& csr) {
  EXPECT_EQ(seed.all_scores, csr.all_scores);
  EXPECT_EQ(seed.truncation_index, csr.truncation_index);
  ASSERT_EQ(seed.blocks.size(), csr.blocks.size());
  for (size_t i = 0; i < seed.blocks.size(); ++i) {
    EXPECT_EQ(seed.blocks[i].users, csr.blocks[i].users) << "block " << i;
    EXPECT_EQ(seed.blocks[i].merchants, csr.blocks[i].merchants)
        << "block " << i;
    EXPECT_EQ(seed.blocks[i].score, csr.blocks[i].score) << "block " << i;
    EXPECT_EQ(seed.blocks[i].edges, csr.blocks[i].edges) << "block " << i;
  }
}

class CsrParityTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool>> {};

TEST_P(CsrParityTest, PeelerBitExact) {
  const auto [seed, weighted] = GetParam();
  BipartiteGraph g = RandomPeelGraph(80, 50, 300, seed, weighted);
  CsrGraph csr = CsrGraph::FromBipartite(g);
  for (ColumnWeightKind kind :
       {ColumnWeightKind::kLogarithmic, ColumnWeightKind::kInverse,
        ColumnWeightKind::kConstant}) {
    DensityConfig density;
    density.weight_kind = kind;
    ExpectPeelResultsIdentical(
        PeelDensestBlock(g, density, /*keep_trace=*/true),
        PeelDensestBlockCsr(csr, density, /*keep_trace=*/true));
  }
}

TEST_P(CsrParityTest, KCoreIdentical) {
  const auto [seed, weighted] = GetParam();
  BipartiteGraph g = RandomPeelGraph(90, 60, 400, seed, weighted);
  KCoreDecomposition a = ComputeKCores(g);
  KCoreDecomposition b = ComputeKCores(CsrGraph::FromBipartite(g));
  EXPECT_EQ(a.user_core, b.user_core);
  EXPECT_EQ(a.merchant_core, b.merchant_core);
  EXPECT_EQ(a.degeneracy, b.degeneracy);
}

TEST_P(CsrParityTest, FdetBitExactAutoElbow) {
  const auto [seed, weighted] = GetParam();
  BipartiteGraph g = RandomPeelGraph(80, 50, 350, seed, weighted);
  FdetConfig cfg;
  cfg.max_blocks = 12;
  auto reference = RunFdetReference(g, cfg).ValueOrDie();
  auto csr = RunFdet(g, cfg).ValueOrDie();
  ExpectFdetResultsIdentical(reference, csr);
}

TEST_P(CsrParityTest, FdetBitExactFixedK) {
  const auto [seed, weighted] = GetParam();
  BipartiteGraph g = RandomPeelGraph(70, 45, 300, seed, weighted);
  FdetConfig cfg;
  cfg.policy = TruncationPolicy::kFixedK;
  cfg.fixed_k = 6;
  cfg.max_blocks = 6;
  auto reference = RunFdetReference(g, cfg).ValueOrDie();
  auto csr = RunFdet(g, cfg).ValueOrDie();
  ExpectFdetResultsIdentical(reference, csr);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, CsrParityTest,
    ::testing::Combine(::testing::Values(1u, 7u, 23u, 101u),
                       ::testing::Bool()));

TEST(CsrParityDegenerateTest, EmptyGraph) {
  BipartiteGraph g;
  ExpectPeelResultsIdentical(
      PeelDensestBlock(g, {}, true),
      PeelDensestBlockCsr(CsrGraph::FromBipartite(g), {}, true));
  ExpectFdetResultsIdentical(RunFdetReference(g, {}).ValueOrDie(),
                             RunFdet(g, {}).ValueOrDie());
}

TEST(CsrParityDegenerateTest, EdgelessNodes) {
  GraphBuilder b(6, 4);
  BipartiteGraph g = b.Build().ValueOrDie();
  ExpectPeelResultsIdentical(
      PeelDensestBlock(g, {}, true),
      PeelDensestBlockCsr(CsrGraph::FromBipartite(g), {}, true));
  ExpectFdetResultsIdentical(RunFdetReference(g, {}).ValueOrDie(),
                             RunFdet(g, {}).ValueOrDie());
}

TEST(CsrParityDegenerateTest, SingleEdge) {
  GraphBuilder b(3, 3);
  b.AddEdge(2, 1);
  BipartiteGraph g = b.Build().ValueOrDie();
  ExpectPeelResultsIdentical(
      PeelDensestBlock(g, {}, true),
      PeelDensestBlockCsr(CsrGraph::FromBipartite(g), {}, true));
  ExpectFdetResultsIdentical(RunFdetReference(g, {}).ValueOrDie(),
                             RunFdet(g, {}).ValueOrDie());
}

TEST(CsrParityDegenerateTest, StarGraph) {
  // One merchant connected to every user — a worst case for tie-breaking.
  GraphBuilder b(12, 1);
  for (UserId u = 0; u < 12; ++u) b.AddEdge(u, 0);
  BipartiteGraph g = b.Build().ValueOrDie();
  ExpectPeelResultsIdentical(
      PeelDensestBlock(g, {}, true),
      PeelDensestBlockCsr(CsrGraph::FromBipartite(g), {}, true));
  ExpectFdetResultsIdentical(RunFdetReference(g, {}).ValueOrDie(),
                             RunFdet(g, {}).ValueOrDie());
}

TEST(CsrParityTestInvalidConfig, CsrPathValidatesLikeReference) {
  GraphBuilder b(2, 2);
  b.AddEdge(0, 0);
  BipartiteGraph g = b.Build().ValueOrDie();
  FdetConfig bad;
  bad.max_blocks = 0;
  EXPECT_FALSE(RunFdet(g, bad).ok());
  EXPECT_FALSE(RunFdetReference(g, bad).ok());
  EXPECT_FALSE(RunFdetCsr(CsrGraph::FromBipartite(g), bad).ok());
}

// The partitioned runner's single-component fast path (no subgraph
// rebuild) must stay interchangeable with the seed's compacted route.
TEST(CsrParityPartitionedTest, SingleComponentFastPathMatchesReference) {
  // Fully connected small graph → exactly one component spanning all edges.
  GraphBuilder b(20, 10);
  Rng rng(33);
  for (UserId u = 0; u < 20; ++u) {
    b.AddEdge(u, static_cast<MerchantId>(u % 10));
    b.AddEdge(u, static_cast<MerchantId>(rng.NextBounded(10)));
  }
  BipartiteGraph g = b.Build().ValueOrDie();

  PartitionedFdetConfig pcfg;
  pcfg.fdet.max_blocks = 8;
  auto partitioned = RunPartitionedFdet(g, pcfg).ValueOrDie();

  // Reference: per-component explore + merge, which for one spanning
  // component is the global FDET re-sorted by score.
  FdetConfig explore = pcfg.fdet;
  explore.policy = TruncationPolicy::kFixedK;
  explore.fixed_k = pcfg.fdet.max_blocks;
  auto reference = RunFdetReference(g, explore).ValueOrDie();
  std::stable_sort(reference.blocks.begin(), reference.blocks.end(),
                   [](const DetectedBlock& a, const DetectedBlock& b) {
                     return a.score > b.score;
                   });
  std::vector<double> sorted_scores;
  for (const DetectedBlock& blk : reference.blocks) {
    sorted_scores.push_back(blk.score);
  }
  const int keep = AutoTruncationIndex(sorted_scores);
  ASSERT_EQ(partitioned.truncation_index, keep);
  ASSERT_EQ(static_cast<int>(partitioned.blocks.size()), keep);
  for (int i = 0; i < keep; ++i) {
    EXPECT_EQ(partitioned.blocks[i].users, reference.blocks[i].users);
    EXPECT_EQ(partitioned.blocks[i].merchants,
              reference.blocks[i].merchants);
    EXPECT_EQ(partitioned.blocks[i].score, reference.blocks[i].score);
    EXPECT_EQ(partitioned.blocks[i].edges, reference.blocks[i].edges);
  }
}

}  // namespace
}  // namespace ensemfdet
