#include "service/detection_service.h"

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "datagen/transaction_stream.h"
#include "graph/graph_builder.h"
#include "service/graph_registry.h"
#include "service/result_cache.h"

namespace ensemfdet {
namespace {

// A dense 10×4 planted block inside sparse background traffic.
BipartiteGraph PlantedGraph(uint64_t seed = 3) {
  GraphBuilder b(120, 60);
  for (UserId u = 0; u < 10; ++u) {
    for (MerchantId v = 0; v < 4; ++v) b.AddEdge(u, v);
  }
  Rng rng(seed);
  for (int i = 0; i < 220; ++i) {
    b.AddEdge(static_cast<UserId>(10 + rng.NextBounded(110)),
              static_cast<MerchantId>(4 + rng.NextBounded(56)));
  }
  return b.Build().ValueOrDie();
}

EnsemFDetConfig SmallConfig(uint64_t seed = 11) {
  EnsemFDetConfig config;
  config.num_samples = 12;
  config.ratio = 0.3;
  config.seed = seed;
  config.fdet.max_blocks = 8;
  return config;
}

// ---------------------------------------------------------------------------
// Hash utility
// ---------------------------------------------------------------------------

TEST(Hash64Test, StableAndSensitive) {
  // Pinned value: the hash is a persistence-grade contract (cache keys).
  EXPECT_EQ(Hash64("", 0), Hash64("", 0));
  const uint64_t h = Hash64("ensemfdet");
  EXPECT_EQ(h, Hash64("ensemfdet"));
  EXPECT_NE(h, Hash64("ensemfdeT"));
  EXPECT_NE(h, Hash64("ensemfdet", /*seed=*/1));
  EXPECT_NE(Hash64("a"), Hash64("b"));
  // Length folding: a zero byte is not a no-op.
  EXPECT_NE(Hash64(std::string_view("\0", 1)), Hash64(std::string_view()));
}

TEST(Hash64Test, CombineIsOrderSensitive) {
  const uint64_t a = Hash64("a"), b = Hash64("b");
  EXPECT_NE(HashCombine(a, b), HashCombine(b, a));
  EXPECT_NE(HashCombine(a, b), a);
}

TEST(Hash64Test, HashValueNormalizesZero) {
  EXPECT_EQ(HashValue(0.0), HashValue(-0.0));
  EXPECT_NE(HashValue(0.0), HashValue(1.0));
}

// ---------------------------------------------------------------------------
// GraphRegistry
// ---------------------------------------------------------------------------

TEST(GraphRegistryTest, PublishGetRemove) {
  GraphRegistry registry;
  auto snap = registry.Publish("g", PlantedGraph());
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->version, 1u);
  EXPECT_NE(snap->fingerprint, 0u);

  auto got = registry.Get("g");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->fingerprint, snap->fingerprint);
  EXPECT_EQ(got->graph.get(), snap->graph.get());

  EXPECT_EQ(registry.Get("missing").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(registry.Remove("g").ok());
  EXPECT_EQ(registry.Remove("g").code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.size(), 0);
}

TEST(GraphRegistryTest, RejectsEmptyName) {
  GraphRegistry registry;
  EXPECT_EQ(registry.Publish("", PlantedGraph()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GraphRegistryTest, RepublishBumpsVersionAndIsolatesSnapshots) {
  GraphRegistry registry;
  auto v1 = registry.Publish("g", PlantedGraph(3)).ValueOrDie();
  // Holders of the old snapshot keep a valid, unchanged graph after a
  // re-publish (snapshot isolation).
  std::shared_ptr<const BipartiteGraph> held = v1.graph;
  const int64_t held_edges = held->num_edges();

  auto v2 = registry.Publish("g", PlantedGraph(4)).ValueOrDie();
  EXPECT_EQ(v2.version, 2u);
  EXPECT_NE(v2.fingerprint, v1.fingerprint);
  EXPECT_NE(v2.graph.get(), held.get());
  EXPECT_EQ(held->num_edges(), held_edges);
  EXPECT_EQ(registry.Get("g").ValueOrDie().version, 2u);
}

TEST(GraphRegistryTest, FingerprintIsContentBased) {
  // Same content, independently built → same fingerprint.
  EXPECT_EQ(FingerprintGraph(PlantedGraph(3)),
            FingerprintGraph(PlantedGraph(3)));
  // One extra edge → different fingerprint.
  EXPECT_NE(FingerprintGraph(PlantedGraph(3)),
            FingerprintGraph(PlantedGraph(4)));
}

TEST(GraphRegistryTest, FingerprintSeesWeightsAndShape) {
  GraphBuilder b(2, 2);
  b.AddEdge(0, 0);
  b.AddEdge(1, 1);
  BipartiteGraph unweighted = b.Build().ValueOrDie();

  b.AddEdge(0, 0, 2.0);
  b.AddEdge(1, 1);
  BipartiteGraph weighted = b.Build().ValueOrDie();
  EXPECT_NE(FingerprintGraph(unweighted), FingerprintGraph(weighted));

  // Isolated nodes change the shape even with identical edges.
  GraphBuilder wide(2, 3);
  wide.AddEdge(0, 0);
  wide.AddEdge(1, 1);
  EXPECT_NE(FingerprintGraph(unweighted),
            FingerprintGraph(wide.Build().ValueOrDie()));
}

TEST(GraphRegistryTest, ConcurrentPublishAndGet) {
  GraphRegistry registry;
  registry.Publish("g", PlantedGraph(0)).ValueOrDie();
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (uint64_t i = 1; i <= 20; ++i) {
      registry.Publish("g", PlantedGraph(i)).ValueOrDie();
    }
    stop.store(true);
  });
  // Readers must always see a complete snapshot.
  while (!stop.load()) {
    auto snap = registry.Get("g").ValueOrDie();
    EXPECT_EQ(snap.fingerprint, FingerprintGraph(*snap.graph));
  }
  writer.join();
  EXPECT_EQ(registry.Get("g").ValueOrDie().version, 21u);
}

// ---------------------------------------------------------------------------
// ResultCache
// ---------------------------------------------------------------------------

std::shared_ptr<const EnsemFDetReport> FakeReport(int num_samples) {
  auto report = std::make_shared<EnsemFDetReport>();
  report->num_samples = num_samples;
  return report;
}

TEST(ResultCacheTest, HitMissAndStats) {
  ResultCache cache(4);
  EXPECT_EQ(cache.Lookup(1, 1), nullptr);
  cache.Insert(1, 1, FakeReport(5));
  auto hit = cache.Lookup(1, 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->num_samples, 5);
  // Different config or different graph → miss.
  EXPECT_EQ(cache.Lookup(1, 2), nullptr);
  EXPECT_EQ(cache.Lookup(2, 1), nullptr);

  ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 3);
  EXPECT_EQ(stats.insertions, 1);
  EXPECT_EQ(stats.lookups(), 4);
}

TEST(ResultCacheTest, LruEviction) {
  ResultCache cache(2);
  cache.Insert(1, 0, FakeReport(1));
  cache.Insert(2, 0, FakeReport(2));
  ASSERT_NE(cache.Lookup(1, 0), nullptr);  // 1 is now most-recent
  cache.Insert(3, 0, FakeReport(3));       // evicts 2
  EXPECT_NE(cache.Lookup(1, 0), nullptr);
  EXPECT_EQ(cache.Lookup(2, 0), nullptr);
  EXPECT_NE(cache.Lookup(3, 0), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ResultCacheTest, ConfigHashCoversEveryDetectionField) {
  EnsemFDetConfig base = SmallConfig();
  const uint64_t h = HashEnsemFDetConfig(base);
  EXPECT_EQ(h, HashEnsemFDetConfig(base));  // stable

  auto differs = [&](auto mutate) {
    EnsemFDetConfig c = base;
    mutate(c);
    return HashEnsemFDetConfig(c) != h;
  };
  EXPECT_TRUE(differs([](auto& c) { c.method = SampleMethod::kTwoSide; }));
  EXPECT_TRUE(differs([](auto& c) { c.num_samples += 1; }));
  EXPECT_TRUE(differs([](auto& c) { c.ratio += 0.01; }));
  EXPECT_TRUE(differs([](auto& c) { c.reweight_edges = true; }));
  EXPECT_TRUE(differs([](auto& c) { c.seed += 1; }));
  EXPECT_TRUE(differs([](auto& c) { c.fdet.max_blocks += 1; }));
  EXPECT_TRUE(differs([](auto& c) { c.fdet.fixed_k += 1; }));
  EXPECT_TRUE(differs([](auto& c) { c.fdet.elbow_patience += 1; }));
  EXPECT_TRUE(differs([](auto& c) {
    c.fdet.policy = TruncationPolicy::kFixedK;
  }));
  EXPECT_TRUE(differs([](auto& c) { c.fdet.density.log_offset += 1.0; }));
  EXPECT_TRUE(differs([](auto& c) { c.fdet.min_block_score = 1e-6; }));
}

// ---------------------------------------------------------------------------
// DetectionService
// ---------------------------------------------------------------------------

TEST(DetectionServiceTest, SubmitPollWaitLifecycle) {
  GraphRegistry registry;
  ThreadPool pool(2);
  DetectionService service(&registry, &pool);
  registry.Publish("g", PlantedGraph()).ValueOrDie();

  JobRequest request;
  request.graph_name = "g";
  request.ensemble = SmallConfig();
  auto id = service.Submit(request);
  ASSERT_TRUE(id.ok());

  auto result = service.Wait(*id);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(service.Poll(*id).ValueOrDie(), JobState::kDone);
  EXPECT_EQ((*result)->id, *id);
  EXPECT_EQ((*result)->graph_name, "g");
  EXPECT_FALSE((*result)->cache_hit);
  ASSERT_NE((*result)->report, nullptr);
  EXPECT_EQ((*result)->report->num_samples, 12);
  // The planted ring should be detected by most members.
  EXPECT_FALSE((*result)->report->AcceptedUsers(6).empty());

  EXPECT_EQ(service.Poll(99999).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(service.pending_jobs(), 0);
}

TEST(DetectionServiceTest, UnknownGraphIsRejectedAtSubmit) {
  GraphRegistry registry;
  DetectionService service(&registry, nullptr);
  JobRequest request;
  request.graph_name = "nope";
  EXPECT_EQ(service.Submit(request).status().code(), StatusCode::kNotFound);
}

TEST(DetectionServiceTest, InvalidConfigIsRejectedAtSubmit) {
  GraphRegistry registry;
  DetectionService service(&registry, nullptr);
  registry.Publish("g", PlantedGraph()).ValueOrDie();
  JobRequest request;
  request.graph_name = "g";
  request.ensemble.num_samples = 0;
  EXPECT_EQ(service.Submit(request).status().code(),
            StatusCode::kInvalidArgument);
  request.ensemble.num_samples = 4;
  request.ensemble.ratio = 1.5;
  EXPECT_EQ(service.Submit(request).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DetectionServiceTest, CacheHitOnRepeatMissOnChange) {
  GraphRegistry registry;
  ThreadPool pool(4);
  DetectionService service(&registry, &pool);
  registry.Publish("g", PlantedGraph(3)).ValueOrDie();

  JobRequest request;
  request.graph_name = "g";
  request.ensemble = SmallConfig();

  auto first = service.Detect(request).ValueOrDie();
  EXPECT_FALSE(first->cache_hit);

  // Identical request → served from cache, same report object.
  auto second = service.Detect(request).ValueOrDie();
  EXPECT_TRUE(second->cache_hit);
  EXPECT_EQ(second->report.get(), first->report.get());
  EXPECT_EQ(second->config_hash, first->config_hash);

  // Config change → miss.
  JobRequest changed = request;
  changed.ensemble.num_samples += 2;
  auto third = service.Detect(changed).ValueOrDie();
  EXPECT_FALSE(third->cache_hit);

  // Graph change (re-publish) → new fingerprint → miss.
  registry.Publish("g", PlantedGraph(4)).ValueOrDie();
  auto fourth = service.Detect(request).ValueOrDie();
  EXPECT_FALSE(fourth->cache_hit);
  EXPECT_NE(fourth->graph_fingerprint, first->graph_fingerprint);

  // Original graph re-published → fingerprint matches → hit again.
  registry.Publish("g", PlantedGraph(3)).ValueOrDie();
  auto fifth = service.Detect(request).ValueOrDie();
  EXPECT_TRUE(fifth->cache_hit);

  ResultCacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.hits, 2);
  EXPECT_EQ(stats.misses, 3);
  EXPECT_EQ(stats.insertions, 3);
}

TEST(DetectionServiceTest, UseCacheFalseBypassesCache) {
  GraphRegistry registry;
  DetectionService service(&registry, nullptr);
  registry.Publish("g", PlantedGraph()).ValueOrDie();

  JobRequest request;
  request.graph_name = "g";
  request.ensemble = SmallConfig();
  request.use_cache = false;
  auto first = service.Detect(request).ValueOrDie();
  auto second = service.Detect(request).ValueOrDie();
  EXPECT_FALSE(first->cache_hit);
  EXPECT_FALSE(second->cache_hit);
  EXPECT_EQ(service.cache_stats().lookups(), 0);
}

TEST(DetectionServiceTest, ConcurrentSubmitDeterminism) {
  // The same (graph, config) submitted from many client threads onto pools
  // of different widths must yield bit-identical vote tables.
  const BipartiteGraph graph = PlantedGraph();
  const EnsemFDetConfig config = SmallConfig(77);

  std::vector<std::vector<int32_t>> vote_tables;
  for (int num_threads : {1, 2, 5}) {
    GraphRegistry registry;
    ThreadPool pool(num_threads);
    DetectionService::Options options;
    options.max_pending_jobs = 64;
    DetectionService service(&registry, &pool, options);
    registry.Publish("g", graph).ValueOrDie();

    // Hammer the service from several submitter threads. Disable the
    // cache so every job really recomputes.
    constexpr int kClients = 4, kJobsPerClient = 3;
    std::vector<std::thread> clients;
    std::vector<JobId> ids(kClients * kJobsPerClient);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int j = 0; j < kJobsPerClient; ++j) {
          JobRequest request;
          request.graph_name = "g";
          request.ensemble = config;
          request.use_cache = false;
          ids[c * kJobsPerClient + j] =
              service.Submit(request).ValueOrDie();
        }
      });
    }
    for (auto& t : clients) t.join();

    for (JobId id : ids) {
      auto result = service.Wait(id).ValueOrDie();
      std::vector<int32_t> votes(
          result->report->votes.all_user_votes().begin(),
          result->report->votes.all_user_votes().end());
      vote_tables.push_back(std::move(votes));
    }
  }
  for (size_t i = 1; i < vote_tables.size(); ++i) {
    ASSERT_EQ(vote_tables[i], vote_tables[0])
        << "vote table " << i << " diverged";
  }
}

TEST(DetectionServiceTest, QueueBackpressure) {
  GraphRegistry registry;
  ThreadPool pool(1);
  DetectionService::Options options;
  options.max_pending_jobs = 2;
  DetectionService service(&registry, &pool, options);
  registry.Publish("g", PlantedGraph()).ValueOrDie();

  JobRequest request;
  request.graph_name = "g";
  request.ensemble = SmallConfig();
  request.use_cache = false;

  // Saturate the bound: submit until rejected; the bound guarantees at
  // most 2 in flight, so by the 3rd un-drained submit we must see
  // ResourceExhausted at least once.
  std::vector<JobId> accepted;
  bool saw_backpressure = false;
  for (int i = 0; i < 16 && !saw_backpressure; ++i) {
    auto id = service.Submit(request);
    if (id.ok()) {
      accepted.push_back(*id);
      EXPECT_LE(service.pending_jobs(), 2);
    } else {
      EXPECT_EQ(id.status().code(), StatusCode::kResourceExhausted);
      saw_backpressure = true;
    }
  }
  EXPECT_TRUE(saw_backpressure);

  // Draining the accepted jobs frees capacity again.
  for (JobId id : accepted) {
    auto result = service.Wait(id);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  }
  EXPECT_EQ(service.pending_jobs(), 0);
  EXPECT_TRUE(service.Submit(request).ok());
}

TEST(DetectionServiceTest, CancelQueuedJob) {
  GraphRegistry registry;
  // No pool: run jobs inline, so a *second* submission never starts
  // until we let it — instead test Cancel's state rules directly.
  DetectionService service(&registry, nullptr);
  registry.Publish("g", PlantedGraph()).ValueOrDie();

  JobRequest request;
  request.graph_name = "g";
  request.ensemble = SmallConfig();
  auto id = service.Submit(request).ValueOrDie();
  // Inline execution: the job is already done, so Cancel must refuse.
  EXPECT_EQ(service.Cancel(id).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.Cancel(424242).code(), StatusCode::kNotFound);
  EXPECT_TRUE(service.Wait(id).ok());
}

TEST(DetectionServiceTest, CancelBeforeRunYieldsCancelledState) {
  GraphRegistry registry;
  // A 1-thread pool running a long job keeps later jobs queued long
  // enough to cancel them deterministically.
  ThreadPool pool(1);
  DetectionService::Options options;
  options.max_pending_jobs = 8;
  DetectionService service(&registry, &pool, options);
  registry.Publish("g", PlantedGraph()).ValueOrDie();

  JobRequest slow;
  slow.graph_name = "g";
  slow.ensemble = SmallConfig();
  slow.ensemble.num_samples = 40;
  slow.use_cache = false;
  auto running = service.Submit(slow).ValueOrDie();

  auto queued = service.Submit(slow).ValueOrDie();
  Status cancel = service.Cancel(queued);
  if (cancel.ok()) {  // won the race against the worker picking it up
    EXPECT_EQ(service.Poll(queued).ValueOrDie(), JobState::kCancelled);
    auto waited = service.Wait(queued);
    EXPECT_EQ(waited.status().code(), StatusCode::kFailedPrecondition);
  }
  EXPECT_TRUE(service.Wait(running).ok());
}

TEST(DetectionServiceTest, BaselineJobsProduceScores) {
  GraphRegistry registry;
  ThreadPool pool(2);
  DetectionService service(&registry, &pool);
  const BipartiteGraph graph = PlantedGraph();
  registry.Publish("g", graph).ValueOrDie();

  for (DetectorKind kind : {DetectorKind::kFraudar, DetectorKind::kHits,
                            DetectorKind::kSpoken, DetectorKind::kFbox}) {
    JobRequest request;
    request.graph_name = "g";
    request.detector = kind;
    auto result = service.Detect(request);
    ASSERT_TRUE(result.ok()) << DetectorKindName(kind) << ": "
                             << result.status().ToString();
    EXPECT_EQ((*result)->detector, kind);
    ASSERT_EQ(static_cast<int64_t>((*result)->user_scores.size()),
              graph.num_users())
        << DetectorKindName(kind);
    EXPECT_EQ((*result)->report, nullptr);
  }
  // Baseline jobs never touch the ensemble result cache.
  EXPECT_EQ(service.cache_stats().lookups(), 0);
}

TEST(DetectionServiceTest, WindowedReplayJob) {
  GraphRegistry registry;
  ThreadPool pool(2);
  DetectionService service(&registry, &pool);

  // A burst of ring traffic: 8 users × 3 merchants, repeated over time.
  JobRequest request;
  WindowedReplaySpec spec;
  spec.config.num_users = 40;
  spec.config.num_merchants = 20;
  spec.config.window = 100;
  spec.config.detection_interval = 50;
  spec.config.ensemble = SmallConfig();
  int64_t ts = 0;
  for (int round = 0; round < 30; ++round) {
    for (UserId u = 0; u < 8; ++u) {
      spec.transactions.push_back(
          {ts, u, static_cast<MerchantId>(u % 3)});
      ts += 1;
    }
  }
  request.windowed = std::move(spec);

  auto result = service.Detect(std::move(request));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE((*result)->windowed_detections, 1);
  ASSERT_NE((*result)->report, nullptr);
  EXPECT_EQ((*result)->report->votes.num_users(), 40);
}

TEST(DetectionServiceTest, WindowedReplayRejectsBadRequestsAtSubmit) {
  GraphRegistry registry;
  DetectionService service(&registry, nullptr);

  JobRequest out_of_order;
  WindowedReplaySpec spec;
  spec.config.num_users = 4;
  spec.config.num_merchants = 4;
  spec.config.ensemble = SmallConfig();
  spec.transactions = {{10, 0, 0}, {5, 1, 1}};
  out_of_order.windowed = spec;
  EXPECT_EQ(service.Submit(std::move(out_of_order)).status().code(),
            StatusCode::kInvalidArgument);

  // The embedded ensemble config is validated up front too, same as for
  // non-windowed jobs.
  JobRequest bad_config;
  spec.transactions = {{5, 1, 1}, {10, 0, 0}};
  spec.config.ensemble.ratio = 1.5;
  bad_config.windowed = std::move(spec);
  EXPECT_EQ(service.Submit(std::move(bad_config)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DetectionServiceTest, DetectSurvivesFinishedJobEviction) {
  // With retention of a single finished job, concurrent Detect() calls
  // evict each other's entries from the id table — but Detect waits on
  // the job handle, so every caller still gets its own result.
  GraphRegistry registry;
  ThreadPool pool(3);
  DetectionService::Options options;
  options.max_finished_jobs = 1;
  DetectionService service(&registry, &pool, options);
  registry.Publish("g", PlantedGraph()).ValueOrDie();

  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  std::vector<Status> statuses(kClients, Status::OK());
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < 3; ++i) {
        JobRequest request;
        request.graph_name = "g";
        request.ensemble = SmallConfig(static_cast<uint64_t>(c * 17 + i));
        request.use_cache = false;
        auto result = service.Detect(request);
        if (!result.ok()) {
          statuses[c] = result.status();
          return;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(statuses[c].ok()) << "client " << c << ": "
                                  << statuses[c].ToString();
  }
}

// ---------------------------------------------------------------------------
// Streaming sessions (OpenStream / IngestBatch / PollReport)
// ---------------------------------------------------------------------------

StreamSessionConfig SmallStreamSession(uint64_t seed = 17) {
  StreamSessionConfig config;
  config.detector.num_users = 120;
  config.detector.num_merchants = 60;
  config.detector.window = 400;
  config.detector.detection_interval = 100;
  config.detector.ensemble = SmallConfig(seed);
  config.detector.ensemble.num_samples = 6;
  return config;
}

// A timestamped stream over the planted graph: one event per edge, dense
// block first (a burst), then background.
std::vector<Transaction> PlantedStream() {
  BipartiteGraph graph = PlantedGraph();
  std::vector<Transaction> events;
  int64_t t = 0;
  for (const Edge& e : graph.edges()) {
    events.push_back({t++, e.user, e.merchant});
  }
  return events;
}

TEST(StreamSessionTest, OpenStreamValidatesConfig) {
  GraphRegistry registry;
  DetectionService service(&registry, nullptr);
  StreamSessionConfig bad = SmallStreamSession();
  bad.detector.window = 0;
  EXPECT_FALSE(service.OpenStream(bad).ok());
  bad = SmallStreamSession();
  bad.detector.ensemble.ratio = 1.5;
  EXPECT_FALSE(service.OpenStream(bad).ok());
  bad = SmallStreamSession();
  bad.max_queued_batches = 0;
  EXPECT_FALSE(service.OpenStream(bad).ok());
  bad = SmallStreamSession();
  bad.detector.max_out_of_order = -3;
  EXPECT_FALSE(service.OpenStream(bad).ok());
  // Store knobs must fail synchronously here, not as a sticky session
  // error on the first batch (the detector builds its store lazily).
  bad = SmallStreamSession();
  bad.detector.compaction_factor = 0.0;
  EXPECT_FALSE(service.OpenStream(bad).ok());
  bad = SmallStreamSession();
  bad.detector.min_compaction_delta = 0;
  EXPECT_FALSE(service.OpenStream(bad).ok());
  EXPECT_TRUE(service.OpenStream(SmallStreamSession()).ok());
}

TEST(StreamSessionTest, IngestPollFinishLifecycle) {
  GraphRegistry registry;
  DetectionService service(&registry, nullptr);  // inline execution
  StreamSessionConfig config = SmallStreamSession();
  config.publish_name = "live";
  StreamId id = service.OpenStream(config).ValueOrDie();
  EXPECT_EQ(service.open_streams(), 1);

  auto batches = SliceIntoBatches(PlantedStream(), 50).ValueOrDie();
  for (const IngestBatch& batch : batches) {
    ASSERT_TRUE(service.IngestBatch(id, batch).ok());
  }
  StreamState state = service.PollReport(id).ValueOrDie();
  EXPECT_TRUE(state.error.ok());
  EXPECT_EQ(state.events_ingested,
            static_cast<int64_t>(PlantedStream().size()));
  EXPECT_GT(state.reports_generated, 0u);
  ASSERT_NE(state.report, nullptr);
  EXPECT_EQ(state.report->num_samples, 6);
  EXPECT_GT(state.report_stats.components_total, 0);

  // Every fired detection registered its version under "live".
  GraphSnapshot snapshot = registry.Get("live").ValueOrDie();
  EXPECT_EQ(snapshot.fingerprint, state.report_fingerprint);
  EXPECT_EQ(snapshot.version, state.reports_generated);

  // Finish: final forced detection, session removed.
  StreamState final_state = service.FinishStream(id).ValueOrDie();
  EXPECT_TRUE(final_state.error.ok());
  EXPECT_EQ(final_state.reports_generated, state.reports_generated + 1);
  ASSERT_NE(final_state.report, nullptr);
  EXPECT_EQ(service.open_streams(), 0);
  EXPECT_FALSE(service.PollReport(id).ok());
  EXPECT_FALSE(service.IngestBatch(id, {}).ok());

  // The dense planted block out-votes background in the final report.
  const EnsemFDetReport& report = *final_state.report;
  double block = 0, background = 0;
  for (UserId u = 0; u < 10; ++u) block += report.votes.user_votes(u);
  for (UserId u = 10; u < 120; ++u) background += report.votes.user_votes(u);
  EXPECT_GT(block / 10.0, background / 110.0);
}

TEST(StreamSessionTest, StreamedReportsLandInResultCacheByContentKey) {
  GraphRegistry registry;
  DetectionService service(&registry, nullptr);
  StreamSessionConfig config = SmallStreamSession();
  StreamId id = service.OpenStream(config).ValueOrDie();
  IngestBatch all;
  all.transactions = PlantedStream();
  ASSERT_TRUE(service.IngestBatch(id, all).ok());
  StreamState state = service.FinishStream(id).ValueOrDie();
  ASSERT_TRUE(state.error.ok());
  ASSERT_NE(state.report, nullptr);

  // The latest report is retrievable from the shared ResultCache under
  // (content fingerprint, streaming-salted config hash)…
  auto cached = service.cache().Lookup(
      state.report_fingerprint, HashStreamingConfig(config.detector));
  ASSERT_NE(cached, nullptr);
  EXPECT_EQ(cached.get(), state.report.get());
  // …and the streaming salt keeps it disjoint from batch-job keys over
  // the very same graph+ensemble config.
  EXPECT_NE(HashStreamingConfig(config.detector),
            HashEnsemFDetConfig(config.detector.ensemble));
}

TEST(StreamSessionTest, RegisteredVersionIsRepresentationIndependent) {
  GraphRegistry registry;
  ThreadPool pool(2);
  DetectionService service(&registry, &pool);
  StreamSessionConfig config = SmallStreamSession();
  config.publish_name = "live";
  StreamId id = service.OpenStream(config).ValueOrDie();
  IngestBatch all;
  all.transactions = PlantedStream();
  ASSERT_TRUE(service.IngestBatch(id, all).ok());
  StreamState state = service.FinishStream(id).ValueOrDie();
  ASSERT_TRUE(state.error.ok());

  // A batch ensemble job over the streamed-then-registered graph…
  JobRequest request;
  request.graph_name = "live";
  request.ensemble = SmallConfig(23);
  auto first = service.Detect(request).ValueOrDie();
  EXPECT_FALSE(first->cache_hit);

  // …shares cache entries with the same content published from a plain
  // BipartiteGraph (the window held every event, so the live graph is
  // exactly PlantedGraph).
  GraphSnapshot republished =
      registry.Publish("copy", PlantedGraph()).ValueOrDie();
  EXPECT_EQ(republished.fingerprint, state.report_fingerprint);
  request.graph_name = "copy";
  auto second = service.Detect(request).ValueOrDie();
  EXPECT_TRUE(second->cache_hit);
  EXPECT_EQ(second->report.get(), first->report.get());
}

TEST(StreamSessionTest, StickyErrorSurfacesAndDropsLaterBatches) {
  GraphRegistry registry;
  DetectionService service(&registry, nullptr);
  StreamId id = service.OpenStream(SmallStreamSession()).ValueOrDie();
  IngestBatch good;
  good.transactions.push_back({100, 1, 1});
  ASSERT_TRUE(service.IngestBatch(id, good).ok());
  IngestBatch regressing;
  regressing.transactions.push_back({5, 2, 2});  // far beyond slack 0
  ASSERT_TRUE(service.IngestBatch(id, regressing).ok());  // fails async

  StreamState state = service.WaitReport(id, /*min_reports=*/0).ValueOrDie();
  EXPECT_FALSE(state.error.ok());
  EXPECT_EQ(state.error.code(), StatusCode::kFailedPrecondition);
  // Subsequent ingests surface the sticky error immediately.
  EXPECT_FALSE(service.IngestBatch(id, good).ok());
  // Finish still works: it reports the error state and removes the
  // session.
  StreamState final_state = service.FinishStream(id).ValueOrDie();
  EXPECT_FALSE(final_state.error.ok());
  EXPECT_EQ(service.open_streams(), 0);
}

TEST(StreamSessionTest, ParallelSessionsAreIsolated) {
  GraphRegistry registry;
  ThreadPool pool(4);
  DetectionService service(&registry, &pool);
  StreamSessionConfig a_config = SmallStreamSession(100);
  StreamSessionConfig b_config = SmallStreamSession(200);
  StreamId a = service.OpenStream(a_config).ValueOrDie();
  StreamId b = service.OpenStream(b_config).ValueOrDie();

  auto batches = SliceIntoBatches(PlantedStream(), 30).ValueOrDie();
  for (const IngestBatch& batch : batches) {
    ASSERT_TRUE(service.IngestBatch(a, batch).ok());
    ASSERT_TRUE(service.IngestBatch(b, batch).ok());
  }
  StreamState sa = service.FinishStream(a).ValueOrDie();
  StreamState sb = service.FinishStream(b).ValueOrDie();
  ASSERT_TRUE(sa.error.ok());
  ASSERT_TRUE(sb.error.ok());
  // Same content, same universe → same fingerprint; independent seeds →
  // independent reports, but both detected the planted block.
  EXPECT_EQ(sa.report_fingerprint, sb.report_fingerprint);
  EXPECT_EQ(sa.events_ingested, sb.events_ingested);
  ASSERT_NE(sa.report, nullptr);
  ASSERT_NE(sb.report, nullptr);
}

TEST(StreamSessionTest, CloseStreamDrainsAndRemoves) {
  GraphRegistry registry;
  ThreadPool pool(2);
  DetectionService service(&registry, &pool);
  StreamId id = service.OpenStream(SmallStreamSession()).ValueOrDie();
  auto batches = SliceIntoBatches(PlantedStream(), 40).ValueOrDie();
  for (const IngestBatch& batch : batches) {
    ASSERT_TRUE(service.IngestBatch(id, batch).ok());
  }
  ASSERT_TRUE(service.CloseStream(id).ok());
  EXPECT_EQ(service.open_streams(), 0);
  EXPECT_FALSE(service.PollReport(id).ok());
}

TEST(StreamSessionTest, DestructorDrainsActiveSessions) {
  GraphRegistry registry;
  ThreadPool pool(2);
  {
    DetectionService service(&registry, &pool);
    StreamId id = service.OpenStream(SmallStreamSession()).ValueOrDie();
    auto batches = SliceIntoBatches(PlantedStream(), 60).ValueOrDie();
    for (const IngestBatch& batch : batches) {
      ASSERT_TRUE(service.IngestBatch(id, batch).ok());
    }
    // ~DetectionService must block until the drainer finishes; otherwise
    // the session worker would touch freed service state.
  }
  SUCCEED();
}

TEST(DetectionServiceTest, DestructorDrainsInFlightJobs) {
  GraphRegistry registry;
  ThreadPool pool(2);
  std::vector<JobId> ids;
  {
    DetectionService service(&registry, &pool);
    registry.Publish("g", PlantedGraph()).ValueOrDie();
    JobRequest request;
    request.graph_name = "g";
    request.ensemble = SmallConfig();
    request.use_cache = false;
    for (int i = 0; i < 6; ++i) {
      ids.push_back(service.Submit(request).ValueOrDie());
    }
    // ~DetectionService must block until all six jobs drained; if it
    // doesn't, the pool tasks would touch freed memory and crash.
  }
  EXPECT_EQ(ids.size(), 6u);
}

}  // namespace
}  // namespace ensemfdet
