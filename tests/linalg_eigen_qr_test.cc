// Tests for modified Gram-Schmidt orthonormalization and the cyclic Jacobi
// symmetric eigensolver.
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/jacobi_eigen.h"
#include "linalg/qr.h"

namespace ensemfdet {
namespace {

void ExpectOrthonormalColumns(const DenseMatrix& m, double tol = 1e-10) {
  for (int64_t i = 0; i < m.cols(); ++i) {
    for (int64_t j = i; j < m.cols(); ++j) {
      const double d = Dot(m.col(i), m.col(j));
      EXPECT_NEAR(d, i == j ? 1.0 : 0.0, tol) << "columns " << i << "," << j;
    }
  }
}

TEST(QrTest, OrthonormalizesRandomMatrix) {
  Rng rng(1);
  DenseMatrix m(50, 8);
  for (int64_t c = 0; c < 8; ++c) {
    for (double& x : m.col(c)) x = rng.NextGaussian();
  }
  int redrawn = OrthonormalizeColumns(&m, &rng);
  EXPECT_EQ(redrawn, 0);
  ExpectOrthonormalColumns(m);
}

TEST(QrTest, PreservesColumnSpanOfFirstColumn) {
  Rng rng(2);
  DenseMatrix m(10, 2);
  for (double& x : m.col(0)) x = rng.NextGaussian();
  for (double& x : m.col(1)) x = rng.NextGaussian();
  std::vector<double> original(m.col(0).begin(), m.col(0).end());
  OrthonormalizeColumns(&m, &rng);
  // First column is only normalized: must stay parallel to the original.
  const double norm = Norm2(original);
  double cosine = Dot(m.col(0), original) / norm;
  EXPECT_NEAR(std::abs(cosine), 1.0, 1e-12);
}

TEST(QrTest, RankDeficientColumnsRedrawn) {
  Rng rng(3);
  DenseMatrix m(10, 3);
  for (double& x : m.col(0)) x = rng.NextGaussian();
  // Columns 1, 2 duplicate column 0: rank 1 input.
  for (int64_t c = 1; c < 3; ++c) {
    for (int64_t r = 0; r < 10; ++r) m(r, c) = m(r, 0);
  }
  int redrawn = OrthonormalizeColumns(&m, &rng);
  EXPECT_EQ(redrawn, 2);
  ExpectOrthonormalColumns(m);
}

TEST(QrTest, ZeroMatrixFullyRedrawn) {
  Rng rng(4);
  DenseMatrix m(6, 3);
  int redrawn = OrthonormalizeColumns(&m, &rng);
  EXPECT_EQ(redrawn, 3);
  ExpectOrthonormalColumns(m);
}

TEST(QrTest, IllConditionedStillOrthonormal) {
  Rng rng(5);
  DenseMatrix m(40, 4);
  for (double& x : m.col(0)) x = rng.NextGaussian();
  // Nearly dependent columns: col_i = col0 + tiny noise.
  for (int64_t c = 1; c < 4; ++c) {
    for (int64_t r = 0; r < 40; ++r) {
      m(r, c) = m(r, 0) + 1e-9 * rng.NextGaussian();
    }
  }
  OrthonormalizeColumns(&m, &rng);
  ExpectOrthonormalColumns(m, 1e-8);
}

TEST(QrDeathTest, MoreColumnsThanRowsAborts) {
  Rng rng(6);
  DenseMatrix m(2, 5);
  EXPECT_DEATH((void)OrthonormalizeColumns(&m, &rng), "orthonormalize");
}

TEST(JacobiTest, DiagonalMatrix) {
  DenseMatrix s(3, 3);
  s(0, 0) = 1.0;
  s(1, 1) = 5.0;
  s(2, 2) = 3.0;
  SymmetricEigen e = SymmetricEigenDecompose(s);
  ASSERT_EQ(e.values.size(), 3u);
  EXPECT_NEAR(e.values[0], 5.0, 1e-12);
  EXPECT_NEAR(e.values[1], 3.0, 1e-12);
  EXPECT_NEAR(e.values[2], 1.0, 1e-12);
}

TEST(JacobiTest, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1 with vectors (1,1)/√2, (1,-1)/√2.
  DenseMatrix s(2, 2);
  s(0, 0) = 2;
  s(0, 1) = 1;
  s(1, 0) = 1;
  s(1, 1) = 2;
  SymmetricEigen e = SymmetricEigenDecompose(s);
  EXPECT_NEAR(e.values[0], 3.0, 1e-12);
  EXPECT_NEAR(e.values[1], 1.0, 1e-12);
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(e.vectors(0, 0)), inv_sqrt2, 1e-10);
  EXPECT_NEAR(std::abs(e.vectors(1, 0)), inv_sqrt2, 1e-10);
}

TEST(JacobiTest, ReconstructsMatrix) {
  Rng rng(7);
  const int n = 12;
  DenseMatrix s(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      double v = rng.NextGaussian();
      s(i, j) = v;
      s(j, i) = v;
    }
  }
  DenseMatrix original = s;
  SymmetricEigen e = SymmetricEigenDecompose(s);

  // Rebuild S = V Λ Vᵀ and compare entrywise.
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double rebuilt = 0.0;
      for (int t = 0; t < n; ++t) {
        rebuilt += e.values[static_cast<size_t>(t)] * e.vectors(i, t) *
                   e.vectors(j, t);
      }
      EXPECT_NEAR(rebuilt, original(i, j), 1e-9);
    }
  }
}

TEST(JacobiTest, EigenvectorsOrthonormal) {
  Rng rng(8);
  const int n = 10;
  DenseMatrix s(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      double v = rng.NextDouble();
      s(i, j) = v;
      s(j, i) = v;
    }
  }
  SymmetricEigen e = SymmetricEigenDecompose(s);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      EXPECT_NEAR(Dot(e.vectors.col(i), e.vectors.col(j)),
                  i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(JacobiTest, ValuesDescending) {
  Rng rng(9);
  const int n = 15;
  DenseMatrix s(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      double v = rng.NextGaussian();
      s(i, j) = v;
      s(j, i) = v;
    }
  }
  SymmetricEigen e = SymmetricEigenDecompose(s);
  for (size_t i = 1; i < e.values.size(); ++i) {
    EXPECT_GE(e.values[i - 1], e.values[i] - 1e-12);
  }
}

TEST(JacobiTest, PsdGramHasNonNegativeEigenvalues) {
  Rng rng(10);
  DenseMatrix a(20, 6);
  for (int64_t c = 0; c < 6; ++c) {
    for (double& x : a.col(c)) x = rng.NextGaussian();
  }
  SymmetricEigen e = SymmetricEigenDecompose(GramMatrix(a));
  for (double v : e.values) EXPECT_GE(v, -1e-9);
}

TEST(JacobiTest, OneByOne) {
  DenseMatrix s(1, 1);
  s(0, 0) = -4.0;
  SymmetricEigen e = SymmetricEigenDecompose(s);
  ASSERT_EQ(e.values.size(), 1u);
  EXPECT_DOUBLE_EQ(e.values[0], -4.0);
  EXPECT_NEAR(std::abs(e.vectors(0, 0)), 1.0, 1e-12);
}

}  // namespace
}  // namespace ensemfdet
