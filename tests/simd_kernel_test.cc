// Cross-checks every SIMD kernel against its scalar referee
// (DESIGN.md §"SIMD kernels & dispatch"): randomized residual views at
// every available ISA level, over empty, single-lane, and
// non-multiple-of-width sizes. gather_slot_mass / next_alive /
// count_alive must match the referee BIT-exactly (they are deployed on
// the peeling hot path under the ensemble's bit-parity gates);
// masked_sum is reassociating, so it is checked to tolerance here and
// to vote-identity at the detection level (EndToEndDetectionParity).
#include "detect/simd/kernels.h"

#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "detect/fdet.h"
#include "detect/simd/isa.h"
#include "ensemble/ensemfdet.h"
#include "graph/graph_builder.h"

namespace ensemfdet {
namespace simd {
namespace {

// Sizes straddling every width boundary: empty, sub-lane, exact-lane,
// lane+1, sub-block, exact AVX2/AVX-512 block, block+1, and large.
const int64_t kSizes[] = {0, 1, 3, 4, 5, 7, 8, 9, 31, 32, 33, 63, 64, 65, 257,
                          1000};

std::vector<IsaLevel> AvailableLevels() {
  std::vector<IsaLevel> levels = {IsaLevel::kScalar};
  if (DetectedIsaLevel() >= IsaLevel::kAvx2) levels.push_back(IsaLevel::kAvx2);
  if (DetectedIsaLevel() >= IsaLevel::kAvx512) {
    levels.push_back(IsaLevel::kAvx512);
  }
  return levels;
}

struct RandomView {
  std::vector<double> weight;
  std::vector<int32_t> merchant_packed;
  std::vector<double> col_weight;
  std::vector<uint8_t> alive;
  int32_t packed_base;
};

RandomView MakeView(int64_t n, uint64_t seed, double alive_fraction) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  RandomView v;
  v.packed_base = 100 + static_cast<int32_t>(rng() % 50);
  const int32_t num_merchants = 1 + static_cast<int32_t>(rng() % 40);
  v.col_weight.resize(static_cast<size_t>(num_merchants));
  for (double& w : v.col_weight) w = 0.25 + unit(rng);
  v.weight.resize(static_cast<size_t>(n));
  v.merchant_packed.resize(static_cast<size_t>(n));
  v.alive.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    v.weight[static_cast<size_t>(i)] = unit(rng) * 3.0;
    v.merchant_packed[static_cast<size_t>(i)] =
        v.packed_base + static_cast<int32_t>(rng() % num_merchants);
    v.alive[static_cast<size_t>(i)] = unit(rng) < alive_fraction ? 1 : 0;
  }
  return v;
}

TEST(SimdKernelTest, GatherSlotMassBitExactAgainstScalarReferee) {
  const KernelTable& referee = ScalarKernels();
  for (IsaLevel level : AvailableLevels()) {
    const KernelTable& kern = KernelsFor(level);
    for (int64_t n : kSizes) {
      for (uint64_t seed : {1u, 2u, 3u}) {
        const RandomView v = MakeView(n, seed + static_cast<uint64_t>(n), 0.5);
        const double scale = 1.0 / (1.0 + static_cast<double>(seed));
        std::vector<double> got(static_cast<size_t>(n), -1.0);
        std::vector<double> want(static_cast<size_t>(n), -1.0);
        kern.gather_slot_mass(v.weight.data(), v.merchant_packed.data(),
                              v.packed_base, v.col_weight.data(), scale, n,
                              got.data());
        referee.gather_slot_mass(v.weight.data(), v.merchant_packed.data(),
                                 v.packed_base, v.col_weight.data(), scale, n,
                                 want.data());
        for (int64_t i = 0; i < n; ++i) {
          // == on doubles: the contract is bit-parity, not closeness.
          ASSERT_EQ(got[static_cast<size_t>(i)], want[static_cast<size_t>(i)])
              << IsaLevelName(level) << " n=" << n << " i=" << i;
        }
      }
    }
  }
}

TEST(SimdKernelTest, NextAliveMatchesScalarRefereeFromEveryPosition) {
  const KernelTable& referee = ScalarKernels();
  for (IsaLevel level : AvailableLevels()) {
    const KernelTable& kern = KernelsFor(level);
    for (int64_t n : kSizes) {
      for (double frac : {0.0, 0.03, 0.5, 1.0}) {
        const RandomView v =
            MakeView(n, static_cast<uint64_t>(n) * 31 + 7, frac);
        for (int64_t from = 0; from <= n; ++from) {
          ASSERT_EQ(kern.next_alive(v.alive.data(), n, from),
                    referee.next_alive(v.alive.data(), n, from))
              << IsaLevelName(level) << " n=" << n << " frac=" << frac
              << " from=" << from;
        }
      }
    }
  }
}

TEST(SimdKernelTest, NextAliveFullScanVisitsExactlyTheAliveSlots) {
  for (IsaLevel level : AvailableLevels()) {
    const KernelTable& kern = KernelsFor(level);
    const int64_t n = 257;
    const RandomView v = MakeView(n, 99, 0.3);
    std::vector<int64_t> visited;
    for (int64_t i = kern.next_alive(v.alive.data(), n, 0); i < n;
         i = kern.next_alive(v.alive.data(), n, i + 1)) {
      visited.push_back(i);
    }
    std::vector<int64_t> expected;
    for (int64_t i = 0; i < n; ++i) {
      if (v.alive[static_cast<size_t>(i)]) expected.push_back(i);
    }
    EXPECT_EQ(visited, expected) << IsaLevelName(level);
  }
}

TEST(SimdKernelTest, CountAliveMatchesScalarReferee) {
  const KernelTable& referee = ScalarKernels();
  for (IsaLevel level : AvailableLevels()) {
    const KernelTable& kern = KernelsFor(level);
    for (int64_t n : kSizes) {
      for (double frac : {0.0, 0.1, 0.9, 1.0}) {
        const RandomView v =
            MakeView(n, static_cast<uint64_t>(n) * 17 + 3, frac);
        ASSERT_EQ(kern.count_alive(v.alive.data(), n),
                  referee.count_alive(v.alive.data(), n))
            << IsaLevelName(level) << " n=" << n << " frac=" << frac;
      }
    }
  }
}

TEST(SimdKernelTest, MaskedSumCloseToScalarReferee) {
  // masked_sum reassociates (vector accumulator lanes), so the check is
  // a tight relative tolerance, not bit-equality — the bit-level
  // guarantee for detection outputs is vote-identity, pinned end to end
  // below and by the ensemble bench's parity gate.
  const KernelTable& referee = ScalarKernels();
  for (IsaLevel level : AvailableLevels()) {
    const KernelTable& kern = KernelsFor(level);
    for (int64_t n : kSizes) {
      const RandomView v = MakeView(n, static_cast<uint64_t>(n) + 5, 0.6);
      const double got = kern.masked_sum(v.weight.data(), v.alive.data(), n);
      const double want =
          referee.masked_sum(v.weight.data(), v.alive.data(), n);
      EXPECT_NEAR(got, want, 1e-9 * (1.0 + std::fabs(want)))
          << IsaLevelName(level) << " n=" << n;
    }
  }
}

TEST(SimdIsaTest, ScopedLevelForcesDownAndRestores) {
  const IsaLevel before = ActiveIsaLevel();
  {
    ScopedIsaLevel forced(IsaLevel::kScalar);
    ASSERT_TRUE(forced.ok());
    EXPECT_EQ(ActiveIsaLevel(), IsaLevel::kScalar);
    EXPECT_EQ(ActiveKernels().level, IsaLevel::kScalar);
  }
  EXPECT_EQ(ActiveIsaLevel(), before);
}

TEST(SimdIsaTest, SetActiveAboveDetectedCeilingIsRefused) {
  if (DetectedIsaLevel() >= IsaLevel::kAvx512) {
    GTEST_SKIP() << "no level above the ceiling to request on this machine";
  }
  const IsaLevel before = ActiveIsaLevel();
  EXPECT_FALSE(SetActiveIsaLevel(IsaLevel::kAvx512));
  EXPECT_EQ(ActiveIsaLevel(), before);
}

TEST(SimdIsaTest, KernelsForFallsBackDownward) {
  // Whatever the build/CPU, asking for a level always yields a table at
  // or below it, and asking for scalar yields exactly scalar.
  EXPECT_EQ(KernelsFor(IsaLevel::kScalar).level, IsaLevel::kScalar);
  EXPECT_LE(KernelsFor(IsaLevel::kAvx2).level, IsaLevel::kAvx2);
  EXPECT_LE(KernelsFor(IsaLevel::kAvx512).level, IsaLevel::kAvx512);
  EXPECT_EQ(ActiveKernels().level, ActiveIsaLevel());
}

TEST(SimdIsaTest, LevelNamesRoundTrip) {
  for (IsaLevel level :
       {IsaLevel::kScalar, IsaLevel::kAvx2, IsaLevel::kAvx512}) {
    IsaLevel parsed;
    ASSERT_TRUE(ParseIsaLevel(IsaLevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
  IsaLevel ignored;
  EXPECT_FALSE(ParseIsaLevel("sse9", &ignored));
  EXPECT_FALSE(ParseIsaLevel("", &ignored));
}

// The deployment-level guarantee: a full detection run produces
// IDENTICAL output (votes, weighted votes — == on doubles) at every
// dispatch level, because every kernel on the deployed path is
// bit-exact. This is the vote-identity gate the CI ISA matrix relies on.
TEST(SimdParityTest, EndToEndDetectionIdenticalAcrossIsaLevels) {
  GraphBuilder b(120, 50);
  for (UserId u = 0; u < 10; ++u) {
    for (MerchantId v = 0; v < 5; ++v) b.AddEdge(u, v);
  }
  std::mt19937_64 rng(4242);
  for (int i = 0; i < 250; ++i) {
    b.AddEdge(static_cast<UserId>(rng() % 120),
              static_cast<MerchantId>(rng() % 50),
              0.5 + static_cast<double>(rng() % 1000) / 1000.0);
  }
  const BipartiteGraph graph = b.Build().ValueOrDie();

  EnsemFDetConfig cfg;
  cfg.num_samples = 5;
  cfg.ratio = 0.3;
  cfg.seed = 11;
  EnsemFDet detector(cfg);

  EnsemFDetReport baseline;
  {
    ScopedIsaLevel forced(IsaLevel::kScalar);
    ASSERT_TRUE(forced.ok());
    baseline = detector.Run(graph).ValueOrDie();
  }
  for (IsaLevel level : AvailableLevels()) {
    ScopedIsaLevel forced(level);
    ASSERT_TRUE(forced.ok());
    const EnsemFDetReport got = detector.Run(graph).ValueOrDie();
    SCOPED_TRACE(IsaLevelName(level));
    ASSERT_EQ(got.votes.num_users(), baseline.votes.num_users());
    for (int64_t u = 0; u < got.votes.num_users(); ++u) {
      ASSERT_EQ(got.votes.user_votes(static_cast<UserId>(u)),
                baseline.votes.user_votes(static_cast<UserId>(u)))
          << "user " << u;
    }
    for (int64_t v = 0; v < got.votes.num_merchants(); ++v) {
      ASSERT_EQ(got.votes.merchant_votes(static_cast<MerchantId>(v)),
                baseline.votes.merchant_votes(static_cast<MerchantId>(v)))
          << "merchant " << v;
    }
    ASSERT_EQ(got.weighted_user_votes, baseline.weighted_user_votes);
    ASSERT_EQ(got.weighted_merchant_votes, baseline.weighted_merchant_votes);
  }
}

}  // namespace
}  // namespace simd
}  // namespace ensemfdet
