// Tests for report CSV persistence and the transaction-stream generator.
#include <algorithm>
#include <fstream>
#include <set>

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "datagen/transaction_stream.h"
#include "ensemble/ensemfdet.h"
#include "eval/report_io.h"
#include "graph/graph_builder.h"

namespace ensemfdet {
namespace {

EnsemFDetReport MakeReport() {
  GraphBuilder b(30, 10);
  for (UserId u = 0; u < 6; ++u) {
    for (MerchantId v = 0; v < 3; ++v) b.AddEdge(u, v);
  }
  for (UserId u = 6; u < 30; ++u) b.AddEdge(u, static_cast<MerchantId>(u % 10));
  auto g = b.Build().ValueOrDie();
  EnsemFDetConfig cfg;
  cfg.num_samples = 8;
  cfg.ratio = 0.5;
  cfg.seed = 3;
  return EnsemFDet(cfg).Run(g).ValueOrDie();
}

TEST(ReportIoTest, VotesRoundTrip) {
  EnsemFDetReport report = MakeReport();
  const std::string path = testing::TempDir() + "/votes.csv";
  ASSERT_TRUE(SaveVotesCsv(report, path).ok());
  auto records = LoadVotesCsv(path).ValueOrDie();
  ASSERT_FALSE(records.empty());
  for (const VoteRecord& r : records) {
    EXPECT_EQ(r.votes, report.votes.user_votes(r.user));
    EXPECT_DOUBLE_EQ(r.weighted_votes, report.weighted_user_votes[r.user]);
    EXPECT_GT(r.votes, 0);  // zero-vote users are omitted
  }
  // Every voted user appears exactly once.
  std::set<UserId> seen;
  for (const VoteRecord& r : records) {
    EXPECT_TRUE(seen.insert(r.user).second);
  }
  int64_t voted = 0;
  for (int64_t u = 0; u < report.votes.num_users(); ++u) {
    voted += report.votes.user_votes(static_cast<UserId>(u)) > 0;
  }
  EXPECT_EQ(static_cast<int64_t>(records.size()), voted);
}

TEST(ReportIoTest, LoadRejectsBadHeader) {
  const std::string path = testing::TempDir() + "/bad_votes.csv";
  {
    std::ofstream out(path);
    out << "wrong,header\n1,2,3\n";
  }
  EXPECT_FALSE(LoadVotesCsv(path).ok());
}

TEST(ReportIoTest, LoadRejectsMalformedRow) {
  const std::string path = testing::TempDir() + "/mal_votes.csv";
  {
    std::ofstream out(path);
    out << "user_id,votes,weighted_votes\nnot_a_number,2,3\n";
  }
  auto result = LoadVotesCsv(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find(":2:"), std::string::npos);
}

TEST(ReportIoTest, MissingFileFails) {
  EXPECT_FALSE(LoadVotesCsv(testing::TempDir() + "/nope.csv").ok());
}

TEST(ReportIoTest, OperatingCurveWritten) {
  std::vector<OperatingPoint> points(2);
  points[0] = {8.0, 10, 0.5, 0.25, 1.0 / 3.0};
  points[1] = {4.0, 30, 0.3, 0.5, 0.375};
  const std::string path = testing::TempDir() + "/curve.csv";
  ASSERT_TRUE(SaveOperatingCurveCsv(points, path).ok());
  std::ifstream in(path);
  std::string header, row1, row2;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header, "control,num_detected,precision,recall,f1");
  ASSERT_TRUE(std::getline(in, row1));
  EXPECT_NE(row1.find("8,10,0.5,0.25"), std::string::npos);
  ASSERT_TRUE(std::getline(in, row2));
}

TEST(ReportIoTest, SaveToUnwritablePathFails) {
  EnsemFDetReport report = MakeReport();
  EXPECT_FALSE(SaveVotesCsv(report, "/no_such_dir_xyz/v.csv").ok());
  EXPECT_FALSE(
      SaveOperatingCurveCsv({}, "/no_such_dir_xyz/c.csv").ok());
}

// --- Transaction stream ----------------------------------------------------

Dataset StreamDataset() {
  DataGenConfig config;
  config.num_users = 400;
  config.num_merchants = 120;
  config.num_edges = 1500;
  FraudGroupSpec g1;
  g1.num_users = 30;
  g1.num_merchants = 5;
  g1.edges_per_user = 4.0;
  config.fraud_groups.push_back(g1);
  FraudGroupSpec g2 = g1;
  g2.num_users = 20;
  config.fraud_groups.push_back(g2);
  config.seed = 42;
  return GenerateDataset(config).ValueOrDie();
}

TEST(TransactionStreamTest, RejectsBadConfig) {
  Dataset data = StreamDataset();
  StreamTimelineConfig cfg;
  cfg.horizon = 0;
  EXPECT_FALSE(BuildTransactionStream(data, cfg).ok());
  cfg.horizon = 100;
  cfg.burst_duration = 200;  // burst_duration > horizon
  auto too_long = BuildTransactionStream(data, cfg);
  ASSERT_FALSE(too_long.ok());
  EXPECT_EQ(too_long.status().code(), StatusCode::kInvalidArgument);
  cfg.burst_duration = 0;
  EXPECT_FALSE(BuildTransactionStream(data, cfg).ok());
  // burst_duration == horizon is the degenerate-but-legal boundary: one
  // burst window spanning the whole day.
  cfg.burst_duration = 100;
  auto boundary = BuildTransactionStream(data, cfg).ValueOrDie();
  EXPECT_EQ(static_cast<int64_t>(boundary.size()), data.graph.num_edges());
  for (const Transaction& tx : boundary) {
    EXPECT_GE(tx.timestamp, 0);
    EXPECT_LT(tx.timestamp, cfg.horizon);
  }
}

TEST(TransactionStreamTest, ZeroFraudGroupsIsAllBackground) {
  DataGenConfig config;
  config.num_users = 200;
  config.num_merchants = 80;
  config.num_edges = 600;
  config.seed = 5;  // no fraud groups at all
  Dataset data = GenerateDataset(config).ValueOrDie();
  ASSERT_TRUE(data.fraud_user_groups.empty());

  StreamTimelineConfig cfg;
  cfg.horizon = 5000;
  cfg.burst_duration = 100;
  auto events = BuildTransactionStream(data, cfg).ValueOrDie();
  EXPECT_EQ(static_cast<int64_t>(events.size()), data.graph.num_edges());
  int64_t prev = -1;
  for (const Transaction& tx : events) {
    EXPECT_GE(tx.timestamp, prev);
    prev = tx.timestamp;
    EXPECT_GE(tx.timestamp, 0);
    EXPECT_LT(tx.timestamp, cfg.horizon);
  }
}

TEST(TransactionStreamTest, TimestampTiesKeepEdgeIdOrder) {
  // horizon == burst_duration == 1 forces every timestamp to 0; the
  // stable sort must then preserve canonical edge-id order exactly.
  Dataset data = StreamDataset();
  StreamTimelineConfig cfg;
  cfg.horizon = 1;
  cfg.burst_duration = 1;
  auto events = BuildTransactionStream(data, cfg).ValueOrDie();
  ASSERT_EQ(static_cast<int64_t>(events.size()), data.graph.num_edges());
  for (EdgeId e = 0; e < data.graph.num_edges(); ++e) {
    const Transaction& tx = events[static_cast<size_t>(e)];
    EXPECT_EQ(tx.timestamp, 0);
    EXPECT_EQ(tx.user, data.graph.edge(e).user);
    EXPECT_EQ(tx.merchant, data.graph.edge(e).merchant);
  }
}

TEST(TransactionStreamTest, SliceIntoBatchesPreservesOrderAndBounds) {
  Dataset data = StreamDataset();
  StreamTimelineConfig cfg;
  auto events = BuildTransactionStream(data, cfg).ValueOrDie();
  EXPECT_FALSE(SliceIntoBatches(events, 0).ok());

  auto batches = SliceIntoBatches(events, 64).ValueOrDie();
  size_t total = 0;
  for (size_t b = 0; b < batches.size(); ++b) {
    EXPECT_LE(batches[b].transactions.size(), 64u);
    if (b + 1 < batches.size()) {
      EXPECT_EQ(batches[b].transactions.size(), 64u);
    }
    for (const Transaction& tx : batches[b].transactions) {
      EXPECT_EQ(tx.timestamp, events[total].timestamp);
      EXPECT_EQ(tx.user, events[total].user);
      EXPECT_EQ(tx.merchant, events[total].merchant);
      ++total;
    }
  }
  EXPECT_EQ(total, events.size());

  // Degenerate inputs: empty log → no batches; batch larger than the log.
  EXPECT_TRUE(SliceIntoBatches({}, 10).ValueOrDie().empty());
  EXPECT_EQ(SliceIntoBatches(events, 1 << 20).ValueOrDie().size(), 1u);
}

TEST(TransactionStreamTest, OneEventPerEdgeSortedInHorizon) {
  Dataset data = StreamDataset();
  StreamTimelineConfig cfg;
  auto events = BuildTransactionStream(data, cfg).ValueOrDie();
  EXPECT_EQ(static_cast<int64_t>(events.size()), data.graph.num_edges());
  int64_t prev = -1;
  for (const Transaction& tx : events) {
    EXPECT_GE(tx.timestamp, prev);
    prev = tx.timestamp;
    EXPECT_GE(tx.timestamp, 0);
    EXPECT_LT(tx.timestamp, cfg.horizon);
    EXPECT_TRUE(data.graph.HasEdge(tx.user, tx.merchant));
  }
}

TEST(TransactionStreamTest, FraudEventsCompressedIntoBursts) {
  Dataset data = StreamDataset();
  StreamTimelineConfig cfg;
  cfg.horizon = 86400;
  cfg.burst_duration = 1000;
  auto events = BuildTransactionStream(data, cfg).ValueOrDie();

  // Per-group: all events from group users fall inside one 1000-wide
  // window.
  for (size_t g = 0; g < data.fraud_user_groups.size(); ++g) {
    std::set<UserId> members(data.fraud_user_groups[g].begin(),
                             data.fraud_user_groups[g].end());
    int64_t lo = INT64_MAX, hi = INT64_MIN;
    for (const Transaction& tx : events) {
      if (!members.count(tx.user)) continue;
      lo = std::min(lo, tx.timestamp);
      hi = std::max(hi, tx.timestamp);
    }
    ASSERT_LE(lo, hi);
    EXPECT_LE(hi - lo, cfg.burst_duration) << "group " << g;
  }
}

TEST(TransactionStreamTest, GroupBurstsAreSeparated) {
  Dataset data = StreamDataset();
  StreamTimelineConfig cfg;
  cfg.horizon = 86400;
  cfg.burst_duration = 600;
  auto events = BuildTransactionStream(data, cfg).ValueOrDie();
  // Burst centres at 1/3 and 2/3 of the horizon → disjoint windows.
  std::set<UserId> g0(data.fraud_user_groups[0].begin(),
                      data.fraud_user_groups[0].end());
  int64_t g0_max = INT64_MIN, g1_min = INT64_MAX;
  std::set<UserId> g1(data.fraud_user_groups[1].begin(),
                      data.fraud_user_groups[1].end());
  for (const Transaction& tx : events) {
    if (g0.count(tx.user)) g0_max = std::max(g0_max, tx.timestamp);
    if (g1.count(tx.user)) g1_min = std::min(g1_min, tx.timestamp);
  }
  EXPECT_LT(g0_max, g1_min);
}

TEST(TransactionStreamTest, DeterministicInSeed) {
  Dataset data = StreamDataset();
  StreamTimelineConfig cfg;
  auto a = BuildTransactionStream(data, cfg).ValueOrDie();
  auto b = BuildTransactionStream(data, cfg).ValueOrDie();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].timestamp, b[i].timestamp);
    EXPECT_EQ(a[i].user, b[i].user);
    EXPECT_EQ(a[i].merchant, b[i].merchant);
  }
}

TEST(TransactionStreamTest, FeedsWindowedDetectorEndToEnd) {
  Dataset data = StreamDataset();
  StreamTimelineConfig cfg;
  cfg.horizon = 20000;
  cfg.burst_duration = 1500;
  auto events = BuildTransactionStream(data, cfg).ValueOrDie();

  WindowedDetectorConfig wd;
  wd.num_users = data.graph.num_users();
  wd.num_merchants = data.graph.num_merchants();
  wd.window = 3000;
  wd.detection_interval = 2500;
  wd.ensemble.num_samples = 6;
  wd.ensemble.ratio = 0.4;
  wd.ensemble.seed = 4;
  WindowedDetector detector(wd);

  int detections = 0;
  for (const Transaction& tx : events) {
    auto result = detector.Ingest(tx);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    detections += result->has_value();
  }
  EXPECT_GT(detections, 3);
}

}  // namespace
}  // namespace ensemfdet
