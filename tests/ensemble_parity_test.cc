// Pins the zero-materialization ensemble hot path (EnsemFDet::Run over
// the shared CsrGraph: SampleEdgeMask → RunFdetCsrMasked → dense
// epoch-stamped weights) bit-exactly against the seed materializing path
// (EnsemFDet::RunReference: SubgraphView children + id remaps), across
// all four sampling methods, several seeds and ratios, and pool widths
// 1 / 2 / 4. "Bit-exact" means: identical VoteTable contents, identical
// weighted votes (== on doubles, no tolerance), and identical per-member
// sample shapes and block counts.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "ensemble/ensemfdet.h"
#include "graph/csr_graph.h"
#include "graph/graph_builder.h"
#include "sampling/sampler.h"

namespace ensemfdet {
namespace {

// A dense 12×5 planted block in a 150×60 sparse background, plus a second
// shallower 6×4 block so FDET finds several blocks per member.
BipartiteGraph TestGraph(uint64_t noise_seed, bool weighted) {
  GraphBuilder b(150, 60);
  for (UserId u = 0; u < 12; ++u) {
    for (MerchantId v = 0; v < 5; ++v) b.AddEdge(u, v);
  }
  for (UserId u = 20; u < 26; ++u) {
    for (MerchantId v = 10; v < 14; ++v) b.AddEdge(u, v);
  }
  Rng rng(noise_seed);
  for (int i = 0; i < 300; ++i) {
    const double w = weighted ? 0.5 + rng.NextDouble() : 1.0;
    b.AddEdge(static_cast<UserId>(rng.NextBounded(150)),
              static_cast<MerchantId>(rng.NextBounded(60)), w);
  }
  return b.Build().ValueOrDie();
}

void ExpectIdenticalReports(const EnsemFDetReport& hot,
                            const EnsemFDetReport& ref,
                            const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(hot.num_samples, ref.num_samples);
  ASSERT_EQ(hot.votes.num_users(), ref.votes.num_users());
  ASSERT_EQ(hot.votes.num_merchants(), ref.votes.num_merchants());
  for (int64_t u = 0; u < hot.votes.num_users(); ++u) {
    ASSERT_EQ(hot.votes.user_votes(static_cast<UserId>(u)),
              ref.votes.user_votes(static_cast<UserId>(u)))
        << "user " << u;
  }
  for (int64_t v = 0; v < hot.votes.num_merchants(); ++v) {
    ASSERT_EQ(hot.votes.merchant_votes(static_cast<MerchantId>(v)),
              ref.votes.merchant_votes(static_cast<MerchantId>(v)))
        << "merchant " << v;
  }
  // Weighted votes must match bit for bit: both paths add the same
  // per-member max-φ value into the same slot, in the same member order.
  ASSERT_EQ(hot.weighted_user_votes.size(), ref.weighted_user_votes.size());
  for (size_t u = 0; u < hot.weighted_user_votes.size(); ++u) {
    ASSERT_EQ(hot.weighted_user_votes[u], ref.weighted_user_votes[u])
        << "weighted user " << u;
  }
  ASSERT_EQ(hot.weighted_merchant_votes.size(),
            ref.weighted_merchant_votes.size());
  for (size_t v = 0; v < hot.weighted_merchant_votes.size(); ++v) {
    ASSERT_EQ(hot.weighted_merchant_votes[v], ref.weighted_merchant_votes[v])
        << "weighted merchant " << v;
  }
  // Per-member diagnostics: the edge-mask samplers must report the exact
  // node/edge counts of the materialized child, and masked FDET the same
  // block count.
  ASSERT_EQ(hot.members.size(), ref.members.size());
  for (size_t i = 0; i < hot.members.size(); ++i) {
    SCOPED_TRACE("member " + std::to_string(i));
    ASSERT_EQ(hot.members[i].sample_users, ref.members[i].sample_users);
    ASSERT_EQ(hot.members[i].sample_merchants,
              ref.members[i].sample_merchants);
    ASSERT_EQ(hot.members[i].sample_edges, ref.members[i].sample_edges);
    ASSERT_EQ(hot.members[i].num_blocks, ref.members[i].num_blocks);
  }
}

constexpr SampleMethod kAllMethods[] = {
    SampleMethod::kRandomEdge, SampleMethod::kOneSideUser,
    SampleMethod::kOneSideMerchant, SampleMethod::kTwoSide};

TEST(EnsembleParityTest, AllMethodsSeedsRatiosAndPoolWidths) {
  ThreadPool pool2(2);
  ThreadPool pool4(4);
  ThreadPool* pools[] = {nullptr, &pool2, &pool4};

  const BipartiteGraph graph = TestGraph(/*noise_seed=*/41, false);
  for (SampleMethod method : kAllMethods) {
    for (uint64_t seed : {7u, 77u, 1234u}) {
      for (double ratio : {0.15, 0.4}) {
        EnsemFDetConfig cfg;
        cfg.method = method;
        cfg.num_samples = 6;
        cfg.ratio = ratio;
        cfg.seed = seed;
        cfg.fdet.max_blocks = 6;

        EnsemFDet detector(cfg);
        const EnsemFDetReport ref =
            detector.RunReference(graph).ValueOrDie();
        for (ThreadPool* pool : pools) {
          const EnsemFDetReport hot = detector.Run(graph, pool).ValueOrDie();
          ExpectIdenticalReports(
              hot, ref,
              std::string(SampleMethodName(method)) + " seed=" +
                  std::to_string(seed) + " ratio=" + std::to_string(ratio) +
                  " threads=" +
                  std::to_string(pool == nullptr ? 1 : pool->num_threads()));
        }
      }
    }
  }
}

TEST(EnsembleParityTest, CsrOverloadMatchesAdjacencyOverload) {
  const BipartiteGraph graph = TestGraph(43, false);
  const CsrGraph csr = CsrGraph::FromBipartite(graph);
  EnsemFDetConfig cfg;
  cfg.num_samples = 8;
  cfg.ratio = 0.25;
  cfg.seed = 9;
  EnsemFDet detector(cfg);
  const EnsemFDetReport a = detector.Run(graph).ValueOrDie();
  const EnsemFDetReport b = detector.Run(csr).ValueOrDie();
  ExpectIdenticalReports(a, b, "csr-vs-adjacency overload");
}

TEST(EnsembleParityTest, ReweightedEdgeSamplingOnWeightedGraph) {
  // Theorem 1's 1/p scaling exercises the weight_scale plumbing: the hot
  // path scales on the fly, the reference stores pre-scaled child weights
  // — results must still be identical, including on a weighted parent.
  const BipartiteGraph graph = TestGraph(101, /*weighted=*/true);
  ThreadPool pool4(4);
  for (double ratio : {0.2, 0.5}) {
    EnsemFDetConfig cfg;
    cfg.method = SampleMethod::kRandomEdge;
    cfg.reweight_edges = true;
    cfg.num_samples = 6;
    cfg.ratio = ratio;
    cfg.seed = 21;
    EnsemFDet detector(cfg);
    const EnsemFDetReport ref = detector.RunReference(graph).ValueOrDie();
    const EnsemFDetReport hot = detector.Run(graph, &pool4).ValueOrDie();
    ExpectIdenticalReports(hot, ref,
                           "reweighted ratio=" + std::to_string(ratio));
  }
}

TEST(EnsembleParityTest, ArenaIsWarmAfterFirstMembers) {
  // Sequential run: every member after the first few runs entirely out of
  // the calling thread's warm arena — zero growth events.
  const BipartiteGraph graph = TestGraph(55, false);
  EnsemFDetConfig cfg;
  cfg.num_samples = 10;
  cfg.ratio = 0.3;
  cfg.seed = 3;
  EnsemFDet detector(cfg);
  (void)detector.Run(graph).ValueOrDie();  // warm-up
  const EnsemFDetReport report = detector.Run(graph).ValueOrDie();
  int64_t total_grow = 0;
  for (const auto& m : report.members) total_grow += m.arena_grow_events;
  EXPECT_EQ(total_grow, 0) << "warm arena should not allocate";
}

TEST(EnsembleParityTest, DegenerateGraphs) {
  ThreadPool pool2(2);
  // Edgeless graph with nodes, and a tiny single-edge graph: both faces
  // of every sampler must agree on the boundary behavior.
  GraphBuilder edgeless(5, 3);
  GraphBuilder single(2, 2);
  single.AddEdge(1, 0);
  const BipartiteGraph graphs[] = {edgeless.Build().ValueOrDie(),
                                   single.Build().ValueOrDie()};
  for (const BipartiteGraph& graph : graphs) {
    for (SampleMethod method : kAllMethods) {
      EnsemFDetConfig cfg;
      cfg.method = method;
      cfg.num_samples = 3;
      cfg.ratio = 0.5;
      cfg.seed = 11;
      EnsemFDet detector(cfg);
      const EnsemFDetReport ref = detector.RunReference(graph).ValueOrDie();
      const EnsemFDetReport hot = detector.Run(graph, &pool2).ValueOrDie();
      ExpectIdenticalReports(hot, ref,
                             std::string("degenerate ") +
                                 SampleMethodName(method) + " edges=" +
                                 std::to_string(graph.num_edges()));
    }
  }
}

}  // namespace
}  // namespace ensemfdet
