#include "detect/density.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace ensemfdet {
namespace {

constexpr double kC = 5.0;

double Weight(double degree) { return 1.0 / std::log(kC + degree); }

TEST(MerchantColumnWeightTest, MatchesFormula) {
  DensityConfig cfg;
  EXPECT_DOUBLE_EQ(MerchantColumnWeight(0.0, cfg), 1.0 / std::log(5.0));
  EXPECT_DOUBLE_EQ(MerchantColumnWeight(10.0, cfg), 1.0 / std::log(15.0));
}

TEST(MerchantColumnWeightTest, DecreasingInDegree) {
  DensityConfig cfg;
  double prev = MerchantColumnWeight(0.0, cfg);
  for (int d = 1; d <= 100; ++d) {
    double w = MerchantColumnWeight(static_cast<double>(d), cfg);
    EXPECT_LT(w, prev);
    EXPECT_GT(w, 0.0);
    prev = w;
  }
}

TEST(DensityScoreTest, EmptyGraphZero) {
  GraphBuilder b(0, 0);
  auto g = b.Build().ValueOrDie();
  EXPECT_DOUBLE_EQ(DensityScore(g, {}), 0.0);
}

TEST(DensityScoreTest, EdgelessGraphZero) {
  GraphBuilder b(4, 4);
  auto g = b.Build().ValueOrDie();
  EXPECT_DOUBLE_EQ(DensityScore(g, {}), 0.0);
  EXPECT_DOUBLE_EQ(SuspiciousnessMass(g, {}), 0.0);
}

TEST(DensityScoreTest, SingleEdge) {
  GraphBuilder b(1, 1);
  b.AddEdge(0, 0);
  auto g = b.Build().ValueOrDie();
  // One merchant of degree 1: mass = 1/log(6); 2 nodes.
  EXPECT_NEAR(SuspiciousnessMass(g, {}), Weight(1.0), 1e-12);
  EXPECT_NEAR(DensityScore(g, {}), Weight(1.0) / 2.0, 1e-12);
}

TEST(DensityScoreTest, CompleteBipartiteBlock) {
  const int m = 6, n = 3;
  GraphBuilder b(m, n);
  for (UserId u = 0; u < m; ++u) {
    for (MerchantId v = 0; v < n; ++v) b.AddEdge(u, v);
  }
  auto g = b.Build().ValueOrDie();
  // Each merchant has degree m; mass = n·m·weight(m); nodes = m+n.
  const double expected_mass = n * m * Weight(m);
  EXPECT_NEAR(SuspiciousnessMass(g, {}), expected_mass, 1e-12);
  EXPECT_NEAR(DensityScore(g, {}), expected_mass / (m + n), 1e-12);
}

TEST(DensityScoreTest, EdgeWeightsScaleMass) {
  GraphBuilder b1(1, 1), b2(1, 1);
  b1.AddEdge(0, 0, 1.0);
  b2.AddEdge(0, 0, 4.0);
  auto g1 = b1.Build(DuplicatePolicy::kSumWeights).ValueOrDie();
  auto g2 = b2.Build(DuplicatePolicy::kSumWeights).ValueOrDie();
  EXPECT_NEAR(SuspiciousnessMass(g2, {}), 4.0 * SuspiciousnessMass(g1, {}),
              1e-12);
}

TEST(DensityScoreTest, CamouflageResistance) {
  // A fraud block connected to a popular merchant contributes almost no
  // extra mass: weight(d) decays in d. Compare the marginal mass of one
  // edge to a degree-200 merchant vs a degree-2 merchant.
  DensityConfig cfg;
  EXPECT_LT(MerchantColumnWeight(200, cfg),
            0.4 * MerchantColumnWeight(2, cfg));
}

TEST(DensityScoreTest, DenseBlockBeatsSparseGraphOfSameSize) {
  // 5×5 complete block vs 5×5 matching (one edge per node pair).
  GraphBuilder dense(5, 5), sparse(5, 5);
  for (UserId u = 0; u < 5; ++u) {
    for (MerchantId v = 0; v < 5; ++v) dense.AddEdge(u, v);
    sparse.AddEdge(u, static_cast<MerchantId>(u));
  }
  auto gd = dense.Build().ValueOrDie();
  auto gs = sparse.Build().ValueOrDie();
  EXPECT_GT(DensityScore(gd, {}), DensityScore(gs, {}));
}

TEST(DensityScoreTest, LargerLogOffsetLowersScore) {
  GraphBuilder b(2, 2);
  b.AddEdge(0, 0);
  b.AddEdge(1, 1);
  auto g = b.Build().ValueOrDie();
  DensityConfig c5{.log_offset = 5.0};
  DensityConfig c50{.log_offset = 50.0};
  EXPECT_GT(DensityScore(g, c5), DensityScore(g, c50));
}

TEST(DensityScoreTest, IsolatedNodesDiluteScore) {
  GraphBuilder with(3, 1), without(1, 1);
  with.AddEdge(0, 0);
  without.AddEdge(0, 0);
  auto gw = with.Build().ValueOrDie();
  auto go = without.Build().ValueOrDie();
  EXPECT_LT(DensityScore(gw, {}), DensityScore(go, {}));
}

}  // namespace
}  // namespace ensemfdet
