// Tests for the FRAUDAR, SPOKEN, and FBOX baselines.
#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "baselines/fbox.h"
#include "baselines/fraudar.h"
#include "baselines/spoken.h"
#include "common/rng.h"
#include "graph/graph_builder.h"

namespace ensemfdet {
namespace {

// Two planted blocks (10×4 and 6×3) in a 150×60 sparse background.
BipartiteGraph TwoBlockGraph() {
  GraphBuilder b(150, 60);
  for (UserId u = 0; u < 10; ++u) {
    for (MerchantId v = 0; v < 4; ++v) b.AddEdge(u, v);
  }
  for (UserId u = 10; u < 16; ++u) {
    for (MerchantId v = 4; v < 7; ++v) b.AddEdge(u, v);
  }
  Rng rng(51);
  for (int i = 0; i < 250; ++i) {
    b.AddEdge(static_cast<UserId>(16 + rng.NextBounded(134)),
              static_cast<MerchantId>(7 + rng.NextBounded(53)));
  }
  return b.Build().ValueOrDie();
}

// --- FRAUDAR ---------------------------------------------------------------

TEST(FraudarTest, FindsBothPlantedBlocks) {
  auto g = TwoBlockGraph();
  FraudarConfig cfg;
  cfg.num_blocks = 5;
  auto r = RunFraudar(g, cfg).ValueOrDie();
  ASSERT_GE(r.blocks.size(), 2u);
  std::set<UserId> first(r.blocks[0].users.begin(), r.blocks[0].users.end());
  for (UserId u = 0; u < 10; ++u) EXPECT_TRUE(first.count(u));
  std::set<UserId> second(r.blocks[1].users.begin(),
                          r.blocks[1].users.end());
  for (UserId u = 10; u < 16; ++u) EXPECT_TRUE(second.count(u));
}

TEST(FraudarTest, BlockCountBounded) {
  auto g = TwoBlockGraph();
  FraudarConfig cfg;
  cfg.num_blocks = 3;
  auto r = RunFraudar(g, cfg).ValueOrDie();
  EXPECT_LE(r.blocks.size(), 3u);
}

TEST(FraudarTest, UserBlocksMatchBlockList) {
  auto g = TwoBlockGraph();
  FraudarConfig cfg;
  cfg.num_blocks = 4;
  auto r = RunFraudar(g, cfg).ValueOrDie();
  auto ub = r.UserBlocks();
  ASSERT_EQ(ub.size(), r.blocks.size());
  for (size_t i = 0; i < ub.size(); ++i) {
    EXPECT_EQ(ub[i], r.blocks[i].users);
  }
}

TEST(FraudarTest, DetectedUsersIsSortedUnion) {
  auto g = TwoBlockGraph();
  FraudarConfig cfg;
  cfg.num_blocks = 4;
  auto r = RunFraudar(g, cfg).ValueOrDie();
  auto users = r.DetectedUsers();
  EXPECT_TRUE(std::is_sorted(users.begin(), users.end()));
  EXPECT_TRUE(std::adjacent_find(users.begin(), users.end()) == users.end());
  // Union covers at least both planted blocks.
  std::set<UserId> set(users.begin(), users.end());
  for (UserId u = 0; u < 16; ++u) EXPECT_TRUE(set.count(u));
}

TEST(FraudarTest, ScoresDescendAcrossBlocks) {
  auto g = TwoBlockGraph();
  FraudarConfig cfg;
  cfg.num_blocks = 5;
  auto r = RunFraudar(g, cfg).ValueOrDie();
  for (size_t i = 1; i < r.blocks.size(); ++i) {
    EXPECT_LE(r.blocks[i].score, r.blocks[i - 1].score * 1.10 + 1e-9);
  }
}

TEST(FraudarTest, EmptyGraphNoBlocks) {
  GraphBuilder b(3, 3);
  auto g = b.Build().ValueOrDie();
  auto r = RunFraudar(g, {}).ValueOrDie();
  EXPECT_TRUE(r.blocks.empty());
}

// --- SPOKEN ------------------------------------------------------------------

TEST(SpokenTest, RejectsBadConfig) {
  auto g = TwoBlockGraph();
  SpokenConfig cfg;
  cfg.num_components = 0;
  EXPECT_FALSE(RunSpoken(g, cfg).ok());
}

TEST(SpokenTest, RejectsEdgelessGraph) {
  GraphBuilder b(3, 3);
  auto g = b.Build().ValueOrDie();
  EXPECT_FALSE(RunSpoken(g, {}).ok());
}

TEST(SpokenTest, OutputShape) {
  auto g = TwoBlockGraph();
  SpokenConfig cfg;
  cfg.num_components = 5;
  auto r = RunSpoken(g, cfg).ValueOrDie();
  EXPECT_EQ(static_cast<int64_t>(r.user_scores.size()), g.num_users());
  EXPECT_EQ(static_cast<int64_t>(r.merchant_scores.size()),
            g.num_merchants());
  EXPECT_EQ(r.singular_values.size(), 5u);
  for (double s : r.user_scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0 + 1e-9);  // |entry| of a unit vector
  }
}

TEST(SpokenTest, BlockUsersScoreHigherThanBackground) {
  auto g = TwoBlockGraph();
  SpokenConfig cfg;
  cfg.num_components = 5;
  auto r = RunSpoken(g, cfg).ValueOrDie();
  double block_avg = 0.0, background_avg = 0.0;
  for (UserId u = 0; u < 16; ++u) block_avg += r.user_scores[u];
  for (int64_t u = 16; u < g.num_users(); ++u) {
    background_avg += r.user_scores[static_cast<size_t>(u)];
  }
  block_avg /= 16.0;
  background_avg /= static_cast<double>(g.num_users() - 16);
  EXPECT_GT(block_avg, 3.0 * background_avg);
}

TEST(SpokenTest, ComponentCapping) {
  // Requesting more components than min(m, n) silently caps.
  GraphBuilder b(4, 2);
  b.AddEdge(0, 0);
  b.AddEdge(1, 0);
  b.AddEdge(2, 1);
  b.AddEdge(3, 1);
  auto g = b.Build().ValueOrDie();
  SpokenConfig cfg;
  cfg.num_components = 25;
  auto r = RunSpoken(g, cfg).ValueOrDie();
  EXPECT_EQ(r.singular_values.size(), 2u);
}

// --- FBOX --------------------------------------------------------------------

TEST(FboxTest, RejectsBadConfig) {
  auto g = TwoBlockGraph();
  FboxConfig cfg;
  cfg.num_components = -1;
  EXPECT_FALSE(RunFbox(g, cfg).ok());
}

TEST(FboxTest, RejectsEdgelessGraph) {
  GraphBuilder b(2, 2);
  auto g = b.Build().ValueOrDie();
  EXPECT_FALSE(RunFbox(g, {}).ok());
}

TEST(FboxTest, OutputShapeAndNonNegativity) {
  auto g = TwoBlockGraph();
  FboxConfig cfg;
  cfg.num_components = 5;
  auto r = RunFbox(g, cfg).ValueOrDie();
  EXPECT_EQ(static_cast<int64_t>(r.user_scores.size()), g.num_users());
  EXPECT_EQ(static_cast<int64_t>(r.reconstruction_norms.size()),
            g.num_users());
  for (double s : r.user_scores) EXPECT_GE(s, 0.0);
  for (double n : r.reconstruction_norms) EXPECT_GE(n, 0.0);
}

TEST(FboxTest, IsolatedUsersScoreZero) {
  GraphBuilder b(3, 2);
  b.AddEdge(0, 0);
  b.AddEdge(1, 1);
  // user 2 isolated
  auto g = b.Build().ValueOrDie();
  FboxConfig cfg;
  cfg.num_components = 1;
  auto r = RunFbox(g, cfg).ValueOrDie();
  EXPECT_DOUBLE_EQ(r.user_scores[2], 0.0);
}

TEST(FboxTest, SmallAttackEvadingTopComponentsScoresHigh) {
  // Dominant legitimate structure: 40 users × 8 merchants dense community.
  // Small attack: 4 users × 2 private merchants. The attack is (nearly)
  // orthogonal to the top singular directions, so its users' adjacency
  // rows reconstruct poorly → high FBOX score.
  GraphBuilder b(60, 20);
  Rng rng(61);
  for (UserId u = 0; u < 40; ++u) {
    for (MerchantId v = 0; v < 8; ++v) {
      if (rng.NextBernoulli(0.7)) b.AddEdge(u, v);
    }
  }
  for (UserId u = 40; u < 44; ++u) {
    b.AddEdge(u, 18);
    b.AddEdge(u, 19);
  }
  auto g = b.Build().ValueOrDie();
  FboxConfig cfg;
  cfg.num_components = 2;
  auto r = RunFbox(g, cfg).ValueOrDie();
  double attack_min = 1e300, community_max = 0.0;
  for (UserId u = 40; u < 44; ++u) {
    attack_min = std::min(attack_min, r.user_scores[u]);
  }
  for (UserId u = 0; u < 40; ++u) {
    community_max = std::max(community_max, r.user_scores[u]);
  }
  EXPECT_GT(attack_min, community_max);
}

TEST(FboxTest, ReconstructionNormsBoundedByRowNorm) {
  // A projection cannot exceed the row's own norm: r_i ≤ ‖a_i‖ = √d_i for
  // 0/1 rows (allow slack for numerical error).
  auto g = TwoBlockGraph();
  FboxConfig cfg;
  cfg.num_components = 8;
  auto r = RunFbox(g, cfg).ValueOrDie();
  for (int64_t u = 0; u < g.num_users(); ++u) {
    const double row_norm =
        std::sqrt(static_cast<double>(g.user_degree(static_cast<UserId>(u))));
    EXPECT_LE(r.reconstruction_norms[static_cast<size_t>(u)],
              row_norm + 1e-6);
  }
}

}  // namespace
}  // namespace ensemfdet
