// Tests for the small common utilities: env config, timers, table output.
#include <cstdlib>
#include <sstream>

#include <gtest/gtest.h>

#include "common/env.h"
#include "common/table_writer.h"
#include "common/timer.h"

namespace ensemfdet {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void TearDown() override { unsetenv("ENSEMFDET_TEST_VAR"); }
};

TEST_F(EnvTest, StringFallbackWhenUnset) {
  EXPECT_EQ(GetEnvString("ENSEMFDET_TEST_VAR", "fallback"), "fallback");
}

TEST_F(EnvTest, StringReadsValue) {
  setenv("ENSEMFDET_TEST_VAR", "hello", 1);
  EXPECT_EQ(GetEnvString("ENSEMFDET_TEST_VAR", "fallback"), "hello");
}

TEST_F(EnvTest, EmptyStringTreatedAsUnset) {
  setenv("ENSEMFDET_TEST_VAR", "", 1);
  EXPECT_EQ(GetEnvString("ENSEMFDET_TEST_VAR", "fb"), "fb");
  EXPECT_EQ(GetEnvInt("ENSEMFDET_TEST_VAR", 3), 3);
}

TEST_F(EnvTest, IntParsesAndFallsBack) {
  setenv("ENSEMFDET_TEST_VAR", "123", 1);
  EXPECT_EQ(GetEnvInt("ENSEMFDET_TEST_VAR", 0), 123);
  setenv("ENSEMFDET_TEST_VAR", "-7", 1);
  EXPECT_EQ(GetEnvInt("ENSEMFDET_TEST_VAR", 0), -7);
  setenv("ENSEMFDET_TEST_VAR", "12abc", 1);
  EXPECT_EQ(GetEnvInt("ENSEMFDET_TEST_VAR", 9), 9);
}

TEST_F(EnvTest, Int64Parses) {
  setenv("ENSEMFDET_TEST_VAR", "8589934592", 1);  // 2^33
  EXPECT_EQ(GetEnvInt64("ENSEMFDET_TEST_VAR", 0), 8589934592LL);
}

TEST_F(EnvTest, DoubleParsesAndFallsBack) {
  setenv("ENSEMFDET_TEST_VAR", "0.125", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("ENSEMFDET_TEST_VAR", 1.0), 0.125);
  setenv("ENSEMFDET_TEST_VAR", "nope", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("ENSEMFDET_TEST_VAR", 2.5), 2.5);
}

TEST(WallTimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i * 0.5;
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  EXPECT_GE(timer.ElapsedMillis(), timer.ElapsedSeconds());
}

TEST(WallTimerTest, RestartResets) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 1000000; ++i) sink = sink + i;
  double before = timer.ElapsedSeconds();
  timer.Restart();
  EXPECT_LE(timer.ElapsedSeconds(), before + 1.0);
}

TEST(FormatDurationTest, PicksUnits) {
  EXPECT_EQ(FormatDuration(0.0000005), "500 ns");
  EXPECT_EQ(FormatDuration(0.0000123), "12.3 us");
  EXPECT_EQ(FormatDuration(0.0123), "12.3 ms");
  EXPECT_EQ(FormatDuration(3.25), "3.250 sec");
}

TEST(FormatDurationTest, SubMillisecondDoesNotCollapseToZero) {
  // The old formatter rendered anything under 1 ms as "0.0 ms";
  // per-stage span timings are routinely in the ns/us range.
  EXPECT_EQ(FormatDuration(5e-9), "5 ns");
  EXPECT_EQ(FormatDuration(9.99e-7), "999 ns");
  EXPECT_EQ(FormatDuration(1e-6), "1.0 us");
  EXPECT_EQ(FormatDuration(9.99e-4), "999.0 us");
  EXPECT_EQ(FormatDuration(1e-3), "1.0 ms");
}

TEST(WallTimerTest, ElapsedNanosMatchesSeconds) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i * 0.5;
  const int64_t ns = timer.ElapsedNanos();
  const double secs = timer.ElapsedSeconds();
  EXPECT_GE(ns, 0);
  // ElapsedSeconds taken after ElapsedNanos, so it must be no smaller.
  EXPECT_GE(secs, static_cast<double>(ns) * 1e-9 - 1e-9);
  EXPECT_GE(timer.ElapsedNanos(), ns);
}

TEST(TableWriterTest, CsvRoundTrip) {
  TableWriter t({"a", "b"});
  t.AddRow({"1", "2"});
  t.AddRow({"x", "y"});
  std::ostringstream os;
  t.WriteCsv(&os);
  EXPECT_EQ(os.str(), "a,b\n1,2\nx,y\n");
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableWriterTest, CsvEscapesSpecials) {
  TableWriter t({"col"});
  t.AddRow({"has,comma"});
  t.AddRow({"has\"quote"});
  std::ostringstream os;
  t.WriteCsv(&os);
  EXPECT_EQ(os.str(), "col\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST(TableWriterTest, MarkdownAligned) {
  TableWriter t({"name", "n"});
  t.AddRow({"short", "1"});
  t.AddRow({"a-much-longer-name", "22"});
  std::ostringstream os;
  t.WriteMarkdown(&os);
  const std::string md = os.str();
  EXPECT_NE(md.find("| name"), std::string::npos);
  EXPECT_NE(md.find("|---"), std::string::npos);
  EXPECT_NE(md.find("| a-much-longer-name |"), std::string::npos);
}

TEST(TableWriterDeathTest, RowArityMismatchAborts) {
  TableWriter t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "cells");
}

TEST(FormatDoubleTest, RespectsDigits) {
  EXPECT_EQ(FormatDouble(0.123456, 4), "0.1235");
  EXPECT_EQ(FormatDouble(2.0, 1), "2.0");
}

TEST(FormatCountTest, ThousandsSeparators) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(1023846), "1,023,846");
  EXPECT_EQ(FormatCount(-4500), "-4,500");
}

}  // namespace
}  // namespace ensemfdet
