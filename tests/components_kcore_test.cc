// Tests for connected components and k-core decomposition.
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/components.h"
#include "graph/graph_builder.h"
#include "graph/kcore.h"

namespace ensemfdet {
namespace {

// --- Connected components ----------------------------------------------

TEST(ComponentsTest, EmptyGraph) {
  GraphBuilder b(0, 0);
  auto g = b.Build().ValueOrDie();
  auto cc = FindConnectedComponents(g);
  EXPECT_EQ(cc.num_components(), 0);
  EXPECT_EQ(cc.LargestComponent(), -1);
}

TEST(ComponentsTest, IsolatedNodesAreSingletons) {
  GraphBuilder b(3, 2);
  auto g = b.Build().ValueOrDie();
  auto cc = FindConnectedComponents(g);
  EXPECT_EQ(cc.num_components(), 5);
  for (const auto& stats : cc.components) {
    EXPECT_EQ(stats.num_users + stats.num_merchants, 1);
    EXPECT_EQ(stats.num_edges, 0);
  }
}

TEST(ComponentsTest, SingleEdgeOneComponent) {
  GraphBuilder b(1, 1);
  b.AddEdge(0, 0);
  auto g = b.Build().ValueOrDie();
  auto cc = FindConnectedComponents(g);
  EXPECT_EQ(cc.num_components(), 1);
  EXPECT_EQ(cc.components[0].num_users, 1);
  EXPECT_EQ(cc.components[0].num_merchants, 1);
  EXPECT_EQ(cc.components[0].num_edges, 1);
}

TEST(ComponentsTest, TwoSeparateBlocks) {
  GraphBuilder b(6, 4);
  for (UserId u = 0; u < 3; ++u) {
    for (MerchantId v = 0; v < 2; ++v) b.AddEdge(u, v);
  }
  for (UserId u = 3; u < 6; ++u) {
    for (MerchantId v = 2; v < 4; ++v) b.AddEdge(u, v);
  }
  auto g = b.Build().ValueOrDie();
  auto cc = FindConnectedComponents(g);
  EXPECT_EQ(cc.num_components(), 2);
  // Same label within a block, different across blocks.
  EXPECT_EQ(cc.user_component[0], cc.user_component[2]);
  EXPECT_EQ(cc.user_component[0], cc.merchant_component[1]);
  EXPECT_NE(cc.user_component[0], cc.user_component[3]);
  // Stats per component.
  for (const auto& stats : cc.components) {
    EXPECT_EQ(stats.num_users, 3);
    EXPECT_EQ(stats.num_merchants, 2);
    EXPECT_EQ(stats.num_edges, 6);
  }
}

TEST(ComponentsTest, BridgeMergesComponents) {
  GraphBuilder b(6, 4);
  for (UserId u = 0; u < 3; ++u) {
    for (MerchantId v = 0; v < 2; ++v) b.AddEdge(u, v);
  }
  for (UserId u = 3; u < 6; ++u) {
    for (MerchantId v = 2; v < 4; ++v) b.AddEdge(u, v);
  }
  b.AddEdge(0, 3);  // bridge
  auto g = b.Build().ValueOrDie();
  auto cc = FindConnectedComponents(g);
  EXPECT_EQ(cc.num_components(), 1);
  EXPECT_EQ(cc.components[0].num_edges, 13);
}

TEST(ComponentsTest, LargestComponentByEdges) {
  GraphBuilder b(5, 5);
  b.AddEdge(0, 0);  // tiny component
  for (UserId u = 1; u < 4; ++u) {
    for (MerchantId v = 1; v < 4; ++v) b.AddEdge(u, v);
  }
  auto g = b.Build().ValueOrDie();
  auto cc = FindConnectedComponents(g);
  const int32_t largest = cc.LargestComponent();
  ASSERT_GE(largest, 0);
  EXPECT_EQ(cc.components[static_cast<size_t>(largest)].num_edges, 9);
}

TEST(ComponentsTest, StatsSumToGraphTotals) {
  Rng rng(77);
  GraphBuilder b(60, 40);
  for (int i = 0; i < 100; ++i) {
    b.AddEdge(static_cast<UserId>(rng.NextBounded(60)),
              static_cast<MerchantId>(rng.NextBounded(40)));
  }
  auto g = b.Build().ValueOrDie();
  auto cc = FindConnectedComponents(g);
  int64_t users = 0, merchants = 0, edges = 0;
  for (const auto& stats : cc.components) {
    users += stats.num_users;
    merchants += stats.num_merchants;
    edges += stats.num_edges;
  }
  EXPECT_EQ(users, g.num_users());
  EXPECT_EQ(merchants, g.num_merchants());
  EXPECT_EQ(edges, g.num_edges());
}

TEST(ComponentsTest, EveryNodeLabeled) {
  Rng rng(78);
  GraphBuilder b(30, 30);
  for (int i = 0; i < 25; ++i) {
    b.AddEdge(static_cast<UserId>(rng.NextBounded(30)),
              static_cast<MerchantId>(rng.NextBounded(30)));
  }
  auto g = b.Build().ValueOrDie();
  auto cc = FindConnectedComponents(g);
  for (int32_t label : cc.user_component) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, cc.num_components());
  }
  for (int32_t label : cc.merchant_component) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, cc.num_components());
  }
  // Endpoints of every edge share a label.
  for (const Edge& e : g.edges()) {
    EXPECT_EQ(cc.user_component[e.user], cc.merchant_component[e.merchant]);
  }
}

// --- k-cores -------------------------------------------------------------

TEST(KCoreTest, EmptyGraph) {
  GraphBuilder b(0, 0);
  auto g = b.Build().ValueOrDie();
  auto kc = ComputeKCores(g);
  EXPECT_EQ(kc.degeneracy, 0);
}

TEST(KCoreTest, IsolatedNodesCoreZero) {
  GraphBuilder b(3, 3);
  b.AddEdge(0, 0);
  auto g = b.Build().ValueOrDie();
  auto kc = ComputeKCores(g);
  EXPECT_EQ(kc.user_core[1], 0);
  EXPECT_EQ(kc.user_core[2], 0);
  EXPECT_EQ(kc.user_core[0], 1);
  EXPECT_EQ(kc.merchant_core[0], 1);
  EXPECT_EQ(kc.degeneracy, 1);
}

TEST(KCoreTest, StarIsOneCore) {
  GraphBuilder b(5, 1);
  for (UserId u = 0; u < 5; ++u) b.AddEdge(u, 0);
  auto g = b.Build().ValueOrDie();
  auto kc = ComputeKCores(g);
  EXPECT_EQ(kc.degeneracy, 1);
  for (int32_t c : kc.user_core) EXPECT_EQ(c, 1);
  EXPECT_EQ(kc.merchant_core[0], 1);
}

TEST(KCoreTest, CompleteBipartiteCore) {
  // K_{4,3}: every node in the 3-core (min side degree 3).
  GraphBuilder b(4, 3);
  for (UserId u = 0; u < 4; ++u) {
    for (MerchantId v = 0; v < 3; ++v) b.AddEdge(u, v);
  }
  auto g = b.Build().ValueOrDie();
  auto kc = ComputeKCores(g);
  EXPECT_EQ(kc.degeneracy, 3);
  for (int32_t c : kc.user_core) EXPECT_EQ(c, 3);
  for (int32_t c : kc.merchant_core) EXPECT_EQ(c, 3);
}

TEST(KCoreTest, PendantChainPeelsToDenseCore) {
  // A 3x3 complete block plus a chain of pendant users hanging off it.
  GraphBuilder b(6, 3);
  for (UserId u = 0; u < 3; ++u) {
    for (MerchantId v = 0; v < 3; ++v) b.AddEdge(u, v);
  }
  b.AddEdge(3, 0);
  b.AddEdge(4, 1);
  b.AddEdge(5, 2);
  auto g = b.Build().ValueOrDie();
  auto kc = ComputeKCores(g);
  EXPECT_EQ(kc.degeneracy, 3);
  for (UserId u = 0; u < 3; ++u) EXPECT_EQ(kc.user_core[u], 3);
  for (UserId u = 3; u < 6; ++u) EXPECT_EQ(kc.user_core[u], 1);
}

TEST(KCoreTest, CoreContainmentProperty) {
  // The k-core's induced subgraph has min degree >= k — the defining
  // property, checked on a random graph for every k up to degeneracy.
  Rng rng(91);
  GraphBuilder b(40, 25);
  std::set<std::pair<UserId, MerchantId>> seen;
  while (seen.size() < 180) {
    UserId u = static_cast<UserId>(rng.NextBounded(40));
    MerchantId v = static_cast<MerchantId>(rng.NextBounded(25));
    if (seen.insert({u, v}).second) b.AddEdge(u, v);
  }
  auto g = b.Build().ValueOrDie();
  auto kc = ComputeKCores(g);
  ASSERT_GE(kc.degeneracy, 2);

  for (int32_t k = 1; k <= kc.degeneracy; ++k) {
    KCoreMembers members = MembersOfKCore(kc, k);
    std::set<UserId> users(members.users.begin(), members.users.end());
    std::set<MerchantId> merchants(members.merchants.begin(),
                                   members.merchants.end());
    EXPECT_FALSE(users.empty());
    // Degree within the core must be >= k for every member.
    for (UserId u : members.users) {
      int64_t internal = 0;
      for (EdgeId e : g.user_edges(u)) {
        internal += merchants.count(g.edge(e).merchant) > 0;
      }
      EXPECT_GE(internal, k) << "user " << u << " in " << k << "-core";
    }
    for (MerchantId v : members.merchants) {
      int64_t internal = 0;
      for (EdgeId e : g.merchant_edges(v)) {
        internal += users.count(g.edge(e).user) > 0;
      }
      EXPECT_GE(internal, k) << "merchant " << v << " in " << k << "-core";
    }
  }
}

TEST(KCoreTest, CoresNested) {
  Rng rng(92);
  GraphBuilder b(30, 30);
  for (int i = 0; i < 150; ++i) {
    b.AddEdge(static_cast<UserId>(rng.NextBounded(30)),
              static_cast<MerchantId>(rng.NextBounded(30)));
  }
  auto g = b.Build().ValueOrDie();
  auto kc = ComputeKCores(g);
  for (int32_t k = 1; k < kc.degeneracy; ++k) {
    auto outer = MembersOfKCore(kc, k);
    auto inner = MembersOfKCore(kc, k + 1);
    EXPECT_TRUE(std::includes(outer.users.begin(), outer.users.end(),
                              inner.users.begin(), inner.users.end()));
    EXPECT_TRUE(std::includes(outer.merchants.begin(), outer.merchants.end(),
                              inner.merchants.begin(),
                              inner.merchants.end()));
  }
}

TEST(KCoreTest, FraudBlockHasHighestCore) {
  // 6x4 complete block (4-core... min(6,4) side: users degree 4, merchants
  // degree 6 → 4-core) in sparse noise: block members must hold the top
  // core number.
  GraphBuilder b(40, 30);
  for (UserId u = 0; u < 6; ++u) {
    for (MerchantId v = 0; v < 4; ++v) b.AddEdge(u, v);
  }
  Rng rng(93);
  for (int i = 0; i < 40; ++i) {
    b.AddEdge(static_cast<UserId>(6 + rng.NextBounded(34)),
              static_cast<MerchantId>(4 + rng.NextBounded(26)));
  }
  auto g = b.Build().ValueOrDie();
  auto kc = ComputeKCores(g);
  EXPECT_EQ(kc.degeneracy, 4);
  for (UserId u = 0; u < 6; ++u) EXPECT_EQ(kc.user_core[u], 4);
}

}  // namespace
}  // namespace ensemfdet
