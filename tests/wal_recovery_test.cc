// Kill-and-recover parity of WAL-backed streaming sessions: a session
// interrupted at ANY point — clean close, a crash at every injected
// fault point, a log cut at every byte offset of its final record —
// reopened with wal.recover must produce the bit-identical final
// detection report of an uninterrupted session over the same stream,
// across all four sampling methods. Detection randomness is
// content-derived, so replayed ingest reconstructs the same windows and
// the same reports; these tests are the proof.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.h"
#include "service/detection_service.h"
#include "service/graph_registry.h"
#include "storage/fault_file.h"
#include "storage/wal_reader.h"
#include "stream/windowed_detector.h"

namespace ensemfdet {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  const std::string dir =
      (fs::temp_directory_path() / ("ensemfdet_wal_recovery_" + name))
          .string();
  std::error_code ec;
  fs::remove_all(dir, ec);
  return dir;
}

/// A deterministic fragmented stream with a dense planted burst.
std::vector<Transaction> MakeStream(int64_t count, uint64_t seed) {
  std::vector<Transaction> events;
  events.reserve(static_cast<size_t>(count));
  Rng rng(seed);
  int64_t ts = 0;
  for (int64_t i = 0; i < count; ++i) {
    ts += static_cast<int64_t>(rng.NextBounded(4));
    if (i % 5 == 0) {
      // Burst edge inside a small dense block.
      events.push_back({ts, static_cast<UserId>(rng.NextBounded(6)),
                        static_cast<MerchantId>(rng.NextBounded(3))});
    } else {
      events.push_back({ts, static_cast<UserId>(rng.NextBounded(60)),
                        static_cast<MerchantId>(rng.NextBounded(30))});
    }
  }
  return events;
}

std::vector<IngestBatch> MakeBatches(int64_t count, int64_t per_batch,
                                     uint64_t seed) {
  const std::vector<Transaction> events = MakeStream(count * per_batch,
                                                     seed);
  std::vector<IngestBatch> batches(static_cast<size_t>(count));
  for (int64_t i = 0; i < count * per_batch; ++i) {
    batches[static_cast<size_t>(i / per_batch)].transactions.push_back(
        events[static_cast<size_t>(i)]);
  }
  return batches;
}

StreamSessionConfig Session(SampleMethod method = SampleMethod::kRandomEdge,
                            uint64_t seed = 17) {
  StreamSessionConfig config;
  config.detector.num_users = 60;
  config.detector.num_merchants = 30;
  config.detector.window = 120;
  config.detector.detection_interval = 30;
  config.detector.ensemble.num_samples = 5;
  config.detector.ensemble.ratio = 0.3;
  config.detector.ensemble.seed = seed;
  config.detector.ensemble.method = method;
  config.detector.ensemble.fdet.max_blocks = 6;
  return config;
}

void ExpectReportsEqual(const EnsemFDetReport& a, const EnsemFDetReport& b,
                        const std::string& what) {
  ASSERT_EQ(a.votes.all_user_votes().size(),
            b.votes.all_user_votes().size())
      << what;
  EXPECT_TRUE(std::equal(a.votes.all_user_votes().begin(),
                         a.votes.all_user_votes().end(),
                         b.votes.all_user_votes().begin()))
      << what;
  EXPECT_TRUE(std::equal(a.votes.all_merchant_votes().begin(),
                         a.votes.all_merchant_votes().end(),
                         b.votes.all_merchant_votes().begin()))
      << what;
  EXPECT_EQ(a.weighted_user_votes, b.weighted_user_votes) << what;
  EXPECT_EQ(a.weighted_merchant_votes, b.weighted_merchant_votes) << what;
}

/// Runs the whole stream through one uninterrupted (non-WAL) session and
/// returns the final forced detection.
StreamState UninterruptedRun(const std::vector<IngestBatch>& batches,
                             StreamSessionConfig config) {
  GraphRegistry registry;
  DetectionService service(&registry, nullptr);
  StreamId id = service.OpenStream(config).ValueOrDie();
  for (const IngestBatch& batch : batches) {
    EXPECT_TRUE(service.IngestBatch(id, batch).ok());
  }
  return service.FinishStream(id).ValueOrDie();
}

/// Opens a recovering session on `wal_dir`, resends every batch the WAL
/// does not already hold (wal_last_seq == 1-based batch number), and
/// returns the final forced detection.
Result<StreamState> RecoverAndFinish(const std::vector<IngestBatch>& batches,
                                     StreamSessionConfig config,
                                     const std::string& wal_dir,
                                     const std::string& checkpoint = "") {
  GraphRegistry registry;
  DetectionService service(&registry, nullptr);
  config.wal.dir = wal_dir;
  config.wal.recover = true;
  config.resume_checkpoint = checkpoint;
  ENSEMFDET_ASSIGN_OR_RETURN(StreamId id,
                             service.OpenStream(std::move(config)));
  ENSEMFDET_ASSIGN_OR_RETURN(StreamState opened, service.PollReport(id));
  for (uint64_t i = opened.wal_last_seq; i < batches.size(); ++i) {
    ENSEMFDET_RETURN_NOT_OK(
        service.IngestBatch(id, batches[static_cast<size_t>(i)]));
  }
  return service.FinishStream(id);
}

TEST(WalRecovery, KillAndRecoverParityAcrossAllSamplingMethods) {
  const std::vector<IngestBatch> batches = MakeBatches(24, 8, 5);
  for (SampleMethod method :
       {SampleMethod::kRandomEdge, SampleMethod::kOneSideUser,
        SampleMethod::kOneSideMerchant, SampleMethod::kTwoSide}) {
    const std::string what = SampleMethodName(method);
    const StreamState uninterrupted =
        UninterruptedRun(batches, Session(method));
    ASSERT_NE(uninterrupted.report, nullptr) << what;

    // Durable first half, then the process "dies" (the session is simply
    // abandoned after CloseStream drains it — the WAL stays behind).
    const std::string wal_dir = TempDir("kill_" + what);
    {
      GraphRegistry registry;
      DetectionService service(&registry, nullptr);
      StreamSessionConfig config = Session(method);
      config.wal.dir = wal_dir;
      StreamId id = service.OpenStream(config).ValueOrDie();
      for (size_t i = 0; i < batches.size() / 2; ++i) {
        ASSERT_TRUE(service.IngestBatch(id, batches[i]).ok()) << what;
      }
      ASSERT_TRUE(service.CloseStream(id).ok()) << what;
    }

    auto recovered = RecoverAndFinish(batches, Session(method), wal_dir);
    ASSERT_TRUE(recovered.ok()) << what << ": "
                                << recovered.status().ToString();
    ASSERT_NE(recovered->report, nullptr) << what;
    EXPECT_EQ(recovered->wal_records_recovered, batches.size() / 2) << what;
    ExpectReportsEqual(*uninterrupted.report, *recovered->report, what);
    EXPECT_EQ(uninterrupted.reports_generated,
              recovered->reports_generated)
        << what;
    std::error_code ec;
    fs::remove_all(wal_dir, ec);
  }
}

TEST(WalRecovery, FreshOpenOverAnExistingLogIsRefused) {
  const std::vector<IngestBatch> batches = MakeBatches(6, 8, 5);
  const std::string wal_dir = TempDir("fresh_refused");
  {
    GraphRegistry registry;
    DetectionService service(&registry, nullptr);
    StreamSessionConfig config = Session();
    config.wal.dir = wal_dir;
    StreamId id = service.OpenStream(config).ValueOrDie();
    for (const IngestBatch& batch : batches) {
      ASSERT_TRUE(service.IngestBatch(id, batch).ok());
    }
    ASSERT_TRUE(service.CloseStream(id).ok());
  }
  GraphRegistry registry;
  DetectionService service(&registry, nullptr);
  StreamSessionConfig config = Session();
  config.wal.dir = wal_dir;  // recover NOT set: silent overwrite refused
  EXPECT_EQ(service.OpenStream(config).status().code(),
            StatusCode::kFailedPrecondition);
  std::error_code ec;
  fs::remove_all(wal_dir, ec);
}

TEST(WalRecovery, RecoverRequiresAWalPositionInTheCheckpoint) {
  // A checkpoint written by a non-WAL session carries no kWalPosition
  // section; recovering against it cannot know where replay resumes.
  const std::vector<IngestBatch> batches = MakeBatches(8, 8, 5);
  const std::string wal_dir = TempDir("no_position_wal");
  const std::string checkpoint =
      TempDir("no_position_ckpt_dir") + "_checkpoint.efg";
  {
    GraphRegistry registry;
    DetectionService service(&registry, nullptr);
    StreamId id = service.OpenStream(Session()).ValueOrDie();
    for (const IngestBatch& batch : batches) {
      ASSERT_TRUE(service.IngestBatch(id, batch).ok());
    }
    ASSERT_TRUE(service.SaveStreamCheckpoint(id, checkpoint).ok());
    ASSERT_TRUE(service.CloseStream(id).ok());
  }
  auto recovered =
      RecoverAndFinish(batches, Session(), wal_dir, checkpoint);
  EXPECT_EQ(recovered.status().code(), StatusCode::kInvalidArgument);
  std::error_code ec;
  fs::remove_all(wal_dir, ec);
  fs::remove(checkpoint, ec);
}

TEST(WalRecovery, WalDeletedOutFromUnderItsCheckpointIsAnError) {
  const std::vector<IngestBatch> batches = MakeBatches(12, 8, 5);
  const std::string wal_dir = TempDir("wiped_wal");
  const std::string checkpoint = TempDir("wiped_dir") + "_checkpoint.efg";
  {
    GraphRegistry registry;
    DetectionService service(&registry, nullptr);
    StreamSessionConfig config = Session();
    config.wal.dir = wal_dir;
    StreamId id = service.OpenStream(config).ValueOrDie();
    for (const IngestBatch& batch : batches) {
      ASSERT_TRUE(service.IngestBatch(id, batch).ok());
    }
    ASSERT_TRUE(service.SaveStreamCheckpoint(id, checkpoint).ok());
    ASSERT_TRUE(service.CloseStream(id).ok());
  }
  std::error_code ec;
  fs::remove_all(wal_dir, ec);  // the log vanishes; the checkpoint stays
  auto recovered =
      RecoverAndFinish(batches, Session(), wal_dir, checkpoint);
  EXPECT_FALSE(recovered.ok());
  fs::remove(checkpoint, ec);
}

TEST(WalRecovery, CheckpointPlusWalSuffixReplaysOnlyTheSuffix) {
  const std::vector<IngestBatch> batches = MakeBatches(24, 8, 5);
  const StreamState uninterrupted = UninterruptedRun(batches, Session());
  ASSERT_NE(uninterrupted.report, nullptr);

  const std::string wal_dir = TempDir("suffix_wal");
  const std::string checkpoint = TempDir("suffix_dir") + "_checkpoint.efg";
  {
    GraphRegistry registry;
    DetectionService service(&registry, nullptr);
    StreamSessionConfig config = Session();
    config.wal.dir = wal_dir;
    StreamId id = service.OpenStream(config).ValueOrDie();
    for (size_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(service.IngestBatch(id, batches[i]).ok());
    }
    ASSERT_TRUE(service.SaveStreamCheckpoint(id, checkpoint).ok());
    for (size_t i = 10; i < 16; ++i) {
      ASSERT_TRUE(service.IngestBatch(id, batches[i]).ok());
    }
    ASSERT_TRUE(service.CloseStream(id).ok());
  }

  auto recovered =
      RecoverAndFinish(batches, Session(), wal_dir, checkpoint);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_NE(recovered->report, nullptr);
  // The checkpoint restored batches 1..10; only 11..16 replayed.
  EXPECT_EQ(recovered->wal_records_recovered, 6u);
  EXPECT_GE(recovered->wal_last_seq, 16u);
  ExpectReportsEqual(*uninterrupted.report, *recovered->report,
                     "checkpoint+suffix");
  std::error_code ec;
  fs::remove_all(wal_dir, ec);
  fs::remove(checkpoint, ec);
}

// The tentpole enumeration: crash the durable session at EVERY injected
// fault point (op k+1 and everything after fails, the dying append torn
// mid-frame), recover with healthy file ops, resend from the recovered
// position, and require the bit-identical final report every time.
TEST(WalRecovery, EveryFaultPointRecoversBitIdentical) {
  const std::vector<IngestBatch> batches = MakeBatches(12, 6, 9);
  const StreamSessionConfig base = Session(SampleMethod::kRandomEdge, 23);
  const StreamState uninterrupted = UninterruptedRun(batches, base);
  ASSERT_NE(uninterrupted.report, nullptr);

  auto durable_session = [&](const std::string& wal_dir) {
    StreamSessionConfig config = base;
    config.wal.dir = wal_dir;
    config.wal.fsync = storage::WalFsyncPolicy::kAlways;
    config.wal.segment_bytes = 512;  // force rotations into the op count
    return config;
  };

  // Clean counted run to learn the total mutating-op count T.
  int64_t total_ops = 0;
  {
    const std::string wal_dir = TempDir("faults_count");
    storage::FaultInjectingFileOps faulty;
    storage::ScopedFileOpsOverride scope(&faulty);
    GraphRegistry registry;
    DetectionService service(&registry, nullptr);
    StreamId id = service.OpenStream(durable_session(wal_dir)).ValueOrDie();
    for (const IngestBatch& batch : batches) {
      ASSERT_TRUE(service.IngestBatch(id, batch).ok());
    }
    ASSERT_TRUE(service.CloseStream(id).ok());
    total_ops = faulty.op_count();
    std::error_code ec;
    fs::remove_all(wal_dir, ec);
  }
  ASSERT_GT(total_ops, static_cast<int64_t>(batches.size()));

  const std::string wal_dir = TempDir("faults");
  for (int64_t k = 0; k < total_ops; ++k) {
    std::error_code ec;
    fs::remove_all(wal_dir, ec);
    {
      storage::FaultInjectingFileOps faulty;
      faulty.FailAfter(k);
      faulty.set_short_write_bytes(static_cast<size_t>(k % 17));
      storage::ScopedFileOpsOverride scope(&faulty);
      GraphRegistry registry;
      DetectionService service(&registry, nullptr);
      auto id = service.OpenStream(durable_session(wal_dir));
      if (id.ok()) {
        for (const IngestBatch& batch : batches) {
          if (!service.IngestBatch(*id, batch).ok()) break;
        }
        (void)service.CloseStream(*id);
      }
      ASSERT_TRUE(faulty.crashed())
          << "fault point " << k << " was never reached";
    }
    // Recovery with the real file ops must always produce a clean Status
    // and the bit-identical final report.
    auto recovered = RecoverAndFinish(batches, base, wal_dir);
    ASSERT_TRUE(recovered.ok()) << "fault point " << k << ": "
                                << recovered.status().ToString();
    ASSERT_NE(recovered->report, nullptr) << "fault point " << k;
    ExpectReportsEqual(*uninterrupted.report, *recovered->report,
                       "fault point " + std::to_string(k));
  }
  std::error_code ec;
  fs::remove_all(wal_dir, ec);
}

// Log cut at every byte offset of the final record (service-level twin
// of the storage-layer test): recovery resends the torn batch and the
// final report never changes.
TEST(WalRecovery, TruncationAtEveryByteOfTheFinalRecordKeepsParity) {
  const std::vector<IngestBatch> batches = MakeBatches(10, 4, 13);
  const StreamSessionConfig base = Session(SampleMethod::kTwoSide, 29);
  const StreamState uninterrupted = UninterruptedRun(batches, base);
  ASSERT_NE(uninterrupted.report, nullptr);

  // Build the pristine durable log of the full stream.
  const std::string pristine = TempDir("cut_pristine");
  {
    GraphRegistry registry;
    DetectionService service(&registry, nullptr);
    StreamSessionConfig config = base;
    config.wal.dir = pristine;
    StreamId id = service.OpenStream(config).ValueOrDie();
    for (const IngestBatch& batch : batches) {
      ASSERT_TRUE(service.IngestBatch(id, batch).ok());
    }
    ASSERT_TRUE(service.CloseStream(id).ok());
  }
  auto state = storage::ScanWalDir(pristine);
  ASSERT_TRUE(state.ok());
  ASSERT_FALSE(state->segments.empty());
  const std::string last_name =
      fs::path(state->segments.back().path).filename().string();
  const uint64_t tail_end = state->last_segment_valid_bytes;
  // The final record's frame size is fixed by the codec: a 32-byte
  // record header plus the 4-transaction payload (8 + 4*16 = 72 bytes),
  // already 8-byte aligned — 104 bytes. Cutting at every offset from the
  // frame's first byte to its last covers the whole record.
  const uint64_t frame_bytes =
      32 + ((4 * 16 + 8 + 7) / 8) * 8;  // header + aligned payload
  const uint64_t tail_start =
      tail_end > frame_bytes ? tail_end - frame_bytes : 64;

  const std::string wal_dir = TempDir("cut");
  for (uint64_t cut = tail_start; cut < tail_end; ++cut) {
    std::error_code ec;
    fs::remove_all(wal_dir, ec);
    fs::create_directories(wal_dir, ec);
    fs::copy(pristine, wal_dir, fs::copy_options::recursive, ec);
    ASSERT_FALSE(ec);
    fs::resize_file(wal_dir + "/" + last_name, cut, ec);
    ASSERT_FALSE(ec);

    auto recovered = RecoverAndFinish(batches, base, wal_dir);
    ASSERT_TRUE(recovered.ok()) << "cut at " << cut << ": "
                                << recovered.status().ToString();
    ASSERT_NE(recovered->report, nullptr) << "cut at " << cut;
    ExpectReportsEqual(*uninterrupted.report, *recovered->report,
                       "cut at " + std::to_string(cut));
  }
  std::error_code ec;
  fs::remove_all(wal_dir, ec);
  fs::remove_all(pristine, ec);
}

}  // namespace
}  // namespace ensemfdet
