#include "sampling/sampler.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/graph_builder.h"

namespace ensemfdet {
namespace {

// 40 users × 20 merchants random-ish graph with 200 distinct edges.
BipartiteGraph MediumGraph(uint64_t seed = 5) {
  Rng rng(seed);
  GraphBuilder b(40, 20);
  std::set<std::pair<UserId, MerchantId>> seen;
  while (seen.size() < 200) {
    UserId u = static_cast<UserId>(rng.NextBounded(40));
    MerchantId v = static_cast<MerchantId>(rng.NextBounded(20));
    if (seen.insert({u, v}).second) b.AddEdge(u, v);
  }
  return b.Build().ValueOrDie();
}

TEST(SampleMethodTest, NamesRoundTrip) {
  for (SampleMethod m :
       {SampleMethod::kRandomEdge, SampleMethod::kOneSideUser,
        SampleMethod::kOneSideMerchant, SampleMethod::kTwoSide}) {
    auto parsed = ParseSampleMethod(SampleMethodName(m));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, m);
  }
}

TEST(SampleMethodTest, UnknownNameFails) {
  auto parsed = ParseSampleMethod("bogus");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kNotFound);
}

TEST(MakeSamplerTest, RejectsBadRatio) {
  EXPECT_FALSE(MakeSampler(SampleMethod::kRandomEdge, 0.0).ok());
  EXPECT_FALSE(MakeSampler(SampleMethod::kRandomEdge, -0.1).ok());
  EXPECT_FALSE(MakeSampler(SampleMethod::kRandomEdge, 1.5).ok());
  EXPECT_TRUE(MakeSampler(SampleMethod::kRandomEdge, 1.0).ok());
}

TEST(MakeSamplerTest, ReportsMethodAndRatio) {
  for (SampleMethod m :
       {SampleMethod::kRandomEdge, SampleMethod::kOneSideUser,
        SampleMethod::kOneSideMerchant, SampleMethod::kTwoSide}) {
    auto sampler = MakeSampler(m, 0.25).ValueOrDie();
    EXPECT_EQ(sampler->method(), m);
    EXPECT_DOUBLE_EQ(sampler->ratio(), 0.25);
  }
}

TEST(RandomEdgeSamplerTest, ExactEdgeCount) {
  auto g = MediumGraph();
  auto sampler = MakeSampler(SampleMethod::kRandomEdge, 0.1).ValueOrDie();
  Rng rng(1);
  SubgraphView view = sampler->Sample(g, &rng);
  EXPECT_EQ(view.graph.num_edges(), 20);  // ⌊0.1 · 200⌋
}

TEST(RandomEdgeSamplerTest, TinyRatioStillSamplesOneEdge) {
  auto g = MediumGraph();
  auto sampler = MakeSampler(SampleMethod::kRandomEdge, 1e-6).ValueOrDie();
  Rng rng(2);
  SubgraphView view = sampler->Sample(g, &rng);
  EXPECT_EQ(view.graph.num_edges(), 1);
}

TEST(RandomEdgeSamplerTest, FullRatioKeepsAllEdges) {
  auto g = MediumGraph();
  auto sampler = MakeSampler(SampleMethod::kRandomEdge, 1.0).ValueOrDie();
  Rng rng(3);
  SubgraphView view = sampler->Sample(g, &rng);
  EXPECT_EQ(view.graph.num_edges(), g.num_edges());
}

TEST(RandomEdgeSamplerTest, SampledEdgesExistInParent) {
  auto g = MediumGraph();
  auto sampler = MakeSampler(SampleMethod::kRandomEdge, 0.3).ValueOrDie();
  Rng rng(4);
  SubgraphView view = sampler->Sample(g, &rng);
  for (EdgeId e = 0; e < view.graph.num_edges(); ++e) {
    const Edge& local = view.graph.edge(e);
    EXPECT_TRUE(g.HasEdge(view.ToParentUser(local.user),
                          view.ToParentMerchant(local.merchant)));
  }
}

TEST(RandomEdgeSamplerTest, NoIsolatedNodesInSample) {
  auto g = MediumGraph();
  auto sampler = MakeSampler(SampleMethod::kRandomEdge, 0.05).ValueOrDie();
  Rng rng(5);
  SubgraphView view = sampler->Sample(g, &rng);
  for (int64_t u = 0; u < view.graph.num_users(); ++u) {
    EXPECT_GT(view.graph.user_degree(static_cast<UserId>(u)), 0);
  }
  for (int64_t v = 0; v < view.graph.num_merchants(); ++v) {
    EXPECT_GT(view.graph.merchant_degree(static_cast<MerchantId>(v)), 0);
  }
}

TEST(RandomEdgeSamplerTest, ReweightScalesWeightsByInverseRatio) {
  auto g = MediumGraph();
  auto sampler =
      MakeSampler(SampleMethod::kRandomEdge, 0.25, /*reweight=*/true)
          .ValueOrDie();
  Rng rng(6);
  SubgraphView view = sampler->Sample(g, &rng);
  ASSERT_TRUE(view.graph.has_weights());
  for (EdgeId e = 0; e < view.graph.num_edges(); ++e) {
    EXPECT_DOUBLE_EQ(view.graph.edge_weight(e), 4.0);
  }
}

TEST(RandomEdgeSamplerTest, DistinctSeedsDistinctSamples) {
  auto g = MediumGraph();
  auto sampler = MakeSampler(SampleMethod::kRandomEdge, 0.1).ValueOrDie();
  Rng r1(7), r2(8);
  SubgraphView a = sampler->Sample(g, &r1);
  SubgraphView b = sampler->Sample(g, &r2);
  EXPECT_TRUE(a.user_map != b.user_map || a.merchant_map != b.merchant_map);
}

TEST(RandomEdgeSamplerTest, SameSeedSameSample) {
  auto g = MediumGraph();
  auto sampler = MakeSampler(SampleMethod::kRandomEdge, 0.1).ValueOrDie();
  Rng r1(9), r2(9);
  SubgraphView a = sampler->Sample(g, &r1);
  SubgraphView b = sampler->Sample(g, &r2);
  EXPECT_EQ(a.user_map, b.user_map);
  EXPECT_EQ(a.merchant_map, b.merchant_map);
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
}

TEST(OneSideNodeSamplerTest, UserSideCountsAndRows) {
  auto g = MediumGraph();
  auto sampler = MakeSampler(SampleMethod::kOneSideUser, 0.25).ValueOrDie();
  Rng rng(10);
  SubgraphView view = sampler->Sample(g, &rng);
  // ⌊0.25 · 40⌋ = 10 users drawn; isolated draws would shrink the count but
  // MediumGraph has no isolated users.
  EXPECT_EQ(view.graph.num_users(), 10);
  // Every sampled user keeps its full parent row.
  for (int64_t lu = 0; lu < view.graph.num_users(); ++lu) {
    UserId pu = view.user_map[static_cast<size_t>(lu)];
    EXPECT_EQ(view.graph.user_degree(static_cast<UserId>(lu)),
              g.user_degree(pu));
  }
}

TEST(OneSideNodeSamplerTest, MerchantSideKeepsColumns) {
  auto g = MediumGraph();
  auto sampler =
      MakeSampler(SampleMethod::kOneSideMerchant, 0.2).ValueOrDie();
  Rng rng(11);
  SubgraphView view = sampler->Sample(g, &rng);
  EXPECT_EQ(view.graph.num_merchants(), 4);  // ⌊0.2 · 20⌋
  for (int64_t lv = 0; lv < view.graph.num_merchants(); ++lv) {
    MerchantId pv = view.merchant_map[static_cast<size_t>(lv)];
    EXPECT_EQ(view.graph.merchant_degree(static_cast<MerchantId>(lv)),
              g.merchant_degree(pv));
  }
}

TEST(TwoSideNodeSamplerTest, BothSidesSampledCrossSectionOnly) {
  auto g = MediumGraph();
  auto sampler = MakeSampler(SampleMethod::kTwoSide, 0.5).ValueOrDie();
  Rng rng(12);
  SubgraphView view = sampler->Sample(g, &rng);
  EXPECT_EQ(view.graph.num_users(), 20);      // ⌊0.5·40⌋
  EXPECT_EQ(view.graph.num_merchants(), 10);  // ⌊0.5·20⌋
  // Cross-section: subgraph edges are exactly the parent edges between the
  // selected sides.
  int64_t expected = 0;
  std::set<UserId> users(view.user_map.begin(), view.user_map.end());
  std::set<MerchantId> merchants(view.merchant_map.begin(),
                                 view.merchant_map.end());
  for (const Edge& e : g.edges()) {
    if (users.count(e.user) && merchants.count(e.merchant)) ++expected;
  }
  EXPECT_EQ(view.graph.num_edges(), expected);
}

TEST(TwoSideNodeSamplerTest, EdgeCountScalesAsRatioSquared) {
  // The paper's §IV-A4 point: TNS keeps ≈ S² of the edges.
  auto g = MediumGraph();
  auto sampler = MakeSampler(SampleMethod::kTwoSide, 0.5).ValueOrDie();
  double total = 0.0;
  constexpr int kTrials = 60;
  for (int t = 0; t < kTrials; ++t) {
    Rng rng(100 + static_cast<uint64_t>(t));
    total += static_cast<double>(sampler->Sample(g, &rng).graph.num_edges());
  }
  const double avg_fraction =
      total / kTrials / static_cast<double>(g.num_edges());
  EXPECT_NEAR(avg_fraction, 0.25, 0.06);  // S² = 0.25
}

TEST(SamplerTest, AllMethodsProduceValidSubgraphIds) {
  auto g = MediumGraph();
  for (SampleMethod m :
       {SampleMethod::kRandomEdge, SampleMethod::kOneSideUser,
        SampleMethod::kOneSideMerchant, SampleMethod::kTwoSide}) {
    auto sampler = MakeSampler(m, 0.3).ValueOrDie();
    Rng rng(13);
    SubgraphView view = sampler->Sample(g, &rng);
    for (UserId pu : view.user_map) EXPECT_LT(pu, g.num_users());
    for (MerchantId pv : view.merchant_map) EXPECT_LT(pv, g.num_merchants());
    // Maps are strictly ascending (sorted unique).
    EXPECT_TRUE(std::is_sorted(view.user_map.begin(), view.user_map.end()));
    EXPECT_TRUE(std::adjacent_find(view.user_map.begin(),
                                   view.user_map.end()) ==
                view.user_map.end());
  }
}

}  // namespace
}  // namespace ensemfdet
