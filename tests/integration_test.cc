// End-to-end pipeline tests: datagen → (ensemble | baselines) → eval.
// These assert the paper's qualitative claims hold on planted-truth data.
#include <algorithm>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "baselines/fbox.h"
#include "graph/graph_io.h"
#include "baselines/fraudar.h"
#include "baselines/spoken.h"
#include "common/thread_pool.h"
#include "datagen/presets.h"
#include "ensemble/ensemfdet.h"
#include "eval/curves.h"
#include "eval/metrics.h"

namespace ensemfdet {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(
        GenerateJdPreset(JdPreset::kDataset1, 0.01, 2024).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static const Dataset& data() { return *dataset_; }

  // The paper's S=0.1 assumes full-scale fraud groups (~2,400 users); at
  // this 1% test scale groups are ~24 users, so a larger ratio keeps each
  // sampled group coherent.
  static EnsemFDetConfig DefaultConfig() {
    EnsemFDetConfig cfg;
    cfg.num_samples = 20;
    cfg.ratio = 0.25;
    cfg.seed = 9;
    cfg.fdet.max_blocks = 20;
    return cfg;
  }

  static Dataset* dataset_;
};

Dataset* PipelineTest::dataset_ = nullptr;

TEST_F(PipelineTest, EnsembleBeatsRandomByWideMargin) {
  ThreadPool pool(4);
  auto report = EnsemFDet(DefaultConfig()).Run(data().graph, &pool)
                    .ValueOrDie();
  auto points = VoteSweep(report.votes, data().blacklist, 20);
  ASSERT_FALSE(points.empty());
  // Base rate of blacklisted users.
  const double base_rate =
      static_cast<double>(data().blacklist.num_fraud()) /
      static_cast<double>(data().graph.num_users());
  double best_precision = 0.0;
  for (const auto& p : points) {
    if (p.num_detected >= 20) {
      best_precision = std::max(best_precision, p.precision);
    }
  }
  EXPECT_GT(best_precision, 4.0 * base_rate)
      << "ensemble precision should far exceed the " << base_rate
      << " base rate";
}

TEST_F(PipelineTest, EnsembleRecoversMostPlantedUsers) {
  ThreadPool pool(4);
  auto report = EnsemFDet(DefaultConfig()).Run(data().graph, &pool)
                    .ValueOrDie();
  // At the loosest threshold, planted-truth recall (not blacklist recall)
  // should be substantial: most planted users get at least one vote.
  auto detected = report.AcceptedUsers(1);
  LabelSet planted(data().graph.num_users(), data().planted_fraud_users);
  Confusion c = CountConfusion(detected, planted);
  EXPECT_GT(Recall(c), 0.5);
}

TEST_F(PipelineTest, VoteSweepRecallMonotone) {
  ThreadPool pool(4);
  auto report = EnsemFDet(DefaultConfig()).Run(data().graph, &pool)
                    .ValueOrDie();
  auto points = VoteSweep(report.votes, data().blacklist, 20);
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].recall, points[i - 1].recall - 1e-12);
    EXPECT_GE(points[i].num_detected, points[i - 1].num_detected);
  }
}

TEST_F(PipelineTest, SmoothOperatingCurveVsFraudarPolyline) {
  // The paper's practicability claim: ENSEMFDET exposes many more distinct
  // operating points than FRAUDAR's per-block polyline.
  ThreadPool pool(4);
  EnsemFDetConfig cfg = DefaultConfig();
  cfg.num_samples = 40;
  auto report = EnsemFDet(cfg).Run(data().graph, &pool).ValueOrDie();
  auto ens_points = VoteSweep(report.votes, data().blacklist, 40);

  FraudarConfig fraudar_cfg;
  fraudar_cfg.num_blocks = 10;
  auto fraudar = RunFraudar(data().graph, fraudar_cfg).ValueOrDie();
  auto fraudar_points = BlockSweep(fraudar.UserBlocks(), data().blacklist);

  EXPECT_GT(ens_points.size(), 2 * fraudar_points.size());
}

TEST_F(PipelineTest, FraudarAndEnsembleBothDetectFraud) {
  ThreadPool pool(4);
  auto report = EnsemFDet(DefaultConfig()).Run(data().graph, &pool)
                    .ValueOrDie();
  FraudarConfig fraudar_cfg;
  fraudar_cfg.num_blocks = 10;
  auto fraudar = RunFraudar(data().graph, fraudar_cfg).ValueOrDie();

  LabelSet planted(data().graph.num_users(), data().planted_fraud_users);
  Confusion fr = CountConfusion(fraudar.DetectedUsers(), planted);
  EXPECT_GT(F1Score(fr), 0.1) << "FRAUDAR should find planted structure";

  // Pick the vote threshold whose detection count is closest to FRAUDAR's.
  auto points = VoteSweep(report.votes, data().blacklist, 20);
  ASSERT_FALSE(points.empty());
  const int64_t target = fr.num_detected();
  const OperatingPoint* closest = &points[0];
  for (const auto& p : points) {
    if (std::abs(p.num_detected - target) <
        std::abs(closest->num_detected - target)) {
      closest = &p;
    }
  }
  // Blacklist-relative F1 at matched detection budget should be in the same
  // ballpark as FRAUDAR's blacklist F1 (paper: "similar performance").
  Confusion fr_blacklist =
      CountConfusion(fraudar.DetectedUsers(), data().blacklist);
  EXPECT_GT(closest->f1, 0.5 * F1Score(fr_blacklist));
}

TEST_F(PipelineTest, SpectralBaselinesProduceUsableRankings) {
  SpokenConfig spoken_cfg;
  spoken_cfg.num_components = 10;
  auto spoken = RunSpoken(data().graph, spoken_cfg).ValueOrDie();
  FboxConfig fbox_cfg;
  fbox_cfg.num_components = 10;
  auto fbox = RunFbox(data().graph, fbox_cfg).ValueOrDie();

  LabelSet planted(data().graph.num_users(), data().planted_fraud_users);
  auto sizes = GeometricSizes(
      50, std::max<int64_t>(51, data().graph.num_users() / 4), 10);
  auto spoken_points = ScoreSweep(spoken.user_scores, planted, sizes);
  auto fbox_points = ScoreSweep(fbox.user_scores, planted, sizes);

  const double base_rate =
      static_cast<double>(planted.num_fraud()) /
      static_cast<double>(data().graph.num_users());
  double spoken_best = 0.0, fbox_best = 0.0;
  for (const auto& p : spoken_points) {
    spoken_best = std::max(spoken_best, p.precision);
  }
  for (const auto& p : fbox_points) {
    fbox_best = std::max(fbox_best, p.precision);
  }
  // SPOKEN must beat chance: planted blocks dominate the top singular
  // directions. FBOX is expected to be weak here — the paper itself
  // reports FBOX "almost completely invalidated on the No.1 Dataset"
  // because the fraud blocks are large enough to appear in the top
  // components (FBOX only catches attacks that evade them) — so we only
  // require a usable, finite ranking from it.
  EXPECT_GT(spoken_best, 2.0 * base_rate);
  EXPECT_GT(fbox_best, 0.0);
  for (const auto& p : fbox_points) {
    EXPECT_GE(p.recall, 0.0);
    EXPECT_LE(p.recall, 1.0);
  }
}

TEST_F(PipelineTest, TruncationKeepsBlockCountSmall) {
  // Paper §V-C3: all auto-truncated runs stayed below 15 blocks.
  ThreadPool pool(4);
  EnsemFDetConfig cfg = DefaultConfig();
  cfg.fdet.max_blocks = 40;
  auto report = EnsemFDet(cfg).Run(data().graph, &pool).ValueOrDie();
  for (const auto& m : report.members) {
    EXPECT_LE(m.num_blocks, 15) << "auto truncation should stop early";
  }
}

TEST_F(PipelineTest, GraphSaveLoadPreservesDetection) {
  // Persistence round-trip must not change votes.
  const std::string path = testing::TempDir() + "/pipeline_graph.tsv";
  ASSERT_TRUE(SaveEdgeListTsv(data().graph, path).ok());
  auto loaded = LoadEdgeListTsv(path).ValueOrDie();
  EnsemFDetConfig cfg = DefaultConfig();
  cfg.num_samples = 5;
  auto a = EnsemFDet(cfg).Run(data().graph).ValueOrDie();
  auto b = EnsemFDet(cfg).Run(loaded).ValueOrDie();
  for (int64_t u = 0; u < data().graph.num_users(); ++u) {
    ASSERT_EQ(a.votes.user_votes(static_cast<UserId>(u)),
              b.votes.user_votes(static_cast<UserId>(u)));
  }
}

}  // namespace
}  // namespace ensemfdet
