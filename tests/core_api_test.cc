// Umbrella-header smoke tests: everything a downstream user does through
// core/ensemfdet.h alone — generate, detect (batch, partitioned,
// streaming), evaluate against every baseline, persist. If this compiles
// and passes, the public API surface is intact end to end.
#include "core/ensemfdet.h"

#include <gtest/gtest.h>

namespace ensemfdet {
namespace {

class CoreApiTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(
        GenerateJdPreset(JdPreset::kDataset1, 0.005, 77).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static const Dataset& data() { return *dataset_; }
  static Dataset* dataset_;
};

Dataset* CoreApiTest::dataset_ = nullptr;

TEST_F(CoreApiTest, FullBatchPipeline) {
  EnsemFDetConfig cfg;
  cfg.num_samples = 10;
  cfg.ratio = 0.2;
  cfg.seed = 1;
  auto report =
      EnsemFDet(cfg).Run(data().graph, &DefaultThreadPool()).ValueOrDie();
  auto points = VoteSweep(report.votes, data().blacklist, cfg.num_samples);
  EXPECT_FALSE(points.empty());
  EXPECT_GE(PrCurveArea(points), 0.0);
}

TEST_F(CoreApiTest, AllBaselinesRunViaUmbrella) {
  FraudarConfig fraudar_cfg;
  fraudar_cfg.num_blocks = 5;
  EXPECT_TRUE(RunFraudar(data().graph, fraudar_cfg).ok());
  SpokenConfig spoken_cfg;
  spoken_cfg.num_components = 5;
  EXPECT_TRUE(RunSpoken(data().graph, spoken_cfg).ok());
  FboxConfig fbox_cfg;
  fbox_cfg.num_components = 5;
  EXPECT_TRUE(RunFbox(data().graph, fbox_cfg).ok());
  EXPECT_TRUE(RunHits(data().graph).ok());
}

TEST_F(CoreApiTest, GraphUtilitiesAvailable) {
  auto cc = FindConnectedComponents(data().graph);
  EXPECT_GT(cc.num_components(), 0);
  auto kc = ComputeKCores(data().graph);
  EXPECT_GT(kc.degeneracy, 0);
  auto stats = ComputeDegreeStats(data().graph, Side::kMerchant);
  EXPECT_GT(stats.avg_degree, 0.0);
}

TEST_F(CoreApiTest, PartitionedDetectionAvailable) {
  PartitionedFdetConfig cfg;
  cfg.fdet.max_blocks = 10;
  cfg.min_component_edges = 3;
  auto r = RunPartitionedFdet(data().graph, cfg, &DefaultThreadPool());
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->blocks.empty());
}

TEST_F(CoreApiTest, StreamingPipelineViaUmbrella) {
  StreamTimelineConfig timeline;
  timeline.horizon = 10000;
  timeline.burst_duration = 800;
  auto events = BuildTransactionStream(data(), timeline).ValueOrDie();
  ASSERT_FALSE(events.empty());

  WindowedDetectorConfig wd;
  wd.num_users = data().graph.num_users();
  wd.num_merchants = data().graph.num_merchants();
  wd.window = 2000;
  wd.detection_interval = 2000;
  wd.ensemble.num_samples = 4;
  wd.ensemble.ratio = 0.5;
  WindowedDetector detector(wd);
  for (const Transaction& tx : events) {
    ASSERT_TRUE(detector.Ingest(tx).ok());
  }
  EXPECT_TRUE(detector.DetectNow().ok());
}

TEST_F(CoreApiTest, PersistenceRoundTripViaUmbrella) {
  const std::string graph_path = testing::TempDir() + "/api_graph.tsv";
  ASSERT_TRUE(SaveEdgeListTsv(data().graph, graph_path).ok());
  auto loaded = LoadEdgeListTsv(graph_path).ValueOrDie();
  EXPECT_EQ(loaded.num_edges(), data().graph.num_edges());

  EnsemFDetConfig cfg;
  cfg.num_samples = 4;
  cfg.ratio = 0.3;
  auto report = EnsemFDet(cfg).Run(loaded).ValueOrDie();
  const std::string votes_path = testing::TempDir() + "/api_votes.csv";
  ASSERT_TRUE(SaveVotesCsv(report, votes_path).ok());
  EXPECT_TRUE(LoadVotesCsv(votes_path).ok());
}

TEST_F(CoreApiTest, RocAndPrTooling) {
  SpokenConfig cfg;
  cfg.num_components = 5;
  auto spoken = RunSpoken(data().graph, cfg).ValueOrDie();
  auto roc = RocCurve(spoken.user_scores, data().blacklist);
  const double auc = RocAuc(roc);
  EXPECT_GT(auc, 0.0);
  EXPECT_LE(auc, 1.0);
}

}  // namespace
}  // namespace ensemfdet
