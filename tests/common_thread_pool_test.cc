#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace ensemfdet {
namespace {

TEST(ThreadPoolTest, ReportsThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3);
}

TEST(ThreadPoolTest, ZeroThreadsFallsBackToHardware) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1);
}

TEST(ThreadPoolTest, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto fut = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPoolTest, SubmitVoidTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  auto fut = pool.Submit([&counter] { counter.fetch_add(1); });
  fut.get();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPoolTest, SubmitExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto fut = pool.Submit([]() -> int { throw std::runtime_error("bad"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPoolTest, WaitIdleBlocksUntilDrained) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      done.fetch_add(1);
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&done] { done.fetch_add(1); });
    }
  }  // destructor joins after draining
  EXPECT_EQ(done.load(), 64);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(0, kN, [&hits](int64_t i) { hits[i].fetch_add(1); });
  for (int64_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, NonZeroBegin) {
  ThreadPool pool(2);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(10, 20, [&sum](int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 145);  // 10+...+19
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> hits{0};
  pool.ParallelFor(5, 5, [&hits](int64_t) { hits.fetch_add(1); });
  pool.ParallelFor(7, 3, [&hits](int64_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 0);
}

TEST(ParallelForTest, SingleItem) {
  ThreadPool pool(3);
  std::atomic<int> hits{0};
  pool.ParallelFor(0, 1, [&hits](int64_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 1);
}

TEST(ParallelForTest, ExceptionRethrownOnCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(0, 100,
                                [](int64_t i) {
                                  if (i == 37) {
                                    throw std::runtime_error("item 37");
                                  }
                                }),
               std::runtime_error);
}

TEST(ParallelForTest, SequentialConsistencyOfResults) {
  // Writing to disjoint slots must produce identical results regardless of
  // thread count.
  auto run = [](int threads) {
    ThreadPool pool(threads);
    std::vector<int64_t> out(1000);
    pool.ParallelFor(0, 1000, [&out](int64_t i) { out[i] = i * i; });
    return out;
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(DefaultThreadPoolTest, IsSingletonWithThreads) {
  ThreadPool& a = DefaultThreadPool();
  ThreadPool& b = DefaultThreadPool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1);
}

}  // namespace
}  // namespace ensemfdet
