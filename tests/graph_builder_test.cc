#include "graph/graph_builder.h"

#include <vector>

#include <gtest/gtest.h>

#include "graph/bipartite_graph.h"

namespace ensemfdet {
namespace {

TEST(GraphBuilderTest, EmptyGraph) {
  GraphBuilder b(0, 0);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_users(), 0);
  EXPECT_EQ(g->num_merchants(), 0);
  EXPECT_EQ(g->num_edges(), 0);
  EXPECT_TRUE(g->empty());
}

TEST(GraphBuilderTest, NodesWithoutEdges) {
  GraphBuilder b(3, 2);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_users(), 3);
  EXPECT_EQ(g->num_merchants(), 2);
  EXPECT_EQ(g->num_nodes(), 5);
  EXPECT_EQ(g->user_degree(0), 0);
  EXPECT_EQ(g->merchant_degree(1), 0);
}

TEST(GraphBuilderTest, SimpleEdges) {
  GraphBuilder b(2, 3);
  b.AddEdge(0, 0);
  b.AddEdge(0, 2);
  b.AddEdge(1, 1);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 3);
  EXPECT_EQ(g->user_degree(0), 2);
  EXPECT_EQ(g->user_degree(1), 1);
  EXPECT_EQ(g->merchant_degree(0), 1);
  EXPECT_EQ(g->merchant_degree(1), 1);
  EXPECT_EQ(g->merchant_degree(2), 1);
  EXPECT_TRUE(g->HasEdge(0, 0));
  EXPECT_TRUE(g->HasEdge(0, 2));
  EXPECT_TRUE(g->HasEdge(1, 1));
  EXPECT_FALSE(g->HasEdge(0, 1));
  EXPECT_FALSE(g->HasEdge(1, 0));
}

TEST(GraphBuilderTest, HasEdgeOutOfRangeIsFalse) {
  GraphBuilder b(1, 1);
  b.AddEdge(0, 0);
  auto g = b.Build().ValueOrDie();
  EXPECT_FALSE(g.HasEdge(5, 0));
  EXPECT_FALSE(g.HasEdge(0, 5));
}

TEST(GraphBuilderTest, UserAdjSortedByMerchant) {
  GraphBuilder b(1, 5);
  b.AddEdge(0, 3);
  b.AddEdge(0, 1);
  b.AddEdge(0, 4);
  b.AddEdge(0, 0);
  auto g = b.Build().ValueOrDie();
  auto edges = g.user_edges(0);
  ASSERT_EQ(edges.size(), 4u);
  MerchantId prev = 0;
  for (size_t i = 0; i < edges.size(); ++i) {
    MerchantId m = g.edge(edges[i]).merchant;
    if (i > 0) {
      EXPECT_GT(m, prev);
    }
    prev = m;
  }
}

TEST(GraphBuilderTest, MerchantAdjSortedByUser) {
  GraphBuilder b(5, 1);
  b.AddEdge(4, 0);
  b.AddEdge(1, 0);
  b.AddEdge(3, 0);
  auto g = b.Build().ValueOrDie();
  auto edges = g.merchant_edges(0);
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(g.edge(edges[0]).user, 1u);
  EXPECT_EQ(g.edge(edges[1]).user, 3u);
  EXPECT_EQ(g.edge(edges[2]).user, 4u);
}

TEST(GraphBuilderTest, DuplicateKeepFirstCollapsesToUnitWeight) {
  GraphBuilder b(1, 1);
  b.AddEdge(0, 0);
  b.AddEdge(0, 0);
  b.AddEdge(0, 0);
  auto g = b.Build(DuplicatePolicy::kKeepFirst).ValueOrDie();
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_FALSE(g.has_weights());
  EXPECT_DOUBLE_EQ(g.edge_weight(0), 1.0);
}

TEST(GraphBuilderTest, DuplicateSumWeights) {
  GraphBuilder b(1, 1);
  b.AddEdge(0, 0, 1.0);
  b.AddEdge(0, 0, 2.5);
  auto g = b.Build(DuplicatePolicy::kSumWeights).ValueOrDie();
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_TRUE(g.has_weights());
  EXPECT_DOUBLE_EQ(g.edge_weight(0), 3.5);
}

TEST(GraphBuilderTest, WeightedDegrees) {
  GraphBuilder b(2, 2);
  b.AddEdge(0, 0, 2.0);
  b.AddEdge(0, 1, 3.0);
  b.AddEdge(1, 1, 4.0);
  auto g = b.Build(DuplicatePolicy::kSumWeights).ValueOrDie();
  EXPECT_DOUBLE_EQ(g.user_weighted_degree(0), 5.0);
  EXPECT_DOUBLE_EQ(g.user_weighted_degree(1), 4.0);
  EXPECT_DOUBLE_EQ(g.merchant_weighted_degree(1), 7.0);
  // Unweighted degree still counts edges.
  EXPECT_EQ(g.user_degree(0), 2);
}

TEST(GraphBuilderTest, UnweightedWeightedDegreeEqualsDegree) {
  GraphBuilder b(2, 2);
  b.AddEdge(0, 0);
  b.AddEdge(0, 1);
  auto g = b.Build().ValueOrDie();
  EXPECT_DOUBLE_EQ(g.user_weighted_degree(0), 2.0);
  EXPECT_DOUBLE_EQ(g.merchant_weighted_degree(0), 1.0);
}

TEST(GraphBuilderTest, RejectsOutOfRangeUser) {
  GraphBuilder b(2, 2);
  b.AddEdge(2, 0);
  auto g = b.Build();
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphBuilderTest, RejectsOutOfRangeMerchant) {
  GraphBuilder b(2, 2);
  b.AddEdge(0, 7);
  EXPECT_FALSE(b.Build().ok());
}

TEST(GraphBuilderTest, RejectsNonPositiveWeight) {
  GraphBuilder b(1, 1);
  b.AddEdge(0, 0, 0.0);
  EXPECT_FALSE(b.Build().ok());
  GraphBuilder b2(1, 1);
  b2.AddEdge(0, 0, -1.0);
  EXPECT_FALSE(b2.Build().ok());
}

TEST(GraphBuilderTest, BuilderReusableAfterBuild) {
  GraphBuilder b(2, 2);
  b.AddEdge(0, 0);
  auto g1 = b.Build().ValueOrDie();
  EXPECT_EQ(g1.num_edges(), 1);
  EXPECT_EQ(b.num_pending_edges(), 0);
  b.AddEdge(1, 1);
  auto g2 = b.Build().ValueOrDie();
  EXPECT_EQ(g2.num_edges(), 1);
  EXPECT_TRUE(g2.HasEdge(1, 1));
  EXPECT_FALSE(g2.HasEdge(0, 0));
}

TEST(GraphBuilderTest, EdgeSpanMatchesCount) {
  GraphBuilder b(3, 3);
  for (UserId u = 0; u < 3; ++u) {
    for (MerchantId v = 0; v < 3; ++v) b.AddEdge(u, v);
  }
  auto g = b.Build().ValueOrDie();
  EXPECT_EQ(static_cast<int64_t>(g.edges().size()), g.num_edges());
  EXPECT_EQ(g.num_edges(), 9);
}

TEST(GraphBuilderTest, CsrConsistency) {
  // Every edge id appears exactly once in each orientation.
  GraphBuilder b(4, 4);
  b.AddEdge(0, 1);
  b.AddEdge(2, 3);
  b.AddEdge(1, 1);
  b.AddEdge(3, 0);
  b.AddEdge(2, 0);
  auto g = b.Build().ValueOrDie();
  std::vector<int> seen_user(static_cast<size_t>(g.num_edges()), 0);
  for (int64_t u = 0; u < g.num_users(); ++u) {
    for (EdgeId e : g.user_edges(static_cast<UserId>(u))) {
      EXPECT_EQ(g.edge(e).user, static_cast<UserId>(u));
      ++seen_user[static_cast<size_t>(e)];
    }
  }
  std::vector<int> seen_merchant(static_cast<size_t>(g.num_edges()), 0);
  for (int64_t v = 0; v < g.num_merchants(); ++v) {
    for (EdgeId e : g.merchant_edges(static_cast<MerchantId>(v))) {
      EXPECT_EQ(g.edge(e).merchant, static_cast<MerchantId>(v));
      ++seen_merchant[static_cast<size_t>(e)];
    }
  }
  for (int c : seen_user) EXPECT_EQ(c, 1);
  for (int c : seen_merchant) EXPECT_EQ(c, 1);
}

}  // namespace
}  // namespace ensemfdet
