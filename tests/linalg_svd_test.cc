// Tests for the sparse CSR matrix and truncated SVD.
#include "linalg/svd.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/graph_builder.h"
#include "linalg/sparse_matrix.h"

namespace ensemfdet {
namespace {

CsrMatrix FromDense(const std::vector<std::vector<double>>& rows) {
  std::vector<int64_t> ri, ci;
  std::vector<double> vals;
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t c = 0; c < rows[r].size(); ++c) {
      if (rows[r][c] != 0.0) {
        ri.push_back(static_cast<int64_t>(r));
        ci.push_back(static_cast<int64_t>(c));
        vals.push_back(rows[r][c]);
      }
    }
  }
  return CsrMatrix(static_cast<int64_t>(rows.size()),
                   static_cast<int64_t>(rows[0].size()), ri, ci, vals);
}

TEST(CsrMatrixTest, BasicShapeAndNnz) {
  CsrMatrix m = FromDense({{1, 0, 2}, {0, 3, 0}});
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 3);
}

TEST(CsrMatrixTest, DuplicateTripletsSummed) {
  std::vector<int64_t> ri{0, 0}, ci{1, 1};
  std::vector<double> vals{2.0, 3.0};
  CsrMatrix m(1, 2, ri, ci, vals);
  EXPECT_EQ(m.nnz(), 1);
  std::vector<double> x{0, 1}, y(1);
  m.Multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
}

TEST(CsrMatrixTest, MultiplyKnown) {
  CsrMatrix m = FromDense({{1, 2}, {3, 4}, {5, 6}});
  std::vector<double> x{1, -1}, y(3);
  m.Multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
  EXPECT_DOUBLE_EQ(y[2], -1.0);
}

TEST(CsrMatrixTest, MultiplyTransposeKnown) {
  CsrMatrix m = FromDense({{1, 2}, {3, 4}, {5, 6}});
  std::vector<double> x{1, 1, 1}, y(2);
  m.MultiplyTranspose(x, y);
  EXPECT_DOUBLE_EQ(y[0], 9.0);
  EXPECT_DOUBLE_EQ(y[1], 12.0);
}

TEST(CsrMatrixTest, TransposeConsistentWithMultiply) {
  // <A x, y> == <x, Aᵀ y> for random vectors.
  Rng rng(3);
  std::vector<int64_t> ri, ci;
  std::vector<double> vals;
  for (int i = 0; i < 200; ++i) {
    ri.push_back(static_cast<int64_t>(rng.NextBounded(20)));
    ci.push_back(static_cast<int64_t>(rng.NextBounded(15)));
    vals.push_back(rng.NextGaussian());
  }
  CsrMatrix m(20, 15, ri, ci, vals);
  std::vector<double> x(15), y(20);
  for (double& v : x) v = rng.NextGaussian();
  for (double& v : y) v = rng.NextGaussian();
  std::vector<double> ax(20), aty(15);
  m.Multiply(x, ax);
  m.MultiplyTranspose(y, aty);
  double lhs = 0, rhs = 0;
  for (int i = 0; i < 20; ++i) lhs += ax[static_cast<size_t>(i)] * y[static_cast<size_t>(i)];
  for (int i = 0; i < 15; ++i) rhs += x[static_cast<size_t>(i)] * aty[static_cast<size_t>(i)];
  EXPECT_NEAR(lhs, rhs, 1e-9);
}

TEST(CsrMatrixTest, RowNorms) {
  CsrMatrix m = FromDense({{3, 4}, {0, 0}, {1, 0}});
  auto norms = m.RowNorms();
  ASSERT_EQ(norms.size(), 3u);
  EXPECT_DOUBLE_EQ(norms[0], 5.0);
  EXPECT_DOUBLE_EQ(norms[1], 0.0);
  EXPECT_DOUBLE_EQ(norms[2], 1.0);
}

TEST(CsrMatrixTest, FrobeniusNormSquared) {
  CsrMatrix m = FromDense({{1, 2}, {2, 0}});
  EXPECT_DOUBLE_EQ(m.FrobeniusNormSquared(), 9.0);
}

TEST(CsrMatrixTest, DenseMultiplyMatchesVectorMultiply) {
  CsrMatrix m = FromDense({{1, 0, 2}, {0, 1, 1}});
  DenseMatrix x(3, 2);
  x(0, 0) = 1;
  x(1, 0) = 2;
  x(2, 0) = 3;
  x(0, 1) = -1;
  DenseMatrix b = m.MultiplyDense(x);
  std::vector<double> y(2);
  m.Multiply(x.col(0), y);
  EXPECT_DOUBLE_EQ(b(0, 0), y[0]);
  EXPECT_DOUBLE_EQ(b(1, 0), y[1]);
  EXPECT_DOUBLE_EQ(b(0, 1), -1.0);
}

TEST(AdjacencyMatrixTest, FromGraph) {
  GraphBuilder builder(2, 3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2, 2.0);
  auto g = builder.Build(DuplicatePolicy::kSumWeights).ValueOrDie();
  CsrMatrix m = AdjacencyMatrix(g);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 2);
  std::vector<double> x{0, 0, 1}, y(2);
  m.Multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0);
}

// --- Truncated SVD --------------------------------------------------------

TEST(SvdTest, RejectsBadRank) {
  CsrMatrix m = FromDense({{1}});
  EXPECT_FALSE(ComputeTruncatedSvd(m, 0).ok());
  EXPECT_FALSE(ComputeTruncatedSvd(m, -2).ok());
}

TEST(SvdTest, RejectsEmptyMatrix) {
  CsrMatrix m;
  EXPECT_FALSE(ComputeTruncatedSvd(m, 1).ok());
}

TEST(SvdTest, RankOneMatrixExact) {
  // A = 3 · u vᵀ with u = e1, v = (0.6, 0.8): σ1 = 3, σ2 = 0.
  CsrMatrix m = FromDense({{1.8, 2.4}, {0, 0}});
  auto svd = ComputeTruncatedSvd(m, 2).ValueOrDie();
  ASSERT_EQ(svd.k(), 2);
  EXPECT_NEAR(svd.sigma[0], 3.0, 1e-8);
  EXPECT_NEAR(svd.sigma[1], 0.0, 1e-8);
  EXPECT_NEAR(std::abs(svd.u(0, 0)), 1.0, 1e-8);
  EXPECT_NEAR(std::abs(svd.v(0, 0)), 0.6, 1e-8);
  EXPECT_NEAR(std::abs(svd.v(1, 0)), 0.8, 1e-8);
}

TEST(SvdTest, DiagonalSingularValues) {
  CsrMatrix m = FromDense({{5, 0, 0}, {0, 2, 0}, {0, 0, 7}});
  auto svd = ComputeTruncatedSvd(m, 3).ValueOrDie();
  ASSERT_EQ(svd.k(), 3);
  EXPECT_NEAR(svd.sigma[0], 7.0, 1e-8);
  EXPECT_NEAR(svd.sigma[1], 5.0, 1e-8);
  EXPECT_NEAR(svd.sigma[2], 2.0, 1e-8);
}

TEST(SvdTest, KCappedAtMinDimension) {
  CsrMatrix m = FromDense({{1, 2, 3}});  // 1×3 → max rank 1
  auto svd = ComputeTruncatedSvd(m, 5).ValueOrDie();
  EXPECT_EQ(svd.k(), 1);
  EXPECT_NEAR(svd.sigma[0], std::sqrt(14.0), 1e-8);
}

TEST(SvdTest, SingularVectorsOrthonormal) {
  Rng rng(11);
  std::vector<int64_t> ri, ci;
  std::vector<double> vals;
  for (int i = 0; i < 400; ++i) {
    ri.push_back(static_cast<int64_t>(rng.NextBounded(40)));
    ci.push_back(static_cast<int64_t>(rng.NextBounded(30)));
    vals.push_back(1.0);
  }
  CsrMatrix m(40, 30, ri, ci, vals);
  auto svd = ComputeTruncatedSvd(m, 5).ValueOrDie();
  for (int i = 0; i < svd.k(); ++i) {
    for (int j = i; j < svd.k(); ++j) {
      EXPECT_NEAR(Dot(svd.u.col(i), svd.u.col(j)), i == j ? 1.0 : 0.0, 1e-6);
      EXPECT_NEAR(Dot(svd.v.col(i), svd.v.col(j)), i == j ? 1.0 : 0.0, 1e-6);
    }
  }
}

TEST(SvdTest, SigmaDescending) {
  Rng rng(12);
  std::vector<int64_t> ri, ci;
  std::vector<double> vals;
  for (int i = 0; i < 300; ++i) {
    ri.push_back(static_cast<int64_t>(rng.NextBounded(25)));
    ci.push_back(static_cast<int64_t>(rng.NextBounded(25)));
    vals.push_back(rng.NextDouble());
  }
  CsrMatrix m(25, 25, ri, ci, vals);
  auto svd = ComputeTruncatedSvd(m, 6).ValueOrDie();
  for (int i = 1; i < svd.k(); ++i) {
    EXPECT_GE(svd.sigma[static_cast<size_t>(i - 1)],
              svd.sigma[static_cast<size_t>(i)] - 1e-10);
  }
}

TEST(SvdTest, SingularTripletsSatisfyAvEqualsSigmaU) {
  CsrMatrix m = FromDense({{2, 1, 0}, {1, 3, 1}, {0, 1, 4}, {1, 0, 1}});
  auto svd = ComputeTruncatedSvd(m, 3).ValueOrDie();
  for (int t = 0; t < svd.k(); ++t) {
    std::vector<double> av(4);
    m.Multiply(svd.v.col(t), av);
    for (int64_t i = 0; i < 4; ++i) {
      EXPECT_NEAR(av[static_cast<size_t>(i)],
                  svd.sigma[static_cast<size_t>(t)] * svd.u(i, t), 1e-7);
    }
  }
}

TEST(SvdTest, TopSingularVectorFindsPlantedDenseBlock) {
  // Bipartite block structure: users 0-9 × merchants 0-4 fully connected,
  // plus sparse noise elsewhere. The top left-singular vector's energy must
  // concentrate on the block users.
  GraphBuilder builder(30, 20);
  for (UserId u = 0; u < 10; ++u) {
    for (MerchantId v = 0; v < 5; ++v) builder.AddEdge(u, v);
  }
  Rng rng(13);
  for (int i = 0; i < 15; ++i) {
    builder.AddEdge(static_cast<UserId>(10 + rng.NextBounded(20)),
                    static_cast<MerchantId>(5 + rng.NextBounded(15)));
  }
  auto g = builder.Build().ValueOrDie();
  auto svd = ComputeTruncatedSvd(AdjacencyMatrix(g), 1).ValueOrDie();
  double block_energy = 0.0, rest_energy = 0.0;
  for (int64_t u = 0; u < 30; ++u) {
    const double e = svd.u(u, 0) * svd.u(u, 0);
    (u < 10 ? block_energy : rest_energy) += e;
  }
  EXPECT_GT(block_energy, 0.95);
  EXPECT_LT(rest_energy, 0.05);
}

TEST(SvdTest, DeterministicForFixedSeed) {
  CsrMatrix m = FromDense({{1, 2}, {3, 4}, {5, 6}});
  SvdOptions options;
  options.seed = 99;
  auto a = ComputeTruncatedSvd(m, 2, options).ValueOrDie();
  auto b = ComputeTruncatedSvd(m, 2, options).ValueOrDie();
  for (int t = 0; t < 2; ++t) {
    EXPECT_DOUBLE_EQ(a.sigma[static_cast<size_t>(t)],
                     b.sigma[static_cast<size_t>(t)]);
  }
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(a.u(i, 0), b.u(i, 0));
  }
}

TEST(SvdTest, FrobeniusCapturedByFullRank) {
  // Σσ² == ‖A‖_F² when k = full rank.
  CsrMatrix m = FromDense({{1, 2, 0}, {0, 1, 1}, {2, 0, 1}});
  auto svd = ComputeTruncatedSvd(m, 3).ValueOrDie();
  double sum_sq = 0.0;
  for (double s : svd.sigma) sum_sq += s * s;
  EXPECT_NEAR(sum_sq, m.FrobeniusNormSquared(), 1e-8);
}

}  // namespace
}  // namespace ensemfdet
