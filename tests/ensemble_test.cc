#include "ensemble/ensemfdet.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/graph_builder.h"

namespace ensemfdet {
namespace {

// A dense 12×5 planted block in a 200×80 sparse background.
BipartiteGraph PlantedGraph() {
  GraphBuilder b(200, 80);
  for (UserId u = 0; u < 12; ++u) {
    for (MerchantId v = 0; v < 5; ++v) b.AddEdge(u, v);
  }
  Rng rng(41);
  for (int i = 0; i < 400; ++i) {
    b.AddEdge(static_cast<UserId>(12 + rng.NextBounded(188)),
              static_cast<MerchantId>(5 + rng.NextBounded(75)));
  }
  return b.Build().ValueOrDie();
}

EnsemFDetConfig SmallConfig() {
  EnsemFDetConfig cfg;
  cfg.num_samples = 12;
  cfg.ratio = 0.3;
  cfg.seed = 77;
  cfg.fdet.max_blocks = 8;
  return cfg;
}

TEST(EnsemFDetConfigTest, RepetitionRate) {
  EnsemFDetConfig cfg;
  cfg.num_samples = 80;
  cfg.ratio = 0.1;
  EXPECT_DOUBLE_EQ(cfg.RepetitionRate(), 8.0);
}

TEST(EnsemFDetTest, RejectsBadConfig) {
  auto g = PlantedGraph();
  EnsemFDetConfig cfg = SmallConfig();
  cfg.num_samples = 0;
  EXPECT_FALSE(EnsemFDet(cfg).Run(g).ok());

  cfg = SmallConfig();
  cfg.ratio = 0.0;
  EXPECT_FALSE(EnsemFDet(cfg).Run(g).ok());

  cfg = SmallConfig();
  cfg.fdet.max_blocks = 0;
  EXPECT_FALSE(EnsemFDet(cfg).Run(g).ok());
}

TEST(EnsemFDetTest, ReportShape) {
  auto g = PlantedGraph();
  auto report = EnsemFDet(SmallConfig()).Run(g).ValueOrDie();
  EXPECT_EQ(report.num_samples, 12);
  EXPECT_EQ(report.members.size(), 12u);
  EXPECT_EQ(report.votes.num_users(), g.num_users());
  EXPECT_EQ(report.votes.num_merchants(), g.num_merchants());
  EXPECT_GE(report.total_seconds, 0.0);
  for (const auto& m : report.members) {
    EXPECT_GT(m.sample_edges, 0);
    EXPECT_GE(m.num_blocks, 0);
  }
}

TEST(EnsemFDetTest, VotesBoundedByN) {
  auto g = PlantedGraph();
  auto report = EnsemFDet(SmallConfig()).Run(g).ValueOrDie();
  for (int64_t u = 0; u < g.num_users(); ++u) {
    EXPECT_GE(report.votes.user_votes(static_cast<UserId>(u)), 0);
    EXPECT_LE(report.votes.user_votes(static_cast<UserId>(u)),
              report.num_samples);
  }
}

TEST(EnsemFDetTest, PlantedUsersOutvoteBackground) {
  auto g = PlantedGraph();
  auto report = EnsemFDet(SmallConfig()).Run(g).ValueOrDie();
  double planted = 0.0, background = 0.0;
  for (UserId u = 0; u < 12; ++u) planted += report.votes.user_votes(u);
  for (int64_t u = 12; u < g.num_users(); ++u) {
    background += report.votes.user_votes(static_cast<UserId>(u));
  }
  planted /= 12.0;
  background /= static_cast<double>(g.num_users() - 12);
  EXPECT_GT(planted, 2.0 * background + 1.0)
      << "planted avg " << planted << " background avg " << background;
}

TEST(EnsemFDetTest, HighThresholdRecoversPlantedBlock) {
  auto g = PlantedGraph();
  EnsemFDetConfig cfg = SmallConfig();
  cfg.num_samples = 20;
  auto report = EnsemFDet(cfg).Run(g).ValueOrDie();
  // At a mid threshold most accepted users should be planted.
  const int32_t threshold = 8;
  auto accepted = report.AcceptedUsers(threshold);
  ASSERT_FALSE(accepted.empty());
  int64_t planted_hits = 0;
  for (UserId u : accepted) planted_hits += (u < 12);
  EXPECT_GE(static_cast<double>(planted_hits) /
                static_cast<double>(accepted.size()),
            0.7);
}

TEST(EnsemFDetTest, DeterministicAcrossRuns) {
  auto g = PlantedGraph();
  auto a = EnsemFDet(SmallConfig()).Run(g).ValueOrDie();
  auto b = EnsemFDet(SmallConfig()).Run(g).ValueOrDie();
  for (int64_t u = 0; u < g.num_users(); ++u) {
    EXPECT_EQ(a.votes.user_votes(static_cast<UserId>(u)),
              b.votes.user_votes(static_cast<UserId>(u)));
  }
}

TEST(EnsemFDetTest, ParallelMatchesSequential) {
  auto g = PlantedGraph();
  ThreadPool pool(4);
  auto seq = EnsemFDet(SmallConfig()).Run(g, nullptr).ValueOrDie();
  auto par = EnsemFDet(SmallConfig()).Run(g, &pool).ValueOrDie();
  for (int64_t u = 0; u < g.num_users(); ++u) {
    EXPECT_EQ(seq.votes.user_votes(static_cast<UserId>(u)),
              par.votes.user_votes(static_cast<UserId>(u)));
  }
  for (int64_t v = 0; v < g.num_merchants(); ++v) {
    EXPECT_EQ(seq.votes.merchant_votes(static_cast<MerchantId>(v)),
              par.votes.merchant_votes(static_cast<MerchantId>(v)));
  }
}

TEST(EnsemFDetTest, DifferentSeedsDifferentVotes) {
  auto g = PlantedGraph();
  EnsemFDetConfig cfg_a = SmallConfig();
  EnsemFDetConfig cfg_b = SmallConfig();
  cfg_b.seed = cfg_a.seed + 1;
  auto a = EnsemFDet(cfg_a).Run(g).ValueOrDie();
  auto b = EnsemFDet(cfg_b).Run(g).ValueOrDie();
  bool any_diff = false;
  for (int64_t u = 0; u < g.num_users(); ++u) {
    any_diff |= a.votes.user_votes(static_cast<UserId>(u)) !=
                b.votes.user_votes(static_cast<UserId>(u));
  }
  EXPECT_TRUE(any_diff);
}

TEST(EnsemFDetTest, AllSamplingMethodsRun) {
  auto g = PlantedGraph();
  for (SampleMethod m :
       {SampleMethod::kRandomEdge, SampleMethod::kOneSideUser,
        SampleMethod::kOneSideMerchant, SampleMethod::kTwoSide}) {
    EnsemFDetConfig cfg = SmallConfig();
    cfg.method = m;
    cfg.num_samples = 4;
    auto report = EnsemFDet(cfg).Run(g);
    ASSERT_TRUE(report.ok()) << SampleMethodName(m);
    EXPECT_EQ(report->members.size(), 4u);
  }
}

TEST(EnsemFDetTest, SingleSampleWorks) {
  auto g = PlantedGraph();
  EnsemFDetConfig cfg = SmallConfig();
  cfg.num_samples = 1;
  cfg.ratio = 1.0;
  auto report = EnsemFDet(cfg).Run(g).ValueOrDie();
  EXPECT_EQ(report.votes.max_user_votes(), 1);
}

TEST(EnsemFDetTest, WeightedVotesConsistentWithPlainVotes) {
  auto g = PlantedGraph();
  auto report = EnsemFDet(SmallConfig()).Run(g).ValueOrDie();
  ASSERT_EQ(static_cast<int64_t>(report.weighted_user_votes.size()),
            g.num_users());
  ASSERT_EQ(static_cast<int64_t>(report.weighted_merchant_votes.size()),
            g.num_merchants());
  for (int64_t u = 0; u < g.num_users(); ++u) {
    const UserId id = static_cast<UserId>(u);
    const double weighted = report.weighted_user_votes[static_cast<size_t>(u)];
    if (report.votes.user_votes(id) == 0) {
      EXPECT_DOUBLE_EQ(weighted, 0.0);
    } else {
      EXPECT_GT(weighted, 0.0);
    }
  }
}

TEST(EnsemFDetTest, WeightedVotesDeterministicAndThreadInvariant) {
  auto g = PlantedGraph();
  ThreadPool pool(4);
  auto seq = EnsemFDet(SmallConfig()).Run(g, nullptr).ValueOrDie();
  auto par = EnsemFDet(SmallConfig()).Run(g, &pool).ValueOrDie();
  for (int64_t u = 0; u < g.num_users(); ++u) {
    EXPECT_DOUBLE_EQ(seq.weighted_user_votes[static_cast<size_t>(u)],
                     par.weighted_user_votes[static_cast<size_t>(u)]);
  }
}

TEST(EnsemFDetTest, WeightedVotesFavorPlantedBlock) {
  auto g = PlantedGraph();
  auto report = EnsemFDet(SmallConfig()).Run(g).ValueOrDie();
  double planted = 0.0, background = 0.0;
  for (UserId u = 0; u < 12; ++u) {
    planted += report.weighted_user_votes[u];
  }
  for (int64_t u = 12; u < g.num_users(); ++u) {
    background += report.weighted_user_votes[static_cast<size_t>(u)];
  }
  planted /= 12.0;
  background /= static_cast<double>(g.num_users() - 12);
  EXPECT_GT(planted, 2.0 * background);
}

TEST(EnsemFDetTest, MerchantVotesAlsoAccumulate) {
  auto g = PlantedGraph();
  auto report = EnsemFDet(SmallConfig()).Run(g).ValueOrDie();
  int64_t total_merchant_votes = 0;
  for (int64_t v = 0; v < g.num_merchants(); ++v) {
    total_merchant_votes +=
        report.votes.merchant_votes(static_cast<MerchantId>(v));
  }
  EXPECT_GT(total_merchant_votes, 0);
}

}  // namespace
}  // namespace ensemfdet
