#include "detect/fdet.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/graph_builder.h"

namespace ensemfdet {
namespace {

// Three complete blocks of comparable density plus much sparser noise —
// the plateau-then-cliff φ profile the Δ² truncation point expects.
BipartiteGraph ThreeBlockGraph() {
  GraphBuilder b(100, 60);
  // Block A: users 0-9 × merchants 0-4.
  for (UserId u = 0; u < 10; ++u) {
    for (MerchantId v = 0; v < 5; ++v) b.AddEdge(u, v);
  }
  // Block B: users 10-18 × merchants 5-9.
  for (UserId u = 10; u < 19; ++u) {
    for (MerchantId v = 5; v < 10; ++v) b.AddEdge(u, v);
  }
  // Block C: users 19-26 × merchants 10-13.
  for (UserId u = 19; u < 27; ++u) {
    for (MerchantId v = 10; v < 14; ++v) b.AddEdge(u, v);
  }
  // Sparse background noise.
  Rng rng(31);
  for (int i = 0; i < 60; ++i) {
    b.AddEdge(static_cast<UserId>(27 + rng.NextBounded(73)),
              static_cast<MerchantId>(14 + rng.NextBounded(46)));
  }
  return b.Build().ValueOrDie();
}

TEST(AutoTruncationTest, EmptySeries) {
  EXPECT_EQ(AutoTruncationIndex({}), 0);
}

TEST(AutoTruncationTest, ShortSeriesKeepEverything) {
  // No interior point to evaluate Δ² on: keep every block.
  EXPECT_EQ(AutoTruncationIndex({1.0}), 1);
  EXPECT_EQ(AutoTruncationIndex({1.0, 0.5}), 2);
}

TEST(AutoTruncationTest, SharpDropDetected) {
  // φ: 1.2, 1.15, 1.1, 0.5, 0.45, 0.44 — elbow after block 3.
  std::vector<double> scores{1.2, 1.15, 1.1, 0.5, 0.45, 0.44};
  EXPECT_EQ(AutoTruncationIndex(scores), 3);
}

TEST(AutoTruncationTest, CliffAfterFirstBlockIsBoundaryLimited) {
  // Definition 3 needs both neighbors, so a cliff between blocks 1 and 2
  // cannot register at i = 1; the flat tail's first point wins instead.
  // This mirrors the paper's definition verbatim — in FDET runs the cliff
  // sits between planted structure and explored noise, always interior.
  std::vector<double> scores{2.0, 0.3, 0.29, 0.28};
  EXPECT_EQ(AutoTruncationIndex(scores), 3);
}

TEST(AutoTruncationTest, LinearDecayKeepsFirstInterior) {
  // A linear series has Δ² = 0 at every interior point; ties resolve to
  // the earliest, truncating aggressively when there is no real elbow.
  // (Exact binary fractions so Δ² is exactly zero.)
  std::vector<double> scores{1.0, 0.875, 0.75, 0.625, 0.5};
  EXPECT_EQ(AutoTruncationIndex(scores), 2);
}

TEST(AutoTruncationTest, FlatThenCliffThenFlat) {
  std::vector<double> scores{1.0, 0.99, 0.98, 0.97, 0.40, 0.39, 0.38};
  EXPECT_EQ(AutoTruncationIndex(scores), 4);
}

TEST(FdetConfigTest, RejectsBadConfigs) {
  auto g = ThreeBlockGraph();
  FdetConfig bad;
  bad.max_blocks = 0;
  EXPECT_FALSE(RunFdet(g, bad).ok());

  FdetConfig bad_k;
  bad_k.policy = TruncationPolicy::kFixedK;
  bad_k.fixed_k = 0;
  EXPECT_FALSE(RunFdet(g, bad_k).ok());

  FdetConfig bad_c;
  bad_c.density.log_offset = 1.0;
  EXPECT_FALSE(RunFdet(g, bad_c).ok());
}

TEST(FdetTest, EmptyGraphNoBlocks) {
  GraphBuilder b(5, 5);
  auto g = b.Build().ValueOrDie();
  auto r = RunFdet(g, {}).ValueOrDie();
  EXPECT_TRUE(r.blocks.empty());
  EXPECT_EQ(r.truncation_index, 0);
}

TEST(FdetTest, RecoversAllThreePlantedGroups) {
  auto g = ThreeBlockGraph();
  FdetConfig cfg;
  cfg.max_blocks = 10;
  auto r = RunFdet(g, cfg).ValueOrDie();
  ASSERT_FALSE(r.blocks.empty());

  // Every planted user must survive auto-truncation (greedy may merge
  // equal-density groups into one detected block — FRAUDAR's greedy does
  // the same — but none of the planted structure may be truncated away).
  auto detected = r.DetectedUsers();
  std::set<UserId> detected_set(detected.begin(), detected.end());
  for (UserId u = 0; u < 27; ++u) {
    EXPECT_TRUE(detected_set.count(u)) << "planted user " << u << " lost";
  }

  // Synchronized groups stay together: each planted group lies entirely
  // inside a single detected block.
  auto group_in_one_block = [&](UserId lo, UserId hi) {
    for (const DetectedBlock& blk : r.blocks) {
      std::set<UserId> users(blk.users.begin(), blk.users.end());
      bool all = true;
      for (UserId u = lo; u < hi; ++u) all &= users.count(u) > 0;
      if (all) return true;
    }
    return false;
  };
  EXPECT_TRUE(group_in_one_block(0, 10));
  EXPECT_TRUE(group_in_one_block(10, 19));
  EXPECT_TRUE(group_in_one_block(19, 27));
}

TEST(FdetTest, DetectionOrderByDescendingScore) {
  auto g = ThreeBlockGraph();
  FdetConfig cfg;
  cfg.max_blocks = 10;
  auto r = RunFdet(g, cfg).ValueOrDie();
  // The all_scores series (pre-truncation) should be (weakly) decreasing —
  // each iteration removes the densest remaining block. Small wobbles can
  // occur because column weights are recomputed per residual graph, so
  // assert no large inversions.
  for (size_t i = 1; i < r.all_scores.size(); ++i) {
    EXPECT_LE(r.all_scores[i], r.all_scores[i - 1] * 1.10 + 1e-9)
        << "large score inversion at block " << i;
  }
}

TEST(FdetTest, BlockEdgeSetsDisjointNonemptyAndInsideBlock) {
  auto g = ThreeBlockGraph();
  FdetConfig cfg;
  cfg.max_blocks = 10;
  cfg.policy = TruncationPolicy::kFixedK;
  cfg.fixed_k = 10;
  auto r = RunFdet(g, cfg).ValueOrDie();
  ASSERT_FALSE(r.blocks.empty());
  // Algorithm 1 removes each detected block's residual edges: the per-block
  // edge sets must be nonempty, pairwise disjoint, and lie inside the
  // block's vertex set.
  std::set<EdgeId> claimed;
  for (const DetectedBlock& blk : r.blocks) {
    EXPECT_FALSE(blk.edges.empty());
    std::set<UserId> users(blk.users.begin(), blk.users.end());
    std::set<MerchantId> merchants(blk.merchants.begin(),
                                   blk.merchants.end());
    for (EdgeId e : blk.edges) {
      EXPECT_TRUE(claimed.insert(e).second) << "edge " << e << " in two "
                                            << "blocks";
      EXPECT_TRUE(users.count(g.edge(e).user));
      EXPECT_TRUE(merchants.count(g.edge(e).merchant));
    }
  }
}

TEST(FdetTest, TruncationIndexMatchesBlocksKept) {
  auto g = ThreeBlockGraph();
  auto r = RunFdet(g, {}).ValueOrDie();
  EXPECT_EQ(r.truncation_index, static_cast<int>(r.blocks.size()));
  EXPECT_LE(r.blocks.size(), r.all_scores.size());
}

TEST(FdetTest, AutoElbowTruncatesNoise) {
  // Auto truncation should keep close to the 3 planted blocks, not run to
  // max_blocks on background noise.
  auto g = ThreeBlockGraph();
  FdetConfig cfg;
  cfg.max_blocks = 20;
  auto r = RunFdet(g, cfg).ValueOrDie();
  EXPECT_GE(r.truncation_index, 1);
  EXPECT_LE(r.truncation_index, 8);
}

TEST(FdetTest, FixedKKeepsExactlyK) {
  auto g = ThreeBlockGraph();
  FdetConfig cfg;
  cfg.policy = TruncationPolicy::kFixedK;
  cfg.fixed_k = 2;
  auto r = RunFdet(g, cfg).ValueOrDie();
  EXPECT_EQ(r.blocks.size(), 2u);
  EXPECT_EQ(r.truncation_index, 2);
}

TEST(FdetTest, FixedKLargerThanAvailableKeepsAll) {
  GraphBuilder b(4, 2);
  for (UserId u = 0; u < 4; ++u) b.AddEdge(u, 0);
  auto g = b.Build().ValueOrDie();
  FdetConfig cfg;
  cfg.policy = TruncationPolicy::kFixedK;
  cfg.fixed_k = 30;
  auto r = RunFdet(g, cfg).ValueOrDie();
  EXPECT_LT(r.blocks.size(), 30u);
  EXPECT_EQ(r.truncation_index, static_cast<int>(r.blocks.size()));
}

TEST(FdetTest, DetectedUnionDeduplicated) {
  auto g = ThreeBlockGraph();
  FdetConfig cfg;
  cfg.policy = TruncationPolicy::kFixedK;
  cfg.fixed_k = 6;
  auto r = RunFdet(g, cfg).ValueOrDie();
  auto users = r.DetectedUsers();
  EXPECT_TRUE(std::is_sorted(users.begin(), users.end()));
  EXPECT_TRUE(std::adjacent_find(users.begin(), users.end()) == users.end());
  auto merchants = r.DetectedMerchants();
  EXPECT_TRUE(std::is_sorted(merchants.begin(), merchants.end()));
}

TEST(FdetTest, Deterministic) {
  auto g = ThreeBlockGraph();
  auto a = RunFdet(g, {}).ValueOrDie();
  auto b = RunFdet(g, {}).ValueOrDie();
  ASSERT_EQ(a.blocks.size(), b.blocks.size());
  for (size_t i = 0; i < a.blocks.size(); ++i) {
    EXPECT_EQ(a.blocks[i].users, b.blocks[i].users);
    EXPECT_DOUBLE_EQ(a.blocks[i].score, b.blocks[i].score);
  }
}

TEST(FdetTest, MaxBlocksRespected) {
  auto g = ThreeBlockGraph();
  FdetConfig cfg;
  cfg.max_blocks = 2;
  auto r = RunFdet(g, cfg).ValueOrDie();
  EXPECT_LE(r.all_scores.size(), 2u);
  EXPECT_LE(r.blocks.size(), 2u);
}

TEST(FdetTest, SingleBlockGraphTerminates) {
  GraphBuilder b(5, 3);
  for (UserId u = 0; u < 5; ++u) {
    for (MerchantId v = 0; v < 3; ++v) b.AddEdge(u, v);
  }
  auto g = b.Build().ValueOrDie();
  FdetConfig cfg;
  cfg.max_blocks = 40;
  auto r = RunFdet(g, cfg).ValueOrDie();
  EXPECT_GE(r.blocks.size(), 1u);
  // First block must be the whole planted block.
  EXPECT_EQ(r.blocks[0].users.size(), 5u);
  EXPECT_EQ(r.blocks[0].merchants.size(), 3u);
}

}  // namespace
}  // namespace ensemfdet
