// Tests for causal trace-context propagation (src/obs/trace_context.h):
// span parenting, automatic per-job roots, cross-thread context capture
// through ThreadPool, and — the load-bearing invariant — that one
// detection's span tree has the SAME shape at every pool width, because
// members parent to the job root through the captured context and the
// pool's own wrapper spans are detached.
#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_context.h"

namespace ensemfdet {
namespace obs {
namespace {

class TraceContextTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kMetricsCompiledIn) GTEST_SKIP() << "metrics compiled out";
    SetMetricsRuntimeEnabled(true);
    SetTraceEnabled(true);
    DrainTraceEvents();  // clear residue from other tests in this binary
  }
  void TearDown() override {
    if (!kMetricsCompiledIn) return;
    SetTraceEnabled(false);
    DrainTraceEvents();
    SetMetricsRuntimeEnabled(true);
  }
};

TEST_F(TraceContextTest, NewRootContextIsValidAndUnique) {
  const TraceContext a = NewRootContext();
  const TraceContext b = NewRootContext();
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_FALSE(a == b);
  // A fresh root context carries no parent span: the first span opened
  // under it becomes the tree root rather than parenting to a phantom.
  EXPECT_EQ(a.span_id, 0u);
  EXPECT_FALSE(a.trace_hi == b.trace_hi && a.trace_lo == b.trace_lo);
}

TEST_F(TraceContextTest, ScopedContextInstallsAndRestores) {
  const TraceContext before = CurrentTraceContext();
  const TraceContext root = NewRootContext();
  {
    ScopedTraceContext scope(root);
    EXPECT_TRUE(CurrentTraceContext() == root);
    {
      ScopedTraceContext inner(NewRootContext());
      EXPECT_FALSE(CurrentTraceContext() == root);
    }
    EXPECT_TRUE(CurrentTraceContext() == root);
  }
  EXPECT_TRUE(CurrentTraceContext() == before);
}

TEST_F(TraceContextTest, SpanIdsUniqueAcrossThreadsAndBlocks) {
  // Each thread allocates past the 2^16 thread-local block size, so the
  // test crosses block refills; the union must still be duplicate-free
  // and 0 must never be issued.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 70'000;
  std::vector<std::vector<uint64_t>> ids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ids, t] {
      ids[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) ids[t].push_back(NewSpanId());
    });
  }
  for (auto& th : threads) th.join();
  std::vector<uint64_t> all;
  for (auto& v : ids) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
  EXPECT_NE(all.front(), 0u);
}

TEST_F(TraceContextTest, NestedSpansParentCorrectly) {
  Histogram h;
  {
    ScopedTraceContext root(NewRootContext());
    TraceSpan outer(&h, "outer_stage");
    { TraceSpan inner(&h, "inner_stage"); }
  }
  const auto events = DrainTraceEvents();
  const CollectedTraceEvent* outer = nullptr;
  const CollectedTraceEvent* inner = nullptr;
  for (const auto& e : events) {
    if (e.name == "outer_stage") outer = &e;
    if (e.name == "inner_stage") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->parent_span_id, outer->span_id);
  EXPECT_EQ(inner->trace_hi, outer->trace_hi);
  EXPECT_EQ(inner->trace_lo, outer->trace_lo);
  EXPECT_NE(inner->span_id, outer->span_id);
}

TEST_F(TraceContextTest, SpanAutoRootsWithoutInstalledContext) {
  // A span opened with no current context becomes its own root: every
  // detection is traceable even when the caller never set one up.
  SetCurrentTraceContext(TraceContext{});
  Histogram h;
  { TraceSpan orphanless(&h, "auto_root_span"); }
  const auto events = DrainTraceEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].parent_span_id, 0u);
  EXPECT_TRUE(events[0].trace_hi != 0 || events[0].trace_lo != 0);
  EXPECT_NE(events[0].span_id, 0u);
}

TEST_F(TraceContextTest, DetachedSpanDoesNotBecomeParent) {
  Histogram h;
  {
    ScopedTraceContext root(NewRootContext());
    TraceSpan job(&h, "job_span");
    TraceSpan wrapper(&h, "wrapper_span", TraceSpan::Link::kDetached);
    // The detached wrapper must not have become the current parent.
    { TraceSpan child(&h, "child_span"); }
  }
  const auto events = DrainTraceEvents();
  std::map<std::string, const CollectedTraceEvent*> by_name;
  for (const auto& e : events) by_name[e.name] = &e;
  ASSERT_EQ(by_name.count("job_span"), 1u);
  ASSERT_EQ(by_name.count("wrapper_span"), 1u);
  ASSERT_EQ(by_name.count("child_span"), 1u);
  EXPECT_EQ(by_name["child_span"]->parent_span_id,
            by_name["job_span"]->span_id);
  EXPECT_EQ(by_name["wrapper_span"]->parent_span_id,
            by_name["job_span"]->span_id);
}

// The canonical shape of the span forest in `events`, ignoring pool
// wrapper spans and flows: one line per span, "<root-path> of names",
// sorted. Two runs with the same logical structure produce the same
// string regardless of thread count, timing, or id values.
std::string CanonicalShape(const std::vector<CollectedTraceEvent>& events) {
  std::map<uint64_t, const CollectedTraceEvent*> by_span;
  for (const auto& e : events) {
    if (e.ph == 'X' && e.name != "pool_task") by_span[e.span_id] = &e;
  }
  std::vector<std::string> lines;
  for (const auto& [id, e] : by_span) {
    std::string path = e->name;
    uint64_t parent = e->parent_span_id;
    while (parent != 0) {
      auto it = by_span.find(parent);
      if (it == by_span.end()) {
        path = "(orphan)/" + path;
        break;
      }
      path = it->second->name + "/" + path;
      parent = it->second->parent_span_id;
    }
    lines.push_back(path);
  }
  std::sort(lines.begin(), lines.end());
  std::ostringstream out;
  for (const auto& line : lines) out << line << "\n";
  return out.str();
}

// A detection-shaped workload: a root job span fanning 12 member spans
// out over the pool via ParallelFor, each member opening a nested stage.
std::string RunJobAndCollectShape(int pool_width) {
  ThreadPool pool(pool_width);
  Histogram h;
  {
    ScopedTraceContext root(NewRootContext());
    TraceSpan job(&h, "test_job");
    pool.ParallelFor(0, 12, [&](int64_t) {
      TraceSpan member(&h, "test_member");
      TraceSpan stage(&h, "test_member_stage");
    });
  }
  // A helper that woke after every chunk was claimed may still be
  // emitting its pool_task/flow events; drain only once the pool is idle.
  pool.WaitIdle();
  return CanonicalShape(DrainTraceEvents());
}

TEST_F(TraceContextTest, SpanTreeShapeIdenticalAcrossPoolWidths) {
  // THE propagation contract: members parent to the job root through the
  // context captured at Enqueue, and pool wrapper spans are detached, so
  // the causal tree's shape is bit-identical at widths 1, 2 and 4 — only
  // which thread ran what (and the flow arrows) may differ.
  const std::string shape1 = RunJobAndCollectShape(1);
  const std::string shape2 = RunJobAndCollectShape(2);
  const std::string shape4 = RunJobAndCollectShape(4);
  EXPECT_FALSE(shape1.empty());
  EXPECT_EQ(shape1, shape2);
  EXPECT_EQ(shape1, shape4);
  // And the shape is exactly the fan-out we wrote: 1 root + 12 members,
  // each with one nested stage.
  EXPECT_EQ(std::count(shape1.begin(), shape1.end(), '\n'), 25);
  EXPECT_NE(shape1.find("test_job/test_member/test_member_stage"),
            std::string::npos);
}

TEST_F(TraceContextTest, PoolFlowEventsPairUp) {
  ThreadPool pool(2);
  Histogram h;
  {
    ScopedTraceContext root(NewRootContext());
    TraceSpan job(&h, "flow_job");
    pool.ParallelFor(0, 8, [&](int64_t) {
      TraceSpan member(&h, "flow_member");
    });
  }
  pool.WaitIdle();  // let straggler helpers land their 'f' endpoints
  const auto events = DrainTraceEvents();
  std::map<uint64_t, std::pair<int, int>> flows;  // id -> (s, f)
  for (const auto& e : events) {
    if (e.ph == 's') flows[e.span_id].first++;
    if (e.ph == 'f') flows[e.span_id].second++;
  }
  ASSERT_FALSE(flows.empty()) << "pool enqueues under a traced context "
                                 "must emit flow arrows";
  for (const auto& [id, counts] : flows) {
    EXPECT_EQ(counts.first, 1) << "flow " << id;
    EXPECT_EQ(counts.second, 1) << "flow " << id;
  }
}

TEST_F(TraceContextTest, InternedNameOutlivesDynamicString) {
  // Regression guard for the AppendTraceEvent footgun: the old buffer
  // stored the caller's const char* verbatim, so any non-literal name
  // dangled by flush time. Interning copies, so a name built on the
  // stack and destroyed immediately must still read back intact.
  {
    std::string dynamic = "dynamic_span_";
    dynamic += std::to_string(12345);
    AppendTraceEvent(dynamic, 1000, 2000);
    dynamic.assign(64, 'X');  // scribble over the old buffer
  }
  const auto events = DrainTraceEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "dynamic_span_12345");
}

TEST_F(TraceContextTest, InternRoundTripsIds) {
  const uint32_t a = InternSpanName("intern_round_trip_a");
  const uint32_t b = InternSpanName("intern_round_trip_b");
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(InternSpanName("intern_round_trip_a"), a);
  EXPECT_STREQ(InternedSpanName(a), "intern_round_trip_a");
  EXPECT_STREQ(InternedSpanName(0), "(unknown)");
}

}  // namespace
}  // namespace obs
}  // namespace ensemfdet
