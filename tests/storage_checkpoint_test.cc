// Checkpoint/restore contracts of the snapshot subsystem above the raw
// format: DynamicGraphStore state round-trips exactly, a resumed
// WindowedDetector fires bit-identical reports to an uninterrupted run
// (including through the reorder buffer), GraphVersion snapshots reload
// fingerprint-verified, and GraphRegistry SaveSnapshot/LoadSnapshot keeps
// cache keys representation-independent.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "datagen/presets.h"
#include "datagen/transaction_stream.h"
#include "graph/fingerprint.h"
#include "ingest/dynamic_graph_store.h"
#include "service/detection_service.h"
#include "service/graph_registry.h"
#include "storage/snapshot_format.h"
#include "storage/snapshot_reader.h"
#include "storage/wal_reader.h"
#include "stream/windowed_detector.h"

namespace ensemfdet {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("ensemfdet_ckpt_test_" + name))
      .string();
}

/// A deterministic fragmented stream over small universes.
std::vector<Transaction> MakeStream(int64_t count, uint64_t seed) {
  std::vector<Transaction> events;
  events.reserve(static_cast<size_t>(count));
  uint64_t state = seed * 2654435761u + 1;
  int64_t ts = 0;
  for (int64_t i = 0; i < count; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    ts += static_cast<int64_t>(state >> 61);  // 0..7 time step
    const UserId u = static_cast<UserId>((state >> 33) % 50);
    const MerchantId v = static_cast<MerchantId>((state >> 13) % 30);
    events.push_back({ts, u, v});
  }
  return events;
}

void ExpectReportsEqual(const EnsemFDetReport& a, const EnsemFDetReport& b,
                        const std::string& what) {
  ASSERT_EQ(a.votes.all_user_votes().size(),
            b.votes.all_user_votes().size())
      << what;
  EXPECT_TRUE(std::equal(a.votes.all_user_votes().begin(),
                         a.votes.all_user_votes().end(),
                         b.votes.all_user_votes().begin()))
      << what;
  EXPECT_TRUE(std::equal(a.votes.all_merchant_votes().begin(),
                         a.votes.all_merchant_votes().end(),
                         b.votes.all_merchant_votes().begin()))
      << what;
  EXPECT_EQ(a.weighted_user_votes, b.weighted_user_votes) << what;
}

TEST(StoreCheckpoint, RoundTripsEveryObservableField) {
  DynamicGraphStoreConfig config;
  config.num_users = 50;
  config.num_merchants = 30;
  config.window = 200;
  auto store = DynamicGraphStore::Create(config);
  ASSERT_TRUE(store.ok());
  const std::vector<Transaction> events = MakeStream(600, 3);
  IngestBatch batch;
  for (size_t i = 0; i < events.size(); ++i) {
    batch.transactions.push_back(events[i]);
    if (batch.transactions.size() == 64) {
      ASSERT_TRUE(store->Apply(batch).ok());
      batch.transactions.clear();
      // A mid-stream publish so the delta-log and epoch are non-trivial.
      if (i == 255) store->Publish();
    }
  }
  const std::string path = TempPath("store.efg");
  ASSERT_TRUE(store->SaveCheckpoint(path).ok());

  auto restored = DynamicGraphStore::RestoreCheckpoint(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->live_edges(), store->live_edges());
  EXPECT_EQ(restored->window_events(), store->window_events());
  EXPECT_EQ(restored->newest_timestamp(), store->newest_timestamp());
  EXPECT_EQ(restored->epoch(), store->epoch());
  EXPECT_EQ(restored->pending_delta(), store->pending_delta());
  EXPECT_EQ(restored->stats().events_ingested,
            store->stats().events_ingested);
  EXPECT_EQ(restored->stats().edges_removed, store->stats().edges_removed);

  // Published versions must be content-identical (same fingerprint, same
  // epoch, same dirty frontier), and the stores must stay in lockstep
  // through further ingest + eviction.
  GraphVersion a = store->Publish();
  GraphVersion b = restored->Publish();
  EXPECT_EQ(a.epoch(), b.epoch());
  EXPECT_EQ(a.ContentFingerprint(), b.ContentFingerprint());
  ASSERT_EQ(a.touched_users().size(), b.touched_users().size());
  EXPECT_TRUE(std::equal(a.touched_users().begin(), a.touched_users().end(),
                         b.touched_users().begin()));
  IngestBatch more;
  for (const Transaction& tx : MakeStream(300, 9)) {
    Transaction shifted = tx;
    shifted.timestamp += store->newest_timestamp();
    more.transactions.push_back(shifted);
  }
  ASSERT_TRUE(store->Apply(more).ok());
  ASSERT_TRUE(restored->Apply(more).ok());
  EXPECT_EQ(store->Publish().ContentFingerprint(),
            restored->Publish().ContentFingerprint());
  std::filesystem::remove(path);
}

TEST(StoreCheckpoint, TamperedWindowFailsCleanly) {
  DynamicGraphStoreConfig config;
  config.num_users = 50;
  config.num_merchants = 30;
  config.window = 500;
  auto store = DynamicGraphStore::Create(config);
  ASSERT_TRUE(store.ok());
  IngestBatch batch;
  batch.transactions = MakeStream(200, 5);
  ASSERT_TRUE(store->Apply(batch).ok());
  const std::string path = TempPath("tampered.efg");
  ASSERT_TRUE(store->SaveCheckpoint(path).ok());

  // Drop one window event: the rebuilt multiset no longer matches the
  // base/delta live set, which must surface as IOError, not a CHECK.
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes{std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>()};
  in.close();
  storage::SnapshotHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  for (uint32_t i = 0; i < header.section_count; ++i) {
    storage::SectionEntry entry;
    char* slot = bytes.data() + sizeof(header) + i * sizeof(entry);
    std::memcpy(&entry, slot, sizeof(entry));
    if (entry.id ==
        static_cast<uint32_t>(storage::SectionId::kWindowEvents)) {
      entry.byte_size -= sizeof(storage::SnapshotTransaction);
      std::memcpy(slot, &entry, sizeof(entry));
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();

  auto restored = DynamicGraphStore::RestoreCheckpoint(path);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kIOError);
  std::filesystem::remove(path);
}

TEST(GraphVersionSnapshot, RoundTripsContentAndDelta) {
  DynamicGraphStoreConfig config;
  config.num_users = 50;
  config.num_merchants = 30;
  config.window = 300;
  auto store = DynamicGraphStore::Create(config);
  ASSERT_TRUE(store.ok());
  IngestBatch batch;
  batch.transactions = MakeStream(400, 11);
  ASSERT_TRUE(store->Apply(batch).ok());
  store->Publish();
  IngestBatch more;
  more.transactions = MakeStream(100, 13);
  for (Transaction& tx : more.transactions) tx.timestamp += 2000;
  ASSERT_TRUE(store->Apply(more).ok());
  const GraphVersion version = store->Publish();

  const std::string path = TempPath("version.efg");
  ASSERT_TRUE(version.SaveSnapshot(path).ok());
  auto loaded = LoadGraphVersionSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->epoch(), version.epoch());
  EXPECT_EQ(loaded->num_edges(), version.num_edges());
  EXPECT_EQ(loaded->ContentFingerprint(), version.ContentFingerprint());
  EXPECT_EQ(loaded->delta_adds().size(), version.delta_adds().size());
  EXPECT_EQ(loaded->delta_dead().size(), version.delta_dead().size());
  // Edge iteration order is part of the contract.
  std::vector<Edge> expect, got;
  version.ForEachEdge(
      [&](UserId u, MerchantId v) { expect.push_back({u, v}); });
  loaded->ForEachEdge([&](UserId u, MerchantId v) { got.push_back({u, v}); });
  EXPECT_EQ(expect, got);
  std::filesystem::remove(path);
}

// --------------------------------------------------------------------------
// WindowedDetector resume: the ISSUE-5 "streaming session survives a
// restart" contract, bit-exact because randomness is content-derived.
// --------------------------------------------------------------------------

struct ReplayResult {
  std::vector<EnsemFDetReport> reports;
  EnsemFDetReport final;
};

WindowedDetectorConfig DetectorConfig(int64_t slack) {
  WindowedDetectorConfig config;
  config.num_users = 50;
  config.num_merchants = 30;
  config.window = 400;
  config.detection_interval = 120;
  config.ensemble.num_samples = 6;
  config.ensemble.ratio = 0.3;
  config.ensemble.seed = 17;
  config.max_out_of_order = slack;
  return config;
}

ReplayResult Replay(WindowedDetector& detector,
                    const std::vector<Transaction>& events, size_t begin,
                    size_t end) {
  ReplayResult result;
  for (size_t i = begin; i < end; ++i) {
    auto fired = detector.Ingest(events[i]);
    EXPECT_TRUE(fired.ok()) << fired.status().ToString();
    if (fired.ok() && fired->has_value()) {
      result.reports.push_back(std::move(**fired));
    }
  }
  result.final = detector.DetectNow().ValueOrDie();
  return result;
}

TEST(WindowedDetectorCheckpoint, ResumedRunIsBitExact) {
  for (int64_t slack : {int64_t{0}, int64_t{40}}) {
    std::vector<Transaction> events = MakeStream(900, 21);
    if (slack > 0) {
      // Nudge some events late (within slack) so the reorder buffer is
      // genuinely exercised — including across the checkpoint boundary.
      for (size_t i = 5; i + 3 < events.size(); i += 7) {
        std::swap(events[i], events[i + 3]);
      }
    }
    WindowedDetector uninterrupted(DetectorConfig(slack));
    ReplayResult full = Replay(uninterrupted, events, 0, events.size());

    // Replay the prefix without a DetectNow (it would flush the reorder
    // buffer) and checkpoint mid-stream.
    const size_t cut = events.size() / 2;
    WindowedDetector to_checkpoint(DetectorConfig(slack));
    size_t head_reports = 0;
    for (size_t i = 0; i < cut; ++i) {
      auto fired = to_checkpoint.Ingest(events[i]);
      ASSERT_TRUE(fired.ok());
      if (fired->has_value()) ++head_reports;
    }
    const std::string path = TempPath("detector.efg");
    ASSERT_TRUE(to_checkpoint.SaveCheckpoint(path).ok());
    if (slack > 0) {
      EXPECT_GT(to_checkpoint.reorder_buffered(), 0)
          << "workload failed to exercise the reorder buffer";
    }

    WindowedDetector resumed(DetectorConfig(slack));
    ASSERT_TRUE(resumed.ResumeFromCheckpoint(path).ok());
    EXPECT_EQ(resumed.window_size(), to_checkpoint.window_size());
    EXPECT_EQ(resumed.reorder_buffered(), to_checkpoint.reorder_buffered());
    ReplayResult tail = Replay(resumed, events, cut, events.size());

    ASSERT_EQ(head_reports + tail.reports.size(), full.reports.size())
        << "slack " << slack;
    for (size_t i = 0; i < tail.reports.size(); ++i) {
      ExpectReportsEqual(full.reports[head_reports + i], tail.reports[i],
                         "report " + std::to_string(i));
    }
    ExpectReportsEqual(full.final, tail.final, "final detection");
    std::filesystem::remove(path);
  }
}

TEST(WindowedDetectorCheckpoint, ConfigMismatchRejected) {
  WindowedDetector source(DetectorConfig(0));
  ASSERT_TRUE(source.Ingest({1, 2, 3}).ok());
  const std::string path = TempPath("mismatch.efg");
  ASSERT_TRUE(source.SaveCheckpoint(path).ok());

  WindowedDetectorConfig other = DetectorConfig(0);
  other.window = 999;
  WindowedDetector wrong(other);
  Status st = wrong.ResumeFromCheckpoint(path);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);

  WindowedDetector used(DetectorConfig(0));
  ASSERT_TRUE(used.Ingest({1, 2, 3}).ok());
  st = used.ResumeFromCheckpoint(path);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  std::filesystem::remove(path);
}

// --------------------------------------------------------------------------
// Service integration: registry snapshots and streaming-session
// checkpoints through DetectionService.
// --------------------------------------------------------------------------

TEST(RegistrySnapshot, SaveLoadKeepsFingerprintAndCacheKeys) {
  auto dataset = GenerateJdPreset(JdPreset::kDataset1, 0.004, 7);
  ASSERT_TRUE(dataset.ok());
  GraphRegistry registry;
  DetectionService service(&registry, nullptr);
  auto published = registry.Publish("tsv", dataset->graph);
  ASSERT_TRUE(published.ok());

  const std::string path = TempPath("registry.efg");
  ASSERT_TRUE(registry.SaveSnapshot("tsv", path).ok());
  EXPECT_EQ(registry.SaveSnapshot("absent", path).code(),
            StatusCode::kNotFound);

  auto loaded = registry.LoadSnapshot("binary", path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->fingerprint, published->fingerprint);
  EXPECT_TRUE(loaded->csr->is_view());  // zero-copy off the mapping
  EXPECT_EQ(FingerprintGraph(*loaded->csr), loaded->fingerprint);
  EXPECT_EQ(FingerprintGraph(*loaded->graph), loaded->fingerprint);

  // Representation independence end to end: a job over the mmap-loaded
  // graph must cache-hit against the TSV-published one.
  JobRequest request;
  request.graph_name = "tsv";
  request.ensemble.num_samples = 6;
  request.ensemble.ratio = 0.2;
  auto first = service.Detect(request);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE((*first)->cache_hit);
  request.graph_name = "binary";
  auto second = service.Detect(request);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE((*second)->cache_hit);
  EXPECT_EQ((*second)->report.get(), (*first)->report.get());
  std::filesystem::remove(path);
}

TEST(ServiceStreamCheckpoint, SessionResumesBitExactly) {
  auto dataset = GenerateJdPreset(JdPreset::kDataset1, 0.004, 7);
  ASSERT_TRUE(dataset.ok());
  StreamTimelineConfig timeline;
  timeline.horizon = 4000;
  timeline.burst_duration = 400;
  timeline.seed = 8;
  auto events = BuildTransactionStream(*dataset, timeline);
  ASSERT_TRUE(events.ok());
  auto batches = SliceIntoBatches(*events, 64);
  ASSERT_TRUE(batches.ok());

  StreamSessionConfig session;
  session.detector.num_users = dataset->graph.num_users();
  session.detector.num_merchants = dataset->graph.num_merchants();
  session.detector.window = 1500;
  session.detector.detection_interval = 300;
  session.detector.ensemble.num_samples = 6;
  session.detector.ensemble.ratio = 0.25;
  session.publish_name.clear();
  session.max_queued_batches =
      static_cast<int64_t>(batches->size()) + 8;

  GraphRegistry registry;
  DetectionService service(&registry, nullptr);

  // Uninterrupted session.
  auto full_stream = service.OpenStream(session);
  ASSERT_TRUE(full_stream.ok());
  for (const IngestBatch& batch : *batches) {
    ASSERT_TRUE(service.IngestBatch(*full_stream, batch).ok());
  }
  auto full = service.FinishStream(*full_stream);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(full->error.ok());

  // Checkpointed at the midpoint, resumed in a second session.
  const size_t cut = batches->size() / 2;
  const std::string path = TempPath("session.efg");
  auto head = service.OpenStream(session);
  ASSERT_TRUE(head.ok());
  for (size_t i = 0; i < cut; ++i) {
    ASSERT_TRUE(service.IngestBatch(*head, (*batches)[i]).ok());
  }
  ASSERT_TRUE(service.SaveStreamCheckpoint(*head, path).ok());
  ASSERT_TRUE(service.CloseStream(*head).ok());

  StreamSessionConfig resume_config = session;
  resume_config.resume_checkpoint = path;
  auto tail = service.OpenStream(resume_config);
  ASSERT_TRUE(tail.ok()) << tail.status().ToString();
  for (size_t i = cut; i < batches->size(); ++i) {
    ASSERT_TRUE(service.IngestBatch(*tail, (*batches)[i]).ok());
  }
  auto resumed = service.FinishStream(*tail);
  ASSERT_TRUE(resumed.ok());
  ASSERT_TRUE(resumed->error.ok());

  EXPECT_EQ(resumed->report_fingerprint, full->report_fingerprint);
  ASSERT_NE(resumed->report, nullptr);
  ASSERT_NE(full->report, nullptr);
  ExpectReportsEqual(*full->report, *resumed->report, "final report");

  // A corrupt/missing checkpoint must fail OpenStream synchronously.
  resume_config.resume_checkpoint = TempPath("no_such_checkpoint.efg");
  auto bad = service.OpenStream(resume_config);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kIOError);
  std::filesystem::remove(path);
}

// The checkpoint/WAL lockstep invariant (DESIGN.md §"Durable ingest"):
// SaveStreamCheckpoint writes the checkpoint — WAL position embedded —
// durably to disk BEFORE TruncateThrough removes the covered segments,
// so a crash between the two steps can never strand a record that
// recovery still needs. Exercised through the real sequence:
// checkpoint → append more → (truncation already happened) → recover,
// with a parity check against the uninterrupted run, plus the
// adversarial converse: a log *actually* truncated past its checkpoint
// must fail recovery loudly instead of silently dropping records.
TEST(ServiceStreamCheckpoint, WalTruncationNeverDropsUnreplayedRecords) {
  std::vector<Transaction> events = MakeStream(600, 31);
  std::vector<IngestBatch> batches(20);
  for (size_t i = 0; i < events.size(); ++i) {
    batches[i * batches.size() / events.size()].transactions.push_back(
        events[i]);
  }

  StreamSessionConfig session;
  session.detector = DetectorConfig(0);
  session.wal.segment_bytes = 256;  // many small segments: truncation bites

  // Uninterrupted baseline (no WAL).
  GraphRegistry registry;
  DetectionService service(&registry, nullptr);
  auto full_stream = service.OpenStream(session);
  ASSERT_TRUE(full_stream.ok());
  for (const IngestBatch& batch : batches) {
    ASSERT_TRUE(service.IngestBatch(*full_stream, batch).ok());
  }
  auto full = service.FinishStream(*full_stream);
  ASSERT_TRUE(full.ok());
  ASSERT_NE(full->report, nullptr);

  // Durable session: checkpoint mid-stream (embeds WAL position 12 and
  // truncates the covered segments), then append past it and "crash".
  const std::string wal_dir = TempPath("lockstep_wal");
  std::filesystem::remove_all(wal_dir);
  const std::string ckpt = TempPath("lockstep.efg");
  StreamSessionConfig durable = session;
  durable.wal.dir = wal_dir;
  {
    auto head = service.OpenStream(durable);
    ASSERT_TRUE(head.ok()) << head.status().ToString();
    for (size_t i = 0; i < 12; ++i) {
      ASSERT_TRUE(service.IngestBatch(*head, batches[i]).ok());
    }
    ASSERT_TRUE(service.SaveStreamCheckpoint(*head, ckpt).ok());
    for (size_t i = 12; i < 16; ++i) {
      ASSERT_TRUE(service.IngestBatch(*head, batches[i]).ok());
    }
    ASSERT_TRUE(service.CloseStream(*head).ok());
  }
  // Truncation actually removed covered history: the log no longer
  // starts at seq 1 — yet everything past the checkpoint survives.
  auto scanned = storage::ScanWalDir(wal_dir);
  ASSERT_TRUE(scanned.ok());
  ASSERT_FALSE(scanned->segments.empty());
  EXPECT_GT(scanned->segments.front().first_seq, 1u);
  EXPECT_LE(scanned->segments.front().first_seq, 13u);

  // Recover from checkpoint + WAL suffix, resend the rest: bit-exact.
  StreamSessionConfig resume = durable;
  resume.resume_checkpoint = ckpt;
  resume.wal.recover = true;
  auto tail = service.OpenStream(resume);
  ASSERT_TRUE(tail.ok()) << tail.status().ToString();
  auto opened = service.PollReport(*tail);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->wal_records_recovered, 4u);  // exactly 13..16
  for (uint64_t i = opened->wal_last_seq; i < batches.size(); ++i) {
    ASSERT_TRUE(
        service.IngestBatch(*tail, batches[static_cast<size_t>(i)]).ok());
  }
  auto resumed = service.FinishStream(*tail);
  ASSERT_TRUE(resumed.ok());
  ASSERT_NE(resumed->report, nullptr);
  ExpectReportsEqual(*full->report, *resumed->report, "lockstep parity");

  // Adversarial converse: delete the segments holding the unreplayed
  // suffix (13..16). Recovery must refuse — those records were acked and
  // are gone — rather than resume with a silent hole.
  auto survivors = storage::ScanWalDir(wal_dir);
  ASSERT_TRUE(survivors.ok());
  for (const auto& segment : survivors->segments) {
    std::filesystem::remove(segment.path);
  }
  auto hole = service.OpenStream(resume);
  ASSERT_FALSE(hole.ok());

  std::filesystem::remove_all(wal_dir);
  std::filesystem::remove(ckpt);
}

}  // namespace
}  // namespace ensemfdet
