// CsrGraph layout invariants and the adjacency↔CSR conversion contract
// (DESIGN.md §"Graph memory layout"): exact round-trips, slot == EdgeId,
// O(1) endpoint lookups, degenerate shapes, and fingerprint equivalence
// between the two representations.
#include "graph/csr_graph.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/graph_builder.h"
#include "service/graph_registry.h"

namespace ensemfdet {
namespace {

BipartiteGraph RandomGraph(int64_t users, int64_t merchants, int64_t edges,
                           uint64_t seed, bool weighted) {
  GraphBuilder b(users, merchants);
  Rng rng(seed);
  for (int64_t i = 0; i < edges; ++i) {
    const UserId u = static_cast<UserId>(rng.NextBounded(
        static_cast<uint64_t>(users)));
    const MerchantId v = static_cast<MerchantId>(rng.NextBounded(
        static_cast<uint64_t>(merchants)));
    b.AddEdge(u, v, weighted ? 1.0 + rng.NextDouble() : 1.0);
  }
  return b.Build(DuplicatePolicy::kKeepFirst).ValueOrDie();
}

void ExpectGraphsEqual(const BipartiteGraph& a, const BipartiteGraph& b) {
  ASSERT_EQ(a.num_users(), b.num_users());
  ASSERT_EQ(a.num_merchants(), b.num_merchants());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.has_weights(), b.has_weights());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e), b.edge(e)) << "edge " << e;
    EXPECT_EQ(a.edge_weight(e), b.edge_weight(e)) << "weight " << e;
  }
}

TEST(CsrGraphTest, EmptyGraph) {
  CsrGraph csr = CsrGraph::FromBipartite(BipartiteGraph());
  EXPECT_EQ(csr.num_users(), 0);
  EXPECT_EQ(csr.num_merchants(), 0);
  EXPECT_EQ(csr.num_edges(), 0);
  EXPECT_TRUE(csr.empty());
  BipartiteGraph back = csr.ToBipartite();
  EXPECT_EQ(back.num_edges(), 0);
}

TEST(CsrGraphTest, EdgelessNodesRoundTrip) {
  GraphBuilder b(7, 3);
  BipartiteGraph g = b.Build().ValueOrDie();
  CsrGraph csr = CsrGraph::FromBipartite(g);
  EXPECT_EQ(csr.num_users(), 7);
  EXPECT_EQ(csr.num_merchants(), 3);
  EXPECT_EQ(csr.num_edges(), 0);
  for (UserId u = 0; u < 7; ++u) {
    EXPECT_EQ(csr.user_degree(u), 0);
    EXPECT_TRUE(csr.user_neighbors(u).empty());
  }
  ExpectGraphsEqual(g, csr.ToBipartite());
}

TEST(CsrGraphTest, SingleEdge) {
  GraphBuilder b(2, 2);
  b.AddEdge(1, 0);
  BipartiteGraph g = b.Build().ValueOrDie();
  CsrGraph csr = CsrGraph::FromBipartite(g);
  EXPECT_EQ(csr.num_edges(), 1);
  EXPECT_EQ(csr.edge_user(0), 1u);
  EXPECT_EQ(csr.edge_merchant(0), 0u);
  EXPECT_EQ(csr.user_degree(0), 0);
  EXPECT_EQ(csr.user_degree(1), 1);
  EXPECT_EQ(csr.merchant_degree(0), 1);
  EXPECT_EQ(csr.merchant_degree(1), 0);
  EXPECT_EQ(csr.edge_weight(0), 1.0);
  EXPECT_FALSE(csr.has_weights());
}

TEST(CsrGraphTest, UserSlotIsEdgeId) {
  BipartiteGraph g = RandomGraph(40, 25, 300, 11, /*weighted=*/false);
  CsrGraph csr = CsrGraph::FromBipartite(g);
  // Walking user rows in order enumerates EdgeIds 0,1,2,... and the
  // neighbor at each slot is that edge's merchant endpoint.
  EdgeId next = 0;
  for (UserId u = 0; u < g.num_users(); ++u) {
    EXPECT_EQ(csr.user_edge_begin(u), next);
    for (MerchantId m : csr.user_neighbors(u)) {
      EXPECT_EQ(m, g.edge(next).merchant);
      EXPECT_EQ(csr.edge_user(next), g.edge(next).user);
      EXPECT_EQ(csr.edge_user(next), u);
      ++next;
    }
  }
  EXPECT_EQ(next, g.num_edges());
}

TEST(CsrGraphTest, MerchantRowsMatchAdjacency) {
  BipartiteGraph g = RandomGraph(30, 20, 200, 5, /*weighted=*/true);
  CsrGraph csr = CsrGraph::FromBipartite(g);
  for (MerchantId v = 0; v < g.num_merchants(); ++v) {
    auto edge_ids = csr.merchant_edge_ids(v);
    auto neighbors = csr.merchant_neighbors(v);
    auto expected = g.merchant_edges(v);
    ASSERT_EQ(edge_ids.size(), expected.size());
    ASSERT_EQ(static_cast<int64_t>(neighbors.size()),
              g.merchant_degree(v));
    for (size_t k = 0; k < edge_ids.size(); ++k) {
      EXPECT_EQ(edge_ids[k], expected[k]);
      EXPECT_EQ(neighbors[k], g.edge(expected[k]).user);
    }
  }
}

TEST(CsrGraphTest, RoundTripUnweighted) {
  BipartiteGraph g = RandomGraph(60, 35, 500, 3, /*weighted=*/false);
  ExpectGraphsEqual(g, CsrGraph::FromBipartite(g).ToBipartite());
}

TEST(CsrGraphTest, RoundTripWeighted) {
  BipartiteGraph g = RandomGraph(60, 35, 500, 4, /*weighted=*/true);
  CsrGraph csr = CsrGraph::FromBipartite(g);
  EXPECT_TRUE(csr.has_weights());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(csr.edge_weight(e), g.edge_weight(e));
  }
  ExpectGraphsEqual(g, csr.ToBipartite());
}

TEST(CsrGraphTest, FingerprintMatchesBipartiteForm) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    for (bool weighted : {false, true}) {
      BipartiteGraph g = RandomGraph(50, 30, 400, seed, weighted);
      EXPECT_EQ(FingerprintGraph(CsrGraph::FromBipartite(g)),
                FingerprintGraph(g))
          << "seed=" << seed << " weighted=" << weighted;
    }
  }
  // Degenerate shapes too: empty, edgeless.
  BipartiteGraph empty;
  EXPECT_EQ(FingerprintGraph(CsrGraph::FromBipartite(empty)),
            FingerprintGraph(empty));
  GraphBuilder b(4, 6);
  BipartiteGraph edgeless = b.Build().ValueOrDie();
  EXPECT_EQ(FingerprintGraph(CsrGraph::FromBipartite(edgeless)),
            FingerprintGraph(edgeless));
}

}  // namespace
}  // namespace ensemfdet
