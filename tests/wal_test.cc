// Durable-ingest WAL contracts at the storage layer: CRC framing
// round-trips, segment rotation and seq chaining, fsync-policy cadence
// (counted through the fault-injection seam), the torn-tail rule —
// truncation at EVERY byte offset of the final record recovers cleanly
// while the same damage to acked history is IOError — and the
// SnapshotWriter's rename-then-parent-dir-fsync durability pin.
#include "storage/wal_writer.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ingest/dynamic_graph_store.h"
#include "storage/fault_file.h"
#include "storage/wal_format.h"
#include "storage/wal_reader.h"

namespace ensemfdet {
namespace {

namespace fs = std::filesystem;
using storage::FaultInjectingFileOps;
using storage::ReplayWal;
using storage::ScanWalDir;
using storage::ScopedFileOpsOverride;
using storage::WalFsyncPolicy;
using storage::WalRecordView;
using storage::WalWriter;
using storage::WalWriterOptions;

std::string TempDir(const std::string& name) {
  const std::string dir =
      (fs::temp_directory_path() / ("ensemfdet_wal_test_" + name)).string();
  std::error_code ec;
  fs::remove_all(dir, ec);
  return dir;
}

/// Deterministic payload for record i (varied sizes, including empty and
/// sizes straddling the 8-byte alignment).
std::vector<std::byte> Payload(uint64_t i) {
  const size_t n = static_cast<size_t>((i * 7) % 23);
  std::vector<std::byte> bytes(n);
  for (size_t j = 0; j < n; ++j) {
    bytes[j] = static_cast<std::byte>((i * 31 + j * 131) & 0xFF);
  }
  return bytes;
}

/// Appends records 1..count and closes; returns the writer's dir state.
Status WriteLog(const std::string& dir, uint64_t count,
                WalWriterOptions options = {}) {
  ENSEMFDET_ASSIGN_OR_RETURN(WalWriter writer,
                             WalWriter::Open(dir, options));
  for (uint64_t i = 1; i <= count; ++i) {
    const std::vector<std::byte> payload = Payload(i);
    ENSEMFDET_ASSIGN_OR_RETURN(
        uint64_t seq, writer.Append(payload.data(), payload.size(),
                                    static_cast<int64_t>(i * 10)));
    if (seq != i) return Status::Internal("unexpected seq");
  }
  return writer.Close();
}

/// Replays and checks that exactly records [after+1, after+want_count]
/// arrive, each with the Payload(i) bytes and timestamp i*10.
void ExpectReplay(const std::string& dir, uint64_t after,
                  uint64_t want_count, bool want_torn) {
  uint64_t next = after + 1;
  auto check = [&](const WalRecordView& record) -> Status {
    EXPECT_EQ(record.seq, next);
    EXPECT_EQ(record.timestamp, static_cast<int64_t>(record.seq * 10));
    const std::vector<std::byte> want = Payload(record.seq);
    EXPECT_EQ(record.payload.size(), want.size());
    EXPECT_TRUE(std::equal(record.payload.begin(), record.payload.end(),
                           want.begin()));
    ++next;
    return Status::OK();
  };
  auto stats = ReplayWal(dir, after, check);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->records_replayed, want_count);
  EXPECT_EQ(stats->tail_truncated, want_torn);
  EXPECT_EQ(next, after + want_count + 1);
}

TEST(WalFormat, FsyncPolicyNamesRoundTrip) {
  for (WalFsyncPolicy policy :
       {WalFsyncPolicy::kNone, WalFsyncPolicy::kBatch,
        WalFsyncPolicy::kAlways}) {
    auto parsed =
        storage::ParseWalFsyncPolicy(storage::WalFsyncPolicyName(policy));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_EQ(storage::ParseWalFsyncPolicy("sometimes").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(WalFormat, SegmentFileNameRoundTrip) {
  for (uint64_t seq : {1ull, 255ull, 1ull << 40, ~0ull}) {
    const std::string name = storage::WalSegmentFileName(seq);
    uint64_t parsed = 0;
    ASSERT_TRUE(storage::ParseWalSegmentFileName(name, &parsed)) << name;
    EXPECT_EQ(parsed, seq);
  }
  uint64_t ignored = 0;
  EXPECT_FALSE(storage::ParseWalSegmentFileName("wal-1.efw", &ignored));
  EXPECT_FALSE(storage::ParseWalSegmentFileName("checkpoint.efg", &ignored));
  EXPECT_FALSE(storage::ParseWalSegmentFileName(
      "wal-000000000000000Z.efw", &ignored));
}

TEST(WalWriter, AppendReplayRoundTrip) {
  const std::string dir = TempDir("roundtrip");
  ASSERT_TRUE(WriteLog(dir, 40).ok());
  ExpectReplay(dir, 0, 40, false);
  ExpectReplay(dir, 17, 23, false);   // after_seq skips the prefix
  ExpectReplay(dir, 40, 0, false);    // fully caught up
  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(WalWriter, EmptyOrMissingDirReplaysNothing) {
  const std::string dir = TempDir("fresh");
  auto stats = ReplayWal(dir, 0, [](const WalRecordView&) {
    ADD_FAILURE() << "no record should replay from a missing dir";
    return Status::OK();
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->records_replayed, 0u);
  EXPECT_EQ(stats->last_seq, 0u);
}

TEST(WalWriter, RotationChainsSegments) {
  const std::string dir = TempDir("rotation");
  WalWriterOptions options;
  options.segment_bytes = 256;  // a handful of records per segment
  {
    auto writer = WalWriter::Open(dir, options);
    ASSERT_TRUE(writer.ok());
    for (uint64_t i = 1; i <= 60; ++i) {
      const std::vector<std::byte> payload = Payload(i);
      ASSERT_TRUE(writer
                      ->Append(payload.data(), payload.size(),
                               static_cast<int64_t>(i * 10))
                      .ok());
    }
    EXPECT_GT(writer->segment_count(), 3);
    ASSERT_TRUE(writer->Close().ok());
  }
  ExpectReplay(dir, 0, 60, false);
  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(WalWriter, ReopenContinuesTheSeqChain) {
  const std::string dir = TempDir("reopen");
  ASSERT_TRUE(WriteLog(dir, 12).ok());
  {
    auto writer = WalWriter::Open(dir, {});
    ASSERT_TRUE(writer.ok());
    EXPECT_EQ(writer->last_seq(), 12u);
    EXPECT_FALSE(writer->recovered_torn_tail());
    const std::vector<std::byte> payload = Payload(13);
    auto seq = writer->Append(payload.data(), payload.size(), 130);
    ASSERT_TRUE(seq.ok());
    EXPECT_EQ(*seq, 13u);
    ASSERT_TRUE(writer->Close().ok());
  }
  ExpectReplay(dir, 0, 13, false);
  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(WalWriter, TruncateThroughKeepsUncoveredAndActiveSegments) {
  const std::string dir = TempDir("truncate_through");
  WalWriterOptions options;
  options.segment_bytes = 256;
  auto writer = WalWriter::Open(dir, options);
  ASSERT_TRUE(writer.ok());
  for (uint64_t i = 1; i <= 60; ++i) {
    const std::vector<std::byte> payload = Payload(i);
    ASSERT_TRUE(writer
                    ->Append(payload.data(), payload.size(),
                             static_cast<int64_t>(i * 10))
                    .ok());
  }
  const int64_t before = writer->segment_count();
  ASSERT_GT(before, 3);

  // Nothing covered: nothing removed.
  ASSERT_TRUE(writer->TruncateThrough(0).ok());
  EXPECT_EQ(writer->segment_count(), before);

  // Covering seq 30 removes only segments wholly <= 30; records > 30
  // must still replay (a checkpoint at 30 was taken).
  ASSERT_TRUE(writer->TruncateThrough(30).ok());
  EXPECT_LT(writer->segment_count(), before);
  EXPECT_GT(writer->segment_count(), 0);
  ExpectReplay(dir, 30, 30, false);

  // Covering everything keeps the active segment (the chain anchor).
  ASSERT_TRUE(writer->TruncateThrough(60).ok());
  EXPECT_GE(writer->segment_count(), 1);
  ExpectReplay(dir, 60, 0, false);
  ASSERT_TRUE(writer->Close().ok());
  std::error_code ec;
  fs::remove_all(dir, ec);
}

// The tentpole crash contract: for EVERY byte offset inside the final
// record's frame, a log cut at that offset (what a torn write leaves)
// replays cleanly without the final record, and a reopened writer
// repairs the tail so appending continues at the same seq.
TEST(WalWriter, TruncationAtEveryByteOfTheFinalRecordRecovers) {
  const std::string pristine = TempDir("tail_pristine");
  const uint64_t kRecords = 9;
  ASSERT_TRUE(WriteLog(pristine, kRecords - 1).ok());
  auto before = ScanWalDir(pristine);
  ASSERT_TRUE(before.ok());
  const uint64_t tail_start = before->last_segment_valid_bytes;
  {  // append record 9 on top of the existing chain
    auto writer = WalWriter::Open(pristine, {});
    ASSERT_TRUE(writer.ok());
    const std::vector<std::byte> payload = Payload(kRecords);
    auto seq = writer->Append(payload.data(), payload.size(),
                              static_cast<int64_t>(kRecords * 10));
    ASSERT_TRUE(seq.ok());
    ASSERT_EQ(*seq, kRecords);
    ASSERT_TRUE(writer->Close().ok());
  }
  auto after = ScanWalDir(pristine);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->segments.size(), 1u);
  const uint64_t tail_end = after->last_segment_valid_bytes;
  const std::string segment = after->segments.back().path;
  ASSERT_GT(tail_end, tail_start);
  // Where the final record's payload (before alignment padding) ends.
  const uint64_t data_end = tail_start + sizeof(storage::WalRecordHeader) +
                            Payload(kRecords).size();

  const std::string dir = TempDir("tail_cut");
  for (uint64_t cut = tail_start; cut < tail_end; ++cut) {
    std::error_code ec;
    fs::remove_all(dir, ec);
    fs::create_directories(dir, ec);
    fs::copy(pristine, dir, fs::copy_options::recursive, ec);
    ASSERT_FALSE(ec);
    const std::string cut_segment =
        dir + "/" + fs::path(segment).filename().string();
    fs::resize_file(cut_segment, cut, ec);
    ASSERT_FALSE(ec);

    // A cut inside the padding leaves the record itself intact; anywhere
    // earlier tears it. Both replay cleanly.
    const bool record_survives = cut >= data_end;
    const uint64_t survivors = record_survives ? kRecords : kRecords - 1;
    ExpectReplay(dir, 0, survivors, cut > tail_start && !record_survives);

    // The reopened writer repairs the tail and continues the chain where
    // the surviving records end; everything then replays cleanly.
    auto writer = WalWriter::Open(dir, {});
    ASSERT_TRUE(writer.ok()) << "cut at " << cut << ": "
                             << writer.status().ToString();
    ASSERT_EQ(writer->last_seq(), survivors);
    for (uint64_t i = survivors + 1; i <= kRecords + 1; ++i) {
      const std::vector<std::byte> payload = Payload(i);
      auto seq = writer->Append(payload.data(), payload.size(),
                                static_cast<int64_t>(i * 10));
      ASSERT_TRUE(seq.ok()) << "cut at " << cut;
      ASSERT_EQ(*seq, i);
    }
    ASSERT_TRUE(writer->Close().ok());
    ExpectReplay(dir, 0, kRecords + 1, false);
  }
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::remove_all(pristine, ec);
}

TEST(WalWriter, BitRotInTheTailRecordIsATornTail) {
  const std::string dir = TempDir("rot_tail");
  ASSERT_TRUE(WriteLog(dir, 8).ok());
  auto state = ScanWalDir(dir);
  ASSERT_TRUE(state.ok());
  // Flip one bit near the end of the final record (inside its payload
  // CRC coverage for any payload longer than the clipped bytes).
  const std::string segment = state->segments.back().path;
  std::fstream f(segment,
                 std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open());
  f.seekp(static_cast<std::streamoff>(state->last_segment_valid_bytes - 3));
  char byte = 0;
  f.seekg(static_cast<std::streamoff>(state->last_segment_valid_bytes - 3));
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x01);
  f.seekp(static_cast<std::streamoff>(state->last_segment_valid_bytes - 3));
  f.write(&byte, 1);
  f.close();

  // The damaged final record is at the tail of the last segment: clean
  // truncation, 7 survivors. (If the flipped byte landed in alignment
  // padding the record still validates; accept either outcome, but the
  // replay must be clean.)
  auto stats = ReplayWal(dir, 0, [](const WalRecordView&) {
    return Status::OK();
  });
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->records_replayed, 7u);
  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(WalWriter, DamageToAckedHistoryIsIOError) {
  const std::string dir = TempDir("history");
  WalWriterOptions options;
  options.segment_bytes = 256;
  ASSERT_TRUE(WriteLog(dir, 60, options).ok());
  auto state = ScanWalDir(dir);
  ASSERT_TRUE(state.ok());
  ASSERT_GT(state->segments.size(), 2u);

  // Corrupt a record in the FIRST segment (acked history, not the tail).
  const std::string first = state->segments.front().path;
  {
    std::fstream f(first,
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekg(0, std::ios::end);
    const std::streamoff size = f.tellg();
    const std::streamoff target = 64 + 8;  // inside record 1's header
    ASSERT_LT(target, size);
    f.seekg(target);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(target);
    f.write(&byte, 1);
  }
  auto stats =
      ReplayWal(dir, 0, [](const WalRecordView&) { return Status::OK(); });
  EXPECT_EQ(stats.status().code(), StatusCode::kIOError);
  // The writer refuses to open over damaged acked history too.
  EXPECT_EQ(WalWriter::Open(dir, options).status().code(),
            StatusCode::kIOError);
  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(WalWriter, AMissingMiddleSegmentIsIOError) {
  const std::string dir = TempDir("gap");
  WalWriterOptions options;
  options.segment_bytes = 256;
  ASSERT_TRUE(WriteLog(dir, 60, options).ok());
  auto state = ScanWalDir(dir);
  ASSERT_TRUE(state.ok());
  ASSERT_GT(state->segments.size(), 2u);
  std::error_code ec;
  fs::remove(state->segments[1].path, ec);
  ASSERT_FALSE(ec);
  auto stats =
      ReplayWal(dir, 0, [](const WalRecordView&) { return Status::OK(); });
  EXPECT_EQ(stats.status().code(), StatusCode::kIOError);
  EXPECT_EQ(WalWriter::Open(dir, options).status().code(),
            StatusCode::kIOError);
  fs::remove_all(dir, ec);
}

TEST(WalWriter, ReplayCannotResumePastATruncatedLog) {
  const std::string dir = TempDir("past_checkpoint");
  WalWriterOptions options;
  options.segment_bytes = 256;
  auto writer = WalWriter::Open(dir, options);
  ASSERT_TRUE(writer.ok());
  for (uint64_t i = 1; i <= 60; ++i) {
    const std::vector<std::byte> payload = Payload(i);
    ASSERT_TRUE(writer
                    ->Append(payload.data(), payload.size(),
                             static_cast<int64_t>(i * 10))
                    .ok());
  }
  ASSERT_TRUE(writer->TruncateThrough(30).ok());
  ASSERT_TRUE(writer->Close().ok());
  // A checkpoint at seq 10 needs records 11.. — but those are gone.
  auto stats =
      ReplayWal(dir, 10, [](const WalRecordView&) { return Status::OK(); });
  EXPECT_EQ(stats.status().code(), StatusCode::kIOError);
  std::error_code ec;
  fs::remove_all(dir, ec);
}

// Fsync cadence, counted through the fault-injection seam: kAlways syncs
// per record, kBatch once per group_commit_records (plus segment
// creation and close), kNone never.
TEST(WalWriter, FsyncPolicyCadence) {
  struct Case {
    WalFsyncPolicy policy;
    int64_t min_syncs;
    int64_t max_syncs;
  };
  const uint64_t kRecords = 12;
  const Case cases[] = {
      // creation + 12 appends + close-with-nothing-unsynced
      {WalFsyncPolicy::kAlways, 1 + 12, 1 + 12 + 1},
      // creation + 12/4 group commits (+ possibly a final close sync)
      {WalFsyncPolicy::kBatch, 1 + 3, 1 + 3 + 1},
      {WalFsyncPolicy::kNone, 0, 0},
  };
  for (const Case& c : cases) {
    const std::string dir =
        TempDir(std::string("cadence_") + storage::WalFsyncPolicyName(c.policy));
    FaultInjectingFileOps faulty;  // counting only, never fails
    ScopedFileOpsOverride scope(&faulty);
    WalWriterOptions options;
    options.fsync = c.policy;
    options.group_commit_records = 4;
    auto writer = WalWriter::Open(dir, options);
    ASSERT_TRUE(writer.ok());
    for (uint64_t i = 1; i <= kRecords; ++i) {
      const std::vector<std::byte> payload = Payload(i);
      ASSERT_TRUE(writer
                      ->Append(payload.data(), payload.size(),
                               static_cast<int64_t>(i * 10))
                      .ok());
    }
    ASSERT_TRUE(writer->Close().ok());
    EXPECT_GE(faulty.sync_count(), c.min_syncs)
        << storage::WalFsyncPolicyName(c.policy);
    EXPECT_LE(faulty.sync_count(), c.max_syncs)
        << storage::WalFsyncPolicyName(c.policy);
    if (c.policy != WalFsyncPolicy::kNone) {
      // Segment creation commits the directory entry.
      EXPECT_GE(faulty.dir_sync_count(), 1);
    }
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
}

// Crash-at-every-fault-point over the raw writer: ops 1..k succeed, op
// k+1 onward fail (with a torn final append). Whatever survives must
// replay cleanly and a reopened writer must continue the chain.
TEST(WalWriter, EveryFaultPointLeavesARecoverableLog) {
  const uint64_t kRecords = 10;
  WalWriterOptions options;
  options.fsync = WalFsyncPolicy::kAlways;
  options.segment_bytes = 256;

  // Count the ops of a clean run first.
  int64_t total_ops = 0;
  {
    const std::string dir = TempDir("faultpoints_count");
    FaultInjectingFileOps faulty;
    ScopedFileOpsOverride scope(&faulty);
    ASSERT_TRUE(WriteLog(dir, kRecords, options).ok());
    total_ops = faulty.op_count();
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
  ASSERT_GT(total_ops, static_cast<int64_t>(2 * kRecords));

  const std::string dir = TempDir("faultpoints");
  for (int64_t k = 0; k < total_ops; ++k) {
    std::error_code ec;
    fs::remove_all(dir, ec);
    uint64_t acked = 0;
    {
      FaultInjectingFileOps faulty;
      faulty.FailAfter(k);
      faulty.set_short_write_bytes(static_cast<size_t>(k % 13));
      ScopedFileOpsOverride scope(&faulty);
      auto writer = WalWriter::Open(dir, options);
      if (writer.ok()) {
        for (uint64_t i = 1; i <= kRecords; ++i) {
          const std::vector<std::byte> payload = Payload(i);
          auto seq = writer->Append(payload.data(), payload.size(),
                                    static_cast<int64_t>(i * 10));
          if (!seq.ok()) break;
          acked = *seq;
        }
        (void)writer->Close();
      }
      ASSERT_TRUE(faulty.crashed()) << "fault point " << k
                                    << " was never reached";
    }
    // Recovery with healthy ops: every acked record must still be there
    // (a process kill loses no page-cache data), replay must be clean,
    // and the chain must continue exactly after the survivors.
    uint64_t highest = 0;
    auto stats = ReplayWal(dir, 0, [&](const WalRecordView& record) {
      highest = record.seq;
      const std::vector<std::byte> want = Payload(record.seq);
      EXPECT_EQ(record.payload.size(), want.size());
      EXPECT_TRUE(std::equal(record.payload.begin(), record.payload.end(),
                             want.begin()));
      return Status::OK();
    });
    ASSERT_TRUE(stats.ok()) << "fault point " << k << ": "
                            << stats.status().ToString();
    EXPECT_GE(highest, acked) << "fault point " << k
                              << " lost an acked record";
    auto writer = WalWriter::Open(dir, options);
    ASSERT_TRUE(writer.ok()) << "fault point " << k << ": "
                             << writer.status().ToString();
    EXPECT_EQ(writer->last_seq(), highest);
    const std::vector<std::byte> payload = Payload(highest + 1);
    auto seq = writer->Append(payload.data(), payload.size(),
                              static_cast<int64_t>((highest + 1) * 10));
    ASSERT_TRUE(seq.ok());
    EXPECT_EQ(*seq, highest + 1);
    ASSERT_TRUE(writer->Close().ok());
  }
  std::error_code ec;
  fs::remove_all(dir, ec);
}

// Satellite: SnapshotWriter's atomic-rename durability. The parent
// directory must be fsynced AFTER the rename — without it a power loss
// can forget the directory entry even though the bytes landed. Pinned by
// failing exactly the final op of a counted clean run and checking it
// was the directory sync, downstream of the rename.
TEST(SnapshotWriterDurability, ParentDirIsSyncedAfterRename) {
  DynamicGraphStoreConfig config;
  config.num_users = 20;
  config.num_merchants = 10;
  config.window = 100;
  auto store = DynamicGraphStore::Create(config);
  ASSERT_TRUE(store.ok());
  IngestBatch batch;
  for (int64_t i = 0; i < 30; ++i) {
    batch.transactions.push_back(
        {i, static_cast<UserId>(i % 20), static_cast<MerchantId>(i % 10)});
  }
  ASSERT_TRUE(store->Apply(batch).ok());

  const std::string dir = TempDir("snapdir");
  std::error_code ec;
  fs::create_directories(dir, ec);
  const std::string path = dir + "/checkpoint.efg";

  // Clean counted run: the write must issue a rename and then sync the
  // parent directory.
  int64_t total_ops = 0;
  {
    FaultInjectingFileOps faulty;
    ScopedFileOpsOverride scope(&faulty);
    ASSERT_TRUE(store->SaveCheckpoint(path, nullptr, {}).ok());
    EXPECT_GE(faulty.rename_count(), 1);
    EXPECT_GE(faulty.dir_sync_count(), 1);
    total_ops = faulty.op_count();
  }

  // Fail only the LAST op: the rename has already happened, so the only
  // remaining mutating op is the parent-directory sync — if the writer
  // skipped it (the pre-fix durability hole), nothing would fail here.
  {
    FaultInjectingFileOps faulty;
    faulty.FailAfter(total_ops - 1);
    ScopedFileOpsOverride scope(&faulty);
    Status st = store->SaveCheckpoint(path, nullptr, {});
    EXPECT_FALSE(st.ok())
        << "the final durable op (parent dir fsync) was never issued";
    EXPECT_GE(faulty.rename_count(), 1)
        << "the failing op should come after the rename";
  }
  fs::remove_all(dir, ec);
}

}  // namespace
}  // namespace ensemfdet
