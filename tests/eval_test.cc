// Tests for labels, confusion metrics, and operating-curve assembly.
#include <vector>

#include <gtest/gtest.h>

#include "ensemble/vote_table.h"
#include "eval/curves.h"
#include "eval/labels.h"
#include "eval/metrics.h"

namespace ensemfdet {
namespace {

TEST(LabelSetTest, MarksAndCounts) {
  LabelSet labels(10);
  EXPECT_EQ(labels.num_users(), 10);
  EXPECT_EQ(labels.num_fraud(), 0);
  labels.MarkFraud(3);
  labels.MarkFraud(7);
  labels.MarkFraud(3);  // idempotent
  EXPECT_EQ(labels.num_fraud(), 2);
  EXPECT_TRUE(labels.IsFraud(3));
  EXPECT_FALSE(labels.IsFraud(4));
  EXPECT_EQ(labels.FraudUsers(), (std::vector<UserId>{3, 7}));
}

TEST(LabelSetTest, ClearFraud) {
  LabelSet labels(5);
  labels.MarkFraud(1);
  labels.ClearFraud(1);
  labels.ClearFraud(1);  // idempotent
  EXPECT_EQ(labels.num_fraud(), 0);
  EXPECT_FALSE(labels.IsFraud(1));
}

TEST(LabelSetTest, SpanConstructor) {
  std::vector<UserId> fraud{2, 4};
  LabelSet labels(6, fraud);
  EXPECT_EQ(labels.num_fraud(), 2);
  EXPECT_TRUE(labels.IsFraud(2));
  EXPECT_TRUE(labels.IsFraud(4));
}

TEST(ConfusionTest, AllQuadrants) {
  LabelSet labels(6, std::vector<UserId>{0, 1, 2});
  std::vector<UserId> detected{0, 1, 3};  // 2 tp, 1 fp, fraud 2 missed
  Confusion c = CountConfusion(detected, labels);
  EXPECT_EQ(c.true_positives, 2);
  EXPECT_EQ(c.false_positives, 1);
  EXPECT_EQ(c.false_negatives, 1);
  EXPECT_EQ(c.true_negatives, 2);
  EXPECT_EQ(c.num_detected(), 3);
}

TEST(ConfusionTest, DuplicateDetectionsIgnored) {
  LabelSet labels(3, std::vector<UserId>{0});
  std::vector<UserId> detected{0, 0, 0};
  Confusion c = CountConfusion(detected, labels);
  EXPECT_EQ(c.true_positives, 1);
  EXPECT_EQ(c.num_detected(), 1);
}

TEST(MetricsTest, PerfectDetection) {
  LabelSet labels(4, std::vector<UserId>{1, 2});
  std::vector<UserId> detected{1, 2};
  Confusion c = CountConfusion(detected, labels);
  EXPECT_DOUBLE_EQ(Precision(c), 1.0);
  EXPECT_DOUBLE_EQ(Recall(c), 1.0);
  EXPECT_DOUBLE_EQ(F1Score(c), 1.0);
}

TEST(MetricsTest, EmptyDetectionZeroPrecisionRecall) {
  LabelSet labels(4, std::vector<UserId>{1});
  Confusion c = CountConfusion({}, labels);
  EXPECT_DOUBLE_EQ(Precision(c), 0.0);
  EXPECT_DOUBLE_EQ(Recall(c), 0.0);
  EXPECT_DOUBLE_EQ(F1Score(c), 0.0);
}

TEST(MetricsTest, NoPositivesInLabels) {
  LabelSet labels(4);
  std::vector<UserId> detected{0};
  Confusion c = CountConfusion(detected, labels);
  EXPECT_DOUBLE_EQ(Precision(c), 0.0);
  EXPECT_DOUBLE_EQ(Recall(c), 0.0);
}

TEST(MetricsTest, KnownF1) {
  // P = 0.5, R = 0.25 → F1 = 2·0.5·0.25/0.75 = 1/3.
  LabelSet labels(10, std::vector<UserId>{0, 1, 2, 3});
  std::vector<UserId> detected{0, 9};
  Confusion c = CountConfusion(detected, labels);
  EXPECT_DOUBLE_EQ(Precision(c), 0.5);
  EXPECT_DOUBLE_EQ(Recall(c), 0.25);
  EXPECT_NEAR(F1Score(c), 1.0 / 3.0, 1e-12);
}

VoteTable MakeVotes() {
  // users 0..4; votes 5,4,3,2,1; user 5 gets 0.
  VoteTable votes(6, 1);
  std::vector<MerchantId> none;
  for (int round = 0; round < 5; ++round) {
    std::vector<UserId> voters;
    for (UserId u = 0; u < 5; ++u) {
      if (static_cast<int>(u) <= 4 - round) voters.push_back(u);
    }
    votes.AddVotes(voters, none);
  }
  return votes;
}

TEST(VoteSweepTest, DescendingThresholdAscendingDetections) {
  VoteTable votes = MakeVotes();
  LabelSet labels(6, std::vector<UserId>{0, 1});
  auto points = VoteSweep(votes, labels, 5);
  ASSERT_EQ(points.size(), 5u);
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_LT(points[i - 1].num_detected, points[i].num_detected);
    EXPECT_GE(points[i - 1].control, points[i].control);
  }
  // Strictest point: only user 0 (votes=5) detected; it is fraud.
  EXPECT_EQ(points[0].num_detected, 1);
  EXPECT_DOUBLE_EQ(points[0].precision, 1.0);
  EXPECT_DOUBLE_EQ(points[0].recall, 0.5);
}

TEST(VoteSweepTest, RecallMonotoneNonDecreasing) {
  VoteTable votes = MakeVotes();
  LabelSet labels(6, std::vector<UserId>{0, 3});
  auto points = VoteSweep(votes, labels, 5);
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].recall, points[i - 1].recall);
  }
}

TEST(VoteSweepTest, SkipsDuplicateDetectionCounts) {
  VoteTable votes(3, 1);
  std::vector<MerchantId> none;
  std::vector<UserId> all{0, 1, 2};
  votes.AddVotes(all, none);  // everyone has exactly 1 vote
  LabelSet labels(3, std::vector<UserId>{0});
  auto points = VoteSweep(votes, labels, 5);
  // T=5..2 all detect 0 users (one point), T=1 detects 3 (second point).
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].num_detected, 0);
  EXPECT_EQ(points[1].num_detected, 3);
}

TEST(ScoreSweepTest, TopPrefixEvaluation) {
  // scores rank users 3 > 1 > 0 > 2; fraud = {3, 0}.
  std::vector<double> scores{0.3, 0.8, 0.1, 0.9};
  LabelSet labels(4, std::vector<UserId>{3, 0});
  std::vector<int64_t> sizes{1, 2, 4};
  auto points = ScoreSweep(scores, labels, sizes);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].num_detected, 1);  // {3}: tp
  EXPECT_DOUBLE_EQ(points[0].precision, 1.0);
  EXPECT_DOUBLE_EQ(points[0].recall, 0.5);
  EXPECT_EQ(points[1].num_detected, 2);  // {3,1}: 1 tp 1 fp
  EXPECT_DOUBLE_EQ(points[1].precision, 0.5);
  EXPECT_EQ(points[2].num_detected, 4);
  EXPECT_DOUBLE_EQ(points[2].recall, 1.0);
}

TEST(ScoreSweepTest, TieBreaksByAscendingId) {
  std::vector<double> scores{0.5, 0.5, 0.5};
  LabelSet labels(3, std::vector<UserId>{0});
  std::vector<int64_t> sizes{1};
  auto points = ScoreSweep(scores, labels, sizes);
  // Prefix of size 1 must be user 0 (smallest id at tied score) → tp.
  EXPECT_DOUBLE_EQ(points[0].precision, 1.0);
}

TEST(ScoreSweepTest, OversizedRequestClamped) {
  std::vector<double> scores{0.1, 0.2};
  LabelSet labels(2, std::vector<UserId>{1});
  std::vector<int64_t> sizes{100};
  auto points = ScoreSweep(scores, labels, sizes);
  EXPECT_EQ(points[0].num_detected, 2);
}

TEST(BlockSweepTest, CumulativeUnionPoints) {
  LabelSet labels(10, std::vector<UserId>{0, 1, 2, 3});
  std::vector<std::vector<UserId>> blocks{{0, 1}, {1, 2, 9}, {8}};
  auto points = BlockSweep(blocks, labels);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].num_detected, 2);  // {0,1}
  EXPECT_DOUBLE_EQ(points[0].precision, 1.0);
  EXPECT_EQ(points[1].num_detected, 4);  // {0,1,2,9}
  EXPECT_DOUBLE_EQ(points[1].precision, 0.75);
  EXPECT_EQ(points[2].num_detected, 5);  // +{8}
  EXPECT_DOUBLE_EQ(points[2].recall, 0.75);
}

TEST(PrCurveAreaTest, RectangleArea) {
  std::vector<OperatingPoint> pts(2);
  pts[0].recall = 0.0;
  pts[0].precision = 1.0;
  pts[1].recall = 1.0;
  pts[1].precision = 1.0;
  EXPECT_DOUBLE_EQ(PrCurveArea(pts), 1.0);
}

TEST(PrCurveAreaTest, TriangleArea) {
  std::vector<OperatingPoint> pts(2);
  pts[0].recall = 0.0;
  pts[0].precision = 1.0;
  pts[1].recall = 1.0;
  pts[1].precision = 0.0;
  EXPECT_DOUBLE_EQ(PrCurveArea(pts), 0.5);
}

TEST(PrCurveAreaTest, FewPointsZero) {
  EXPECT_DOUBLE_EQ(PrCurveArea({}), 0.0);
  std::vector<OperatingPoint> one(1);
  EXPECT_DOUBLE_EQ(PrCurveArea(one), 0.0);
}

TEST(GeometricSizesTest, SpansRangeAscendingUnique) {
  auto sizes = GeometricSizes(10, 10000, 7);
  ASSERT_GE(sizes.size(), 2u);
  EXPECT_EQ(sizes.front(), 10);
  EXPECT_EQ(sizes.back(), 10000);
  for (size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_GT(sizes[i], sizes[i - 1]);
  }
}

TEST(GeometricSizesTest, DegenerateRange) {
  auto sizes = GeometricSizes(5, 5, 4);
  ASSERT_EQ(sizes.size(), 1u);
  EXPECT_EQ(sizes[0], 5);
}

}  // namespace
}  // namespace ensemfdet
