// Tests for the column-weight family (ColumnWeightKind) and its effect on
// peeling — the camouflage-resistance ablation of the density metric.
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "detect/density.h"
#include "detect/fdet.h"
#include "detect/greedy_peeler.h"
#include "graph/graph_builder.h"

namespace ensemfdet {
namespace {

TEST(ColumnWeightKindTest, Names) {
  EXPECT_STREQ(ColumnWeightKindName(ColumnWeightKind::kLogarithmic),
               "logarithmic");
  EXPECT_STREQ(ColumnWeightKindName(ColumnWeightKind::kInverse), "inverse");
  EXPECT_STREQ(ColumnWeightKindName(ColumnWeightKind::kConstant),
               "constant");
}

TEST(ColumnWeightKindTest, Formulas) {
  DensityConfig log_cfg;
  EXPECT_DOUBLE_EQ(MerchantColumnWeight(10.0, log_cfg),
                   1.0 / std::log(15.0));

  DensityConfig inv_cfg;
  inv_cfg.weight_kind = ColumnWeightKind::kInverse;
  EXPECT_DOUBLE_EQ(MerchantColumnWeight(10.0, inv_cfg), 1.0 / 15.0);

  DensityConfig const_cfg;
  const_cfg.weight_kind = ColumnWeightKind::kConstant;
  EXPECT_DOUBLE_EQ(MerchantColumnWeight(10.0, const_cfg), 1.0);
  EXPECT_DOUBLE_EQ(MerchantColumnWeight(10000.0, const_cfg), 1.0);
}

TEST(ColumnWeightKindTest, DiscountOrderingAtHighDegree) {
  // At high degree: inverse < logarithmic < constant.
  DensityConfig log_cfg;
  DensityConfig inv_cfg;
  inv_cfg.weight_kind = ColumnWeightKind::kInverse;
  DensityConfig const_cfg;
  const_cfg.weight_kind = ColumnWeightKind::kConstant;
  const double d = 500.0;
  EXPECT_LT(MerchantColumnWeight(d, inv_cfg),
            MerchantColumnWeight(d, log_cfg));
  EXPECT_LT(MerchantColumnWeight(d, log_cfg),
            MerchantColumnWeight(d, const_cfg));
}

// A small fraud block on obscure merchants vs a larger, raw-denser benign
// cluster on popular merchants (a flash-sale crowd: 68 users all buying
// the same 3 promoted items). Popularity-blind constant weighting ranks
// the benign cluster highest (raw density 204/71 ≈ 2.9 vs the fraud
// block's 18/9 = 2.0); the logarithmic discount inverts that (0.67 vs
// 0.83) because the promoted merchants' degree is huge.
BipartiteGraph CamouflageTrapGraph() {
  GraphBuilder b(80, 30);
  // Fraud block: users 0-5 × merchants 0-2 (obscure).
  for (UserId u = 0; u < 6; ++u) {
    for (MerchantId v = 0; v < 3; ++v) b.AddEdge(u, v);
  }
  // Flash-sale crowd: users 12-79 × merchants 27-29, complete.
  for (UserId u = 12; u < 80; ++u) {
    for (MerchantId v = 27; v < 30; ++v) b.AddEdge(u, v);
  }
  return b.Build().ValueOrDie();
}

TEST(ColumnWeightKindTest, LogWeightPrefersObscureBlock) {
  auto g = CamouflageTrapGraph();
  DensityConfig cfg;  // logarithmic
  PeelResult r = PeelDensestBlock(g, cfg);
  std::set<UserId> users(r.users.begin(), r.users.end());
  for (UserId u = 0; u < 6; ++u) {
    EXPECT_TRUE(users.count(u)) << "log weight lost fraud user " << u;
  }
  std::set<MerchantId> merchants(r.merchants.begin(), r.merchants.end());
  EXPECT_FALSE(merchants.count(29))
      << "log weight should not chase the popular merchant";
}

TEST(ColumnWeightKindTest, ConstantWeightChasesPopularity) {
  auto g = CamouflageTrapGraph();
  DensityConfig cfg;
  cfg.weight_kind = ColumnWeightKind::kConstant;
  PeelResult r = PeelDensestBlock(g, cfg);
  std::set<MerchantId> merchants(r.merchants.begin(), r.merchants.end());
  // Average-degree density picks the raw-denser flash-sale crowd instead
  // of the fraud ring.
  EXPECT_TRUE(merchants.count(29))
      << "constant weight should fall for the popular-merchant block";
  EXPECT_FALSE(merchants.count(0));
}

TEST(ColumnWeightKindTest, FdetValidatesOffsetsPerKind) {
  GraphBuilder b(2, 2);
  b.AddEdge(0, 0);
  auto g = b.Build().ValueOrDie();

  FdetConfig log_bad;
  log_bad.density.log_offset = 1.0;  // invalid for logarithmic
  EXPECT_FALSE(RunFdet(g, log_bad).ok());

  FdetConfig inv_ok;
  inv_ok.density.weight_kind = ColumnWeightKind::kInverse;
  inv_ok.density.log_offset = 1.0;  // fine for inverse
  EXPECT_TRUE(RunFdet(g, inv_ok).ok());

  FdetConfig inv_bad;
  inv_bad.density.weight_kind = ColumnWeightKind::kInverse;
  inv_bad.density.log_offset = 0.0;
  EXPECT_FALSE(RunFdet(g, inv_bad).ok());

  FdetConfig const_ok;
  const_ok.density.weight_kind = ColumnWeightKind::kConstant;
  const_ok.density.log_offset = 0.0;  // irrelevant for constant
  EXPECT_TRUE(RunFdet(g, const_ok).ok());
}

TEST(ColumnWeightKindTest, FdetRunsUnderEveryKind) {
  auto g = CamouflageTrapGraph();
  for (ColumnWeightKind kind :
       {ColumnWeightKind::kLogarithmic, ColumnWeightKind::kInverse,
        ColumnWeightKind::kConstant}) {
    FdetConfig cfg;
    cfg.density.weight_kind = kind;
    if (kind == ColumnWeightKind::kInverse) cfg.density.log_offset = 1.0;
    auto r = RunFdet(g, cfg);
    ASSERT_TRUE(r.ok()) << ColumnWeightKindName(kind);
    EXPECT_FALSE(r->blocks.empty()) << ColumnWeightKindName(kind);
  }
}

}  // namespace
}  // namespace ensemfdet
