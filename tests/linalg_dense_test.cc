#include "linalg/dense.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace ensemfdet {
namespace {

TEST(DenseMatrixTest, ZeroInitialized) {
  DenseMatrix m(3, 2);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 2);
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 2; ++j) EXPECT_DOUBLE_EQ(m(i, j), 0.0);
  }
}

TEST(DenseMatrixTest, ElementReadWrite) {
  DenseMatrix m(2, 2);
  m(0, 1) = 3.5;
  m(1, 0) = -1.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 3.5);
  EXPECT_DOUBLE_EQ(m(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(DenseMatrixTest, ColumnsAreContiguous) {
  DenseMatrix m(3, 2);
  m(0, 1) = 1.0;
  m(1, 1) = 2.0;
  m(2, 1) = 3.0;
  auto c = m.col(1);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  EXPECT_DOUBLE_EQ(c[1], 2.0);
  EXPECT_DOUBLE_EQ(c[2], 3.0);
  c[2] = 7.0;  // mutable view writes through
  EXPECT_DOUBLE_EQ(m(2, 1), 7.0);
}

TEST(VectorOpsTest, Dot) {
  std::vector<double> x{1, 2, 3}, y{4, 5, 6};
  EXPECT_DOUBLE_EQ(Dot(x, y), 32.0);
}

TEST(VectorOpsTest, DotEmpty) {
  std::vector<double> x, y;
  EXPECT_DOUBLE_EQ(Dot(x, y), 0.0);
}

TEST(VectorOpsTest, Norm2) {
  std::vector<double> x{3, 4};
  EXPECT_DOUBLE_EQ(Norm2(x), 5.0);
}

TEST(VectorOpsTest, Axpy) {
  std::vector<double> x{1, 2}, y{10, 20};
  Axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
}

TEST(VectorOpsTest, Scale) {
  std::vector<double> x{1, -2, 3};
  Scale(-0.5, x);
  EXPECT_DOUBLE_EQ(x[0], -0.5);
  EXPECT_DOUBLE_EQ(x[1], 1.0);
  EXPECT_DOUBLE_EQ(x[2], -1.5);
}

TEST(GramMatrixTest, SymmetricAndCorrect) {
  DenseMatrix a(3, 2);
  // col0 = (1,0,1), col1 = (2,1,0)
  a(0, 0) = 1;
  a(2, 0) = 1;
  a(0, 1) = 2;
  a(1, 1) = 1;
  DenseMatrix g = GramMatrix(a);
  ASSERT_EQ(g.rows(), 2);
  ASSERT_EQ(g.cols(), 2);
  EXPECT_DOUBLE_EQ(g(0, 0), 2.0);   // ‖col0‖²
  EXPECT_DOUBLE_EQ(g(1, 1), 5.0);   // ‖col1‖²
  EXPECT_DOUBLE_EQ(g(0, 1), 2.0);   // <col0, col1>
  EXPECT_DOUBLE_EQ(g(1, 0), g(0, 1));
}

TEST(MatMulTest, KnownProduct) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  DenseMatrix w(2, 1);
  w(0, 0) = 1;
  w(1, 0) = -1;
  DenseMatrix b = MatMul(a, w);
  ASSERT_EQ(b.rows(), 2);
  ASSERT_EQ(b.cols(), 1);
  EXPECT_DOUBLE_EQ(b(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(b(1, 0), -1.0);
}

TEST(MatMulTest, IdentityPreserves) {
  DenseMatrix a(3, 3);
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 3; ++j) a(i, j) = i * 3.0 + j;
  }
  DenseMatrix eye(3, 3);
  for (int64_t i = 0; i < 3; ++i) eye(i, i) = 1.0;
  DenseMatrix b = MatMul(a, eye);
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(b(i, j), a(i, j));
  }
}

TEST(MatMulDeathTest, DimensionMismatchAborts) {
  DenseMatrix a(2, 3);
  DenseMatrix w(2, 2);  // a.cols() != w.rows()
  EXPECT_DEATH((void)MatMul(a, w), "Check failed");
}

}  // namespace
}  // namespace ensemfdet
