// Parameterized property tests sweeping the core invariants of the paper:
// Theorem 1 (density preservation under edge sampling with 1/p
// reweighting), Lemma 1 (degree-biased inclusion), peeler optimality over
// prefixes, FDET disjointness, and MVA monotonicity — each across a grid
// of seeds / ratios / graph shapes.
#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/generator.h"
#include "detect/density.h"
#include "detect/fdet.h"
#include "detect/greedy_peeler.h"
#include "detect/partitioned_fdet.h"
#include "ensemble/ensemfdet.h"
#include "eval/curves.h"
#include "graph/graph_builder.h"
#include "graph/kcore.h"
#include "sampling/sampler.h"
#include "sampling/sampling_theory.h"
#include "stream/windowed_detector.h"

namespace ensemfdet {
namespace {

// A reasonably dense random bipartite graph (min degree grows with size so
// Theorem 1's c = Ω(ln n) precondition roughly holds).
BipartiteGraph DenseRandomGraph(int64_t users, int64_t merchants,
                                int64_t per_user, uint64_t seed) {
  GraphBuilder b(users, merchants);
  Rng rng(seed);
  for (UserId u = 0; u < users; ++u) {
    auto picks = rng.SampleWithoutReplacement(
        static_cast<uint64_t>(merchants),
        static_cast<uint64_t>(std::min<int64_t>(per_user, merchants)));
    for (uint64_t v : picks) b.AddEdge(u, static_cast<MerchantId>(v));
  }
  return b.Build().ValueOrDie();
}

// --- Theorem 1: φ(sample with 1/p weights) ≈ φ(G) --------------------------

class Theorem1Test
    : public ::testing::TestWithParam<std::tuple<double, uint64_t>> {};

TEST_P(Theorem1Test, ReweightedSampleDensityApproximatesParent) {
  const double ratio = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());

  // Dense, fairly regular graph: 300 users × 120 merchants, 25 edges/user,
  // so merchant degrees ≈ 62 ≫ ln(420) ≈ 6.
  auto g = DenseRandomGraph(300, 120, 25, seed);
  const double parent_phi = DensityScore(g, {});

  auto sampler =
      MakeSampler(SampleMethod::kRandomEdge, ratio, /*reweight=*/true)
          .ValueOrDie();
  // Average over a few samples: Theorem 1 is a concentration statement.
  double total = 0.0;
  constexpr int kSamples = 8;
  for (int i = 0; i < kSamples; ++i) {
    Rng rng(seed * 1000 + static_cast<uint64_t>(i));
    SubgraphView view = sampler->Sample(g, &rng);
    total += DensityScore(view.graph, {});
  }
  const double sample_phi = total / kSamples;
  // ε-approximation with generous statistical slack. Node-count shrinkage
  // means the reweighted sample estimates mass but splits it over fewer
  // nodes, so φ_s overestimates; we bound the multiplicative gap.
  EXPECT_GT(sample_phi, 0.55 * parent_phi)
      << "ratio=" << ratio << " seed=" << seed;
  EXPECT_LT(sample_phi, 2.6 * parent_phi)
      << "ratio=" << ratio << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    RatiosAndSeeds, Theorem1Test,
    ::testing::Combine(::testing::Values(0.3, 0.5, 0.8),
                       ::testing::Values(1u, 2u, 3u)));

// --- Lemma 1: inclusion-rate crossover across ratios ------------------------

class Lemma1SweepTest : public ::testing::TestWithParam<double> {};

TEST_P(Lemma1SweepTest, TheoryCrossoverConsistent) {
  const double p = GetParam();
  std::vector<int64_t> hist(100, 50);
  auto ns = ExpectedSampledDegreeCountsNS(hist, p);
  auto es = ExpectedSampledDegreeCountsES(hist, p);
  const double crossover = LemmaOneCrossoverDegree(p, p);
  // p_v == p_e ⇒ crossover at exactly q = 1; every q > 1 favors ES.
  EXPECT_NEAR(crossover, 1.0, 1e-9);
  EXPECT_NEAR(es[1], ns[1], 1e-9);
  for (int64_t q = 2; q < 100; ++q) {
    EXPECT_GT(es[static_cast<size_t>(q)], ns[static_cast<size_t>(q)]);
  }
}

INSTANTIATE_TEST_SUITE_P(Probabilities, Lemma1SweepTest,
                         ::testing::Values(0.05, 0.1, 0.25, 0.5));

// --- Peeler: returned φ is the max over every peeling prefix ----------------

class PeelerPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(PeelerPropertyTest, ScoreIsPrefixOptimumAndTraceConsistent) {
  const int per_user = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  auto g = DenseRandomGraph(80, 40, per_user, seed);

  PeelResult r = PeelDensestBlock(g, {}, /*keep_trace=*/true);
  ASSERT_EQ(static_cast<int64_t>(r.trace.size()), g.num_nodes());

  // score == max(trace) and block size == nodes alive at the argmax.
  double max_phi = 0.0;
  size_t argmax = 0;
  for (size_t t = 0; t < r.trace.size(); ++t) {
    if (r.trace[t] > max_phi) {
      max_phi = r.trace[t];
      argmax = t;
    }
  }
  EXPECT_NEAR(r.score, max_phi, 1e-12);
  EXPECT_EQ(r.users.size() + r.merchants.size(),
            static_cast<size_t>(g.num_nodes()) - argmax);

  // φ(block) ≥ φ(G) always (the block is at least as dense as the start).
  EXPECT_GE(r.score, r.trace[0] - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PeelerPropertyTest,
    ::testing::Combine(::testing::Values(2, 5, 12),
                       ::testing::Values(10u, 20u, 30u)));

// --- FDET: block disjointness and truncation bounds across configs ----------

class FdetPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(FdetPropertyTest, BlocksDisjointAndTruncationBounded) {
  const int max_blocks = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  auto g = DenseRandomGraph(100, 50, 4, seed);

  FdetConfig cfg;
  cfg.max_blocks = max_blocks;
  auto r = RunFdet(g, cfg).ValueOrDie();

  EXPECT_LE(static_cast<int>(r.all_scores.size()), max_blocks);
  EXPECT_GE(r.truncation_index, r.all_scores.empty() ? 0 : 1);
  EXPECT_LE(r.truncation_index, static_cast<int>(r.all_scores.size()));

  // Each block's consumed residual edges are nonempty, pairwise disjoint,
  // and inside the block's vertex set.
  std::set<EdgeId> claimed;
  for (const DetectedBlock& blk : r.blocks) {
    EXPECT_FALSE(blk.edges.empty());
    std::set<UserId> users(blk.users.begin(), blk.users.end());
    std::set<MerchantId> merchants(blk.merchants.begin(),
                                   blk.merchants.end());
    for (EdgeId e : blk.edges) {
      EXPECT_TRUE(claimed.insert(e).second);
      EXPECT_TRUE(users.count(g.edge(e).user));
      EXPECT_TRUE(merchants.count(g.edge(e).merchant));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, FdetPropertyTest,
    ::testing::Combine(::testing::Values(1, 5, 15),
                       ::testing::Values(40u, 41u)));

// --- Ensemble: MVA monotone, votes bounded, thread-count invariant ----------

class EnsemblePropertyTest
    : public ::testing::TestWithParam<std::tuple<SampleMethod, int>> {};

TEST_P(EnsemblePropertyTest, VotesBoundedAndMvaMonotone) {
  const SampleMethod method = std::get<0>(GetParam());
  const int num_samples = std::get<1>(GetParam());

  DataGenConfig dg;
  dg.num_users = 400;
  dg.num_merchants = 150;
  dg.num_edges = 1500;
  FraudGroupSpec grp;
  grp.num_users = 25;
  grp.num_merchants = 5;
  grp.edges_per_user = 4.0;
  dg.fraud_groups.push_back(grp);
  dg.seed = 5150;
  auto data = GenerateDataset(dg).ValueOrDie();

  EnsemFDetConfig cfg;
  cfg.method = method;
  cfg.num_samples = num_samples;
  cfg.ratio = 0.25;
  cfg.seed = 31337;
  cfg.fdet.max_blocks = 10;
  auto report = EnsemFDet(cfg).Run(data.graph).ValueOrDie();

  // Votes bounded by N.
  EXPECT_LE(report.votes.max_user_votes(), num_samples);

  // MVA monotone: accepted sets shrink as T rises, and each accepted set
  // is contained in the previous one.
  std::vector<UserId> prev = report.AcceptedUsers(1);
  for (int32_t threshold = 2; threshold <= num_samples; ++threshold) {
    std::vector<UserId> cur = report.AcceptedUsers(threshold);
    EXPECT_LE(cur.size(), prev.size());
    EXPECT_TRUE(std::includes(prev.begin(), prev.end(), cur.begin(),
                              cur.end()));
    prev = std::move(cur);
  }

  // Thread-count invariance.
  ThreadPool pool(3);
  auto parallel = EnsemFDet(cfg).Run(data.graph, &pool).ValueOrDie();
  for (int64_t u = 0; u < data.graph.num_users(); ++u) {
    ASSERT_EQ(report.votes.user_votes(static_cast<UserId>(u)),
              parallel.votes.user_votes(static_cast<UserId>(u)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndN, EnsemblePropertyTest,
    ::testing::Combine(::testing::Values(SampleMethod::kRandomEdge,
                                         SampleMethod::kOneSideMerchant,
                                         SampleMethod::kTwoSide),
                       ::testing::Values(4, 10)));

// --- Sampler: structural invariants across methods and ratios ---------------

class SamplerPropertyTest
    : public ::testing::TestWithParam<std::tuple<SampleMethod, double>> {};

TEST_P(SamplerPropertyTest, SubgraphStructurallyValid) {
  const SampleMethod method = std::get<0>(GetParam());
  const double ratio = std::get<1>(GetParam());
  auto g = DenseRandomGraph(120, 60, 6, 77);

  auto sampler = MakeSampler(method, ratio).ValueOrDie();
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Rng rng(seed);
    SubgraphView view = sampler->Sample(g, &rng);

    // Maps are sorted unique and in range.
    EXPECT_TRUE(std::is_sorted(view.user_map.begin(), view.user_map.end()));
    EXPECT_TRUE(std::is_sorted(view.merchant_map.begin(),
                               view.merchant_map.end()));
    for (UserId pu : view.user_map) ASSERT_LT(pu, g.num_users());
    for (MerchantId pv : view.merchant_map) {
      ASSERT_LT(pv, g.num_merchants());
    }
    // Every subgraph edge exists in the parent.
    for (EdgeId e = 0; e < view.graph.num_edges(); ++e) {
      const Edge& local = view.graph.edge(e);
      ASSERT_TRUE(g.HasEdge(view.ToParentUser(local.user),
                            view.ToParentMerchant(local.merchant)));
    }
    // Sample is a strict reduction for ratios < 1.
    if (ratio < 1.0) {
      EXPECT_LT(view.graph.num_edges(), g.num_edges());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndRatios, SamplerPropertyTest,
    ::testing::Combine(::testing::Values(SampleMethod::kRandomEdge,
                                         SampleMethod::kOneSideUser,
                                         SampleMethod::kOneSideMerchant,
                                         SampleMethod::kTwoSide),
                       ::testing::Values(0.05, 0.2, 0.6)));

// --- k-core vs peeler: degeneracy bounds block membership -------------------

class KCorePeelerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KCorePeelerPropertyTest, PeeledBlockLivesInHighCores) {
  // The peeled densest block under constant column weights is a near-
  // degeneracy-core object: every block member must have core number at
  // least half the block's minimum internal degree (loose but structural).
  auto g = DenseRandomGraph(60, 30, 6, GetParam());
  DensityConfig cfg;
  cfg.weight_kind = ColumnWeightKind::kConstant;
  PeelResult block = PeelDensestBlock(g, cfg);
  ASSERT_FALSE(block.users.empty());

  KCoreDecomposition kc = ComputeKCores(g);
  std::set<MerchantId> merchants(block.merchants.begin(),
                                 block.merchants.end());
  int64_t min_internal = INT64_MAX;
  for (UserId u : block.users) {
    int64_t internal = 0;
    for (EdgeId e : g.user_edges(u)) {
      internal += merchants.count(g.edge(e).merchant) > 0;
    }
    min_internal = std::min(min_internal, internal);
  }
  for (UserId u : block.users) {
    EXPECT_GE(kc.user_core[u], (min_internal + 1) / 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KCorePeelerPropertyTest,
                         ::testing::Values(101u, 102u, 103u, 104u));

// --- Partitioned FDET: invariants across component structures ---------------

class PartitionedPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(PartitionedPropertyTest, MergedBlocksSortedAndEdgeValid) {
  const int islands = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  // Build `islands` disjoint random blocks.
  GraphBuilder b(static_cast<int64_t>(islands) * 12,
                 static_cast<int64_t>(islands) * 6);
  Rng rng(seed);
  for (int i = 0; i < islands; ++i) {
    const UserId u0 = static_cast<UserId>(i * 12);
    const MerchantId v0 = static_cast<MerchantId>(i * 6);
    for (int e = 0; e < 30; ++e) {
      b.AddEdge(u0 + static_cast<UserId>(rng.NextBounded(12)),
                v0 + static_cast<MerchantId>(rng.NextBounded(6)));
    }
  }
  auto g = b.Build().ValueOrDie();

  PartitionedFdetConfig cfg;
  cfg.fdet.policy = TruncationPolicy::kFixedK;
  cfg.fdet.fixed_k = 3 * islands;
  auto r = RunPartitionedFdet(g, cfg).ValueOrDie();

  // Scores sorted descending; every block's edges valid and disjoint.
  std::set<EdgeId> claimed;
  for (size_t i = 0; i < r.blocks.size(); ++i) {
    if (i > 0) {
      EXPECT_LE(r.blocks[i].score, r.blocks[i - 1].score + 1e-12);
    }
    for (EdgeId e : r.blocks[i].edges) {
      ASSERT_GE(e, 0);
      ASSERT_LT(e, g.num_edges());
      EXPECT_TRUE(claimed.insert(e).second);
    }
    // No block spans two islands.
    std::set<int> island_of;
    for (UserId u : r.blocks[i].users) island_of.insert(u / 12);
    EXPECT_EQ(island_of.size(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    IslandCounts, PartitionedPropertyTest,
    ::testing::Combine(::testing::Values(1, 3, 6),
                       ::testing::Values(7u, 8u)));

// --- Streaming: window contents always within [newest - window, newest] ----

class StreamWindowPropertyTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(StreamWindowPropertyTest, WindowBoundsRespectedUnderRandomTraffic) {
  const int64_t window = GetParam();
  WindowedDetectorConfig cfg;
  cfg.num_users = 50;
  cfg.num_merchants = 20;
  cfg.window = window;
  cfg.detection_interval = window / 2 + 1;
  cfg.ensemble.num_samples = 2;
  cfg.ensemble.ratio = 0.5;
  WindowedDetector detector(cfg);

  Rng rng(55);
  int64_t t = 0;
  for (int i = 0; i < 300; ++i) {
    t += static_cast<int64_t>(rng.NextBounded(window / 4 + 2));
    auto result = detector.Ingest(
        {t, static_cast<UserId>(rng.NextBounded(50)),
         static_cast<MerchantId>(rng.NextBounded(20))});
    ASSERT_TRUE(result.ok());
    // The windowed event count never exceeds what the window can hold
    // given the inter-arrival floor of 0 (trivially all events) — instead
    // check the stronger invariant through newest_timestamp bounds.
    EXPECT_EQ(detector.newest_timestamp(), t);
    EXPECT_GE(detector.window_size(), 1);
  }
  // A detection over the final window succeeds regardless of history.
  EXPECT_TRUE(detector.DetectNow().ok());
}

INSTANTIATE_TEST_SUITE_P(Windows, StreamWindowPropertyTest,
                         ::testing::Values(8, 64, 512));

}  // namespace
}  // namespace ensemfdet
