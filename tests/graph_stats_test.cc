#include "graph/graph_stats.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace ensemfdet {
namespace {

BipartiteGraph StarGraph() {
  // User 0 connected to merchants 0..4; users 1, 2 isolated.
  GraphBuilder b(3, 5);
  for (MerchantId v = 0; v < 5; ++v) b.AddEdge(0, v);
  return b.Build().ValueOrDie();
}

TEST(DegreesTest, PerNodeDegrees) {
  auto g = StarGraph();
  auto user_deg = Degrees(g, Side::kUser);
  ASSERT_EQ(user_deg.size(), 3u);
  EXPECT_EQ(user_deg[0], 5);
  EXPECT_EQ(user_deg[1], 0);
  EXPECT_EQ(user_deg[2], 0);
  auto merch_deg = Degrees(g, Side::kMerchant);
  ASSERT_EQ(merch_deg.size(), 5u);
  for (int64_t d : merch_deg) EXPECT_EQ(d, 1);
}

TEST(DegreeStatsTest, StarGraphStats) {
  auto g = StarGraph();
  DegreeStats user_stats = ComputeDegreeStats(g, Side::kUser);
  EXPECT_EQ(user_stats.num_nodes, 3);
  EXPECT_EQ(user_stats.num_isolated, 2);
  EXPECT_EQ(user_stats.min_degree, 0);
  EXPECT_EQ(user_stats.max_degree, 5);
  EXPECT_NEAR(user_stats.avg_degree, 5.0 / 3.0, 1e-12);

  DegreeStats merch_stats = ComputeDegreeStats(g, Side::kMerchant);
  EXPECT_EQ(merch_stats.num_isolated, 0);
  EXPECT_EQ(merch_stats.min_degree, 1);
  EXPECT_EQ(merch_stats.max_degree, 1);
  EXPECT_DOUBLE_EQ(merch_stats.avg_degree, 1.0);
}

TEST(DegreeStatsTest, EmptySide) {
  GraphBuilder b(0, 3);
  auto g = b.Build().ValueOrDie();
  DegreeStats stats = ComputeDegreeStats(g, Side::kUser);
  EXPECT_EQ(stats.num_nodes, 0);
  EXPECT_EQ(stats.num_isolated, 0);
  EXPECT_DOUBLE_EQ(stats.avg_degree, 0.0);
}

TEST(DegreeHistogramTest, CountsPerDegree) {
  auto g = StarGraph();
  auto user_hist = DegreeHistogram(g, Side::kUser);
  // Degrees: {5, 0, 0} → hist[0]=2, hist[5]=1.
  ASSERT_EQ(user_hist.size(), 6u);
  EXPECT_EQ(user_hist[0], 2);
  EXPECT_EQ(user_hist[1], 0);
  EXPECT_EQ(user_hist[5], 1);
  auto merch_hist = DegreeHistogram(g, Side::kMerchant);
  ASSERT_EQ(merch_hist.size(), 2u);
  EXPECT_EQ(merch_hist[0], 0);
  EXPECT_EQ(merch_hist[1], 5);
}

TEST(DegreeHistogramTest, HistogramMassEqualsNodeCount) {
  GraphBuilder b(6, 4);
  b.AddEdge(0, 0);
  b.AddEdge(0, 1);
  b.AddEdge(1, 1);
  b.AddEdge(2, 2);
  b.AddEdge(3, 2);
  b.AddEdge(4, 2);
  auto g = b.Build().ValueOrDie();
  for (Side side : {Side::kUser, Side::kMerchant}) {
    auto hist = DegreeHistogram(g, side);
    int64_t total = 0;
    for (int64_t c : hist) total += c;
    EXPECT_EQ(total,
              side == Side::kUser ? g.num_users() : g.num_merchants());
  }
}

TEST(DegreeHistogramTest, AllIsolated) {
  GraphBuilder b(4, 4);
  auto g = b.Build().ValueOrDie();
  auto hist = DegreeHistogram(g, Side::kUser);
  ASSERT_EQ(hist.size(), 1u);
  EXPECT_EQ(hist[0], 4);
}

}  // namespace
}  // namespace ensemfdet
