// Tests for the Zipf sampler, the synthetic dataset generator, and the
// Table I presets.
#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/generator.h"
#include "datagen/presets.h"
#include "datagen/zipf.h"
#include "graph/graph_stats.h"

namespace ensemfdet {
namespace {

TEST(ZipfSamplerTest, ProbabilitiesSumToOne) {
  ZipfSampler z(100, 1.1);
  double total = 0.0;
  for (int64_t r = 0; r < 100; ++r) total += z.Probability(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, ProbabilityDecreasingInRank) {
  ZipfSampler z(50, 0.8);
  for (int64_t r = 1; r < 50; ++r) {
    EXPECT_LE(z.Probability(r), z.Probability(r - 1) + 1e-15);
  }
}

TEST(ZipfSamplerTest, ExponentZeroIsUniform) {
  ZipfSampler z(10, 0.0);
  for (int64_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(z.Probability(r), 0.1, 1e-12);
  }
}

TEST(ZipfSamplerTest, SamplesInRange) {
  ZipfSampler z(30, 1.0);
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    int64_t s = z.Sample(&rng);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 30);
  }
}

TEST(ZipfSamplerTest, EmpiricalMatchesTheoretical) {
  ZipfSampler z(20, 1.2);
  Rng rng(2);
  constexpr int kDraws = 200000;
  std::vector<int> counts(20, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[static_cast<size_t>(z.Sample(&rng))];
  for (int64_t r = 0; r < 20; ++r) {
    const double expected = z.Probability(r);
    const double observed =
        static_cast<double>(counts[static_cast<size_t>(r)]) / kDraws;
    EXPECT_NEAR(observed, expected, 0.01 + expected * 0.1) << "rank " << r;
  }
}

TEST(ZipfSamplerTest, SingleElement) {
  ZipfSampler z(1, 2.0);
  Rng rng(3);
  EXPECT_EQ(z.Sample(&rng), 0);
  EXPECT_DOUBLE_EQ(z.Probability(0), 1.0);
}

DataGenConfig SmallConfig() {
  DataGenConfig config;
  config.name = "unit";
  config.num_users = 500;
  config.num_merchants = 200;
  config.num_edges = 2000;
  FraudGroupSpec group;
  group.num_users = 30;
  group.num_merchants = 5;
  group.edges_per_user = 4.0;
  group.camouflage_per_user = 1.0;
  config.fraud_groups.push_back(group);
  FraudGroupSpec group2;
  group2.num_users = 20;
  group2.num_merchants = 4;
  group2.edges_per_user = 3.0;
  config.fraud_groups.push_back(group2);
  config.seed = 1234;
  return config;
}

TEST(GeneratorTest, ValidatesConfig) {
  DataGenConfig config = SmallConfig();
  config.num_users = 0;
  EXPECT_FALSE(GenerateDataset(config).ok());

  config = SmallConfig();
  config.fraud_groups[0].num_users = 10000;  // exceeds user budget
  EXPECT_FALSE(GenerateDataset(config).ok());

  config = SmallConfig();
  config.blacklist_miss_rate = 1.5;
  EXPECT_FALSE(GenerateDataset(config).ok());

  config = SmallConfig();
  config.fraud_groups[0].edges_per_user = -1.0;
  EXPECT_FALSE(GenerateDataset(config).ok());
}

TEST(GeneratorTest, ShapeMatchesConfig) {
  auto data = GenerateDataset(SmallConfig()).ValueOrDie();
  EXPECT_EQ(data.name, "unit");
  EXPECT_EQ(data.graph.num_users(), 500);
  EXPECT_EQ(data.graph.num_merchants(), 200);
  // Dedup can only shrink the edge budget.
  EXPECT_LE(data.graph.num_edges(), 2000);
  EXPECT_GT(data.graph.num_edges(), 1500);
}

TEST(GeneratorTest, PlantedFraudCounts) {
  auto data = GenerateDataset(SmallConfig()).ValueOrDie();
  EXPECT_EQ(data.planted_fraud_users.size(), 50u);
  EXPECT_EQ(data.fraud_user_groups.size(), 2u);
  EXPECT_EQ(data.fraud_user_groups[0].size(), 30u);
  EXPECT_EQ(data.fraud_user_groups[1].size(), 20u);
  EXPECT_EQ(data.planted_fraud_merchants.size(), 9u);
  // Groups are disjoint.
  std::set<UserId> all(data.planted_fraud_users.begin(),
                       data.planted_fraud_users.end());
  EXPECT_EQ(all.size(), 50u);
}

TEST(GeneratorTest, FraudUsersConnectToGroupMerchants) {
  auto data = GenerateDataset(SmallConfig()).ValueOrDie();
  std::set<MerchantId> fraud_merchants(data.planted_fraud_merchants.begin(),
                                       data.planted_fraud_merchants.end());
  // Every planted fraud user must have at least one within-block edge.
  for (UserId u : data.planted_fraud_users) {
    bool has_block_edge = false;
    for (EdgeId e : data.graph.user_edges(u)) {
      has_block_edge |=
          fraud_merchants.count(data.graph.edge(e).merchant) > 0;
    }
    EXPECT_TRUE(has_block_edge) << "fraud user " << u;
  }
}

TEST(GeneratorTest, BlacklistMissRateApplied) {
  DataGenConfig config = SmallConfig();
  config.blacklist_miss_rate = 0.5;
  config.blacklist_noise_rate = 0.0;
  auto data = GenerateDataset(config).ValueOrDie();
  // ~50% of 50 planted users blacklisted; binomial bounds.
  EXPECT_GT(data.blacklist.num_fraud(), 10);
  EXPECT_LT(data.blacklist.num_fraud(), 40);
  // Every blacklisted user is planted (no noise).
  std::set<UserId> planted(data.planted_fraud_users.begin(),
                           data.planted_fraud_users.end());
  for (UserId u : data.blacklist.FraudUsers()) {
    EXPECT_TRUE(planted.count(u));
  }
}

TEST(GeneratorTest, BlacklistNoiseAddsBenignUsers) {
  DataGenConfig config = SmallConfig();
  config.blacklist_miss_rate = 0.0;
  config.blacklist_noise_rate = 0.2;  // 10 benign users
  auto data = GenerateDataset(config).ValueOrDie();
  std::set<UserId> planted(data.planted_fraud_users.begin(),
                           data.planted_fraud_users.end());
  int64_t noise = 0;
  for (UserId u : data.blacklist.FraudUsers()) noise += !planted.count(u);
  EXPECT_EQ(noise, 10);
  EXPECT_EQ(data.blacklist.num_fraud(), 60);  // 50 planted + 10 noise
}

TEST(GeneratorTest, ZeroRatesExactBlacklist) {
  DataGenConfig config = SmallConfig();
  config.blacklist_miss_rate = 0.0;
  config.blacklist_noise_rate = 0.0;
  auto data = GenerateDataset(config).ValueOrDie();
  EXPECT_EQ(data.blacklist.FraudUsers(), data.planted_fraud_users);
}

TEST(GeneratorTest, DeterministicInSeed) {
  auto a = GenerateDataset(SmallConfig()).ValueOrDie();
  auto b = GenerateDataset(SmallConfig()).ValueOrDie();
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  EXPECT_EQ(a.planted_fraud_users, b.planted_fraud_users);
  EXPECT_EQ(a.blacklist.FraudUsers(), b.blacklist.FraudUsers());
  for (EdgeId e = 0; e < a.graph.num_edges(); ++e) {
    EXPECT_EQ(a.graph.edge(e), b.graph.edge(e));
  }
}

TEST(GeneratorTest, DifferentSeedsDifferentGraphs) {
  DataGenConfig config = SmallConfig();
  config.seed = 99;
  auto a = GenerateDataset(SmallConfig()).ValueOrDie();
  auto b = GenerateDataset(config).ValueOrDie();
  EXPECT_NE(a.planted_fraud_users, b.planted_fraud_users);
}

TEST(GeneratorTest, CommunitiesDisjointFromFraudAndUnlabeled) {
  DataGenConfig config = SmallConfig();
  CommunitySpec community;
  community.num_users = 80;
  community.num_merchants = 10;
  community.edges_per_user = 2.0;
  config.communities.push_back(community);
  config.blacklist_noise_rate = 0.0;
  auto data = GenerateDataset(config).ValueOrDie();

  ASSERT_EQ(data.community_user_groups.size(), 1u);
  EXPECT_EQ(data.community_user_groups[0].size(), 80u);
  std::set<UserId> fraud(data.planted_fraud_users.begin(),
                         data.planted_fraud_users.end());
  for (UserId u : data.community_user_groups[0]) {
    EXPECT_FALSE(fraud.count(u)) << "community member is a fraud user";
    EXPECT_FALSE(data.blacklist.IsFraud(u))
        << "community member wrongly blacklisted";
    EXPECT_GT(data.graph.user_degree(u), 0);
  }
}

TEST(GeneratorTest, CommunityValidation) {
  DataGenConfig config = SmallConfig();
  CommunitySpec community;
  community.num_users = 10000;  // exceeds the user budget
  community.num_merchants = 5;
  config.communities.push_back(community);
  EXPECT_FALSE(GenerateDataset(config).ok());

  config = SmallConfig();
  community.num_users = 10;
  community.num_merchants = 0;
  config.communities = {community};
  EXPECT_FALSE(GenerateDataset(config).ok());
}

TEST(GeneratorTest, CommunityEdgesCountTowardBudget) {
  DataGenConfig config = SmallConfig();
  CommunitySpec community;
  community.num_users = 100;
  community.num_merchants = 10;
  community.edges_per_user = 3.0;
  config.communities.push_back(community);
  auto data = GenerateDataset(config).ValueOrDie();
  EXPECT_LE(data.graph.num_edges(), config.num_edges);
}

TEST(GeneratorTest, NoFraudGroupsPureBackground) {
  DataGenConfig config = SmallConfig();
  config.fraud_groups.clear();
  auto data = GenerateDataset(config).ValueOrDie();
  EXPECT_TRUE(data.planted_fraud_users.empty());
  EXPECT_EQ(data.blacklist.num_fraud(), 0);
  EXPECT_GT(data.graph.num_edges(), 0);
}

TEST(PresetsTest, NamesAndEnumeration) {
  auto all = AllJdPresets();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_STREQ(JdPresetName(all[0]), "dataset1");
  EXPECT_STREQ(JdPresetName(all[1]), "dataset2");
  EXPECT_STREQ(JdPresetName(all[2]), "dataset3");
}

TEST(PresetsTest, ScaledCountsTrackTableOne) {
  const double scale = 0.01;
  DataGenConfig c1 = MakeJdPresetConfig(JdPreset::kDataset1, scale, 7);
  EXPECT_NEAR(static_cast<double>(c1.num_users), 454925 * scale,
              454925 * scale * 0.01 + 2);
  EXPECT_NEAR(static_cast<double>(c1.num_merchants), 226585 * scale,
              226585 * scale * 0.01 + 2);
  EXPECT_NEAR(static_cast<double>(c1.num_edges), 1023846 * scale,
              1023846 * scale * 0.01 + 2);
}

TEST(PresetsTest, RelativeShapeAcrossDatasets) {
  // Dataset 2 has the most users per merchant; dataset 3 the most edges.
  const double scale = 0.01;
  auto c1 = MakeJdPresetConfig(JdPreset::kDataset1, scale, 7);
  auto c2 = MakeJdPresetConfig(JdPreset::kDataset2, scale, 7);
  auto c3 = MakeJdPresetConfig(JdPreset::kDataset3, scale, 7);
  EXPECT_GT(c2.num_users / c2.num_merchants, c1.num_users / c1.num_merchants);
  EXPECT_GT(c3.num_edges, c1.num_edges);
  EXPECT_GT(c3.num_edges, c2.num_edges);
}

TEST(PresetsTest, GeneratesValidDatasets) {
  for (JdPreset preset : AllJdPresets()) {
    auto data = GenerateJdPreset(preset, 0.005, 7);
    ASSERT_TRUE(data.ok()) << JdPresetName(preset);
    EXPECT_GT(data->graph.num_edges(), 0);
    EXPECT_GT(data->blacklist.num_fraud(), 0);
    EXPECT_FALSE(data->fraud_user_groups.empty());
  }
}

TEST(PresetsTest, MerchantSideHeavierInDataset3) {
  // Table I shape: dataset 3 has Davg(merchant) ≫ Davg(user) — the
  // property Fig 5's sampling-side analysis relies on.
  auto data = GenerateJdPreset(JdPreset::kDataset3, 0.01, 7).ValueOrDie();
  DegreeStats users = ComputeDegreeStats(data.graph, Side::kUser);
  DegreeStats merchants = ComputeDegreeStats(data.graph, Side::kMerchant);
  EXPECT_GT(merchants.avg_degree, 2.0 * users.avg_degree);
}

TEST(PresetsDeathTest, RejectsBadScale) {
  EXPECT_DEATH((void)MakeJdPresetConfig(JdPreset::kDataset1, 0.0, 7),
               "scale");
  EXPECT_DEATH((void)MakeJdPresetConfig(JdPreset::kDataset1, 1.5, 7),
               "scale");
}

}  // namespace
}  // namespace ensemfdet
