#include "detect/csr_peeler.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "detect/simd/kernels.h"

namespace ensemfdet {

namespace detail {

PeelHeap::PeelHeap(int64_t capacity) { EnsureCapacity(capacity); }

bool PeelHeap::EnsureCapacity(int64_t capacity) {
  bool grew = false;
  if (pos_.size() < static_cast<size_t>(capacity)) {
    pos_.resize(static_cast<size_t>(capacity), -1);
    grew = true;
  }
  if (heap_.capacity() < static_cast<size_t>(capacity)) {
    heap_.reserve(static_cast<size_t>(capacity));
    grew = true;
  }
  return grew;
}

void PeelHeap::Place(size_t i, Entry e) {
  heap_[i] = e;
  pos_[static_cast<size_t>(e.id)] = static_cast<int64_t>(i);
}

void PeelHeap::Append(int64_t id, double key) {
  ENSEMFDET_DCHECK(id >= 0 && id < static_cast<int64_t>(pos_.size()));
  heap_.push_back({key, id});
  pos_[static_cast<size_t>(id)] =
      static_cast<int64_t>(heap_.size()) - 1;
}

void PeelHeap::Heapify() {
  if (heap_.size() < 2) return;
  // Floyd: sift down every internal node, last first. The last internal
  // node is the parent of the last entry.
  for (size_t i = (heap_.size() - 2) / kArity + 1; i-- > 0;) {
    SiftDown(i);
  }
}

size_t PeelHeap::MinChild(size_t i) const {
  const size_t n = heap_.size();
  const size_t first = kArity * i + 1;
  if (first >= n) return n;
  const size_t last = std::min(first + kArity, n);
  size_t best = first;
  for (size_t c = first + 1; c < last; ++c) {
    if (Less(heap_[c], heap_[best])) best = c;
  }
  return best;
}

void PeelHeap::SiftUp(size_t i) {
  Entry e = heap_[i];
  while (i > 0) {
    const size_t parent = (i - 1) / kArity;
    if (!Less(e, heap_[parent])) break;
    Place(i, heap_[parent]);
    i = parent;
  }
  Place(i, e);
}

void PeelHeap::SiftDown(size_t i) {
  Entry e = heap_[i];
  const size_t n = heap_.size();
  for (;;) {
    const size_t child = MinChild(i);
    if (child >= n || !Less(heap_[child], e)) break;
    Place(i, heap_[child]);
    i = child;
  }
  Place(i, e);
}

int64_t PeelHeap::PopMin() {
  ENSEMFDET_CHECK(!heap_.empty());
  const int64_t id = heap_[0].id;
  pos_[static_cast<size_t>(id)] = -1;  // keeps AddTo's misuse DCHECK live
  Entry last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    // Bottom-up reinsertion: walk the root hole to a leaf along smallest
    // children (no comparison against `last` on the way down), then sift
    // the displaced last entry up from the leaf hole — it rarely rises.
    const size_t n = heap_.size();
    size_t i = 0;
    for (;;) {
      const size_t child = MinChild(i);
      if (child >= n) break;
      Place(i, heap_[child]);
      i = child;
    }
    Place(i, last);
    SiftUp(i);
  }
  return id;
}

void PeelHeap::Clear() {
  // O(size): invalidate contained positions so AddTo on a cleared id
  // still trips its DCHECK instead of mutating an unrelated entry later.
  for (const Entry& e : heap_) pos_[static_cast<size_t>(e.id)] = -1;
  heap_.clear();
}

void PeelHeap::AddTo(int64_t id, double delta) {
  ENSEMFDET_DCHECK(pos_[static_cast<size_t>(id)] >= 0);
  ENSEMFDET_DCHECK(delta <= 0.0);
  const size_t i = static_cast<size_t>(pos_[static_cast<size_t>(id)]);
  // Same arithmetic as IndexedMinHeap::AddToKey: key ← key + delta.
  heap_[i].key = heap_[i].key + delta;
  SiftUp(i);
}

}  // namespace detail

namespace {

// Resize-to-fit helpers that count growth events: vectors only grow, new
// elements are value-initialized (zero), so the PeelScratch all-zero
// invariants hold over the freshly prepared extent.
template <typename T>
void GrowTo(std::vector<T>* v, int64_t n, int64_t* grew) {
  if (v->size() < static_cast<size_t>(n)) {
    v->resize(static_cast<size_t>(n));
    ++*grew;
  }
}

template <typename T>
void ReserveTo(std::vector<T>* v, int64_t n, int64_t* grew) {
  if (v->capacity() < static_cast<size_t>(n)) {
    v->reserve(static_cast<size_t>(n));
    ++*grew;
  }
}

}  // namespace

int64_t PeelScratch::Prepare(const CsrGraph& graph) {
  const int64_t users = graph.num_users();
  const int64_t merchants = graph.num_merchants();
  const int64_t nodes = graph.num_nodes();
  const int64_t edges = graph.num_edges();
  int64_t grew = 0;
  GrowTo(&user_degree, users, &grew);
  GrowTo(&merchant_degree, merchants, &grew);
  GrowTo(&col_weight, merchants, &grew);
  GrowTo(&edge_mass, edges, &grew);
  GrowTo(&priority, nodes, &grew);
  GrowTo(&edge_alive, edges, &grew);
  GrowTo(&removed, nodes, &grew);
  GrowTo(&gone, nodes, &grew);
  if (heap.EnsureCapacity(nodes)) ++grew;
  GrowTo(&dense_of, nodes, &grew);
  ReserveTo(&dense_to_node, nodes, &grew);
  ReserveTo(&incident_users, users, &grew);
  ReserveTo(&incident_merchants, merchants, &grew);
  ReserveTo(&removal_order, nodes, &grew);
  ReserveTo(&fdet_remaining, edges, &grew);
  ReserveTo(&fdet_next, edges, &grew);
  GrowTo(&in_block_user, users, &grew);
  GrowTo(&in_block_merchant, merchants, &grew);
  grow_events += grew;
  return grew;
}

int64_t PeelScratch::PrepareView(int64_t mask_size) {
  // Residual-view buffers are sized by the member's mask, not the parent
  // graph (a sampled mask is ~S·|E|), and only paid for by callers that
  // actually set a view — a plain full-graph FDET never touches them.
  int64_t grew = 0;
  ReserveTo(&view_mask, mask_size, &grew);
  GrowTo(&view_weight_of, mask_size, &grew);
  GrowTo(&view_user_dense, mask_size, &grew);
  GrowTo(&view_merchant_dense, mask_size, &grew);
  GrowTo(&view_merchant_slot, mask_size, &grew);
  GrowTo(&view_alive, mask_size, &grew);
  GrowTo(&view_alive_m, mask_size, &grew);
  GrowTo(&view_user_mass, mask_size, &grew);
  GrowTo(&view_merchant_mass, mask_size, &grew);
  GrowTo(&view_merchant_user_dense, mask_size, &grew);
  ReserveTo(&member_users, mask_size, &grew);
  ReserveTo(&member_merchants, mask_size, &grew);
  GrowTo(&member_user_begin, mask_size, &grew);
  GrowTo(&member_user_end, mask_size, &grew);
  GrowTo(&member_merchant_begin, mask_size, &grew);
  GrowTo(&member_merchant_end, mask_size, &grew);
  grow_events += grew;
  return grew;
}

CsrPeeler::CsrPeeler(const CsrGraph& graph)
    : graph_(&graph), owned_(std::make_unique<PeelScratch>()) {
  s_ = owned_.get();
  s_->Prepare(graph);
}

CsrPeeler::CsrPeeler(const CsrGraph& graph, PeelScratch* scratch)
    : graph_(&graph), s_(scratch) {
  ENSEMFDET_DCHECK(scratch != nullptr);
  s_->Prepare(graph);
}

void CsrPeeler::SetResidualView(std::span<const EdgeId> mask) {
  const CsrGraph& graph = *graph_;
  PeelScratch& s = *s_;
  s.PrepareView(static_cast<int64_t>(mask.size()));
  s.view_mask.assign(mask.begin(), mask.end());
  const int64_t mask_size = static_cast<int64_t>(s.view_mask.size());

  // Pass 1 — the one pass of parent-array gathers per member: edge
  // weights, member-dense user numbering (the ascending mask groups by
  // user, so users are runs and come out ascending), user rows, and
  // distinct-merchant collection (borrowing the all-zero merchant_degree
  // array for counts).
  s.member_users.clear();
  s.incident_merchants.clear();
  for (int64_t i = 0; i < mask_size; ++i) {
    const EdgeId e = s.view_mask[static_cast<size_t>(i)];
    ENSEMFDET_DCHECK(e >= 0 && e < graph.num_edges());
    ENSEMFDET_DCHECK(i == 0 || s.view_mask[static_cast<size_t>(i - 1)] < e);
    s.view_weight_of[static_cast<size_t>(i)] = graph.edge_weight(e);
    const UserId u = graph.edge_user(e);
    if (s.member_users.empty() || s.member_users.back() != u) {
      ENSEMFDET_DCHECK(s.member_users.empty() || s.member_users.back() < u);
      if (!s.member_users.empty()) {
        s.member_user_end[s.member_users.size() - 1] = i;
      }
      s.member_user_begin[s.member_users.size()] = i;
      s.member_users.push_back(u);
    }
    s.view_user_dense[static_cast<size_t>(i)] =
        static_cast<int32_t>(s.member_users.size() - 1);
    const MerchantId v = graph.edge_merchant(e);
    if (s.merchant_degree[v]++ == 0) s.incident_merchants.push_back(v);
  }
  if (!s.member_users.empty()) {
    s.member_user_end[s.member_users.size() - 1] = mask_size;
  }
  const int64_t num_member_users =
      static_cast<int64_t>(s.member_users.size());
  s.member_user_count = num_member_users;

  // Member-dense merchant numbering (ascending parent order) and
  // counting-sorted merchant rows; `dense_of` holds the parent→member
  // merchant map just long enough to fill the per-slot arrays.
  std::sort(s.incident_merchants.begin(), s.incident_merchants.end());
  s.member_merchants.assign(s.incident_merchants.begin(),
                            s.incident_merchants.end());
  int64_t offset = 0;
  for (size_t j = 0; j < s.member_merchants.size(); ++j) {
    const MerchantId v = s.member_merchants[j];
    s.dense_of[v] = static_cast<int32_t>(j);
    s.member_merchant_begin[j] = offset;
    s.member_merchant_end[j] = offset;  // fill cursor, ends at begin + count
    offset += s.merchant_degree[v];
  }
  for (int64_t i = 0; i < mask_size; ++i) {
    const MerchantId v =
        graph.edge_merchant(s.view_mask[static_cast<size_t>(i)]);
    const int32_t j = s.dense_of[v];
    const int64_t slot = s.member_merchant_end[j]++;
    s.view_merchant_dense[static_cast<size_t>(i)] =
        static_cast<int32_t>(num_member_users + j);
    s.view_merchant_slot[static_cast<size_t>(i)] = slot;
    s.view_merchant_user_dense[static_cast<size_t>(slot)] =
        s.view_user_dense[static_cast<size_t>(i)];
  }
  for (MerchantId v : s.member_merchants) s.merchant_degree[v] = 0;
}

PeelResult CsrPeeler::PeelAliveInView(const DensityConfig& config,
                                      double weight_scale, bool keep_trace) {
  PeelResult result;
  PeelScratch& s = *s_;
  const int64_t mask_size = static_cast<int64_t>(s.view_mask.size());
  if (mask_size == 0) return result;
  const int64_t num_users = s.member_user_count;  // member-space Uₘ

  s.incident_users.clear();
  s.incident_merchants.clear();

  const simd::KernelTable& kern = simd::ActiveKernels();
  const uint8_t* alive_map = s.view_alive.data();

  // Streaming initialization over the slot-aligned view, entirely in
  // member-dense id space: the alive slots of the ascending mask ARE the
  // residual list in ascending order, so every first-touch and
  // accumulation below happens in exactly the order the list-driven Peel
  // (and the seed peeler) performs it, and the member numbering is
  // monotone in parent id, so all id-based tie-breaks agree too. The
  // alive-bitmap scan is the dispatched kernel (integer — exact at every
  // ISA level); the per-slot work stays scalar and in slot order.
  for (int64_t i = kern.next_alive(alive_map, mask_size, 0); i < mask_size;
       i = kern.next_alive(alive_map, mask_size, i + 1)) {
    const int32_t mu = s.view_user_dense[static_cast<size_t>(i)];
    const int32_t mj = s.view_merchant_dense[static_cast<size_t>(i)] -
                       static_cast<int32_t>(num_users);
    if (s.user_degree[mu]++ == 0) {
      s.incident_users.push_back(static_cast<UserId>(mu));
      s.priority[mu] = 0.0;
    }
    if (s.merchant_degree[mj]++ == 0) {
      s.priority[static_cast<size_t>(num_users + mj)] = 0.0;
    }
  }
  // Incident merchants, ascending: a compact scan of the member merchant
  // range beats sorting a collected list (degrees are all-zero outside
  // the alive set).
  const int64_t num_member_merchants =
      static_cast<int64_t>(s.member_merchants.size());
  for (int64_t mj = 0; mj < num_member_merchants; ++mj) {
    if (s.merchant_degree[static_cast<size_t>(mj)] > 0) {
      s.incident_merchants.push_back(static_cast<MerchantId>(mj));
      s.col_weight[static_cast<size_t>(mj)] = MerchantColumnWeight(
          static_cast<double>(s.merchant_degree[static_cast<size_t>(mj)]),
          config);
    }
  }
  if (s.incident_users.empty() && s.incident_merchants.empty()) {
    return result;  // no alive edges
  }

  // Edge masses: the dispatched gather kernel fills view_user_mass for
  // EVERY slot (branch-free; dead-slot outputs are garbage nothing
  // reads — every view array is fully populated by SetResidualView and
  // col_weight holds only finite values, so the dead lanes are safe to
  // compute). Each lane is the same two IEEE multiplies as the scalar
  // expression, elementwise — bit-exact at every ISA level. The
  // accumulation pass below then runs scalar, in ascending slot order,
  // so `mass` and the priorities sum in exactly the seed's order.
  kern.gather_slot_mass(s.view_weight_of.data(), s.view_merchant_dense.data(),
                        static_cast<int32_t>(num_users), s.col_weight.data(),
                        weight_scale, mask_size, s.view_user_mass.data());
  double mass = 0.0;
  for (int64_t i = kern.next_alive(alive_map, mask_size, 0); i < mask_size;
       i = kern.next_alive(alive_map, mask_size, i + 1)) {
    const int32_t mu = s.view_user_dense[static_cast<size_t>(i)];
    const int32_t packed_mv = s.view_merchant_dense[static_cast<size_t>(i)];
    const double w = s.view_user_mass[static_cast<size_t>(i)];
    s.view_merchant_mass[static_cast<size_t>(
        s.view_merchant_slot[static_cast<size_t>(i)])] = w;
    s.priority[static_cast<size_t>(mu)] += w;
    s.priority[static_cast<size_t>(packed_mv)] += w;
    mass += w;
  }

  // Heap over member packed ids (users then merchants, each ascending —
  // monotone in parent packed id, so (key, id) ties break exactly like
  // the seed). PopMin is a pure function of that total order, so bulk
  // Floyd build yields the exact pop sequence of one-by-one pushes.
  ENSEMFDET_DCHECK(s.heap.empty());
  for (UserId mu : s.incident_users) {
    s.heap.Append(mu, s.priority[mu]);
    s.removed[mu] = 0;
  }
  for (MerchantId mj : s.incident_merchants) {
    const int64_t id = num_users + mj;
    s.heap.Append(id, s.priority[static_cast<size_t>(id)]);
    s.removed[static_cast<size_t>(id)] = 0;
  }
  s.heap.Heapify();
  int64_t alive = s.heap.size();
  const int64_t peel_steps = alive;

  s.removal_order.clear();
  if (keep_trace) result.trace.reserve(static_cast<size_t>(peel_steps));

  double best_phi = -1.0;
  int64_t best_prefix = 0;  // number of removals before the best state

  for (int64_t t = 0; t < peel_steps; ++t) {
    const double phi =
        alive > 0 ? std::max(0.0, mass) / static_cast<double>(alive) : 0.0;
    if (keep_trace) result.trace.push_back(phi);
    if (phi > best_phi) {
      best_phi = phi;
      best_prefix = t;
    }

    // Mass exhaustion: every mass update subtracts a nonnegative edge
    // mass, so `mass` is non-increasing and once ≤ 0 every future φ is
    // exactly 0 — with the strict `>` above, best_prefix can never move
    // again. The remaining pops are a zero-key tail; skip them (and bulk-
    // clear the heap) unless the caller wants the full trace.
    if (!keep_trace && mass <= 0.0) break;

    const int64_t victim = s.heap.PopMin();
    s.removed[static_cast<size_t>(victim)] = 1;
    --alive;
    s.removal_order.push_back(victim);

    if (victim < num_users) {
      for (int64_t idx = s.member_user_begin[victim];
           idx < s.member_user_end[victim]; ++idx) {
        if (!s.view_alive[static_cast<size_t>(idx)]) continue;
        const int32_t other = s.view_merchant_dense[static_cast<size_t>(idx)];
        if (s.removed[static_cast<size_t>(other)]) continue;  // edge dead
        const double w = s.view_user_mass[static_cast<size_t>(idx)];
        mass -= w;
        s.heap.AddTo(other, -w);
      }
    } else {
      const int64_t mj = victim - num_users;
      for (int64_t idx = s.member_merchant_begin[mj];
           idx < s.member_merchant_end[mj]; ++idx) {
        if (!s.view_alive_m[static_cast<size_t>(idx)]) continue;
        const int32_t mu =
            s.view_merchant_user_dense[static_cast<size_t>(idx)];
        if (s.removed[static_cast<size_t>(mu)]) continue;
        const double w = s.view_merchant_mass[static_cast<size_t>(idx)];
        mass -= w;
        s.heap.AddTo(mu, -w);
      }
    }
  }

  if (!s.heap.empty()) s.heap.Clear();  // mass-exhausted early exit

  // Extraction in member ids (ascending ⇒ parent-ascending after the
  // caller's translation); `gone` is all-zero between calls.
  for (int64_t t = 0; t < best_prefix; ++t) {
    s.gone[static_cast<size_t>(s.removal_order[static_cast<size_t>(t)])] = 1;
  }
  for (UserId mu : s.incident_users) {
    if (!s.gone[mu]) result.users.push_back(mu);
  }
  for (MerchantId mj : s.incident_merchants) {
    if (!s.gone[static_cast<size_t>(num_users + mj)]) {
      result.merchants.push_back(mj);
    }
  }
  result.score = best_phi;
  if (keep_trace) {
    // Translate member packed ids to parent packed ids for the contract.
    result.removal_order.reserve(s.removal_order.size());
    for (int64_t id : s.removal_order) {
      result.removal_order.push_back(
          id < num_users
              ? static_cast<int64_t>(s.member_users[static_cast<size_t>(id)])
              : graph_->num_users() +
                    static_cast<int64_t>(s.member_merchants[static_cast<size_t>(
                        id - num_users)]));
    }
  }

  // Restore the arena invariants (degrees and gone prefix zero, heap
  // empty); view_alive stays with the caller.
  for (UserId mu : s.incident_users) s.user_degree[mu] = 0;
  for (MerchantId mj : s.incident_merchants) s.merchant_degree[mj] = 0;
  for (int64_t t = 0; t < best_prefix; ++t) {
    s.gone[static_cast<size_t>(s.removal_order[static_cast<size_t>(t)])] = 0;
  }
  ENSEMFDET_DCHECK(s.heap.empty());
  return result;
}

PeelResult CsrPeeler::Peel(std::span<const EdgeId> residual_edges,
                           const DensityConfig& config, PeelNodeScope scope,
                           double weight_scale, bool keep_trace) {
  PeelResult result;
  const CsrGraph& graph = *graph_;
  PeelScratch& s = *s_;
  const int64_t num_users = graph.num_users();
  const int64_t num_merchants = graph.num_merchants();
  const int64_t total_nodes = num_users + num_merchants;
  if (total_nodes == 0 || residual_edges.empty()) return result;

  s.incident_users.clear();
  s.incident_merchants.clear();

  if (scope == PeelNodeScope::kIncidentOnly) {
    // Sparse initialization: O(|residual|) instead of O(|U| + |V|). The
    // degree arrays are all-zero between calls (restored on exit), so a
    // first touch identifies each incident node exactly once; users come
    // out ascending for free because edge_user is nondecreasing over the
    // canonical (ascending) edge order.
    for (EdgeId e : residual_edges) {
      ENSEMFDET_DCHECK(e >= 0 && e < graph.num_edges());
      s.edge_alive[static_cast<size_t>(e)] = 1;
      const UserId u = graph.edge_user(e);
      const MerchantId v = graph.edge_merchant(e);
      if (s.user_degree[u]++ == 0) {
        ENSEMFDET_DCHECK(s.incident_users.empty() ||
                         s.incident_users.back() < u);
        s.incident_users.push_back(u);
        s.priority[u] = 0.0;
      }
      if (s.merchant_degree[v]++ == 0) {
        s.incident_merchants.push_back(v);
        s.priority[static_cast<size_t>(num_users) + v] = 0.0;
      }
    }
    std::sort(s.incident_merchants.begin(), s.incident_merchants.end());
    // Merchant column weights from residual degrees — exactly the
    // entry-time degrees PeelDensestBlock sees on the compacted subgraph.
    for (MerchantId v : s.incident_merchants) {
      s.col_weight[v] =
          MerchantColumnWeight(static_cast<double>(s.merchant_degree[v]),
                               config);
    }
  } else {
    // kAllNodes: every node participates, isolated ones included; the
    // incident lists therefore enumerate the whole graph.
    std::fill(s.user_degree.begin(),
              s.user_degree.begin() + static_cast<size_t>(num_users), 0);
    std::fill(s.merchant_degree.begin(),
              s.merchant_degree.begin() + static_cast<size_t>(num_merchants),
              0);
    for (EdgeId e : residual_edges) {
      ENSEMFDET_DCHECK(e >= 0 && e < graph.num_edges());
      s.edge_alive[static_cast<size_t>(e)] = 1;
      ++s.user_degree[graph.edge_user(e)];
      ++s.merchant_degree[graph.edge_merchant(e)];
    }
    for (int64_t v = 0; v < num_merchants; ++v) {
      s.col_weight[static_cast<size_t>(v)] = MerchantColumnWeight(
          static_cast<double>(s.merchant_degree[static_cast<size_t>(v)]),
          config);
    }
    std::fill(s.priority.begin(),
              s.priority.begin() + static_cast<size_t>(total_nodes), 0.0);
    for (int64_t u = 0; u < num_users; ++u) {
      s.incident_users.push_back(static_cast<UserId>(u));
    }
    for (int64_t v = 0; v < num_merchants; ++v) {
      s.incident_merchants.push_back(static_cast<MerchantId>(v));
    }
  }

  // Per-edge suspiciousness mass plus node priorities and total mass,
  // accumulated in ascending-EdgeId order (== the compacted subgraph's
  // edge-id order) so every floating-point sum matches the adjacency-list
  // peeler bit for bit. `weight * scale` with scale == 1.0 is exact, so
  // the unscaled path is unchanged bitwise.
  double mass = 0.0;
  for (EdgeId e : residual_edges) {
    const double w = (graph.edge_weight(e) * weight_scale) *
                     s.col_weight[graph.edge_merchant(e)];
    s.edge_mass[static_cast<size_t>(e)] = w;
    s.priority[graph.edge_user(e)] += w;
    s.priority[static_cast<size_t>(num_users) + graph.edge_merchant(e)] += w;
    mass += w;
  }

  // Heap over parent packed node ids via per-peel dense slots: slots are
  // handed out in ascending packed order (users then merchants), so
  // (key, slot) ties break exactly like (key, node) — the seed tie-break
  // — while the sift chain works in residual-sized arrays.
  ENSEMFDET_DCHECK(s.heap.empty());
  s.dense_to_node.clear();
  for (UserId u : s.incident_users) {
    const int64_t dense = static_cast<int64_t>(s.dense_to_node.size());
    s.dense_of[u] = static_cast<int32_t>(dense);
    s.dense_to_node.push_back(u);
    s.heap.Append(dense, s.priority[u]);
    s.removed[u] = 0;
  }
  for (MerchantId v : s.incident_merchants) {
    const int64_t id = num_users + v;
    const int64_t dense = static_cast<int64_t>(s.dense_to_node.size());
    s.dense_of[static_cast<size_t>(id)] = static_cast<int32_t>(dense);
    s.dense_to_node.push_back(id);
    s.heap.Append(dense, s.priority[static_cast<size_t>(id)]);
    s.removed[static_cast<size_t>(id)] = 0;
  }
  s.heap.Heapify();
  int64_t alive = s.heap.size();
  const int64_t peel_steps = alive;

  s.removal_order.clear();
  if (keep_trace) result.trace.reserve(static_cast<size_t>(peel_steps));

  double best_phi = -1.0;
  int64_t best_prefix = 0;  // number of removals before the best state

  for (int64_t t = 0; t < peel_steps; ++t) {
    const double phi =
        alive > 0 ? std::max(0.0, mass) / static_cast<double>(alive) : 0.0;
    if (keep_trace) result.trace.push_back(phi);
    if (phi > best_phi) {
      best_phi = phi;
      best_prefix = t;
    }

    // Mass exhaustion (see PeelAliveInView): best_prefix can never move
    // once mass ≤ 0 — skip the zero-key tail unless tracing.
    if (!keep_trace && mass <= 0.0) break;

    const int64_t victim =
        s.dense_to_node[static_cast<size_t>(s.heap.PopMin())];
    s.removed[static_cast<size_t>(victim)] = 1;
    --alive;
    s.removal_order.push_back(victim);

    if (victim < num_users) {
      const UserId u = static_cast<UserId>(victim);
      const EdgeId row_begin = graph.user_edge_begin(u);
      const auto neighbors = graph.user_neighbors(u);
      for (size_t k = 0; k < neighbors.size(); ++k) {
        const EdgeId e = row_begin + static_cast<EdgeId>(k);
        if (!s.edge_alive[static_cast<size_t>(e)]) continue;
        const int64_t other = num_users + neighbors[k];
        if (s.removed[static_cast<size_t>(other)]) continue;  // edge dead
        const double w = s.edge_mass[static_cast<size_t>(e)];
        mass -= w;
        s.heap.AddTo(s.dense_of[static_cast<size_t>(other)], -w);
      }
    } else {
      const MerchantId v = static_cast<MerchantId>(victim - num_users);
      const auto edge_ids = graph.merchant_edge_ids(v);
      const auto neighbors = graph.merchant_neighbors(v);
      for (size_t k = 0; k < neighbors.size(); ++k) {
        const EdgeId e = edge_ids[k];
        if (!s.edge_alive[static_cast<size_t>(e)]) continue;
        const UserId u = neighbors[k];
        if (s.removed[u]) continue;
        const double w = s.edge_mass[static_cast<size_t>(e)];
        mass -= w;
        s.heap.AddTo(s.dense_of[u], -w);
      }
    }
  }

  if (!s.heap.empty()) s.heap.Clear();  // mass-exhausted early exit

  // The best block is every participating node not removed in the first
  // `best_prefix` deletions. `gone` is all-zero between calls; stamp the
  // prefix, extract (incident lists are ascending), then clear the same
  // prefix.
  for (int64_t t = 0; t < best_prefix; ++t) {
    s.gone[static_cast<size_t>(s.removal_order[static_cast<size_t>(t)])] = 1;
  }
  for (UserId u : s.incident_users) {
    if (!s.gone[u]) result.users.push_back(u);
  }
  for (MerchantId v : s.incident_merchants) {
    if (!s.gone[static_cast<size_t>(num_users) + v]) {
      result.merchants.push_back(v);
    }
  }
  result.score = best_phi;
  if (keep_trace) result.removal_order = s.removal_order;

  // Restore the arena invariants: alive mask and residual degrees zero,
  // gone prefix cleared, heap empty — ready for reuse.
  for (EdgeId e : residual_edges) s.edge_alive[static_cast<size_t>(e)] = 0;
  for (UserId u : s.incident_users) s.user_degree[u] = 0;
  for (MerchantId v : s.incident_merchants) s.merchant_degree[v] = 0;
  for (int64_t t = 0; t < best_prefix; ++t) {
    s.gone[static_cast<size_t>(s.removal_order[static_cast<size_t>(t)])] = 0;
  }
  ENSEMFDET_DCHECK(s.heap.empty());
  return result;
}

PeelResult PeelDensestBlockCsr(const CsrGraph& graph,
                               const DensityConfig& config, bool keep_trace) {
  CsrPeeler peeler(graph);
  std::vector<EdgeId> all(static_cast<size_t>(graph.num_edges()));
  std::iota(all.begin(), all.end(), EdgeId{0});
  return peeler.Peel(all, config, PeelNodeScope::kAllNodes,
                     /*weight_scale=*/1.0, keep_trace);
}

}  // namespace ensemfdet
