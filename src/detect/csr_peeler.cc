#include "detect/csr_peeler.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace ensemfdet {

namespace detail {

PeelHeap::PeelHeap(int64_t capacity)
    : pos_(static_cast<size_t>(capacity), -1) {
  heap_.reserve(static_cast<size_t>(capacity));
}

void PeelHeap::Place(size_t i, Entry e) {
  heap_[i] = e;
  pos_[static_cast<size_t>(e.id)] = static_cast<int64_t>(i);
}

void PeelHeap::Append(int64_t id, double key) {
  ENSEMFDET_DCHECK(id >= 0 && id < static_cast<int64_t>(pos_.size()));
  ENSEMFDET_DCHECK(pos_[static_cast<size_t>(id)] < 0);
  heap_.push_back({key, id});
  pos_[static_cast<size_t>(id)] =
      static_cast<int64_t>(heap_.size()) - 1;
}

void PeelHeap::Heapify() {
  if (heap_.size() < 2) return;
  // Floyd: sift down every internal node, last first.
  for (size_t i = heap_.size() / 2; i-- > 0;) {
    SiftDown(i);
  }
}

void PeelHeap::SiftUp(size_t i) {
  Entry e = heap_[i];
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!Less(e, heap_[parent])) break;
    Place(i, heap_[parent]);
    i = parent;
  }
  Place(i, e);
}

void PeelHeap::SiftDown(size_t i) {
  Entry e = heap_[i];
  const size_t n = heap_.size();
  for (;;) {
    size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && Less(heap_[child + 1], heap_[child])) ++child;
    if (!Less(heap_[child], e)) break;
    Place(i, heap_[child]);
    i = child;
  }
  Place(i, e);
}

int64_t PeelHeap::PopMin() {
  ENSEMFDET_CHECK(!heap_.empty());
  const int64_t id = heap_[0].id;
  pos_[static_cast<size_t>(id)] = -1;
  Entry last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    Place(0, last);
    SiftDown(0);
  }
  return id;
}

void PeelHeap::AddTo(int64_t id, double delta) {
  ENSEMFDET_DCHECK(pos_[static_cast<size_t>(id)] >= 0);
  ENSEMFDET_DCHECK(delta <= 0.0);
  const size_t i = static_cast<size_t>(pos_[static_cast<size_t>(id)]);
  // Same arithmetic as IndexedMinHeap::AddToKey: key ← key + delta.
  heap_[i].key = heap_[i].key + delta;
  SiftUp(i);
}

}  // namespace detail

CsrPeeler::CsrPeeler(const CsrGraph& graph)
    : graph_(&graph),
      user_degree_(static_cast<size_t>(graph.num_users()), 0),
      merchant_degree_(static_cast<size_t>(graph.num_merchants()), 0),
      col_weight_(static_cast<size_t>(graph.num_merchants()), 0.0),
      edge_mass_(static_cast<size_t>(graph.num_edges()), 0.0),
      priority_(static_cast<size_t>(graph.num_nodes()), 0.0),
      edge_alive_(static_cast<size_t>(graph.num_edges()), 0),
      removed_(static_cast<size_t>(graph.num_nodes()), 0),
      gone_(static_cast<size_t>(graph.num_nodes()), 0),
      heap_(graph.num_nodes()) {}

PeelResult CsrPeeler::Peel(std::span<const EdgeId> residual_edges,
                           const DensityConfig& config, PeelNodeScope scope,
                           bool keep_trace) {
  PeelResult result;
  const CsrGraph& graph = *graph_;
  const int64_t num_users = graph.num_users();
  const int64_t num_merchants = graph.num_merchants();
  const int64_t total_nodes = num_users + num_merchants;
  if (total_nodes == 0 || residual_edges.empty()) return result;

  // Residual degrees + alive-edge mask.
  std::fill(user_degree_.begin(), user_degree_.end(), 0);
  std::fill(merchant_degree_.begin(), merchant_degree_.end(), 0);
  for (EdgeId e : residual_edges) {
    ENSEMFDET_DCHECK(e >= 0 && e < graph.num_edges());
    edge_alive_[static_cast<size_t>(e)] = 1;
    ++user_degree_[graph.edge_user(e)];
    ++merchant_degree_[graph.edge_merchant(e)];
  }

  // Merchant column weights from residual degrees — exactly the
  // entry-time degrees PeelDensestBlock sees on the compacted subgraph.
  for (int64_t v = 0; v < num_merchants; ++v) {
    col_weight_[static_cast<size_t>(v)] = MerchantColumnWeight(
        static_cast<double>(merchant_degree_[static_cast<size_t>(v)]),
        config);
  }

  // Per-edge suspiciousness mass, hoisted out of the pop loop: the same
  // weight·col_weight products the adjacency peeler recomputes per visit,
  // computed once each (identical values, so parity is unaffected).
  for (EdgeId e : residual_edges) {
    edge_mass_[static_cast<size_t>(e)] =
        graph.edge_weight(e) * col_weight_[graph.edge_merchant(e)];
  }

  // Node priorities and total mass, accumulated in ascending-EdgeId order
  // (== the compacted subgraph's edge-id order) so every floating-point
  // sum matches the adjacency-list peeler bit for bit.
  std::fill(priority_.begin(), priority_.end(), 0.0);
  double mass = 0.0;
  for (EdgeId e : residual_edges) {
    const double w = edge_mass_[static_cast<size_t>(e)];
    priority_[graph.edge_user(e)] += w;
    priority_[static_cast<size_t>(num_users) + graph.edge_merchant(e)] += w;
    mass += w;
  }

  // Populate the heap with every participating node. PopMin is a pure
  // function of the (key, smaller-id) total order, so bulk Floyd build
  // yields the exact pop sequence of the seed's one-by-one pushes.
  ENSEMFDET_DCHECK(heap_.empty());
  int64_t alive = 0;
  for (int64_t id = 0; id < total_nodes; ++id) {
    const bool incident =
        id < num_users
            ? user_degree_[static_cast<size_t>(id)] > 0
            : merchant_degree_[static_cast<size_t>(id - num_users)] > 0;
    if (scope == PeelNodeScope::kIncidentOnly && !incident) {
      removed_[static_cast<size_t>(id)] = 1;  // unreachable, but tidy
      continue;
    }
    heap_.Append(id, priority_[static_cast<size_t>(id)]);
    removed_[static_cast<size_t>(id)] = 0;
    ++alive;
  }
  heap_.Heapify();
  const int64_t peel_steps = alive;

  std::vector<int64_t> removal_order;
  removal_order.reserve(static_cast<size_t>(peel_steps));
  if (keep_trace) result.trace.reserve(static_cast<size_t>(peel_steps));

  double best_phi = -1.0;
  int64_t best_prefix = 0;  // number of removals before the best state

  for (int64_t t = 0; t < peel_steps; ++t) {
    const double phi =
        alive > 0 ? std::max(0.0, mass) / static_cast<double>(alive) : 0.0;
    if (keep_trace) result.trace.push_back(phi);
    if (phi > best_phi) {
      best_phi = phi;
      best_prefix = t;
    }

    const int64_t victim = heap_.PopMin();
    removed_[static_cast<size_t>(victim)] = 1;
    --alive;
    removal_order.push_back(victim);

    if (victim < num_users) {
      const UserId u = static_cast<UserId>(victim);
      const EdgeId row_begin = graph.user_edge_begin(u);
      const auto neighbors = graph.user_neighbors(u);
      for (size_t k = 0; k < neighbors.size(); ++k) {
        const EdgeId e = row_begin + static_cast<EdgeId>(k);
        if (!edge_alive_[static_cast<size_t>(e)]) continue;
        const int64_t other = num_users + neighbors[k];
        if (removed_[static_cast<size_t>(other)]) continue;  // edge dead
        const double w = edge_mass_[static_cast<size_t>(e)];
        mass -= w;
        heap_.AddTo(other, -w);
      }
    } else {
      const MerchantId v = static_cast<MerchantId>(victim - num_users);
      const auto edge_ids = graph.merchant_edge_ids(v);
      const auto neighbors = graph.merchant_neighbors(v);
      for (size_t k = 0; k < neighbors.size(); ++k) {
        const EdgeId e = edge_ids[k];
        if (!edge_alive_[static_cast<size_t>(e)]) continue;
        const UserId u = neighbors[k];
        if (removed_[u]) continue;
        const double w = edge_mass_[static_cast<size_t>(e)];
        mass -= w;
        heap_.AddTo(u, -w);
      }
    }
  }

  // The best block is every participating node not removed in the first
  // `best_prefix` deletions.
  std::fill(gone_.begin(), gone_.end(), 0);
  for (int64_t t = 0; t < best_prefix; ++t) {
    gone_[static_cast<size_t>(removal_order[static_cast<size_t>(t)])] = 1;
  }
  for (int64_t u = 0; u < num_users; ++u) {
    const bool participated = scope == PeelNodeScope::kAllNodes ||
                              user_degree_[static_cast<size_t>(u)] > 0;
    if (participated && !gone_[static_cast<size_t>(u)]) {
      result.users.push_back(static_cast<UserId>(u));
    }
  }
  for (int64_t v = 0; v < num_merchants; ++v) {
    const bool participated = scope == PeelNodeScope::kAllNodes ||
                              merchant_degree_[static_cast<size_t>(v)] > 0;
    if (participated && !gone_[static_cast<size_t>(num_users + v)]) {
      result.merchants.push_back(static_cast<MerchantId>(v));
    }
  }
  result.score = best_phi;
  if (keep_trace) result.removal_order = std::move(removal_order);

  // Restore the invariant: alive mask zero, heap empty, ready for reuse.
  for (EdgeId e : residual_edges) edge_alive_[static_cast<size_t>(e)] = 0;
  ENSEMFDET_DCHECK(heap_.empty());
  return result;
}

PeelResult PeelDensestBlockCsr(const CsrGraph& graph,
                               const DensityConfig& config, bool keep_trace) {
  CsrPeeler peeler(graph);
  std::vector<EdgeId> all(static_cast<size_t>(graph.num_edges()));
  std::iota(all.begin(), all.end(), EdgeId{0});
  return peeler.Peel(all, config, PeelNodeScope::kAllNodes, keep_trace);
}

}  // namespace ensemfdet
