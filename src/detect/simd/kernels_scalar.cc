// The scalar kernel table: the parity referee. These loops are the
// definition of correct — every vector table is cross-checked against
// them (tests/simd_kernel_test.cc), and gather_slot_mass here uses the
// exact expression the peeling hot loop used before vectorization.
#include "detect/simd/kernels.h"

namespace ensemfdet {
namespace simd {

namespace {

void ScalarGatherSlotMass(const double* weight, const int32_t* merchant_packed,
                          int32_t packed_base, const double* col_weight,
                          double scale, int64_t n, double* out) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] =
        (weight[i] * scale) * col_weight[merchant_packed[i] - packed_base];
  }
}

int64_t ScalarNextAlive(const uint8_t* alive, int64_t n, int64_t from) {
  int64_t i = from < 0 ? 0 : from;
  for (; i < n; ++i) {
    if (alive[i] != 0) return i;
  }
  return n;
}

int64_t ScalarCountAlive(const uint8_t* alive, int64_t n) {
  int64_t count = 0;
  for (int64_t i = 0; i < n; ++i) {
    count += (alive[i] != 0) ? 1 : 0;
  }
  return count;
}

double ScalarMaskedSum(const double* values, const uint8_t* alive, int64_t n) {
  double sum = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    if (alive[i] != 0) sum += values[i];
  }
  return sum;
}

}  // namespace

const KernelTable& ScalarKernels() {
  static const KernelTable table = {
      ScalarGatherSlotMass, ScalarNextAlive,    ScalarCountAlive,
      ScalarMaskedSum,      IsaLevel::kScalar,
  };
  return table;
}

}  // namespace simd
}  // namespace ensemfdet
