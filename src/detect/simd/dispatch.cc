#include "detect/simd/kernels.h"

namespace ensemfdet {
namespace simd {

const KernelTable& KernelsFor(IsaLevel level) {
  if (level >= IsaLevel::kAvx512) {
    if (const KernelTable* t = Avx512KernelsOrNull()) return *t;
  }
  if (level >= IsaLevel::kAvx2) {
    if (const KernelTable* t = Avx2KernelsOrNull()) return *t;
  }
  return ScalarKernels();
}

const KernelTable& ActiveKernels() { return KernelsFor(ActiveIsaLevel()); }

}  // namespace simd
}  // namespace ensemfdet
