// SIMD kernels for the residual-view peeling hot loops (DESIGN.md
// §"SIMD kernels & dispatch").
//
// Every kernel operates on CsrPeeler's slot-aligned residual-view arrays
// (PeelScratch::view_*): flat, contiguous, member-dense — exactly the
// shape SIMD rewards. The kernels come in per-ISA tables selected at
// runtime (isa.h); the scalar table is the parity referee every other
// table is cross-checked against (tests/simd_kernel_test.cc).
//
// FP contract, kernel by kernel:
//   * gather_slot_mass performs the identical two IEEE multiplications
//     per element as the scalar loop it replaces ((w · scale) · colw, no
//     FMA contraction), elementwise and independently — bit-exact at
//     every ISA level, which is why the peeling hot path can deploy it
//     without weakening the ensemble's bit-parity gates.
//   * next_alive / count_alive are integer — trivially exact.
//   * masked_sum is the one *reassociating* kernel (vector accumulator
//     lanes change the addition order). Bit-parity is impossible by
//     construction, so its consumers gate on vote-identity against the
//     scalar path instead (the parity-referee rule); the in-order
//     peeling mass accumulation deliberately does NOT use it.
#ifndef ENSEMFDET_DETECT_SIMD_KERNELS_H_
#define ENSEMFDET_DETECT_SIMD_KERNELS_H_

#include <cstdint>

#include "detect/simd/isa.h"

namespace ensemfdet {
namespace simd {

/// One ISA level's kernel implementations. Function pointers rather than
/// virtuals: the table is a POD resolved once, calls are direct through
/// a register, and the scalar table can be named statically by tests.
struct KernelTable {
  /// Dense weight gather over the slot-aligned view:
  ///   out[i] = (weight[i] * scale) * col_weight[merchant_packed[i] - packed_base]
  /// for every i in [0, n) — alive or not; dead-slot outputs are garbage
  /// the peel loops never read, and computing unconditionally keeps the
  /// kernel branch-free. Two separate multiplications per element in
  /// slot order, bit-identical to the scalar expression.
  void (*gather_slot_mass)(const double* weight,
                           const int32_t* merchant_packed,
                           int32_t packed_base, const double* col_weight,
                           double scale, int64_t n, double* out);

  /// First index >= from with alive[i] != 0, or n when none remains.
  /// The alive-bitmap scan of the peel init and block-removal loops.
  int64_t (*next_alive)(const uint8_t* alive, int64_t n, int64_t from);

  /// Number of nonzero bytes in alive[0, n) (bitmap popcount).
  int64_t (*count_alive)(const uint8_t* alive, int64_t n);

  /// Sum of values[i] over alive slots. REASSOCIATING above scalar level
  /// (vector lanes) — see the FP contract above; consumers gate on
  /// vote-identity, never bit-parity.
  double (*masked_sum)(const double* values, const uint8_t* alive,
                       int64_t n);

  IsaLevel level;
};

/// The table for `level`, falling back to the highest available table at
/// or below it (a binary built without AVX-512 support answers the AVX2
/// table for kAvx512, and so on down to scalar — which always exists).
const KernelTable& KernelsFor(IsaLevel level);

/// The table for ActiveIsaLevel() — what the peeling hot loops call.
const KernelTable& ActiveKernels();

/// Null when the corresponding TU was compiled without target support —
/// the build ceiling DetectedIsaLevel() clamps to. (Defined in the
/// per-ISA TUs; exposed here for the dispatcher and isa-report.)
const KernelTable* Avx2KernelsOrNull();
const KernelTable* Avx512KernelsOrNull();
const KernelTable& ScalarKernels();

}  // namespace simd
}  // namespace ensemfdet

#endif  // ENSEMFDET_DETECT_SIMD_KERNELS_H_
