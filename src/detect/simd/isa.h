// Runtime ISA selection for the SIMD peeling kernels (detect/simd/).
//
// Three levels exist: a scalar referee (always built, always correct —
// every other level is tested against it), an AVX2 level, and an
// AVX-512 level. Which level actually runs is decided once at startup
// from three inputs, and the decision is the *minimum* of all three:
//
//   1. what the CPU reports (CPUID, via __builtin_cpu_supports),
//   2. what this binary was built with (a toolchain without -mavx2 /
//      -mavx512f support compiles the corresponding kernel TU empty),
//   3. what ENSEMFDET_FORCE_ISA requests (`scalar` | `avx2` | `avx512`).
//
// The FORCE_ISA contract (DESIGN.md §"SIMD kernels & dispatch"): forcing
// *down* (e.g. `scalar` on an AVX-512 machine) is always honored — this
// is how the CI matrix proves every dispatch path on whatever runner it
// lands on. Forcing *up* past what the CPU or build supports is clamped
// with a warning rather than crashing on SIGILL; CI jobs that force AVX2
// therefore guard with a CPUID check step (`ensemfdet_cli isa-report`)
// and skip cleanly on incapable runners instead of passing vacuously.
//
// Tests and benches can move the active level at runtime (within the
// detected/built ceiling) via SetActiveIsaLevel / ScopedIsaLevel, which
// is what lets one process cross-check every kernel on every available
// level and gate vote-identity between dispatch levels.
#ifndef ENSEMFDET_DETECT_SIMD_ISA_H_
#define ENSEMFDET_DETECT_SIMD_ISA_H_

#include <string_view>

namespace ensemfdet {
namespace simd {

enum class IsaLevel : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// "scalar" / "avx2" / "avx512".
const char* IsaLevelName(IsaLevel level);

/// Parses an ENSEMFDET_FORCE_ISA value; false on anything unknown.
bool ParseIsaLevel(std::string_view name, IsaLevel* out);

/// Highest level this CPU supports (CPUID), regardless of what was built.
IsaLevel CpuIsaLevel();

/// Highest level that can actually run: min(CPU support, kernels compiled
/// into this binary). The dispatch ceiling.
IsaLevel DetectedIsaLevel();

/// The level the dispatcher currently hands out. Resolved once at first
/// use as min(DetectedIsaLevel, ENSEMFDET_FORCE_ISA if set and valid);
/// movable afterwards via SetActiveIsaLevel.
IsaLevel ActiveIsaLevel();

/// Moves the active level (tests/benches). Returns false — leaving the
/// active level unchanged — when `level` exceeds DetectedIsaLevel().
bool SetActiveIsaLevel(IsaLevel level);

/// True when ENSEMFDET_FORCE_ISA was set to a parseable level at startup.
bool IsaForcedByEnv();

/// RAII active-level override for tests and the per-ISA bench rows.
/// `ok()` is false (and the level is untouched) if the request exceeded
/// the detected ceiling.
class ScopedIsaLevel {
 public:
  explicit ScopedIsaLevel(IsaLevel level);
  ~ScopedIsaLevel();
  ScopedIsaLevel(const ScopedIsaLevel&) = delete;
  ScopedIsaLevel& operator=(const ScopedIsaLevel&) = delete;
  bool ok() const { return ok_; }

 private:
  IsaLevel prev_;
  bool ok_;
};

}  // namespace simd
}  // namespace ensemfdet

#endif  // ENSEMFDET_DETECT_SIMD_ISA_H_
