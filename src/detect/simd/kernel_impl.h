// Generic kernel bodies, templated over a trait struct (simd_traits.h).
// Each per-ISA TU instantiates these with its own traits and per-file
// -m flags; the bodies themselves stay ISA-agnostic. Tails shorter than
// a vector/block run the same scalar expressions the scalar referee
// uses, so the bit-exact kernels stay bit-exact at every size.
#ifndef ENSEMFDET_DETECT_SIMD_KERNEL_IMPL_H_
#define ENSEMFDET_DETECT_SIMD_KERNEL_IMPL_H_

#include <cstdint>

namespace ensemfdet {
namespace simd {

template <typename Traits>
void GatherSlotMassImpl(const double* weight, const int32_t* merchant_packed,
                        int32_t packed_base, const double* col_weight,
                        double scale, int64_t n, double* out) {
  const typename Traits::VecD vscale = Traits::Broadcast(scale);
  int64_t i = 0;
  for (; i + Traits::kLanes <= n; i += Traits::kLanes) {
    Traits::Store(out + i,
                  Traits::GatherMass(weight, merchant_packed, packed_base,
                                     col_weight, vscale, i));
  }
  for (; i < n; ++i) {
    out[i] =
        (weight[i] * scale) * col_weight[merchant_packed[i] - packed_base];
  }
}

template <typename Traits>
int64_t NextAliveImpl(const uint8_t* alive, int64_t n, int64_t from) {
  int64_t i = from;
  if (i < 0) i = 0;
  // Unaligned head up to the first full block.
  for (; i < n && (i % Traits::kBytesPerBlock) != 0; ++i) {
    if (alive[i] != 0) return i;
  }
  for (; i + Traits::kBytesPerBlock <= n; i += Traits::kBytesPerBlock) {
    auto mask = Traits::NonZeroByteMask(alive, i);
    if (mask != 0) return i + __builtin_ctzll(static_cast<uint64_t>(mask));
  }
  for (; i < n; ++i) {
    if (alive[i] != 0) return i;
  }
  return n;
}

template <typename Traits>
int64_t CountAliveImpl(const uint8_t* alive, int64_t n) {
  int64_t count = 0;
  int64_t i = 0;
  for (; i + Traits::kBytesPerBlock <= n; i += Traits::kBytesPerBlock) {
    count += __builtin_popcountll(
        static_cast<uint64_t>(Traits::NonZeroByteMask(alive, i)));
  }
  for (; i < n; ++i) {
    count += (alive[i] != 0) ? 1 : 0;
  }
  return count;
}

// REASSOCIATING: kLanes independent accumulators, reduced at the end.
// Not bit-comparable with the scalar referee — consumers gate on
// vote-identity (kernels.h FP contract).
template <typename Traits>
double MaskedSumImpl(const double* values, const uint8_t* alive, int64_t n) {
  typename Traits::VecD acc = Traits::Zero();
  int64_t i = 0;
  for (; i + Traits::kLanes <= n; i += Traits::kLanes) {
    acc = Traits::Add(acc, Traits::MaskedLoad(values, alive, i));
  }
  double sum = Traits::ReduceAdd(acc);
  for (; i < n; ++i) {
    if (alive[i] != 0) sum += values[i];
  }
  return sum;
}

}  // namespace simd
}  // namespace ensemfdet

#endif  // ENSEMFDET_DETECT_SIMD_KERNEL_IMPL_H_
