#include "detect/simd/isa.h"

#include <atomic>

#include "common/env.h"
#include "common/logging.h"
#include "detect/simd/kernels.h"

namespace ensemfdet {
namespace simd {

namespace {

// The build ceiling: the highest level whose kernel TU actually compiled
// with target support on this toolchain.
IsaLevel BuiltIsaLevel() {
  if (Avx512KernelsOrNull() != nullptr) return IsaLevel::kAvx512;
  if (Avx2KernelsOrNull() != nullptr) return IsaLevel::kAvx2;
  return IsaLevel::kScalar;
}

struct StartupResolution {
  int level;
  bool forced_by_env;
};

// Resolved once, on first use: min(detected, FORCE_ISA if valid).
const StartupResolution& Startup() {
  static const StartupResolution startup = [] {
    StartupResolution r{static_cast<int>(DetectedIsaLevel()), false};
    const std::string forced = GetEnvString("ENSEMFDET_FORCE_ISA", "");
    if (forced.empty()) return r;
    IsaLevel requested;
    if (!ParseIsaLevel(forced, &requested)) {
      ENSEMFDET_LOG(Warning)
          << "ENSEMFDET_FORCE_ISA='" << forced
          << "' is not scalar|avx2|avx512 - ignoring, dispatching "
          << IsaLevelName(DetectedIsaLevel());
      return r;
    }
    r.forced_by_env = true;
    if (requested > DetectedIsaLevel()) {
      // Clamp instead of SIGILLing later: CI jobs that force upward guard
      // with a CPUID check step and skip; a clamped run must still be
      // visible as such (isa-report, the bench dispatch block).
      ENSEMFDET_LOG(Warning)
          << "ENSEMFDET_FORCE_ISA=" << IsaLevelName(requested)
          << " exceeds what this CPU/build supports ("
          << IsaLevelName(DetectedIsaLevel()) << ") - clamping";
      return r;
    }
    r.level = static_cast<int>(requested);
    return r;
  }();
  return startup;
}

// What ScopedIsaLevel / SetActiveIsaLevel move afterwards.
std::atomic<int>& ActiveLevelCell() {
  static std::atomic<int> level{Startup().level};
  return level;
}

}  // namespace

const char* IsaLevelName(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar:
      return "scalar";
    case IsaLevel::kAvx2:
      return "avx2";
    case IsaLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool ParseIsaLevel(std::string_view name, IsaLevel* out) {
  if (name == "scalar") {
    *out = IsaLevel::kScalar;
  } else if (name == "avx2") {
    *out = IsaLevel::kAvx2;
  } else if (name == "avx512") {
    *out = IsaLevel::kAvx512;
  } else {
    return false;
  }
  return true;
}

IsaLevel CpuIsaLevel() {
#if defined(__x86_64__) || defined(__i386__)
  // The F/BW/DQ/VL quartet is what the AVX-512 kernels use (byte-mask
  // tests, 256/512 mixing); treat anything less as AVX2-class.
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512vl")) {
    return IsaLevel::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) return IsaLevel::kAvx2;
#endif
  return IsaLevel::kScalar;
}

IsaLevel DetectedIsaLevel() {
  static const IsaLevel detected = [] {
    const IsaLevel cpu = CpuIsaLevel();
    const IsaLevel built = BuiltIsaLevel();
    return cpu < built ? cpu : built;
  }();
  return detected;
}

IsaLevel ActiveIsaLevel() {
  return static_cast<IsaLevel>(
      ActiveLevelCell().load(std::memory_order_relaxed));
}

bool SetActiveIsaLevel(IsaLevel level) {
  if (level > DetectedIsaLevel()) return false;
  ActiveLevelCell().store(static_cast<int>(level), std::memory_order_relaxed);
  return true;
}

bool IsaForcedByEnv() { return Startup().forced_by_env; }

ScopedIsaLevel::ScopedIsaLevel(IsaLevel level)
    : prev_(ActiveIsaLevel()), ok_(SetActiveIsaLevel(level)) {}

ScopedIsaLevel::~ScopedIsaLevel() {
  if (ok_) SetActiveIsaLevel(prev_);
}

}  // namespace simd
}  // namespace ensemfdet
