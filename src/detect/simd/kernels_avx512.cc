// AVX-512 kernel table (F+BW+DQ+VL). Compiled with the -mavx512* flags
// when the toolchain supports them; otherwise the guards leave
// Avx512KernelsOrNull() returning nullptr and the build ceiling clamps
// to AVX2 or scalar.
#include "detect/simd/kernels.h"

#if defined(__AVX512F__) && defined(__AVX512BW__)
#include "detect/simd/kernel_impl.h"
#include "detect/simd/simd_traits.h"
#endif

namespace ensemfdet {
namespace simd {

#if defined(__AVX512F__) && defined(__AVX512BW__)

const KernelTable* Avx512KernelsOrNull() {
  static const KernelTable table = {
      GatherSlotMassImpl<Avx512Traits>, NextAliveImpl<Avx512Traits>,
      CountAliveImpl<Avx512Traits>,     MaskedSumImpl<Avx512Traits>,
      IsaLevel::kAvx512,
  };
  return &table;
}

#else

const KernelTable* Avx512KernelsOrNull() { return nullptr; }

#endif

}  // namespace simd
}  // namespace ensemfdet
