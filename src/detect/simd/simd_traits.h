// Per-ISA trait structs the generic kernel bodies (kernel_impl.h) are
// instantiated over — the pgaccel avx_traits.hpp pattern. Each trait
// exposes the same tiny vocabulary:
//
//   kLanes          doubles per vector (gather/masked-sum width)
//   kBytesPerBlock  alive-bitmap bytes scanned per step
//   GatherMass      (w * scale) * col_weight[idx - base], elementwise
//   NonZeroByteMask bitmask of nonzero bytes in one block (bit i = byte i)
//   MaskedLoad      doubles whose alive byte is nonzero, 0.0 elsewhere
//   ReduceAdd       horizontal sum of one vector
//
// Only the TU compiled with matching -m flags defines each trait (the
// __AVX2__ / __AVX512F__ guards), so this header is safe to include from
// the scalar TU too.
#ifndef ENSEMFDET_DETECT_SIMD_SIMD_TRAITS_H_
#define ENSEMFDET_DETECT_SIMD_SIMD_TRAITS_H_

#include <cstdint>
#include <cstring>

#if defined(__AVX2__) || (defined(__AVX512F__) && defined(__AVX512BW__))
#include <immintrin.h>
#endif

namespace ensemfdet {
namespace simd {

#if defined(__AVX2__)

struct Avx2Traits {
  static constexpr int kLanes = 4;
  static constexpr int kBytesPerBlock = 32;

  using VecD = __m256d;

  // out = (weight * scale) * col_weight[packed - base], four slots at a
  // time. Two separate vector multiplies — no FMA — so each lane is
  // bit-identical to the scalar expression.
  static inline VecD GatherMass(const double* weight,
                                const int32_t* merchant_packed,
                                int32_t packed_base, const double* col_weight,
                                VecD scale, int64_t i) {
    __m128i packed = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(merchant_packed + i));
    __m128i idx = _mm_sub_epi32(packed, _mm_set1_epi32(packed_base));
    // Masked gather with an explicit zero source: the plain gather
    // intrinsic leaves its source operand undefined, which trips gcc's
    // -Wuninitialized inside the intrinsic header.
    VecD colw = _mm256_mask_i32gather_pd(
        _mm256_setzero_pd(), col_weight, idx,
        _mm256_castsi256_pd(_mm256_set1_epi64x(-1)), sizeof(double));
    VecD w = _mm256_loadu_pd(weight + i);
    return _mm256_mul_pd(_mm256_mul_pd(w, scale), colw);
  }

  // Bit b set iff alive[i + b] != 0, for the 32 bytes of one block.
  static inline uint32_t NonZeroByteMask(const uint8_t* alive, int64_t i) {
    __m256i block =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(alive + i));
    __m256i is_zero = _mm256_cmpeq_epi8(block, _mm256_setzero_si256());
    return ~static_cast<uint32_t>(_mm256_movemask_epi8(is_zero));
  }

  // values[i..i+3] where alive is nonzero, 0.0 in dead lanes.
  static inline VecD MaskedLoad(const double* values, const uint8_t* alive,
                                int64_t i) {
    uint32_t packed;
    std::memcpy(&packed, alive + i, sizeof(packed));
    __m256i bytes = _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(
        static_cast<int>(packed)));
    __m256i lane_mask = _mm256_cmpgt_epi64(bytes, _mm256_setzero_si256());
    VecD v = _mm256_loadu_pd(values + i);
    return _mm256_and_pd(v, _mm256_castsi256_pd(lane_mask));
  }

  static inline double ReduceAdd(VecD v) {
    __m128d lo = _mm256_castpd256_pd128(v);
    __m128d hi = _mm256_extractf128_pd(v, 1);
    __m128d sum2 = _mm_add_pd(lo, hi);
    __m128d sum1 = _mm_add_sd(sum2, _mm_unpackhi_pd(sum2, sum2));
    return _mm_cvtsd_f64(sum1);
  }

  static inline VecD Zero() { return _mm256_setzero_pd(); }
  static inline VecD Broadcast(double x) { return _mm256_set1_pd(x); }
  static inline VecD Add(VecD a, VecD b) { return _mm256_add_pd(a, b); }
  static inline void Store(double* p, VecD v) { _mm256_storeu_pd(p, v); }
};

#endif  // __AVX2__

#if defined(__AVX512F__) && defined(__AVX512BW__)

struct Avx512Traits {
  static constexpr int kLanes = 8;
  static constexpr int kBytesPerBlock = 64;

  using VecD = __m512d;

  static inline VecD GatherMass(const double* weight,
                                const int32_t* merchant_packed,
                                int32_t packed_base, const double* col_weight,
                                VecD scale, int64_t i) {
    __m256i packed = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(merchant_packed + i));
    __m256i idx = _mm256_sub_epi32(packed, _mm256_set1_epi32(packed_base));
    // Masked gather with an explicit zero source (see Avx2Traits).
    VecD colw = _mm512_mask_i32gather_pd(_mm512_setzero_pd(),
                                         static_cast<__mmask8>(0xff), idx,
                                         col_weight, sizeof(double));
    VecD w = _mm512_loadu_pd(weight + i);
    return _mm512_mul_pd(_mm512_mul_pd(w, scale), colw);
  }

  // Bit b set iff alive[i + b] != 0, for the 64 bytes of one block.
  static inline uint64_t NonZeroByteMask(const uint8_t* alive, int64_t i) {
    __m512i block =
        _mm512_loadu_si512(reinterpret_cast<const void*>(alive + i));
    return _mm512_test_epi8_mask(block, block);
  }

  static inline VecD MaskedLoad(const double* values, const uint8_t* alive,
                                int64_t i) {
    __m128i bytes =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(alive + i));
    __mmask8 lane_mask = _mm_test_epi8_mask(bytes, bytes);
    return _mm512_maskz_loadu_pd(lane_mask, values + i);
  }

  // Hand-rolled instead of _mm512_reduce_add_pd: gcc's implementation
  // routes through _mm256_undefined_pd and trips -Wuninitialized.
  static inline double ReduceAdd(VecD v) {
    __m512d swapped = _mm512_shuffle_f64x2(v, v, 0xee);  // upper 256 → lower
    __m256d sum4 = _mm256_add_pd(_mm512_castpd512_pd256(v),
                                 _mm512_castpd512_pd256(swapped));
    __m128d lo = _mm256_castpd256_pd128(sum4);
    __m128d hi = _mm256_extractf128_pd(sum4, 1);
    __m128d sum2 = _mm_add_pd(lo, hi);
    __m128d sum1 = _mm_add_sd(sum2, _mm_unpackhi_pd(sum2, sum2));
    return _mm_cvtsd_f64(sum1);
  }

  static inline VecD Zero() { return _mm512_setzero_pd(); }
  static inline VecD Broadcast(double x) { return _mm512_set1_pd(x); }
  static inline VecD Add(VecD a, VecD b) { return _mm512_add_pd(a, b); }
  static inline void Store(double* p, VecD v) { _mm512_storeu_pd(p, v); }
};

#endif  // __AVX512F__ && __AVX512BW__

}  // namespace simd
}  // namespace ensemfdet

#endif  // ENSEMFDET_DETECT_SIMD_SIMD_TRAITS_H_
