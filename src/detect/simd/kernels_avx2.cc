// AVX2 kernel table. This TU is compiled with -mavx2 when the toolchain
// supports it (per-file flag in CMakeLists.txt); otherwise __AVX2__ is
// unset and Avx2KernelsOrNull() returns nullptr, clamping the build
// ceiling (isa.cc BuiltIsaLevel).
#include "detect/simd/kernels.h"

#if defined(__AVX2__)
#include "detect/simd/kernel_impl.h"
#include "detect/simd/simd_traits.h"
#endif

namespace ensemfdet {
namespace simd {

#if defined(__AVX2__)

const KernelTable* Avx2KernelsOrNull() {
  static const KernelTable table = {
      GatherSlotMassImpl<Avx2Traits>, NextAliveImpl<Avx2Traits>,
      CountAliveImpl<Avx2Traits>,     MaskedSumImpl<Avx2Traits>,
      IsaLevel::kAvx2,
  };
  return &table;
}

#else

const KernelTable* Avx2KernelsOrNull() { return nullptr; }

#endif

}  // namespace simd
}  // namespace ensemfdet
