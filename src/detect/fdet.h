// FDET (paper Algorithm 1): detect the top-k̂ disjoint fraud blocks of a
// bipartite graph by iterated greedy peeling.
//
// Loop: peel the densest block from the current graph; remove that block's
// induced edges; repeat. The block count k̂ is chosen automatically at the
// elbow of the per-block φ series via the second-order finite difference
// (Definition 3, Truncating Point): k̂ = argmin_i Δ²φ(G(S_i)), i.e. the
// block after which the density score "suddenly decreases". A fixed-k
// policy implements the ENSEMFDET-FIX-K ablation of §V-C3.
#ifndef ENSEMFDET_DETECT_FDET_H_
#define ENSEMFDET_DETECT_FDET_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "detect/csr_peeler.h"
#include "detect/density.h"
#include "graph/bipartite_graph.h"
#include "graph/csr_graph.h"

namespace ensemfdet {

/// How FDET decides the number of blocks to keep.
enum class TruncationPolicy {
  kAutoElbow,  ///< Definition 3: k̂ = argmin Δ²φ
  kFixedK,     ///< keep exactly min(fixed_k, #found) blocks (FIX-K ablation)
};

struct FdetConfig {
  DensityConfig density;
  TruncationPolicy policy = TruncationPolicy::kAutoElbow;
  /// Upper bound on blocks explored before truncation ("few to few tens"
  /// per the paper; also the k for kFixedK).
  int max_blocks = 40;
  /// Fixed k for TruncationPolicy::kFixedK.
  int fixed_k = 30;
  /// Online stopping for kAutoElbow (Algorithm 1's "until argmin Δ²φ"):
  /// exploration stops once the elbow has been confirmed by this many
  /// blocks of flat tail beyond it — the cost saving of truncation the
  /// paper credits for FDET doing "less than half" of FIX-K's work.
  int elbow_patience = 3;
  /// Detection stops early if a block's φ falls to or below this.
  double min_block_score = 1e-12;
};

/// One detected dense block: node ids are in the id space of the graph
/// FDET ran on (a sampled subgraph's local ids, unless run on the parent).
struct DetectedBlock {
  std::vector<UserId> users;
  std::vector<MerchantId> merchants;
  /// φ of the block at detection time (entry-time column weights of the
  /// then-current residual graph).
  double score = 0.0;
  /// The residual edges this block consumed — the E_i removed in Algorithm
  /// 1 line 11, as ids into the graph FDET ran on. Pairwise disjoint
  /// across blocks and nonempty for every detected block.
  std::vector<EdgeId> edges;
};

struct FdetResult {
  /// Blocks 1..k̂ after truncation, in detection (descending-φ) order.
  std::vector<DetectedBlock> blocks;
  /// φ series of *all* explored blocks, pre-truncation (the Fig 1 curve).
  std::vector<double> all_scores;
  /// k̂ — equals blocks.size().
  int truncation_index = 0;

  /// Union of the truncated blocks' nodes: FDET's S_d = (U_d ∪ V_d).
  std::vector<UserId> DetectedUsers() const;
  std::vector<MerchantId> DetectedMerchants() const;
};

/// Definition 3 on a φ series: returns the k̂ minimizing the second-order
/// finite difference Δ²φ(i) = φ(i+1) − 2φ(i) + φ(i−1) over interior points
/// (1-indexed i ∈ [2, len−1]), i.e. the last block before density falls
/// off hardest. Series of length ≤ 2 have no interior point and keep every
/// block; an empty series yields 0. FDET explores past the real structure
/// into background noise, so the cliff is interior in practice.
int AutoTruncationIndex(const std::vector<double>& scores);

/// Runs FDET on `graph`. Fails with InvalidArgument on nonsensical
/// configuration (max_blocks < 1, fixed_k < 1, log_offset ≤ 1).
///
/// Internally converts once to CSR form and runs RunFdetCsr — one O(|E|)
/// conversion per call, then in-place peeling with no per-block subgraph
/// rebuilds.
///
/// @post Result blocks are in detection order with pairwise-disjoint,
///       nonempty `edges` lists (ids into `graph`); block node lists are
///       ascending. Output is bit-identical to RunFdetReference.
/// @note Thread-safety: pure function of an immutable graph — safe to run
///       concurrently on the same graph from many threads (each call owns
///       its scratch).
Result<FdetResult> RunFdet(const BipartiteGraph& graph,
                           const FdetConfig& config);

/// CSR-native FDET: iterated in-place peeling over a shared immutable
/// CsrGraph (see detect/csr_peeler.h). The per-iteration residual is an
/// edge-id subset; no subgraph is ever materialized. Node/edge ids in the
/// result are `graph`'s own.
///
/// @pre `graph` came from CsrGraph::FromBipartite (canonical edge order).
/// @post Bit-identical results to RunFdetReference on the equivalent
///       adjacency-list graph (pinned by tests/csr_parity_test.cc).
/// @note Thread-safety: `graph` is only read; concurrent calls are safe.
Result<FdetResult> RunFdetCsr(const CsrGraph& graph,
                              const FdetConfig& config);

/// Zero-materialization FDET over a *residual edge subset* of a shared
/// immutable parent graph — the ensemble hot-loop entry point. Runs the
/// exact Algorithm 1 loop of RunFdetCsr, but starting from
/// `initial_residual` instead of the whole edge set, scaling every edge
/// weight by `weight_scale` on the fly (Theorem 1's 1/p reweighting
/// without a reweighted copy), and drawing every buffer from `scratch` so
/// repeated calls against a warm arena allocate nothing but the result.
///
/// Bit-exactness: for a sampled edge set, the output blocks/scores/counts
/// are identical — under the order-isomorphic id relabeling — to
/// materializing the child subgraph over those edges (weights
/// pre-scaled), converting it to CSR, and running RunFdetCsr on it; node
/// and edge ids in the result are the *parent's* own, so no remapping
/// step exists. tests/ensemble_parity_test.cc pins this end to end.
///
/// @pre `graph` came from CsrGraph::FromBipartite (canonical edge order);
///      `initial_residual` is ascending and duplicate-free;
///      `weight_scale` > 0; `scratch` != nullptr.
/// @note Thread-safety: `graph` is only read; `scratch` is mutable — one
///       arena per thread.
Result<FdetResult> RunFdetCsrMasked(const CsrGraph& graph,
                                    std::span<const EdgeId> initial_residual,
                                    double weight_scale,
                                    const FdetConfig& config,
                                    PeelScratch* scratch);

/// The seed implementation (rebuilds a compacted subgraph per block
/// iteration). Kept as the parity/performance reference for
/// tests/csr_parity_test.cc and bench/bench_peeling.cc — prefer RunFdet.
Result<FdetResult> RunFdetReference(const BipartiteGraph& graph,
                                    const FdetConfig& config);

}  // namespace ensemfdet

#endif  // ENSEMFDET_DETECT_FDET_H_
