#include "detect/indexed_heap.h"

#include "common/logging.h"

namespace ensemfdet {

IndexedMinHeap::IndexedMinHeap(int64_t capacity)
    : pos_(static_cast<size_t>(capacity), -1) {
  heap_.reserve(static_cast<size_t>(capacity));
}

double IndexedMinHeap::KeyOf(int64_t id) const {
  ENSEMFDET_DCHECK(Contains(id));
  return heap_[static_cast<size_t>(pos_[static_cast<size_t>(id)])].key;
}

void IndexedMinHeap::Place(size_t i, Entry e) {
  heap_[i] = e;
  pos_[static_cast<size_t>(e.id)] = static_cast<int64_t>(i);
}

void IndexedMinHeap::SiftUp(size_t i) {
  Entry e = heap_[i];
  while (i > 0) {
    size_t parent = (i - 1) / 2;
    if (!Less(e, heap_[parent])) break;
    Place(i, heap_[parent]);
    i = parent;
  }
  Place(i, e);
}

void IndexedMinHeap::SiftDown(size_t i) {
  Entry e = heap_[i];
  const size_t n = heap_.size();
  for (;;) {
    size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && Less(heap_[child + 1], heap_[child])) ++child;
    if (!Less(heap_[child], e)) break;
    Place(i, heap_[child]);
    i = child;
  }
  Place(i, e);
}

void IndexedMinHeap::Push(int64_t id, double key) {
  ENSEMFDET_DCHECK(id >= 0 &&
                   id < static_cast<int64_t>(pos_.size()));
  ENSEMFDET_DCHECK(!Contains(id)) << "id " << id << " already in heap";
  heap_.push_back({key, id});
  pos_[static_cast<size_t>(id)] = static_cast<int64_t>(heap_.size() - 1);
  SiftUp(heap_.size() - 1);
}

int64_t IndexedMinHeap::PeekMin() const {
  ENSEMFDET_CHECK(!heap_.empty());
  return heap_[0].id;
}

int64_t IndexedMinHeap::PopMin() {
  ENSEMFDET_CHECK(!heap_.empty());
  int64_t id = heap_[0].id;
  Remove(id);
  return id;
}

void IndexedMinHeap::UpdateKey(int64_t id, double key) {
  ENSEMFDET_DCHECK(Contains(id));
  size_t i = static_cast<size_t>(pos_[static_cast<size_t>(id)]);
  double old_key = heap_[i].key;
  heap_[i].key = key;
  if (key < old_key) {
    SiftUp(i);
  } else {
    SiftDown(i);
  }
}

void IndexedMinHeap::AddToKey(int64_t id, double delta) {
  UpdateKey(id, KeyOf(id) + delta);
}

void IndexedMinHeap::Remove(int64_t id) {
  ENSEMFDET_DCHECK(Contains(id));
  size_t i = static_cast<size_t>(pos_[static_cast<size_t>(id)]);
  pos_[static_cast<size_t>(id)] = -1;
  Entry last = heap_.back();
  heap_.pop_back();
  if (i < heap_.size()) {
    Place(i, last);
    SiftUp(i);
    SiftDown(static_cast<size_t>(pos_[static_cast<size_t>(last.id)]));
  }
}

}  // namespace ensemfdet
