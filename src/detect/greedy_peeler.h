// Greedy densest-block peeling (inner loop of paper Algorithm 1, lines
// 3-8; the FRAUDAR [13] greedy with the min-heap speedup).
//
// Starting from the whole graph H_n, repeatedly delete the node whose
// removal costs the least suspiciousness mass (the min-priority node),
// recording φ(H_i) for every prefix; the returned block is the prefix with
// maximum φ. Merchant column weights 1/log(c + d_j) are fixed from the
// input graph's degrees at entry, matching FRAUDAR.
//
// Complexity: O((|U| + |V| + |E|) · log(|U| + |V|)).
#ifndef ENSEMFDET_DETECT_GREEDY_PEELER_H_
#define ENSEMFDET_DETECT_GREEDY_PEELER_H_

#include <vector>

#include "detect/density.h"
#include "graph/bipartite_graph.h"

namespace ensemfdet {

/// Output of one peel: the densest block found plus the full peeling trace
/// (used by tests and the Fig 1 bench).
struct PeelResult {
  /// Users/merchants of the argmax-φ prefix, ascending ids (graph-local).
  std::vector<UserId> users;
  std::vector<MerchantId> merchants;
  /// φ of that block under the entry-time column weights.
  double score = 0.0;
  /// trace[t] = φ(H_{n-t}) before the t-th removal; trace[0] = φ(G).
  std::vector<double> trace;
  /// Node removal order as packed ids (user u → u; merchant v → |U|+v).
  std::vector<int64_t> removal_order;
};

/// Peels `graph` once and returns the best block. An empty graph (or one
/// with no edges) yields an empty block with score 0.
/// If `keep_trace` is false the trace/removal_order vectors stay empty
/// (saves memory on large graphs).
///
/// @post result.users / result.merchants are ascending graph-local ids;
///       result.score equals max_t trace[t] when the trace is kept.
/// @note Thread-safety: pure function of an immutable graph — safe to
///       call concurrently on the same graph. Deterministic: equal-
///       priority ties break toward the smaller packed node id.
/// @note This is the seed adjacency-list implementation; the hot path
///       uses the bit-exact in-place CSR rewrite in detect/csr_peeler.h
///       (PeelDensestBlockCsr), which this remains the reference for.
PeelResult PeelDensestBlock(const BipartiteGraph& graph,
                            const DensityConfig& config,
                            bool keep_trace = false);

}  // namespace ensemfdet

#endif  // ENSEMFDET_DETECT_GREEDY_PEELER_H_
