#include "detect/partitioned_fdet.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "graph/components.h"
#include "graph/subgraph.h"

namespace ensemfdet {

namespace {

// Parent edge id of (user, merchant); the pair must exist.
EdgeId ParentEdgeId(const BipartiteGraph& parent, UserId user,
                    MerchantId merchant) {
  auto span = parent.user_edges(user);
  auto it = std::lower_bound(span.begin(), span.end(), merchant,
                             [&parent](EdgeId e, MerchantId m) {
                               return parent.edge(e).merchant < m;
                             });
  ENSEMFDET_CHECK(it != span.end() && parent.edge(*it).merchant == merchant)
      << "component edge missing from parent";
  return *it;
}

}  // namespace

Result<FdetResult> RunPartitionedFdet(const BipartiteGraph& graph,
                                      const PartitionedFdetConfig& config,
                                      ThreadPool* pool) {
  if (config.min_component_edges < 1) {
    return Status::InvalidArgument("min_component_edges must be >= 1");
  }

  const ConnectedComponents cc = FindConnectedComponents(graph);

  // Partition edge ids by component (components are edge-disjoint).
  std::vector<std::vector<EdgeId>> component_edges(
      static_cast<size_t>(cc.num_components()));
  for (size_t c = 0; c < component_edges.size(); ++c) {
    component_edges[c].reserve(
        static_cast<size_t>(cc.components[c].num_edges));
  }
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    component_edges[static_cast<size_t>(
                        cc.user_component[graph.edge(e).user])]
        .push_back(e);
  }

  // Keep only components worth searching.
  std::vector<int32_t> eligible;
  for (int32_t c = 0; c < cc.num_components(); ++c) {
    if (cc.components[static_cast<size_t>(c)].num_edges >=
        config.min_component_edges) {
      eligible.push_back(c);
    }
  }

  // Per-component exploration keeps every block (fixed-k = max_blocks);
  // truncation happens globally after the merge.
  FdetConfig explore = config.fdet;
  explore.policy = TruncationPolicy::kFixedK;
  explore.fixed_k = config.fdet.max_blocks;

  std::vector<DetectedBlock> merged;
  if (eligible.size() == 1 &&
      component_edges[static_cast<size_t>(eligible[0])].size() ==
          static_cast<size_t>(graph.num_edges())) {
    // One component spans every edge: skip the per-component subgraph
    // rebuild entirely and run FDET on the parent (node and edge ids are
    // already parent-space; the compacted subgraph would have been a pure
    // relabeling).
    ENSEMFDET_ASSIGN_OR_RETURN(FdetResult whole, RunFdet(graph, explore));
    merged = std::move(whole.blocks);
  } else {
    std::vector<Result<FdetResult>> outputs(
        eligible.size(), Result<FdetResult>(FdetResult{}));
    std::vector<SubgraphView> views(eligible.size());
    // Each worker converts its component to CSR once (inside RunFdet) and
    // peels in place; the parent graph is shared read-only.
    auto run_component = [&](int64_t i) {
      const int32_t c = eligible[static_cast<size_t>(i)];
      views[static_cast<size_t>(i)] =
          SubgraphFromEdges(graph, component_edges[static_cast<size_t>(c)]);
      outputs[static_cast<size_t>(i)] =
          RunFdet(views[static_cast<size_t>(i)].graph, explore);
    };
    if (pool != nullptr && pool->num_threads() > 1 && eligible.size() > 1) {
      // Component sizes follow a heavy-tailed distribution; stealing
      // keeps the pool saturated when one giant component dominates.
      pool->ParallelForWorkStealing(0, static_cast<int64_t>(eligible.size()),
                                    run_component);
    } else {
      for (int64_t i = 0; i < static_cast<int64_t>(eligible.size()); ++i) {
        run_component(i);
      }
    }

    // Merge: translate ids to the parent space, then order by descending φ
    // (ties: stable by component order) — the order a global FDET would
    // detect them in.
    for (size_t i = 0; i < outputs.size(); ++i) {
      ENSEMFDET_RETURN_NOT_OK(outputs[i].status());
      const SubgraphView& view = views[i];
      for (DetectedBlock& block : outputs[i]->blocks) {
        DetectedBlock translated;
        translated.score = block.score;
        translated.users.reserve(block.users.size());
        for (UserId lu : block.users) {
          translated.users.push_back(view.user_map[lu]);
        }
        translated.merchants.reserve(block.merchants.size());
        for (MerchantId lv : block.merchants) {
          translated.merchants.push_back(view.merchant_map[lv]);
        }
        translated.edges.reserve(block.edges.size());
        for (EdgeId le : block.edges) {
          const Edge& local = view.graph.edge(le);
          translated.edges.push_back(
              ParentEdgeId(graph, view.user_map[local.user],
                           view.merchant_map[local.merchant]));
        }
        merged.push_back(std::move(translated));
      }
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const DetectedBlock& a, const DetectedBlock& b) {
                     return a.score > b.score;
                   });

  FdetResult result;
  result.all_scores.reserve(merged.size());
  for (const DetectedBlock& b : merged) result.all_scores.push_back(b.score);

  int keep;
  if (config.fdet.policy == TruncationPolicy::kFixedK) {
    keep = std::min<int>(config.fdet.fixed_k,
                         static_cast<int>(merged.size()));
  } else {
    keep = AutoTruncationIndex(result.all_scores);
  }
  merged.resize(static_cast<size_t>(keep));
  result.blocks = std::move(merged);
  result.truncation_index = keep;
  return result;
}

}  // namespace ensemfdet
