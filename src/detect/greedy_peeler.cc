#include "detect/greedy_peeler.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "detect/indexed_heap.h"

namespace ensemfdet {

PeelResult PeelDensestBlock(const BipartiteGraph& graph,
                            const DensityConfig& config, bool keep_trace) {
  PeelResult result;
  const int64_t num_users = graph.num_users();
  const int64_t num_merchants = graph.num_merchants();
  const int64_t total_nodes = num_users + num_merchants;
  if (total_nodes == 0 || graph.num_edges() == 0) return result;

  // Merchant column weights from entry-time degrees (FRAUDAR semantics).
  std::vector<double> col_weight(static_cast<size_t>(num_merchants));
  for (int64_t v = 0; v < num_merchants; ++v) {
    col_weight[static_cast<size_t>(v)] = MerchantColumnWeight(
        static_cast<double>(graph.merchant_degree(static_cast<MerchantId>(v))),
        config);
  }
  auto edge_mass = [&](EdgeId e) {
    return graph.edge_weight(e) *
           col_weight[graph.edge(e).merchant];
  };

  // Node priorities = each node's share of the suspiciousness mass: the
  // cost of deleting it right now.
  std::vector<double> priority(static_cast<size_t>(total_nodes), 0.0);
  double mass = 0.0;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const Edge& edge = graph.edge(e);
    const double w = edge_mass(e);
    priority[edge.user] += w;
    priority[static_cast<size_t>(num_users) + edge.merchant] += w;
    mass += w;
  }

  IndexedMinHeap heap(total_nodes);
  for (int64_t id = 0; id < total_nodes; ++id) {
    heap.Push(id, priority[static_cast<size_t>(id)]);
  }

  std::vector<bool> removed(static_cast<size_t>(total_nodes), false);
  std::vector<int64_t> removal_order;
  removal_order.reserve(static_cast<size_t>(total_nodes));
  if (keep_trace) result.trace.reserve(static_cast<size_t>(total_nodes));

  double best_phi = -1.0;
  int64_t best_prefix = 0;  // number of removals before the best state
  int64_t alive = total_nodes;

  for (int64_t t = 0; t < total_nodes; ++t) {
    const double phi =
        alive > 0 ? std::max(0.0, mass) / static_cast<double>(alive) : 0.0;
    if (keep_trace) result.trace.push_back(phi);
    if (phi > best_phi) {
      best_phi = phi;
      best_prefix = t;
    }

    const int64_t victim = heap.PopMin();
    removed[static_cast<size_t>(victim)] = true;
    --alive;
    removal_order.push_back(victim);

    if (victim < num_users) {
      const UserId u = static_cast<UserId>(victim);
      for (EdgeId e : graph.user_edges(u)) {
        const MerchantId v = graph.edge(e).merchant;
        const int64_t other = num_users + v;
        if (removed[static_cast<size_t>(other)]) continue;  // edge dead
        const double w = edge_mass(e);
        mass -= w;
        heap.AddToKey(other, -w);
      }
    } else {
      const MerchantId v = static_cast<MerchantId>(victim - num_users);
      for (EdgeId e : graph.merchant_edges(v)) {
        const UserId u = graph.edge(e).user;
        if (removed[u]) continue;
        const double w = edge_mass(e);
        mass -= w;
        heap.AddToKey(u, -w);
      }
    }
  }

  // The best block is everything not removed in the first `best_prefix`
  // deletions.
  std::vector<bool> gone(static_cast<size_t>(total_nodes), false);
  for (int64_t t = 0; t < best_prefix; ++t) {
    gone[static_cast<size_t>(removal_order[static_cast<size_t>(t)])] = true;
  }
  for (int64_t u = 0; u < num_users; ++u) {
    if (!gone[static_cast<size_t>(u)]) {
      result.users.push_back(static_cast<UserId>(u));
    }
  }
  for (int64_t v = 0; v < num_merchants; ++v) {
    if (!gone[static_cast<size_t>(num_users + v)]) {
      result.merchants.push_back(static_cast<MerchantId>(v));
    }
  }
  result.score = best_phi;
  if (keep_trace) result.removal_order = std::move(removal_order);
  return result;
}

}  // namespace ensemfdet
