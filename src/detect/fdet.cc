#include "detect/fdet.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "common/logging.h"
#include "detect/csr_peeler.h"
#include "detect/greedy_peeler.h"
#include "detect/simd/kernels.h"
#include "graph/subgraph.h"

namespace ensemfdet {

namespace {

// Sorted-vector membership test; block node lists come out of the peeler
// sorted ascending.
template <typename T>
bool SortedContains(const std::vector<T>& sorted, T value) {
  auto it = std::lower_bound(sorted.begin(), sorted.end(), value);
  return it != sorted.end() && *it == value;
}

// Shared front-door validation for every FDET entry point.
Status ValidateFdetConfig(const FdetConfig& config) {
  if (config.max_blocks < 1) {
    return Status::InvalidArgument("max_blocks must be >= 1, got " +
                                   std::to_string(config.max_blocks));
  }
  if (config.policy == TruncationPolicy::kFixedK && config.fixed_k < 1) {
    return Status::InvalidArgument("fixed_k must be >= 1, got " +
                                   std::to_string(config.fixed_k));
  }
  if (config.elbow_patience < 1) {
    return Status::InvalidArgument("elbow_patience must be >= 1, got " +
                                   std::to_string(config.elbow_patience));
  }
  if (config.density.weight_kind == ColumnWeightKind::kLogarithmic &&
      config.density.log_offset <= 1.0) {
    return Status::InvalidArgument(
        "density log_offset must be > 1 for logarithmic weights");
  }
  if (config.density.weight_kind == ColumnWeightKind::kInverse &&
      config.density.log_offset <= 0.0) {
    return Status::InvalidArgument(
        "density log_offset must be > 0 for inverse weights");
  }
  return Status::OK();
}

// Truncation shared by all entry points: keep blocks 1..k̂ of `explored`.
FdetResult TruncateExplored(std::vector<DetectedBlock> explored,
                            const FdetConfig& config) {
  FdetResult result;
  result.all_scores.reserve(explored.size());
  for (const DetectedBlock& b : explored) result.all_scores.push_back(b.score);

  int keep;
  if (config.policy == TruncationPolicy::kFixedK) {
    keep = std::min<int>(config.fixed_k, static_cast<int>(explored.size()));
  } else {
    keep = AutoTruncationIndex(result.all_scores);
  }
  explored.resize(static_cast<size_t>(keep));
  result.blocks = std::move(explored);
  result.truncation_index = keep;
  return result;
}

}  // namespace

std::vector<UserId> FdetResult::DetectedUsers() const {
  std::vector<UserId> out;
  for (const DetectedBlock& b : blocks) {
    out.insert(out.end(), b.users.begin(), b.users.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<MerchantId> FdetResult::DetectedMerchants() const {
  std::vector<MerchantId> out;
  for (const DetectedBlock& b : blocks) {
    out.insert(out.end(), b.merchants.begin(), b.merchants.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

int AutoTruncationIndex(const std::vector<double>& scores) {
  const int len = static_cast<int>(scores.size());
  if (len <= 2) return len;
  // Δ²φ(i) = φ(i+1) − 2φ(i) + φ(i−1) over interior points (Definition 3);
  // the most negative value marks the last block before density falls off
  // a cliff — keep blocks 1..k̂. FDET always explores past the planted
  // structure into background noise (up to max_blocks), so the cliff is an
  // interior point of the series in practice.
  int best_i = 1;  // 0-indexed interior position
  double best_value = std::numeric_limits<double>::infinity();
  for (int i = 1; i + 1 < len; ++i) {
    const double d2 = scores[static_cast<size_t>(i) + 1] -
                      2.0 * scores[static_cast<size_t>(i)] +
                      scores[static_cast<size_t>(i) - 1];
    if (d2 < best_value) {
      best_value = d2;
      best_i = i;
    }
  }
  return best_i + 1;  // convert to 1-indexed block count
}

Result<FdetResult> RunFdet(const BipartiteGraph& graph,
                           const FdetConfig& config) {
  // Validate before the O(|U|+|V|+|E|) CSR conversion so a bad config
  // fails as cheaply as it did in the seed implementation.
  ENSEMFDET_RETURN_NOT_OK(ValidateFdetConfig(config));
  return RunFdetCsr(CsrGraph::FromBipartite(graph), config);
}

namespace {

// True when the Algorithm 1 loop may stop exploring: online truncation —
// once the elbow is `elbow_patience` blocks behind the frontier, further
// exploration cannot move it; later blocks only extend the flat tail.
bool ElbowConfirmed(const std::vector<double>& scores_so_far,
                    const FdetConfig& config) {
  return config.policy == TruncationPolicy::kAutoElbow &&
         static_cast<int>(scores_so_far.size()) >=
             AutoTruncationIndex(scores_so_far) + config.elbow_patience;
}

// Algorithm 1 over the whole graph: iterated in-place peeling with the
// residual kept as an explicit ascending edge-id work list
// (`fdet_remaining`). All mutable state lives in the arena; validation is
// the caller's job.
FdetResult RunFdetOverResidual(const CsrGraph& graph,
                               const FdetConfig& config,
                               PeelScratch* scratch) {
  const int explore_limit = config.policy == TruncationPolicy::kFixedK
                                ? std::max(config.max_blocks, config.fixed_k)
                                : config.max_blocks;

  std::vector<DetectedBlock> explored;
  std::vector<double> scores_so_far;

  CsrPeeler peeler(graph, scratch);
  PeelScratch& s = *scratch;

  while (static_cast<int>(explored.size()) < explore_limit &&
         !s.fdet_remaining.empty()) {
    PeelResult peel = peeler.Peel(s.fdet_remaining, config.density,
                                  PeelNodeScope::kIncidentOnly,
                                  /*weight_scale=*/1.0,
                                  /*keep_trace=*/false);
    if (peel.score <= config.min_block_score ||
        (peel.users.empty() && peel.merchants.empty())) {
      break;
    }

    DetectedBlock block;
    block.score = peel.score;
    block.users = std::move(peel.users);
    block.merchants = std::move(peel.merchants);
    explored.push_back(std::move(block));
    DetectedBlock& added = explored.back();

    // Remove E_i: residual edges induced by the block's vertex set, and
    // record them on the block for diagnostics/invariant checking. The
    // in_block flags are all-zero between iterations.
    for (UserId u : added.users) s.in_block_user[u] = 1;
    for (MerchantId v : added.merchants) s.in_block_merchant[v] = 1;
    s.fdet_next.clear();
    for (EdgeId e : s.fdet_remaining) {
      const bool inside = s.in_block_user[graph.edge_user(e)] &&
                          s.in_block_merchant[graph.edge_merchant(e)];
      if (inside) {
        added.edges.push_back(e);
      } else {
        s.fdet_next.push_back(e);
      }
    }
    for (UserId u : added.users) s.in_block_user[u] = 0;
    for (MerchantId v : added.merchants) s.in_block_merchant[v] = 0;
    // The peeled block always contains at least one residual edge, so the
    // loop strictly shrinks the residual and must terminate.
    ENSEMFDET_CHECK(s.fdet_next.size() < s.fdet_remaining.size())
        << "detected block removed no edges";
    std::swap(s.fdet_remaining, s.fdet_next);

    scores_so_far.push_back(added.score);
    if (ElbowConfirmed(scores_so_far, config)) break;
  }

  return TruncateExplored(std::move(explored), config);
}

// Algorithm 1 over a sampled residual of a shared parent — the ensemble
// hot loop. The mask is cached once as a member-dense residual view
// (SetResidualView) and the per-iteration residual is just the
// `view_alive` bitmap over its slots: every iteration streams
// residual-sized compact arrays with no parent-array gathers and no
// work-list rebuild. Output is bit-identical to running
// RunFdetOverResidual on the same initial residual: the alive slots of
// the ascending mask are that iteration's work list, in order, and the
// member-dense ids translate monotonically back to parent ids.
FdetResult RunFdetInView(const CsrGraph& graph,
                         std::span<const EdgeId> initial_residual,
                         double weight_scale, const FdetConfig& config,
                         PeelScratch* scratch) {
  const int explore_limit = config.policy == TruncationPolicy::kFixedK
                                ? std::max(config.max_blocks, config.fixed_k)
                                : config.max_blocks;

  std::vector<DetectedBlock> explored;
  std::vector<double> scores_so_far;

  CsrPeeler peeler(graph, scratch);
  PeelScratch& s = *scratch;
  peeler.SetResidualView(initial_residual);

  const int64_t mask_size = static_cast<int64_t>(s.view_mask.size());
  const int32_t member_users = static_cast<int32_t>(s.member_user_count);
  for (int64_t i = 0; i < mask_size; ++i) {
    s.view_alive[static_cast<size_t>(i)] = 1;
    s.view_alive_m[static_cast<size_t>(i)] = 1;
  }
  int64_t alive_edges = mask_size;

  while (static_cast<int>(explored.size()) < explore_limit &&
         alive_edges > 0) {
    // Member-space peel; `peel.users` / `peel.merchants` are member ids.
    PeelResult peel = peeler.PeelAliveInView(config.density, weight_scale);
    if (peel.score <= config.min_block_score ||
        (peel.users.empty() && peel.merchants.empty())) {
      break;
    }

    DetectedBlock block;
    block.score = peel.score;
    // Member ids are ascending and monotone in parent id, so the
    // translated lists stay ascending.
    block.users.reserve(peel.users.size());
    for (UserId mu : peel.users) block.users.push_back(s.member_users[mu]);
    block.merchants.reserve(peel.merchants.size());
    for (MerchantId mj : peel.merchants) {
      block.merchants.push_back(s.member_merchants[mj]);
    }
    explored.push_back(std::move(block));
    DetectedBlock& added = explored.back();

    // Remove E_i by clearing alive flags in mask order (so the recorded
    // block edges come out ascending, exactly like the work-list path).
    // Block-membership flags live in member id space — compact.
    for (UserId mu : peel.users) s.in_block_user[mu] = 1;
    for (MerchantId mj : peel.merchants) s.in_block_merchant[mj] = 1;
    int64_t removed_edges = 0;
    // The alive-slot walk is the dispatched find-next-alive kernel
    // (integer — exact at every ISA level); slot order is preserved, so
    // the recorded block edges still come out ascending.
    const simd::KernelTable& kern = simd::ActiveKernels();
    const uint8_t* alive_map = s.view_alive.data();
    for (int64_t i = kern.next_alive(alive_map, mask_size, 0); i < mask_size;
         i = kern.next_alive(alive_map, mask_size, i + 1)) {
      const int32_t mu = s.view_user_dense[static_cast<size_t>(i)];
      const int32_t mj =
          s.view_merchant_dense[static_cast<size_t>(i)] - member_users;
      if (s.in_block_user[mu] && s.in_block_merchant[mj]) {
        added.edges.push_back(s.view_mask[static_cast<size_t>(i)]);
        s.view_alive[static_cast<size_t>(i)] = 0;
        s.view_alive_m[static_cast<size_t>(
            s.view_merchant_slot[static_cast<size_t>(i)])] = 0;
        ++removed_edges;
      }
    }
    for (UserId mu : peel.users) s.in_block_user[mu] = 0;
    for (MerchantId mj : peel.merchants) s.in_block_merchant[mj] = 0;
    // The peeled block always contains at least one residual edge, so the
    // loop strictly shrinks the residual and must terminate.
    ENSEMFDET_CHECK(removed_edges > 0) << "detected block removed no edges";
    alive_edges -= removed_edges;

    scores_so_far.push_back(added.score);
    if (ElbowConfirmed(scores_so_far, config)) break;
  }

  // Restore the arena invariant (alive flags all-zero) on every exit path.
  for (int64_t i = 0; i < mask_size; ++i) {
    s.view_alive[static_cast<size_t>(i)] = 0;
    s.view_alive_m[static_cast<size_t>(i)] = 0;
  }

  return TruncateExplored(std::move(explored), config);
}

}  // namespace

Result<FdetResult> RunFdetCsr(const CsrGraph& graph,
                              const FdetConfig& config) {
  ENSEMFDET_RETURN_NOT_OK(ValidateFdetConfig(config));
  PeelScratch scratch;
  scratch.Prepare(graph);
  scratch.fdet_remaining.resize(static_cast<size_t>(graph.num_edges()));
  std::iota(scratch.fdet_remaining.begin(), scratch.fdet_remaining.end(),
            EdgeId{0});
  return RunFdetOverResidual(graph, config, &scratch);
}

Result<FdetResult> RunFdetCsrMasked(const CsrGraph& graph,
                                    std::span<const EdgeId> initial_residual,
                                    double weight_scale,
                                    const FdetConfig& config,
                                    PeelScratch* scratch) {
  ENSEMFDET_RETURN_NOT_OK(ValidateFdetConfig(config));
  if (!(weight_scale > 0.0)) {
    return Status::InvalidArgument("weight_scale must be > 0");
  }
  ENSEMFDET_CHECK(scratch != nullptr);
  scratch->Prepare(graph);
  return RunFdetInView(graph, initial_residual, weight_scale, config,
                       scratch);
}

Result<FdetResult> RunFdetReference(const BipartiteGraph& graph,
                                    const FdetConfig& config) {
  ENSEMFDET_RETURN_NOT_OK(ValidateFdetConfig(config));

  const int explore_limit = config.policy == TruncationPolicy::kFixedK
                                ? std::max(config.max_blocks, config.fixed_k)
                                : config.max_blocks;

  std::vector<DetectedBlock> explored;
  std::vector<double> scores_so_far;

  // The residual graph after removing previously detected blocks' edges,
  // kept as an edge subset of `graph` with id maps back to it.
  std::vector<EdgeId> remaining;
  remaining.reserve(static_cast<size_t>(graph.num_edges()));
  for (EdgeId e = 0; e < graph.num_edges(); ++e) remaining.push_back(e);

  while (static_cast<int>(explored.size()) < explore_limit &&
         !remaining.empty()) {
    SubgraphView view = SubgraphFromEdges(graph, remaining);
    PeelResult peel = PeelDensestBlock(view.graph, config.density);
    if (peel.score <= config.min_block_score ||
        (peel.users.empty() && peel.merchants.empty())) {
      break;
    }

    DetectedBlock block;
    block.score = peel.score;
    block.users.reserve(peel.users.size());
    for (UserId lu : peel.users) block.users.push_back(view.user_map[lu]);
    block.merchants.reserve(peel.merchants.size());
    for (MerchantId lv : peel.merchants) {
      block.merchants.push_back(view.merchant_map[lv]);
    }
    // Peeler emits ascending local ids; id maps are ascending, so parent
    // ids stay sorted — required by SortedContains below.
    explored.push_back(std::move(block));
    const DetectedBlock& added = explored.back();

    // Remove E_i: residual edges induced by the block's vertex set, and
    // record them on the block for diagnostics/invariant checking.
    std::vector<EdgeId> next;
    next.reserve(remaining.size());
    for (EdgeId e : remaining) {
      const Edge& edge = graph.edge(e);
      const bool inside = SortedContains(added.users, edge.user) &&
                          SortedContains(added.merchants, edge.merchant);
      if (inside) {
        explored.back().edges.push_back(e);
      } else {
        next.push_back(e);
      }
    }
    // The peeled block always contains at least one residual edge, so the
    // loop strictly shrinks `remaining` and must terminate.
    ENSEMFDET_CHECK(next.size() < remaining.size())
        << "detected block removed no edges";
    remaining = std::move(next);

    // Online truncation (Algorithm 1's stop condition): once the elbow is
    // `elbow_patience` blocks behind the frontier, further exploration
    // cannot move it — later blocks only extend the flat tail.
    scores_so_far.push_back(added.score);
    if (config.policy == TruncationPolicy::kAutoElbow &&
        static_cast<int>(scores_so_far.size()) >=
            AutoTruncationIndex(scores_so_far) + config.elbow_patience) {
      break;
    }
  }

  return TruncateExplored(std::move(explored), config);
}

}  // namespace ensemfdet
