#include "detect/fdet.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "common/logging.h"
#include "detect/csr_peeler.h"
#include "detect/greedy_peeler.h"
#include "graph/subgraph.h"

namespace ensemfdet {

namespace {

// Sorted-vector membership test; block node lists come out of the peeler
// sorted ascending.
template <typename T>
bool SortedContains(const std::vector<T>& sorted, T value) {
  auto it = std::lower_bound(sorted.begin(), sorted.end(), value);
  return it != sorted.end() && *it == value;
}

// Shared front-door validation for every FDET entry point.
Status ValidateFdetConfig(const FdetConfig& config) {
  if (config.max_blocks < 1) {
    return Status::InvalidArgument("max_blocks must be >= 1, got " +
                                   std::to_string(config.max_blocks));
  }
  if (config.policy == TruncationPolicy::kFixedK && config.fixed_k < 1) {
    return Status::InvalidArgument("fixed_k must be >= 1, got " +
                                   std::to_string(config.fixed_k));
  }
  if (config.elbow_patience < 1) {
    return Status::InvalidArgument("elbow_patience must be >= 1, got " +
                                   std::to_string(config.elbow_patience));
  }
  if (config.density.weight_kind == ColumnWeightKind::kLogarithmic &&
      config.density.log_offset <= 1.0) {
    return Status::InvalidArgument(
        "density log_offset must be > 1 for logarithmic weights");
  }
  if (config.density.weight_kind == ColumnWeightKind::kInverse &&
      config.density.log_offset <= 0.0) {
    return Status::InvalidArgument(
        "density log_offset must be > 0 for inverse weights");
  }
  return Status::OK();
}

// Truncation shared by all entry points: keep blocks 1..k̂ of `explored`.
FdetResult TruncateExplored(std::vector<DetectedBlock> explored,
                            const FdetConfig& config) {
  FdetResult result;
  result.all_scores.reserve(explored.size());
  for (const DetectedBlock& b : explored) result.all_scores.push_back(b.score);

  int keep;
  if (config.policy == TruncationPolicy::kFixedK) {
    keep = std::min<int>(config.fixed_k, static_cast<int>(explored.size()));
  } else {
    keep = AutoTruncationIndex(result.all_scores);
  }
  explored.resize(static_cast<size_t>(keep));
  result.blocks = std::move(explored);
  result.truncation_index = keep;
  return result;
}

}  // namespace

std::vector<UserId> FdetResult::DetectedUsers() const {
  std::vector<UserId> out;
  for (const DetectedBlock& b : blocks) {
    out.insert(out.end(), b.users.begin(), b.users.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<MerchantId> FdetResult::DetectedMerchants() const {
  std::vector<MerchantId> out;
  for (const DetectedBlock& b : blocks) {
    out.insert(out.end(), b.merchants.begin(), b.merchants.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

int AutoTruncationIndex(const std::vector<double>& scores) {
  const int len = static_cast<int>(scores.size());
  if (len <= 2) return len;
  // Δ²φ(i) = φ(i+1) − 2φ(i) + φ(i−1) over interior points (Definition 3);
  // the most negative value marks the last block before density falls off
  // a cliff — keep blocks 1..k̂. FDET always explores past the planted
  // structure into background noise (up to max_blocks), so the cliff is an
  // interior point of the series in practice.
  int best_i = 1;  // 0-indexed interior position
  double best_value = std::numeric_limits<double>::infinity();
  for (int i = 1; i + 1 < len; ++i) {
    const double d2 = scores[static_cast<size_t>(i) + 1] -
                      2.0 * scores[static_cast<size_t>(i)] +
                      scores[static_cast<size_t>(i) - 1];
    if (d2 < best_value) {
      best_value = d2;
      best_i = i;
    }
  }
  return best_i + 1;  // convert to 1-indexed block count
}

Result<FdetResult> RunFdet(const BipartiteGraph& graph,
                           const FdetConfig& config) {
  // Validate before the O(|U|+|V|+|E|) CSR conversion so a bad config
  // fails as cheaply as it did in the seed implementation.
  ENSEMFDET_RETURN_NOT_OK(ValidateFdetConfig(config));
  return RunFdetCsr(CsrGraph::FromBipartite(graph), config);
}

Result<FdetResult> RunFdetCsr(const CsrGraph& graph,
                              const FdetConfig& config) {
  ENSEMFDET_RETURN_NOT_OK(ValidateFdetConfig(config));

  const int explore_limit = config.policy == TruncationPolicy::kFixedK
                                ? std::max(config.max_blocks, config.fixed_k)
                                : config.max_blocks;

  std::vector<DetectedBlock> explored;
  std::vector<double> scores_so_far;

  // The residual after removing previously detected blocks' edges, as an
  // ascending edge-id subset of the shared immutable CSR arrays. The
  // peeler's scratch (and this vector) are the only mutable state — no
  // subgraph is ever rebuilt.
  CsrPeeler peeler(graph);
  std::vector<EdgeId> remaining(static_cast<size_t>(graph.num_edges()));
  std::iota(remaining.begin(), remaining.end(), EdgeId{0});

  // Block-membership flags, set and cleared per iteration.
  std::vector<uint8_t> in_block_user(static_cast<size_t>(graph.num_users()),
                                     0);
  std::vector<uint8_t> in_block_merchant(
      static_cast<size_t>(graph.num_merchants()), 0);

  while (static_cast<int>(explored.size()) < explore_limit &&
         !remaining.empty()) {
    PeelResult peel =
        peeler.Peel(remaining, config.density, PeelNodeScope::kIncidentOnly);
    if (peel.score <= config.min_block_score ||
        (peel.users.empty() && peel.merchants.empty())) {
      break;
    }

    DetectedBlock block;
    block.score = peel.score;
    block.users = std::move(peel.users);
    block.merchants = std::move(peel.merchants);
    explored.push_back(std::move(block));
    DetectedBlock& added = explored.back();

    // Remove E_i: residual edges induced by the block's vertex set, and
    // record them on the block for diagnostics/invariant checking.
    for (UserId u : added.users) in_block_user[u] = 1;
    for (MerchantId v : added.merchants) in_block_merchant[v] = 1;
    std::vector<EdgeId> next;
    next.reserve(remaining.size());
    for (EdgeId e : remaining) {
      const bool inside = in_block_user[graph.edge_user(e)] &&
                          in_block_merchant[graph.edge_merchant(e)];
      if (inside) {
        added.edges.push_back(e);
      } else {
        next.push_back(e);
      }
    }
    for (UserId u : added.users) in_block_user[u] = 0;
    for (MerchantId v : added.merchants) in_block_merchant[v] = 0;
    // The peeled block always contains at least one residual edge, so the
    // loop strictly shrinks `remaining` and must terminate.
    ENSEMFDET_CHECK(next.size() < remaining.size())
        << "detected block removed no edges";
    remaining = std::move(next);

    // Online truncation (Algorithm 1's stop condition): once the elbow is
    // `elbow_patience` blocks behind the frontier, further exploration
    // cannot move it — later blocks only extend the flat tail.
    scores_so_far.push_back(added.score);
    if (config.policy == TruncationPolicy::kAutoElbow &&
        static_cast<int>(scores_so_far.size()) >=
            AutoTruncationIndex(scores_so_far) + config.elbow_patience) {
      break;
    }
  }

  return TruncateExplored(std::move(explored), config);
}

Result<FdetResult> RunFdetReference(const BipartiteGraph& graph,
                                    const FdetConfig& config) {
  ENSEMFDET_RETURN_NOT_OK(ValidateFdetConfig(config));

  const int explore_limit = config.policy == TruncationPolicy::kFixedK
                                ? std::max(config.max_blocks, config.fixed_k)
                                : config.max_blocks;

  std::vector<DetectedBlock> explored;
  std::vector<double> scores_so_far;

  // The residual graph after removing previously detected blocks' edges,
  // kept as an edge subset of `graph` with id maps back to it.
  std::vector<EdgeId> remaining;
  remaining.reserve(static_cast<size_t>(graph.num_edges()));
  for (EdgeId e = 0; e < graph.num_edges(); ++e) remaining.push_back(e);

  while (static_cast<int>(explored.size()) < explore_limit &&
         !remaining.empty()) {
    SubgraphView view = SubgraphFromEdges(graph, remaining);
    PeelResult peel = PeelDensestBlock(view.graph, config.density);
    if (peel.score <= config.min_block_score ||
        (peel.users.empty() && peel.merchants.empty())) {
      break;
    }

    DetectedBlock block;
    block.score = peel.score;
    block.users.reserve(peel.users.size());
    for (UserId lu : peel.users) block.users.push_back(view.user_map[lu]);
    block.merchants.reserve(peel.merchants.size());
    for (MerchantId lv : peel.merchants) {
      block.merchants.push_back(view.merchant_map[lv]);
    }
    // Peeler emits ascending local ids; id maps are ascending, so parent
    // ids stay sorted — required by SortedContains below.
    explored.push_back(std::move(block));
    const DetectedBlock& added = explored.back();

    // Remove E_i: residual edges induced by the block's vertex set, and
    // record them on the block for diagnostics/invariant checking.
    std::vector<EdgeId> next;
    next.reserve(remaining.size());
    for (EdgeId e : remaining) {
      const Edge& edge = graph.edge(e);
      const bool inside = SortedContains(added.users, edge.user) &&
                          SortedContains(added.merchants, edge.merchant);
      if (inside) {
        explored.back().edges.push_back(e);
      } else {
        next.push_back(e);
      }
    }
    // The peeled block always contains at least one residual edge, so the
    // loop strictly shrinks `remaining` and must terminate.
    ENSEMFDET_CHECK(next.size() < remaining.size())
        << "detected block removed no edges";
    remaining = std::move(next);

    // Online truncation (Algorithm 1's stop condition): once the elbow is
    // `elbow_patience` blocks behind the frontier, further exploration
    // cannot move it — later blocks only extend the flat tail.
    scores_so_far.push_back(added.score);
    if (config.policy == TruncationPolicy::kAutoElbow &&
        static_cast<int>(scores_so_far.size()) >=
            AutoTruncationIndex(scores_so_far) + config.elbow_patience) {
      break;
    }
  }

  return TruncateExplored(std::move(explored), config);
}

}  // namespace ensemfdet
