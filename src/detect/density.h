// The density score φ (paper Definition 2, metric of FRAUDAR [13]).
//
// Each edge (i, j) is discounted by its merchant's popularity:
//
//   weight(i,j) = w_ij / log(c + d_j)
//   φ(S)        = Σ_{(i,j) ∈ E(S)} weight(i,j) / (|S ∩ U| + |S ∩ V|)
//
// where d_j is merchant j's degree in the graph under evaluation, w_ij the
// edge weight (1 unless the graph is reweighted per Theorem 1), and c > 1
// keeps the logarithm positive. Discounting high-degree merchants is the
// camouflage defence: fraudsters padding their accounts with edges to
// popular merchants gain almost no density.
//
// (The paper's printed formula omits the edge sum — see DESIGN.md §1 for
// why this is the form its own algorithmics require.)
#ifndef ENSEMFDET_DETECT_DENSITY_H_
#define ENSEMFDET_DETECT_DENSITY_H_

#include "graph/bipartite_graph.h"

namespace ensemfdet {

/// The column-weight family of FRAUDAR [13]: how strongly a merchant's
/// popularity discounts its edges. kLogarithmic is the paper's choice
/// (camouflage-resistant without over-penalizing mid-size merchants);
/// kConstant ignores popularity (classic average-degree density, the
/// camouflage-vulnerable strawman); kInverse discounts aggressively.
enum class ColumnWeightKind {
  kLogarithmic,  ///< 1 / log(c + d)   — Definition 2 / FRAUDAR default
  kInverse,      ///< 1 / (c + d)
  kConstant,     ///< 1                — no popularity discount
};

struct DensityConfig {
  ColumnWeightKind weight_kind = ColumnWeightKind::kLogarithmic;
  /// Offset c in the weight formulas above. For kLogarithmic it must be
  /// > 1 so the weight stays positive for every degree; FRAUDAR's choice
  /// is 5.
  double log_offset = 5.0;
};

/// Stable name for a weight kind ("logarithmic", "inverse", "constant").
const char* ColumnWeightKindName(ColumnWeightKind kind);

/// Per-edge discount for a merchant of (current) degree `degree`.
double MerchantColumnWeight(double degree, const DensityConfig& config);

/// Total suspiciousness mass f(G) = Σ_e w_e / log(c + d_{merchant(e)}),
/// with d taken from `graph` itself.
double SuspiciousnessMass(const BipartiteGraph& graph,
                          const DensityConfig& config);

/// φ(G) = f(G) / (|U| + |V|). Returns 0 for a graph with no nodes.
double DensityScore(const BipartiteGraph& graph, const DensityConfig& config);

}  // namespace ensemfdet

#endif  // ENSEMFDET_DETECT_DENSITY_H_
