// CSR-native greedy densest-block peeling (the FRAUDAR-style greedy of
// paper Algorithm 1, lines 3-8) that peels **in place** over an immutable
// CsrGraph plus an alive-edge set, instead of materializing a compacted
// BipartiteGraph per call.
//
// This is what makes iterated FDET cheap: each block iteration used to
// rebuild a subgraph (sort + two hash maps + two CSR constructions) just
// to peel it once; CsrPeeler reuses one set of flat scratch arrays
// (degrees, priorities, removal flags, an IndexedMinHeap) across
// iterations and walks the shared neighbor arrays directly.
//
// Bit-exactness contract: for the same residual edge set, Peel() performs
// the identical floating-point operations in the identical order as the
// seed PeelDensestBlock over the compacted subgraph (same per-node
// accumulation order, same heap insertion order, same smaller-id
// tie-breaks under the order-isomorphic id relabeling), so scores, block
// node sets, traces, and removal orders match the adjacency-list peeler
// exactly. tests/csr_parity_test.cc pins this.
#ifndef ENSEMFDET_DETECT_CSR_PEELER_H_
#define ENSEMFDET_DETECT_CSR_PEELER_H_

#include <span>
#include <vector>

#include "detect/density.h"
#include "detect/greedy_peeler.h"
#include "graph/csr_graph.h"

namespace ensemfdet {

namespace detail {

// Indexed binary min-heap over (key, id) with Floyd bulk-build — the peel
// loop's priority queue. Build is O(n) (instead of n·log n pushes) and
// the entry array is reused across peels.
//
// Output-equivalence note: PopMin returns the *global* minimum under the
// total order (key, then smaller id) of the alive entries, so the pop
// sequence is a pure function of the key arithmetic — identical to
// IndexedMinHeap's regardless of internal layout. AddTo applies
// `key + delta` exactly like IndexedMinHeap::AddToKey, preserving
// bit-exact parity with the seed peeler.
class PeelHeap {
 public:
  /// Heap over ids [0, capacity), initially empty.
  explicit PeelHeap(int64_t capacity);

  bool empty() const { return heap_.empty(); }
  int64_t size() const { return static_cast<int64_t>(heap_.size()); }

  /// Appends an entry without restoring heap order; call Heapify() after
  /// the last append and before any PopMin/AddTo.
  void Append(int64_t id, double key);
  /// Floyd heapify over everything appended so far; O(n).
  void Heapify();

  /// Removes and returns the smallest-(key, id) entry.
  int64_t PopMin();

  /// Adds `delta` (≤ 0 during peeling) to a contained id's key.
  void AddTo(int64_t id, double delta);

 private:
  struct Entry {
    double key;
    int64_t id;
  };
  bool Less(const Entry& a, const Entry& b) const {
    if (a.key != b.key) return a.key < b.key;
    return a.id < b.id;
  }
  void SiftUp(size_t i);
  void SiftDown(size_t i);
  void Place(size_t i, Entry e);

  std::vector<Entry> heap_;
  std::vector<int64_t> pos_;  // id → heap index, -1 if absent
};

}  // namespace detail

/// Which nodes take part in a peel (and therefore count in φ's
/// denominator and appear in the removal order).
enum class PeelNodeScope {
  /// Every node of the graph, isolated ones included — the semantics of
  /// the standalone adjacency-list PeelDensestBlock.
  kAllNodes,
  /// Only nodes incident to at least one residual edge — the semantics of
  /// FDET's per-iteration compacted subgraphs (isolated nodes never make
  /// it into a rebuilt subgraph).
  kIncidentOnly,
};

/// Reusable in-place peeler over one immutable CsrGraph.
///
/// @note Thread-safety: the referenced CsrGraph is shared and immutable,
///       but a CsrPeeler instance owns mutable scratch — use one instance
///       per thread. Constructing one is O(|U| + |V| + |E|) in allocation;
///       every Peel() reuses the buffers.
class CsrPeeler {
 public:
  /// Borrows `graph`, which must outlive the peeler.
  explicit CsrPeeler(const CsrGraph& graph);

  /// Peels the subgraph formed by `residual_edges` (ascending EdgeIds,
  /// duplicate-free) down to nothing, returning the argmax-φ prefix block
  /// exactly like PeelDensestBlock. The residual set itself is not
  /// modified; node ids in the result are the graph's own (no local
  /// remapping).
  ///
  /// @pre  `residual_edges` is sorted ascending with no duplicates.
  /// @post result.users / result.merchants are ascending; an empty
  ///       residual (or empty graph) yields an empty block with score 0.
  PeelResult Peel(std::span<const EdgeId> residual_edges,
                  const DensityConfig& config, PeelNodeScope scope,
                  bool keep_trace = false);

 private:
  const CsrGraph* graph_;
  // Scratch reused across Peel() calls; edge_alive_ is all-zero between
  // calls (reset from residual_edges on exit), the heap is empty.
  std::vector<int64_t> user_degree_;
  std::vector<int64_t> merchant_degree_;
  std::vector<double> col_weight_;
  std::vector<double> edge_mass_;  // per-edge weight·col_weight, by EdgeId
  std::vector<double> priority_;
  std::vector<uint8_t> edge_alive_;
  std::vector<uint8_t> removed_;
  std::vector<uint8_t> gone_;
  detail::PeelHeap heap_;
};

/// One-shot CSR peel of the whole graph, kAllNodes scope: produces results
/// bit-identical to `PeelDensestBlock(graph.ToBipartite(), ...)` (trace
/// and removal order included).
PeelResult PeelDensestBlockCsr(const CsrGraph& graph,
                               const DensityConfig& config,
                               bool keep_trace = false);

}  // namespace ensemfdet

#endif  // ENSEMFDET_DETECT_CSR_PEELER_H_
