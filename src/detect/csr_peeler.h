// CSR-native greedy densest-block peeling (the FRAUDAR-style greedy of
// paper Algorithm 1, lines 3-8) that peels **in place** over an immutable
// CsrGraph plus an alive-edge set, instead of materializing a compacted
// BipartiteGraph per call.
//
// This is what makes iterated FDET cheap: each block iteration used to
// rebuild a subgraph (sort + two hash maps + two CSR constructions) just
// to peel it once; CsrPeeler reuses one set of flat scratch arrays
// (degrees, priorities, removal flags, an indexed min-heap) across
// iterations and walks the shared neighbor arrays directly.
//
// The scratch arrays live in a PeelScratch arena that callers may own
// externally: the ensemble hot loop keeps one arena per worker thread so
// running FDET on thousands of sampled residuals performs zero arena
// allocations after warm-up (DESIGN.md §"Ensemble hot loop"). For a
// sampled member, SetResidualView() regroups the member's edge mask into
// compact slot-aligned rows (edge ids, endpoints, weights — one pass of
// parent gathers per member), after which PeelAliveInView() runs every
// FDET iteration touching only residual-sized, mostly L1-resident arrays:
// per-call initialization is O(|mask|) streaming — not O(|U| + |V|) and
// not O(parent-degree sums) — so peeling a sampled residual of a huge
// shared parent costs what peeling the equivalent materialized child
// would, without building it.
//
// Bit-exactness contract: for the same residual edge set, Peel() and
// PeelAliveInView() perform the identical floating-point operations in
// the identical order as the seed PeelDensestBlock over the compacted
// subgraph (same per-node accumulation order, same heap insertion order,
// same smaller-id tie-breaks under the order-isomorphic id relabeling),
// so scores, block node sets, traces, and removal orders match the
// adjacency-list peeler exactly. tests/csr_parity_test.cc and
// tests/ensemble_parity_test.cc pin this.
#ifndef ENSEMFDET_DETECT_CSR_PEELER_H_
#define ENSEMFDET_DETECT_CSR_PEELER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "detect/density.h"
#include "detect/greedy_peeler.h"
#include "graph/csr_graph.h"

namespace ensemfdet {

namespace detail {

// Indexed 4-ary min-heap over (key, id) with Floyd bulk-build — the peel
// loop's priority queue. Build is O(n) (instead of n·log n pushes) and
// the entry array is reused across peels. Arity 4 halves the levels a
// sift traverses versus a binary heap and puts all four children of a
// node in one cache line (4 × 16-byte entries).
//
// Ids are *dense per-peel slots* (0..n-1 in Append order), not graph node
// ids: the caller appends participants in ascending packed-node order and
// keeps a slot↔node mapping, so every array the sift chain touches
// (entries, positions) is sized to the residual — L1-resident for sampled
// ensemble members — instead of to the whole parent graph.
//
// Output-equivalence note: PopMin returns the *global* minimum under the
// total order (key, then smaller id) of the alive entries, so the pop
// sequence is a pure function of the key arithmetic — identical to
// IndexedMinHeap's regardless of arity, internal layout, or Append
// order; and because the dense slot assignment is monotone in packed
// node id, (key, slot) ties break exactly like (key, node). AddTo
// applies `key + delta` exactly like IndexedMinHeap::AddToKey,
// preserving bit-exact parity with the seed peeler.
class PeelHeap {
 public:
  /// Empty heap with zero id capacity; call EnsureCapacity before use.
  PeelHeap() = default;
  /// Heap over ids [0, capacity), initially empty.
  explicit PeelHeap(int64_t capacity);

  /// Grows the id capacity to at least `capacity` (never shrinks).
  /// Returns true if backing storage actually grew.
  bool EnsureCapacity(int64_t capacity);

  bool empty() const { return heap_.empty(); }
  int64_t size() const { return static_cast<int64_t>(heap_.size()); }

  /// Appends an entry for `id` without restoring heap order (any stale
  /// position bookkeeping for `id` from earlier builds is overwritten).
  /// Call Heapify() after the last append and before any PopMin/AddTo.
  void Append(int64_t id, double key);
  /// Floyd heapify over everything appended so far; O(n).
  void Heapify();

  /// Removes and returns the smallest-(key, id) entry. Internally uses the
  /// bottom-up "bounce" reinsertion (hole walks to a leaf choosing the
  /// smallest child, then the displaced last entry sifts up from there):
  /// fewer comparisons than the textbook sift-down, because the displaced
  /// entry of a min-heap almost always belongs near the leaves. The
  /// resulting layout can differ from the textbook variant's, but the pop
  /// sequence cannot — it is the (key, id) total order either way.
  int64_t PopMin();

  /// Adds `delta` (≤ 0 during peeling) to a contained id's key.
  void AddTo(int64_t id, double delta);

  /// Discards every remaining entry in O(size) without sifting — used
  /// when a peel proves no further pop can matter (mass exhausted).
  void Clear();

 private:
  static constexpr size_t kArity = 4;
  struct Entry {
    double key;
    int64_t id;
  };
  bool Less(const Entry& a, const Entry& b) const {
    if (a.key != b.key) return a.key < b.key;
    return a.id < b.id;
  }
  /// Index of the smallest child of `i`, or `size` when `i` is a leaf.
  size_t MinChild(size_t i) const;
  void SiftUp(size_t i);
  void SiftDown(size_t i);
  void Place(size_t i, Entry e);

  std::vector<Entry> heap_;
  std::vector<int64_t> pos_;  // dense id → heap index; stale once popped
};

}  // namespace detail

/// Which nodes take part in a peel (and therefore count in φ's
/// denominator and appear in the removal order).
enum class PeelNodeScope {
  /// Every node of the graph, isolated ones included — the semantics of
  /// the standalone adjacency-list PeelDensestBlock.
  kAllNodes,
  /// Only nodes incident to at least one residual edge — the semantics of
  /// FDET's per-iteration compacted subgraphs (isolated nodes never make
  /// it into a rebuilt subgraph).
  kIncidentOnly,
};

/// Externally ownable arena of every buffer CsrPeeler (and the masked FDET
/// driver, detect/fdet.h) needs: degree/priority/flag arrays, the peel
/// heap, the residual-view rows, and the FDET work lists. Prepare() grows
/// buffers to fit a graph and counts growth events, so a warm arena reused
/// across many peels reports zero further allocations — the number the
/// ensemble bench surfaces as `arena.grow_events`.
///
/// Invariants between uses (established by Prepare on fresh storage and
/// restored by every peel / masked-FDET run): `edge_alive`, `user_degree`,
/// `merchant_degree`, `gone`, `in_block_user`, `in_block_merchant` are
/// all-zero over their prepared extent and the heap is empty. Buffers
/// never shrink; an arena sized for one graph is warm for any graph with
/// no more users/merchants/edges.
///
/// @note Thread-safety: an arena is mutable state — one per thread.
struct PeelScratch {
  std::vector<int64_t> user_degree;
  std::vector<int64_t> merchant_degree;
  std::vector<double> col_weight;
  std::vector<double> edge_mass;  // per-edge weight·col_weight, by EdgeId
  std::vector<double> priority;
  std::vector<uint8_t> edge_alive;
  std::vector<uint8_t> removed;
  std::vector<uint8_t> gone;
  detail::PeelHeap heap;
  /// Nodes incident to the current residual (kIncidentOnly bookkeeping):
  /// users in ascending id order, merchants sorted after collection.
  std::vector<UserId> incident_users;
  std::vector<MerchantId> incident_merchants;
  std::vector<int64_t> removal_order;
  /// Per-peel dense heap-slot mapping: `dense_of[node]` (valid only for
  /// the current peel's participants, overwritten per build) and its
  /// compact inverse. Participant counts are bounded by int32 — a single
  /// peel over >2^31 incident nodes is out of scope.
  std::vector<int32_t> dense_of;
  std::vector<int64_t> dense_to_node;
  /// Residual work lists + block-membership flags for RunFdetCsrMasked.
  std::vector<EdgeId> fdet_remaining;
  std::vector<EdgeId> fdet_next;
  std::vector<uint8_t> in_block_user;
  std::vector<uint8_t> in_block_merchant;
  /// Residual view (CsrPeeler::SetResidualView): the member's edge mask
  /// renumbered once into *member-dense* node ids — mask-incident users
  /// 0..Uₘ-1 and merchants 0..Vₘ-1, both ascending in parent id — with
  /// every per-slot array compact and slot-aligned. One pass of parent
  /// gathers per member; after it, PeelAliveInView and the masked FDET
  /// driver stream only these residual-sized (mostly L1-resident) arrays,
  /// exactly like peeling a materialized child, without building one.
  /// The member numbering is monotone in parent id on each side, so
  /// member-space heap tie-breaks, sorts, and ascending outputs map
  /// 1:1 onto parent-space ones.
  std::vector<EdgeId> view_mask;             ///< slot → parent EdgeId (asc)
  std::vector<double> view_weight_of;        ///< edge weight per mask slot
  std::vector<int32_t> view_user_dense;      ///< member user id per slot
  std::vector<int32_t> view_merchant_dense;  ///< packed Uₘ+j per slot
  std::vector<int64_t> view_merchant_slot;   ///< mask slot → merchant slot
  std::vector<uint8_t> view_alive;           ///< per mask slot (driver-owned)
  std::vector<uint8_t> view_alive_m;         ///< same flag per merchant slot
  std::vector<double> view_user_mass;        ///< per-peel mass per mask slot
  std::vector<double> view_merchant_mass;    ///< per-peel mass per m-slot
  std::vector<int32_t> view_merchant_user_dense;  ///< member user per m-slot
  std::vector<UserId> member_users;          ///< member user → parent user
  std::vector<MerchantId> member_merchants;  ///< member merchant → parent
  std::vector<int64_t> member_user_begin;    ///< member user → first slot
  std::vector<int64_t> member_user_end;
  std::vector<int64_t> member_merchant_begin;  ///< member merchant → m-slots
  std::vector<int64_t> member_merchant_end;
  /// Uₘ of the current view (member merchant packed ids start here).
  int64_t member_user_count = 0;

  /// Cumulative count of buffer growth events across all Prepare() calls;
  /// stays flat once the arena is warm for the graphs it serves.
  int64_t grow_events = 0;

  /// Sizes every core peel/FDET buffer for `graph` (growing, never
  /// shrinking) and returns the number of buffers that had to grow (0
  /// when already warm). Residual-view buffers are NOT touched — they are
  /// grown lazily by SetResidualView via PrepareView, sized by the mask,
  /// so non-ensemble peels never pay for them.
  int64_t Prepare(const CsrGraph& graph);

  /// Sizes the residual-view buffers for a mask of `mask_size` edges
  /// (growing, never shrinking); counted in `grow_events` like Prepare.
  int64_t PrepareView(int64_t mask_size);
};

/// Reusable in-place peeler over one immutable CsrGraph.
///
/// @note Thread-safety: the referenced CsrGraph is shared and immutable,
///       but the peeler's scratch arena is mutable — use one instance (or
///       one external arena) per thread. Every Peel() reuses the buffers.
class CsrPeeler {
 public:
  /// Borrows `graph` (which must outlive the peeler) and owns a private
  /// arena sized for it — O(|U| + |V| + |E|) allocation, once.
  explicit CsrPeeler(const CsrGraph& graph);

  /// Borrows `graph` and an external arena (both must outlive the peeler).
  /// The arena is Prepare()d for `graph`; repeated construction against a
  /// warm arena performs no allocation — the ensemble hot loop's mode.
  CsrPeeler(const CsrGraph& graph, PeelScratch* scratch);

  /// Peels the subgraph formed by `residual_edges` (ascending EdgeIds,
  /// duplicate-free) down to nothing, returning the argmax-φ prefix block
  /// exactly like PeelDensestBlock. The residual set itself is not
  /// modified; node ids in the result are the graph's own (no local
  /// remapping). Every edge weight is scaled by `weight_scale` on the fly
  /// — bit-identical to peeling a materialized subgraph whose stored
  /// weights were pre-multiplied by the same factor (Theorem 1's 1/p
  /// reweighting without a reweighted copy); pass 1.0 for no scaling.
  ///
  /// Both trailing parameters are deliberately explicit (no defaults, no
  /// convenience overload): a double/bool pair with defaults would let
  /// `Peel(edges, cfg, scope, 1.0/ratio)` silently bind the scale to
  /// keep_trace (or vice versa) with no diagnostic.
  ///
  /// @pre  `residual_edges` is sorted ascending with no duplicates.
  /// @post result.users / result.merchants are ascending; an empty
  ///       residual (or empty graph) yields an empty block with score 0.
  PeelResult Peel(std::span<const EdgeId> residual_edges,
                  const DensityConfig& config, PeelNodeScope scope,
                  double weight_scale, bool keep_trace);

  /// Caches `mask` (the member's sampled edge set, ascending,
  /// duplicate-free) as the residual view: one pass of parent gathers
  /// renumbers the incident nodes into member-dense ids and builds
  /// slot-aligned endpoint/weight rows in the arena — no allocation when
  /// warm, no hash maps, no graph construction. Subsequent
  /// PeelAliveInView() calls run entirely over these compact arrays.
  void SetResidualView(std::span<const EdgeId> mask);

  /// View-driven peel of the *alive subset* of the residual view: peels
  /// the subgraph formed by the mask slots whose `view_alive` flag is
  /// set, with kIncidentOnly scope. The caller owns the alive flags
  /// (setting both per-slot copies for the whole mask before the first
  /// call and clearing edges between calls as blocks are removed —
  /// exactly FDET's loop) and must clear them when done.
  ///
  /// The result is in *member-dense* ids (result.users are member user
  /// ids, result.merchants member merchant ids; removal_order packs
  /// member ids) — translate through `member_users` / `member_merchants`.
  /// Under that order-preserving translation the output is bit-identical
  /// to Peel(alive_edges_ascending, kIncidentOnly, weight_scale): the
  /// alive slots of the ascending mask *are* that residual list, in
  /// order, and member numbering is monotone in parent id.
  ///
  /// @pre SetResidualView() was called for this mask.
  PeelResult PeelAliveInView(const DensityConfig& config, double weight_scale,
                             bool keep_trace = false);

 private:
  const CsrGraph* graph_;
  std::unique_ptr<PeelScratch> owned_;  // null when borrowing an arena
  PeelScratch* s_;
};

/// One-shot CSR peel of the whole graph, kAllNodes scope: produces results
/// bit-identical to `PeelDensestBlock(graph.ToBipartite(), ...)` (trace
/// and removal order included).
PeelResult PeelDensestBlockCsr(const CsrGraph& graph,
                               const DensityConfig& config,
                               bool keep_trace = false);

}  // namespace ensemfdet

#endif  // ENSEMFDET_DETECT_CSR_PEELER_H_
