// Component-partitioned FDET: exploit the fact that dense blocks never
// span connected components. The graph splits into components, FDET runs
// on each large-enough component independently (in parallel on a thread
// pool — a second parallelism axis on top of the ensemble's), and the
// per-component blocks merge into one global result re-truncated by the
// same Δ²φ rule.
//
// This is the "parallelism with all aspects of data" the paper's abstract
// claims, applied within a single sampled graph: components are
// embarrassingly parallel, and pruning components too small to host a
// fraud group skips most of the debris in real transaction graphs.
#ifndef ENSEMFDET_DETECT_PARTITIONED_FDET_H_
#define ENSEMFDET_DETECT_PARTITIONED_FDET_H_

#include "common/status.h"
#include "common/thread_pool.h"
#include "detect/fdet.h"
#include "graph/bipartite_graph.h"

namespace ensemfdet {

struct PartitionedFdetConfig {
  FdetConfig fdet;
  /// Components with fewer edges are skipped outright (too small to host
  /// a fraud group worth reporting). 1 = keep everything with an edge.
  int64_t min_component_edges = 1;
};

/// Runs FDET per connected component and merges. Blocks come back in
/// descending-φ order across components; truncation applies globally with
/// the configured policy, so the result is interchangeable with RunFdet's
/// (node ids are in `graph`'s id space). `pool` may be nullptr for
/// sequential execution — results are identical either way.
Result<FdetResult> RunPartitionedFdet(const BipartiteGraph& graph,
                                      const PartitionedFdetConfig& config,
                                      ThreadPool* pool = nullptr);

}  // namespace ensemfdet

#endif  // ENSEMFDET_DETECT_PARTITIONED_FDET_H_
