// Indexed binary min-heap with decrease/increase-key — the "minimal heap"
// of paper §IV-B that gives the peeler its O(log(|U|+|V|)) per-update,
// O(k̂·|E|·log(|U|+|V|)) total bound.
//
// Items are dense ids in [0, capacity); each id may be in the heap at most
// once, and a position index supports UpdateKey/Remove by id in O(log n).
// Ties break toward the smaller id so peeling is fully deterministic.
#ifndef ENSEMFDET_DETECT_INDEXED_HEAP_H_
#define ENSEMFDET_DETECT_INDEXED_HEAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ensemfdet {

class IndexedMinHeap {
 public:
  /// Heap over ids [0, capacity), initially empty.
  explicit IndexedMinHeap(int64_t capacity);

  int64_t size() const { return static_cast<int64_t>(heap_.size()); }
  bool empty() const { return heap_.empty(); }
  bool Contains(int64_t id) const { return pos_[static_cast<size_t>(id)] >= 0; }

  /// Current key of a contained id.
  double KeyOf(int64_t id) const;

  /// Inserts id with the given key; id must not be contained.
  void Push(int64_t id, double key);

  /// Smallest-key id (ties: smallest id). Heap must be nonempty.
  int64_t PeekMin() const;

  /// Removes and returns the smallest-key id.
  int64_t PopMin();

  /// Changes a contained id's key (either direction).
  void UpdateKey(int64_t id, double key);

  /// Adds `delta` to a contained id's key.
  void AddToKey(int64_t id, double delta);

  /// Removes a contained id.
  void Remove(int64_t id);

 private:
  struct Entry {
    double key;
    int64_t id;
  };

  bool Less(const Entry& a, const Entry& b) const {
    if (a.key != b.key) return a.key < b.key;
    return a.id < b.id;
  }
  void SiftUp(size_t i);
  void SiftDown(size_t i);
  void Place(size_t i, Entry e);

  std::vector<Entry> heap_;
  std::vector<int64_t> pos_;  // id → heap index, -1 if absent
};

}  // namespace ensemfdet

#endif  // ENSEMFDET_DETECT_INDEXED_HEAP_H_
