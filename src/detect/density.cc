#include "detect/density.h"

#include <cmath>

#include "common/logging.h"

namespace ensemfdet {

const char* ColumnWeightKindName(ColumnWeightKind kind) {
  switch (kind) {
    case ColumnWeightKind::kLogarithmic:
      return "logarithmic";
    case ColumnWeightKind::kInverse:
      return "inverse";
    case ColumnWeightKind::kConstant:
      return "constant";
  }
  return "unknown";
}

double MerchantColumnWeight(double degree, const DensityConfig& config) {
  switch (config.weight_kind) {
    case ColumnWeightKind::kLogarithmic:
      ENSEMFDET_DCHECK(config.log_offset > 1.0)
          << "log offset must exceed 1 to keep weights positive";
      return 1.0 / std::log(config.log_offset + degree);
    case ColumnWeightKind::kInverse:
      ENSEMFDET_DCHECK(config.log_offset > 0.0);
      return 1.0 / (config.log_offset + degree);
    case ColumnWeightKind::kConstant:
      return 1.0;
  }
  return 1.0;
}

double SuspiciousnessMass(const BipartiteGraph& graph,
                          const DensityConfig& config) {
  double mass = 0.0;
  for (int64_t v = 0; v < graph.num_merchants(); ++v) {
    const MerchantId m = static_cast<MerchantId>(v);
    const double col_weight = MerchantColumnWeight(
        static_cast<double>(graph.merchant_degree(m)), config);
    for (EdgeId e : graph.merchant_edges(m)) {
      mass += graph.edge_weight(e) * col_weight;
    }
  }
  return mass;
}

double DensityScore(const BipartiteGraph& graph,
                    const DensityConfig& config) {
  const int64_t nodes = graph.num_nodes();
  if (nodes == 0) return 0.0;
  return SuspiciousnessMass(graph, config) / static_cast<double>(nodes);
}

}  // namespace ensemfdet
