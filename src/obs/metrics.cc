#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ensemfdet {
namespace obs {

#if !defined(ENSEMFDET_METRICS_DISABLED)
namespace internal {

std::atomic<bool> g_runtime_enabled{true};

size_t ShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kCounterShards;
  return shard;
}

}  // namespace internal

void SetMetricsRuntimeEnabled(bool enabled) {
  internal::g_runtime_enabled.store(enabled, std::memory_order_relaxed);
}
bool MetricsRuntimeEnabled() { return internal::RuntimeEnabled(); }
#else
void SetMetricsRuntimeEnabled(bool) {}
bool MetricsRuntimeEnabled() { return false; }
#endif

std::string HistogramSnapshot::ExemplarTraceId() const {
  if (!has_exemplar()) return std::string();
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(exemplar.trace_hi),
                static_cast<unsigned long long>(exemplar.trace_lo));
  return std::string(buf);
}

double HistogramSnapshot::QuantileRaw(double q) const {
  if (count <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const int64_t target =
      std::max<int64_t>(1, static_cast<int64_t>(std::ceil(q * count)));
  int64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    if (cumulative + buckets[i] < target) {
      cumulative += buckets[i];
      continue;
    }
    const double lower = static_cast<double>(Histogram::BucketLowerBound(i));
    const double upper = static_cast<double>(Histogram::BucketUpperBound(i));
    const double fraction =
        static_cast<double>(target - cumulative) /
        static_cast<double>(buckets[i]);
    return lower + fraction * (upper - lower);
  }
  return static_cast<double>(
      Histogram::BucketUpperBound(Histogram::kNumBuckets - 1));
}

double HistogramSnapshot::Quantile(double q) const {
  const double raw = QuantileRaw(q);
  return unit == Histogram::Unit::kSeconds ? raw * 1e-9 : raw;
}

double HistogramSnapshot::ScaledSum() const {
  const double raw = static_cast<double>(raw_sum);
  return unit == Histogram::Unit::kSeconds ? raw * 1e-9 : raw;
}

const MetricSnapshot* RegistrySnapshot::Find(std::string_view name) const {
  for (const MetricSnapshot& metric : metrics) {
    if (metric.name == name) return &metric;
  }
  return nullptr;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked intentionally: worker threads may record during static
  // destruction; a destroyed registry would dangle under them.
  static MetricsRegistry* global = new MetricsRegistry();
  return *global;
}

MetricsRegistry::Entry& MetricsRegistry::GetEntry(std::string_view name,
                                                  InstrumentKind kind,
                                                  const char* help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_
             .emplace(std::string(name), Entry{kind, {}, {}, {}, {}})
             .first;
  } else if (it->second.kind != kind) {
    std::fprintf(stderr,
                 "MetricsRegistry: instrument '%.*s' registered twice with "
                 "different kinds\n",
                 static_cast<int>(name.size()), name.data());
    std::abort();
  }
  if (help != nullptr && it->second.help.empty()) it->second.help = help;
  return it->second;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     const char* help) {
  Entry& entry = GetEntry(name, InstrumentKind::kCounter, help);
  std::lock_guard<std::mutex> lock(mu_);
  if (entry.counter == nullptr) entry.counter = std::make_unique<Counter>();
  return entry.counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, const char* help) {
  Entry& entry = GetEntry(name, InstrumentKind::kGauge, help);
  std::lock_guard<std::mutex> lock(mu_);
  if (entry.gauge == nullptr) entry.gauge = std::make_unique<Gauge>();
  return entry.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         Histogram::Unit unit,
                                         const char* help) {
  Entry& entry = GetEntry(name, InstrumentKind::kHistogram, help);
  std::lock_guard<std::mutex> lock(mu_);
  if (entry.histogram == nullptr) {
    entry.histogram = std::make_unique<Histogram>(unit);
  }
  return entry.histogram.get();
}

RegistrySnapshot MetricsRegistry::Scrape() const {
  RegistrySnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.metrics.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    MetricSnapshot metric;
    metric.name = name;
    metric.help = entry.help;
    metric.kind = entry.kind;
    switch (entry.kind) {
      case InstrumentKind::kCounter:
        metric.value = entry.counter->Value();
        break;
      case InstrumentKind::kGauge:
        metric.value = entry.gauge->Value();
        break;
      case InstrumentKind::kHistogram: {
        const Histogram& hist = *entry.histogram;
        metric.histogram.unit = hist.unit();
        metric.histogram.raw_sum = hist.RawSum();
        metric.histogram.exemplar_value = hist.ExemplarValue();
        metric.histogram.exemplar = hist.ExemplarContext();
        int64_t count = 0;
        for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
          metric.histogram.buckets[i] = hist.BucketCount(i);
          count += metric.histogram.buckets[i];
        }
        metric.histogram.count = count;
        break;
      }
    }
    snapshot.metrics.push_back(std::move(metric));
  }
  // std::map iterates in name order already; keep the contract explicit.
  return snapshot;
}

}  // namespace obs
}  // namespace ensemfdet
