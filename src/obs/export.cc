#include "obs/export.h"

#include <cstdarg>
#include <cstdio>

namespace ensemfdet {
namespace obs {

namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char buf[512];
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, static_cast<size_t>(n));
}

/// Highest occupied bucket index, or -1 when the histogram is empty.
int HighestBucket(const HistogramSnapshot& hist) {
  for (int i = static_cast<int>(hist.buckets.size()) - 1; i >= 0; --i) {
    if (hist.buckets[static_cast<size_t>(i)] > 0) return i;
  }
  return -1;
}

double ScaledBound(const HistogramSnapshot& hist, size_t i) {
  const double raw = static_cast<double>(Histogram::BucketUpperBound(i));
  return hist.unit == Histogram::Unit::kSeconds ? raw * 1e-9 : raw;
}

}  // namespace

std::string ToPrometheusText(const RegistrySnapshot& snapshot) {
  std::string out;
  for (const MetricSnapshot& metric : snapshot.metrics) {
    const char* name = metric.name.c_str();
    switch (metric.kind) {
      case InstrumentKind::kCounter:
        AppendF(&out, "# TYPE %s counter\n%s %lld\n", name, name,
                static_cast<long long>(metric.value));
        break;
      case InstrumentKind::kGauge:
        AppendF(&out, "# TYPE %s gauge\n%s %lld\n", name, name,
                static_cast<long long>(metric.value));
        break;
      case InstrumentKind::kHistogram: {
        const HistogramSnapshot& hist = metric.histogram;
        AppendF(&out, "# TYPE %s histogram\n", name);
        const int highest = HighestBucket(hist);
        int64_t cumulative = 0;
        for (int i = 0; i <= highest; ++i) {
          cumulative += hist.buckets[static_cast<size_t>(i)];
          AppendF(&out, "%s_bucket{le=\"%.9g\"} %lld\n", name,
                  ScaledBound(hist, static_cast<size_t>(i)),
                  static_cast<long long>(cumulative));
        }
        AppendF(&out, "%s_bucket{le=\"+Inf\"} %lld\n", name,
                static_cast<long long>(hist.count));
        AppendF(&out, "%s_sum %.9g\n", name, hist.ScaledSum());
        AppendF(&out, "%s_count %lld\n", name,
                static_cast<long long>(hist.count));
        break;
      }
    }
  }
  return out;
}

std::string ToJson(const RegistrySnapshot& snapshot) {
  std::string out = "{\n  \"metrics\": [";
  bool first = true;
  for (const MetricSnapshot& metric : snapshot.metrics) {
    AppendF(&out, "%s\n    {\"name\": \"%s\", ", first ? "" : ",",
            metric.name.c_str());
    first = false;
    switch (metric.kind) {
      case InstrumentKind::kCounter:
        AppendF(&out, "\"type\": \"counter\", \"value\": %lld}",
                static_cast<long long>(metric.value));
        break;
      case InstrumentKind::kGauge:
        AppendF(&out, "\"type\": \"gauge\", \"value\": %lld}",
                static_cast<long long>(metric.value));
        break;
      case InstrumentKind::kHistogram: {
        const HistogramSnapshot& hist = metric.histogram;
        AppendF(&out,
                "\"type\": \"histogram\", \"unit\": \"%s\", "
                "\"count\": %lld, \"sum\": %.9g, \"p50\": %.9g, "
                "\"p99\": %.9g, \"p999\": %.9g, \"buckets\": [",
                hist.unit == Histogram::Unit::kSeconds ? "seconds" : "units",
                static_cast<long long>(hist.count), hist.ScaledSum(),
                hist.Quantile(0.50), hist.Quantile(0.99),
                hist.Quantile(0.999));
        const int highest = HighestBucket(hist);
        int64_t cumulative = 0;
        for (int i = 0; i <= highest; ++i) {
          cumulative += hist.buckets[static_cast<size_t>(i)];
          AppendF(&out, "%s{\"le\": %.9g, \"count\": %lld}",
                  i == 0 ? "" : ", ",
                  ScaledBound(hist, static_cast<size_t>(i)),
                  static_cast<long long>(cumulative));
        }
        out += "]}";
        break;
      }
    }
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace obs
}  // namespace ensemfdet
