#include "obs/export.h"

#include <cstdarg>
#include <cstdio>

namespace ensemfdet {
namespace obs {

namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char buf[512];
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, static_cast<size_t>(n));
}

/// Highest occupied bucket index, or -1 when the histogram is empty.
int HighestBucket(const HistogramSnapshot& hist) {
  for (int i = static_cast<int>(hist.buckets.size()) - 1; i >= 0; --i) {
    if (hist.buckets[static_cast<size_t>(i)] > 0) return i;
  }
  return -1;
}

double ScaledBound(const HistogramSnapshot& hist, size_t i) {
  const double raw = static_cast<double>(Histogram::BucketUpperBound(i));
  return hist.unit == Histogram::Unit::kSeconds ? raw * 1e-9 : raw;
}

double ScaledExemplar(const HistogramSnapshot& hist) {
  const double raw = static_cast<double>(hist.exemplar_value);
  return hist.unit == Histogram::Unit::kSeconds ? raw * 1e-9 : raw;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          AppendF(&out, "\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string EscapeExpositionText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string MetricHelpText(const MetricSnapshot& metric) {
  if (!metric.help.empty()) return metric.help;
  // Derive a serviceable description from the naming convention:
  // ensemfdet_<layer>_<name>{_total|_seconds} → "<layer> <name ...>".
  std::string_view body = metric.name;
  constexpr std::string_view kPrefix = "ensemfdet_";
  if (body.substr(0, kPrefix.size()) == kPrefix) {
    body.remove_prefix(kPrefix.size());
  }
  auto strip_suffix = [&](std::string_view suffix) {
    if (body.size() > suffix.size() &&
        body.substr(body.size() - suffix.size()) == suffix) {
      body.remove_suffix(suffix.size());
    }
  };
  strip_suffix("_total");
  strip_suffix("_seconds");
  std::string words(body);
  for (char& c : words) {
    if (c == '_') c = ' ';
  }
  switch (metric.kind) {
    case InstrumentKind::kCounter:
      return "Monotone count of " + words + " events.";
    case InstrumentKind::kGauge:
      return "Instantaneous " + words + " value.";
    case InstrumentKind::kHistogram:
      return metric.histogram.unit == Histogram::Unit::kSeconds
                 ? "Latency distribution of " + words + " in seconds."
                 : "Size distribution of " + words + ".";
  }
  return words;
}

std::string ToPrometheusText(const RegistrySnapshot& snapshot) {
  std::string out;
  for (const MetricSnapshot& metric : snapshot.metrics) {
    const char* name = metric.name.c_str();
    const std::string help = EscapeExpositionText(MetricHelpText(metric));
    AppendF(&out, "# HELP %s %s\n", name, help.c_str());
    switch (metric.kind) {
      case InstrumentKind::kCounter:
        AppendF(&out, "# TYPE %s counter\n%s %lld\n", name, name,
                static_cast<long long>(metric.value));
        break;
      case InstrumentKind::kGauge:
        AppendF(&out, "# TYPE %s gauge\n%s %lld\n", name, name,
                static_cast<long long>(metric.value));
        break;
      case InstrumentKind::kHistogram: {
        const HistogramSnapshot& hist = metric.histogram;
        AppendF(&out, "# TYPE %s histogram\n", name);
        const int highest = HighestBucket(hist);
        int64_t cumulative = 0;
        for (int i = 0; i <= highest; ++i) {
          cumulative += hist.buckets[static_cast<size_t>(i)];
          AppendF(&out, "%s_bucket{le=\"%.9g\"} %lld\n", name,
                  ScaledBound(hist, static_cast<size_t>(i)),
                  static_cast<long long>(cumulative));
        }
        AppendF(&out, "%s_bucket{le=\"+Inf\"} %lld\n", name,
                static_cast<long long>(hist.count));
        AppendF(&out, "%s_sum %.9g\n", name, hist.ScaledSum());
        AppendF(&out, "%s_count %lld\n", name,
                static_cast<long long>(hist.count));
        break;
      }
    }
  }
  return out;
}

std::string ToJson(const RegistrySnapshot& snapshot) {
  std::string out = "{\n  \"metrics\": [";
  bool first = true;
  for (const MetricSnapshot& metric : snapshot.metrics) {
    AppendF(&out, "%s\n    {\"name\": \"%s\", \"help\": \"%s\", ",
            first ? "" : ",", metric.name.c_str(),
            JsonEscape(MetricHelpText(metric)).c_str());
    first = false;
    switch (metric.kind) {
      case InstrumentKind::kCounter:
        AppendF(&out, "\"type\": \"counter\", \"value\": %lld}",
                static_cast<long long>(metric.value));
        break;
      case InstrumentKind::kGauge:
        AppendF(&out, "\"type\": \"gauge\", \"value\": %lld}",
                static_cast<long long>(metric.value));
        break;
      case InstrumentKind::kHistogram: {
        const HistogramSnapshot& hist = metric.histogram;
        AppendF(&out,
                "\"type\": \"histogram\", \"unit\": \"%s\", "
                "\"count\": %lld, \"sum\": %.9g, \"p50\": %.9g, "
                "\"p99\": %.9g, \"p999\": %.9g, ",
                hist.unit == Histogram::Unit::kSeconds ? "seconds" : "units",
                static_cast<long long>(hist.count), hist.ScaledSum(),
                hist.Quantile(0.50), hist.Quantile(0.99),
                hist.Quantile(0.999));
        if (hist.has_exemplar()) {
          char span_hex[17];
          std::snprintf(span_hex, sizeof(span_hex), "%016llx",
                        static_cast<unsigned long long>(
                            hist.exemplar.span_id));
          AppendF(&out,
                  "\"exemplar\": {\"value\": %.9g, \"trace_id\": \"%s\", "
                  "\"span_id\": \"%s\"}, ",
                  ScaledExemplar(hist), hist.ExemplarTraceId().c_str(),
                  span_hex);
        }
        out += "\"buckets\": [";
        const int highest = HighestBucket(hist);
        int64_t cumulative = 0;
        for (int i = 0; i <= highest; ++i) {
          cumulative += hist.buckets[static_cast<size_t>(i)];
          AppendF(&out, "%s{\"le\": %.9g, \"count\": %lld}",
                  i == 0 ? "" : ", ",
                  ScaledBound(hist, static_cast<size_t>(i)),
                  static_cast<long long>(cumulative));
        }
        out += "]}";
        break;
      }
    }
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace obs
}  // namespace ensemfdet
