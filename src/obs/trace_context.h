// Causal trace identity (DESIGN.md "Causal tracing & flight recorder").
//
// A TraceContext names "the work this thread is doing right now": a
// 128-bit trace id (one detection request / streamed report) plus the
// 64-bit id of the innermost open span. The context lives in a
// thread-local slot; TraceSpan pushes itself there on construction and
// restores the parent on destruction, so child spans parent correctly
// without any plumbing through call signatures. Crossing a thread is
// explicit: ThreadPool captures the submitter's context into the queued
// task and installs it (ScopedTraceContext) around execution, which is
// what makes one detection's span tree hang together across the fan-out.
//
// Ids are cheap and process-unique, not globally unique: span ids come
// from thread-local blocks carved off one global atomic (no contention,
// never 0); trace ids mix a per-process seed with a counter. Zero trace
// id means "no context" — spans opened there start a fresh trace (they
// become roots).
//
// With ENSEMFDET_METRICS=OFF everything here compiles to no-ops; the
// types stay defined so call sites don't need guards.
#ifndef ENSEMFDET_OBS_TRACE_CONTEXT_H_
#define ENSEMFDET_OBS_TRACE_CONTEXT_H_

#include <cstdint>

namespace ensemfdet {
namespace obs {

/// Identity of the current causal scope. Copyable, 24 bytes.
struct TraceContext {
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t span_id = 0;  // innermost open span; 0 = root position

  bool valid() const { return (trace_hi | trace_lo) != 0; }
  friend bool operator==(const TraceContext& a, const TraceContext& b) {
    return a.trace_hi == b.trace_hi && a.trace_lo == b.trace_lo &&
           a.span_id == b.span_id;
  }
};

#if !defined(ENSEMFDET_METRICS_DISABLED)

namespace internal {
extern thread_local TraceContext g_current_context;
}  // namespace internal

/// The calling thread's current context ({0,0,0} when none).
inline TraceContext CurrentTraceContext() {
  return internal::g_current_context;
}
inline void SetCurrentTraceContext(const TraceContext& ctx) {
  internal::g_current_context = ctx;
}

/// Process-unique span id, never 0. Wait-free after the first call per
/// thread-block (thread-local allocation from a global atomic).
uint64_t NewSpanId();

/// Fresh 128-bit trace id with span_id 0 — install it (ScopedTraceContext)
/// to make the next span a root. One call per service job / streamed
/// report.
TraceContext NewRootContext();

#else  // ENSEMFDET_METRICS_DISABLED

inline TraceContext CurrentTraceContext() { return {}; }
inline void SetCurrentTraceContext(const TraceContext&) {}
inline uint64_t NewSpanId() { return 0; }
inline TraceContext NewRootContext() { return {}; }

#endif

/// RAII: installs `ctx` as the thread's current context, restores the
/// previous one on scope exit. Used by ThreadPool around task execution
/// (with the submitter's captured context) and by the service/stream
/// layers to open a fresh root per unit of work.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx) {
#if !defined(ENSEMFDET_METRICS_DISABLED)
    prev_ = CurrentTraceContext();
    SetCurrentTraceContext(ctx);
#else
    (void)ctx;
#endif
  }
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;
  ~ScopedTraceContext() {
#if !defined(ENSEMFDET_METRICS_DISABLED)
    SetCurrentTraceContext(prev_);
#endif
  }

 private:
#if !defined(ENSEMFDET_METRICS_DISABLED)
  TraceContext prev_;
#endif
};

}  // namespace obs
}  // namespace ensemfdet

#endif  // ENSEMFDET_OBS_TRACE_CONTEXT_H_
