// Scoped timing + causal span emission. TraceSpan measures the enclosing
// scope's wall time, records it into a Histogram (Unit::kSeconds,
// nanosecond observations), and stamps the span with causal identity
// from trace_context.h: a span opened while a context is installed
// parents to that context's innermost span; opened with no context it
// starts a fresh trace and becomes a root.
//
// Three sinks, cheapest first:
//   * Histogram — always (runtime-enabled); tail recordings carry an
//     exemplar trace id (metrics.h) linking a p999 back to its span tree.
//   * Flight recorder — when installed (flight_recorder.h): one 64-byte
//     ring write per span, the always-on black box.
//   * Chrome timeline — when ENSEMFDET_TRACE=1 (or SetTraceEnabled):
//     events buffered under a mutex, written by FlushTraceTo() as Chrome
//     trace_event JSON (chrome://tracing / Perfetto). Complete events
//     ("ph":"X") carry trace/span/parent ids in args; ThreadPool emits
//     flow events ("ph":"s"/"f") tying an enqueue to its execution.
//
// Span names are interned into a process-lifetime table — dynamic
// (stack- or heap-built) names are safe, the buffered events and flight
// records hold the interned id, never the caller's pointer.
#ifndef ENSEMFDET_OBS_TRACE_H_
#define ENSEMFDET_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace_context.h"

namespace ensemfdet {
namespace obs {

/// True when ENSEMFDET_TRACE=1 was set at process start (cached) or
/// tracing was force-enabled for tests.
bool TraceEnabled();
/// Test/CLI hook: overrides the environment-derived state.
void SetTraceEnabled(bool enabled);

/// Nanoseconds since the process's trace epoch (first use).
int64_t TraceNowNs();

/// The calling thread's stable id in the trace timeline (dense,
/// first-use order). The flight recorder labels ring slots with it so a
/// dump's threads line up with the flushed timeline's "tid" fields.
int32_t CurrentThreadTraceId();

/// Interns `name`, returning a stable id (> 0) valid for the process
/// lifetime; returns 0 (rendered "(unknown)") once the table is full.
/// Safe for dynamic strings — the table owns a copy.
uint32_t InternSpanName(std::string_view name);
/// The interned string for `id`; "(unknown)" for 0 or out-of-range ids.
const char* InternedSpanName(uint32_t id);

/// Appends one complete ("ph":"X") event with no causal identity. `name`
/// is interned — dynamic names are safe (they used to have to outlive
/// the flush). Thread-safe; no-op when tracing is off.
void AppendTraceEvent(std::string_view name, int64_t start_ns,
                      int64_t duration_ns);

/// Appends one complete event stamped with trace/span/parent ids
/// (TraceSpan's emission path). No-op when tracing is off.
void AppendSpanEvent(uint32_t name_id, int64_t start_ns, int64_t duration_ns,
                     const TraceContext& ctx, uint64_t parent_span_id);

/// Appends a Chrome flow event: `ph` is 's' (flow opens at the enqueue
/// site) or 'f' (flow lands where the task runs); the shared `flow_id`
/// draws the arrow. No-op when tracing is off.
void AppendFlowEvent(std::string_view name, char ph, uint64_t flow_id);

/// Number of buffered events (test hook).
size_t TraceEventCount();

/// One buffered event, decoded (names resolved). ph 'X' = complete span;
/// 's'/'f' = flow endpoints (span_id holds the flow id, duration 0).
struct CollectedTraceEvent {
  std::string name;
  char ph = 'X';
  int32_t tid = 0;
  int64_t start_ns = 0;
  int64_t duration_ns = 0;
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
};

/// Removes and returns every buffered event (trace-report and tests
/// inspect span trees programmatically through this).
std::vector<CollectedTraceEvent> DrainTraceEvents();

/// Writes the buffered timeline as Chrome trace_event JSON and clears
/// the buffer. Returns false on I/O failure.
bool FlushTraceTo(const std::string& path);

/// RAII scope timer. On destruction records elapsed nanoseconds into
/// `histogram` (if non-null), appends a trace event and a flight record
/// (if `name` is non-null and the respective sink is on).
///
/// Link::kParent (default): the span installs itself as the thread's
/// current context, so spans opened inside it become its children.
/// Link::kDetached: the span records its parent but leaves the current
/// context alone — for infrastructure wrappers (ThreadPool's pool_task)
/// whose presence must not change the *detection* tree's shape across
/// pool widths.
class TraceSpan {
 public:
  enum class Link { kParent, kDetached };

  explicit TraceSpan(Histogram* histogram, const char* name = nullptr,
                     Link link = Link::kParent) {
#if !defined(ENSEMFDET_METRICS_DISABLED)
    trace_ = name != nullptr && TraceEnabled();
    if (internal::RuntimeEnabled() || trace_) {
      histogram_ = histogram;
      name_ = name;
      start_ns_ = TraceNowNs();
      const TraceContext parent = CurrentTraceContext();
      parent_span_id_ = parent.span_id;
      if (parent.valid()) {
        ctx_.trace_hi = parent.trace_hi;
        ctx_.trace_lo = parent.trace_lo;
      } else {
        const TraceContext fresh = NewRootContext();
        ctx_.trace_hi = fresh.trace_hi;
        ctx_.trace_lo = fresh.trace_lo;
      }
      ctx_.span_id = NewSpanId();
      if (link == Link::kParent) {
        prev_ = parent;
        SetCurrentTraceContext(ctx_);
        pushed_ = true;
      }
      active_ = true;
    }
#else
    (void)histogram;
    (void)name;
    (void)link;
#endif
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
#if !defined(ENSEMFDET_METRICS_DISABLED)
    if (!active_) return;
    const int64_t elapsed_ns = TraceNowNs() - start_ns_;
    // Record while this span is still the current context: the
    // histogram's tail exemplar then points at this span, not its
    // parent.
    if (histogram_ != nullptr && internal::RuntimeEnabled()) {
      histogram_->Record(elapsed_ns);
    }
    RecordFlightSpan(name_, start_ns_, elapsed_ns, ctx_, parent_span_id_);
    if (trace_) {
      AppendSpanEvent(InternSpanName(name_), start_ns_, elapsed_ns, ctx_,
                      parent_span_id_);
    }
    if (pushed_) SetCurrentTraceContext(prev_);
#endif
  }

  /// This span's identity (test hook; {0,...} when inactive).
  TraceContext context() const {
#if !defined(ENSEMFDET_METRICS_DISABLED)
    return ctx_;
#else
    return {};
#endif
  }

 private:
#if !defined(ENSEMFDET_METRICS_DISABLED)
  Histogram* histogram_ = nullptr;
  const char* name_ = nullptr;
  int64_t start_ns_ = 0;
  TraceContext ctx_;
  TraceContext prev_;
  uint64_t parent_span_id_ = 0;
  bool trace_ = false;
  bool active_ = false;
  bool pushed_ = false;
#endif
};

}  // namespace obs
}  // namespace ensemfdet

#endif  // ENSEMFDET_OBS_TRACE_H_
