// Scoped timing: TraceSpan measures the enclosing scope's wall time,
// records it into a Histogram (Unit::kSeconds, nanosecond observations),
// and — when tracing is on — appends a Chrome trace_event to the global
// in-memory timeline.
//
// Tracing is opt-in via the environment: ENSEMFDET_TRACE=1 enables event
// collection; FlushTraceTo() writes the collected events in Chrome's
// trace_event JSON format (load in chrome://tracing or Perfetto). Events
// are buffered under a mutex — tracing is a debugging mode, not a
// production path, so simplicity wins over lock-freedom there. With
// tracing off (the default) a span costs two steady_clock reads and one
// histogram record; with metrics compiled out it costs nothing.
#ifndef ENSEMFDET_OBS_TRACE_H_
#define ENSEMFDET_OBS_TRACE_H_

#include <cstdint>
#include <string>

#include "common/timer.h"
#include "obs/metrics.h"

namespace ensemfdet {
namespace obs {

/// True when ENSEMFDET_TRACE=1 was set at process start (cached) or
/// tracing was force-enabled for tests.
bool TraceEnabled();
/// Test/CLI hook: overrides the environment-derived state.
void SetTraceEnabled(bool enabled);

/// Nanoseconds since the process's trace epoch (first use).
int64_t TraceNowNs();

/// Appends one complete ("ph":"X") event. `name` must outlive the flush
/// (string literals only). Thread-safe; no-op when tracing is off.
void AppendTraceEvent(const char* name, int64_t start_ns, int64_t duration_ns);

/// Number of buffered events (test hook).
size_t TraceEventCount();

/// Writes the buffered timeline as Chrome trace_event JSON and clears
/// the buffer. Returns false on I/O failure.
bool FlushTraceTo(const std::string& path);

/// RAII scope timer. On destruction records elapsed nanoseconds into
/// `histogram` (if non-null) and appends a trace event (if `name` is
/// non-null and tracing is on).
class TraceSpan {
 public:
  explicit TraceSpan(Histogram* histogram, const char* name = nullptr) {
#if !defined(ENSEMFDET_METRICS_DISABLED)
    trace_ = name != nullptr && TraceEnabled();
    if (internal::RuntimeEnabled() || trace_) {
      histogram_ = histogram;
      name_ = name;
      if (trace_) start_ns_ = TraceNowNs();
      timer_.Restart();
      active_ = true;
    }
#else
    (void)histogram;
    (void)name;
#endif
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
#if !defined(ENSEMFDET_METRICS_DISABLED)
    if (!active_) return;
    const int64_t elapsed_ns = timer_.ElapsedNanos();
    if (histogram_ != nullptr && internal::RuntimeEnabled()) {
      histogram_->Record(elapsed_ns);
    }
    if (trace_) AppendTraceEvent(name_, start_ns_, elapsed_ns);
#endif
  }

 private:
#if !defined(ENSEMFDET_METRICS_DISABLED)
  WallTimer timer_;
  Histogram* histogram_ = nullptr;
  const char* name_ = nullptr;
  int64_t start_ns_ = 0;
  bool trace_ = false;
  bool active_ = false;
#endif
};

}  // namespace obs
}  // namespace ensemfdet

#endif  // ENSEMFDET_OBS_TRACE_H_
