// Engine-wide metrics substrate (DESIGN.md "Observability").
//
// Three instrument kinds, all safe for concurrent recording:
//   * Counter   — monotone, lock-free, sharded across cache-line-padded
//                 atomics so hot-path increments never contend. Shards are
//                 summed on scrape.
//   * Gauge     — a single relaxed atomic (set/add); used for
//                 instantaneous values like queue depth.
//   * Histogram — fixed log2 buckets (HDR-style) over non-negative int64
//                 observations, one relaxed atomic per bucket plus a sum.
//                 Quantiles are estimated on the snapshot by linear
//                 interpolation inside the hit bucket.
//
// Instruments live in a MetricsRegistry: name → instrument, created on
// first Get*() and stable for the registry's lifetime, so callers resolve
// a pointer once (cold path, mutex) and record through it forever (hot
// path, no locks). `MetricsRegistry::Global()` is the process-wide
// registry every layer records into; private registries can be
// instantiated where a component needs deltas isolated from the rest of
// the process (StreamingDetector does).
//
// Naming convention: ensemfdet_<layer>_<name>{_total|_seconds}; see
// DESIGN.md for the taxonomy. Histograms with Unit::kSeconds record
// nanoseconds and are scaled to seconds on export.
//
// Cost controls, outermost first:
//   * ENSEMFDET_METRICS=OFF (CMake) defines ENSEMFDET_METRICS_DISABLED
//     and compiles every record path to an empty inline — the no-op
//     build CI proves the engine works without the layer.
//   * SetMetricsRuntimeEnabled(false) stops recording at runtime (one
//     relaxed bool load per record). bench_obs uses this to measure the
//     instrumented-vs-off overhead inside a single process.
#ifndef ENSEMFDET_OBS_METRICS_H_
#define ENSEMFDET_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace_context.h"

namespace ensemfdet {
namespace obs {

#if defined(ENSEMFDET_METRICS_DISABLED)
inline constexpr bool kMetricsCompiledIn = false;
#else
inline constexpr bool kMetricsCompiledIn = true;
#endif

/// Runtime toggle, on by default. Affects recording only — scraping a
/// registry always works (it just stops moving while disabled).
void SetMetricsRuntimeEnabled(bool enabled);
bool MetricsRuntimeEnabled();

namespace internal {

inline constexpr size_t kCounterShards = 16;

#if !defined(ENSEMFDET_METRICS_DISABLED)
extern std::atomic<bool> g_runtime_enabled;
inline bool RuntimeEnabled() {
  return g_runtime_enabled.load(std::memory_order_relaxed);
}
/// Thread-sticky shard index: threads are assigned round-robin on first
/// record, so up to kCounterShards concurrent writers never share a line.
size_t ShardIndex();
#else
inline bool RuntimeEnabled() { return false; }
inline size_t ShardIndex() { return 0; }
#endif

struct alignas(64) PaddedAtomicI64 {
  std::atomic<int64_t> value{0};
};

}  // namespace internal

/// Monotone counter. Increment is wait-free (one relaxed fetch_add on
/// this thread's shard); Value() sums shards and is only approximately
/// ordered against concurrent increments — exact once writers quiesce.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(int64_t delta = 1) {
#if !defined(ENSEMFDET_METRICS_DISABLED)
    if (!internal::RuntimeEnabled()) return;
    shards_[internal::ShardIndex()].value.fetch_add(
        delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }

  int64_t Value() const {
    int64_t total = 0;
#if !defined(ENSEMFDET_METRICS_DISABLED)
    for (const auto& shard : shards_)
      total += shard.value.load(std::memory_order_relaxed);
#endif
    return total;
  }

 private:
#if !defined(ENSEMFDET_METRICS_DISABLED)
  internal::PaddedAtomicI64 shards_[internal::kCounterShards];
#endif
};

/// Instantaneous value (queue depth, live sessions). Single relaxed
/// atomic: Set/Add are wait-free; readers see some recent value.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t value) {
#if !defined(ENSEMFDET_METRICS_DISABLED)
    if (!internal::RuntimeEnabled()) return;
    value_.store(value, std::memory_order_relaxed);
#else
    (void)value;
#endif
  }
  void Add(int64_t delta) {
#if !defined(ENSEMFDET_METRICS_DISABLED)
    if (!internal::RuntimeEnabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }
  int64_t Value() const {
#if !defined(ENSEMFDET_METRICS_DISABLED)
    return value_.load(std::memory_order_relaxed);
#else
    return 0;
#endif
  }

 private:
#if !defined(ENSEMFDET_METRICS_DISABLED)
  std::atomic<int64_t> value_{0};
#endif
};

/// Fixed log2-bucket histogram over non-negative int64 observations.
/// Bucket 0 holds the value 0; bucket i (i >= 1) holds [2^(i-1), 2^i - 1]
/// — i.e. the bucket index is std::bit_width of the clamped value. 65
/// buckets cover the full int64 range with < 2x relative quantile error.
class Histogram {
 public:
  /// How recorded values should be scaled on export: kSeconds means the
  /// raw observations are nanoseconds (divide by 1e9); kUnits means they
  /// are dimensionless (bytes, items) and exported as-is.
  enum class Unit { kSeconds, kUnits };

  static constexpr size_t kNumBuckets = 65;

  explicit Histogram(Unit unit = Unit::kSeconds) : unit_(unit) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  static size_t BucketIndex(int64_t value) {
    if (value <= 0) return 0;
    return std::bit_width(static_cast<uint64_t>(value));
  }
  /// Inclusive upper bound of bucket `i` in raw (unscaled) units.
  /// Bucket 63's bound saturates at int64 max (2^63 - 1): non-negative
  /// observations never have a bit_width above 63, and computing
  /// (1 << 63) - 1 directly would be signed overflow.
  static int64_t BucketUpperBound(size_t i) {
    if (i == 0) return 0;
    if (i >= 63) return std::numeric_limits<int64_t>::max();
    return (int64_t{1} << i) - 1;
  }
  /// Inclusive lower bound of bucket `i` in raw (unscaled) units.
  static int64_t BucketLowerBound(size_t i) {
    if (i == 0) return 0;
    return int64_t{1} << (i - 1);
  }

  void Record(int64_t value) {
#if !defined(ENSEMFDET_METRICS_DISABLED)
    if (!internal::RuntimeEnabled()) return;
    if (value < 0) value = 0;
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    // Tail exemplar: remember the trace that produced the largest
    // observation so far, so a p999 in a scrape links back to a span
    // tree. One relaxed load on the hot path; the four stores below are
    // individually atomic but unsynchronized as a group — a scrape that
    // races a new maximum may pair the value with a neighbor exemplar's
    // ids, which is acceptable for a debugging pointer (exemplars are
    // best-effort by nature; exact once writers quiesce).
    if (value > exemplar_value_.load(std::memory_order_relaxed)) {
      const TraceContext ctx = CurrentTraceContext();
      if (ctx.valid()) {
        exemplar_trace_hi_.store(ctx.trace_hi, std::memory_order_relaxed);
        exemplar_trace_lo_.store(ctx.trace_lo, std::memory_order_relaxed);
        exemplar_span_.store(ctx.span_id, std::memory_order_relaxed);
        exemplar_value_.store(value, std::memory_order_relaxed);
      }
    }
#else
    (void)value;
#endif
  }

  Unit unit() const { return unit_; }

  int64_t Count() const {
    int64_t count = 0;
#if !defined(ENSEMFDET_METRICS_DISABLED)
    for (const auto& bucket : buckets_)
      count += bucket.load(std::memory_order_relaxed);
#endif
    return count;
  }
  int64_t RawSum() const {
#if !defined(ENSEMFDET_METRICS_DISABLED)
    return sum_.load(std::memory_order_relaxed);
#else
    return 0;
#endif
  }
  int64_t BucketCount(size_t i) const {
#if !defined(ENSEMFDET_METRICS_DISABLED)
    return buckets_[i].load(std::memory_order_relaxed);
#else
    (void)i;
    return 0;
#endif
  }

  /// Raw value of the tail exemplar (-1 when none recorded yet).
  int64_t ExemplarValue() const {
#if !defined(ENSEMFDET_METRICS_DISABLED)
    return exemplar_value_.load(std::memory_order_relaxed);
#else
    return -1;
#endif
  }
  /// The exemplar's causal identity (span_id = the recording span).
  TraceContext ExemplarContext() const {
    TraceContext ctx;
#if !defined(ENSEMFDET_METRICS_DISABLED)
    ctx.trace_hi = exemplar_trace_hi_.load(std::memory_order_relaxed);
    ctx.trace_lo = exemplar_trace_lo_.load(std::memory_order_relaxed);
    ctx.span_id = exemplar_span_.load(std::memory_order_relaxed);
#endif
    return ctx;
  }

 private:
  Unit unit_;
#if !defined(ENSEMFDET_METRICS_DISABLED)
  std::atomic<int64_t> sum_{0};
  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
  std::atomic<int64_t> exemplar_value_{-1};
  std::atomic<uint64_t> exemplar_trace_hi_{0};
  std::atomic<uint64_t> exemplar_trace_lo_{0};
  std::atomic<uint64_t> exemplar_span_{0};
#endif
};

/// Point-in-time copy of one histogram, self-contained for export and
/// quantile estimation. Taken bucket-by-bucket with relaxed loads, so a
/// snapshot scraped while writers are recording is internally "torn" by
/// at most the in-flight observations — never UB, and exact once writers
/// quiesce.
struct HistogramSnapshot {
  Histogram::Unit unit = Histogram::Unit::kSeconds;
  int64_t count = 0;
  int64_t raw_sum = 0;
  std::array<int64_t, Histogram::kNumBuckets> buckets{};
  /// Tail exemplar: the largest observation's raw value and causal ids
  /// (-1 / zeros when nothing was recorded with a context installed).
  int64_t exemplar_value = -1;
  TraceContext exemplar;

  bool has_exemplar() const { return exemplar_value >= 0 && exemplar.valid(); }
  /// 32-hex-digit trace id of the exemplar ("" when absent) — the same
  /// rendering the flushed timeline's args.trace_id uses, so the two
  /// join directly.
  std::string ExemplarTraceId() const;

  /// Estimated q-quantile (q in [0,1]) in raw units: walks the
  /// cumulative bucket counts to the bucket containing rank
  /// ceil(q*count), then interpolates linearly between the bucket's
  /// bounds by the rank's position inside the bucket. 0 when empty.
  double QuantileRaw(double q) const;
  /// QuantileRaw scaled per unit (ns → seconds for Unit::kSeconds).
  double Quantile(double q) const;
  /// Sum scaled per unit.
  double ScaledSum() const;
};

enum class InstrumentKind { kCounter, kGauge, kHistogram };

/// One scraped metric. `value` is meaningful for counters and gauges;
/// `histogram` for histograms.
struct MetricSnapshot {
  std::string name;
  std::string help;  // exporter-facing description ("" → derived)
  InstrumentKind kind = InstrumentKind::kCounter;
  int64_t value = 0;
  HistogramSnapshot histogram;
};

/// A full scrape, sorted by metric name.
struct RegistrySnapshot {
  std::vector<MetricSnapshot> metrics;
  /// nullptr when `name` is absent or not of kind `kind`.
  const MetricSnapshot* Find(std::string_view name) const;
};

/// Name → instrument map. Get*() is create-or-get under a mutex and
/// aborts on a kind mismatch (programmer error: one name, two types).
/// Returned pointers stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (never destroyed).
  static MetricsRegistry& Global();

  /// `help` (optional) is the exporter's # HELP text; the first non-null
  /// help registered for a name wins. Series registered without help get
  /// a description derived from the naming convention on export.
  Counter* GetCounter(std::string_view name, const char* help = nullptr);
  Gauge* GetGauge(std::string_view name, const char* help = nullptr);
  Histogram* GetHistogram(std::string_view name,
                          Histogram::Unit unit = Histogram::Unit::kSeconds,
                          const char* help = nullptr);

  /// Copies every instrument's current value; sorted by name.
  RegistrySnapshot Scrape() const;

 private:
  struct Entry {
    InstrumentKind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& GetEntry(std::string_view name, InstrumentKind kind,
                  const char* help);

  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace obs
}  // namespace ensemfdet

#endif  // ENSEMFDET_OBS_METRICS_H_
