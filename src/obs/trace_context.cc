#include "obs/trace_context.h"

#include <atomic>
#include <chrono>

#if !defined(ENSEMFDET_METRICS_DISABLED)

namespace ensemfdet {
namespace obs {

namespace internal {
thread_local TraceContext g_current_context;
}  // namespace internal

namespace {

// splitmix64: cheap avalanche so sequential counters don't produce
// near-identical trace ids.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t ProcessSeed() {
  static const uint64_t seed = [] {
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    static int anchor = 0;  // ASLR entropy: its address varies per process
    return Mix64(static_cast<uint64_t>(now.count()) ^
                 reinterpret_cast<uint64_t>(&anchor));
  }();
  return seed;
}

// Span ids are handed out in thread-local blocks of 2^16 carved off one
// global atomic: the global counter is touched once per 65k spans per
// thread, so the hot path is a thread-local increment. Block 1 is the
// first handed out, so id 0 (the "no parent" sentinel) is never issued.
constexpr uint64_t kSpanIdBlock = uint64_t{1} << 16;
std::atomic<uint64_t> g_next_span_block{1};

struct SpanIdAllocator {
  uint64_t next = 0;
  uint64_t end = 0;
};
thread_local SpanIdAllocator t_span_ids;

std::atomic<uint64_t> g_next_trace{1};

}  // namespace

uint64_t NewSpanId() {
  SpanIdAllocator& a = t_span_ids;
  if (a.next == a.end) {
    const uint64_t block =
        g_next_span_block.fetch_add(1, std::memory_order_relaxed);
    a.next = block * kSpanIdBlock;
    a.end = a.next + kSpanIdBlock;
  }
  return a.next++;
}

TraceContext NewRootContext() {
  const uint64_t n = g_next_trace.fetch_add(1, std::memory_order_relaxed);
  TraceContext ctx;
  ctx.trace_hi = ProcessSeed();
  ctx.trace_lo = Mix64(n ^ ProcessSeed());
  ctx.span_id = 0;
  return ctx;
}

}  // namespace obs
}  // namespace ensemfdet

#endif  // !ENSEMFDET_METRICS_DISABLED
