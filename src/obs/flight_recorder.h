// Always-on crash flight recorder (DESIGN.md "Causal tracing & flight
// recorder").
//
// Every completed TraceSpan leaves one fixed-size 64-byte binary record
// in a per-thread lock-free ring — the engine's black box. The rings live
// directly in a pre-sized memory-mapped file, so the last-N spans per
// thread survive *any* process death, including SIGKILL where no handler
// can run: the kernel's page cache keeps the mapped writes regardless of
// how the process exits. This replaces "tracing is a debugging mode" for
// the trailing window — recording costs one thread-local ring write, no
// locks, and is covered by the CI-gated 2% BENCH_obs budget.
//
// On fatal signals (SIGSEGV/SIGBUS/SIGILL/SIGFPE/SIGABRT) an installed
// handler additionally stamps the crash signal into the mapped header and
// appends a footer through an async-signal-safe path: a pre-opened fd and
// pwrite() only — no malloc, no locks, no stdio. ENSEMFDET_CHECK failures
// and WAL-recovery IOErrors reach the same dump through
// DumpFlightRecorder(), which may also msync (those run in normal, not
// signal, context).
//
// File layout (little-endian, offsets fixed by the header):
//   [FlightFileHeader: 4096 B]  magic/version/geometry + crash marker
//   [name table: max_names x 64 B]  interned span names, NUL-terminated
//   [thread slots: max_threads x (64 B slot header + ring_records x 64 B)]
//   [optional crash footer, appended by the signal/CHECK hook]
// Threads claim a slot on their first record (one atomic increment) and
// keep it for the process lifetime; `seq` in the slot header counts every
// record the thread ever wrote, so record i lives at seq % ring_records
// and the reader can tell retained from overwritten history.
//
// With ENSEMFDET_METRICS=OFF recording compiles out (there are no spans);
// Install refuses so callers can warn, but the reader still works — a
// metrics-off binary can inspect dumps produced elsewhere.
#ifndef ENSEMFDET_OBS_FLIGHT_RECORDER_H_
#define ENSEMFDET_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/trace_context.h"

namespace ensemfdet {
namespace obs {

/// One completed span in the black box. Exactly 64 bytes; written in
/// place into the mapped ring, read back verbatim by ReadFlightDump and
/// tools/check_trace.py --flight.
struct FlightRecord {
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  int64_t start_ns = 0;     // TraceNowNs() at span open
  int64_t duration_ns = 0;
  uint32_t name_id = 0;     // index into the dump's name table
  uint32_t flags = 0;       // reserved
  uint64_t seq = 0;         // per-thread monotone record number
};
static_assert(sizeof(FlightRecord) == 64,
              "FlightRecord is the on-disk ring format; keep it 64 bytes");

struct FlightRecorderOptions {
  std::string path;
  uint32_t ring_records = 2048;  // retained spans per thread
  uint32_t max_threads = 32;     // ring slots; extra threads drop records
  uint32_t max_names = 256;      // name-table capacity
};

/// Creates (truncates) the black-box file, maps it, installs the fatal-
/// signal handlers, and turns on recording. Reinstall is allowed (tests):
/// the previous mapping is leaked deliberately so threads racing a
/// reinstall never write through a dead pointer. Fails with
/// FailedPrecondition when metrics are compiled out.
Status InstallFlightRecorder(const FlightRecorderOptions& options);

bool FlightRecorderInstalled();

/// Marks `reason` in the black box and appends the crash footer via the
/// pre-opened fd, then msyncs the mapping. Safe from normal (non-signal)
/// context; the fatal-signal path uses an internal async-signal-safe
/// variant. No-op when no recorder is installed.
void DumpFlightRecorder(const char* reason);

namespace internal {
#if !defined(ENSEMFDET_METRICS_DISABLED)
extern std::atomic<bool> g_flight_active;
inline bool FlightActive() {
  return g_flight_active.load(std::memory_order_relaxed);
}
void RecordFlightSpanSlow(const char* name, int64_t start_ns,
                          int64_t duration_ns, const TraceContext& ctx,
                          uint64_t parent_span_id);
#else
inline bool FlightActive() { return false; }
inline void RecordFlightSpanSlow(const char*, int64_t, int64_t,
                                 const TraceContext&, uint64_t) {}
#endif
}  // namespace internal

/// Hot-path hook (TraceSpan destructor): one relaxed load when no
/// recorder is installed; otherwise a thread-local slot lookup and one
/// 64-byte ring write.
inline void RecordFlightSpan(const char* name, int64_t start_ns,
                             int64_t duration_ns, const TraceContext& ctx,
                             uint64_t parent_span_id) {
  if (name == nullptr || !internal::FlightActive()) return;
  internal::RecordFlightSpanSlow(name, start_ns, duration_ns, ctx,
                                 parent_span_id);
}

/// Decoded black box, oldest-to-newest per thread.
struct FlightDumpThread {
  uint32_t tid = 0;              // matches the trace timeline's tid
  uint64_t total_records = 0;    // ever written; > records.size() ⇒ wrapped
  std::vector<FlightRecord> records;
};

struct FlightDump {
  uint32_t ring_records = 0;
  uint32_t max_threads = 0;
  uint32_t max_names = 0;
  int32_t crash_signal = 0;      // 0 = no crash marker (e.g. SIGKILL)
  std::string crash_reason;
  bool has_footer = false;
  int32_t footer_signal = 0;
  std::string footer_reason;
  uint64_t dropped_records = 0;  // threads beyond max_threads
  std::vector<std::string> names;  // name_id → name ("" when unseen)
  std::vector<FlightDumpThread> threads;

  const std::string& Name(uint32_t id) const;
};

/// Parses a black-box file (works in every build config, and on dumps
/// from processes that died mid-write — records are fixed-size and
/// self-describing, so the worst torn artifact is one garbled record).
Result<FlightDump> ReadFlightDump(const std::string& path);

}  // namespace obs
}  // namespace ensemfdet

#endif  // ENSEMFDET_OBS_FLIGHT_RECORDER_H_
