#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

namespace ensemfdet {
namespace obs {

namespace {

struct TraceEvent {
  const char* name;  // string literal; not owned
  int64_t start_ns;
  int64_t duration_ns;
  int32_t tid;
};

struct TraceState {
  std::mutex mu;
  std::vector<TraceEvent> events;
};

TraceState& State() {
  static TraceState* state = new TraceState();  // leaked: see Global()
  return *state;
}

bool EnvTraceEnabled() {
  const char* value = std::getenv("ENSEMFDET_TRACE");
  return value != nullptr && std::strcmp(value, "1") == 0;
}

std::atomic<bool> g_trace_enabled{EnvTraceEnabled()};

int32_t ThreadTraceId() {
  static std::atomic<int32_t> next{0};
  thread_local const int32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

bool TraceEnabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void SetTraceEnabled(bool enabled) {
  g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

int64_t TraceNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - TraceEpoch())
      .count();
}

void AppendTraceEvent(const char* name, int64_t start_ns,
                      int64_t duration_ns) {
  if (!TraceEnabled()) return;
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.events.push_back(
      TraceEvent{name, start_ns, duration_ns, ThreadTraceId()});
}

size_t TraceEventCount() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.events.size();
}

bool FlushTraceTo(const std::string& path) {
  std::vector<TraceEvent> events;
  {
    TraceState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    events.swap(state.events);
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  // Chrome trace_event JSON array format: ts/dur are microseconds.
  std::fputs("[", f);
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    std::fprintf(f,
                 "%s\n{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
                 "\"ts\":%.3f,\"dur\":%.3f}",
                 i == 0 ? "" : ",", e.name, e.tid, e.start_ns / 1e3,
                 e.duration_ns / 1e3);
  }
  std::fputs("\n]\n", f);
  const bool ok = std::fclose(f) == 0;
  return ok;
}

}  // namespace obs
}  // namespace ensemfdet
