#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <vector>

namespace ensemfdet {
namespace obs {

namespace {

struct TraceEvent {
  uint32_t name_id;
  char ph;  // 'X' complete, 's'/'f' flow endpoints
  int32_t tid;
  int64_t start_ns;
  int64_t duration_ns;
  uint64_t trace_hi;
  uint64_t trace_lo;
  uint64_t span_id;  // flow events: the flow id
  uint64_t parent_span_id;
};

struct TraceState {
  std::mutex mu;
  std::vector<TraceEvent> events;
};

TraceState& State() {
  static TraceState* state = new TraceState();  // leaked: see Global()
  return *state;
}

bool EnvTraceEnabled() {
  const char* value = std::getenv("ENSEMFDET_TRACE");
  return value != nullptr && std::strcmp(value, "1") == 0;
}

std::atomic<bool> g_trace_enabled{EnvTraceEnabled()};

int32_t ThreadTraceId() {
  static std::atomic<int32_t> next{0};
  thread_local const int32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

// Interned span names: id → leaked C string, published with release so
// lock-free readers (the flight recorder's name mirror, FlushTraceTo)
// never see a half-written entry. Id 0 is the "(unknown)" sentinel; the
// table is bounded — span names are code-shaped (a few dozen in
// practice), so hitting the cap means a caller is interning unbounded
// data, and collapsing to "(unknown)" beats unbounded growth.
constexpr uint32_t kMaxSpanNames = 1024;
std::atomic<const char*> g_name_table[kMaxSpanNames];
std::mutex g_intern_mu;
std::map<std::string, uint32_t, std::less<>>& InternIndex() {
  static auto* index = new std::map<std::string, uint32_t, std::less<>>();
  return *index;
}
std::atomic<uint32_t> g_name_count{1};

void AppendEvent(const TraceEvent& event) {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.events.push_back(event);
}

void AppendHex(std::string* out, uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  out->append(buf);
}

}  // namespace

bool TraceEnabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void SetTraceEnabled(bool enabled) {
  g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

int64_t TraceNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - TraceEpoch())
      .count();
}

int32_t CurrentThreadTraceId() { return ThreadTraceId(); }

uint32_t InternSpanName(std::string_view name) {
  // Fast path: span names are almost always string literals, so a tiny
  // thread-local cache keyed by the *pointer* turns the steady state
  // into two loads. Dynamic names miss it and take the mutex below.
  struct CacheEntry {
    const char* data;
    size_t size;
    uint32_t id;
  };
  thread_local CacheEntry cache[8] = {};
  const size_t slot =
      (reinterpret_cast<uintptr_t>(name.data()) >> 4) & (8 - 1);
  if (cache[slot].data == name.data() && cache[slot].size == name.size()) {
    return cache[slot].id;
  }

  uint32_t id = 0;
  {
    std::lock_guard<std::mutex> lock(g_intern_mu);
    auto& index = InternIndex();
    auto it = index.find(name);
    if (it != index.end()) {
      id = it->second;
    } else {
      const uint32_t next = g_name_count.load(std::memory_order_relaxed);
      if (next < kMaxSpanNames) {
        char* copy = static_cast<char*>(std::malloc(name.size() + 1));
        if (copy != nullptr) {
          std::memcpy(copy, name.data(), name.size());
          copy[name.size()] = '\0';
          g_name_table[next].store(copy, std::memory_order_release);
          g_name_count.store(next + 1, std::memory_order_release);
          index.emplace(std::string(name), next);
          id = next;
        }
      }
    }
  }
  cache[slot] = CacheEntry{name.data(), name.size(), id};
  return id;
}

const char* InternedSpanName(uint32_t id) {
  if (id == 0 || id >= kMaxSpanNames) return "(unknown)";
  const char* name = g_name_table[id].load(std::memory_order_acquire);
  return name != nullptr ? name : "(unknown)";
}

void AppendTraceEvent(std::string_view name, int64_t start_ns,
                      int64_t duration_ns) {
  if (!TraceEnabled()) return;
  AppendEvent(TraceEvent{InternSpanName(name), 'X', ThreadTraceId(),
                         start_ns, duration_ns, 0, 0, 0, 0});
}

void AppendSpanEvent(uint32_t name_id, int64_t start_ns, int64_t duration_ns,
                     const TraceContext& ctx, uint64_t parent_span_id) {
  if (!TraceEnabled()) return;
  AppendEvent(TraceEvent{name_id, 'X', ThreadTraceId(), start_ns,
                         duration_ns, ctx.trace_hi, ctx.trace_lo,
                         ctx.span_id, parent_span_id});
}

void AppendFlowEvent(std::string_view name, char ph, uint64_t flow_id) {
  if (!TraceEnabled()) return;
  AppendEvent(TraceEvent{InternSpanName(name), ph, ThreadTraceId(),
                         TraceNowNs(), 0, 0, 0, flow_id, 0});
}

size_t TraceEventCount() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.events.size();
}

std::vector<CollectedTraceEvent> DrainTraceEvents() {
  std::vector<TraceEvent> events;
  {
    TraceState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    events.swap(state.events);
  }
  std::vector<CollectedTraceEvent> out;
  out.reserve(events.size());
  for (const TraceEvent& e : events) {
    CollectedTraceEvent c;
    c.name = InternedSpanName(e.name_id);
    c.ph = e.ph;
    c.tid = e.tid;
    c.start_ns = e.start_ns;
    c.duration_ns = e.duration_ns;
    c.trace_hi = e.trace_hi;
    c.trace_lo = e.trace_lo;
    c.span_id = e.span_id;
    c.parent_span_id = e.parent_span_id;
    out.push_back(std::move(c));
  }
  return out;
}

bool FlushTraceTo(const std::string& path) {
  std::vector<TraceEvent> events;
  {
    TraceState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    events.swap(state.events);
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  // Chrome trace_event JSON array format, one event per line (ts/dur are
  // microseconds). Complete events carry the causal ids in args; flow
  // events ("s" opens at the enqueue site, "f" lands where the task
  // runs) share an id so viewers draw the cross-thread arrow.
  std::fputs("[", f);
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    const char* name = InternedSpanName(e.name_id);
    if (e.ph == 'X') {
      std::string ids = "{\"trace_id\":\"";
      AppendHex(&ids, e.trace_hi);
      AppendHex(&ids, e.trace_lo);
      ids += "\",\"span_id\":\"";
      AppendHex(&ids, e.span_id);
      ids += "\",\"parent_span_id\":\"";
      AppendHex(&ids, e.parent_span_id);
      ids += "\"}";
      std::fprintf(f,
                   "%s\n{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
                   "\"ts\":%.3f,\"dur\":%.3f,\"args\":%s}",
                   i == 0 ? "" : ",", name, e.tid, e.start_ns / 1e3,
                   e.duration_ns / 1e3, ids.c_str());
    } else {
      std::string id;
      AppendHex(&id, e.span_id);
      std::fprintf(f,
                   "%s\n{\"name\":\"%s\",\"cat\":\"pool\",\"ph\":\"%c\","
                   "\"id\":\"%s\",\"pid\":1,\"tid\":%d,\"ts\":%.3f%s}",
                   i == 0 ? "" : ",", name, e.ph, id.c_str(), e.tid,
                   e.start_ns / 1e3, e.ph == 'f' ? ",\"bp\":\"e\"" : "");
    }
  }
  std::fputs("\n]\n", f);
  const bool ok = std::fclose(f) == 0;
  return ok;
}

}  // namespace obs
}  // namespace ensemfdet
