// Scrape serializers: Prometheus text exposition and a JSON snapshot.
// Pure functions over a RegistrySnapshot — the future network front end
// (ROADMAP item 4) serves these strings; the CLI writes them via
// --metrics-out and the metrics-dump subcommand.
#ifndef ENSEMFDET_OBS_EXPORT_H_
#define ENSEMFDET_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"

namespace ensemfdet {
namespace obs {

/// Prometheus text exposition format. Counters and gauges emit one
/// sample; histograms emit cumulative `_bucket{le=...}` samples (only
/// up to the highest occupied bucket, then `+Inf`), `_sum` (scaled per
/// unit) and `_count`. Metric names are emitted as registered — the
/// `ensemfdet_<layer>_<name>{_total|_seconds}` convention is the
/// caller's contract, validated by tools/check_metrics.py.
std::string ToPrometheusText(const RegistrySnapshot& snapshot);

/// JSON document: {"metrics":[...]} with per-kind fields; histograms
/// include count, scaled sum, p50/p99/p999 estimates, and the occupied
/// buckets as {"le": upper_bound, "count": cumulative}.
std::string ToJson(const RegistrySnapshot& snapshot);

}  // namespace obs
}  // namespace ensemfdet

#endif  // ENSEMFDET_OBS_EXPORT_H_
