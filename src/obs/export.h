// Scrape serializers: Prometheus text exposition and a JSON snapshot.
// Pure functions over a RegistrySnapshot — the future network front end
// (ROADMAP item 4) serves these strings; the CLI writes them via
// --metrics-out and the metrics-dump subcommand.
#ifndef ENSEMFDET_OBS_EXPORT_H_
#define ENSEMFDET_OBS_EXPORT_H_

#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace ensemfdet {
namespace obs {

/// Escapes text for a `# HELP` line per the Prometheus exposition
/// format: backslash → `\\`, newline → `\n`.
std::string EscapeExpositionText(std::string_view text);

/// The `# HELP` text for a series: the help registered with the
/// instrument when present, otherwise a description derived from the
/// `ensemfdet_<layer>_<name>{_total|_seconds}` naming convention (so
/// every series always has one — tools/check_metrics.py requires it).
std::string MetricHelpText(const MetricSnapshot& metric);

/// Prometheus text exposition format. Every series gets `# HELP`
/// (escaped per the format) and `# TYPE` lines. Counters and gauges emit
/// one sample; histograms emit cumulative `_bucket{le=...}` samples
/// (only up to the highest occupied bucket, then `+Inf`), `_sum` (scaled
/// per unit) and `_count`. Metric names are emitted as registered — the
/// `ensemfdet_<layer>_<name>{_total|_seconds}` convention is the
/// caller's contract, validated by tools/check_metrics.py.
std::string ToPrometheusText(const RegistrySnapshot& snapshot);

/// JSON document: {"metrics":[...]} with per-kind fields; every metric
/// carries "help"; histograms include count, scaled sum, p50/p99/p999
/// estimates, the occupied buckets as {"le": upper_bound, "count":
/// cumulative}, and — when a tail exemplar exists — an "exemplar"
/// object whose trace_id joins against the flushed timeline
/// (trace-report consumes this to link a p999 to its span tree).
std::string ToJson(const RegistrySnapshot& snapshot);

}  // namespace obs
}  // namespace ensemfdet

#endif  // ENSEMFDET_OBS_EXPORT_H_
