#include "obs/flight_recorder.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/trace.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define ENSEMFDET_FLIGHT_POSIX 1
#endif

namespace ensemfdet {
namespace obs {

namespace {

constexpr char kFileMagic[8] = {'E', 'F', 'D', 'T', 'F', 'R', 'E', 'C'};
constexpr char kFooterMagic[8] = {'E', 'F', 'D', 'T', 'C', 'R', 'S', 'H'};
constexpr uint32_t kFormatVersion = 1;
constexpr uint32_t kHeaderBytes = 4096;
constexpr uint32_t kNameBytes = 64;
constexpr uint32_t kSlotHeaderBytes = 64;
constexpr uint32_t kReasonClaimed = 0xffffffffu;

// Page 0 of the black box. All mutation after install goes through
// std::atomic_ref (the fatal-signal handler on one thread races the
// rings' owner threads and a post-mortem reader in another process).
struct FileHeader {
  char magic[8];
  uint32_t version;
  uint32_t record_bytes;
  uint32_t ring_records;
  uint32_t max_threads;
  uint32_t max_names;
  uint32_t name_bytes;
  uint64_t dropped_records;  // spans from threads beyond max_threads
  int32_t crash_signal;      // 0 until a fatal signal stamps it
  uint32_t crash_reason_len;  // kReasonClaimed while being written
  char crash_reason[192];
};
static_assert(sizeof(FileHeader) <= kHeaderBytes, "header must fit page 0");

struct SlotHeader {
  uint64_t next_seq;  // records ever written; owner-thread store-release
  uint32_t tid;       // CurrentThreadTraceId() of the owner
  uint32_t active;
  uint8_t pad[48];
};
static_assert(sizeof(SlotHeader) == kSlotHeaderBytes, "on-disk layout");

// Written once at a fixed offset (end of the mapped region) through the
// pre-opened fd — the only I/O the async-signal-safe dump path does.
struct CrashFooter {
  char magic[8];
  int32_t signal;
  uint32_t reason_len;
  char reason[180];
};

size_t SlotStride(const FlightRecorderOptions& opts) {
  return kSlotHeaderBytes +
         static_cast<size_t>(opts.ring_records) * sizeof(FlightRecord);
}

size_t MappedBytes(const FlightRecorderOptions& opts) {
  return kHeaderBytes + static_cast<size_t>(opts.max_names) * kNameBytes +
         static_cast<size_t>(opts.max_threads) * SlotStride(opts);
}

#if !defined(ENSEMFDET_METRICS_DISABLED) && defined(ENSEMFDET_FLIGHT_POSIX)

struct FlightState {
  int fd = -1;                // pre-opened; the crash path pwrite()s it
  uint8_t* base = nullptr;
  size_t mapped_bytes = 0;
  FileHeader* header = nullptr;
  char* names = nullptr;
  uint8_t* slots = nullptr;
  FlightRecorderOptions opts;
  std::atomic<uint32_t> next_slot{0};
  std::atomic<bool> footer_written{false};
};

// Swapped on (re)install; the old state is leaked deliberately so a
// thread racing a reinstall through a cached pointer still writes into
// live (just orphaned) memory.
std::atomic<FlightState*> g_flight_state{nullptr};
std::atomic<uint64_t> g_flight_epoch{0};

struct ThreadSlotCache {
  uint64_t epoch = 0;
  uint8_t* slot = nullptr;
};
thread_local ThreadSlotCache t_flight_slot;

// Async-signal-safe byte copy (memcpy is fine on every libc we target,
// but a manual loop removes the doubt).
void RawCopy(char* dst, const char* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] = src[i];
}

size_t RawLen(const char* s, size_t cap) {
  size_t n = 0;
  while (n < cap && s[n] != '\0') ++n;
  return n;
}

// Stamps the crash reason into the mapped header, first writer wins
// (a CHECK failure's message should not be clobbered by the SIGABRT
// that follows it). Async-signal-safe: atomics + byte stores.
void MarkReasonOnce(FlightState* s, const char* reason) {
  std::atomic_ref<uint32_t> len_ref(s->header->crash_reason_len);
  uint32_t expected = 0;
  if (!len_ref.compare_exchange_strong(expected, kReasonClaimed,
                                       std::memory_order_acq_rel)) {
    return;
  }
  const size_t cap = sizeof(s->header->crash_reason);
  const size_t n = RawLen(reason, cap);
  RawCopy(s->header->crash_reason, reason, n);
  len_ref.store(static_cast<uint32_t>(n), std::memory_order_release);
}

// The write()-only half of the dump: one pwrite of the footer through
// the fd opened at install time. First writer wins here too.
void WriteFooterOnce(FlightState* s, int sig, const char* reason) {
  bool expected = false;
  if (!s->footer_written.compare_exchange_strong(
          expected, true, std::memory_order_acq_rel)) {
    return;
  }
  CrashFooter footer;
  RawCopy(footer.magic, kFooterMagic, sizeof(footer.magic));
  footer.signal = sig;
  const size_t n = RawLen(reason, sizeof(footer.reason));
  footer.reason_len = static_cast<uint32_t>(n);
  for (size_t i = 0; i < sizeof(footer.reason); ++i) footer.reason[i] = '\0';
  RawCopy(footer.reason, reason, n);
  // Best effort by construction: if this write is lost the mapped rings
  // are still intact, so no error handling beyond the attempt.
  (void)pwrite(s->fd, &footer, sizeof(footer),
               static_cast<off_t>(s->mapped_bytes));
}

// Fatal-signal path: everything here is async-signal-safe (atomic
// stores into the mapping, pwrite on the pre-opened fd), then the
// default disposition is restored and the signal re-raised so the exit
// status is the one the drill/supervisor expects.
void FatalSignalHandler(int sig) {
  FlightState* s = g_flight_state.load(std::memory_order_acquire);
  if (s != nullptr) {
    std::atomic_ref<int32_t>(s->header->crash_signal)
        .store(sig, std::memory_order_relaxed);
    MarkReasonOnce(s, "fatal signal");
    WriteFooterOnce(s, sig, "fatal signal");
  }
  signal(sig, SIG_DFL);
  raise(sig);
}

void InstallSignalHandlersOnce() {
  static const bool installed = [] {
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = &FatalSignalHandler;
    sigemptyset(&action.sa_mask);
    for (int sig : {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT}) {
      sigaction(sig, &action, nullptr);
    }
    return true;
  }();
  (void)installed;
}

// Claims a ring slot for the calling thread (one atomic increment,
// once per thread per install).
uint8_t* AcquireSlot(FlightState* s) {
  const uint32_t index =
      s->next_slot.fetch_add(1, std::memory_order_relaxed);
  if (index >= s->opts.max_threads) return nullptr;
  uint8_t* slot = s->slots + static_cast<size_t>(index) * SlotStride(s->opts);
  SlotHeader* header = reinterpret_cast<SlotHeader*>(slot);
  header->tid = static_cast<uint32_t>(CurrentThreadTraceId());
  std::atomic_ref<uint32_t>(header->active)
      .store(1, std::memory_order_release);
  return slot;
}

// Mirrors an interned name into the file's name table the first time a
// record references it. Idempotent (same id always carries the same
// bytes), so concurrent mirrors are harmless; a reader that races the
// copy sees at worst a truncated name.
void EnsureNameMirrored(FlightState* s, uint32_t name_id) {
  if (name_id == 0 || name_id >= s->opts.max_names) return;
  char* slot = s->names + static_cast<size_t>(name_id) * kNameBytes;
  if (slot[0] != '\0') return;
  const char* name = InternedSpanName(name_id);
  const size_t n = RawLen(name, kNameBytes - 1);
  RawCopy(slot, name, n);
}

#endif  // !ENSEMFDET_METRICS_DISABLED && ENSEMFDET_FLIGHT_POSIX

}  // namespace

namespace internal {
#if !defined(ENSEMFDET_METRICS_DISABLED)
std::atomic<bool> g_flight_active{false};

void RecordFlightSpanSlow(const char* name, int64_t start_ns,
                          int64_t duration_ns, const TraceContext& ctx,
                          uint64_t parent_span_id) {
#if defined(ENSEMFDET_FLIGHT_POSIX)
  FlightState* s = g_flight_state.load(std::memory_order_acquire);
  if (s == nullptr) return;
  const uint64_t epoch = g_flight_epoch.load(std::memory_order_relaxed);
  ThreadSlotCache& cache = t_flight_slot;
  if (cache.epoch != epoch) {
    cache.epoch = epoch;
    cache.slot = AcquireSlot(s);
  }
  if (cache.slot == nullptr) {
    std::atomic_ref<uint64_t>(s->header->dropped_records)
        .fetch_add(1, std::memory_order_relaxed);
    return;
  }
  SlotHeader* slot_header = reinterpret_cast<SlotHeader*>(cache.slot);
  std::atomic_ref<uint64_t> seq_ref(slot_header->next_seq);
  const uint64_t seq = seq_ref.load(std::memory_order_relaxed);
  FlightRecord* ring =
      reinterpret_cast<FlightRecord*>(cache.slot + kSlotHeaderBytes);
  FlightRecord& record = ring[seq % s->opts.ring_records];
  record.trace_hi = ctx.trace_hi;
  record.trace_lo = ctx.trace_lo;
  record.span_id = ctx.span_id;
  record.parent_span_id = parent_span_id;
  record.start_ns = start_ns;
  record.duration_ns = duration_ns;
  record.name_id = InternSpanName(name);
  record.flags = 0;
  record.seq = seq;
  EnsureNameMirrored(s, record.name_id);
  // Publish the record before the count: a dumper that reads next_seq
  // sees fully-written records for everything below it.
  seq_ref.store(seq + 1, std::memory_order_release);
#else
  (void)name;
  (void)start_ns;
  (void)duration_ns;
  (void)ctx;
  (void)parent_span_id;
#endif
}
#endif  // !ENSEMFDET_METRICS_DISABLED
}  // namespace internal

Status InstallFlightRecorder(const FlightRecorderOptions& options) {
#if defined(ENSEMFDET_METRICS_DISABLED)
  (void)options;
  return Status::FailedPrecondition(
      "flight recorder unavailable: metrics compiled out "
      "(ENSEMFDET_METRICS=OFF)");
#elif !defined(ENSEMFDET_FLIGHT_POSIX)
  (void)options;
  return Status::NotImplemented(
      "flight recorder requires a POSIX mmap/signal environment");
#else
  if (options.path.empty()) {
    return Status::InvalidArgument("flight recorder path is empty");
  }
  if (options.ring_records == 0 || options.max_threads == 0 ||
      options.max_names == 0) {
    return Status::InvalidArgument(
        "flight recorder geometry must be non-zero "
        "(ring_records/max_threads/max_names)");
  }
  const int fd = open(options.path.c_str(), O_RDWR | O_CREAT | O_TRUNC
#if defined(O_CLOEXEC)
                                                | O_CLOEXEC
#endif
                      ,
                      0644);
  if (fd < 0) {
    return Status::IOError("open(" + options.path +
                           ") failed: " + std::strerror(errno));
  }
  const size_t bytes = MappedBytes(options);
  if (ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    const std::string err = std::strerror(errno);
    close(fd);
    return Status::IOError("ftruncate(" + options.path + ") failed: " + err);
  }
  void* base =
      mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) {
    const std::string err = std::strerror(errno);
    close(fd);
    return Status::IOError("mmap(" + options.path + ") failed: " + err);
  }

  auto* state = new FlightState();  // leaked on reinstall by design
  state->fd = fd;
  state->base = static_cast<uint8_t*>(base);
  state->mapped_bytes = bytes;
  state->opts = options;
  state->header = reinterpret_cast<FileHeader*>(state->base);
  state->names = reinterpret_cast<char*>(state->base + kHeaderBytes);
  state->slots = state->base + kHeaderBytes +
                 static_cast<size_t>(options.max_names) * kNameBytes;

  FileHeader* header = state->header;
  std::memcpy(header->magic, kFileMagic, sizeof(header->magic));
  header->version = kFormatVersion;
  header->record_bytes = sizeof(FlightRecord);
  header->ring_records = options.ring_records;
  header->max_threads = options.max_threads;
  header->max_names = options.max_names;
  header->name_bytes = kNameBytes;

  InstallSignalHandlersOnce();
  g_flight_state.store(state, std::memory_order_release);
  g_flight_epoch.fetch_add(1, std::memory_order_relaxed);
  internal::g_flight_active.store(true, std::memory_order_release);
  return Status::OK();
#endif
}

bool FlightRecorderInstalled() {
#if !defined(ENSEMFDET_METRICS_DISABLED) && defined(ENSEMFDET_FLIGHT_POSIX)
  return g_flight_state.load(std::memory_order_acquire) != nullptr;
#else
  return false;
#endif
}

void DumpFlightRecorder(const char* reason) {
#if !defined(ENSEMFDET_METRICS_DISABLED) && defined(ENSEMFDET_FLIGHT_POSIX)
  FlightState* s = g_flight_state.load(std::memory_order_acquire);
  if (s == nullptr) return;
  if (reason == nullptr) reason = "dump requested";
  MarkReasonOnce(s, reason);
  WriteFooterOnce(s, 0, reason);
  // Normal (non-signal) context: schedule writeback for durability
  // across an OS crash too. Not needed for cross-process visibility —
  // the page cache already gives readers the latest bytes.
  (void)msync(s->base, s->mapped_bytes, MS_ASYNC);
#else
  (void)reason;
#endif
}

const std::string& FlightDump::Name(uint32_t id) const {
  static const std::string unknown = "(unknown)";
  if (id >= names.size() || names[id].empty()) return unknown;
  return names[id];
}

Result<FlightDump> ReadFlightDump(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("open(" + path +
                           ") failed: " + std::strerror(errno));
  }
  auto fail = [&](const std::string& message) -> Status {
    std::fclose(f);
    return Status::IOError("flight dump " + path + ": " + message);
  };

  FileHeader header;
  if (std::fread(&header, sizeof(header), 1, f) != 1) {
    return fail("truncated header");
  }
  if (std::memcmp(header.magic, kFileMagic, sizeof(header.magic)) != 0) {
    return fail("bad magic");
  }
  if (header.version != kFormatVersion) {
    return fail("unsupported version " + std::to_string(header.version));
  }
  if (header.record_bytes != sizeof(FlightRecord) ||
      header.name_bytes != kNameBytes) {
    return fail("geometry mismatch (record/name sizes)");
  }
  // Corrupt geometry must not translate into absurd allocations.
  if (header.ring_records == 0 || header.ring_records > (1u << 20) ||
      header.max_threads == 0 || header.max_threads > 4096 ||
      header.max_names == 0 || header.max_names > 65536) {
    return fail("implausible geometry");
  }

  FlightDump dump;
  dump.ring_records = header.ring_records;
  dump.max_threads = header.max_threads;
  dump.max_names = header.max_names;
  dump.crash_signal = header.crash_signal;
  dump.dropped_records = header.dropped_records;
  if (header.crash_reason_len != 0 &&
      header.crash_reason_len != kReasonClaimed) {
    const size_t n = std::min<size_t>(header.crash_reason_len,
                                      sizeof(header.crash_reason));
    dump.crash_reason.assign(header.crash_reason, n);
  }

  if (std::fseek(f, kHeaderBytes, SEEK_SET) != 0) {
    return fail("seek to name table failed");
  }
  dump.names.resize(header.max_names);
  std::vector<char> name_buf(kNameBytes);
  for (uint32_t i = 0; i < header.max_names; ++i) {
    if (std::fread(name_buf.data(), kNameBytes, 1, f) != 1) {
      return fail("truncated name table");
    }
    name_buf[kNameBytes - 1] = '\0';
    dump.names[i] = name_buf.data();
  }

  FlightRecorderOptions geometry;
  geometry.ring_records = header.ring_records;
  geometry.max_threads = header.max_threads;
  geometry.max_names = header.max_names;
  const size_t stride = SlotStride(geometry);
  std::vector<uint8_t> slot_buf(stride);
  for (uint32_t t = 0; t < header.max_threads; ++t) {
    if (std::fread(slot_buf.data(), stride, 1, f) != 1) {
      return fail("truncated thread slot " + std::to_string(t));
    }
    const SlotHeader* slot =
        reinterpret_cast<const SlotHeader*>(slot_buf.data());
    if (slot->active == 0 && slot->next_seq == 0) continue;
    FlightDumpThread thread;
    thread.tid = slot->tid;
    thread.total_records = slot->next_seq;
    const FlightRecord* ring = reinterpret_cast<const FlightRecord*>(
        slot_buf.data() + kSlotHeaderBytes);
    const uint64_t total = slot->next_seq;
    const uint64_t first =
        total > header.ring_records ? total - header.ring_records : 0;
    thread.records.reserve(static_cast<size_t>(total - first));
    for (uint64_t seq = first; seq < total; ++seq) {
      const FlightRecord& record = ring[seq % header.ring_records];
      // A record whose stamped seq disagrees with its slot was torn by
      // the crash (overwrite in flight); drop it rather than report
      // garbage.
      if (record.seq != seq) continue;
      thread.records.push_back(record);
    }
    dump.threads.push_back(std::move(thread));
  }

  // Footer, if the crash hook got far enough to append one (a SIGKILL
  // leaves only the rings — that is the point of mapping them).
  CrashFooter footer;
  if (std::fread(&footer, sizeof(footer), 1, f) == 1 &&
      std::memcmp(footer.magic, kFooterMagic, sizeof(footer.magic)) == 0) {
    dump.has_footer = true;
    dump.footer_signal = footer.signal;
    const size_t n =
        std::min<size_t>(footer.reason_len, sizeof(footer.reason));
    dump.footer_reason.assign(footer.reason, n);
  }
  std::fclose(f);
  return dump;
}

}  // namespace obs
}  // namespace ensemfdet
