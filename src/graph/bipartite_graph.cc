#include "graph/bipartite_graph.h"

#include <algorithm>

namespace ensemfdet {

double BipartiteGraph::user_weighted_degree(UserId u) const {
  if (weights_.empty()) return static_cast<double>(user_degree(u));
  double sum = 0.0;
  for (EdgeId e : user_edges(u)) sum += weights_[static_cast<size_t>(e)];
  return sum;
}

double BipartiteGraph::merchant_weighted_degree(MerchantId v) const {
  if (weights_.empty()) return static_cast<double>(merchant_degree(v));
  double sum = 0.0;
  for (EdgeId e : merchant_edges(v)) sum += weights_[static_cast<size_t>(e)];
  return sum;
}

bool BipartiteGraph::HasEdge(UserId u, MerchantId v) const {
  if (u >= num_users_ || v >= num_merchants_) return false;
  auto span = user_edges(u);
  // user_adj_ is sorted by merchant id within each user's range.
  auto it = std::lower_bound(
      span.begin(), span.end(), v,
      [this](EdgeId e, MerchantId m) { return edge(e).merchant < m; });
  return it != span.end() && edge(*it).merchant == v;
}

}  // namespace ensemfdet
