// Stable content fingerprints of bipartite graphs — the value every cache
// key and version identity in the repo hangs off.
//
// A fingerprint covers |U|, |V|, every edge's endpoints in canonical id
// order, and per-edge weights when present. Two graphs with equal
// fingerprints are (modulo 64-bit hash collision) structurally identical,
// so detection results over them are interchangeable. The contract that
// matters for caching is *representation independence*: the adjacency
// form, the CSR form, and an incremental base+delta GraphVersion of the
// same live edge set all fingerprint to the same value (pinned by
// tests/csr_graph_test.cc and tests/ingest_store_test.cc), so keys derived
// from any representation are interchangeable.
//
// Lives in the graph layer (not service) so the ingest subsystem can stamp
// published GraphVersions without depending on the registry; the service
// re-exports these declarations via service/graph_registry.h.
#ifndef ENSEMFDET_GRAPH_FINGERPRINT_H_
#define ENSEMFDET_GRAPH_FINGERPRINT_H_

#include <cstdint>
#include <span>

#include "graph/bipartite_graph.h"
#include "graph/csr_graph.h"

namespace ensemfdet {

/// Stable 64-bit content hash of a graph (see file comment).
///
/// @note Thread-safety: pure function; safe to call concurrently.
uint64_t FingerprintGraph(const BipartiteGraph& graph);

/// CSR overload with the same value contract:
/// `FingerprintGraph(CsrGraph::FromBipartite(g)) == FingerprintGraph(g)`
/// for every graph g.
uint64_t FingerprintGraph(const CsrGraph& graph);

/// The shared core: fingerprints an explicit edge list. `edges` must be in
/// canonical order — ascending (user, merchant), duplicate-free — i.e. the
/// id order GraphBuilder::Build() produces; `weights` is empty for an
/// unweighted graph, else one weight per edge in the same order. Both
/// FingerprintGraph overloads and GraphVersion::ContentFingerprint()
/// funnel through this one definition, so the byte stream can never drift
/// between representations.
uint64_t FingerprintEdges(int64_t num_users, int64_t num_merchants,
                          std::span<const Edge> edges,
                          std::span<const double> weights = {});

}  // namespace ensemfdet

#endif  // ENSEMFDET_GRAPH_FINGERPRINT_H_
