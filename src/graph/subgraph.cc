#include "graph/subgraph.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "graph/graph_builder.h"

namespace ensemfdet {

namespace {

// Maps a sorted-unique vector of parent ids to dense local ids; returns the
// lookup table parent→local.
template <typename IdT>
std::unordered_map<IdT, IdT> BuildIdMap(const std::vector<IdT>& sorted_ids) {
  std::unordered_map<IdT, IdT> map;
  map.reserve(sorted_ids.size() * 2);
  for (size_t i = 0; i < sorted_ids.size(); ++i) {
    map.emplace(sorted_ids[i], static_cast<IdT>(i));
  }
  return map;
}

template <typename IdT>
std::vector<IdT> SortedUnique(std::span<const IdT> ids) {
  std::vector<IdT> out(ids.begin(), ids.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

SubgraphView SubgraphFromEdges(const BipartiteGraph& parent,
                               std::span<const EdgeId> edge_ids,
                               double weight_scale) {
  ENSEMFDET_CHECK(weight_scale > 0.0);
  std::vector<EdgeId> unique_edges(edge_ids.begin(), edge_ids.end());
  std::sort(unique_edges.begin(), unique_edges.end());
  unique_edges.erase(std::unique(unique_edges.begin(), unique_edges.end()),
                     unique_edges.end());

  SubgraphView view;
  {
    std::vector<UserId> users;
    std::vector<MerchantId> merchants;
    users.reserve(unique_edges.size());
    merchants.reserve(unique_edges.size());
    for (EdgeId e : unique_edges) {
      ENSEMFDET_DCHECK(e >= 0 && e < parent.num_edges());
      users.push_back(parent.edge(e).user);
      merchants.push_back(parent.edge(e).merchant);
    }
    view.user_map = SortedUnique<UserId>(users);
    view.merchant_map = SortedUnique<MerchantId>(merchants);
  }

  auto user_lookup = BuildIdMap(view.user_map);
  auto merchant_lookup = BuildIdMap(view.merchant_map);

  GraphBuilder builder(static_cast<int64_t>(view.user_map.size()),
                       static_cast<int64_t>(view.merchant_map.size()));
  builder.Reserve(static_cast<int64_t>(unique_edges.size()));
  for (EdgeId e : unique_edges) {
    const Edge& edge = parent.edge(e);
    builder.AddEdge(user_lookup.at(edge.user),
                    merchant_lookup.at(edge.merchant),
                    parent.edge_weight(e) * weight_scale);
  }
  view.graph = std::move(builder.Build(DuplicatePolicy::kKeepFirst)).value();
  return view;
}

SubgraphView InducedSubgraph(const BipartiteGraph& parent,
                             std::span<const UserId> users,
                             std::span<const MerchantId> merchants) {
  SubgraphView view;
  view.user_map = SortedUnique<UserId>(users);
  view.merchant_map = SortedUnique<MerchantId>(merchants);
  auto user_lookup = BuildIdMap(view.user_map);
  auto merchant_lookup = BuildIdMap(view.merchant_map);

  GraphBuilder builder(static_cast<int64_t>(view.user_map.size()),
                       static_cast<int64_t>(view.merchant_map.size()));
  // Iterate over the smaller side's incidence lists.
  for (UserId pu : view.user_map) {
    ENSEMFDET_DCHECK(pu < parent.num_users());
    for (EdgeId e : parent.user_edges(pu)) {
      const Edge& edge = parent.edge(e);
      auto it = merchant_lookup.find(edge.merchant);
      if (it == merchant_lookup.end()) continue;
      builder.AddEdge(user_lookup.at(pu), it->second, parent.edge_weight(e));
    }
  }
  view.graph = std::move(builder.Build(DuplicatePolicy::kKeepFirst)).value();
  return view;
}

SubgraphView OneSideInducedSubgraph(const BipartiteGraph& parent, Side side,
                                    std::span<const uint32_t> side_nodes) {
  // Collect every edge incident to the selected side nodes, then reuse the
  // exact-edge-set constructor so the opposite side is completed for us.
  std::vector<EdgeId> edges;
  if (side == Side::kUser) {
    for (uint32_t u : SortedUnique<uint32_t>(side_nodes)) {
      ENSEMFDET_DCHECK(u < parent.num_users());
      auto span = parent.user_edges(u);
      edges.insert(edges.end(), span.begin(), span.end());
    }
  } else {
    for (uint32_t v : SortedUnique<uint32_t>(side_nodes)) {
      ENSEMFDET_DCHECK(v < parent.num_merchants());
      auto span = parent.merchant_edges(v);
      edges.insert(edges.end(), span.begin(), span.end());
    }
  }
  return SubgraphFromEdges(parent, edges);
}

}  // namespace ensemfdet
