#include "graph/fingerprint.h"

#include <vector>

#include "common/hash.h"

namespace ensemfdet {

uint64_t FingerprintEdges(int64_t num_users, int64_t num_merchants,
                          std::span<const Edge> edges,
                          std::span<const double> weights) {
  // Shape first: distinct shapes can never collide regardless of content
  // hashing, and isolated nodes (which edges can't see) still matter for
  // vote-table sizing.
  uint64_t h = HashValue<uint64_t>(0x656e73656d66u);  // domain tag
  h = HashCombine(h, HashValue(num_users));
  h = HashCombine(h, HashValue(num_merchants));
  h = HashCombine(h, HashValue(static_cast<int64_t>(edges.size())));

  // Edge endpoints: Edge is two packed uint32s (no padding), and the edge
  // order is canonical, so hashing the raw array is stable.
  static_assert(sizeof(Edge) == 2 * sizeof(uint32_t));
  h = HashCombine(h, Hash64(edges.data(), edges.size_bytes()));

  if (!weights.empty()) {
    uint64_t wh = 0;
    for (double w : weights) wh = HashCombine(wh, HashValue(w));
    h = HashCombine(h, wh);
  }
  return h;
}

uint64_t FingerprintGraph(const BipartiteGraph& graph) {
  if (!graph.has_weights()) {
    return FingerprintEdges(graph.num_users(), graph.num_merchants(),
                            graph.edges());
  }
  std::vector<double> weights(static_cast<size_t>(graph.num_edges()));
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    weights[static_cast<size_t>(e)] = graph.edge_weight(e);
  }
  return FingerprintEdges(graph.num_users(), graph.num_merchants(),
                          graph.edges(), weights);
}

uint64_t FingerprintGraph(const CsrGraph& graph) {
  // Reassemble the canonical endpoint-pair array (the user-side CSR is the
  // merchant column in EdgeId order; edge_users is the user column) so the
  // byte stream matches the BipartiteGraph overload exactly.
  std::vector<Edge> edges(static_cast<size_t>(graph.num_edges()));
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    edges[static_cast<size_t>(e)] = {graph.edge_user(e),
                                     graph.edge_merchant(e)};
  }
  return FingerprintEdges(graph.num_users(), graph.num_merchants(), edges,
                          graph.weights());
}

}  // namespace ensemfdet
