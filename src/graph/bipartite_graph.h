// Immutable bipartite graph in compressed-sparse-row form, the central data
// structure of the library: the paper's "who buy-from where" graph
// G = (U ∪ V, E) with users (PINs) on one side and merchants on the other.
//
// Both orientations are materialized (user→edges and merchant→edges) so the
// greedy peeler can walk either side's incidence list in O(degree). Edges
// are identified by dense EdgeId in [0, num_edges); an optional per-edge
// weight array supports Theorem 1's 1/p reweighting of sampled subgraphs.
//
// Construction goes through GraphBuilder (graph_builder.h), which
// deduplicates parallel edges and validates ids; BipartiteGraph itself is
// immutable after construction, safe to share across threads.
#ifndef ENSEMFDET_GRAPH_BIPARTITE_GRAPH_H_
#define ENSEMFDET_GRAPH_BIPARTITE_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

namespace ensemfdet {

/// Dense id of a user (PIN) node, in [0, num_users).
using UserId = uint32_t;
/// Dense id of a merchant node, in [0, num_merchants).
using MerchantId = uint32_t;
/// Dense id of an edge, in [0, num_edges).
using EdgeId = int64_t;

/// One endpoint pair; the unit the edge samplers draw.
struct Edge {
  UserId user;
  MerchantId merchant;

  bool operator==(const Edge& other) const = default;
};

/// Immutable adjacency-list bipartite graph (see file comment).
///
/// @note Thread-safety: immutable after GraphBuilder::Build(); any number
///       of threads may read one instance concurrently without
///       synchronization. For the flat peeling layout the detection hot
///       path uses, convert once with CsrGraph::FromBipartite
///       (graph/csr_graph.h).
/// @note Edge ids are canonical: ascending (user, merchant). Many
///       consumers (fingerprinting, CSR conversion, samplers) rely on
///       this postcondition of GraphBuilder::Build().
class BipartiteGraph {
 public:
  /// Empty graph (0 nodes / 0 edges).
  BipartiteGraph() = default;

  int64_t num_users() const { return num_users_; }
  int64_t num_merchants() const { return num_merchants_; }
  int64_t num_nodes() const { return num_users_ + num_merchants_; }
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }
  bool empty() const { return edges_.empty(); }

  /// The e-th edge's endpoints.
  const Edge& edge(EdgeId e) const { return edges_[static_cast<size_t>(e)]; }
  /// All edges in id order.
  std::span<const Edge> edges() const { return edges_; }

  /// Weight of edge e (1.0 unless the graph was built with weights, e.g.
  /// the 1/p reweighting of Theorem 1).
  double edge_weight(EdgeId e) const {
    return weights_.empty() ? 1.0 : weights_[static_cast<size_t>(e)];
  }
  bool has_weights() const { return !weights_.empty(); }

  /// Ids of edges incident to user u, ascending by merchant id.
  /// @pre u < num_users(). The span stays valid for the graph's lifetime.
  std::span<const EdgeId> user_edges(UserId u) const {
    return {user_adj_.data() + user_offsets_[u],
            user_adj_.data() + user_offsets_[u + 1]};
  }

  /// Ids of edges incident to merchant v, ascending by user id.
  /// @pre v < num_merchants(). The span stays valid for the graph's
  /// lifetime.
  std::span<const EdgeId> merchant_edges(MerchantId v) const {
    return {merchant_adj_.data() + merchant_offsets_[v],
            merchant_adj_.data() + merchant_offsets_[v + 1]};
  }

  int64_t user_degree(UserId u) const {
    return user_offsets_[u + 1] - user_offsets_[u];
  }
  int64_t merchant_degree(MerchantId v) const {
    return merchant_offsets_[v + 1] - merchant_offsets_[v];
  }

  /// Weighted degree: sum of incident edge weights (== degree when the
  /// graph is unweighted).
  double user_weighted_degree(UserId u) const;
  double merchant_weighted_degree(MerchantId v) const;

  /// True iff the (user, merchant) edge exists; O(log degree).
  bool HasEdge(UserId u, MerchantId v) const;

 private:
  friend class GraphBuilder;

  int64_t num_users_ = 0;
  int64_t num_merchants_ = 0;
  std::vector<Edge> edges_;       // endpoint pairs, indexed by EdgeId
  std::vector<double> weights_;   // empty == all 1.0
  // CSR incidence lists: offsets have num_users_+1 / num_merchants_+1
  // entries; adj holds EdgeIds.
  std::vector<int64_t> user_offsets_;
  std::vector<EdgeId> user_adj_;
  std::vector<int64_t> merchant_offsets_;
  std::vector<EdgeId> merchant_adj_;
};

}  // namespace ensemfdet

#endif  // ENSEMFDET_GRAPH_BIPARTITE_GRAPH_H_
