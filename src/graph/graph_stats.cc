#include "graph/graph_stats.h"

#include <algorithm>

namespace ensemfdet {

std::vector<int64_t> Degrees(const BipartiteGraph& graph, Side side) {
  std::vector<int64_t> degrees;
  if (side == Side::kUser) {
    degrees.resize(static_cast<size_t>(graph.num_users()));
    for (int64_t u = 0; u < graph.num_users(); ++u) {
      degrees[static_cast<size_t>(u)] =
          graph.user_degree(static_cast<UserId>(u));
    }
  } else {
    degrees.resize(static_cast<size_t>(graph.num_merchants()));
    for (int64_t v = 0; v < graph.num_merchants(); ++v) {
      degrees[static_cast<size_t>(v)] =
          graph.merchant_degree(static_cast<MerchantId>(v));
    }
  }
  return degrees;
}

DegreeStats ComputeDegreeStats(const BipartiteGraph& graph, Side side) {
  std::vector<int64_t> degrees = Degrees(graph, side);
  DegreeStats stats;
  stats.num_nodes = static_cast<int64_t>(degrees.size());
  if (degrees.empty()) return stats;
  stats.min_degree = degrees[0];
  stats.max_degree = degrees[0];
  int64_t total = 0;
  for (int64_t d : degrees) {
    stats.min_degree = std::min(stats.min_degree, d);
    stats.max_degree = std::max(stats.max_degree, d);
    if (d == 0) ++stats.num_isolated;
    total += d;
  }
  stats.avg_degree =
      static_cast<double>(total) / static_cast<double>(degrees.size());
  return stats;
}

std::vector<int64_t> DegreeHistogram(const BipartiteGraph& graph, Side side) {
  std::vector<int64_t> degrees = Degrees(graph, side);
  int64_t max_degree = 0;
  for (int64_t d : degrees) max_degree = std::max(max_degree, d);
  std::vector<int64_t> hist(static_cast<size_t>(max_degree) + 1, 0);
  for (int64_t d : degrees) ++hist[static_cast<size_t>(d)];
  return hist;
}

}  // namespace ensemfdet
