// Edge-list persistence for bipartite graphs.
//
// Format: TSV, one `user<TAB>merchant[<TAB>weight]` line per edge. Lines
// starting with '#' are comments; the first comment written by
// SaveEdgeListTsv records node counts so loading round-trips isolated
// nodes: `# bipartite <num_users> <num_merchants>`. Without that header,
// node counts are inferred as max id + 1.
#ifndef ENSEMFDET_GRAPH_GRAPH_IO_H_
#define ENSEMFDET_GRAPH_GRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "graph/bipartite_graph.h"

namespace ensemfdet {

/// Writes the graph to `path`, including the node-count header comment and
/// per-edge weights when present.
Status SaveEdgeListTsv(const BipartiteGraph& graph, const std::string& path);

/// Reads a graph from `path`. Duplicate edges are merged with
/// DuplicatePolicy::kSumWeights.
Result<BipartiteGraph> LoadEdgeListTsv(const std::string& path);

}  // namespace ensemfdet

#endif  // ENSEMFDET_GRAPH_GRAPH_IO_H_
