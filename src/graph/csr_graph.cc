#include "graph/csr_graph.h"

#include <utility>

#include "common/logging.h"
#include "graph/graph_builder.h"

namespace ensemfdet {

CsrGraph CsrGraph::FromBipartite(const BipartiteGraph& graph) {
  CsrGraph g;
  g.num_users_ = graph.num_users();
  g.num_merchants_ = graph.num_merchants();
  const int64_t num_edges = graph.num_edges();
  auto edges = graph.edges();

  // User side: edges are already grouped by user in ascending merchant
  // order (GraphBuilder's canonical order), so the neighbor array is the
  // merchant column of the edge array and slot == EdgeId.
  g.user_offsets_.assign(static_cast<size_t>(g.num_users_) + 1, 0);
  g.user_neighbors_.resize(static_cast<size_t>(num_edges));
  g.edge_users_.resize(static_cast<size_t>(num_edges));
  for (EdgeId e = 0; e < num_edges; ++e) {
    const Edge& edge = edges[static_cast<size_t>(e)];
    ENSEMFDET_DCHECK(e == 0 ||
                     edges[static_cast<size_t>(e) - 1].user < edge.user ||
                     (edges[static_cast<size_t>(e) - 1].user == edge.user &&
                      edges[static_cast<size_t>(e) - 1].merchant <
                          edge.merchant))
        << "edge ids are not in canonical (user, merchant) order";
    ++g.user_offsets_[edge.user + 1];
    g.user_neighbors_[static_cast<size_t>(e)] = edge.merchant;
    g.edge_users_[static_cast<size_t>(e)] = edge.user;
  }
  for (int64_t u = 0; u < g.num_users_; ++u) {
    g.user_offsets_[static_cast<size_t>(u) + 1] +=
        g.user_offsets_[static_cast<size_t>(u)];
  }

  // Merchant side: counting sort by merchant; within a merchant, edge ids
  // arrive ascending, which is ascending user order.
  g.merchant_offsets_.assign(static_cast<size_t>(g.num_merchants_) + 1, 0);
  for (const Edge& edge : edges) ++g.merchant_offsets_[edge.merchant + 1];
  for (int64_t v = 0; v < g.num_merchants_; ++v) {
    g.merchant_offsets_[static_cast<size_t>(v) + 1] +=
        g.merchant_offsets_[static_cast<size_t>(v)];
  }
  g.merchant_neighbors_.resize(static_cast<size_t>(num_edges));
  g.merchant_edge_ids_.resize(static_cast<size_t>(num_edges));
  {
    std::vector<int64_t> cursor(g.merchant_offsets_.begin(),
                                g.merchant_offsets_.end() - 1);
    for (EdgeId e = 0; e < num_edges; ++e) {
      const Edge& edge = edges[static_cast<size_t>(e)];
      const int64_t slot = cursor[edge.merchant]++;
      g.merchant_neighbors_[static_cast<size_t>(slot)] = edge.user;
      g.merchant_edge_ids_[static_cast<size_t>(slot)] = e;
    }
  }

  if (graph.has_weights()) {
    g.weights_.resize(static_cast<size_t>(num_edges));
    for (EdgeId e = 0; e < num_edges; ++e) {
      g.weights_[static_cast<size_t>(e)] = graph.edge_weight(e);
    }
  }
  return g;
}

BipartiteGraph CsrGraph::ToBipartite() const {
  GraphBuilder builder(num_users_, num_merchants_);
  builder.Reserve(num_edges());
  for (EdgeId e = 0; e < num_edges(); ++e) {
    builder.AddEdge(edge_user(e), edge_merchant(e), edge_weight(e));
  }
  // Edges are unique (they came from a built graph), so the policy is
  // irrelevant; the builder just re-canonicalizes the already-canonical
  // order.
  return std::move(builder.Build(DuplicatePolicy::kKeepFirst)).value();
}

}  // namespace ensemfdet
