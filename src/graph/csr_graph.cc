#include "graph/csr_graph.h"

#include <utility>

#include "common/logging.h"
#include "graph/graph_builder.h"

namespace ensemfdet {

void CsrGraph::BindOwned() {
  user_offsets_ = owned_.user_offsets;
  user_neighbors_ = owned_.user_neighbors;
  edge_users_ = owned_.edge_users;
  merchant_offsets_ = owned_.merchant_offsets;
  merchant_neighbors_ = owned_.merchant_neighbors;
  merchant_edge_ids_ = owned_.merchant_edge_ids;
  weights_ = owned_.weights;
}

CsrGraph::CsrGraph(const CsrGraph& other)
    : num_users_(other.num_users_), num_merchants_(other.num_merchants_) {
  if (other.backing_ != nullptr) {
    // View: share the backing handle and alias the same external arrays —
    // O(1), the idiom for passing an mmap-served graph around by value.
    user_offsets_ = other.user_offsets_;
    user_neighbors_ = other.user_neighbors_;
    edge_users_ = other.edge_users_;
    merchant_offsets_ = other.merchant_offsets_;
    merchant_neighbors_ = other.merchant_neighbors_;
    merchant_edge_ids_ = other.merchant_edge_ids_;
    weights_ = other.weights_;
    backing_ = other.backing_;
  } else {
    owned_ = other.owned_;
    BindOwned();
  }
}

CsrGraph& CsrGraph::operator=(const CsrGraph& other) {
  if (this != &other) *this = CsrGraph(other);  // copy, then move-assign
  return *this;
}

CsrGraph::CsrGraph(CsrGraph&& other) noexcept
    : num_users_(other.num_users_),
      num_merchants_(other.num_merchants_),
      // Vector moves transfer the heap buffers, so spans into `owned_`
      // stay valid when copied before/after the move; external spans stay
      // valid because `backing_` transfers.
      user_offsets_(other.user_offsets_),
      user_neighbors_(other.user_neighbors_),
      edge_users_(other.edge_users_),
      merchant_offsets_(other.merchant_offsets_),
      merchant_neighbors_(other.merchant_neighbors_),
      merchant_edge_ids_(other.merchant_edge_ids_),
      weights_(other.weights_),
      owned_(std::move(other.owned_)),
      backing_(std::move(other.backing_)) {
  // Leave the source a valid empty graph (its spans must not dangle into
  // buffers it no longer owns).
  other.num_users_ = 0;
  other.num_merchants_ = 0;
  other.owned_ = Owned{};
  other.backing_.reset();
  other.BindOwned();
}

CsrGraph& CsrGraph::operator=(CsrGraph&& other) noexcept {
  if (this != &other) {
    num_users_ = other.num_users_;
    num_merchants_ = other.num_merchants_;
    user_offsets_ = other.user_offsets_;
    user_neighbors_ = other.user_neighbors_;
    edge_users_ = other.edge_users_;
    merchant_offsets_ = other.merchant_offsets_;
    merchant_neighbors_ = other.merchant_neighbors_;
    merchant_edge_ids_ = other.merchant_edge_ids_;
    weights_ = other.weights_;
    owned_ = std::move(other.owned_);
    backing_ = std::move(other.backing_);
    other.num_users_ = 0;
    other.num_merchants_ = 0;
    other.owned_ = Owned{};
    other.backing_.reset();
    other.BindOwned();
  }
  return *this;
}

CsrGraph CsrGraph::FromBipartite(const BipartiteGraph& graph) {
  CsrGraph g;
  g.num_users_ = graph.num_users();
  g.num_merchants_ = graph.num_merchants();
  const int64_t num_edges = graph.num_edges();
  auto edges = graph.edges();
  Owned& o = g.owned_;

  // User side: edges are already grouped by user in ascending merchant
  // order (GraphBuilder's canonical order), so the neighbor array is the
  // merchant column of the edge array and slot == EdgeId.
  o.user_offsets.assign(static_cast<size_t>(g.num_users_) + 1, 0);
  o.user_neighbors.resize(static_cast<size_t>(num_edges));
  o.edge_users.resize(static_cast<size_t>(num_edges));
  for (EdgeId e = 0; e < num_edges; ++e) {
    const Edge& edge = edges[static_cast<size_t>(e)];
    ENSEMFDET_DCHECK(e == 0 ||
                     edges[static_cast<size_t>(e) - 1].user < edge.user ||
                     (edges[static_cast<size_t>(e) - 1].user == edge.user &&
                      edges[static_cast<size_t>(e) - 1].merchant <
                          edge.merchant))
        << "edge ids are not in canonical (user, merchant) order";
    ++o.user_offsets[edge.user + 1];
    o.user_neighbors[static_cast<size_t>(e)] = edge.merchant;
    o.edge_users[static_cast<size_t>(e)] = edge.user;
  }
  for (int64_t u = 0; u < g.num_users_; ++u) {
    o.user_offsets[static_cast<size_t>(u) + 1] +=
        o.user_offsets[static_cast<size_t>(u)];
  }

  // Merchant side: counting sort by merchant; within a merchant, edge ids
  // arrive ascending, which is ascending user order.
  o.merchant_offsets.assign(static_cast<size_t>(g.num_merchants_) + 1, 0);
  for (const Edge& edge : edges) ++o.merchant_offsets[edge.merchant + 1];
  for (int64_t v = 0; v < g.num_merchants_; ++v) {
    o.merchant_offsets[static_cast<size_t>(v) + 1] +=
        o.merchant_offsets[static_cast<size_t>(v)];
  }
  o.merchant_neighbors.resize(static_cast<size_t>(num_edges));
  o.merchant_edge_ids.resize(static_cast<size_t>(num_edges));
  {
    std::vector<int64_t> cursor(o.merchant_offsets.begin(),
                                o.merchant_offsets.end() - 1);
    for (EdgeId e = 0; e < num_edges; ++e) {
      const Edge& edge = edges[static_cast<size_t>(e)];
      const int64_t slot = cursor[edge.merchant]++;
      o.merchant_neighbors[static_cast<size_t>(slot)] = edge.user;
      o.merchant_edge_ids[static_cast<size_t>(slot)] = e;
    }
  }

  if (graph.has_weights()) {
    o.weights.resize(static_cast<size_t>(num_edges));
    for (EdgeId e = 0; e < num_edges; ++e) {
      o.weights[static_cast<size_t>(e)] = graph.edge_weight(e);
    }
  }
  g.BindOwned();
  return g;
}

CsrGraph CsrGraph::WrapExternal(
    int64_t num_users, int64_t num_merchants,
    std::span<const int64_t> user_offsets,
    std::span<const MerchantId> user_neighbors,
    std::span<const UserId> edge_users,
    std::span<const int64_t> merchant_offsets,
    std::span<const UserId> merchant_neighbors,
    std::span<const EdgeId> merchant_edge_ids,
    std::span<const double> weights, std::shared_ptr<const void> backing) {
  ENSEMFDET_DCHECK(backing != nullptr) << "view needs a lifetime anchor";
  ENSEMFDET_DCHECK(num_users >= 0 && num_merchants >= 0);
  ENSEMFDET_DCHECK(user_offsets.size() ==
                   static_cast<size_t>(num_users) + 1);
  ENSEMFDET_DCHECK(merchant_offsets.size() ==
                   static_cast<size_t>(num_merchants) + 1);
  ENSEMFDET_DCHECK(user_neighbors.size() == edge_users.size());
  ENSEMFDET_DCHECK(merchant_neighbors.size() == user_neighbors.size());
  ENSEMFDET_DCHECK(merchant_edge_ids.size() == user_neighbors.size());
  ENSEMFDET_DCHECK(weights.empty() ||
                   weights.size() == user_neighbors.size());
  CsrGraph g;
  g.num_users_ = num_users;
  g.num_merchants_ = num_merchants;
  g.user_offsets_ = user_offsets;
  g.user_neighbors_ = user_neighbors;
  g.edge_users_ = edge_users;
  g.merchant_offsets_ = merchant_offsets;
  g.merchant_neighbors_ = merchant_neighbors;
  g.merchant_edge_ids_ = merchant_edge_ids;
  g.weights_ = weights;
  g.backing_ = std::move(backing);
  return g;
}

CsrGraph CsrGraph::FromRawArrays(
    int64_t num_users, int64_t num_merchants,
    std::vector<int64_t> user_offsets,
    std::vector<MerchantId> user_neighbors, std::vector<UserId> edge_users,
    std::vector<int64_t> merchant_offsets,
    std::vector<UserId> merchant_neighbors,
    std::vector<EdgeId> merchant_edge_ids, std::vector<double> weights) {
  ENSEMFDET_DCHECK(user_offsets.size() ==
                   static_cast<size_t>(num_users) + 1);
  ENSEMFDET_DCHECK(merchant_offsets.size() ==
                   static_cast<size_t>(num_merchants) + 1);
  ENSEMFDET_DCHECK(user_neighbors.size() == edge_users.size());
  ENSEMFDET_DCHECK(merchant_neighbors.size() == user_neighbors.size());
  ENSEMFDET_DCHECK(merchant_edge_ids.size() == user_neighbors.size());
  ENSEMFDET_DCHECK(weights.empty() ||
                   weights.size() == user_neighbors.size());
  CsrGraph g;
  g.num_users_ = num_users;
  g.num_merchants_ = num_merchants;
  g.owned_.user_offsets = std::move(user_offsets);
  g.owned_.user_neighbors = std::move(user_neighbors);
  g.owned_.edge_users = std::move(edge_users);
  g.owned_.merchant_offsets = std::move(merchant_offsets);
  g.owned_.merchant_neighbors = std::move(merchant_neighbors);
  g.owned_.merchant_edge_ids = std::move(merchant_edge_ids);
  g.owned_.weights = std::move(weights);
  g.BindOwned();
  return g;
}

BipartiteGraph CsrGraph::ToBipartite() const {
  GraphBuilder builder(num_users_, num_merchants_);
  builder.Reserve(num_edges());
  for (EdgeId e = 0; e < num_edges(); ++e) {
    builder.AddEdge(edge_user(e), edge_merchant(e), edge_weight(e));
  }
  // Edges are unique (they came from a built graph), so the policy is
  // irrelevant; the builder just re-canonicalizes the already-canonical
  // order.
  return std::move(builder.Build(DuplicatePolicy::kKeepFirst)).value();
}

}  // namespace ensemfdet
