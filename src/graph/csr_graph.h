// CsrGraph: the flat compressed-sparse-row form of a bipartite graph —
// the memory layout the detection hot path runs on.
//
// BipartiteGraph (bipartite_graph.h) stores incidence lists of EdgeIds
// plus a separate endpoint-pair array, so walking a neighborhood costs one
// extra indirection per edge (adj slot → EdgeId → Edge struct → endpoint).
// CsrGraph flattens both orientations into offset/neighbor arrays so k-core
// peeling and greedy density peeling iterate neighbor ids directly at
// memory bandwidth (see DESIGN.md §"Graph memory layout" and Ban & Duan's
// linear-time dense-subgraph peeling, PAPERS.md).
//
// Layout invariants (checked in debug builds, pinned by
// tests/csr_graph_test.cc):
//
//  * Edges keep BipartiteGraph's canonical id order: ascending
//    (user, merchant). Because user rows are stored contiguously in user
//    order with neighbors ascending, **the user-side slot index IS the
//    EdgeId** — `user_neighbors_[e]` is edge e's merchant endpoint.
//  * Merchant rows are sorted by user id; `merchant_edge_ids(v)[k]` maps
//    the k-th slot of v's row back to its EdgeId.
//  * `edge_user(e)` / `edge_merchant(e)` / `edge_weight(e)` are O(1) flat
//    array loads (no binary search, no Edge struct).
//
// Thread-safety: a CsrGraph is immutable after construction; any number of
// threads may read one concurrently without synchronization. Per-job code
// converts once (FromBipartite) and shares the instance across ThreadPool
// workers by const reference / shared_ptr.
#ifndef ENSEMFDET_GRAPH_CSR_GRAPH_H_
#define ENSEMFDET_GRAPH_CSR_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/bipartite_graph.h"

namespace ensemfdet {

class CsrGraph {
 public:
  /// Empty graph (0 nodes / 0 edges).
  CsrGraph() = default;

  /// Converts an adjacency-list graph to CSR form.
  ///
  /// @pre `graph`'s edge ids are canonical — ascending (user, merchant) —
  ///      which every GraphBuilder-built graph satisfies (checked in debug
  ///      builds).
  /// @post `ToBipartite()` of the result reproduces `graph` exactly
  ///       (nodes, edge set, edge id order, weights).
  /// Cost: O(|U| + |V| + |E|), one pass over the edge array.
  static CsrGraph FromBipartite(const BipartiteGraph& graph);

  /// Converts back to the adjacency-list form (exact round-trip: same node
  /// counts, edges in the same canonical order, same weights).
  BipartiteGraph ToBipartite() const;

  int64_t num_users() const { return num_users_; }
  int64_t num_merchants() const { return num_merchants_; }
  int64_t num_nodes() const { return num_users_ + num_merchants_; }
  int64_t num_edges() const {
    return static_cast<int64_t>(user_neighbors_.size());
  }
  bool empty() const { return user_neighbors_.empty(); }

  /// O(1) degrees.
  int64_t user_degree(UserId u) const {
    return user_offsets_[u + 1] - user_offsets_[u];
  }
  int64_t merchant_degree(MerchantId v) const {
    return merchant_offsets_[v + 1] - merchant_offsets_[v];
  }

  /// Merchant endpoints of user u's edges, ascending. The slot index of
  /// entry k within the whole array is u's k-th EdgeId:
  /// `user_edge_begin(u) + k`.
  std::span<const MerchantId> user_neighbors(UserId u) const {
    return {user_neighbors_.data() + user_offsets_[u],
            user_neighbors_.data() + user_offsets_[u + 1]};
  }
  /// First EdgeId of user u's row (== user-side CSR offset; the row covers
  /// EdgeIds [user_edge_begin(u), user_edge_begin(u) + user_degree(u))).
  EdgeId user_edge_begin(UserId u) const { return user_offsets_[u]; }

  /// User endpoints of merchant v's edges, ascending.
  std::span<const UserId> merchant_neighbors(MerchantId v) const {
    return {merchant_neighbors_.data() + merchant_offsets_[v],
            merchant_neighbors_.data() + merchant_offsets_[v + 1]};
  }
  /// EdgeIds of merchant v's edges, parallel to merchant_neighbors(v).
  std::span<const EdgeId> merchant_edge_ids(MerchantId v) const {
    return {merchant_edge_ids_.data() + merchant_offsets_[v],
            merchant_edge_ids_.data() + merchant_offsets_[v + 1]};
  }

  /// O(1) endpoint lookups by EdgeId.
  UserId edge_user(EdgeId e) const {
    return edge_users_[static_cast<size_t>(e)];
  }
  MerchantId edge_merchant(EdgeId e) const {
    return user_neighbors_[static_cast<size_t>(e)];  // slot == EdgeId
  }

  /// Weight of edge e (1.0 unless the source graph carried weights).
  double edge_weight(EdgeId e) const {
    return weights_.empty() ? 1.0 : weights_[static_cast<size_t>(e)];
  }
  bool has_weights() const { return !weights_.empty(); }
  /// Raw weight array (empty when unweighted); indexed by EdgeId.
  std::span<const double> weights() const { return weights_; }

 private:
  int64_t num_users_ = 0;
  int64_t num_merchants_ = 0;
  // Offsets have num_users_+1 / num_merchants_+1 entries ({0} when empty).
  std::vector<int64_t> user_offsets_ = {0};
  std::vector<MerchantId> user_neighbors_;  // slot == EdgeId
  std::vector<UserId> edge_users_;          // EdgeId → user endpoint
  std::vector<int64_t> merchant_offsets_ = {0};
  std::vector<UserId> merchant_neighbors_;
  std::vector<EdgeId> merchant_edge_ids_;   // merchant slot → EdgeId
  std::vector<double> weights_;             // empty == all 1.0
};

}  // namespace ensemfdet

#endif  // ENSEMFDET_GRAPH_CSR_GRAPH_H_
