// CsrGraph: the flat compressed-sparse-row form of a bipartite graph —
// the memory layout the detection hot path runs on.
//
// BipartiteGraph (bipartite_graph.h) stores incidence lists of EdgeIds
// plus a separate endpoint-pair array, so walking a neighborhood costs one
// extra indirection per edge (adj slot → EdgeId → Edge struct → endpoint).
// CsrGraph flattens both orientations into offset/neighbor arrays so k-core
// peeling and greedy density peeling iterate neighbor ids directly at
// memory bandwidth (see DESIGN.md §"Graph memory layout" and Ban & Duan's
// linear-time dense-subgraph peeling, PAPERS.md).
//
// Layout invariants (checked in debug builds, pinned by
// tests/csr_graph_test.cc):
//
//  * Edges keep BipartiteGraph's canonical id order: ascending
//    (user, merchant). Because user rows are stored contiguously in user
//    order with neighbors ascending, **the user-side slot index IS the
//    EdgeId** — `user_neighbors_[e]` is edge e's merchant endpoint.
//  * Merchant rows are sorted by user id; `merchant_edge_ids(v)[k]` maps
//    the k-th slot of v's row back to its EdgeId.
//  * `edge_user(e)` / `edge_merchant(e)` / `edge_weight(e)` are O(1) flat
//    array loads (no binary search, no Edge struct).
//
// Storage model (since the snapshot subsystem, DESIGN.md §"Snapshot
// format"): every accessor reads through spans, and a graph either *owns*
// its arrays (FromBipartite — the spans alias internal vectors) or is a
// *view* over externally owned memory (WrapExternal — e.g. a read-only
// file mapping kept alive by `backing`). Copying an owning graph deep-
// copies; copying a view is O(1) and shares the backing handle. Either
// way the copy/move machinery keeps the spans pointing at storage the
// destination object owns, so value semantics are preserved.
//
// Thread-safety: a CsrGraph is immutable after construction; any number of
// threads may read one concurrently without synchronization. Per-job code
// converts once (FromBipartite) and shares the instance across ThreadPool
// workers by const reference / shared_ptr.
#ifndef ENSEMFDET_GRAPH_CSR_GRAPH_H_
#define ENSEMFDET_GRAPH_CSR_GRAPH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/bipartite_graph.h"

namespace ensemfdet {

class CsrGraph {
 public:
  /// Empty graph (0 nodes / 0 edges).
  CsrGraph() { BindOwned(); }

  CsrGraph(const CsrGraph& other);
  CsrGraph& operator=(const CsrGraph& other);
  CsrGraph(CsrGraph&& other) noexcept;
  CsrGraph& operator=(CsrGraph&& other) noexcept;

  /// Converts an adjacency-list graph to CSR form.
  ///
  /// @pre `graph`'s edge ids are canonical — ascending (user, merchant) —
  ///      which every GraphBuilder-built graph satisfies (checked in debug
  ///      builds).
  /// @post `ToBipartite()` of the result reproduces `graph` exactly
  ///       (nodes, edge set, edge id order, weights).
  /// Cost: O(|U| + |V| + |E|), one pass over the edge array.
  static CsrGraph FromBipartite(const BipartiteGraph& graph);

  /// Wraps externally owned CSR arrays as a zero-copy view. `backing`
  /// keeps the memory alive (e.g. a storage::MappedFile); the arrays must
  /// satisfy every layout invariant in the file comment — callers that get
  /// the arrays from an untrusted source (a snapshot file) must validate
  /// them first (storage/snapshot_reader.h does; only basic shape is
  /// DCHECKed here). `weights` is empty for an unweighted graph.
  ///
  /// @post The view (and every copy of it) holds `backing` until
  ///       destroyed; the arrays are never freed or modified through it.
  static CsrGraph WrapExternal(int64_t num_users, int64_t num_merchants,
                               std::span<const int64_t> user_offsets,
                               std::span<const MerchantId> user_neighbors,
                               std::span<const UserId> edge_users,
                               std::span<const int64_t> merchant_offsets,
                               std::span<const UserId> merchant_neighbors,
                               std::span<const EdgeId> merchant_edge_ids,
                               std::span<const double> weights,
                               std::shared_ptr<const void> backing);

  /// Adopts pre-built CSR arrays as an owning graph (the streaming
  /// snapshot reader's constructor). Same invariant contract as
  /// WrapExternal: callers validate untrusted arrays first.
  static CsrGraph FromRawArrays(int64_t num_users, int64_t num_merchants,
                                std::vector<int64_t> user_offsets,
                                std::vector<MerchantId> user_neighbors,
                                std::vector<UserId> edge_users,
                                std::vector<int64_t> merchant_offsets,
                                std::vector<UserId> merchant_neighbors,
                                std::vector<EdgeId> merchant_edge_ids,
                                std::vector<double> weights);

  /// True iff this graph aliases externally owned memory (WrapExternal).
  bool is_view() const { return backing_ != nullptr; }

  /// Converts back to the adjacency-list form (exact round-trip: same node
  /// counts, edges in the same canonical order, same weights).
  BipartiteGraph ToBipartite() const;

  int64_t num_users() const { return num_users_; }
  int64_t num_merchants() const { return num_merchants_; }
  int64_t num_nodes() const { return num_users_ + num_merchants_; }
  int64_t num_edges() const {
    return static_cast<int64_t>(user_neighbors_.size());
  }
  bool empty() const { return user_neighbors_.empty(); }

  /// O(1) degrees.
  int64_t user_degree(UserId u) const {
    return user_offsets_[u + 1] - user_offsets_[u];
  }
  int64_t merchant_degree(MerchantId v) const {
    return merchant_offsets_[v + 1] - merchant_offsets_[v];
  }

  /// Merchant endpoints of user u's edges, ascending. The slot index of
  /// entry k within the whole array is u's k-th EdgeId:
  /// `user_edge_begin(u) + k`.
  std::span<const MerchantId> user_neighbors(UserId u) const {
    return user_neighbors_.subspan(
        static_cast<size_t>(user_offsets_[u]),
        static_cast<size_t>(user_offsets_[u + 1] - user_offsets_[u]));
  }
  /// First EdgeId of user u's row (== user-side CSR offset; the row covers
  /// EdgeIds [user_edge_begin(u), user_edge_begin(u) + user_degree(u))).
  EdgeId user_edge_begin(UserId u) const { return user_offsets_[u]; }

  /// User endpoints of merchant v's edges, ascending.
  std::span<const UserId> merchant_neighbors(MerchantId v) const {
    return merchant_neighbors_.subspan(
        static_cast<size_t>(merchant_offsets_[v]),
        static_cast<size_t>(merchant_offsets_[v + 1] -
                            merchant_offsets_[v]));
  }
  /// EdgeIds of merchant v's edges, parallel to merchant_neighbors(v).
  std::span<const EdgeId> merchant_edge_ids(MerchantId v) const {
    return merchant_edge_ids_.subspan(
        static_cast<size_t>(merchant_offsets_[v]),
        static_cast<size_t>(merchant_offsets_[v + 1] -
                            merchant_offsets_[v]));
  }

  /// O(1) endpoint lookups by EdgeId.
  UserId edge_user(EdgeId e) const {
    return edge_users_[static_cast<size_t>(e)];
  }
  MerchantId edge_merchant(EdgeId e) const {
    return user_neighbors_[static_cast<size_t>(e)];  // slot == EdgeId
  }

  /// Weight of edge e (1.0 unless the source graph carried weights).
  double edge_weight(EdgeId e) const {
    return weights_.empty() ? 1.0 : weights_[static_cast<size_t>(e)];
  }
  bool has_weights() const { return !weights_.empty(); }
  /// Raw weight array (empty when unweighted); indexed by EdgeId.
  std::span<const double> weights() const { return weights_; }

  /// Raw flat arrays (what the snapshot writer serializes).
  std::span<const int64_t> user_offsets() const { return user_offsets_; }
  std::span<const MerchantId> user_neighbors_flat() const {
    return user_neighbors_;
  }
  std::span<const UserId> edge_users_flat() const { return edge_users_; }
  std::span<const int64_t> merchant_offsets() const {
    return merchant_offsets_;
  }
  std::span<const UserId> merchant_neighbors_flat() const {
    return merchant_neighbors_;
  }
  std::span<const EdgeId> merchant_edge_ids_flat() const {
    return merchant_edge_ids_;
  }

 private:
  /// Points every accessor span at the owned vectors.
  void BindOwned();

  int64_t num_users_ = 0;
  int64_t num_merchants_ = 0;

  // Accessor views: alias `owned_` (owning graphs) or external memory kept
  // alive by `backing_` (views). Never dangling: copy/move rebind them.
  std::span<const int64_t> user_offsets_;
  std::span<const MerchantId> user_neighbors_;  // slot == EdgeId
  std::span<const UserId> edge_users_;          // EdgeId → user endpoint
  std::span<const int64_t> merchant_offsets_;
  std::span<const UserId> merchant_neighbors_;
  std::span<const EdgeId> merchant_edge_ids_;   // merchant slot → EdgeId
  std::span<const double> weights_;             // empty == all 1.0

  // Owned storage. Offsets hold num_users_+1 / num_merchants_+1 entries
  // ({0} when empty) so the degree arithmetic needs no special cases.
  struct Owned {
    std::vector<int64_t> user_offsets = {0};
    std::vector<MerchantId> user_neighbors;
    std::vector<UserId> edge_users;
    std::vector<int64_t> merchant_offsets = {0};
    std::vector<UserId> merchant_neighbors;
    std::vector<EdgeId> merchant_edge_ids;
    std::vector<double> weights;
  };
  Owned owned_;
  // Non-null iff this graph is a view over external memory.
  std::shared_ptr<const void> backing_;
};

}  // namespace ensemfdet

#endif  // ENSEMFDET_GRAPH_CSR_GRAPH_H_
