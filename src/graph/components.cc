#include "graph/components.h"

#include <deque>

namespace ensemfdet {

int32_t ConnectedComponents::LargestComponent() const {
  int32_t best = -1;
  int64_t best_edges = -1;
  for (size_t c = 0; c < components.size(); ++c) {
    if (components[c].num_edges > best_edges) {
      best_edges = components[c].num_edges;
      best = static_cast<int32_t>(c);
    }
  }
  return best;
}

ConnectedComponents FindConnectedComponents(const BipartiteGraph& graph) {
  const int64_t num_users = graph.num_users();
  const int64_t num_merchants = graph.num_merchants();
  ConnectedComponents result;
  result.user_component.assign(static_cast<size_t>(num_users), -1);
  result.merchant_component.assign(static_cast<size_t>(num_merchants), -1);

  // BFS over packed node ids: users are [0, |U|), merchants [|U|, |U|+|V|).
  std::deque<int64_t> frontier;
  for (int64_t start = 0; start < num_users + num_merchants; ++start) {
    const bool is_user = start < num_users;
    int32_t& start_label =
        is_user ? result.user_component[static_cast<size_t>(start)]
                : result.merchant_component[static_cast<size_t>(
                      start - num_users)];
    if (start_label != -1) continue;

    const int32_t label = static_cast<int32_t>(result.components.size());
    result.components.emplace_back();
    ConnectedComponents::ComponentStats& stats = result.components.back();
    start_label = label;
    frontier.push_back(start);

    while (!frontier.empty()) {
      const int64_t node = frontier.front();
      frontier.pop_front();
      if (node < num_users) {
        const UserId u = static_cast<UserId>(node);
        ++stats.num_users;
        for (EdgeId e : graph.user_edges(u)) {
          ++stats.num_edges;  // counted once: from the user side only
          const MerchantId v = graph.edge(e).merchant;
          int32_t& other = result.merchant_component[v];
          if (other == -1) {
            other = label;
            frontier.push_back(num_users + v);
          }
        }
      } else {
        const MerchantId v = static_cast<MerchantId>(node - num_users);
        ++stats.num_merchants;
        for (EdgeId e : graph.merchant_edges(v)) {
          const UserId u = graph.edge(e).user;
          int32_t& other = result.user_component[u];
          if (other == -1) {
            other = label;
            frontier.push_back(u);
          }
        }
      }
    }
  }
  return result;
}

}  // namespace ensemfdet
