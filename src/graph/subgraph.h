// Subgraph extraction with id remapping.
//
// Samplers and FDET work on compact subgraphs but must report findings in
// the parent graph's id space; SubgraphView carries the subgraph plus the
// local→parent id maps that make that translation exact.
#ifndef ENSEMFDET_GRAPH_SUBGRAPH_H_
#define ENSEMFDET_GRAPH_SUBGRAPH_H_

#include <span>
#include <vector>

#include "graph/bipartite_graph.h"
#include "graph/graph_stats.h"

namespace ensemfdet {

/// A bipartite subgraph with dense local ids and maps back to the parent.
struct SubgraphView {
  BipartiteGraph graph;
  /// user_map[local_user] == parent user id.
  std::vector<UserId> user_map;
  /// merchant_map[local_merchant] == parent merchant id.
  std::vector<MerchantId> merchant_map;

  UserId ToParentUser(UserId local) const { return user_map[local]; }
  MerchantId ToParentMerchant(MerchantId local) const {
    return merchant_map[local];
  }
};

/// Builds the subgraph consisting of exactly `edge_ids` (no extra edges),
/// relabeling the endpoint nodes densely in ascending-parent-id order.
/// Each edge keeps its weight scaled by `weight_scale` (Theorem 1 passes
/// 1/p here; 1.0 leaves weights untouched). Duplicate edge ids collapse.
SubgraphView SubgraphFromEdges(const BipartiteGraph& parent,
                               std::span<const EdgeId> edge_ids,
                               double weight_scale = 1.0);

/// Builds the node-induced subgraph: all parent edges whose endpoints are
/// both selected. `users` / `merchants` are parent ids (deduplicated
/// internally).
SubgraphView InducedSubgraph(const BipartiteGraph& parent,
                             std::span<const UserId> users,
                             std::span<const MerchantId> merchants);

/// Builds the one-side-induced subgraph: all parent edges incident to the
/// selected `side` nodes, together with every opposite-side endpoint those
/// edges touch (ONS semantics: sampling rows of the adjacency matrix keeps
/// the full row contents).
SubgraphView OneSideInducedSubgraph(const BipartiteGraph& parent, Side side,
                                    std::span<const uint32_t> side_nodes);

}  // namespace ensemfdet

#endif  // ENSEMFDET_GRAPH_SUBGRAPH_H_
