// Connected components of a bipartite graph.
//
// Real transaction graphs decompose into one giant component plus debris;
// fraud groups are dense pockets that may even be whole components of
// their own. Components enable two practical optimizations the deployment
// section of the paper implies: run FDET per component (independent →
// embarrassingly parallel) and skip components too small to host a fraud
// group.
#ifndef ENSEMFDET_GRAPH_COMPONENTS_H_
#define ENSEMFDET_GRAPH_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"

namespace ensemfdet {

/// Component labelling of every node. Isolated nodes each get their own
/// singleton component. Component ids are dense, ordered by the smallest
/// packed node id they contain (users pack as u, merchants as |U|+v).
struct ConnectedComponents {
  /// component id per user, indexed by UserId.
  std::vector<int32_t> user_component;
  /// component id per merchant, indexed by MerchantId.
  std::vector<int32_t> merchant_component;
  /// per-component (num_users, num_merchants, num_edges), by component id.
  struct ComponentStats {
    int64_t num_users = 0;
    int64_t num_merchants = 0;
    int64_t num_edges = 0;
  };
  std::vector<ComponentStats> components;

  int32_t num_components() const {
    return static_cast<int32_t>(components.size());
  }

  /// Id of the component with the most edges (-1 for an empty graph).
  int32_t LargestComponent() const;
};

/// BFS labelling; O(|U| + |V| + |E|).
ConnectedComponents FindConnectedComponents(const BipartiteGraph& graph);

}  // namespace ensemfdet

#endif  // ENSEMFDET_GRAPH_COMPONENTS_H_
