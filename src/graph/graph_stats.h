// Descriptive statistics over bipartite graphs: degree distributions,
// averages, and the per-degree node counts f_D(q) that Lemma 1's expected
// sampled-degree formulas consume. Also backs the Table I dataset report.
#ifndef ENSEMFDET_GRAPH_GRAPH_STATS_H_
#define ENSEMFDET_GRAPH_GRAPH_STATS_H_

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"

namespace ensemfdet {

/// Which side of the bipartite graph an operation targets.
enum class Side { kUser, kMerchant };

/// Summary of one side's degree distribution.
struct DegreeStats {
  int64_t num_nodes = 0;
  int64_t num_isolated = 0;  // degree-0 nodes
  int64_t min_degree = 0;
  int64_t max_degree = 0;
  double avg_degree = 0.0;
};

/// Computes min/max/avg/isolated-count of `side`'s degrees.
DegreeStats ComputeDegreeStats(const BipartiteGraph& graph, Side side);

/// Histogram f_D(q): element q is the number of `side` nodes with degree
/// exactly q (size = max degree + 1; {1,0} i.e. [1] for an empty side).
std::vector<int64_t> DegreeHistogram(const BipartiteGraph& graph, Side side);

/// Degrees of every node on `side`, indexed by node id.
std::vector<int64_t> Degrees(const BipartiteGraph& graph, Side side);

}  // namespace ensemfdet

#endif  // ENSEMFDET_GRAPH_GRAPH_STATS_H_
