#include "graph/graph_builder.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/logging.h"

namespace ensemfdet {

GraphBuilder::GraphBuilder(int64_t num_users, int64_t num_merchants)
    : num_users_(num_users), num_merchants_(num_merchants) {
  ENSEMFDET_CHECK(num_users >= 0 && num_merchants >= 0);
  ENSEMFDET_CHECK(num_users <= UINT32_MAX && num_merchants <= UINT32_MAX)
      << "node counts must fit 32-bit ids";
}

void GraphBuilder::AddEdge(UserId user, MerchantId merchant, double weight) {
  pending_.push_back({user, merchant, weight});
}

void GraphBuilder::Reserve(int64_t num_edges) {
  pending_.reserve(static_cast<size_t>(num_edges));
}

Result<BipartiteGraph> GraphBuilder::Build(DuplicatePolicy policy) {
  // Validate before any expensive work.
  for (const PendingEdge& pe : pending_) {
    if (pe.user >= num_users_) {
      return Status::InvalidArgument("user id " + std::to_string(pe.user) +
                                     " out of range [0, " +
                                     std::to_string(num_users_) + ")");
    }
    if (pe.merchant >= num_merchants_) {
      return Status::InvalidArgument(
          "merchant id " + std::to_string(pe.merchant) + " out of range [0, " +
          std::to_string(num_merchants_) + ")");
    }
    if (!std::isfinite(pe.weight) || pe.weight <= 0.0) {
      return Status::InvalidArgument("edge weight must be finite and > 0");
    }
  }

  // Sort by (user, merchant) so duplicates are adjacent and the user-side
  // CSR comes out with sorted neighbor lists.
  std::sort(pending_.begin(), pending_.end(),
            [](const PendingEdge& a, const PendingEdge& b) {
              if (a.user != b.user) return a.user < b.user;
              return a.merchant < b.merchant;
            });

  BipartiteGraph g;
  g.num_users_ = num_users_;
  g.num_merchants_ = num_merchants_;
  g.edges_.reserve(pending_.size());
  bool any_nonunit_weight = false;
  std::vector<double> weights;
  weights.reserve(pending_.size());

  for (size_t i = 0; i < pending_.size();) {
    const PendingEdge& first = pending_[i];
    double weight = first.weight;
    size_t j = i + 1;
    while (j < pending_.size() && pending_[j].user == first.user &&
           pending_[j].merchant == first.merchant) {
      if (policy == DuplicatePolicy::kSumWeights) weight += pending_[j].weight;
      ++j;
    }
    g.edges_.push_back({first.user, first.merchant});
    weights.push_back(weight);
    if (weight != 1.0) any_nonunit_weight = true;
    i = j;
  }
  if (any_nonunit_weight) g.weights_ = std::move(weights);

  const int64_t num_edges = static_cast<int64_t>(g.edges_.size());

  // User-side CSR: edges are already user-sorted, offsets by counting.
  g.user_offsets_.assign(static_cast<size_t>(num_users_) + 1, 0);
  for (const Edge& e : g.edges_) ++g.user_offsets_[e.user + 1];
  for (int64_t u = 0; u < num_users_; ++u) {
    g.user_offsets_[static_cast<size_t>(u) + 1] +=
        g.user_offsets_[static_cast<size_t>(u)];
  }
  g.user_adj_.resize(static_cast<size_t>(num_edges));
  for (EdgeId e = 0; e < num_edges; ++e) {
    g.user_adj_[static_cast<size_t>(e)] = e;  // already grouped and sorted
  }

  // Merchant-side CSR via counting sort by merchant; within a merchant the
  // edge ids arrive in ascending user order because edges_ is user-sorted.
  g.merchant_offsets_.assign(static_cast<size_t>(num_merchants_) + 1, 0);
  for (const Edge& e : g.edges_) ++g.merchant_offsets_[e.merchant + 1];
  for (int64_t v = 0; v < num_merchants_; ++v) {
    g.merchant_offsets_[static_cast<size_t>(v) + 1] +=
        g.merchant_offsets_[static_cast<size_t>(v)];
  }
  g.merchant_adj_.resize(static_cast<size_t>(num_edges));
  std::vector<int64_t> cursor(g.merchant_offsets_.begin(),
                              g.merchant_offsets_.end() - 1);
  for (EdgeId e = 0; e < num_edges; ++e) {
    MerchantId v = g.edges_[static_cast<size_t>(e)].merchant;
    g.merchant_adj_[static_cast<size_t>(cursor[v]++)] = e;
  }

  pending_.clear();
  pending_.shrink_to_fit();
  return g;
}

}  // namespace ensemfdet
