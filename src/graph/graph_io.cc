#include "graph/graph_io.h"

#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>

#include "graph/graph_builder.h"

namespace ensemfdet {

namespace {

// Parses one whitespace/tab separated field starting at *pos; advances *pos
// past the field. Returns false if no field is present.
bool NextField(std::string_view line, size_t* pos, std::string_view* field) {
  size_t i = *pos;
  while (i < line.size() && (line[i] == '\t' || line[i] == ' ')) ++i;
  if (i >= line.size()) return false;
  size_t start = i;
  while (i < line.size() && line[i] != '\t' && line[i] != ' ') ++i;
  *field = line.substr(start, i - start);
  *pos = i;
  return true;
}

bool ParseU64(std::string_view s, uint64_t* out) {
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool ParseDouble(std::string_view s, double* out) {
  // std::from_chars for double is not universally available; use strtod on
  // a bounded copy.
  char buf[64];
  if (s.size() >= sizeof(buf)) return false;
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  *out = std::strtod(buf, &end);
  return end == buf + s.size();
}

}  // namespace

Status SaveEdgeListTsv(const BipartiteGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << "# bipartite " << graph.num_users() << ' ' << graph.num_merchants()
      << '\n';
  char line[96];
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const Edge& edge = graph.edge(e);
    if (graph.has_weights()) {
      std::snprintf(line, sizeof(line), "%u\t%u\t%.17g\n", edge.user,
                    edge.merchant, graph.edge_weight(e));
    } else {
      std::snprintf(line, sizeof(line), "%u\t%u\n", edge.user, edge.merchant);
    }
    out << line;
  }
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<BipartiteGraph> LoadEdgeListTsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);

  struct ParsedEdge {
    uint64_t user;
    uint64_t merchant;
    double weight;
  };
  std::vector<ParsedEdge> parsed;
  uint64_t declared_users = 0, declared_merchants = 0;
  bool has_header = false;
  uint64_t max_user = 0, max_merchant = 0;

  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream hs(line.substr(1));
      std::string tag;
      if (hs >> tag && tag == "bipartite" &&
          (hs >> declared_users >> declared_merchants)) {
        has_header = true;
      }
      continue;
    }
    size_t pos = 0;
    std::string_view f1, f2, f3;
    uint64_t user, merchant;
    double weight = 1.0;
    if (!NextField(line, &pos, &f1) || !NextField(line, &pos, &f2) ||
        !ParseU64(f1, &user) || !ParseU64(f2, &merchant)) {
      return Status::IOError(path + ":" + std::to_string(line_no) +
                             ": expected `user<TAB>merchant[<TAB>weight]`");
    }
    if (NextField(line, &pos, &f3) && !ParseDouble(f3, &weight)) {
      return Status::IOError(path + ":" + std::to_string(line_no) +
                             ": bad weight field");
    }
    max_user = std::max(max_user, user);
    max_merchant = std::max(max_merchant, merchant);
    parsed.push_back({user, merchant, weight});
  }

  uint64_t num_users =
      has_header ? declared_users : (parsed.empty() ? 0 : max_user + 1);
  uint64_t num_merchants =
      has_header ? declared_merchants : (parsed.empty() ? 0 : max_merchant + 1);
  if (has_header && !parsed.empty() &&
      (max_user >= num_users || max_merchant >= num_merchants)) {
    return Status::IOError(path + ": edge ids exceed declared node counts");
  }

  GraphBuilder builder(static_cast<int64_t>(num_users),
                       static_cast<int64_t>(num_merchants));
  builder.Reserve(static_cast<int64_t>(parsed.size()));
  for (const ParsedEdge& pe : parsed) {
    builder.AddEdge(static_cast<UserId>(pe.user),
                    static_cast<MerchantId>(pe.merchant), pe.weight);
  }
  return builder.Build(DuplicatePolicy::kSumWeights);
}

}  // namespace ensemfdet
