// k-core decomposition of a bipartite graph.
//
// The k-core (maximal subgraph with every node degree ≥ k) is the
// unweighted cousin of the paper's density peeling: fraud blocks live in
// high cores, and core numbers give a cheap per-node suspiciousness prior.
// The implementation is the classic O(|E|) bucket peeling (Matula/Beck),
// which doubles as an independent cross-check of the greedy peeler's
// degeneracy ordering machinery.
#ifndef ENSEMFDET_GRAPH_KCORE_H_
#define ENSEMFDET_GRAPH_KCORE_H_

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"
#include "graph/csr_graph.h"

namespace ensemfdet {

/// Core numbers for every node.
struct KCoreDecomposition {
  /// core[u]: largest k such that user u belongs to the k-core.
  std::vector<int32_t> user_core;
  /// core[v]: likewise for merchants.
  std::vector<int32_t> merchant_core;
  /// Maximum core number in the graph (the degeneracy); 0 if edgeless.
  int32_t degeneracy = 0;
};

/// Bucket-peeling core decomposition; O(|U| + |V| + |E|).
///
/// @post user_core/merchant_core are sized |U| / |V|; degeneracy equals
///       the maximum entry (0 for an edgeless graph).
/// @note Thread-safety: pure function of an immutable graph — safe to call
///       concurrently on the same graph from any number of threads.
KCoreDecomposition ComputeKCores(const BipartiteGraph& graph);

/// CSR-native variant: same algorithm peeling flat neighbor arrays (no
/// EdgeId → endpoint indirection in the inner loop).
///
/// @post Produces a decomposition identical to
///       `ComputeKCores(graph.ToBipartite())` — pinned by
///       tests/csr_parity_test.cc.
/// @note Thread-safety: same as the adjacency-list overload.
KCoreDecomposition ComputeKCores(const CsrGraph& graph);

/// Nodes of the k-core: users and merchants with core number ≥ k,
/// ascending ids. (Convenience over the decomposition.)
struct KCoreMembers {
  std::vector<UserId> users;
  std::vector<MerchantId> merchants;
};
KCoreMembers MembersOfKCore(const KCoreDecomposition& decomposition,
                            int32_t k);

}  // namespace ensemfdet

#endif  // ENSEMFDET_GRAPH_KCORE_H_
