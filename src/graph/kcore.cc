#include "graph/kcore.h"

#include <algorithm>

#include "common/logging.h"

namespace ensemfdet {

namespace {

// Shared bucket-peeling core (Matula-Beck / Batagelj-Zaveršnik) over any
// graph exposing degrees and a packed-id neighbor visitor. `Graph` must
// provide num_users()/num_merchants()/num_nodes()/user_degree()/
// merchant_degree(); `visit_neighbors(node, fn)` calls fn(packed_other)
// for every neighbor of packed node id `node`.
template <typename Graph, typename VisitNeighbors>
KCoreDecomposition BucketPeelCores(const Graph& graph,
                                  VisitNeighbors&& visit_neighbors) {
  const int64_t num_users = graph.num_users();
  const int64_t total = graph.num_nodes();
  KCoreDecomposition result;
  result.user_core.assign(static_cast<size_t>(num_users), 0);
  result.merchant_core.assign(static_cast<size_t>(graph.num_merchants()), 0);
  if (total == 0) return result;

  // Packed node ids: users [0, |U|), merchants [|U|, total).
  std::vector<int64_t> degree(static_cast<size_t>(total), 0);
  int64_t max_degree = 0;
  for (int64_t u = 0; u < num_users; ++u) {
    degree[static_cast<size_t>(u)] =
        graph.user_degree(static_cast<UserId>(u));
    max_degree = std::max(max_degree, degree[static_cast<size_t>(u)]);
  }
  for (int64_t v = 0; v < graph.num_merchants(); ++v) {
    degree[static_cast<size_t>(num_users + v)] =
        graph.merchant_degree(static_cast<MerchantId>(v));
    max_degree =
        std::max(max_degree, degree[static_cast<size_t>(num_users + v)]);
  }

  // Bucket sort nodes by degree (Matula-Beck / Batagelj-Zaveršnik layout).
  std::vector<int64_t> bucket_start(static_cast<size_t>(max_degree) + 2, 0);
  for (int64_t d : degree) ++bucket_start[static_cast<size_t>(d) + 1];
  for (size_t b = 1; b < bucket_start.size(); ++b) {
    bucket_start[b] += bucket_start[b - 1];
  }
  std::vector<int64_t> order(static_cast<size_t>(total));   // sorted nodes
  std::vector<int64_t> position(static_cast<size_t>(total));  // node → slot
  {
    std::vector<int64_t> cursor(bucket_start.begin(),
                                bucket_start.end() - 1);
    for (int64_t node = 0; node < total; ++node) {
      const int64_t slot = cursor[static_cast<size_t>(
          degree[static_cast<size_t>(node)])]++;
      order[static_cast<size_t>(slot)] = node;
      position[static_cast<size_t>(node)] = slot;
    }
  }

  auto lower_degree = [&](int64_t node) {
    // Move `node` one bucket down by swapping it with the first element of
    // its current bucket, then shrinking the bucket boundary.
    const int64_t d = degree[static_cast<size_t>(node)];
    const int64_t first_slot = bucket_start[static_cast<size_t>(d)];
    const int64_t node_slot = position[static_cast<size_t>(node)];
    const int64_t first_node = order[static_cast<size_t>(first_slot)];
    std::swap(order[static_cast<size_t>(first_slot)],
              order[static_cast<size_t>(node_slot)]);
    position[static_cast<size_t>(node)] = first_slot;
    position[static_cast<size_t>(first_node)] = node_slot;
    ++bucket_start[static_cast<size_t>(d)];
    --degree[static_cast<size_t>(node)];
  };

  std::vector<bool> removed(static_cast<size_t>(total), false);
  int32_t current_core = 0;
  for (int64_t i = 0; i < total; ++i) {
    const int64_t node = order[static_cast<size_t>(i)];
    removed[static_cast<size_t>(node)] = true;
    const int64_t degree_at_removal = degree[static_cast<size_t>(node)];
    current_core =
        std::max(current_core, static_cast<int32_t>(degree_at_removal));
    // Batagelj-Zaveršnik: decrement only neighbors with degree above the
    // current minimum — keeps the bucket order valid (no node ever moves
    // into the processed prefix).
    auto visit_neighbor = [&](int64_t other) {
      if (!removed[static_cast<size_t>(other)] &&
          degree[static_cast<size_t>(other)] > degree_at_removal) {
        lower_degree(other);
      }
    };
    if (node < num_users) {
      result.user_core[static_cast<size_t>(node)] = current_core;
    } else {
      result.merchant_core[static_cast<size_t>(node - num_users)] =
          current_core;
    }
    visit_neighbors(node, visit_neighbor);
  }
  result.degeneracy = current_core;
  return result;
}

}  // namespace

KCoreDecomposition ComputeKCores(const BipartiteGraph& graph) {
  const int64_t num_users = graph.num_users();
  return BucketPeelCores(graph, [&](int64_t node, auto&& visit) {
    if (node < num_users) {
      for (EdgeId e : graph.user_edges(static_cast<UserId>(node))) {
        visit(num_users + graph.edge(e).merchant);
      }
    } else {
      for (EdgeId e :
           graph.merchant_edges(static_cast<MerchantId>(node - num_users))) {
        visit(graph.edge(e).user);
      }
    }
  });
}

KCoreDecomposition ComputeKCores(const CsrGraph& graph) {
  const int64_t num_users = graph.num_users();
  return BucketPeelCores(graph, [&](int64_t node, auto&& visit) {
    // Flat neighbor arrays: no EdgeId → endpoint hop.
    if (node < num_users) {
      for (MerchantId m : graph.user_neighbors(static_cast<UserId>(node))) {
        visit(num_users + m);
      }
    } else {
      for (UserId u :
           graph.merchant_neighbors(static_cast<MerchantId>(node - num_users))) {
        visit(u);
      }
    }
  });
}

KCoreMembers MembersOfKCore(const KCoreDecomposition& decomposition,
                            int32_t k) {
  KCoreMembers members;
  for (size_t u = 0; u < decomposition.user_core.size(); ++u) {
    if (decomposition.user_core[u] >= k) {
      members.users.push_back(static_cast<UserId>(u));
    }
  }
  for (size_t v = 0; v < decomposition.merchant_core.size(); ++v) {
    if (decomposition.merchant_core[v] >= k) {
      members.merchants.push_back(static_cast<MerchantId>(v));
    }
  }
  return members;
}

}  // namespace ensemfdet
