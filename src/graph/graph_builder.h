// Mutable accumulator that validates and assembles a BipartiteGraph.
//
// Parallel (duplicate) edges are merged at Build() time; with
// DuplicatePolicy::kSumWeights the merged edge carries the summed weight,
// which is how repeated purchases fold into a weighted edge.
#ifndef ENSEMFDET_GRAPH_GRAPH_BUILDER_H_
#define ENSEMFDET_GRAPH_GRAPH_BUILDER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/bipartite_graph.h"

namespace ensemfdet {

/// What Build() does with parallel edges between the same (user, merchant).
enum class DuplicatePolicy {
  kKeepFirst,   ///< collapse to a single unit-weight edge
  kSumWeights,  ///< collapse, summing weights (purchase multiplicity)
};

class GraphBuilder {
 public:
  /// Fixes the node-id universes: users in [0, num_users), merchants in
  /// [0, num_merchants).
  GraphBuilder(int64_t num_users, int64_t num_merchants);

  int64_t num_users() const { return num_users_; }
  int64_t num_merchants() const { return num_merchants_; }
  /// Number of AddEdge calls so far (before dedup).
  int64_t num_pending_edges() const {
    return static_cast<int64_t>(pending_.size());
  }

  /// Queues an edge; ids are validated at Build() time.
  void AddEdge(UserId user, MerchantId merchant, double weight = 1.0);

  void Reserve(int64_t num_edges);

  /// Validates ids, merges duplicates per `policy`, builds both CSR
  /// orientations. The builder is left empty and reusable.
  /// Fails with InvalidArgument on out-of-range ids or non-finite /
  /// non-positive weights.
  Result<BipartiteGraph> Build(
      DuplicatePolicy policy = DuplicatePolicy::kKeepFirst);

 private:
  struct PendingEdge {
    UserId user;
    MerchantId merchant;
    double weight;
  };

  int64_t num_users_;
  int64_t num_merchants_;
  std::vector<PendingEdge> pending_;
};

}  // namespace ensemfdet

#endif  // ENSEMFDET_GRAPH_GRAPH_BUILDER_H_
