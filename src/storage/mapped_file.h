// MappedFile: a read-only, shareable mapping of a whole file — the
// lifetime anchor behind every zero-copy CsrGraph view the snapshot
// reader hands out (the view's backing shared_ptr keeps the mapping alive
// for as long as any copy of the graph exists; see DESIGN.md §"Snapshot
// format" for the ownership rules).
//
// On POSIX hosts this is mmap(PROT_READ, MAP_PRIVATE); elsewhere it
// degrades to a heap buffer filled by one buffered read — same interface,
// same lifetime semantics, no zero-copy. Either way the bytes are
// immutable for the mapping's lifetime.
#ifndef ENSEMFDET_STORAGE_MAPPED_FILE_H_
#define ENSEMFDET_STORAGE_MAPPED_FILE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace ensemfdet {
namespace storage {

class MappedFile {
 public:
  /// Maps `path` read-only. IOError when the file cannot be opened,
  /// stat'ed, or mapped. A zero-length file maps to data() == nullptr,
  /// size() == 0.
  static Result<std::shared_ptr<const MappedFile>> Open(
      const std::string& path);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const std::byte* data() const { return data_; }
  size_t size() const { return size_; }
  /// True when the bytes live in a real mmap (false on the heap fallback).
  bool is_mmap() const { return is_mmap_; }

 private:
  MappedFile() = default;

  const std::byte* data_ = nullptr;
  size_t size_ = 0;
  bool is_mmap_ = false;
  std::vector<std::byte> fallback_;  // used when !is_mmap_
};

}  // namespace storage
}  // namespace ensemfdet

#endif  // ENSEMFDET_STORAGE_MAPPED_FILE_H_
